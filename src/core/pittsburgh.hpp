// pittsburgh.hpp — Pittsburgh-style rule-set evolution (the paper's §2
// road-not-taken, implemented for Ablation H).
//
// In the Michigan approach each individual is ONE rule and the population is
// the solution; in the Pittsburgh approach (Smith's LS-1 lineage) each
// individual is a WHOLE rule set and the best individual is the solution.
// The paper chose Michigan to let unusual behaviours keep dedicated rules;
// Pittsburgh's set-level fitness rewards aggregate performance, so rare
// regimes can be sacrificed for average accuracy. Ablation H measures that
// difference at an equal rule-evaluation budget.
//
// Set-level fitness over the training windows (consistent in spirit with the
// paper's per-rule formula):
//   fitness = Σ_covered (EMAX − |ŷ − y|)
// i.e. every covered window contributes its error headroom; uncovered
// windows contribute nothing. Monotone in coverage while errors stay below
// EMAX, and error-punishing above it.
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "core/dataset.hpp"
#include "core/fitness.hpp"
#include "core/match_engine.hpp"
#include "core/rule.hpp"
#include "core/rule_system.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ef::core {

struct PittsburghConfig {
  std::size_t population_size = 20;      ///< number of rule SETS
  std::size_t rules_per_individual = 15; ///< initial set size
  std::size_t min_rules = 2;
  std::size_t max_rules = 40;
  std::size_t generations = 50;  ///< generational replacements
  std::size_t elite_count = 2;
  std::size_t tournament_rounds = 3;

  /// Per-rule structural mutation (reuses the Michigan interval operators).
  double rule_mutation_prob = 0.3;
  /// Set-level edits per offspring: add a fresh rule / delete a random rule.
  double add_rule_prob = 0.15;
  double delete_rule_prob = 0.15;

  double emax = 0.1;
  std::uint64_t seed = 1;

  /// The Michigan operator parameters reused for per-gene edits.
  double mutation_scale = 0.1;
  double wildcard_toggle_prob = 0.05;

  void validate() const;
};

/// One Pittsburgh individual: a rule set plus its cached set fitness.
struct RuleSetIndividual {
  std::vector<Rule> rules;
  double fitness = 0.0;
  double coverage_percent = 0.0;
  double mean_abs_error = 0.0;  ///< over covered windows
};

class PittsburghEngine {
 public:
  PittsburghEngine(const WindowDataset& data, PittsburghConfig config,
                   util::ThreadPool* pool = nullptr);

  /// One generational replacement. Each offspring costs |rules| rule
  /// evaluations (tracked by evaluations()).
  void step();
  void run();
  /// Run until at least `budget` rule evaluations have been consumed.
  void run_evaluations(std::size_t budget);

  [[nodiscard]] const std::vector<RuleSetIndividual>& population() const noexcept {
    return population_;
  }
  [[nodiscard]] const RuleSetIndividual& best() const;
  /// The solution: the best individual's rules as a queryable RuleSystem.
  [[nodiscard]] RuleSystem best_system() const;

  [[nodiscard]] std::size_t generation() const noexcept { return generation_; }
  /// Rule evaluations consumed (match+regress per rule), incl. the initial
  /// population.
  [[nodiscard]] std::size_t evaluations() const noexcept { return evaluations_; }

 private:
  void evaluate_individual(RuleSetIndividual& individual);
  [[nodiscard]] RuleSetIndividual make_random_individual();
  [[nodiscard]] Rule make_random_rule();

  const WindowDataset& data_;
  PittsburghConfig config_;
  MatchEngine engine_;
  EvolutionConfig rule_eval_config_;  ///< adapter for the shared Evaluator
  Evaluator evaluator_;
  util::Rng rng_;

  std::vector<RuleSetIndividual> population_;
  std::size_t generation_ = 0;
  std::size_t evaluations_ = 0;
};

}  // namespace ef::core
