// significance.hpp — paired significance tests for forecaster comparisons.
//
// The paper (like much of the 2007-era literature) reports single-run error
// tables without uncertainty. The bench harness prints seed spreads; this
// module adds the matching inferential tools for paired comparisons over
// windows or backtest folds:
//   * exact two-sided binomial sign test (win/loss counts),
//   * Wilcoxon signed-rank test (normal approximation, zero-diffs dropped,
//     average ranks for ties) over paired error differences.
#pragma once

#include <cstddef>
#include <span>

namespace ef::series {

/// Exact two-sided sign test: p-value for observing a split at least as
/// extreme as (wins, losses) under H0: P(win) = 1/2. Ties are excluded by
/// the caller. Returns 1.0 when wins + losses == 0.
[[nodiscard]] double sign_test_p(std::size_t wins, std::size_t losses);

/// Two-sided Wilcoxon signed-rank test over paired differences
/// (d_i = err_A,i − err_B,i). Zero differences are dropped; tied |d| get
/// average ranks; the test statistic is normal-approximated with tie
/// correction and continuity correction. Returns 1.0 for fewer than 2
/// non-zero differences (no evidence either way).
[[nodiscard]] double wilcoxon_signed_rank_p(std::span<const double> differences);

/// Convenience: paired comparison of two absolute-error sequences.
struct PairedComparison {
  std::size_t a_wins = 0;   ///< windows where |err_A| < |err_B|
  std::size_t b_wins = 0;
  std::size_t ties = 0;
  double sign_p = 1.0;      ///< sign test on the win/loss counts
  double wilcoxon_p = 1.0;  ///< signed-rank test on the differences
  double mean_diff = 0.0;   ///< mean(|err_A| − |err_B|); negative = A better
};

/// Compare models A and B by their absolute errors on the same windows.
/// Throws std::invalid_argument on size mismatch or empty input.
[[nodiscard]] PairedComparison compare_paired_errors(std::span<const double> abs_err_a,
                                                     std::span<const double> abs_err_b);

}  // namespace ef::series
