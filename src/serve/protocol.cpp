#include "serve/protocol.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <variant>
#include <vector>

namespace ef::serve {
namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser. Depth is bounded (the
// protocol needs one object holding scalars and one flat array), inputs are
// one line, and every syntax error throws ParseError with a position.
// ---------------------------------------------------------------------------

struct ParseError {
  std::string message;
};

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue, std::less<>>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> data;
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value(/*depth=*/0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON value");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError{what + " at byte " + std::to_string(pos_)};
  }

  void skip_ws() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\r' || text_[pos_] == '\n')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JsonValue value(int depth) {
    if (depth > 8) fail("nesting too deep");
    skip_ws();
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return JsonValue{string()};
      case 't': return keyword("true", JsonValue{true});
      case 'f': return keyword("false", JsonValue{false});
      case 'n': return keyword("null", JsonValue{nullptr});
      default: return JsonValue{number()};
    }
  }

  JsonValue keyword(std::string_view word, JsonValue result) {
    if (text_.substr(pos_, word.size()) != word) fail("bad literal");
    pos_ += word.size();
    return result;
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': fail("\\u escapes not supported by this protocol");
        default: fail("bad escape");
      }
    }
  }

  double number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '-' ||
            text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) fail("malformed number");
    if (!std::isfinite(v)) fail("non-finite number");
    return v;
  }

  JsonValue array(int depth) {
    expect('[');
    JsonArray items;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return JsonValue{std::move(items)};
    }
    for (;;) {
      items.push_back(value(depth + 1));
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return JsonValue{std::move(items)};
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  JsonValue object(int depth) {
    expect('{');
    JsonObject fields;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return JsonValue{std::move(fields)};
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      fields[std::move(key)] = value(depth + 1);
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return JsonValue{std::move(fields)};
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

/// Shortest round-trip double formatting (%.17g trims via %g).
std::string format_double(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

std::optional<core::Aggregation> parse_aggregation(std::string_view name) {
  using core::Aggregation;
  for (const Aggregation a :
       {Aggregation::kMean, Aggregation::kFitnessWeighted, Aggregation::kMedian,
        Aggregation::kBestRule, Aggregation::kInverseError}) {
    if (name == core::to_string(a)) return a;
  }
  return std::nullopt;
}

std::optional<Request> parse_request(std::string_view line, std::string& error) {
  JsonValue root;
  try {
    root = Parser(line).parse();
  } catch (const ParseError& e) {
    error = "bad JSON: " + e.message;
    return std::nullopt;
  }
  const auto* object = std::get_if<JsonObject>(&root.data);
  if (!object) {
    error = "request must be a JSON object";
    return std::nullopt;
  }

  Request request;
  for (const auto& [key, value] : *object) {
    if (key == "cmd") {
      const auto* text = std::get_if<std::string>(&value.data);
      if (!text) {
        error = "\"cmd\" must be a string";
        return std::nullopt;
      }
      if (*text == "predict") {
        request.cmd = Request::Cmd::kPredict;
      } else if (*text == "ping") {
        request.cmd = Request::Cmd::kPing;
      } else if (*text == "models") {
        request.cmd = Request::Cmd::kModels;
      } else if (*text == "stats") {
        request.cmd = Request::Cmd::kStats;
      } else {
        error = "unknown cmd '" + *text + "'";
        return std::nullopt;
      }
    } else if (key == "model") {
      const auto* text = std::get_if<std::string>(&value.data);
      if (!text) {
        error = "\"model\" must be a string";
        return std::nullopt;
      }
      request.predict.model = *text;
    } else if (key == "window") {
      const auto* array = std::get_if<JsonArray>(&value.data);
      if (!array) {
        error = "\"window\" must be an array of numbers";
        return std::nullopt;
      }
      request.predict.window.clear();
      request.predict.window.reserve(array->size());
      for (const JsonValue& item : *array) {
        const auto* num = std::get_if<double>(&item.data);
        if (!num) {
          error = "\"window\" must contain only numbers";
          return std::nullopt;
        }
        request.predict.window.push_back(*num);
      }
    } else if (key == "horizon") {
      const auto* num = std::get_if<double>(&value.data);
      if (!num || *num < 1.0 || *num != std::floor(*num) || *num > 1.0e9) {
        error = "\"horizon\" must be a positive integer";
        return std::nullopt;
      }
      request.predict.horizon = static_cast<std::size_t>(*num);
    } else if (key == "agg") {
      const auto* text = std::get_if<std::string>(&value.data);
      const auto agg = text ? parse_aggregation(*text) : std::nullopt;
      if (!agg) {
        error = "\"agg\" must be one of mean|fitness_weighted|median|best_rule|inverse_error";
        return std::nullopt;
      }
      request.predict.agg = *agg;
    } else if (key == "cache") {
      const auto* flag = std::get_if<bool>(&value.data);
      if (!flag) {
        error = "\"cache\" must be a boolean";
        return std::nullopt;
      }
      request.predict.use_cache = *flag;
    } else {
      error = "unknown field \"" + key + "\"";
      return std::nullopt;
    }
  }
  return request;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string error_json(std::string_view reason) {
  return "{\"ok\":false,\"error\":\"" + json_escape(reason) + "\"}";
}

std::string to_json(const PredictResponse& response) {
  if (!response.ok) return error_json(response.error);
  std::string out = "{\"ok\":true";
  out += ",\"model\":\"" + json_escape(response.model) + "\"";
  out += ",\"version\":" + std::to_string(response.version);
  out += ",\"horizon\":" + std::to_string(response.horizon);
  out += ",\"abstain\":";
  out += response.abstain ? "true" : "false";
  if (!response.abstain) out += ",\"value\":" + format_double(response.value);
  out += ",\"votes\":" + std::to_string(response.votes);
  out += ",\"cached\":";
  out += response.cached ? "true" : "false";
  out += "}";
  return out;
}

}  // namespace ef::serve
