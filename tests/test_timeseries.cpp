// Tests for series/timeseries.hpp: container invariants, splits, and the
// round-trip property of both normalisers.
#include "series/timeseries.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace {

using ef::series::Normalizer;
using ef::series::Split;
using ef::series::TimeSeries;

TEST(TimeSeries, BasicAccess) {
  const TimeSeries s({1.0, 2.0, 3.0}, "abc");
  EXPECT_EQ(s.size(), 3u);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s[1], 2.0);
  EXPECT_EQ(s.name(), "abc");
}

TEST(TimeSeries, RejectsNaN) {
  EXPECT_THROW(TimeSeries({1.0, std::nan(""), 3.0}), std::invalid_argument);
}

TEST(TimeSeries, RejectsInfinity) {
  EXPECT_THROW(TimeSeries({1.0, std::numeric_limits<double>::infinity()}),
               std::invalid_argument);
}

TEST(TimeSeries, SliceBoundsChecked) {
  const TimeSeries s({1.0, 2.0, 3.0, 4.0});
  const TimeSeries mid = s.slice(1, 3);
  ASSERT_EQ(mid.size(), 2u);
  EXPECT_DOUBLE_EQ(mid[0], 2.0);
  EXPECT_DOUBLE_EQ(mid[1], 3.0);
  EXPECT_THROW((void)s.slice(2, 5), std::out_of_range);
  EXPECT_THROW((void)s.slice(3, 2), std::out_of_range);
}

TEST(TimeSeries, EmptySliceAllowed) {
  const TimeSeries s({1.0, 2.0});
  EXPECT_EQ(s.slice(1, 1).size(), 0u);
}

TEST(TimeSeries, Statistics) {
  const TimeSeries s({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.variance(), 1.25);
}

TEST(TimeSeries, StatisticsOnEmptyThrow) {
  const TimeSeries s;
  EXPECT_THROW((void)s.min(), std::logic_error);
  EXPECT_THROW((void)s.max(), std::logic_error);
  EXPECT_THROW((void)s.mean(), std::logic_error);
}

TEST(SplitAt, ChronologicalSplit) {
  const TimeSeries s({0.0, 1.0, 2.0, 3.0, 4.0});
  const Split sp = ef::series::split_at(s, 3);
  EXPECT_EQ(sp.train.size(), 3u);
  EXPECT_EQ(sp.validation.size(), 2u);
  EXPECT_DOUBLE_EQ(sp.train[2], 2.0);
  EXPECT_DOUBLE_EQ(sp.validation[0], 3.0);
}

TEST(SplitAt, InvalidSizesThrow) {
  const TimeSeries s({0.0, 1.0, 2.0});
  EXPECT_THROW((void)ef::series::split_at(s, 0), std::invalid_argument);
  EXPECT_THROW((void)ef::series::split_at(s, 3), std::invalid_argument);
}

TEST(SplitWithGap, SkipsGapRange) {
  const TimeSeries s({0.0, 1.0, 2.0, 3.0, 4.0, 5.0});
  const Split sp = ef::series::split_with_gap(s, 2, 2);
  EXPECT_EQ(sp.train.size(), 2u);
  ASSERT_EQ(sp.validation.size(), 2u);
  EXPECT_DOUBLE_EQ(sp.validation[0], 4.0);  // indices 2,3 skipped
}

TEST(SplitWithGap, GapConsumingEverythingThrows) {
  const TimeSeries s({0.0, 1.0, 2.0});
  EXPECT_THROW((void)ef::series::split_with_gap(s, 1, 2), std::invalid_argument);
}

TEST(Normalizer, MinMaxMapsToUnitInterval) {
  const TimeSeries s({-50.0, 0.0, 150.0});
  const Normalizer n = Normalizer::min_max(s, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(n.transform(-50.0), 0.0);
  EXPECT_DOUBLE_EQ(n.transform(150.0), 1.0);
  EXPECT_DOUBLE_EQ(n.transform(50.0), 0.5);
}

TEST(Normalizer, MinMaxCustomTarget) {
  const TimeSeries s({0.0, 10.0});
  const Normalizer n = Normalizer::min_max(s, -1.0, 1.0);
  EXPECT_DOUBLE_EQ(n.transform(0.0), -1.0);
  EXPECT_DOUBLE_EQ(n.transform(10.0), 1.0);
  EXPECT_DOUBLE_EQ(n.transform(5.0), 0.0);
}

TEST(Normalizer, RoundTripIdentityProperty) {
  ef::util::Rng rng(5);
  std::vector<double> vals;
  for (int i = 0; i < 500; ++i) vals.push_back(rng.uniform(-80.0, 200.0));
  const TimeSeries s(vals);
  const Normalizer mm = Normalizer::min_max(s);
  const Normalizer z = Normalizer::z_score(s);
  for (const double v : vals) {
    EXPECT_NEAR(mm.inverse(mm.transform(v)), v, 1e-9);
    EXPECT_NEAR(z.inverse(z.transform(v)), v, 1e-9);
  }
}

TEST(Normalizer, ZScoreMoments) {
  ef::util::Rng rng(6);
  std::vector<double> vals;
  for (int i = 0; i < 2000; ++i) vals.push_back(rng.normal(40.0, 7.0));
  const TimeSeries s(vals);
  const Normalizer z = Normalizer::z_score(s);
  const TimeSeries t = z.transform(s);
  EXPECT_NEAR(t.mean(), 0.0, 1e-9);
  EXPECT_NEAR(t.variance(), 1.0, 1e-9);
}

TEST(Normalizer, ConstantSeriesMinMaxDoesNotDivideByZero) {
  const TimeSeries s({5.0, 5.0, 5.0});
  const Normalizer n = Normalizer::min_max(s);
  EXPECT_DOUBLE_EQ(n.transform(5.0), 0.0);
  EXPECT_DOUBLE_EQ(n.inverse(n.transform(5.0)), 5.0);
}

TEST(Normalizer, ConstantSeriesZScoreMapsToZero) {
  const TimeSeries s({5.0, 5.0});
  const Normalizer n = Normalizer::z_score(s);
  EXPECT_DOUBLE_EQ(n.transform(5.0), 0.0);
}

TEST(Normalizer, InvalidTargetRangeThrows) {
  const TimeSeries s({0.0, 1.0});
  EXPECT_THROW((void)Normalizer::min_max(s, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW((void)Normalizer::min_max(s, 2.0, 1.0), std::invalid_argument);
}

TEST(Normalizer, SeriesTransformPreservesLength) {
  const TimeSeries s({1.0, 2.0, 3.0});
  const Normalizer n = Normalizer::min_max(s);
  EXPECT_EQ(n.transform(s).size(), 3u);
  EXPECT_EQ(n.inverse(n.transform(s)).size(), 3u);
}

// Fitting on train only and applying to validation must not leak future info:
// validation values outside the train range land outside [0,1].
TEST(Normalizer, ValidationValuesMayExceedUnitRange) {
  const TimeSeries train({0.0, 10.0});
  const Normalizer n = Normalizer::min_max(train);
  EXPECT_GT(n.transform(20.0), 1.0);
  EXPECT_LT(n.transform(-5.0), 0.0);
}

}  // namespace
