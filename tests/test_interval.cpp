// Tests for core/interval.hpp: constructor contracts, membership, algebraic
// properties (overlap symmetry, subset transitivity) via parameterized sweeps.
#include "core/interval.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace {

using ef::core::Interval;

TEST(Interval, DefaultIsWildcard) {
  const Interval g;
  EXPECT_TRUE(g.is_wildcard());
  EXPECT_TRUE(g.contains(-1e300));
  EXPECT_TRUE(g.contains(1e300));
  EXPECT_TRUE(std::isinf(g.width()));
}

TEST(Interval, BoundedMembership) {
  const Interval g(2.0, 5.0);
  EXPECT_FALSE(g.is_wildcard());
  EXPECT_TRUE(g.contains(2.0));   // closed at both ends
  EXPECT_TRUE(g.contains(5.0));
  EXPECT_TRUE(g.contains(3.3));
  EXPECT_FALSE(g.contains(1.999));
  EXPECT_FALSE(g.contains(5.001));
}

TEST(Interval, PointIntervalContainsOnlyItself) {
  const Interval g(4.0, 4.0);
  EXPECT_TRUE(g.contains(4.0));
  EXPECT_FALSE(g.contains(4.0000001));
  EXPECT_DOUBLE_EQ(g.width(), 0.0);
}

TEST(Interval, InvertedBoundsThrow) {
  EXPECT_THROW(Interval(5.0, 2.0), std::invalid_argument);
}

TEST(Interval, NaNBoundsThrow) {
  EXPECT_THROW(Interval(std::nan(""), 1.0), std::invalid_argument);
  EXPECT_THROW(Interval(0.0, std::nan("")), std::invalid_argument);
}

TEST(Interval, InfiniteBoundsThrow) {
  EXPECT_THROW(Interval(-std::numeric_limits<double>::infinity(), 0.0),
               std::invalid_argument);
}

TEST(Interval, WildcardAccessorsThrow) {
  const Interval g = Interval::wildcard();
  EXPECT_THROW((void)g.lo(), std::logic_error);
  EXPECT_THROW((void)g.hi(), std::logic_error);
  EXPECT_THROW((void)g.midpoint(), std::logic_error);
}

TEST(Interval, MidpointAndWidth) {
  const Interval g(-2.0, 6.0);
  EXPECT_DOUBLE_EQ(g.midpoint(), 2.0);
  EXPECT_DOUBLE_EQ(g.width(), 8.0);
}

TEST(Interval, OverlapBasicCases) {
  const Interval a(0.0, 10.0);
  const Interval b(5.0, 15.0);
  const Interval c(20.0, 30.0);
  EXPECT_DOUBLE_EQ(a.overlap_width(b, -100, 100), 5.0);
  EXPECT_DOUBLE_EQ(a.overlap_width(c, -100, 100), 0.0);
  EXPECT_DOUBLE_EQ(a.overlap_width(a, -100, 100), 10.0);
}

TEST(Interval, OverlapWithWildcardUsesSpan) {
  const Interval a(0.0, 10.0);
  const Interval w = Interval::wildcard();
  EXPECT_DOUBLE_EQ(a.overlap_width(w, -50.0, 50.0), 10.0);
  EXPECT_DOUBLE_EQ(w.overlap_width(w, -50.0, 50.0), 100.0);
}

TEST(Interval, SubsetRelation) {
  const Interval inner(2.0, 3.0);
  const Interval outer(0.0, 10.0);
  EXPECT_TRUE(inner.subset_of(outer));
  EXPECT_FALSE(outer.subset_of(inner));
  EXPECT_TRUE(inner.subset_of(inner));
  EXPECT_TRUE(inner.subset_of(Interval::wildcard()));
  EXPECT_FALSE(Interval::wildcard().subset_of(outer));
  EXPECT_TRUE(Interval::wildcard().subset_of(Interval::wildcard()));
}

TEST(Interval, Equality) {
  EXPECT_EQ(Interval(1.0, 2.0), Interval(1.0, 2.0));
  EXPECT_FALSE(Interval(1.0, 2.0) == Interval(1.0, 2.5));
  EXPECT_EQ(Interval::wildcard(), Interval::wildcard());
  EXPECT_FALSE(Interval(1.0, 2.0) == Interval::wildcard());
}

// ---- property sweeps --------------------------------------------------------

class IntervalPropertyTest : public testing::TestWithParam<std::uint64_t> {};

TEST_P(IntervalPropertyTest, MembershipConsistentWithBounds) {
  ef::util::Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    double a = rng.uniform(-100.0, 100.0);
    double b = rng.uniform(-100.0, 100.0);
    if (a > b) std::swap(a, b);
    const Interval g(a, b);
    const double x = rng.uniform(-120.0, 120.0);
    EXPECT_EQ(g.contains(x), a <= x && x <= b);
  }
}

TEST_P(IntervalPropertyTest, OverlapIsSymmetricAndBounded) {
  ef::util::Rng rng(GetParam() + 1000);
  for (int i = 0; i < 200; ++i) {
    double a1 = rng.uniform(-10.0, 10.0);
    double b1 = rng.uniform(-10.0, 10.0);
    if (a1 > b1) std::swap(a1, b1);
    double a2 = rng.uniform(-10.0, 10.0);
    double b2 = rng.uniform(-10.0, 10.0);
    if (a2 > b2) std::swap(a2, b2);
    const Interval g1(a1, b1);
    const Interval g2(a2, b2);
    const double o12 = g1.overlap_width(g2, -10.0, 10.0);
    const double o21 = g2.overlap_width(g1, -10.0, 10.0);
    EXPECT_DOUBLE_EQ(o12, o21);
    EXPECT_GE(o12, 0.0);
    EXPECT_LE(o12, std::min(g1.width(), g2.width()) + 1e-12);
  }
}

TEST_P(IntervalPropertyTest, SelfOverlapEqualsWidth) {
  ef::util::Rng rng(GetParam() + 2000);
  for (int i = 0; i < 100; ++i) {
    double a = rng.uniform(-5.0, 5.0);
    double b = rng.uniform(-5.0, 5.0);
    if (a > b) std::swap(a, b);
    const Interval g(a, b);
    EXPECT_DOUBLE_EQ(g.overlap_width(g, -5.0, 5.0), g.width());
  }
}

TEST_P(IntervalPropertyTest, SubsetImpliesMembershipImplication) {
  ef::util::Rng rng(GetParam() + 3000);
  for (int i = 0; i < 100; ++i) {
    double a = rng.uniform(-10.0, 10.0);
    double b = rng.uniform(-10.0, 10.0);
    if (a > b) std::swap(a, b);
    const Interval outer(a, b);
    // Carve a random sub-interval.
    const double lo = rng.uniform(a, b);
    const double hi = rng.uniform(lo, b);
    const Interval inner(lo, hi);
    ASSERT_TRUE(inner.subset_of(outer));
    for (int k = 0; k < 20; ++k) {
      const double x = rng.uniform(-12.0, 12.0);
      if (inner.contains(x)) {
        EXPECT_TRUE(outer.contains(x));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalPropertyTest, testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
