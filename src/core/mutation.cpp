#include "core/mutation.hpp"

#include <algorithm>

namespace ef::core {

Interval mutate_gene(const Interval& gene, MutationOp op, double step, double range_lo,
                     double range_hi, util::Rng& rng) {
  const auto clamp = [&](double x) { return std::clamp(x, range_lo, range_hi); };

  if (op == MutationOp::kToggleWildcard) {
    if (gene.is_wildcard()) {
      // Re-materialise: a random sub-interval around a random centre.
      const double centre = rng.uniform(range_lo, range_hi);
      const double half = 0.5 * step;
      return Interval(clamp(centre - half), clamp(centre + half));
    }
    return Interval::wildcard();
  }

  if (gene.is_wildcard()) {
    // Geometric edits are meaningless on '*': keep the gene unchanged. (The
    // toggle op is the only way in or out of the wildcard state.)
    return gene;
  }

  double lo = gene.lo();
  double hi = gene.hi();
  switch (op) {
    case MutationOp::kEnlarge:
      lo -= step;
      hi += step;
      break;
    case MutationOp::kShrink:
      lo += step;
      hi -= step;
      if (lo > hi) lo = hi = gene.midpoint();  // collapse to a point, never invert
      break;
    case MutationOp::kShiftUp:
      lo += step;
      hi += step;
      break;
    case MutationOp::kShiftDown:
      lo -= step;
      hi -= step;
      break;
    case MutationOp::kToggleWildcard:
      break;  // handled above
  }
  lo = clamp(lo);
  hi = clamp(hi);
  if (lo > hi) std::swap(lo, hi);  // clamping a fully-out-of-range shift
  return Interval(lo, hi);
}

void mutate_rule(Rule& rule, const WindowDataset& data, const EvolutionConfig& config,
                 util::Rng& rng) {
  const double range_lo = data.value_min();
  const double range_hi = data.value_max();
  const double span = range_hi - range_lo;

  bool changed = false;
  for (auto& gene : rule.genes()) {
    if (!rng.bernoulli(config.mutation_prob)) continue;
    MutationOp op;
    if (rng.bernoulli(config.wildcard_toggle_prob)) {
      op = MutationOp::kToggleWildcard;
    } else {
      constexpr MutationOp kGeometric[] = {MutationOp::kEnlarge, MutationOp::kShrink,
                                           MutationOp::kShiftUp, MutationOp::kShiftDown};
      op = kGeometric[rng.index(4)];
    }
    // Step drawn uniformly in (0, mutation_scale·span]; a fresh draw per gene
    // lets one mutation make both fine and coarse edits.
    const double step = rng.uniform() * config.mutation_scale * span;
    gene = mutate_gene(gene, op, step, range_lo, range_hi, rng);
    changed = true;
  }
  if (changed) rule.clear_predicting();
}

}  // namespace ef::core
