#include "core/multistep.hpp"

#include <stdexcept>

namespace ef::core {

std::optional<double> iterate_forecast(const RuleSystem& one_step,
                                       std::span<const double> window,
                                       const MultistepOptions& options) {
  if (options.horizon == 0) throw std::invalid_argument("iterate_forecast: horizon == 0");
  if (window.empty()) throw std::invalid_argument("iterate_forecast: empty window");

  std::vector<double> state(window.begin(), window.end());
  double last = state.back();
  for (std::size_t step = 0; step < options.horizon; ++step) {
    const auto next = one_step.forecast(state, options.aggregation).as_optional();
    double value = 0.0;
    if (next) {
      value = *next;
    } else if (options.on_abstain == ChainAbstention::kPersistence) {
      value = last;  // bridge with the most recent (predicted) level
    } else {
      return std::nullopt;
    }
    // Slide the window: drop the oldest, append the prediction.
    state.erase(state.begin());
    state.push_back(value);
    last = value;
  }
  return last;
}

std::vector<double> iterate_trajectory(const RuleSystem& one_step,
                                       std::span<const double> window, std::size_t steps,
                                       const MultistepOptions& options) {
  if (window.empty()) throw std::invalid_argument("iterate_trajectory: empty window");

  std::vector<double> trajectory;
  trajectory.reserve(steps);
  std::vector<double> state(window.begin(), window.end());
  double last = state.back();
  for (std::size_t step = 0; step < steps; ++step) {
    const auto next = one_step.forecast(state, options.aggregation).as_optional();
    double value = 0.0;
    if (next) {
      value = *next;
    } else if (options.on_abstain == ChainAbstention::kPersistence) {
      value = last;
    } else {
      break;  // truncate at the first abstention
    }
    trajectory.push_back(value);
    state.erase(state.begin());
    state.push_back(value);
    last = value;
  }
  return trajectory;
}

series::PartialForecast iterate_forecast_dataset(const RuleSystem& one_step,
                                                 const WindowDataset& data,
                                                 ChainAbstention on_abstain,
                                                 Aggregation aggregation) {
  if (data.stride() != 1) {
    throw std::invalid_argument(
        "iterate_forecast_dataset: iterated forecasting requires stride-1 windows");
  }
  MultistepOptions options;
  options.horizon = data.horizon();
  options.on_abstain = on_abstain;
  options.aggregation = aggregation;
  if (options.horizon == 0) {
    throw std::invalid_argument("iterate_forecast_dataset: dataset horizon is 0");
  }

  series::PartialForecast out(data.count());
  for (std::size_t i = 0; i < data.count(); ++i) {
    out[i] = iterate_forecast(one_step, data.pattern(i), options);
  }
  return out;
}

}  // namespace ef::core
