#include "serve/quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/macros.hpp"
#include "obs/timeline.hpp"

namespace ef::serve {
namespace {

/// sMAPE contribution of one matured forecast, in percent (0 when both the
/// prediction and the actual are exactly zero — a perfect forecast of a
/// zero level is not a 200 % error).
double smape_term(double predicted, double actual) {
  const double denom = std::abs(predicted) + std::abs(actual);
  if (denom == 0.0) return 0.0;
  return 200.0 * std::abs(predicted - actual) / denom;
}

}  // namespace

/// One matured forecast's contribution to the rolling window. Kept small:
/// the window ring holds `QualityOptions::window` of these per model.
struct MaturedEntry {
  bool abstained = false;
  bool has_interval = false;
  bool covered = false;
  double abs_err = 0.0;
  double sq_err = 0.0;
  double smape = 0.0;
};

/// One issued, not-yet-matured forecast in the ledger ring.
struct PendingEntry {
  std::uint64_t due_tick = 0;
  double value = 0.0;
  double bound = -1.0;
  bool abstained = false;
  bool valid = false;  ///< false = empty slot / already matured / evicted
};

struct QualityTracker::ModelState {
  explicit ModelState(const QualityOptions& options)
      : ledger(options.ledger_capacity), window_capacity(options.window),
        drift(options.drift) {
    window.reserve(window_capacity);
  }

  mutable std::mutex mutex;
  std::uint64_t tick = 0;

  // Prediction ledger: fixed ring, next_slot overwrites the oldest entry
  // (evicting it if still pending) so recording is O(1) and bounded.
  std::vector<PendingEntry> ledger;
  std::size_t next_slot = 0;

  // Rolling window ring over matured forecasts, plus running sums so the
  // stats are O(1) per maturation (add the newcomer, subtract the evictee).
  std::vector<MaturedEntry> window;
  std::size_t window_capacity = 0;
  std::size_t window_next = 0;
  double sum_abs = 0.0;
  double sum_sq = 0.0;
  double sum_smape = 0.0;
  std::size_t window_scored = 0;
  std::size_t window_intervals = 0;
  std::size_t window_covered = 0;
  std::size_t window_abstained = 0;

  // Lifetime counters.
  std::uint64_t observed = 0;
  std::uint64_t matured = 0;
  std::uint64_t scored = 0;
  std::uint64_t overdue = 0;
  std::uint64_t stale = 0;
  std::uint64_t evicted = 0;

  obs::DriftDetector drift;

  void push_window(const MaturedEntry& entry, std::size_t capacity) {
    if (capacity == 0) return;
    if (window.size() < capacity) {
      window.push_back(entry);
    } else {
      const MaturedEntry& old = window[window_next];
      if (old.abstained) {
        --window_abstained;
      } else {
        sum_abs -= old.abs_err;
        sum_sq -= old.sq_err;
        sum_smape -= old.smape;
        --window_scored;
        if (old.has_interval) {
          --window_intervals;
          if (old.covered) --window_covered;
        }
      }
      window[window_next] = entry;
      window_next = (window_next + 1) % capacity;
    }
    if (entry.abstained) {
      ++window_abstained;
    } else {
      sum_abs += entry.abs_err;
      sum_sq += entry.sq_err;
      sum_smape += entry.smape;
      ++window_scored;
      if (entry.has_interval) {
        ++window_intervals;
        if (entry.covered) ++window_covered;
      }
    }
  }
};

QualityTracker::QualityTracker(QualityOptions options) : options_(options) {
  if (options_.enabled && options_.ledger_capacity > 0) {
    provider_id_ = obs::add_exposition_provider(
        [this](std::string& out, const obs::ExpositionOptions& expo) {
          render_prometheus(out, expo);
        });
  } else {
    options_.enabled = false;
  }
}

QualityTracker::~QualityTracker() {
  if (provider_id_ != 0) obs::remove_exposition_provider(provider_id_);
}

QualityTracker::ModelState* QualityTracker::state(std::string_view model, bool create) {
  const std::lock_guard lock(map_mutex_);
  const auto it = models_.find(model);
  if (it != models_.end()) return it->second.get();
  if (!create) return nullptr;
  auto inserted = models_.emplace(std::string(model),
                                  std::make_unique<ModelState>(options_));
  return inserted.first->second.get();
}

void QualityTracker::record_forecast(std::string_view model, std::size_t horizon,
                                     double value, double bound, bool abstained) {
  // Disarmed fast path: one relaxed load — the predict pipeline pays
  // nothing until actuals start flowing.
  if (!options_.enabled || !armed_.load(std::memory_order_relaxed)) return;
  ModelState* st = state(model, /*create=*/false);
  if (st == nullptr) return;  // never observed: not tracked
  if (horizon == 0) return;

  const std::lock_guard lock(st->mutex);
  PendingEntry& slot = st->ledger[st->next_slot];
  if (slot.valid) ++st->evicted;  // ring full: oldest pending forecast drops
  slot.due_tick = st->tick + horizon;
  slot.value = value;
  slot.bound = bound;
  slot.abstained = abstained;
  slot.valid = true;
  st->next_slot = (st->next_slot + 1) % st->ledger.size();
}

void QualityTracker::score(ModelState& st, double actual, ObserveResult& result) {
  for (PendingEntry& entry : st.ledger) {
    if (!entry.valid || entry.due_tick > st.tick) continue;
    entry.valid = false;
    if (entry.due_tick < st.tick) {
      // The actual for this entry's tick never arrived (clock jumped past
      // it): no honest error is computable, drop it.
      ++st.overdue;
      ++result.overdue;
      continue;
    }
    ++st.matured;
    ++result.matured;
    MaturedEntry matured;
    matured.abstained = entry.abstained;
    if (!entry.abstained) {
      ++st.scored;
      const double err = std::abs(entry.value - actual);
      matured.abs_err = err;
      matured.sq_err = err * err;
      matured.smape = smape_term(entry.value, actual);
      matured.has_interval = entry.bound >= 0.0;
      matured.covered = matured.has_interval && err <= entry.bound;
    }
    st.push_window(matured, st.window_capacity);
    if (!entry.abstained) {
      const auto signal = st.drift.update(matured.abs_err);
      if (signal == obs::DriftDetector::Signal::kDetected) result.drift_detected = true;
      if (signal == obs::DriftDetector::Signal::kCleared) result.drift_cleared = true;
    }
  }
  for (const PendingEntry& entry : st.ledger) {
    if (entry.valid) ++result.pending;
  }
}

QualityTracker::ObserveResult QualityTracker::observe(std::string_view model,
                                                      double actual,
                                                      std::optional<std::uint64_t> t) {
  ObserveResult result;
  if (!options_.enabled) return result;
  const obs::SpanScope span("serve.observe");
  if (!armed_.load(std::memory_order_relaxed)) {
    armed_.store(true, std::memory_order_relaxed);
    EVOFORECAST_EVENT("quality.armed", {"model", model});
  }
  ModelState* st = state(model, /*create=*/true);

  bool detected = false;
  bool cleared = false;
  double drift_stat = 0.0;
  std::uint64_t tick_after = 0;
  {
    const std::lock_guard lock(st->mutex);
    if (t.has_value() && *t <= st->tick) {
      ++st->stale;
      result.stale = true;
      result.tick = st->tick;
      for (const PendingEntry& entry : st->ledger) {
        if (entry.valid) ++result.pending;
      }
      EVOFORECAST_COUNT("quality.stale_observations", 1);
      return result;
    }
    st->tick = t.has_value() ? *t : st->tick + 1;
    ++st->observed;
    score(*st, actual, result);
    result.tick = st->tick;
    detected = result.drift_detected;
    cleared = result.drift_cleared;
    drift_stat = st->drift.statistic();
    tick_after = st->tick;
  }

  EVOFORECAST_COUNT("quality.observations", 1);
  if (result.matured > 0) EVOFORECAST_COUNT("quality.matured", result.matured);
  if (result.overdue > 0) EVOFORECAST_COUNT("quality.overdue", result.overdue);
  // Drift edges are events (rare by construction — one per regime change),
  // emitted outside the model lock.
  if (detected) {
    EVOFORECAST_COUNT("quality.drift_detected", 1);
    EVOFORECAST_EVENT("drift.detected", {"model", model}, {"tick", tick_after},
                      {"stat", drift_stat});
  }
  if (cleared) {
    EVOFORECAST_COUNT("quality.drift_cleared", 1);
    EVOFORECAST_EVENT("drift.cleared", {"model", model}, {"tick", tick_after});
  }
#if !EVOFORECAST_OBS_ENABLED
  (void)tick_after;
  (void)drift_stat;
  (void)detected;
  (void)cleared;
#endif
  return result;
}

std::vector<QualityTracker::ModelSnapshot> QualityTracker::snapshot() const {
  std::vector<ModelSnapshot> out;
  const std::lock_guard map_lock(map_mutex_);
  out.reserve(models_.size());
  for (const auto& [name, st] : models_) {
    const std::lock_guard lock(st->mutex);
    ModelSnapshot snap;
    snap.model = name;
    snap.tick = st->tick;
    for (const PendingEntry& entry : st->ledger) {
      if (entry.valid) ++snap.pending;
    }
    snap.observed = st->observed;
    snap.matured = st->matured;
    snap.scored = st->scored;
    snap.overdue = st->overdue;
    snap.stale = st->stale;
    snap.evicted = st->evicted;
    snap.window_n = st->window.size();
    snap.window_scored = st->window_scored;
    snap.window_intervals = st->window_intervals;
    if (st->window_scored > 0) {
      const auto n = static_cast<double>(st->window_scored);
      snap.mae = st->sum_abs / n;
      snap.rmse = std::sqrt(std::max(0.0, st->sum_sq / n));
      snap.smape = st->sum_smape / n;
    }
    if (st->window_intervals > 0) {
      snap.coverage = static_cast<double>(st->window_covered) /
                      static_cast<double>(st->window_intervals);
    }
    if (!st->window.empty()) {
      snap.abstain_share = static_cast<double>(st->window_abstained) /
                           static_cast<double>(st->window.size());
    }
    snap.drifted = st->drift.drifted();
    snap.drift_detections = st->drift.detections();
    snap.drift_stat = st->drift.statistic();
    out.push_back(std::move(snap));
  }
  return out;
}

void QualityTracker::render_prometheus(std::string& out,
                                       const obs::ExpositionOptions& expo) const {
  (void)expo;  // ef_quality_* is a fixed public namespace, not re-prefixed
  std::vector<ModelSnapshot> models = snapshot();

  const std::string armed_name = "ef_quality_armed";
  out += "# TYPE " + armed_name + " gauge\n";
  out += armed_name + (armed() ? " 1\n" : " 0\n");
  const std::string tracked_name = "ef_quality_models";
  out += "# TYPE " + tracked_name + " gauge\n";
  out += tracked_name + " " + std::to_string(models.size()) + "\n";
  if (models.empty()) return;

  // Fleet aggregate: weighted combination of every model's window, then
  // bounded per-model labels for the top-K worst by rolling RMSE. A fleet
  // of thousands of observed series exports K+1 series per family, never
  // one per model.
  ModelSnapshot fleet;
  fleet.model = "_fleet";
  double fleet_sum_sq = 0.0;
  double fleet_sum_abs = 0.0;
  double fleet_sum_smape = 0.0;
  std::size_t fleet_scored = 0;
  std::size_t fleet_intervals = 0;
  double fleet_covered = 0.0;
  std::size_t fleet_window_n = 0;
  std::size_t fleet_abstained = 0;
  for (const ModelSnapshot& m : models) {
    fleet.pending += m.pending;
    fleet.observed += m.observed;
    fleet.matured += m.matured;
    fleet.drift_detections += m.drift_detections;
    fleet.drifted = fleet.drifted || m.drifted;
    const auto n = static_cast<double>(m.window_scored);
    fleet_sum_sq += m.rmse * m.rmse * n;
    fleet_sum_abs += m.mae * n;
    fleet_sum_smape += m.smape * n;
    fleet_scored += m.window_scored;
    fleet_intervals += m.window_intervals;
    fleet_covered += m.coverage * static_cast<double>(m.window_intervals);
    fleet_window_n += m.window_n;
    fleet_abstained +=
        static_cast<std::size_t>(m.abstain_share * static_cast<double>(m.window_n) + 0.5);
  }
  if (fleet_scored > 0) {
    const auto n = static_cast<double>(fleet_scored);
    fleet.rmse = std::sqrt(std::max(0.0, fleet_sum_sq / n));
    fleet.mae = fleet_sum_abs / n;
    fleet.smape = fleet_sum_smape / n;
  }
  if (fleet_intervals > 0) {
    fleet.coverage = fleet_covered / static_cast<double>(fleet_intervals);
  }
  if (fleet_window_n > 0) {
    fleet.abstain_share =
        static_cast<double>(fleet_abstained) / static_cast<double>(fleet_window_n);
  }
  fleet.window_n = fleet_window_n;
  fleet.window_scored = fleet_scored;

  // Worst-first by rolling RMSE; models with no scored window yet sort last.
  std::sort(models.begin(), models.end(),
            [](const ModelSnapshot& a, const ModelSnapshot& b) {
              const double ra = a.window_scored > 0
                                    ? a.rmse
                                    : -std::numeric_limits<double>::infinity();
              const double rb = b.window_scored > 0
                                    ? b.rmse
                                    : -std::numeric_limits<double>::infinity();
              if (ra != rb) return ra > rb;
              return a.model < b.model;
            });
  if (models.size() > options_.top_k) models.resize(options_.top_k);
  models.push_back(std::move(fleet));

  struct Family {
    const char* name;
    const char* type;
    double (*value)(const ModelSnapshot&);
  };
  static constexpr Family kFamilies[] = {
      {"ef_quality_rmse", "gauge",
       [](const ModelSnapshot& m) {
         return m.window_scored > 0 ? m.rmse : std::nan("");
       }},
      {"ef_quality_mae", "gauge",
       [](const ModelSnapshot& m) {
         return m.window_scored > 0 ? m.mae : std::nan("");
       }},
      {"ef_quality_smape", "gauge",
       [](const ModelSnapshot& m) {
         return m.window_scored > 0 ? m.smape : std::nan("");
       }},
      {"ef_quality_coverage_ratio", "gauge",
       [](const ModelSnapshot& m) {
         return m.window_intervals > 0 ? m.coverage : std::nan("");
       }},
      {"ef_quality_abstain_ratio", "gauge",
       [](const ModelSnapshot& m) { return m.abstain_share; }},
      {"ef_quality_window_size", "gauge",
       [](const ModelSnapshot& m) { return static_cast<double>(m.window_n); }},
      {"ef_quality_pending", "gauge",
       [](const ModelSnapshot& m) { return static_cast<double>(m.pending); }},
      {"ef_quality_observed_total", "counter",
       [](const ModelSnapshot& m) { return static_cast<double>(m.observed); }},
      {"ef_quality_matured_total", "counter",
       [](const ModelSnapshot& m) { return static_cast<double>(m.matured); }},
      {"ef_quality_drift_state", "gauge",
       [](const ModelSnapshot& m) { return m.drifted ? 1.0 : 0.0; }},
      {"ef_quality_drift_detected_total", "counter",
       [](const ModelSnapshot& m) { return static_cast<double>(m.drift_detections); }},
  };
  for (const Family& family : kFamilies) {
    out += "# TYPE ";
    out += family.name;
    out += ' ';
    out += family.type;
    out += '\n';
    for (const ModelSnapshot& m : models) {
      obs::labeled_sample(out, family.name, {{"model", m.model}}, family.value(m));
    }
  }
}

}  // namespace ef::serve
