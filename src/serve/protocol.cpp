#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>

#include "serve/json.hpp"

namespace ef::serve {
namespace {

/// Shortest round-trip double formatting (%.17g trims via %g).
std::string format_double(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

/// Ids are echoed verbatim into every response for this request, so keep
/// them small enough that the echo can never dominate a response line.
constexpr std::size_t kMaxIdBytes = 256;

}  // namespace

std::optional<core::Aggregation> parse_aggregation(std::string_view name) {
  using core::Aggregation;
  for (const Aggregation a :
       {Aggregation::kMean, Aggregation::kFitnessWeighted, Aggregation::kMedian,
        Aggregation::kBestRule, Aggregation::kInverseError}) {
    if (name == core::to_string(a)) return a;
  }
  return std::nullopt;
}

std::optional<Request> parse_request(std::string_view line, ProtocolError& error) {
  error = {};
  const auto fail = [&error](ErrorCode code, std::string message) {
    error.code = code;
    error.message = std::move(message);
    return std::nullopt;
  };

  std::string parse_error;
  const std::optional<json::Value> root = json::parse(line, parse_error);
  if (!root) return fail(ErrorCode::kBadJson, "bad JSON: " + parse_error);
  const json::Object* object = root->as_object();
  if (!object) return fail(ErrorCode::kBadRequest, "request must be a JSON object");

  // Envelope fields first, so a failure in any later field can still echo
  // the id and answer in the version the client asked for.
  Request request;
  bool saw_id = false;
  for (const auto& [key, value] : *object) {
    if (key == "v") {
      const double* num = value.as_number();
      if (!num || (*num != 1.0 && *num != 2.0)) {
        return fail(ErrorCode::kBadRequest, "\"v\" must be 1 or 2");
      }
      request.version = static_cast<int>(*num);
    } else if (key == "id") {
      if (const std::string* text = value.as_string()) {
        if (text->size() > kMaxIdBytes) {
          return fail(ErrorCode::kBadRequest, "\"id\" exceeds 256 bytes");
        }
        // Built by append (not operator+ chaining): GCC 12's -Wrestrict
        // false-positives on "literal" + std::string&& under -Werror.
        request.id_json.clear();
        request.id_json += '"';
        request.id_json += json_escape(*text);
        request.id_json += '"';
      } else if (const double* num = value.as_number()) {
        request.id_json = format_double(*num);
      } else {
        return fail(ErrorCode::kBadRequest, "\"id\" must be a string or a number");
      }
      saw_id = true;
    }
  }
  // An id implies the v2 envelope regardless of key order — {"id":7,"v":1}
  // must not let the later "v" key silently drop the echoed id.
  if (saw_id) request.version = 2;
  error.version = request.version;
  error.id_json = request.id_json;

  bool saw_value = false;
  for (const auto& [key, value] : *object) {
    if (key == "v" || key == "id") {
      continue;  // envelope fields, handled above
    } else if (key == "cmd") {
      const std::string* text = value.as_string();
      if (!text) return fail(ErrorCode::kBadRequest, "\"cmd\" must be a string");
      if (*text == "predict") {
        request.cmd = Request::Cmd::kPredict;
      } else if (*text == "ping") {
        request.cmd = Request::Cmd::kPing;
      } else if (*text == "models") {
        request.cmd = Request::Cmd::kModels;
      } else if (*text == "stats") {
        request.cmd = Request::Cmd::kStats;
      } else if (*text == "metrics") {
        request.cmd = Request::Cmd::kMetrics;
      } else if (*text == "events") {
        request.cmd = Request::Cmd::kEvents;
      } else if (*text == "trace") {
        request.cmd = Request::Cmd::kTrace;
      } else if (*text == "observe") {
        request.cmd = Request::Cmd::kObserve;
      } else if (*text == "quality") {
        request.cmd = Request::Cmd::kQuality;
      } else {
        return fail(ErrorCode::kUnknownCmd, "unknown cmd '" + *text + "'");
      }
    } else if (key == "model") {
      const std::string* text = value.as_string();
      if (!text) return fail(ErrorCode::kBadRequest, "\"model\" must be a string");
      request.predict.model = *text;
      request.has_model = true;
    } else if (key == "value") {
      const double* num = value.as_number();
      if (!num || !std::isfinite(*num)) {
        return fail(ErrorCode::kBadRequest, "\"value\" must be a finite number");
      }
      request.observe.value = *num;
      saw_value = true;
    } else if (key == "t") {
      const double* num = value.as_number();
      if (!num || *num < 0.0 || *num != std::floor(*num) || *num > 1.0e15) {
        return fail(ErrorCode::kBadRequest, "\"t\" must be a non-negative integer");
      }
      request.observe.t = static_cast<std::uint64_t>(*num);
    } else if (key == "window") {
      const json::Array* array = value.as_array();
      if (!array) {
        return fail(ErrorCode::kBadRequest, "\"window\" must be an array of numbers");
      }
      request.predict.window.clear();
      request.predict.window.reserve(array->size());
      for (const json::Value& item : *array) {
        const double* num = item.as_number();
        if (!num) {
          return fail(ErrorCode::kBadRequest, "\"window\" must contain only numbers");
        }
        request.predict.window.push_back(*num);
      }
    } else if (key == "horizon") {
      const double* num = value.as_number();
      if (!num || *num < 1.0 || *num != std::floor(*num) || *num > 1.0e9) {
        return fail(ErrorCode::kBadRequest, "\"horizon\" must be a positive integer");
      }
      request.predict.horizon = static_cast<std::size_t>(*num);
    } else if (key == "agg") {
      const std::string* text = value.as_string();
      const auto agg = text ? parse_aggregation(*text) : std::nullopt;
      if (!agg) {
        return fail(ErrorCode::kBadRequest,
                    "\"agg\" must be one of mean|fitness_weighted|median|best_rule|inverse_error");
      }
      request.predict.agg = *agg;
    } else if (key == "cache") {
      const bool* flag = value.as_bool();
      if (!flag) return fail(ErrorCode::kBadRequest, "\"cache\" must be a boolean");
      request.predict.use_cache = *flag;
    } else {
      return fail(ErrorCode::kUnknownField, "unknown field \"" + key + "\"");
    }
  }
  // Cross-field validation: observe's payload fields belong to observe only,
  // and an observe without a realized value is meaningless.
  if (request.cmd == Request::Cmd::kObserve) {
    if (!saw_value) return fail(ErrorCode::kBadRequest, "observe requires \"value\"");
  } else if (saw_value || request.observe.t.has_value()) {
    return fail(ErrorCode::kBadRequest,
                "\"value\"/\"t\" are only valid with cmd \"observe\"");
  }
  return request;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string envelope_json(int version, std::string_view id_json) {
  if (version < 2) return {};
  std::string out = ",\"v\":2";
  if (!id_json.empty()) {
    out += ",\"id\":";
    out += id_json;
  }
  return out;
}

std::string error_json(std::string_view reason) {
  return "{\"ok\":false,\"error\":\"" + json_escape(reason) + "\"}";
}

std::string error_json(ErrorCode code, std::string_view reason, int version,
                       std::string_view id_json) {
  if (version < 2) return error_json(reason);
  std::string out = "{\"ok\":false";
  out += envelope_json(version, id_json);
  out += ",\"error\":{\"code\":\"";
  out += to_string(code);
  out += "\",\"message\":\"" + json_escape(reason) + "\"}}";
  return out;
}

std::string to_json(const PredictResponse& response, const Request& request) {
  if (!response.ok) {
    return error_json(response.code, response.error, request.version, request.id_json);
  }
  std::string out = "{\"ok\":true";
  out += envelope_json(request.version, request.id_json);
  out += ",\"model\":\"" + json_escape(response.model) + "\"";
  out += ",\"version\":" + std::to_string(response.version);
  out += ",\"horizon\":" + std::to_string(response.horizon);
  out += ",\"abstain\":";
  out += response.abstain ? "true" : "false";
  if (!response.abstain) {
    out += ",\"value\":" + format_double(response.value);
    // v2 only — v1 responses stay byte-identical to the pre-interval wire.
    if (request.version >= 2 && response.bound >= 0.0) {
      out += ",\"interval\":[" + format_double(response.value - response.bound) + "," +
             format_double(response.value + response.bound) + "]";
    }
  }
  out += ",\"votes\":" + std::to_string(response.votes);
  out += ",\"cached\":";
  out += response.cached ? "true" : "false";
  out += "}";
  return out;
}

std::string to_json(const PredictResponse& response) {
  return to_json(response, Request{});
}

}  // namespace ef::serve
