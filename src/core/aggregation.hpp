// aggregation.hpp — query-time combination of matching rules' outputs.
//
// Paper §3.4 averages the outputs of every matching rule. That is one point
// in a design space this module makes explicit (and Ablation D benches):
//   * kMean            — the paper's choice; robust, no extra state
//   * kFitnessWeighted — rules that matched more training windows with less
//                        error carry more weight (weight = max(fitness, 0))
//   * kMedian          — order statistic; robust to one bad specialist
//   * kBestRule        — winner-takes-all by fitness (classic classifier-
//                        system "action selection")
//   * kInverseError    — weight = 1/(e_R + ε); trusts tight rules most
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/rule.hpp"

namespace ef::core {

enum class Aggregation {
  kMean,
  kFitnessWeighted,
  kMedian,
  kBestRule,
  kInverseError,
};

[[nodiscard]] constexpr const char* to_string(Aggregation a) noexcept {
  switch (a) {
    case Aggregation::kMean: return "mean";
    case Aggregation::kFitnessWeighted: return "fitness_weighted";
    case Aggregation::kMedian: return "median";
    case Aggregation::kBestRule: return "best_rule";
    case Aggregation::kInverseError: return "inverse_error";
  }
  return "?";
}

/// One matching rule's contribution to a forecast.
struct Vote {
  double value = 0.0;    ///< hyperplane output for this window
  double fitness = 0.0;  ///< rule fitness (may be f_min / negative)
  double error = 0.0;    ///< rule e_R
};

/// Combine votes under the given strategy. Returns nullopt on an empty vote
/// set (abstention). Exposed separately from RuleSystem so it can be
/// property-tested in isolation.
[[nodiscard]] std::optional<double> aggregate_votes(std::vector<Vote> votes, Aggregation how);

/// Interval half-width of an aggregated forecast: max over voters of
/// e_R + |v_R − value|. Every voter guaranteed |target − v_R| ≤ e_R on its
/// training region, so [value − bound, value + bound] contains the target
/// whenever any voter's guarantee holds. Returns 0 on an empty vote set
/// (callers gate on abstention first).
[[nodiscard]] double vote_bound(std::span<const Vote> votes, double value);

/// Collect the votes of every rule in `rules` that matches `window`.
[[nodiscard]] std::vector<Vote> collect_votes(std::span<const Rule> rules,
                                              std::span<const double> window);

}  // namespace ef::core
