// Tests for obs/timeline.{hpp,cpp} + obs/timeline_export.hpp: ring
// wraparound, parent/child nesting, context propagation across a real
// thread hop, head-sampling, slow-request exemplars, and the Chrome
// trace-event exporter.
//
// The file compiles (and its unguarded tests pass) under
// -DEVOFORECAST_OBS=OFF too — every scope becomes an inline stub and
// snapshots come back empty — so assertions that need real recording sit
// behind #if EVOFORECAST_OBS_ENABLED.
//
// The timeline is process-wide with per-thread rings that are recycled
// through a free pool, so ordering matters: the wraparound test runs FIRST
// (gtest registers in file order) because it needs a freshly created ring
// at its small capacity — any thread spawned later may inherit that parked
// ring from the pool. Tests keep per-trace span counts at or below that
// small capacity and reset() between tests.
#include "obs/timeline.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "obs/timeline_export.hpp"

namespace {

using ef::obs::ContextGuard;
using ef::obs::SpanScope;
using ef::obs::Timeline;
using ef::obs::TimelineSnapshot;
using ef::obs::TimelineSpan;
using ef::obs::TraceContext;
using ef::obs::TraceScope;

[[maybe_unused]] std::vector<TimelineSpan> spans_of(const TimelineSnapshot& snap,
                                                    std::uint64_t trace_id) {
  std::vector<TimelineSpan> out;
  for (const TimelineSpan& span : snap.spans) {
    if (span.trace_id == trace_id) out.push_back(span);
  }
  return out;
}

#if EVOFORECAST_OBS_ENABLED

TEST(ObsTimeline, RingWrapsAroundKeepingNewestSpans) {
  Timeline::set_ring_capacity(4);
  EXPECT_EQ(Timeline::ring_capacity(), 4u);
  Timeline::set_sample_rate(1.0);
  Timeline::reset();

  std::uint64_t trace_id = 0;
  std::uint64_t last_span = 0;
  std::thread emitter([&] {
    const TraceScope root("wrap.root");
    trace_id = root.trace_id();
    const TraceContext ctx = root.context();
    for (std::int64_t i = 0; i < 10; ++i) {
      last_span = Timeline::emit(ctx, "wrap.span", i, i + 1);
    }
  });
  emitter.join();

  // 10 emits + the root close went through a 4-slot ring: at most 4 spans
  // survive, the newest writes win, and the last-emitted span is among them.
  const auto spans = spans_of(Timeline::snapshot(), trace_id);
  ASSERT_GT(trace_id, 0u);
  EXPECT_EQ(spans.size(), 4u);
  bool saw_last = false;
  bool saw_root = false;
  for (const TimelineSpan& span : spans) {
    if (span.span_id == last_span) saw_last = true;
    if (std::string(span.name) == "wrap.root") saw_root = true;
  }
  EXPECT_TRUE(saw_last);
  EXPECT_TRUE(saw_root);  // the root closed last, so it cannot be overwritten

  Timeline::set_ring_capacity(8192);  // fresh rings after this test: default
}

TEST(ObsTimeline, NestedScopesRecordParentChildWithArgs) {
  Timeline::set_sample_rate(1.0);
  Timeline::reset();

  std::uint64_t trace_id = 0;
  {
    const TraceScope root("nest.root");
    EXPECT_TRUE(root.active());
    trace_id = root.trace_id();
    SpanScope child("nest.child");
    EXPECT_TRUE(child.active());
    child.set_arg("k", 7.0);
  }

  const auto spans = spans_of(Timeline::snapshot(), trace_id);
  ASSERT_EQ(spans.size(), 2u);
  const bool first_is_child = std::string(spans[0].name) == "nest.child";
  const TimelineSpan& child = first_is_child ? spans[0] : spans[1];
  const TimelineSpan& root = first_is_child ? spans[1] : spans[0];
  EXPECT_EQ(std::string(root.name), "nest.root");
  EXPECT_EQ(root.parent_id, 0u);
  EXPECT_EQ(child.parent_id, root.span_id);
  EXPECT_TRUE(root.sampled);  // rate 1.0: every trace draws in
  ASSERT_NE(child.arg_key, nullptr);
  EXPECT_EQ(std::string(child.arg_key), "k");
  EXPECT_DOUBLE_EQ(child.arg_value, 7.0);
}

TEST(ObsTimeline, ContextCrossesThreadHop) {
  Timeline::set_sample_rate(1.0);
  Timeline::reset();

  std::uint64_t trace_id = 0;
  std::uint64_t root_span = 0;
  {
    const TraceScope root("hop.root");
    trace_id = root.trace_id();
    const TraceContext ctx = root.context();
    root_span = ctx.span_id;
    // Pin this thread's ring before the worker runs: rings are recycled
    // through a free pool, so otherwise the worker's parked ring (same
    // thread_index) would be handed to this thread at root close.
    Timeline::emit(ctx, "hop.prelude", 0, 1);
    std::thread worker([ctx] {
      const ContextGuard guard(ctx);
      EXPECT_EQ(ef::obs::current_context().trace_id, ctx.trace_id);
      const SpanScope span("hop.worker");
      EXPECT_TRUE(span.active());
    });
    worker.join();
    EXPECT_FALSE(ef::obs::current_context().trace_id == 0);  // guard restored
  }

  const auto spans = spans_of(Timeline::snapshot(), trace_id);
  ASSERT_EQ(spans.size(), 3u);
  const TimelineSpan* worker = nullptr;
  const TimelineSpan* root = nullptr;
  for (const TimelineSpan& span : spans) {
    if (std::string(span.name) == "hop.worker") worker = &span;
    if (std::string(span.name) == "hop.root") root = &span;
  }
  ASSERT_NE(worker, nullptr);
  ASSERT_NE(root, nullptr);
  EXPECT_EQ(worker->trace_id, root->trace_id);  // one trace across both threads
  EXPECT_EQ(worker->parent_id, root_span);      // child of the handed-over span
  EXPECT_NE(worker->thread_index, root->thread_index);
}

TEST(ObsTimeline, RetrospectiveEmitDefaultsParentToContextSpan) {
  Timeline::set_sample_rate(1.0);
  Timeline::reset();

  const TraceContext ctx{4242, 17, true};
  const std::uint64_t id = Timeline::emit(ctx, "emit.span", 100, 250, 0, "batch", 3.0);
  ASSERT_NE(id, 0u);

  const auto spans = spans_of(Timeline::snapshot(), 4242);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].span_id, id);
  EXPECT_EQ(spans[0].parent_id, 17u);  // parent 0 means "under ctx.span_id"
  EXPECT_EQ(spans[0].t_start_us, 100);
  EXPECT_EQ(spans[0].dur_us, 150);
  ASSERT_NE(spans[0].arg_key, nullptr);
  EXPECT_EQ(std::string(spans[0].arg_key), "batch");
}

TEST(ObsTimeline, ExporterKeepsSampledAndSlowDropsRest) {
  Timeline::set_sample_rate(1.0);
  Timeline::reset();

  const TraceContext sampled_ctx{1001, 0, true};
  Timeline::emit(sampled_ctx, "exp.sampled", 10, 20);
  const TraceContext unsampled_ctx{1002, 0, false};
  Timeline::emit(unsampled_ctx, "exp.unsampled", 30, 40);

  std::string json = ef::obs::chrome_trace_json();
  EXPECT_NE(json.find("\"displayTimeUnit\""), std::string::npos);
  EXPECT_NE(json.find("exp.sampled"), std::string::npos);
  EXPECT_EQ(json.find("exp.unsampled"), std::string::npos)
      << "head-sample verdict must gate export";

  // A slow exemplar rescues the unsampled trace: full span tree plus a
  // serve.slow_request instant marker carrying the tripping latency.
  Timeline::mark_slow(1002, 123.5);
  json = ef::obs::chrome_trace_json();
  EXPECT_NE(json.find("exp.unsampled"), std::string::npos);
  EXPECT_NE(json.find("slow_us"), std::string::npos);
  EXPECT_NE(json.find("serve.slow_request"), std::string::npos);
}

TEST(ObsTimeline, HeadSamplingDrawsBothWays) {
  Timeline::set_sample_rate(0.5);
  EXPECT_DOUBLE_EQ(Timeline::sample_rate(), 0.5);
  Timeline::reset();

  int sampled = 0;
  for (int i = 0; i < 256; ++i) {
    const TraceScope t("draw.root");
    sampled += t.context().sampled ? 1 : 0;
  }
  // P(all 256 draws agree) = 2^-255: a failure here is a broken RNG or a
  // threshold mapped to 0/1, not bad luck.
  EXPECT_GT(sampled, 0);
  EXPECT_LT(sampled, 256);
}

#endif  // EVOFORECAST_OBS_ENABLED

// The remaining tests run identically with real recording disarmed (rate 0)
// and with the OBS=OFF stubs: every entry point must be callable and inert.

TEST(ObsTimeline, DisarmedScopesAreInactiveAndRecordNothing) {
  Timeline::set_sample_rate(0.0);
  Timeline::reset();
  EXPECT_FALSE(Timeline::enabled());
  {
    const TraceScope root("off.root");
    EXPECT_FALSE(root.active());
    EXPECT_EQ(root.trace_id(), 0u);
    EXPECT_FALSE(root.context().active());
    EXPECT_FALSE(ef::obs::current_context().active());
    SpanScope child("off.child");
    child.set_arg("k", 1.0);
    EXPECT_FALSE(child.active());
  }
  EXPECT_TRUE(Timeline::snapshot().spans.empty());
}

TEST(ObsTimeline, InactiveContextEmitsNothing) {
  Timeline::set_sample_rate(0.0);
  Timeline::reset();
  const TraceContext none{};
  EXPECT_EQ(Timeline::emit(none, "noop", 0, 1), 0u);
  {
    const ContextGuard guard(none);
    EXPECT_FALSE(ef::obs::current_context().active());
  }
  Timeline::mark_slow(0, 1.0);  // trace id 0 is "no trace": ignored
  const TimelineSnapshot snap = Timeline::snapshot();
  EXPECT_TRUE(snap.spans.empty());
  EXPECT_TRUE(snap.slow.empty());
}

}  // namespace
