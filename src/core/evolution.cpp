#include "core/evolution.hpp"

#include <algorithm>

#include <stdexcept>

#include "core/crossover.hpp"
#include "core/mutation.hpp"
#include "core/selection.hpp"
#include "obs/macros.hpp"
#include "obs/timeline.hpp"

namespace ef::core {

SteadyStateEngine::SteadyStateEngine(const WindowDataset& data, EvolutionConfig config,
                                     util::ThreadPool* pool, TelemetrySink telemetry)
    : SteadyStateEngine(data, config, std::vector<Rule>{}, pool, std::move(telemetry)) {}

SteadyStateEngine::SteadyStateEngine(const WindowDataset& data, EvolutionConfig config,
                                     std::vector<Rule> seed_population,
                                     util::ThreadPool* pool, TelemetrySink telemetry)
    : data_(data),
      config_(config),
      engine_(data, pool, resolve_match_backend(config.match_backend)),
      evaluator_(engine_, config_),
      rng_(config.seed),
      telemetry_(std::move(telemetry)) {
  config_.validate();

  if (seed_population.empty()) {
    population_ = initialize_population(data_, config_, rng_);
  } else {
    // Warm start. Drop rules whose window length doesn't fit the data, then
    // top up / trim to population_size.
    population_.reserve(config_.population_size);
    for (Rule& rule : seed_population) {
      if (rule.window() == data_.window()) {
        rule.clear_predicting();  // stale against the new data
        population_.push_back(std::move(rule));
      }
    }
    if (population_.size() < config_.population_size) {
      auto fresh = initialize_population(data_, config_, rng_);
      for (Rule& rule : fresh) {
        if (population_.size() >= config_.population_size) break;
        population_.push_back(std::move(rule));
      }
    }
  }

  const bool track_matches = config_.distance == DistanceMetric::kMatchedJaccard &&
                             config_.replacement == ReplacementStrategy::kCrowding;
  // Initial population: one batched pass (under the rule-major backend the
  // whole set is matched in a single window sweep) unless the per-rule
  // ablation path is selected.
  evaluator_.evaluate_population(population_, track_matches ? &matched_ : nullptr,
                                 config_.batched_fitness);

  // Warm start with surplus seeds: keep the fittest population_size rules.
  if (population_.size() > config_.population_size) {
    std::sort(population_.begin(), population_.end(),
              [](const Rule& a, const Rule& b) { return a.fitness() > b.fitness(); });
    population_.resize(config_.population_size);
    if (track_matches) {
      // Matched sets were evaluated pre-sort; re-evaluate to realign.
      evaluator_.evaluate_population(population_, &matched_, config_.batched_fitness);
    }
  }
  emit_telemetry();  // generation-0 snapshot
}

bool SteadyStateEngine::step() {
  EVOFORECAST_TRACE("core.evolution.step");
  // One timeline span per generation when a core.train trace is live; a
  // single thread-local check otherwise.
  const obs::SpanScope generation_span("train.generation");
  ++generation_;

  const ParentPair parents = select_parents(population_, config_.tournament_rounds, rng_);
  EVOFORECAST_COUNT("evolution.tournament_rounds", config_.tournament_rounds);
  Rule offspring =
      uniform_crossover(population_[parents.first], population_[parents.second], rng_);
  mutate_rule(offspring, data_, config_, rng_);
  EVOFORECAST_COUNT("evolution.offspring_generated", 1);

  const bool track_matches = !matched_.empty();
  std::vector<std::size_t> offspring_matches;
  evaluator_.evaluate(offspring, track_matches ? &offspring_matches : nullptr);

  const std::size_t victim =
      choose_victim(population_, offspring, config_, data_, rng_, matched_, offspring_matches);

  bool accepted = false;
  if (offspring.fitness() > population_[victim].fitness()) {
    population_[victim] = std::move(offspring);
    if (track_matches) matched_[victim] = std::move(offspring_matches);
    ++replacements_;
    accepted = true;
    EVOFORECAST_COUNT("evolution.offspring_accepted", 1);
    if (config_.replacement == ReplacementStrategy::kCrowding) {
      EVOFORECAST_COUNT("evolution.crowding_replacements", 1);
    }
  }

  if (config_.telemetry_stride != 0 && generation_ % config_.telemetry_stride == 0) {
    emit_telemetry();
  }
  return accepted;
}

void SteadyStateEngine::run() {
  EVOFORECAST_TRACE("core.evolution.run");
  while (generation_ < config_.generations) step();
}

const Rule& SteadyStateEngine::best() const {
  if (population_.empty()) throw std::logic_error("SteadyStateEngine::best: empty population");
  const Rule* best = &population_.front();
  for (const Rule& r : population_) {
    if (r.fitness() > best->fitness()) best = &r;
  }
  return *best;
}

TelemetryRecord SteadyStateEngine::snapshot() const {
  TelemetryRecord rec;
  rec.generation = generation_;
  rec.replacements = replacements_;
  if (population_.empty()) return rec;

  double best_fitness = population_.front().fitness();
  double fitness_sum = 0.0;
  double error_sum = 0.0;
  double matches_sum = 0.0;
  double specificity_sum = 0.0;
  for (const Rule& r : population_) {
    const double f = r.fitness();
    best_fitness = f > best_fitness ? f : best_fitness;
    fitness_sum += f;
    if (r.predicting()) {
      error_sum += r.predicting()->error();
      matches_sum += static_cast<double>(r.predicting()->matches);
    }
    specificity_sum += static_cast<double>(r.specificity());
  }
  const auto n = static_cast<double>(population_.size());
  rec.best_fitness = best_fitness;
  rec.mean_fitness = fitness_sum / n;
  rec.mean_error = error_sum / n;
  rec.mean_matches = matches_sum / n;
  rec.mean_specificity = specificity_sum / n;
  return rec;
}

void SteadyStateEngine::emit_telemetry() {
#if !EVOFORECAST_OBS_ENABLED
  if (!telemetry_) return;  // nothing to feed: no sink, events compiled out
#endif
  TelemetryRecord rec = snapshot();
  rec.registry = &obs::Registry::global();
  EVOFORECAST_EVENT("train.generation", {"engine", "steady_state"},
                    {"generation", rec.generation}, {"best_fitness", rec.best_fitness},
                    {"mean_fitness", rec.mean_fitness}, {"mean_error", rec.mean_error},
                    {"mean_matches", rec.mean_matches},
                    {"replacements", rec.replacements});
  if (telemetry_) telemetry_(rec);
}

}  // namespace ef::core
