// Tests for the serving pipeline: ForecastService (validation, cache
// equivalence, abstention, multi-step, hot-reload under load, graceful
// shutdown), the JSON-lines protocol, and a loopback TCP roundtrip.
#include "serve/service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/interval.hpp"
#include "core/multistep.hpp"
#include "core/rule.hpp"
#include "core/rule_system.hpp"
#include "serve/model_store.hpp"
#include "serve/protocol.hpp"
#include "serve/reactor.hpp"
#include "util/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

using ef::core::Aggregation;
using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleSystem;
using ef::serve::ForecastService;
using ef::serve::ModelStore;
using ef::serve::PredictRequest;
using ef::serve::Request;
using ef::serve::ServeOptions;

Rule make_rule(std::vector<Interval> genes, std::vector<double> coeffs, double fitness,
               double error) {
  Rule r(std::move(genes));
  ef::core::PredictingPart part;
  part.fit.coeffs = std::move(coeffs);
  part.fit.mean_prediction = part.fit.coeffs.back();
  part.fit.max_abs_residual = error;
  part.matches = 7;
  part.fitness = fitness;
  r.set_predicting(part);
  return r;
}

/// Overlapping window-3 rules over [0,1]^3 — same shape as the batch tests,
/// different constants, so uncovered probes abstain.
RuleSystem make_system() {
  RuleSystem system;
  std::vector<Rule> rules;
  rules.push_back(make_rule({Interval(0.0, 0.7), Interval::wildcard(), Interval(0.0, 1.0)},
                            {0.2, 0.3, -0.1, 0.3}, 2.0, 0.05));
  rules.push_back(make_rule({Interval(0.1, 0.9), Interval(0.0, 0.8), Interval::wildcard()},
                            {0.1, 0.2, 0.4, 0.1}, 3.0, 0.02));
  rules.push_back(make_rule({Interval::wildcard(), Interval(0.2, 1.0), Interval(0.0, 0.6)},
                            {0.3, 0.3, 0.3, 0.05}, 1.5, 0.1));
  system.add_rules(std::move(rules), false, -1.0);
  return system;
}

/// A system predicting a damped recurrence on all of [0,2]^2 — every
/// iterated step stays covered, so horizon > 1 never abstains.
RuleSystem make_covering_system() {
  Rule rule({Interval(0.0, 2.0), Interval(0.0, 2.0)});
  ef::core::PredictingPart part;
  part.fit.coeffs = {0.3, 0.6, 0.05};
  part.fit.mean_prediction = 0.5;
  part.fit.max_abs_residual = 0.01;
  part.matches = 5;
  part.fitness = 2.0;
  rule.set_predicting(part);
  RuleSystem system;
  system.add_rules({rule}, false, -1.0);
  return system;
}

PredictRequest request_for(std::vector<double> window, std::size_t horizon = 1,
                           Aggregation agg = Aggregation::kMean) {
  PredictRequest req;
  req.model = "m";
  req.window = std::move(window);
  req.horizon = horizon;
  req.agg = agg;
  return req;
}

ServeOptions no_batch_config() {
  ServeOptions options;
  options.enable_batcher = false;  // deterministic single-thread path
  return options;
}

TEST(ForecastService, ValidationErrorsNeverThrow) {
  ModelStore store;
  store.add_system("m", make_system());
  ForecastService service(store, no_batch_config());

  // Unknown model.
  auto r = service.predict(request_for({0.5, 0.5, 0.5}));
  EXPECT_TRUE(r.ok);
  PredictRequest unknown = request_for({0.5, 0.5, 0.5});
  unknown.model = "nope";
  r = service.predict(unknown);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());

  // Empty window.
  r = service.predict(request_for({}));
  EXPECT_FALSE(r.ok);

  // Window length mismatch with the model.
  r = service.predict(request_for({0.5, 0.5}));
  EXPECT_FALSE(r.ok);

  // Horizon 0 and horizon beyond the configured cap.
  r = service.predict(request_for({0.5, 0.5, 0.5}, 0));
  EXPECT_FALSE(r.ok);
  r = service.predict(request_for({0.5, 0.5, 0.5}, 1 << 20));
  EXPECT_FALSE(r.ok);
}

TEST(ForecastService, MatchesCorePredictAndReportsAbstention) {
  ModelStore store;
  const RuleSystem reference = make_system();
  store.add_system("m", make_system());
  ForecastService service(store, no_batch_config());

  ef::util::Rng rng(7);
  std::size_t abstentions = 0;
  for (int i = 0; i < 100; ++i) {
    std::vector<double> window{rng.uniform(-0.2, 1.4), rng.uniform(-0.2, 1.4),
                               rng.uniform(-0.2, 1.4)};
    const auto expected = reference.forecast(window).as_optional();
    PredictRequest req = request_for(window);
    req.use_cache = false;
    const auto response = service.predict(req);
    ASSERT_TRUE(response.ok);
    EXPECT_EQ(response.abstain, !expected.has_value());
    if (expected) {
      EXPECT_EQ(response.value, *expected);
      EXPECT_GT(response.votes, 0u);
    } else {
      ++abstentions;
      EXPECT_EQ(response.votes, 0u);
    }
  }
  EXPECT_GT(abstentions, 0u);
  EXPECT_LT(abstentions, 100u);
}

TEST(ForecastService, CachedEqualsUncachedExactly) {
  ModelStore store;
  store.add_system("m", make_system());
  ForecastService service(store, no_batch_config());

  ef::util::Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    std::vector<double> window{rng.uniform(-0.2, 1.4), rng.uniform(-0.2, 1.4),
                               rng.uniform(-0.2, 1.4)};
    PredictRequest req = request_for(window);
    const auto cold = service.predict(req);
    const auto warm = service.predict(req);
    ASSERT_TRUE(cold.ok);
    ASSERT_TRUE(warm.ok);
    EXPECT_FALSE(cold.cached);
    EXPECT_TRUE(warm.cached);
    EXPECT_EQ(cold.abstain, warm.abstain);
    if (!cold.abstain) {
      EXPECT_EQ(cold.value, warm.value);  // bit-identical
    }
    EXPECT_EQ(cold.votes, warm.votes);

    // Per-request bypass recomputes but must agree too.
    req.use_cache = false;
    const auto bypass = service.predict(req);
    ASSERT_TRUE(bypass.ok);
    EXPECT_FALSE(bypass.cached);
    EXPECT_EQ(cold.abstain, bypass.abstain);
    if (!cold.abstain) {
      EXPECT_EQ(cold.value, bypass.value);
    }
  }
  const auto stats = service.cache_stats();
  EXPECT_GE(stats.hits, 50u);
}

TEST(ForecastService, CacheDisabledStillCorrect) {
  ModelStore store;
  store.add_system("m", make_system());
  ServeOptions config = no_batch_config();
  config.enable_cache = false;
  ForecastService service(store, config);

  const auto a = service.predict(request_for({0.5, 0.5, 0.5}));
  const auto b = service.predict(request_for({0.5, 0.5, 0.5}));
  ASSERT_TRUE(a.ok);
  ASSERT_TRUE(b.ok);
  EXPECT_FALSE(a.cached);
  EXPECT_FALSE(b.cached);
  if (!a.abstain) {
    EXPECT_EQ(a.value, b.value);
  }
}

TEST(ForecastService, MultiStepMatchesIterateForecast) {
  ModelStore store;
  const RuleSystem reference = make_covering_system();
  store.add_system("m", make_covering_system());
  ForecastService service(store, no_batch_config());

  const std::vector<double> window{0.8, 1.1};
  for (std::size_t horizon : {1u, 2u, 5u, 12u}) {
    ef::core::MultistepOptions options;
    options.horizon = horizon;
    options.on_abstain = ef::core::ChainAbstention::kAbstain;
    const auto expected = ef::core::iterate_forecast(reference, window, options);

    PredictRequest req = request_for(window, horizon);
    req.use_cache = false;
    const auto response = service.predict(req);
    ASSERT_TRUE(response.ok) << "horizon " << horizon;
    ASSERT_TRUE(expected.has_value());
    EXPECT_FALSE(response.abstain);
    EXPECT_EQ(response.value, *expected) << "horizon " << horizon;

    // And the cached replay agrees.
    req.use_cache = true;
    const auto cold = service.predict(req);
    const auto warm = service.predict(req);
    EXPECT_EQ(cold.value, *expected);
    EXPECT_TRUE(warm.cached);
    EXPECT_EQ(warm.value, *expected);
  }
}

TEST(ForecastService, MultiStepAbstainsWhenChainBreaks) {
  ModelStore store;
  store.add_system("m", make_system());
  ForecastService service(store, no_batch_config());

  // This window is covered at step one (rule 1 matches) but sliding it
  // forward pushes the next window outside every rule, so the chain must
  // abstain — and the response says so explicitly rather than fabricating
  // a value.
  const std::vector<double> window{0.0, 5.0, 0.0};
  const RuleSystem reference = make_system();
  ASSERT_TRUE(reference.forecast(window).as_optional().has_value()) << "step one should be covered";
  ef::core::MultistepOptions options;
  options.horizon = 3;
  const auto expected = ef::core::iterate_forecast(reference, window, options);
  ASSERT_FALSE(expected.has_value()) << "chain should break before horizon 3";

  PredictRequest req = request_for(window, 3);
  req.use_cache = false;
  const auto response = service.predict(req);
  ASSERT_TRUE(response.ok);
  EXPECT_TRUE(response.abstain);
  EXPECT_EQ(response.votes, 0u);
}

TEST(ForecastService, BatchedPathAgreesWithInline) {
  ModelStore store;
  store.add_system("m", make_system());
  ServeOptions batched;
  batched.enable_cache = false;
  ForecastService with_batcher(store, batched);
  ForecastService inline_service(store, no_batch_config());

  ef::util::Rng rng(23);
  std::vector<std::vector<double>> probes;
  for (int i = 0; i < 32; ++i) {
    probes.push_back(
        {rng.uniform(-0.2, 1.4), rng.uniform(-0.2, 1.4), rng.uniform(-0.2, 1.4)});
  }

  // Fire concurrently so the batcher actually coalesces.
  std::vector<ef::serve::PredictResponse> batched_out(probes.size());
  std::vector<std::thread> clients;
  for (std::size_t i = 0; i < probes.size(); ++i) {
    clients.emplace_back([&, i] { batched_out[i] = with_batcher.predict(request_for(probes[i])); });
  }
  for (auto& c : clients) c.join();

  for (std::size_t i = 0; i < probes.size(); ++i) {
    const auto expected = inline_service.predict(request_for(probes[i]));
    ASSERT_TRUE(batched_out[i].ok) << "probe " << i;
    EXPECT_EQ(batched_out[i].abstain, expected.abstain) << "probe " << i;
    if (!expected.abstain) {
      EXPECT_EQ(batched_out[i].value, expected.value) << "probe " << i;
    }
    EXPECT_EQ(batched_out[i].votes, expected.votes) << "probe " << i;
  }
}

TEST(ForecastService, HotReloadWithPredictionsInFlightZeroFailures) {
  ModelStore store;
  store.add_system("m", make_covering_system());
  ServeOptions config;
  config.enable_cache = false;  // every request exercises the live model
  ForecastService service(store, config);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failed{0};
  std::atomic<std::size_t> completed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto r = service.predict(request_for({0.8, 1.1}));
        if (!r.ok || r.abstain) ++failed;
        ++completed;
      }
    });
  }

  // Swap the model repeatedly while the clients hammer it.
  for (int swap = 0; swap < 20; ++swap) {
    store.add_system("m", make_covering_system());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  stop = true;
  for (auto& c : clients) c.join();

  EXPECT_EQ(failed.load(), 0u);
  EXPECT_GT(completed.load(), 0u);
  EXPECT_EQ(store.get("m")->version(), 21u);
}

TEST(ForecastService, GracefulShutdownDrainsThenRejects) {
  ModelStore store;
  store.add_system("m", make_covering_system());
  ForecastService service(store);

  // Queue a burst of concurrent requests, then shut down while they are in
  // flight: every submitted request must complete (drained, not dropped).
  constexpr int kClients = 16;
  std::vector<ef::serve::PredictResponse> out(kClients);
  std::vector<std::thread> clients;
  for (int i = 0; i < kClients; ++i) {
    clients.emplace_back([&, i] {
      out[i] = service.predict(request_for({0.8 + 0.001 * i, 1.1}));
    });
  }
  service.shutdown();
  for (auto& c : clients) c.join();

  for (int i = 0; i < kClients; ++i) {
    // A request either completed normally (drained) or was refused because
    // shutdown had already begun — it must never hang or produce a torn
    // response.
    if (out[i].ok) {
      EXPECT_FALSE(out[i].abstain) << "client " << i;
    } else {
      EXPECT_FALSE(out[i].error.empty()) << "client " << i;
    }
  }

  EXPECT_FALSE(service.accepting());
  const auto late = service.predict(request_for({0.8, 1.1}));
  EXPECT_FALSE(late.ok);
  service.shutdown();  // idempotent
}

// --- protocol ---------------------------------------------------------------

TEST(Protocol, ParsePredictRequest) {
  ef::serve::ProtocolError error;
  const auto req = ef::serve::parse_request(
      R"({"cmd":"predict","model":"m","window":[0.1,0.2,0.3],"horizon":2,)"
      R"("agg":"median","cache":false})",
      error);
  ASSERT_TRUE(req.has_value()) << error.message;
  EXPECT_EQ(req->cmd, Request::Cmd::kPredict);
  EXPECT_EQ(req->predict.model, "m");
  EXPECT_EQ(req->predict.window, (std::vector<double>{0.1, 0.2, 0.3}));
  EXPECT_EQ(req->predict.horizon, 2u);
  EXPECT_EQ(req->predict.agg, Aggregation::kMedian);
  EXPECT_FALSE(req->predict.use_cache);
}

TEST(Protocol, DefaultsApply) {
  ef::serve::ProtocolError error;
  const auto req = ef::serve::parse_request(R"({"window":[1,2]})", error);
  ASSERT_TRUE(req.has_value()) << error.message;
  EXPECT_EQ(req->cmd, Request::Cmd::kPredict);
  EXPECT_EQ(req->predict.model, "default");
  EXPECT_EQ(req->predict.horizon, 1u);
  EXPECT_EQ(req->predict.agg, Aggregation::kMean);
  EXPECT_TRUE(req->predict.use_cache);
}

TEST(Protocol, OtherCommands) {
  ef::serve::ProtocolError error;
  EXPECT_EQ(ef::serve::parse_request(R"({"cmd":"ping"})", error)->cmd, Request::Cmd::kPing);
  EXPECT_EQ(ef::serve::parse_request(R"({"cmd":"models"})", error)->cmd, Request::Cmd::kModels);
  EXPECT_EQ(ef::serve::parse_request(R"({"cmd":"stats"})", error)->cmd, Request::Cmd::kStats);
}

TEST(Protocol, RejectsMalformedInput) {
  const std::vector<std::string> bad = {
      "",                                           // empty
      "not json",                                   //
      "[1,2,3]",                                    // not an object
      R"({"cmd":"predict","window":[0.1],)",        // truncated
      R"({"cmd":"teleport"})",                      // unknown cmd
      R"({"window":[0.1],"frobnicate":1})",         // unknown field
      R"({"window":"abc"})",                        // wrong type
      R"({"window":[0.1],"horizon":0})",            // horizon < 1
      R"({"window":[0.1],"horizon":1.5})",          // non-integer horizon
      R"({"window":[0.1],"horizon":-3})",           //
      R"({"window":[0.1],"agg":"psychic"})",        // unknown aggregation
      R"({"window":[0.1],"cache":"yes"})",          // wrong bool type
      R"({"window":[0.1,"x"]})",                    // non-number in window
  };
  for (const auto& line : bad) {
    ef::serve::ProtocolError error;
    EXPECT_FALSE(ef::serve::parse_request(line, error).has_value()) << line;
    EXPECT_FALSE(error.message.empty()) << line;
    EXPECT_NE(error.code, ef::serve::ErrorCode::kNone) << line;
  }
}

TEST(Protocol, SerialisesResponses) {
  ef::serve::PredictResponse ok;
  ok.ok = true;
  ok.model = "m";
  ok.version = 3;
  ok.horizon = 1;
  ok.value = 0.5;
  ok.votes = 2;
  const std::string value_json = ef::serve::to_json(ok);
  EXPECT_NE(value_json.find("\"ok\":true"), std::string::npos);
  EXPECT_NE(value_json.find("\"value\":0.5"), std::string::npos);
  EXPECT_NE(value_json.find("\"abstain\":false"), std::string::npos);

  ef::serve::PredictResponse abstain = ok;
  abstain.abstain = true;
  abstain.votes = 0;
  const std::string abstain_json = ef::serve::to_json(abstain);
  EXPECT_NE(abstain_json.find("\"abstain\":true"), std::string::npos);
  EXPECT_EQ(abstain_json.find("\"value\""), std::string::npos)
      << "abstentions must not fabricate a value field: " << abstain_json;

  ef::serve::PredictResponse error;
  error.ok = false;
  error.error = "bad \"stuff\"";
  const std::string error_json = ef::serve::to_json(error);
  EXPECT_NE(error_json.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(error_json.find("bad \\\"stuff\\\""), std::string::npos);
}

TEST(Protocol, ParseAggregationRoundTrip) {
  using ef::core::Aggregation;
  for (const Aggregation agg :
       {Aggregation::kMean, Aggregation::kFitnessWeighted, Aggregation::kMedian,
        Aggregation::kBestRule, Aggregation::kInverseError}) {
    const auto parsed = ef::serve::parse_aggregation(ef::core::to_string(agg));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, agg);
  }
  EXPECT_FALSE(ef::serve::parse_aggregation("nope").has_value());
}

// --- TCP roundtrip -----------------------------------------------------------

#if defined(__linux__)

/// Minimal blocking JSON-lines client for the loopback roundtrip.
class LineClient {
 public:
  explicit LineClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~LineClient() {
    if (fd_ >= 0) ::close(fd_);
  }
  [[nodiscard]] bool connected() const { return connected_; }

  [[nodiscard]] std::string roundtrip(const std::string& line) {
    const std::string out = line + "\n";
    if (::send(fd_, out.data(), out.size(), 0) < 0) return {};
    std::string response;
    char c = 0;
    while (::recv(fd_, &c, 1, 0) == 1) {
      if (c == '\n') break;
      response.push_back(c);
    }
    return response;
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
};

TEST(Reactor, LoopbackRoundtrip) {
  ModelStore store;
  store.add_system("m", make_system());
  ServeOptions options;
  options.port = 0;  // ephemeral
  ForecastService service(store, options);
  ef::serve::Reactor server(service);
  server.start();
  ASSERT_NE(server.port(), 0);

  LineClient client(server.port());
  ASSERT_TRUE(client.connected());

  EXPECT_NE(client.roundtrip(R"({"cmd":"ping"})").find("\"ok\":true"), std::string::npos);
  EXPECT_NE(client.roundtrip(R"({"cmd":"models"})").find("\"m\""), std::string::npos);

  // Covered predict.
  const std::string hit =
      client.roundtrip(R"({"model":"m","window":[0.5,0.5,0.5]})");
  EXPECT_NE(hit.find("\"ok\":true"), std::string::npos) << hit;
  EXPECT_NE(hit.find("\"abstain\":false"), std::string::npos) << hit;
  EXPECT_NE(hit.find("\"value\":"), std::string::npos) << hit;

  // Explicit abstention: far outside every rule.
  const std::string abstain =
      client.roundtrip(R"({"model":"m","window":[50,50,50]})");
  EXPECT_NE(abstain.find("\"abstain\":true"), std::string::npos) << abstain;
  EXPECT_EQ(abstain.find("\"value\""), std::string::npos) << abstain;

  // Errors come back as ok=false lines, and the connection stays usable.
  EXPECT_NE(client.roundtrip("garbage").find("\"ok\":false"), std::string::npos);
  EXPECT_NE(client.roundtrip(R"({"model":"nope","window":[1,2,3]})").find("\"ok\":false"),
            std::string::npos);
  EXPECT_NE(client.roundtrip(R"({"cmd":"stats"})").find("\"ok\":true"), std::string::npos);
  EXPECT_NE(client.roundtrip(R"({"cmd":"ping"})").find("\"ok\":true"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_GE(server.connections_served(), 1u);
}

TEST(Reactor, ConcurrentClients) {
  ModelStore store;
  store.add_system("m", make_covering_system());
  ServeOptions options;
  options.port = 0;
  ForecastService service(store, options);
  ef::serve::Reactor server(service);
  server.start();

  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      LineClient client(server.port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 25; ++i) {
        const auto response =
            client.roundtrip(R"({"model":"m","window":[0.8,1.1]})");
        if (response.find("\"ok\":true") == std::string::npos) ++failures;
      }
    });
  }
  for (auto& c : clients) c.join();
  server.stop();
  EXPECT_EQ(failures.load(), 0u);
}

#endif  // defined(__linux__)

}  // namespace
