// Wire-protocol hardening: the JSON grammar edge cases a public TCP port
// sees (duplicate keys, overflowing numbers, deep nesting) plus the
// metrics/events observability verbs.
#include <gtest/gtest.h>

#include <string>

#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace {

using ef::serve::Request;
using ef::serve::parse_request;

// --- json::parse ----------------------------------------------------------

TEST(ServeJson, ParsesScalarsArraysObjects) {
  std::string error;
  const auto doc = ef::serve::json::parse(
      R"({"a":1.5,"b":"x","c":[1,2,3],"d":true,"e":null})", error);
  ASSERT_TRUE(doc.has_value()) << error;
  const auto* object = doc->as_object();
  ASSERT_NE(object, nullptr);
  EXPECT_EQ(*object->at("a").as_number(), 1.5);
  EXPECT_EQ(*object->at("b").as_string(), "x");
  ASSERT_NE(object->at("c").as_array(), nullptr);
  EXPECT_EQ(object->at("c").as_array()->size(), 3u);
  EXPECT_TRUE(*object->at("d").as_bool());
  EXPECT_TRUE(object->at("e").is_null());
}

TEST(ServeJson, RejectsDuplicateKeys) {
  std::string error;
  const auto doc = ef::serve::json::parse(R"({"cmd":"ping","cmd":"stats"})", error);
  EXPECT_FALSE(doc.has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(ServeJson, RejectsNumbersOverflowingDouble) {
  std::string error;
  EXPECT_FALSE(ef::serve::json::parse("1e999", error).has_value());
  EXPECT_FALSE(ef::serve::json::parse("-1e999", error).has_value());
  EXPECT_FALSE(ef::serve::json::parse(R"({"horizon":1e999})", error).has_value());
}

TEST(ServeJson, RejectsNestingBeyondMaxDepth) {
  // 20 nested arrays > default max_depth 8. Must fail, not overflow.
  std::string deep;
  for (int i = 0; i < 20; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 20; ++i) deep += ']';
  std::string error;
  EXPECT_FALSE(ef::serve::json::parse(deep, error).has_value());
  EXPECT_NE(error.find("deep"), std::string::npos) << error;

  // A raised limit accepts the same document.
  ef::serve::json::ParseOptions relaxed;
  relaxed.max_depth = 32;
  EXPECT_TRUE(ef::serve::json::parse(deep, error, relaxed).has_value());
}

TEST(ServeJson, RejectsTrailingGarbageAndTruncation) {
  std::string error;
  EXPECT_FALSE(ef::serve::json::parse(R"({"a":1} extra)", error).has_value());
  EXPECT_FALSE(ef::serve::json::parse(R"({"a":)", error).has_value());
  EXPECT_FALSE(ef::serve::json::parse("", error).has_value());
}

// --- parse_request --------------------------------------------------------

TEST(ParseRequest, PredictFieldsRoundTrip) {
  std::string error;
  const auto request = parse_request(
      R"({"cmd":"predict","model":"m1","window":[1.0,2.0,3.0],"horizon":4,"agg":"median","cache":false})",
      error);
  ASSERT_TRUE(request.has_value()) << error;
  EXPECT_EQ(request->cmd, Request::Cmd::kPredict);
  EXPECT_EQ(request->predict.model, "m1");
  ASSERT_EQ(request->predict.window.size(), 3u);
  EXPECT_EQ(request->predict.horizon, 4u);
  EXPECT_FALSE(request->predict.use_cache);
}

TEST(ParseRequest, MetricsAndEventsVerbs) {
  std::string error;
  const auto metrics = parse_request(R"({"cmd":"metrics"})", error);
  ASSERT_TRUE(metrics.has_value()) << error;
  EXPECT_EQ(metrics->cmd, Request::Cmd::kMetrics);

  const auto events = parse_request(R"({"cmd":"events"})", error);
  ASSERT_TRUE(events.has_value()) << error;
  EXPECT_EQ(events->cmd, Request::Cmd::kEvents);

  const auto trace = parse_request(R"({"cmd":"trace"})", error);
  ASSERT_TRUE(trace.has_value()) << error;
  EXPECT_EQ(trace->cmd, Request::Cmd::kTrace);
}

TEST(ParseRequest, DuplicateKeysAreAnError) {
  std::string error;
  EXPECT_FALSE(parse_request(R"({"horizon":1,"horizon":2})", error).has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(ParseRequest, OverflowingNumberIsAnError) {
  std::string error;
  EXPECT_FALSE(parse_request(R"({"window":[1e999]})", error).has_value());
}

TEST(ParseRequest, DeepNestingIsAnError) {
  std::string deep = R"({"window":)";
  for (int i = 0; i < 20; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 20; ++i) deep += ']';
  deep += '}';
  std::string error;
  EXPECT_FALSE(parse_request(deep, error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ParseRequest, UnknownCmdIsAnError) {
  std::string error;
  EXPECT_FALSE(parse_request(R"({"cmd":"reboot"})", error).has_value());
  EXPECT_NE(error.find("cmd"), std::string::npos) << error;
}

}  // namespace
