// Tests for core/telemetry.hpp: collector semantics, CSV output format,
// record contents from a live engine.
#include "core/telemetry.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <vector>

#include "core/evolution.hpp"
#include "series/timeseries.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::TelemetryCollector;
using ef::core::TelemetryRecord;

TEST(TelemetryCollector, StartsEmpty) {
  TelemetryCollector collector;
  EXPECT_TRUE(collector.empty());
  EXPECT_TRUE(collector.records().empty());
}

TEST(TelemetryCollector, SinkAppendsRecords) {
  TelemetryCollector collector;
  auto sink = collector.sink();
  TelemetryRecord r1;
  r1.generation = 10;
  r1.best_fitness = 2.5;
  sink(r1);
  TelemetryRecord r2;
  r2.generation = 20;
  sink(r2);
  ASSERT_EQ(collector.records().size(), 2u);
  EXPECT_EQ(collector.records()[0].generation, 10u);
  EXPECT_DOUBLE_EQ(collector.records()[0].best_fitness, 2.5);
  EXPECT_EQ(collector.records()[1].generation, 20u);
}

TEST(TelemetryCollector, CsvHasHeaderAndRows) {
  TelemetryCollector collector;
  auto sink = collector.sink();
  TelemetryRecord r;
  r.generation = 5;
  r.best_fitness = 1.5;
  r.mean_fitness = 0.75;
  r.mean_error = 0.125;
  r.mean_matches = 10.5;
  r.mean_specificity = 3.25;
  r.replacements = 4;
  sink(r);

  const std::string path = testing::TempDir() + "/evoforecast_telemetry.csv";
  collector.write_csv(path);

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header,
            "generation,best_fitness,mean_fitness,mean_error,mean_matches,"
            "mean_specificity,replacements");
  std::string row;
  std::getline(in, row);
  EXPECT_EQ(row, "5,1.5,0.75,0.125,10.5,3.25,4");
  EXPECT_FALSE(std::getline(in, row));  // exactly one data row
  std::remove(path.c_str());
}

TEST(TelemetryCollector, WriteToUnwritablePathThrows) {
  TelemetryCollector collector;
  EXPECT_THROW(collector.write_csv("/nonexistent-dir/x.csv"), std::runtime_error);
}

TEST(TelemetryFromEngine, RecordsAreInternallyConsistent) {
  ef::util::Rng rng(12);
  std::vector<double> v(300);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(static_cast<double>(i) * 0.2) + rng.normal(0.0, 0.05);
  }
  const ef::series::TimeSeries s(std::move(v));
  const ef::core::WindowDataset data(s, 4, 1);

  ef::core::EvolutionConfig cfg;
  cfg.population_size = 15;
  cfg.generations = 100;
  cfg.emax = 0.3;
  cfg.seed = 6;
  cfg.telemetry_stride = 25;

  TelemetryCollector collector;
  ef::core::SteadyStateEngine engine(data, cfg, nullptr, collector.sink());
  engine.run();

  ASSERT_EQ(collector.records().size(), 5u);  // gen 0, 25, 50, 75, 100
  std::size_t last_generation = 0;
  std::size_t last_replacements = 0;
  for (const auto& rec : collector.records()) {
    EXPECT_GE(rec.generation, last_generation);
    EXPECT_GE(rec.replacements, last_replacements);  // monotone counter
    EXPECT_GE(rec.best_fitness, rec.mean_fitness);   // max >= mean
    EXPECT_GE(rec.mean_matches, 0.0);
    EXPECT_GE(rec.mean_specificity, 0.0);
    EXPECT_LE(rec.mean_specificity, 4.0);  // at most D non-wildcard genes
    last_generation = rec.generation;
    last_replacements = rec.replacements;
  }
}

}  // namespace
