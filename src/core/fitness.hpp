// fitness.hpp — rule evaluation: match → regress → score (paper §3.1).
//
//   IF (N_R > 1 AND e_R < EMAX) THEN fitness = N_R·EMAX − e_R ELSE f_min
//
// The evaluator owns the full pipeline for one rule: find the matched
// window set C_R(S) with the match engine, fit the predicting hyperplane on
// it, take e_R = max |residual|, and score. Populations are evaluated in a
// batch loop so the (parallel) match engine stays saturated.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/match_engine.hpp"
#include "core/rule.hpp"

namespace ef::core {

/// Pure fitness formula, exposed separately for property tests.
[[nodiscard]] constexpr double fitness_value(std::size_t matches, double error, double emax,
                                             double f_min) noexcept {
  if (matches > 1 && error < emax) {
    return static_cast<double>(matches) * emax - error;
  }
  return f_min;
}

class Evaluator {
 public:
  /// `engine` must outlive the evaluator.
  Evaluator(const MatchEngine& engine, const EvolutionConfig& config,
            RegressionOptions regression = {});

  /// Evaluate one rule in place: sets its PredictingPart (fit, N_R, fitness).
  /// When `keep_matches` is non-null the matched index set is copied out
  /// (needed by the Jaccard crowding metric).
  void evaluate(Rule& rule, std::vector<std::size_t>* keep_matches = nullptr) const;

  /// Evaluate every rule of a population in place. Under the rule-major
  /// backend the whole batch is matched in one window pass
  /// (MatchEngine::match_all) and the regress-and-score tail fans out across
  /// the engine's pool; results are bit-identical to calling evaluate() per
  /// rule. When `keep_matches` is non-null it receives one matched index set
  /// per rule (same order as `population`).
  void evaluate_all(std::span<Rule> population,
                    std::vector<std::vector<std::size_t>>* keep_matches = nullptr) const;

  /// Dispatch between evaluate_all (batched = true) and the pre-batching
  /// per-rule loop (batched = false — EvolutionConfig::batched_fitness, the
  /// ablation/rollback switch). Identical results either way.
  void evaluate_population(std::span<Rule> population,
                           std::vector<std::vector<std::size_t>>* keep_matches,
                           bool batched) const;

  [[nodiscard]] const MatchEngine& engine() const noexcept { return engine_; }
  [[nodiscard]] const EvolutionConfig& config() const noexcept { return config_; }

 private:
  const MatchEngine& engine_;
  const EvolutionConfig& config_;
  RegressionOptions regression_;
};

}  // namespace ef::core
