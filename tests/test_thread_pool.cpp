// Tests for util/thread_pool.hpp: coverage of ranges, exception propagation,
// reuse, inline small-range path.
#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using ef::util::ThreadPool;

TEST(ThreadPool, SizeMatchesRequest) {
  ThreadPool pool(3);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(ThreadPool, ZeroMeansHardwareConcurrency) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(10000);
  pool.parallel_for(
      0, hits.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
      },
      16);
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
  pool.parallel_for(7, 3, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, SmallRangeRunsInline) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id body_thread;
  pool.parallel_for(
      0, 8, [&](std::size_t, std::size_t) { body_thread = std::this_thread::get_id(); },
      1024);  // grain > range → inline
  EXPECT_EQ(body_thread, caller);
}

TEST(ThreadPool, SumReductionCorrect) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 100000;
  std::atomic<long long> total{0};
  pool.parallel_for(
      0, kN,
      [&](std::size_t b, std::size_t e) {
        long long local = 0;
        for (std::size_t i = b; i < e; ++i) local += static_cast<long long>(i);
        total.fetch_add(local);
      },
      128);
  EXPECT_EQ(total.load(), static_cast<long long>(kN) * (kN - 1) / 2);
}

TEST(ThreadPool, ExceptionPropagatesToCaller) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(
                   0, 100000,
                   [&](std::size_t b, std::size_t) {
                     if (b == 0) throw std::runtime_error("boom");
                   },
                   16),
               std::runtime_error);
}

TEST(ThreadPool, UsableAfterException) {
  ThreadPool pool(2);
  try {
    pool.parallel_for(
        0, 100000, [&](std::size_t, std::size_t) { throw std::runtime_error("x"); }, 16);
  } catch (const std::runtime_error&) {
  }
  std::atomic<int> count{0};
  pool.parallel_for(
      0, 100000, [&](std::size_t b, std::size_t e) { count.fetch_add(static_cast<int>(e - b)); },
      16);
  EXPECT_EQ(count.load(), 100000);
}

TEST(ThreadPool, RepeatedCallsWork) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(
        0, 10000, [&](std::size_t b, std::size_t e) { count.fetch_add(static_cast<int>(e - b)); },
        64);
    ASSERT_EQ(count.load(), 10000);
  }
}

TEST(ThreadPool, SingleWorkerPoolRunsInline) {
  ThreadPool pool(1);
  std::vector<int> hits(5000, 0);
  pool.parallel_for(
      0, hits.size(),
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) ++hits[i];
      },
      16);
  EXPECT_EQ(std::accumulate(hits.begin(), hits.end(), 0), 5000);
}

TEST(ThreadPool, SharedPoolSingleton) {
  ThreadPool& a = ThreadPool::shared();
  ThreadPool& b = ThreadPool::shared();
  EXPECT_EQ(&a, &b);
  std::atomic<int> count{0};
  a.parallel_for(
      0, 20000, [&](std::size_t b2, std::size_t e) { count.fetch_add(static_cast<int>(e - b2)); },
      64);
  EXPECT_EQ(count.load(), 20000);
}

}  // namespace
