#include "core/backtest.hpp"

#include <cmath>
#include <stdexcept>

#include "obs/macros.hpp"

namespace ef::core {

BacktestResult backtest_rule_system(const series::TimeSeries& series,
                                    const RuleSystemConfig& config,
                                    const BacktestOptions& options,
                                    util::ThreadPool* pool) {
  EVOFORECAST_TRACE("core.backtest");
  const std::size_t reach = (options.window - 1) * options.stride + options.horizon;
  const std::size_t min_train = reach + 2;  // at least two training windows

  std::size_t initial_train =
      options.initial_train ? options.initial_train : series.size() / 2;
  if (initial_train < min_train) initial_train = min_train;

  std::size_t fold_size = options.fold_size;
  if (fold_size == 0) {
    const std::size_t remaining =
        series.size() > initial_train ? series.size() - initial_train : 0;
    fold_size = remaining / 4;
  }
  if (fold_size == 0 || initial_train + fold_size > series.size()) {
    throw std::invalid_argument("backtest_rule_system: series too short for one fold");
  }

  BacktestResult result;
  double coverage_sum = 0.0;
  double sq_err_sum = 0.0;
  double abs_err_sum = 0.0;
  std::size_t covered_total = 0;

  for (std::size_t origin = initial_train;
       origin + reach < series.size() && result.folds.size() < options.max_folds;
       origin += fold_size) {
    EVOFORECAST_TRACE("core.backtest.fold");
    const std::size_t train_begin =
        options.rolling && origin > initial_train ? origin - initial_train : 0;
    const series::TimeSeries train_slice = series.slice(train_begin, origin);
    // The evaluation slice needs `reach` samples of history to form its
    // first window ending at `origin`.
    const std::size_t eval_begin = origin - reach;
    const std::size_t eval_end = std::min(series.size(), origin + fold_size);
    const series::TimeSeries eval_slice = series.slice(eval_begin, eval_end);

    if (train_slice.size() < min_train) continue;
    const WindowDataset train(train_slice, options.window, options.horizon, options.stride);
    const WindowDataset eval(eval_slice, options.window, options.horizon, options.stride);

    const TrainResult trained = ef::core::train(train, {.config = config, .pool = pool});
    const auto forecast = trained.system.forecast_dataset(eval, pool);
    std::vector<double> actual;
    actual.reserve(eval.count());
    for (std::size_t i = 0; i < eval.count(); ++i) actual.push_back(eval.target(i));

    BacktestFold fold;
    fold.origin = origin;
    fold.report = series::evaluate_partial(actual, forecast);
    fold.rules = trained.system.size();

    coverage_sum += fold.report.coverage_percent;
    for (std::size_t i = 0; i < actual.size(); ++i) {
      if (!forecast[i]) continue;
      const double err = actual[i] - *forecast[i];
      sq_err_sum += err * err;
      abs_err_sum += std::abs(err);
      ++covered_total;
    }
    result.folds.push_back(std::move(fold));
    EVOFORECAST_COUNT("backtest.folds", 1);
  }

  if (result.folds.empty()) {
    throw std::invalid_argument("backtest_rule_system: no fold produced");
  }
  result.mean_coverage_percent = coverage_sum / static_cast<double>(result.folds.size());
  if (covered_total > 0) {
    result.pooled_rmse = std::sqrt(sq_err_sum / static_cast<double>(covered_total));
    result.pooled_mae = abs_err_sum / static_cast<double>(covered_total);
  }
  return result;
}

}  // namespace ef::core
