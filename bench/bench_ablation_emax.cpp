// bench_ablation_emax — Ablation C (DESIGN.md): the paper's conclusion says
// the algorithm "can be tuned in order to attain a higher prediction
// percentage at the cost of worse prediction results". EMAX is that dial: it
// caps the max residual a rule may carry and weights the coverage term of
// the fitness. This bench sweeps EMAX on Venice τ = 4 and prints the
// coverage/error trade-off curve.
//
// Expected shape: coverage grows monotonically-ish with EMAX while the
// covered-subset RMSE degrades — the trade-off frontier the paper describes.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/rule_system.hpp"
#include "series/venice.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full");
  const auto train_hours =
      static_cast<std::size_t>(cli.get_int("train-hours", full ? 45000 : 6000));
  const auto validation_hours =
      static_cast<std::size_t>(cli.get_int("validation-hours", full ? 10000 : 1500));
  const auto window = static_cast<std::size_t>(cli.get_int("window", 24));
  const auto horizon = static_cast<std::size_t>(cli.get_int("horizon", 4));
  const auto generations =
      static_cast<std::size_t>(cli.get_int("generations", full ? 40000 : 5000));

  std::printf("Ablation C — EMAX sweep (Venice, tau=%zu): coverage vs accuracy\n", horizon);
  ef::bench::print_rule('=');

  const auto experiment = ef::series::make_paper_venice(train_hours, validation_hours);
  const ef::core::WindowDataset train(experiment.train, window, horizon);
  const ef::core::WindowDataset validation(experiment.validation, window, horizon);

  std::printf("%8s | %8s %9s %9s %7s %6s\n", "EMAX(cm)", "cov%", "rmse", "mae", "rules",
              "execs");
  ef::bench::print_rule();

  for (const double emax : {6.0, 10.0, 14.0, 18.0, 25.0, 35.0, 50.0}) {
    ef::core::RuleSystemConfig cfg;
    cfg.evolution.population_size = 100;
    cfg.evolution.generations = generations;
    cfg.evolution.emax = emax;
    cfg.evolution.seed = 300;
    cfg.coverage_target_percent = 97.0;
    cfg.max_executions = 3;

    const auto rs = ef::bench::run_rule_system(train, validation, cfg);
    std::printf("%8.1f | %7.1f%% %9.2f %9.2f %7zu %6zu\n", emax,
                rs.report.coverage_percent, rs.report.rmse, rs.report.mae, rs.rules,
                rs.executions);
    std::fflush(stdout);
  }

  ef::bench::print_rule();
  std::printf(
      "Expected shape: coverage grows monotonically with EMAX — the dial the paper's\n"
      "conclusions describe. Note the failure mode below the noise floor: a too-small\n"
      "EMAX forces rules so specific (few matched windows each) that they overfit and\n"
      "the covered-subset error is WORSE despite the stricter training budget. The\n"
      "usable trade-off region starts where EMAX clears the irreducible noise.\n");
  ef::obs::emit_cli_report(cli);
  return 0;
}
