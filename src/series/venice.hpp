// venice.hpp — synthetic Venice Lagoon hourly water-level generator.
//
// SUBSTITUTION (see DESIGN.md §4): the paper trains on 45 000 hourly
// tide-gauge measurements from the Venice Lagoon (1980-1994) which are not
// redistributable. What the paper *needs* from this dataset is its structure:
//   1. a dominant multi-constituent astronomical tide (periodic, predictable),
//   2. an autocorrelated meteorological surge riding on top of it,
//   3. rare storm events ("acqua alta") pushing the level far outside the
//      usual range — exactly the atypical behaviour the rule system targets,
//   4. small sensor noise.
// The generator below synthesises each component explicitly:
//   level(t) = msl + Σ_k A_k cos(2π t / T_k + φ_k)      (harmonic tide)
//            + surge(t)                                  (AR(2) seiche-like)
//            + Σ_events pulse(t; t_e, A_e, τ_rise, τ_decay)   (storms)
//            + ε(t)                                      (gauge noise)
// with default amplitudes tuned so the ordinary range is about [-50, 110] cm
// and storm peaks reach 140-190 cm — matching the ranges the paper quotes
// ("output ranges from -50 cm to 150 cm", 1966-style ≈ +2 m events possible).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "series/timeseries.hpp"

namespace ef::series {

/// One harmonic constituent of the astronomical tide.
struct TidalConstituent {
  double amplitude_cm;
  double period_hours;
  double phase_rad;
};

/// Generator parameters. Defaults approximate the northern Adriatic.
struct VeniceParams {
  std::uint64_t seed = 1980;

  double mean_sea_level_cm = 30.0;

  /// Principal constituents (M2, S2, K1, O1, N2) with Adriatic-like
  /// amplitudes; empty vector = use these defaults.
  std::vector<TidalConstituent> constituents{};

  // Meteorological surge: AR(2) x_t = phi1*x_{t-1} + phi2*x_{t-2} + w_t.
  // Defaults give a slowly-decaying pseudo-oscillation (Adriatic seiche has a
  // ~22 h fundamental). Stationary sd of this AR(2) is ≈ 14.5·noise, so the
  // default 0.6 cm innovation yields a ≈ 8-9 cm surge — clearly secondary to
  // the tide, with storms (below) providing the rare extremes.
  double surge_phi1 = 1.86;
  double surge_phi2 = -0.88;
  double surge_noise_cm = 0.6;

  // Storm events: Poisson arrivals; each adds an asymmetric pulse
  // A * (1 - exp(-(t-t0)/rise)) * exp(-(t-t0)/decay) for t >= t0.
  double storm_rate_per_hour = 1.0 / 400.0;  ///< ≈ one event every ~17 days
  double storm_amp_min_cm = 30.0;
  double storm_amp_max_cm = 120.0;
  double storm_rise_hours = 6.0;
  double storm_decay_hours = 18.0;

  double gauge_noise_cm = 0.8;
};

/// Generate `hours` consecutive hourly water levels (cm above datum).
/// Deterministic in (params.seed, hours). Throws on hours == 0.
[[nodiscard]] TimeSeries generate_venice(std::size_t hours, const VeniceParams& params = {});

/// Train/validation arrangement mirroring the paper's Venice experiments
/// (45 000 training + 10 000 validation hours by default; benches pass a
/// scale factor to shrink both while keeping the 81.8 %/18.2 % proportion).
struct VeniceExperiment {
  TimeSeries train;
  TimeSeries validation;
};

/// Build the experiment; `train_hours`/`validation_hours` default to the
/// paper's sizes. The two ranges are consecutive in time (chronological
/// split), as in the paper.
[[nodiscard]] VeniceExperiment make_paper_venice(std::size_t train_hours = 45000,
                                                 std::size_t validation_hours = 10000,
                                                 const VeniceParams& params = {});

/// Default Adriatic-like constituent set (exposed for tests and docs).
[[nodiscard]] std::vector<TidalConstituent> default_venice_constituents();

}  // namespace ef::series
