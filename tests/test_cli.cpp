// Tests for util/cli.hpp: flag forms, typed parsing, error behaviour.
#include "util/cli.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace {

using ef::util::Cli;

Cli make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Cli(static_cast<int>(argv.size()), argv.data());
}

TEST(Cli, SpaceSeparatedValue) {
  const Cli cli = make({"--horizon", "24"});
  EXPECT_EQ(cli.get_int("horizon", 0), 24);
}

TEST(Cli, EqualsSeparatedValue) {
  const Cli cli = make({"--horizon=24"});
  EXPECT_EQ(cli.get_int("horizon", 0), 24);
}

TEST(Cli, BooleanFlagWithoutValue) {
  const Cli cli = make({"--full"});
  EXPECT_TRUE(cli.get_bool("full"));
  EXPECT_TRUE(cli.has("full"));
}

TEST(Cli, FlagFollowedByFlagIsBoolean) {
  const Cli cli = make({"--full", "--horizon", "4"});
  EXPECT_TRUE(cli.get_bool("full"));
  EXPECT_EQ(cli.get_int("horizon", 0), 4);
}

TEST(Cli, DefaultWhenAbsent) {
  const Cli cli = make({});
  EXPECT_EQ(cli.get_int("missing", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(cli.get_string("missing", "dflt"), "dflt");
  EXPECT_FALSE(cli.get_bool("missing"));
  EXPECT_FALSE(cli.has("missing"));
}

TEST(Cli, PositionalArguments) {
  const Cli cli = make({"input.csv", "--k", "3", "output.csv"});
  ASSERT_EQ(cli.positional().size(), 2u);
  EXPECT_EQ(cli.positional()[0], "input.csv");
  EXPECT_EQ(cli.positional()[1], "output.csv");
}

TEST(Cli, DoubleParsing) {
  const Cli cli = make({"--emax", "0.125"});
  EXPECT_DOUBLE_EQ(cli.get_double("emax", 0.0), 0.125);
}

TEST(Cli, NegativeNumbersAsValues) {
  const Cli cli = make({"--offset", "-5"});
  EXPECT_EQ(cli.get_int("offset", 0), -5);
}

TEST(Cli, BadIntegerThrows) {
  const Cli cli = make({"--n", "abc"});
  EXPECT_THROW((void)cli.get_int("n", 0), std::invalid_argument);
}

TEST(Cli, BadDoubleThrows) {
  const Cli cli = make({"--x", "1.5zzz"});
  EXPECT_THROW((void)cli.get_double("x", 0.0), std::invalid_argument);
}

TEST(Cli, BadBoolThrows) {
  const Cli cli = make({"--flag", "maybe"});
  EXPECT_THROW((void)cli.get_bool("flag"), std::invalid_argument);
}

TEST(Cli, BoolSynonyms) {
  EXPECT_TRUE(make({"--a", "yes"}).get_bool("a"));
  EXPECT_TRUE(make({"--a", "1"}).get_bool("a"));
  EXPECT_TRUE(make({"--a", "on"}).get_bool("a"));
  EXPECT_FALSE(make({"--a", "no"}).get_bool("a", true));
  EXPECT_FALSE(make({"--a", "0"}).get_bool("a", true));
  EXPECT_FALSE(make({"--a", "off"}).get_bool("a", true));
}

TEST(Cli, ProgramName) {
  const Cli cli = make({});
  EXPECT_EQ(cli.program(), "prog");
}

TEST(Cli, EmptyArgvSafe) {
  const Cli cli(0, nullptr);
  EXPECT_TRUE(cli.positional().empty());
  EXPECT_EQ(cli.get_int("x", 1), 1);
}

}  // namespace
