// ar.hpp — global linear (direct multi-step AR) baseline.
//
// The "linear stochastic models" the paper's introduction cites (Moretti &
// Tomasin's tide models): one least-squares hyperplane from the D lags to
// the τ-ahead value, fitted on ALL training windows. Structurally this is
// exactly a single all-wildcard rule of the evolutionary system — which
// makes it the cleanest possible ablation of "local rules vs one global
// rule".
#pragma once

#include "baselines/forecaster.hpp"
#include "core/regression.hpp"

namespace ef::baselines {

struct ArConfig {
  core::RegressionOptions regression{};  ///< ridge etc.
};

class ArModel final : public Forecaster {
 public:
  explicit ArModel(ArConfig config = {}) : config_(config) {}

  void fit(const core::WindowDataset& train) override;
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "ar"; }

  /// The fitted hyperplane (exposed for tests).
  [[nodiscard]] const core::LinearFit& fit_result() const;

 private:
  ArConfig config_;
  core::LinearFit fit_{};
  bool fitted_ = false;
};

}  // namespace ef::baselines
