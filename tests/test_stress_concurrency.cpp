// Race-stress suite for the concurrent serving stack, written for TSan.
//
// Each test hammers one component from many threads at once — exactly the
// interleavings production traffic produces and unit tests don't: model
// hot-reload under live predictions, micro-batcher submit against shutdown,
// sharded cache churn with eviction, event-log append against snapshot,
// windowed-collector sampling against queries, timeline span emission
// against snapshot/export/reset, and overlapping parallel_for rounds on one
// shared pool.
//
// The assertions are deliberately coarse (values sane, counts add up); the
// real oracle is the sanitizer. Run with -DEVOFORECAST_SANITIZE=thread and
// any data race fails the test hard. Iteration budgets shrink under
// sanitizer builds (EVOFORECAST_SANITIZED) so the instrumented runs stay
// inside the per-test ctest TIMEOUT; the interleavings, not the volume, are
// what find races. ctest label: "stress".
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/timeline.hpp"
#include "obs/timeline_export.hpp"
#include "obs/window.hpp"
#include "serve/batcher.hpp"
#include "serve/json.hpp"
#include "serve/model_store.hpp"
#include "serve/reactor.hpp"
#include "serve/service.hpp"
#include "serve/window_cache.hpp"
#include "util/thread_pool.hpp"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

using namespace std::chrono_literals;

#if defined(EVOFORECAST_SANITIZED)
constexpr std::size_t kIterScale = 1;  // sanitizers add the rigour; keep wall-clock down
#else
constexpr std::size_t kIterScale = 4;
#endif

/// One-rule system predicting `value` on windows inside [0,1]^2.
ef::core::RuleSystem constant_system(double value) {
  ef::core::Rule rule({ef::core::Interval(0.0, 1.0), ef::core::Interval(0.0, 1.0)});
  ef::core::PredictingPart part;
  part.fit.coeffs = {0.0, 0.0, value};
  part.fit.mean_prediction = value;
  part.fit.max_abs_residual = 0.01;
  part.matches = 4;
  part.fitness = 2.0;
  rule.set_predicting(part);
  ef::core::RuleSystem system;
  system.add_rules({rule}, false, -1.0);
  return system;
}

std::vector<std::thread> spawn(std::size_t n, const std::function<void(std::size_t)>& body) {
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) threads.emplace_back(body, i);
  return threads;
}

void join_all(std::vector<std::thread>& threads) {
  for (std::thread& t : threads) t.join();
}

TEST(StressConcurrency, ModelStoreReloadUnderPredict) {
  const auto path = std::filesystem::temp_directory_path() / "stress_reload.efr";
  {
    std::ofstream out(path);
    constant_system(1.0).save(out);
  }
  ef::serve::ModelStore store;
  store.add_file("m", path.string());
  store.start_polling(1ms);  // background poller races the explicit poll_now below

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> predictions{0};
  const std::vector<double> window{0.5, 0.5};

  auto readers = spawn(4, [&](std::size_t) {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto model = store.get("m");
      ASSERT_NE(model, nullptr);
      const ef::core::Prediction p = model->forecast(window);
      ASSERT_FALSE(p.abstained);
      // Whatever snapshot this thread grabbed, its value is one a writer
      // actually published.
      ASSERT_GE(p.value, 1.0);
      ASSERT_LE(p.value, 64.0);
      predictions.fetch_add(1, std::memory_order_relaxed);
    }
  });
  auto pollers = spawn(2, [&](std::size_t) {
    while (!stop.load(std::memory_order_relaxed)) store.poll_now();
  });

  for (std::size_t round = 2; round < 2 + 16 * kIterScale; ++round) {
    {
      std::ofstream out(path);
      constant_system(static_cast<double>(round % 63 + 1)).save(out);
    }
    // Force an mtime the pollers cannot miss, regardless of fs granularity.
    std::filesystem::last_write_time(
        path, std::filesystem::last_write_time(path) + std::chrono::seconds(round));
    std::this_thread::sleep_for(2ms);
  }

  stop.store(true);
  join_all(readers);
  join_all(pollers);
  store.stop_polling();
  EXPECT_GT(predictions.load(), 0u);
  EXPECT_GE(store.get("m")->version(), 2u);
  std::filesystem::remove(path);
}

TEST(StressConcurrency, BatcherSubmitAgainstDrain) {
  ef::serve::ModelStore store;
  store.add_system("m", constant_system(3.0));
  const auto model = store.get("m");

  ef::serve::BatcherConfig config;
  config.max_batch = 16;
  config.max_delay = std::chrono::microseconds(100);
  ef::serve::MicroBatcher batcher(config);

  constexpr std::size_t kThreads = 8;
  const std::size_t per_thread = 50 * kIterScale;
  std::atomic<std::size_t> resolved{0};
  std::atomic<std::size_t> rejected{0};

  auto submitters = spawn(kThreads, [&](std::size_t t) {
    for (std::size_t i = 0; i < per_thread; ++i) {
      std::vector<double> window{0.25 + 0.001 * static_cast<double>(t), 0.5};
      try {
        auto future = batcher.submit(model, std::move(window), ef::core::Aggregation::kMean);
        const ef::core::Prediction p = future.get();
        ASSERT_FALSE(p.abstained);
        ASSERT_DOUBLE_EQ(p.value, 3.0);
        resolved.fetch_add(1, std::memory_order_relaxed);
      } catch (const std::runtime_error&) {
        // Submit after shutdown began: the documented rejection path.
        rejected.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });

  // Shut down while the last threads are still submitting: every accepted
  // request must still resolve (drain), every late one must throw.
  while (resolved.load(std::memory_order_relaxed) < kThreads * per_thread / 2) {
    std::this_thread::yield();
  }
  batcher.shutdown();
  join_all(submitters);
  EXPECT_EQ(resolved.load() + rejected.load(), kThreads * per_thread);
  EXPECT_GT(resolved.load(), 0u);
}

TEST(StressConcurrency, WindowCacheChurnWithEviction) {
  ef::serve::CacheConfig config;
  config.capacity = 128;  // small: eviction on nearly every insert
  config.shards = 4;
  ef::serve::WindowCache cache(config);

  constexpr std::size_t kThreads = 8;
  const std::size_t ops = 2000 * kIterScale;
  std::atomic<bool> stop{false};

  auto workers = spawn(kThreads, [&](std::size_t t) {
    for (std::size_t i = 0; i < ops; ++i) {
      const double v = static_cast<double>((t * 131 + i) % 512);
      const std::vector<double> window{v, v + 1.0};
      const auto key =
          cache.make_key(/*model_tag=*/7, /*horizon=*/1, ef::core::Aggregation::kMean, window);
      if (const auto hit = cache.get(key)) {
        // A hit must return exactly what some thread inserted for this key.
        ASSERT_FALSE(hit->abstain);
        ASSERT_DOUBLE_EQ(hit->value, v * 2.0);
      } else {
        cache.put(key, ef::serve::WindowCache::Value{false, v * 2.0, 1});
      }
    }
  });
  std::thread churn([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)cache.stats();
      std::this_thread::sleep_for(1ms);
    }
    cache.clear();
  });

  join_all(workers);
  stop.store(true);
  churn.join();

  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);  // churn thread cleared after the workers stopped
  EXPECT_EQ(stats.hits + stats.misses, kThreads * ops);
  EXPECT_GT(stats.evictions, 0u);
}

TEST(StressConcurrency, EventLogAppendAgainstSnapshot) {
  ef::obs::EventLog log(/*capacity=*/256);

  constexpr std::size_t kWriters = 6;
  const std::size_t per_writer = 500 * kIterScale;
  std::atomic<bool> stop{false};

  auto writers = spawn(kWriters, [&](std::size_t t) {
    for (std::size_t i = 0; i < per_writer; ++i) {
      log.emit("stress.event", {{"writer", t}, {"i", i}, {"label", "x\ny\"z"}});
    }
  });
  auto readers = spawn(2, [&](std::size_t) {
    std::string parse_error;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto recent = log.recent();
      ASSERT_LE(recent.size(), log.capacity());
      std::uint64_t last_seq = 0;
      for (const auto& event : recent) {
        ASSERT_GT(event.seq, last_seq);  // ring stays in emission order
        last_seq = event.seq;
        ASSERT_TRUE(ef::serve::json::parse(event.to_json(), parse_error))
            << parse_error << ": " << event.to_json();
      }
      (void)log.dump_json_lines();
      (void)log.size();
    }
  });

  join_all(writers);
  stop.store(true);
  join_all(readers);

  EXPECT_EQ(log.total_emitted(), kWriters * per_writer);
  EXPECT_EQ(log.size(), std::min<std::size_t>(log.capacity(), kWriters * per_writer));
  EXPECT_EQ(log.dropped(), kWriters * per_writer - log.size());
}

TEST(StressConcurrency, WindowedCollectorSampleAgainstQuery) {
  ef::obs::Registry registry;
  ef::obs::WindowedCollector::Config config;
  config.bucket = 2ms;
  config.buckets = 8;
  ef::obs::WindowedCollector collector(registry, config);
  collector.start();  // real background sampler racing the queries below

  std::atomic<bool> stop{false};
  auto writers = spawn(4, [&](std::size_t t) {
    auto& counter = registry.counter("stress.count");
    auto& histogram = registry.histogram("stress.lat_us");
    std::size_t i = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      counter.add(1);
      histogram.observe(static_cast<double>((t * 37 + i++) % 1000));
    }
  });
  auto queriers = spawn(2, [&](std::size_t) {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = collector.window();
      ASSERT_GE(snap.window_seconds, 0.0);
      for (const auto& c : snap.counters) ASSERT_GE(c.per_sec, 0.0);
      for (const auto& h : snap.histograms) {
        ASSERT_LE(h.p50, h.p99 + 1e-9);
        ASSERT_TRUE(std::isfinite(h.p99));
      }
      (void)collector.counter_rate("stress.count");
      (void)collector.histogram_window("stress.lat_us");
      collector.tick();  // explicit tick racing the sampler thread
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(100 * kIterScale));

  // Query while the writers are still running: the ring only covers
  // buckets*bucket (~16 ms) of history, so after the joins below every frame
  // would post-date the last increment and a zero delta would be correct.
  // The explicit-tick querier threads can shrink the window to microseconds,
  // so retry until a window catches an increment in flight.
  bool saw_rate = false;
  for (int attempt = 0; attempt < 200 && !saw_rate; ++attempt) {
    const auto rate = collector.counter_rate("stress.count");
    saw_rate = rate.has_value() && rate->delta > 0;
    if (!saw_rate) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(saw_rate) << "no windowed increments observed while writers were live";

  stop.store(true);
  join_all(writers);
  join_all(queriers);
  collector.stop();

  // The cumulative registry counter (unlike the windowed view) never forgets.
  const auto snapshot = registry.snapshot();
  const auto it = std::find_if(snapshot.counters.begin(), snapshot.counters.end(),
                               [](const auto& c) { return c.name == "stress.count"; });
  ASSERT_NE(it, snapshot.counters.end());
  EXPECT_GT(it->value, 0u);
}

TEST(StressConcurrency, TimelineEmitAgainstExport) {
  // Per-thread seqlock rings: 6 threads emit span trees (scopes, a context
  // hop, retrospective emits) while 2 readers snapshot, export to Chrome
  // JSON, and mark slow exemplars, and one thread periodically reset()s the
  // rings mid-flight. TSan is the oracle; the inline assertions only check
  // that torn reads never surface (the seqlock skips mid-write slots).
  ef::obs::Timeline::set_ring_capacity(256);
  ef::obs::Timeline::set_sample_rate(1.0);
  ef::obs::Timeline::reset();

  constexpr std::size_t kWriters = 6;
  const std::size_t per_writer = 400 * kIterScale;
  std::atomic<bool> stop{false};

  auto writers = spawn(kWriters, [&](std::size_t t) {
    for (std::size_t i = 0; i < per_writer; ++i) {
      const ef::obs::TraceScope root("stress.request");
      const ef::obs::TraceContext ctx = root.context();
      {
        ef::obs::SpanScope child("stress.child");
        child.set_arg("writer", static_cast<double>(t));
      }
      // The batcher pattern: adopt the context and emit retrospectively.
      const ef::obs::ContextGuard guard(ctx);
      ef::obs::Timeline::emit(ctx, "stress.emit", static_cast<std::int64_t>(i),
                              static_cast<std::int64_t>(i) + 2);
    }
  });
  auto readers = spawn(2, [&](std::size_t r) {
    std::string parse_error;
    while (!stop.load(std::memory_order_relaxed)) {
      const auto snap = ef::obs::Timeline::snapshot();
      for (const auto& span : snap.spans) {
        ASSERT_NE(span.trace_id, 0u);  // reset/mid-write slots are skipped
        ASSERT_NE(span.span_id, 0u);
        ASSERT_NE(span.name, nullptr);
        ASSERT_GE(span.dur_us, 0);
        if (r == 0) ef::obs::Timeline::mark_slow(span.trace_id, 1.0);
      }
      const std::string json = ef::obs::chrome_trace_json();
      ASSERT_TRUE(ef::serve::json::parse(json, parse_error)) << parse_error;
    }
  });
  std::thread resetter([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      ef::obs::Timeline::reset();
      std::this_thread::sleep_for(1ms);
    }
  });

  join_all(writers);
  stop.store(true);
  join_all(readers);
  resetter.join();

  ef::obs::Timeline::set_sample_rate(0.0);
  ef::obs::Timeline::reset();
}

TEST(StressConcurrency, SharedThreadPoolOverlappingParallelFor) {
  ef::util::ThreadPool pool(4);
  constexpr std::size_t kCallers = 6;
  const std::size_t rounds = 30 * kIterScale;

  auto callers = spawn(kCallers, [&](std::size_t t) {
    for (std::size_t round = 0; round < rounds; ++round) {
      std::atomic<std::size_t> sum{0};
      const std::size_t n = 1000 + t * 17 + round;
      pool.parallel_for(
          0, n,
          [&](std::size_t begin, std::size_t end) {
            std::size_t local = 0;
            for (std::size_t i = begin; i < end; ++i) local += i;
            sum.fetch_add(local, std::memory_order_relaxed);
          },
          /*grain=*/64);
      ASSERT_EQ(sum.load(), n * (n - 1) / 2);
    }
  });
  join_all(callers);
}


#if defined(__linux__)

/// Blocking loopback connect; -1 on failure.
int connect_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

TEST(StressConcurrency, ReactorPipelinedClientsAgainstHotReload) {
  // Many client threads pipelining bursts over short-lived connections while
  // the model hot-reloads underneath: TSan watches the acceptor fd handoff
  // between shards, the cross-thread completion inbox, and the batcher
  // dispatch racing connection close. Finally stop() lands with traffic
  // still arriving — the drain must not race the in-flight completions.
  ef::serve::ModelStore store;
  store.add_system("m", constant_system(3.0));
  ef::serve::ServeOptions options;
  options.port = 0;
  options.enable_cache = false;  // every request exercises the live model
  options.reactor_threads = 2;
  ef::serve::ForecastService service(store, options);
  ef::serve::Reactor reactor(service);
  reactor.start();
  const std::uint16_t port = reactor.port();

  constexpr std::size_t kClients = 4;
  constexpr std::size_t kPipeline = 16;
  const std::size_t bursts = 15 * kIterScale;
  std::atomic<std::size_t> failures{0};
  std::atomic<bool> stop{false};

  auto clients = spawn(kClients, [&](std::size_t) {
    for (std::size_t round = 0; round < bursts && !stop.load(std::memory_order_relaxed);
         ++round) {
      const int fd = connect_loopback(port);
      if (fd < 0) {
        ++failures;
        continue;
      }
      std::string burst;
      for (std::size_t i = 0; i < kPipeline; ++i) {
        burst += "{\"model\":\"m\",\"window\":[0.5,0.5],\"id\":" + std::to_string(i) + "}\n";
      }
      bool ok = true;
      for (std::size_t sent = 0; sent < burst.size();) {
        const auto n = ::send(fd, burst.data() + sent, burst.size() - sent, MSG_NOSIGNAL);
        if (n <= 0) {
          ok = false;
          break;
        }
        sent += static_cast<std::size_t>(n);
      }
      std::size_t newlines = 0;
      char chunk[2048];
      while (ok && newlines < kPipeline) {
        const auto n = ::recv(fd, chunk, sizeof(chunk), 0);
        if (n <= 0) break;
        for (ssize_t i = 0; i < n; ++i) {
          if (chunk[i] == '\n') ++newlines;
        }
      }
      if (!ok || newlines != kPipeline) ++failures;
      ::close(fd);
    }
  });

  for (std::size_t swap = 0; swap < 10 * kIterScale; ++swap) {
    store.add_system("m", constant_system(static_cast<double>(swap % 7 + 1)));
    std::this_thread::sleep_for(2ms);
  }
  join_all(clients);

  // Stop with one final pipelined connection mid-flight so the drain path
  // races real traffic.
  const int fd = connect_loopback(port);
  if (fd >= 0) {
    const char* line = "{\"model\":\"m\",\"window\":[0.5,0.5]}\n";
    (void)::send(fd, line, std::strlen(line), MSG_NOSIGNAL);
  }
  reactor.stop();
  if (fd >= 0) ::close(fd);
  service.shutdown();
  EXPECT_EQ(failures.load(), 0u);
}

#endif  // defined(__linux__)


TEST(StressConcurrency, QualityObserveAgainstPredictAndReload) {
  // The quality loop's three writers at once: predict threads recording
  // forecasts into per-model ledgers, observe threads maturing them (with
  // occasional explicit-tick jumps and stale duplicates), and the model
  // hot-reloading underneath — plus readers snapshotting and rendering the
  // labelled exposition. TSan watches the armed flag, the map-shape mutex
  // against the per-model locks, and the provider render against ingestion.
  const auto path = std::filesystem::temp_directory_path() / "stress_quality.efr";
  {
    std::ofstream out(path);
    constant_system(1.0).save(out);
  }
  ef::serve::ModelStore store;
  store.add_file("m", path.string());
  store.add_system("n", constant_system(2.0));

  ef::serve::ServeOptions options;
  options.enable_batcher = false;
  options.quality.ledger_capacity = 64;  // small ring: constant wraparound
  options.quality.window = 32;
  options.quality.drift.lambda = 1.0;  // drift edges fire during the run too
  options.quality.drift.min_samples = 4;
  options.quality.drift.clear_after = 4;
  ef::serve::ForecastService service(store, options);
  ASSERT_NE(service.quality(), nullptr);
  service.quality()->observe("m", 1.0);  // arm before the threads race
  service.quality()->observe("n", 2.0);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> predictions{0};
  std::atomic<std::size_t> observations{0};

  auto predictors = spawn(3, [&](std::size_t i) {
    ef::serve::PredictRequest request;
    request.model = i % 2 == 0 ? "m" : "n";
    request.window = {0.5, 0.5};
    request.use_cache = false;  // every call takes the record_forecast path
    while (!stop.load(std::memory_order_relaxed)) {
      const auto response = service.predict(request);
      ASSERT_TRUE(response.ok);
      predictions.fetch_add(1, std::memory_order_relaxed);
    }
  });
  auto observers = spawn(2, [&](std::size_t i) {
    const char* model = i % 2 == 0 ? "m" : "n";
    std::size_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      if (round % 16 == 15) {
        // Duplicate/out-of-order actual: must be rejected as stale, never
        // matured twice.
        service.quality()->observe(model, 9.9, 1);
      } else {
        const double actual = round % 8 < 4 ? 1.0 : 6.0;  // drift churn
        service.quality()->observe(model, actual);
      }
      observations.fetch_add(1, std::memory_order_relaxed);
      ++round;
    }
  });
  auto readers = spawn(2, [&](std::size_t) {
    while (!stop.load(std::memory_order_relaxed)) {
      const auto models = service.quality()->snapshot();
      ASSERT_LE(models.size(), 2u);
      for (const auto& m : models) {
        ASSERT_LE(m.window_n, 32u);
        ASSERT_LE(m.pending, 64u);
      }
      std::string out;
      service.quality()->render_prometheus(out, {});
      ASSERT_NE(out.find("ef_quality_armed 1"), std::string::npos);
    }
  });

  for (std::size_t round = 2; round < 2 + 8 * kIterScale; ++round) {
    {
      std::ofstream out(path);
      constant_system(static_cast<double>(round % 7 + 1)).save(out);
    }
    std::filesystem::last_write_time(
        path, std::filesystem::last_write_time(path) + std::chrono::seconds(round));
    store.poll_now();
    std::this_thread::sleep_for(2ms);
  }

  stop.store(true);
  join_all(predictors);
  join_all(observers);
  join_all(readers);
  EXPECT_GT(predictions.load(), 0u);
  EXPECT_GT(observations.load(), 0u);
  const auto models = service.quality()->snapshot();
  ASSERT_EQ(models.size(), 2u);
  // Ledger accounting stays consistent under the races: everything recorded
  // either matured, went overdue, was evicted, or is still pending.
  for (const auto& m : models) {
    EXPECT_GT(m.observed, 0u);
    EXPECT_LE(m.pending, 64u);
  }
  std::filesystem::remove(path);
}

}  // namespace
