// Tests for selection.hpp, crossover.hpp and mutation.hpp: gene provenance,
// selection pressure, and the mutation invariants (lo <= hi, range clamping)
// under parameterized sweeps.
#include <gtest/gtest.h>

#include <limits>
#include <map>
#include <stdexcept>
#include <vector>

#include "core/crossover.hpp"
#include "core/mutation.hpp"
#include "core/selection.hpp"
#include "series/timeseries.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::Interval;
using ef::core::MutationOp;
using ef::core::Rule;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

Rule with_fitness(std::vector<Interval> genes, double fitness) {
  Rule r(std::move(genes));
  ef::core::PredictingPart part;
  part.fit.coeffs = {0.0};
  part.fitness = fitness;
  r.set_predicting(part);
  return r;
}

// ---- selection --------------------------------------------------------------

TEST(Tournament, SingleRoundIsUniform) {
  std::vector<Rule> population;
  for (int i = 0; i < 4; ++i) population.push_back(with_fitness({Interval(0, 1)}, i));
  ef::util::Rng rng(1);
  std::map<std::size_t, int> counts;
  for (int i = 0; i < 4000; ++i) ++counts[ef::core::tournament_select(population, 1, rng)];
  for (const auto& [idx, c] : counts) EXPECT_NEAR(c, 1000, 150);
}

TEST(Tournament, MoreRoundsIncreasePressure) {
  std::vector<Rule> population;
  for (int i = 0; i < 10; ++i) population.push_back(with_fitness({Interval(0, 1)}, i));
  ef::util::Rng rng(2);
  const auto best_rate = [&](std::size_t rounds) {
    int best = 0;
    for (int i = 0; i < 5000; ++i) {
      if (ef::core::tournament_select(population, rounds, rng) == 9) ++best;
    }
    return best / 5000.0;
  };
  const double r1 = best_rate(1);
  const double r3 = best_rate(3);
  const double r7 = best_rate(7);
  EXPECT_LT(r1, r3);
  EXPECT_LT(r3, r7);
  EXPECT_NEAR(r1, 0.1, 0.03);
  // P(best in 3 draws) = 1 − 0.9³ = 0.271.
  EXPECT_NEAR(r3, 0.271, 0.03);
}

TEST(Tournament, AlwaysPicksBestWhenSampled) {
  // With rounds == population-size · large factor the best is near-surely in
  // the sample; just verify the winner is never worse than a random pick's
  // fitness under many rounds.
  std::vector<Rule> population;
  for (int i = 0; i < 5; ++i) population.push_back(with_fitness({Interval(0, 1)}, i));
  ef::util::Rng rng(3);
  int best_count = 0;
  for (int i = 0; i < 200; ++i) {
    if (ef::core::tournament_select(population, 50, rng) == 4) ++best_count;
  }
  EXPECT_GT(best_count, 195);
}

TEST(Tournament, EmptyPopulationThrows) {
  std::vector<Rule> empty;
  ef::util::Rng rng(4);
  EXPECT_THROW((void)ef::core::tournament_select(empty, 3, rng), std::invalid_argument);
}

TEST(Tournament, ZeroRoundsThrows) {
  std::vector<Rule> population{with_fitness({Interval(0, 1)}, 0.0)};
  ef::util::Rng rng(5);
  EXPECT_THROW((void)ef::core::tournament_select(population, 0, rng), std::invalid_argument);
}

TEST(SelectParents, ReturnsValidIndices) {
  std::vector<Rule> population;
  for (int i = 0; i < 8; ++i) population.push_back(with_fitness({Interval(0, 1)}, i));
  ef::util::Rng rng(6);
  for (int i = 0; i < 100; ++i) {
    const auto p = ef::core::select_parents(population, 3, rng);
    EXPECT_LT(p.first, population.size());
    EXPECT_LT(p.second, population.size());
  }
}

// ---- crossover --------------------------------------------------------------

TEST(Crossover, EveryGeneComesFromAParent) {
  ef::util::Rng rng(7);
  const Rule a({Interval(0, 1), Interval(2, 3), Interval::wildcard(), Interval(6, 7)});
  const Rule b({Interval(10, 11), Interval(12, 13), Interval(14, 15), Interval::wildcard()});
  for (int trial = 0; trial < 200; ++trial) {
    const Rule child = ef::core::uniform_crossover(a, b, rng);
    ASSERT_EQ(child.window(), 4u);
    for (std::size_t j = 0; j < 4; ++j) {
      const bool from_a = child.genes()[j] == a.genes()[j];
      const bool from_b = child.genes()[j] == b.genes()[j];
      EXPECT_TRUE(from_a || from_b) << "gene " << j;
    }
    EXPECT_FALSE(child.predicting().has_value());  // never inherited
  }
}

TEST(Crossover, BothParentsContributeOverManyTrials) {
  ef::util::Rng rng(8);
  const Rule a({Interval(0, 1), Interval(0, 1)});
  const Rule b({Interval(5, 6), Interval(5, 6)});
  int from_a = 0;
  constexpr int kTrials = 2000;
  for (int t = 0; t < kTrials; ++t) {
    const Rule child = ef::core::uniform_crossover(a, b, rng);
    for (std::size_t j = 0; j < 2; ++j) {
      if (child.genes()[j] == a.genes()[j]) ++from_a;
    }
  }
  EXPECT_NEAR(from_a, kTrials, kTrials / 10);  // ≈ 50 % of 2·kTrials genes
}

TEST(Crossover, IdenticalParentsYieldClone) {
  ef::util::Rng rng(9);
  const Rule a({Interval(1, 2), Interval::wildcard()});
  const Rule child = ef::core::uniform_crossover(a, a, rng);
  EXPECT_EQ(child.genes()[0], a.genes()[0]);
  EXPECT_EQ(child.genes()[1], a.genes()[1]);
}

TEST(Crossover, WindowMismatchThrows) {
  ef::util::Rng rng(10);
  const Rule a({Interval(0, 1)});
  const Rule b({Interval(0, 1), Interval(0, 1)});
  EXPECT_THROW((void)ef::core::uniform_crossover(a, b, rng), std::invalid_argument);
}

// ---- mutation ---------------------------------------------------------------

TEST(MutateGene, EnlargeGrowsBothSides) {
  ef::util::Rng rng(11);
  const Interval g(4.0, 6.0);
  const Interval m = ef::core::mutate_gene(g, MutationOp::kEnlarge, 1.0, 0.0, 10.0, rng);
  EXPECT_DOUBLE_EQ(m.lo(), 3.0);
  EXPECT_DOUBLE_EQ(m.hi(), 7.0);
}

TEST(MutateGene, ShrinkNarrowsBothSides) {
  ef::util::Rng rng(12);
  const Interval g(2.0, 8.0);
  const Interval m = ef::core::mutate_gene(g, MutationOp::kShrink, 1.0, 0.0, 10.0, rng);
  EXPECT_DOUBLE_EQ(m.lo(), 3.0);
  EXPECT_DOUBLE_EQ(m.hi(), 7.0);
}

TEST(MutateGene, ShrinkPastZeroCollapsesToMidpoint) {
  ef::util::Rng rng(13);
  const Interval g(4.0, 6.0);
  const Interval m = ef::core::mutate_gene(g, MutationOp::kShrink, 5.0, 0.0, 10.0, rng);
  EXPECT_DOUBLE_EQ(m.lo(), 5.0);
  EXPECT_DOUBLE_EQ(m.hi(), 5.0);
}

TEST(MutateGene, ShiftMovesWithoutResizing) {
  ef::util::Rng rng(14);
  const Interval g(2.0, 4.0);
  const Interval up = ef::core::mutate_gene(g, MutationOp::kShiftUp, 1.5, 0.0, 10.0, rng);
  EXPECT_DOUBLE_EQ(up.lo(), 3.5);
  EXPECT_DOUBLE_EQ(up.hi(), 5.5);
  const Interval down = ef::core::mutate_gene(g, MutationOp::kShiftDown, 1.5, 0.0, 10.0, rng);
  EXPECT_DOUBLE_EQ(down.lo(), 0.5);
  EXPECT_DOUBLE_EQ(down.hi(), 2.5);
}

TEST(MutateGene, ClampsToRange) {
  ef::util::Rng rng(15);
  const Interval g(8.0, 9.0);
  const Interval up = ef::core::mutate_gene(g, MutationOp::kShiftUp, 5.0, 0.0, 10.0, rng);
  EXPECT_LE(up.hi(), 10.0);
  EXPECT_LE(up.lo(), up.hi());
  const Interval big = ef::core::mutate_gene(g, MutationOp::kEnlarge, 100.0, 0.0, 10.0, rng);
  EXPECT_DOUBLE_EQ(big.lo(), 0.0);
  EXPECT_DOUBLE_EQ(big.hi(), 10.0);
}

TEST(MutateGene, ToggleWildcardBothWays) {
  ef::util::Rng rng(16);
  const Interval g(1.0, 2.0);
  const Interval w = ef::core::mutate_gene(g, MutationOp::kToggleWildcard, 1.0, 0.0, 10.0, rng);
  EXPECT_TRUE(w.is_wildcard());
  const Interval back =
      ef::core::mutate_gene(w, MutationOp::kToggleWildcard, 2.0, 0.0, 10.0, rng);
  ASSERT_FALSE(back.is_wildcard());
  EXPECT_GE(back.lo(), 0.0);
  EXPECT_LE(back.hi(), 10.0);
}

TEST(MutateGene, GeometricOpsOnWildcardAreNoops) {
  ef::util::Rng rng(17);
  const Interval w = Interval::wildcard();
  for (const auto op : {MutationOp::kEnlarge, MutationOp::kShrink, MutationOp::kShiftUp,
                        MutationOp::kShiftDown}) {
    EXPECT_TRUE(ef::core::mutate_gene(w, op, 1.0, 0.0, 10.0, rng).is_wildcard());
  }
}

class MutationPropertyTest : public testing::TestWithParam<std::uint64_t> {};

// The central invariant: no sequence of mutations ever produces lo > hi or
// leaves the data range.
TEST_P(MutationPropertyTest, RepeatedMutationPreservesInvariants) {
  ef::util::Rng rng(GetParam());
  const auto series = [] {
    ef::util::Rng r(42);
    std::vector<double> v(300);
    for (double& x : v) x = r.uniform(-50.0, 150.0);
    return TimeSeries(std::move(v));
  }();
  const WindowDataset data(series, 6, 1);

  ef::core::EvolutionConfig cfg;
  cfg.mutation_prob = 0.8;
  cfg.mutation_scale = 0.3;
  cfg.wildcard_toggle_prob = 0.2;

  // Seed genes inside the dataset's observed range (mutation clamps to that
  // range, so genes seeded inside it must stay inside it forever).
  const double lo = data.value_min();
  const double hi = data.value_max();
  const double mid = 0.5 * (lo + hi);
  Rule r({Interval(lo, hi), Interval(mid, mid + 10.0), Interval::wildcard(),
          Interval(lo + 1.0, mid), Interval(mid, hi - 1.0), Interval(mid, mid)});
  for (int step = 0; step < 500; ++step) {
    ef::core::mutate_rule(r, data, cfg, rng);
    for (const auto& g : r.genes()) {
      if (g.is_wildcard()) continue;
      ASSERT_LE(g.lo(), g.hi());
      ASSERT_GE(g.lo(), data.value_min());
      ASSERT_LE(g.hi(), data.value_max());
    }
  }
}

TEST_P(MutationPropertyTest, ZeroProbabilityNeverChanges) {
  ef::util::Rng rng(GetParam() + 100);
  const TimeSeries series(std::vector<double>{0, 1, 2, 3, 4, 5, 6, 7});
  const WindowDataset data(series, 3, 1);
  ef::core::EvolutionConfig cfg;
  cfg.mutation_prob = 0.0;
  Rule r({Interval(1, 2), Interval(3, 4), Interval::wildcard()});
  const auto before = r.genes();
  for (int i = 0; i < 50; ++i) ef::core::mutate_rule(r, data, cfg, rng);
  for (std::size_t j = 0; j < 3; ++j) EXPECT_EQ(r.genes()[j], before[j]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MutationPropertyTest, testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(MutateRule, InvalidatesPredictingPartOnChange) {
  ef::util::Rng rng(18);
  const TimeSeries series(std::vector<double>{0, 1, 2, 3, 4, 5, 6, 7});
  const WindowDataset data(series, 3, 1);
  ef::core::EvolutionConfig cfg;
  cfg.mutation_prob = 1.0;
  Rule r = with_fitness({Interval(1, 2), Interval(3, 4), Interval(0, 7)}, 5.0);
  ASSERT_TRUE(r.predicting().has_value());
  ef::core::mutate_rule(r, data, cfg, rng);
  EXPECT_FALSE(r.predicting().has_value());
  EXPECT_EQ(r.fitness(), -std::numeric_limits<double>::infinity());
}

}  // namespace
