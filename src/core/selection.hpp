// selection.hpp — parent selection (paper §3.3: "three rounds trials").
//
// We read the paper's selection as a k-round tournament: sample k
// individuals uniformly with replacement, keep the fittest. Rounds = 3 by
// default (configurable). Header-only: the logic is a dozen lines and is
// instantiated in both the engine and the ablation benches.
#pragma once

#include <cstddef>
#include <span>

#include "core/rule.hpp"
#include "util/rng.hpp"

namespace ef::core {

/// Index of the tournament winner among `population`. Requires a non-empty
/// population and rounds >= 1 (throws std::invalid_argument otherwise).
[[nodiscard]] inline std::size_t tournament_select(std::span<const Rule> population,
                                                   std::size_t rounds, util::Rng& rng) {
  if (population.empty()) throw std::invalid_argument("tournament_select: empty population");
  if (rounds == 0) throw std::invalid_argument("tournament_select: rounds must be >= 1");
  std::size_t best = rng.index(population.size());
  for (std::size_t r = 1; r < rounds; ++r) {
    const std::size_t challenger = rng.index(population.size());
    if (population[challenger].fitness() > population[best].fitness()) best = challenger;
  }
  return best;
}

/// Two parents, independently selected. They may coincide (the paper does
/// not forbid self-mating; uniform crossover of identical parents is a
/// clone, which mutation then perturbs).
struct ParentPair {
  std::size_t first;
  std::size_t second;
};

[[nodiscard]] inline ParentPair select_parents(std::span<const Rule> population,
                                               std::size_t rounds, util::Rng& rng) {
  return ParentPair{tournament_select(population, rounds, rng),
                    tournament_select(population, rounds, rng)};
}

}  // namespace ef::core
