// Tests for core/rule_system.hpp: vote averaging, abstention, coverage,
// serialisation round-trip, and the coverage-driven multi-execution trainer.
#include "core/rule_system.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <vector>

#include "core/evolution.hpp"
#include "series/timeseries.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleSystem;
using ef::core::RuleSystemConfig;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

Rule constant_rule(std::vector<Interval> genes, double prediction, double fitness = 1.0) {
  Rule r(std::move(genes));
  ef::core::PredictingPart part;
  part.fit.coeffs.assign(r.window() + 1, 0.0);
  part.fit.coeffs.back() = prediction;
  part.fit.mean_prediction = prediction;
  part.matches = 5;
  part.fitness = fitness;
  r.set_predicting(part);
  return r;
}

TEST(RuleSystem, EmptySystemAbstains) {
  const RuleSystem system;
  EXPECT_TRUE(system.empty());
  EXPECT_FALSE(system.forecast(std::vector<double>{1.0, 2.0}).as_optional().has_value());
}

TEST(RuleSystem, SingleRulePredicts) {
  RuleSystem system;
  system.add_rules({constant_rule({Interval(0, 10), Interval(0, 10)}, 42.0)}, false, -1.0);
  const auto p = system.forecast(std::vector<double>{5.0, 5.0}).as_optional();
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(*p, 42.0);
}

TEST(RuleSystem, OutputIsMeanOfMatchingRules) {
  RuleSystem system;
  system.add_rules({constant_rule({Interval(0, 10), Interval(0, 10)}, 10.0),
                    constant_rule({Interval(0, 10), Interval(0, 10)}, 20.0),
                    constant_rule({Interval(50, 60), Interval(50, 60)}, 99.0)},
                   false, -1.0);
  const auto p = system.forecast(std::vector<double>{5.0, 5.0}).as_optional();
  ASSERT_TRUE(p.has_value());
  EXPECT_DOUBLE_EQ(*p, 15.0);  // third rule doesn't match
  EXPECT_EQ(system.vote_count(std::vector<double>{5.0, 5.0}), 2u);
}

TEST(RuleSystem, AbstainsOutsideAllRules) {
  RuleSystem system;
  system.add_rules({constant_rule({Interval(0, 10), Interval(0, 10)}, 1.0)}, false, -1.0);
  EXPECT_FALSE(system.forecast(std::vector<double>{50.0, 50.0}).as_optional().has_value());
  EXPECT_EQ(system.vote_count(std::vector<double>{50.0, 50.0}), 0u);
}

TEST(RuleSystem, DiscardUnfitFiltersFMinRules) {
  RuleSystem system;
  system.add_rules({constant_rule({Interval(0, 1)}, 1.0, -1.0),   // f_min: dropped
                    constant_rule({Interval(0, 1)}, 2.0, 0.5)},   // kept
                   true, -1.0);
  EXPECT_EQ(system.size(), 1u);
}

TEST(RuleSystem, UnevaluatedRulesAlwaysDropped) {
  RuleSystem system;
  std::vector<Rule> rules;
  rules.emplace_back(std::vector<Interval>{Interval(0, 1)});  // no predicting part
  system.add_rules(std::move(rules), false, -1.0);
  EXPECT_EQ(system.size(), 0u);
}

TEST(RuleSystem, ForecastDatasetMarksAbstentions) {
  // Ramp 0..9: rules cover only windows whose first value <= 3.
  std::vector<double> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  const WindowDataset data(TimeSeries(std::move(v)), 2, 1);
  RuleSystem system;
  system.add_rules({constant_rule({Interval(0, 3), Interval::wildcard()}, 7.0)}, false, -1.0);
  const auto forecast = system.forecast_dataset(data);
  ASSERT_EQ(forecast.size(), data.count());
  for (std::size_t i = 0; i < forecast.size(); ++i) {
    EXPECT_EQ(forecast[i].has_value(), i <= 3) << i;
  }
}

TEST(RuleSystem, CoveragePercent) {
  std::vector<double> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};  // 8 windows with D=2,τ=1
  const WindowDataset data(TimeSeries(std::move(v)), 2, 1);
  RuleSystem system;
  system.add_rules({constant_rule({Interval(0, 3), Interval::wildcard()}, 7.0)}, false, -1.0);
  EXPECT_DOUBLE_EQ(system.coverage_percent(data), 100.0 * 4.0 / 8.0);
}

TEST(RuleSystem, SaveLoadRoundTrip) {
  RuleSystem original;
  original.add_rules(
      {constant_rule({Interval(0.5, 10.25), Interval::wildcard()}, 42.125, 3.5),
       constant_rule({Interval(-3, -1), Interval(7, 8)}, -0.75, 1.25)},
      false, -10.0);

  std::stringstream buffer;
  original.save(buffer);
  const RuleSystem loaded = RuleSystem::load(buffer);

  ASSERT_EQ(loaded.size(), original.size());
  // Same predictions on probe windows.
  const std::vector<double> probe1{5.0, 123.0};
  const std::vector<double> probe2{-2.0, 7.5};
  EXPECT_EQ(loaded.forecast(probe1).as_optional().has_value(), original.forecast(probe1).as_optional().has_value());
  EXPECT_DOUBLE_EQ(*loaded.forecast(probe1).as_optional(), *original.forecast(probe1).as_optional());
  EXPECT_DOUBLE_EQ(*loaded.forecast(probe2).as_optional(), *original.forecast(probe2).as_optional());
  // Stats preserved.
  EXPECT_DOUBLE_EQ(loaded.rules()[0].fitness(), 3.5);
  EXPECT_EQ(loaded.rules()[0].predicting()->matches, 5u);
}

TEST(RuleSystem, SaveLoadPreservesHyperplaneCoefficients) {
  Rule r({Interval(0, 1), Interval(0, 1)});
  ef::core::PredictingPart part;
  part.fit.coeffs = {1.5, -2.5, 0.125};
  part.fit.mean_prediction = 0.7;
  part.fit.max_abs_residual = 0.01;
  part.matches = 9;
  part.fitness = 2.0;
  r.set_predicting(part);
  RuleSystem original;
  original.add_rules({std::move(r)}, false, -1.0);

  std::stringstream buffer;
  original.save(buffer);
  const RuleSystem loaded = RuleSystem::load(buffer);
  const std::vector<double> w{0.5, 0.25};
  EXPECT_DOUBLE_EQ(*loaded.forecast(w).as_optional(), 1.5 * 0.5 - 2.5 * 0.25 + 0.125);
}

TEST(RuleSystem, LoadRejectsBadHeader) {
  std::stringstream buffer("not-a-rules-file\n0\n");
  EXPECT_THROW((void)RuleSystem::load(buffer), std::runtime_error);
}

TEST(RuleSystem, LoadRejectsTruncatedFile) {
  std::stringstream buffer("evoforecast-rules v1\n2\n1 0 1");
  EXPECT_THROW((void)RuleSystem::load(buffer), std::runtime_error);
}

// ---- train ------------------------------------------------------------------

TEST(TrainRuleSystem, ReachesCoverageTargetOnEasySeries) {
  ef::util::Rng rng(31);
  std::vector<double> v(500);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(static_cast<double>(i) * 0.15) + rng.normal(0.0, 0.02);
  }
  const WindowDataset data(TimeSeries(std::move(v)), 4, 1);

  RuleSystemConfig cfg;
  cfg.evolution.population_size = 25;
  cfg.evolution.generations = 400;
  cfg.evolution.emax = 0.4;
  cfg.evolution.seed = 13;
  cfg.coverage_target_percent = 60.0;
  cfg.max_executions = 4;

  const auto result = ef::core::train(data, {.config = cfg});
  EXPECT_GE(result.executions, 1u);
  EXPECT_LE(result.executions, 4u);
  EXPECT_GE(result.train_coverage_percent, 60.0);
  EXPECT_FALSE(result.system.empty());
}

TEST(TrainRuleSystem, CoverageMonotonicallyNonDecreasing) {
  ef::util::Rng rng(32);
  std::vector<double> v(400);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = rng.uniform(0.0, 1.0);
  const WindowDataset data(TimeSeries(std::move(v)), 3, 1);

  RuleSystemConfig cfg;
  cfg.evolution.population_size = 15;
  cfg.evolution.generations = 100;
  cfg.evolution.emax = 0.9;
  cfg.evolution.seed = 14;
  cfg.coverage_target_percent = 100.0;  // force all executions
  cfg.max_executions = 3;

  const auto result = ef::core::train(data, {.config = cfg});
  for (std::size_t i = 1; i < result.coverage_per_execution.size(); ++i) {
    EXPECT_GE(result.coverage_per_execution[i], result.coverage_per_execution[i - 1] - 1e-9);
  }
}

TEST(TrainRuleSystem, Deterministic) {
  ef::util::Rng rng(33);
  std::vector<double> v(300);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(static_cast<double>(i) * 0.3) + rng.normal(0.0, 0.05);
  }
  const TimeSeries s(std::move(v));
  const WindowDataset data(s, 3, 1);

  RuleSystemConfig cfg;
  cfg.evolution.population_size = 12;
  cfg.evolution.generations = 150;
  cfg.evolution.emax = 0.3;
  cfg.evolution.seed = 15;
  cfg.max_executions = 2;
  cfg.coverage_target_percent = 100.0;

  const auto a = ef::core::train(data, {.config = cfg});
  const auto b = ef::core::train(data, {.config = cfg});
  EXPECT_EQ(a.executions, b.executions);
  EXPECT_DOUBLE_EQ(a.train_coverage_percent, b.train_coverage_percent);
  ASSERT_EQ(a.system.size(), b.system.size());
}

TEST(TrainRuleSystem, InvalidConfigThrows) {
  const TimeSeries s(std::vector<double>{0, 1, 2, 3, 4, 5, 6, 7});
  const WindowDataset data(s, 3, 1);
  RuleSystemConfig cfg;
  cfg.max_executions = 0;
  EXPECT_THROW((void)ef::core::train(data, {.config = cfg}), std::invalid_argument);
  cfg = RuleSystemConfig{};
  cfg.coverage_target_percent = 150.0;
  EXPECT_THROW((void)ef::core::train(data, {.config = cfg}), std::invalid_argument);
}

}  // namespace
