#include "obs/window.hpp"

#include <algorithm>

namespace ef::obs {
namespace {

/// Monotone-counter delta tolerant of reset_values(): a counter that went
/// backwards between frames is treated as freshly restarted.
std::uint64_t monotone_delta(std::uint64_t older, std::uint64_t newer) {
  return newer >= older ? newer - older : newer;
}

/// Find a counter value by name in a sorted snapshot section; 0 when absent
/// (the instrument did not exist yet at the older frame).
std::uint64_t counter_value_or_zero(const std::vector<MetricsSnapshot::CounterValue>& counters,
                                    const std::string& name) {
  const auto it = std::lower_bound(
      counters.begin(), counters.end(), name,
      [](const MetricsSnapshot::CounterValue& c, const std::string& n) { return c.name < n; });
  return (it != counters.end() && it->name == name) ? it->value : 0;
}

const HistogramStats* histogram_or_null(
    const std::vector<MetricsSnapshot::HistogramValue>& histograms, const std::string& name) {
  const auto it = std::lower_bound(histograms.begin(), histograms.end(), name,
                                   [](const MetricsSnapshot::HistogramValue& h,
                                      const std::string& n) { return h.name < n; });
  return (it != histograms.end() && it->name == name) ? &it->stats : nullptr;
}

WindowedHistogram windowed_histogram(const std::string& name, const HistogramStats* older,
                                     const HistogramStats& newer, double window_seconds) {
  WindowedHistogram out;
  out.name = name;

  // Bucket-wise delta. Instrument addresses are stable and bounds are fixed
  // at first registration, so the layouts match whenever the older frame
  // has the histogram at all; a missing/mismatched older frame counts as
  // all-zero (the histogram was born inside the window).
  std::vector<std::uint64_t> delta(newer.buckets.size(), 0);
  const bool comparable = older != nullptr && older->buckets.size() == newer.buckets.size();
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < newer.buckets.size(); ++i) {
    const std::uint64_t before = comparable ? older->buckets[i] : 0;
    delta[i] = monotone_delta(before, newer.buckets[i]);
    total += delta[i];
  }
  out.count = total;
  out.per_sec = window_seconds > 0.0 ? static_cast<double>(total) / window_seconds : 0.0;
  const double sum_before = comparable ? older->sum : 0.0;
  out.sum = newer.sum >= sum_before ? newer.sum - sum_before : newer.sum;

  // Windowed quantiles re-interpolate the delta buckets. Without per-window
  // exact min/max, clamp to the bucket grid itself: 0 below, the last
  // finite bound above (observations past it report that bound).
  const double hi = newer.bounds.empty() ? 0.0 : newer.bounds.back();
  out.p50 = quantile_from_buckets(newer.bounds, delta, total, 0.50, 0.0, hi);
  out.p90 = quantile_from_buckets(newer.bounds, delta, total, 0.90, 0.0, hi);
  out.p99 = quantile_from_buckets(newer.bounds, delta, total, 0.99, 0.0, hi);
  return out;
}

}  // namespace

WindowedCollector::WindowedCollector(Registry& registry)
    : WindowedCollector(registry, Config{}) {}

WindowedCollector::WindowedCollector(Registry& registry, Config config)
    : registry_(registry), config_(config) {
  if (config_.buckets < 2) config_.buckets = 2;
}

WindowedCollector::~WindowedCollector() { stop(); }

void WindowedCollector::tick(std::chrono::steady_clock::time_point now) {
  Frame frame{now, registry_.snapshot()};
  const auto horizon = config_.bucket * static_cast<long>(config_.buckets);
  const std::lock_guard lock(mutex_);
  // `now` is captured before the lock, so concurrent tickers (the sampler
  // thread racing an explicit tick()) can arrive here out of order. A frame
  // older than the newest one recorded adds no information — and pushing it
  // would break the deque's time ordering, which window() relies on for a
  // non-negative window_seconds.
  if (!frames_.empty() && now <= frames_.back().at) {
    if (now >= frames_.front().at) return;
    // A jump to before the whole window is a genuine clock reset (synthetic
    // test timestamps reused across cases): start the window over from this
    // frame.
    frames_.clear();
  }
  // Drop frames that fell off the horizon.
  while (!frames_.empty() && frames_.front().at + horizon < now) {
    frames_.pop_front();
  }
  frames_.push_back(std::move(frame));
  while (frames_.size() > config_.buckets + 1) frames_.pop_front();
}

void WindowedCollector::start() {
  if (sampling_.exchange(true, std::memory_order_acq_rel)) return;
  {
    const std::lock_guard lock(sampler_mutex_);
    sampler_stop_ = false;
  }
  sampler_ = std::thread([this] {
    tick();
    std::unique_lock lock(sampler_mutex_);
    while (!sampler_cv_.wait_for(lock, config_.bucket, [this] { return sampler_stop_; })) {
      lock.unlock();
      tick();
      lock.lock();
    }
  });
}

void WindowedCollector::stop() {
  if (!sampling_.exchange(false, std::memory_order_acq_rel)) return;
  {
    const std::lock_guard lock(sampler_mutex_);
    sampler_stop_ = true;
  }
  sampler_cv_.notify_all();
  if (sampler_.joinable()) sampler_.join();
}

bool WindowedCollector::endpoints(Frame& oldest, Frame& newest) const {
  const std::lock_guard lock(mutex_);
  if (frames_.size() < 2) return false;
  oldest = frames_.front();
  newest = frames_.back();
  return true;
}

WindowSnapshot WindowedCollector::window() const {
  WindowSnapshot out;
  Frame oldest;
  Frame newest;
  if (!endpoints(oldest, newest)) return out;
  out.window_seconds = std::chrono::duration<double>(newest.at - oldest.at).count();
  if (out.window_seconds <= 0.0) return out;

  out.counters.reserve(newest.snap.counters.size());
  for (const auto& c : newest.snap.counters) {
    WindowedCounter wc;
    wc.name = c.name;
    wc.delta = monotone_delta(counter_value_or_zero(oldest.snap.counters, c.name), c.value);
    wc.per_sec = static_cast<double>(wc.delta) / out.window_seconds;
    out.counters.push_back(std::move(wc));
  }

  out.histograms.reserve(newest.snap.histograms.size());
  for (const auto& h : newest.snap.histograms) {
    out.histograms.push_back(windowed_histogram(
        h.name, histogram_or_null(oldest.snap.histograms, h.name), h.stats,
        out.window_seconds));
  }
  return out;
}

std::optional<WindowedCounter> WindowedCollector::counter_rate(std::string_view name) const {
  const WindowSnapshot snap = window();
  for (const auto& c : snap.counters) {
    if (c.name == name) return c;
  }
  return std::nullopt;
}

std::optional<WindowedHistogram> WindowedCollector::histogram_window(
    std::string_view name) const {
  const WindowSnapshot snap = window();
  for (const auto& h : snap.histograms) {
    if (h.name == name) return h;
  }
  return std::nullopt;
}

WindowedCollector& WindowedCollector::global() {
  static WindowedCollector collector(Registry::global(), Config{});
  return collector;
}

}  // namespace ef::obs
