#include "core/match_backend.hpp"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "obs/macros.hpp"

#if defined(__x86_64__) || defined(__i386__)
#define EF_MATCH_X86 1
#include <immintrin.h>
#else
#define EF_MATCH_X86 0
#if defined(__SSE2__)
#include <emmintrin.h>
#endif
#endif

namespace ef::core {

std::optional<MatchBackend> parse_match_backend(std::string_view name) noexcept {
  if (name == "scalar") return MatchBackend::kScalar;
  if (name == "soa") return MatchBackend::kSoa;
  if (name == "soa_prefilter" || name == "soa+prefilter") return MatchBackend::kSoaPrefilter;
  if (name == "avx2") return MatchBackend::kAvx2;
  if (name == "rule_major") return MatchBackend::kRuleMajor;
  if (name == "auto") return MatchBackend::kAuto;
  return std::nullopt;
}

bool cpu_supports_avx2() noexcept {
  // Probed once per process. EVOFORECAST_MATCH_CPU=baseline masks the probe
  // so the no-AVX dispatch path can be exercised on modern hardware (the CI
  // backend matrix does exactly that).
  static const bool supported = [] {
#if EF_MATCH_X86
    if (const char* cpu = std::getenv("EVOFORECAST_MATCH_CPU");
        cpu != nullptr && std::string_view(cpu) == "baseline") {
      return false;
    }
    return __builtin_cpu_supports("avx2") != 0;
#else
    return false;
#endif
  }();
  return supported;
}

namespace {

/// One-time "which backend actually runs" breadcrumb: an event plus a
/// per-backend counter, emitted the first time each backend value is
/// resolved in this process. Smoke scripts assert on the event; efstat
/// surfaces the counter. (Histogram/counter names must be literals, hence
/// the switch.)
void note_backend_selected(MatchBackend selected, bool avx2) {
#if EVOFORECAST_OBS_ENABLED
  static std::atomic<unsigned> seen{0};
  const unsigned bit = 1u << static_cast<unsigned>(selected);
  if (seen.fetch_or(bit, std::memory_order_relaxed) & bit) return;
  EVOFORECAST_EVENT("match.backend_selected", {"backend", to_string(selected)},
                    {"avx2_supported", avx2});
  switch (selected) {
    case MatchBackend::kScalar:
      EVOFORECAST_COUNT("match.backend.scalar.selected", 1);
      break;
    case MatchBackend::kSoa:
      EVOFORECAST_COUNT("match.backend.soa.selected", 1);
      break;
    case MatchBackend::kSoaPrefilter:
      EVOFORECAST_COUNT("match.backend.soa_prefilter.selected", 1);
      break;
    case MatchBackend::kAvx2:
      EVOFORECAST_COUNT("match.backend.avx2.selected", 1);
      break;
    case MatchBackend::kRuleMajor:
      EVOFORECAST_COUNT("match.backend.rule_major.selected", 1);
      break;
    case MatchBackend::kAuto:
      break;  // unreachable: pick_match_backend never returns kAuto
  }
#else
  (void)selected;
  (void)avx2;
#endif
}

}  // namespace

MatchBackend resolve_match_backend(MatchBackend configured) {
  // Read and parse the environment once; std::getenv is not guaranteed
  // thread-safe against setenv, and engines are constructed on hot paths.
  static const std::optional<MatchBackend> override_backend = [] {
    const char* value = std::getenv("EVOFORECAST_MATCH_BACKEND");
    if (!value || *value == '\0') return std::optional<MatchBackend>{};
    const auto parsed = parse_match_backend(value);
    if (!parsed) {
      std::fprintf(stderr,
                   "evoforecast: ignoring unknown EVOFORECAST_MATCH_BACKEND='%s' "
                   "(expected scalar | soa | soa_prefilter | avx2 | rule_major | auto)\n",
                   value);
    }
    return parsed;
  }();
  const MatchBackend requested = override_backend.value_or(configured);
  const bool avx2 = cpu_supports_avx2();
  const MatchBackend selected = pick_match_backend(requested, avx2);
  if (requested == MatchBackend::kAvx2 && selected != MatchBackend::kAvx2) {
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "evoforecast: avx2 match backend requested but the CPU reports no "
                   "AVX2; falling back to soa_prefilter\n");
    }
  }
  note_backend_selected(selected, avx2);
  return selected;
}

std::uint8_t quantize_value(double v, double qmin, double qinv) noexcept {
  if (!(v == v)) return 0;  // NaN: exact verification rejects it anyway
  return static_cast<std::uint8_t>(std::clamp(std::floor((v - qmin) * qinv), 0.0, 255.0));
}

RulePlanes build_rule_planes(std::span<const std::span<const Interval>> rule_genes,
                             std::size_t window, double qmin, double qinv) {
  // Lane padding matches the widest SIMD path (AVX2, 32 rules per vector);
  // 32 is a multiple of the SSE2 lane count, so both paths read full vectors.
  constexpr std::size_t kLane = 32;
  RulePlanes p;
  p.rule_count = rule_genes.size();
  p.window = window;
  p.padded = (p.rule_count + kLane - 1) / kLane * kLane;
  p.padded_genes = (window + 3) / 4 * 4;
  if (p.rule_count == 0) return p;

  // Padding lanes and inactive rules keep the impossible range lo=255 /
  // hi=0 — no byte satisfies both bounds, so they can never surface as
  // candidates and the kernels need no per-lane activity check.
  p.qlo.assign(window * p.padded, 255);
  p.qhi.assign(window * p.padded, 0);
  // Wildcard mask as a double bit pattern the vector verifier can OR into
  // its comparison mask. vlo/vhi for wildcard (and padding) gene lanes are
  // never consulted — the mask passes them unconditionally.
  const double kWildAll = std::bit_cast<double>(~std::uint64_t{0});
  p.vlo.assign(p.rule_count * p.padded_genes, 0.0);
  p.vhi.assign(p.rule_count * p.padded_genes, 0.0);
  p.wmask.assign(p.rule_count * p.padded_genes, 0.0);
  p.active.assign(p.rule_count, 0);

  for (std::size_t r = 0; r < p.rule_count; ++r) {
    const std::span<const Interval> genes = rule_genes[r];
    double* vlo = p.vlo.data() + r * p.padded_genes;
    double* vhi = p.vhi.data() + r * p.padded_genes;
    double* wm = p.wmask.data() + r * p.padded_genes;
    for (std::size_t j = window; j < p.padded_genes; ++j) wm[j] = kWildAll;
    if (genes.size() != window) continue;  // dimension mismatch: matches nothing
    p.active[r] = 1;
    for (std::size_t j = 0; j < window; ++j) {
      if (genes[j].is_wildcard()) {
        p.qlo[j * p.padded + r] = 0;
        p.qhi[j * p.padded + r] = 255;
        wm[j] = kWildAll;
      } else {
        p.qlo[j * p.padded + r] = quantize_value(genes[j].lo(), qmin, qinv);
        p.qhi[j * p.padded + r] = quantize_value(genes[j].hi(), qmin, qinv);
        vlo[j] = genes[j].lo();
        vhi[j] = genes[j].hi();
      }
    }
  }
  return p;
}

namespace matchkern {

namespace {

/// Branchless block compress: append every i in [begin, end) with
/// lo <= c[i] <= hi to `out`, ascending. The hot loop stores every index
/// into a small stack buffer and advances the write cursor by the predicate
/// — no data-dependent branch, so sparse and dense columns cost the same
/// and the column read streams at bandwidth. The buffer stays L1-resident;
/// the vector grows only in bulk appends between blocks.
inline void compress_column(const double* c, double lo, double hi, std::size_t begin,
                            std::size_t end, std::vector<std::size_t>& out) {
  constexpr std::size_t kBlock = 512;
  std::size_t buf[kBlock];
  std::size_t i = begin;
  while (i < end) {
    const std::size_t stop = std::min(end, i + kBlock);
    std::size_t w = 0;
    for (; i < stop; ++i) {
      buf[w] = i;
      w += static_cast<std::size_t>((c[i] >= lo) & (c[i] <= hi));
    }
    out.insert(out.end(), buf, buf + w);
  }
}

/// Byte-column compress of one block: write every i in [begin, end) with
/// qlo <= qc[i] <= qhi into `cand`, ascending; return how many. `cand` must
/// hold at least end − begin indices. Reads 1/8th the memory of the double
/// column and, with SSE2, tests 16 windows per compare — candidate indices
/// are extracted from the 16-bit movemask, so sparse masks cost almost
/// nothing beyond the streaming compare.
std::size_t byte_compress_block(const std::uint8_t* qc, std::uint8_t qlo,
                                std::uint8_t qhi, std::size_t begin,
                                std::size_t end, std::size_t* cand) {
  std::size_t w = 0;
  std::size_t i = begin;
#if EF_MATCH_X86 || defined(__SSE2__)
  // Unsigned byte range test without epu8 compares (SSE2 has none):
  // v >= lo  <=>  max(v, lo) == v, and v <= hi  <=>  min(v, hi) == v.
  const __m128i vlo = _mm_set1_epi8(static_cast<char>(qlo));
  const __m128i vhi = _mm_set1_epi8(static_cast<char>(qhi));
  for (; i + 16 <= end; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(qc + i));
    const __m128i ge = _mm_cmpeq_epi8(_mm_max_epu8(v, vlo), v);
    const __m128i le = _mm_cmpeq_epi8(_mm_min_epu8(v, vhi), v);
    unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(_mm_and_si128(ge, le)));
    while (mask) {
      cand[w++] = i + static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
    }
  }
#endif
  for (; i < end; ++i) {
    cand[w] = i;
    w += static_cast<std::size_t>((qc[i] >= qlo) & (qc[i] <= qhi));
  }
  return w;
}

/// Relax a double bound through the quantization map. floor() and the
/// multiply are monotone, so clamp(⌊(b − qmin)·qinv⌋) applied to both gene
/// edges brackets every byte a passing value could quantize to.
inline std::uint8_t quantize_bound(double b, double qmin, double qinv) {
  return quantize_value(b, qmin, qinv);
}

/// Exact double verification of one rule against one row-major window —
/// the same comparisons the scalar reference performs (wildcards accept
/// anything, including NaN; bounded genes reject NaN because both
/// comparisons are false). The wildcard flag lives in `wmask` as an all-ones
/// bit pattern (see build_rule_planes) so this and the AVX2 verifier below
/// read the same rows.
inline bool verify_rule_row(const RulePlanes& p, std::size_t r, const double* row) {
  const std::size_t pg = p.padded_genes;
  const double* lo = p.vlo.data() + r * pg;
  const double* hi = p.vhi.data() + r * pg;
  const double* wm = p.wmask.data() + r * pg;
  unsigned ok = 1;
  for (std::size_t j = 0; j < p.window; ++j) {
    const double v = row[j];
    ok &= static_cast<unsigned>(std::bit_cast<std::uint64_t>(wm[j]) != 0) |
          static_cast<unsigned>((v >= lo[j]) & (v <= hi[j]));
  }
  return ok != 0;
}

#if EF_MATCH_X86
/// AVX2 load mask for the tail gene chunk: lanes < rem pass the maskload,
/// the rest read as 0.0 (and are accepted via the padding wmask lanes).
__attribute__((target("avx2"))) inline __m256i tail_gene_mask(std::size_t rem) {
  return _mm256_setr_epi64x(rem > 0 ? -1 : 0, rem > 1 ? -1 : 0, rem > 2 ? -1 : 0, 0);
}

/// Vectorized exact verification: four gene lanes per compare, identical
/// double comparisons to verify_rule_row (_CMP_GE_OQ / _CMP_LE_OQ are the
/// IEEE ordered-quiet >= / <= that C++ `>=` / `<=` perform, so NaN rejects
/// in bounded lanes exactly as in the scalar path), wildcard and padding
/// lanes forced passing by OR-ing the all-ones wmask. The tail chunk uses a
/// maskload so rows at the end of the buffer are never read past `window`.
__attribute__((target("avx2"))) inline bool verify_row_avx2(
    const double* row, const double* vlo, const double* vhi, const double* wm,
    std::size_t window, __m256i tail_mask) {
  std::size_t j = 0;
  const std::size_t full = window & ~std::size_t{3};
  for (; j < full; j += 4) {
    const __m256d v = _mm256_loadu_pd(row + j);
    const __m256d ge = _mm256_cmp_pd(v, _mm256_loadu_pd(vlo + j), _CMP_GE_OQ);
    const __m256d le = _mm256_cmp_pd(v, _mm256_loadu_pd(vhi + j), _CMP_LE_OQ);
    const __m256d ok = _mm256_or_pd(_mm256_and_pd(ge, le), _mm256_loadu_pd(wm + j));
    if (_mm256_movemask_pd(ok) != 0xF) return false;
  }
  if (j < window) {
    const __m256d v = _mm256_maskload_pd(row + j, tail_mask);
    const __m256d ge = _mm256_cmp_pd(v, _mm256_loadu_pd(vlo + j), _CMP_GE_OQ);
    const __m256d le = _mm256_cmp_pd(v, _mm256_loadu_pd(vhi + j), _CMP_LE_OQ);
    const __m256d ok = _mm256_or_pd(_mm256_and_pd(ge, le), _mm256_loadu_pd(wm + j));
    if (_mm256_movemask_pd(ok) != 0xF) return false;
  }
  return true;
}

/// Fused multi-gene byte scan — the kAvx2 kernel body. Instead of scanning
/// one byte column and gathering scattered rows for the rest, every bound
/// gene's byte column is streamed 32 windows per compare, narrowest gene
/// first with an early exit once a 32-window block is dead. Two masks are
/// built in the same pass from the same loads:
///
///   acc  — relaxed pass, byte in [q(lo), q(hi)]: the candidate superset.
///   cert — strict interior, byte in (q(lo), q(hi)): certain matches.
///
/// The byte map q(v) = clamp(⌊(v − qmin)·qinv⌋) is monotone (subtract,
/// multiply, floor and clamp all preserve order), so b > q(lo) ⇒ v > lo and
/// b < q(hi) ⇒ v < hi — a window strictly interior in every bound gene
/// matches with certainty and never touches the double rows. Only boundary
/// bytes (b == q(lo) or b == q(hi)) are ambiguous and take the exact AVX2
/// row verification, which restores bit-identity with the scalar reference.
/// NaN quantizes to byte 0, never strictly above q(lo) ≥ 0, so NaN in a
/// bound gene is either rejected by the byte scan or sent to the exact check
/// which rejects it; wildcard genes are not scanned and accept everything,
/// NaN included. The strict bounds saturate (q(lo)+1, q(hi)−1), so empty
/// interiors (q(lo) == q(hi), or bounds at 0/255) simply mean every
/// candidate verifies exactly — correct, just slower.
__attribute__((target("avx2"))) void fused_byte_match_avx2(
    const LagMajorView& view, const std::size_t* ord, const std::uint8_t* qlo_ord,
    const std::uint8_t* qhi_ord, std::size_t bound_count, const double* vlo,
    const double* vhi, const double* wm, std::size_t begin, std::size_t end,
    std::vector<std::size_t>& out, std::size_t* pruned_out) {
  const std::size_t d = view.window;
  const double* rows = view.rows;
  const __m256i tail = tail_gene_mask(d & 3);

  // Column pointers plus saturated strict-interior byte bounds per bound
  // gene. Broadcasts happen in the scan loop (one vpbroadcastb per gene per
  // 32-window block — noise) so no __m256i lives in a container.
  const std::uint8_t* col_stack[64];
  std::uint8_t strict_stack[2 * 64];
  std::vector<const std::uint8_t*> col_heap;
  std::vector<std::uint8_t> strict_heap;
  const std::uint8_t** cols = col_stack;
  std::uint8_t* slo = strict_stack;
  if (bound_count > std::size(col_stack)) {
    col_heap.resize(bound_count);
    strict_heap.resize(2 * bound_count);
    cols = col_heap.data();
    slo = strict_heap.data();
  }
  std::uint8_t* shi = slo + bound_count;
  for (std::size_t k = 0; k < bound_count; ++k) {
    cols[k] = view.qcol(ord[k]);
    slo[k] = static_cast<std::uint8_t>(qlo_ord[k] == 255 ? 255 : qlo_ord[k] + 1);
    shi[k] = static_cast<std::uint8_t>(qhi_ord[k] == 0 ? 0 : qhi_ord[k] - 1);
  }

  std::size_t candidates = 0;
  std::size_t i = begin;
  for (; i + 32 <= end; i += 32) {
    __m256i v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols[0] + i));
    __m256i blo = _mm256_set1_epi8(static_cast<char>(qlo_ord[0]));
    __m256i bhi = _mm256_set1_epi8(static_cast<char>(qhi_ord[0]));
    __m256i acc = _mm256_and_si256(_mm256_cmpeq_epi8(_mm256_max_epu8(v, blo), v),
                                   _mm256_cmpeq_epi8(_mm256_min_epu8(v, bhi), v));
    if (_mm256_testz_si256(acc, acc)) continue;
    __m256i vslo = _mm256_set1_epi8(static_cast<char>(slo[0]));
    __m256i vshi = _mm256_set1_epi8(static_cast<char>(shi[0]));
    __m256i cert = _mm256_and_si256(_mm256_cmpeq_epi8(_mm256_max_epu8(v, vslo), v),
                                    _mm256_cmpeq_epi8(_mm256_min_epu8(v, vshi), v));
    std::size_t k = 1;
    for (; k < bound_count; ++k) {
      v = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(cols[k] + i));
      blo = _mm256_set1_epi8(static_cast<char>(qlo_ord[k]));
      bhi = _mm256_set1_epi8(static_cast<char>(qhi_ord[k]));
      acc = _mm256_and_si256(
          acc, _mm256_and_si256(_mm256_cmpeq_epi8(_mm256_max_epu8(v, blo), v),
                                _mm256_cmpeq_epi8(_mm256_min_epu8(v, bhi), v)));
      if (_mm256_testz_si256(acc, acc)) break;
      vslo = _mm256_set1_epi8(static_cast<char>(slo[k]));
      vshi = _mm256_set1_epi8(static_cast<char>(shi[k]));
      cert = _mm256_and_si256(
          cert, _mm256_and_si256(_mm256_cmpeq_epi8(_mm256_max_epu8(v, vslo), v),
                                 _mm256_cmpeq_epi8(_mm256_min_epu8(v, vshi), v)));
    }
    if (k < bound_count) continue;  // early exit left acc empty
    std::uint32_t mask = static_cast<std::uint32_t>(_mm256_movemask_epi8(acc));
    const std::uint32_t cmask =
        static_cast<std::uint32_t>(_mm256_movemask_epi8(_mm256_and_si256(cert, acc)));
    candidates += static_cast<std::size_t>(__builtin_popcount(mask));
    while (mask) {
      const std::uint32_t bit = mask & (~mask + 1);
      const std::size_t idx = i + static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
      if ((cmask & bit) != 0 ||
          verify_row_avx2(rows + idx * d, vlo, vhi, wm, d, tail)) {
        out.push_back(idx);
      }
    }
  }
  // Tail (< 32 windows): the padded vlo/vhi/wmask rows already encode the
  // whole rule — wildcards included — so the exact verifier alone suffices.
  for (; i < end; ++i) {
    ++candidates;
    if (verify_row_avx2(rows + i * d, vlo, vhi, wm, d, tail)) out.push_back(i);
  }
  if (pruned_out) *pruned_out += (end - begin) - candidates;
}
#endif  // EF_MATCH_X86

/// Scalar rule-major body: byte planes first (uniformly rejecting padding
/// and inactive rules via the impossible 255/0 range), exact verification
/// on survivors. The SIMD bodies below are this loop with 16/32 rules per
/// compare.
[[maybe_unused]] void rule_major_scalar(const LagMajorView& view, const RulePlanes& p,
                                        std::size_t begin, std::size_t end,
                                        std::vector<std::vector<std::size_t>>& out) {
  const std::size_t d = p.window;
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint8_t* wq = view.qrows + i * d;
    const double* row = view.rows + i * d;
    for (std::size_t r = 0; r < p.rule_count; ++r) {
      unsigned ok = 1;
      for (std::size_t j = 0; j < d && ok; ++j) {
        const std::uint8_t b = wq[j];
        ok = static_cast<unsigned>((b >= p.qlo[j * p.padded + r]) &
                                   (b <= p.qhi[j * p.padded + r]));
      }
      if (ok && verify_rule_row(p, r, row)) out[r].push_back(i);
    }
  }
}

#if EF_MATCH_X86 || defined(__SSE2__)
/// SSE2 rule-major body: 16 rules per vector. One window's byte at gene j is
/// broadcast against the 16-lane slice of the lo/hi planes; the candidate
/// bitmask survives only where every gene's byte range passes.
void rule_major_sse2(const LagMajorView& view, const RulePlanes& p, std::size_t begin,
                     std::size_t end, std::vector<std::vector<std::size_t>>& out) {
  const std::size_t d = p.window;
  const std::size_t padded = p.padded;
  const std::uint8_t* qlo = p.qlo.data();
  const std::uint8_t* qhi = p.qhi.data();
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint8_t* wq = view.qrows + i * d;
    const double* row = view.rows + i * d;
    for (std::size_t base = 0; base < padded; base += 16) {
      __m128i acc = _mm_set1_epi8(static_cast<char>(0xFF));
      for (std::size_t j = 0; j < d; ++j) {
        const __m128i v = _mm_set1_epi8(static_cast<char>(wq[j]));
        const __m128i lo =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(qlo + j * padded + base));
        const __m128i hi =
            _mm_loadu_si128(reinterpret_cast<const __m128i*>(qhi + j * padded + base));
        const __m128i ge = _mm_cmpeq_epi8(_mm_max_epu8(v, lo), v);
        const __m128i le = _mm_cmpeq_epi8(_mm_min_epu8(v, hi), v);
        acc = _mm_and_si128(acc, _mm_and_si128(ge, le));
        if (_mm_movemask_epi8(acc) == 0) break;  // no rule in this lane-set survives
      }
      unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(acc));
      while (mask) {
        const std::size_t r = base + static_cast<unsigned>(__builtin_ctz(mask));
        mask &= mask - 1;
        if (verify_rule_row(p, r, row)) out[r].push_back(i);
      }
    }
  }
}
#endif

#if EF_MATCH_X86
/// AVX2 rule-major body: 32 rules per vector, otherwise identical to the
/// SSE2 shape. testz gives the same early exit without a movemask round-trip.
__attribute__((target("avx2"))) void rule_major_avx2(
    const LagMajorView& view, const RulePlanes& p, std::size_t begin, std::size_t end,
    std::vector<std::vector<std::size_t>>& out) {
  const std::size_t d = p.window;
  const std::size_t padded = p.padded;
  const std::size_t pg = p.padded_genes;
  const std::uint8_t* qlo = p.qlo.data();
  const std::uint8_t* qhi = p.qhi.data();
  const __m256i tail = tail_gene_mask(d & 3);
  for (std::size_t i = begin; i < end; ++i) {
    const std::uint8_t* wq = view.qrows + i * d;
    const double* row = view.rows + i * d;
    for (std::size_t base = 0; base < padded; base += 32) {
      __m256i acc = _mm256_set1_epi8(static_cast<char>(0xFF));
      for (std::size_t j = 0; j < d; ++j) {
        const __m256i v = _mm256_set1_epi8(static_cast<char>(wq[j]));
        const __m256i lo =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(qlo + j * padded + base));
        const __m256i hi =
            _mm256_loadu_si256(reinterpret_cast<const __m256i*>(qhi + j * padded + base));
        const __m256i ge = _mm256_cmpeq_epi8(_mm256_max_epu8(v, lo), v);
        const __m256i le = _mm256_cmpeq_epi8(_mm256_min_epu8(v, hi), v);
        acc = _mm256_and_si256(acc, _mm256_and_si256(ge, le));
        if (_mm256_testz_si256(acc, acc)) break;
      }
      std::uint32_t mask = static_cast<std::uint32_t>(_mm256_movemask_epi8(acc));
      while (mask) {
        const std::size_t r = base + static_cast<unsigned>(__builtin_ctz(mask));
        mask &= mask - 1;
        if (verify_row_avx2(row, p.vlo.data() + r * pg, p.vhi.data() + r * pg,
                            p.wmask.data() + r * pg, d, tail)) {
          out[r].push_back(i);
        }
      }
    }
  }
}
#endif  // EF_MATCH_X86

}  // namespace

void scalar_match(const double* rows, std::size_t window, std::span<const Interval> genes,
                  std::size_t begin, std::size_t end, std::vector<std::size_t>& out) {
  const std::size_t d = genes.size();
  for (std::size_t i = begin; i < end; ++i) {
    const double* w = rows + i * window;
    bool ok = true;
    for (std::size_t j = 0; j < d; ++j) {
      if (!genes[j].contains(w[j])) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(i);
  }
}

void soa_match(const LagMajorView& view, std::span<const Interval> genes, std::size_t begin,
               std::size_t end, std::vector<std::size_t>& out) {
  const std::size_t n = end - begin;
  if (n == 0) return;

  // One pass/fail byte per window; wildcard genes never touch it. The
  // bitwise AND of two comparisons keeps the inner loop branch-free so the
  // compiler can vectorize it.
  std::vector<unsigned char> ok(n, 1);
  for (std::size_t j = 0; j < genes.size(); ++j) {
    if (genes[j].is_wildcard()) continue;
    const double lo = genes[j].lo();
    const double hi = genes[j].hi();
    const double* c = view.col(j) + begin;
    for (std::size_t i = 0; i < n; ++i) {
      ok[i] = static_cast<unsigned char>(ok[i] & ((c[i] >= lo) & (c[i] <= hi)));
    }
  }
  // Collect survivors with the same branchless block compress the prefilter
  // kernel uses.
  constexpr std::size_t kBlock = 512;
  std::size_t buf[kBlock];
  std::size_t i = 0;
  while (i < n) {
    const std::size_t stop = std::min(n, i + kBlock);
    std::size_t w = 0;
    for (; i < stop; ++i) {
      buf[w] = begin + i;
      w += ok[i];
    }
    out.insert(out.end(), buf, buf + w);
  }
}

void soa_prefilter_match(const LagMajorView& view, std::span<const Interval> genes,
                         std::size_t begin, std::size_t end, std::vector<std::size_t>& out,
                         std::size_t* pruned_out, bool avx2) {
  const std::size_t n = end - begin;
  if (n == 0) return;

  // Non-wildcard genes ordered narrowest interval first: interval width is
  // proportional to expected pass rate, so the first column pass eliminates
  // as many windows as a single gene can.
  std::size_t order[64];
  std::size_t bound_count = 0;
  std::vector<std::size_t> order_heap;  // spill for very long windows
  std::size_t* ord = order;
  if (genes.size() > std::size(order)) {
    order_heap.resize(genes.size());
    ord = order_heap.data();
  }
  for (std::size_t j = 0; j < genes.size(); ++j) {
    if (!genes[j].is_wildcard()) ord[bound_count++] = j;
  }
  std::sort(ord, ord + bound_count, [&](std::size_t a, std::size_t b) {
    return genes[a].width() < genes[b].width();
  });

  if (bound_count == 0) {
    // All-wildcard rule: everything matches.
    out.reserve(out.size() + n);
    for (std::size_t i = begin; i < end; ++i) out.push_back(i);
    return;
  }

  const std::size_t first_size = out.size();

  if (view.qdata != nullptr && view.rows != nullptr) {
    // Fast path: scan the quantized byte column of the narrowest gene (8×
    // less traffic than doubles, 16 lanes per SSE2 compare — 32 with AVX2),
    // then verify each surviving candidate exactly against its contiguous
    // row-major window — every bound gene, narrowest first, in double
    // precision. The byte ranges are conservative supersets, so this
    // reproduces the scalar reference bit-for-bit. The column is processed
    // in blocks through a stack candidate buffer so `out` only ever receives
    // verified matches — typically a handful per thousand windows — instead
    // of the much larger candidate superset.
    const std::size_t d = view.window;
    const double* rows = view.rows;

#if EF_MATCH_X86
    if (avx2 && cpu_supports_avx2()) {
      // kAvx2 takes the fused multi-gene byte scan: every bound gene's byte
      // column streamed 32 windows per compare with a strict-interior
      // certainty mask, so broad rules never gather scattered rows and
      // interior matches skip double verification entirely. Byte bounds in
      // scan order for the streaming masks; padded natural-order
      // vlo/vhi/wmask rows for the exact verifier (wildcard and padding
      // lanes carry the all-ones pass mask — see build_rule_planes, same
      // encoding).
      std::uint8_t qb_stack[2 * 64];
      std::vector<std::uint8_t> qb_heap;
      std::uint8_t* qlo_ord = qb_stack;
      if (2 * bound_count > std::size(qb_stack)) {
        qb_heap.resize(2 * bound_count);
        qlo_ord = qb_heap.data();
      }
      std::uint8_t* qhi_ord = qlo_ord + bound_count;
      for (std::size_t k = 0; k < bound_count; ++k) {
        qlo_ord[k] = quantize_bound(genes[ord[k]].lo(), view.qmin, view.qinv);
        qhi_ord[k] = quantize_bound(genes[ord[k]].hi(), view.qmin, view.qinv);
      }

      const std::size_t pg = (d + 3) / 4 * 4;
      double vrow_stack[3 * 68];
      std::vector<double> vrow_heap;
      double* vlo2 = vrow_stack;
      if (3 * pg > std::size(vrow_stack)) {
        vrow_heap.resize(3 * pg);
        vlo2 = vrow_heap.data();
      }
      double* vhi2 = vlo2 + pg;
      double* wm2 = vlo2 + 2 * pg;
      const double kWildAll = std::bit_cast<double>(~std::uint64_t{0});
      for (std::size_t j = 0; j < pg; ++j) {
        const bool bounded = j < d && !genes[j].is_wildcard();
        vlo2[j] = bounded ? genes[j].lo() : 0.0;
        vhi2[j] = bounded ? genes[j].hi() : 0.0;
        wm2[j] = bounded ? 0.0 : kWildAll;
      }
      fused_byte_match_avx2(view, ord, qlo_ord, qhi_ord, bound_count, vlo2, vhi2, wm2,
                            begin, end, out, pruned_out);
      return;
    }
#else
    (void)avx2;
#endif

    const std::size_t j0 = ord[0];
    const std::uint8_t qlo = quantize_bound(genes[j0].lo(), view.qmin, view.qinv);
    const std::uint8_t qhi = quantize_bound(genes[j0].hi(), view.qmin, view.qinv);

    // Second-narrowest gene as a byte-level candidate filter: a gathered
    // byte compare (~1 ns) is far cheaper than the exact row verification it
    // saves, and the relaxed range is a superset of the gene's interval, so
    // no true match is ever dropped (NaN quantizes to 0 and bounded genes
    // reject NaN either way — removing such a candidate early is correct).
    const bool has_second = bound_count >= 2;
    const std::uint8_t* qc1 = nullptr;
    std::uint8_t qlo1 = 0;
    std::uint8_t qhi1 = 255;
    if (has_second) {
      qc1 = view.qcol(ord[1]);
      qlo1 = quantize_bound(genes[ord[1]].lo(), view.qmin, view.qinv);
      qhi1 = quantize_bound(genes[ord[1]].hi(), view.qmin, view.qinv);
    }

    double glo_stack[64];
    double ghi_stack[64];
    std::vector<double> glo_heap;
    std::vector<double> ghi_heap;
    double* glo = glo_stack;
    double* ghi = ghi_stack;
    if (bound_count > std::size(glo_stack)) {
      glo_heap.resize(bound_count);
      ghi_heap.resize(bound_count);
      glo = glo_heap.data();
      ghi = ghi_heap.data();
    }
    for (std::size_t k = 0; k < bound_count; ++k) {
      glo[k] = genes[ord[k]].lo();
      ghi[k] = genes[ord[k]].hi();
    }

    const std::uint8_t* qc = view.qcol(j0);

    constexpr std::size_t kBlockWin = 4096;
    std::size_t cand[kBlockWin];
    std::size_t candidates = 0;
    for (std::size_t b = begin; b < end; b += kBlockWin) {
      const std::size_t block_end = std::min(end, b + kBlockWin);
      std::size_t m = byte_compress_block(qc, qlo, qhi, b, block_end, cand);
      candidates += m;
      if (has_second) {
        std::size_t w2 = 0;
        for (std::size_t r = 0; r < m; ++r) {
          const std::size_t i = cand[r];
          cand[w2] = i;
          w2 += static_cast<std::size_t>((qc1[i] >= qlo1) & (qc1[i] <= qhi1));
        }
        m = w2;
      }
      // Verify in place (write <= read, so the unconditional store is safe);
      // candidate rows are scattered, so prefetching a couple dozen ahead
      // hides the row-gather latency behind the branchless gene checks.
      std::size_t w = 0;
      for (std::size_t r = 0; r < m; ++r) {
        if (r + 24 < m) __builtin_prefetch(rows + cand[r + 24] * d);
        const std::size_t i = cand[r];
        const double* row = rows + i * d;
        unsigned okf = 1;
        for (std::size_t k = 0; k < bound_count; ++k) {
          const double v = row[ord[k]];
          okf &= static_cast<unsigned>((v >= glo[k]) & (v <= ghi[k]));
        }
        cand[w] = i;
        w += okf;
      }
      out.insert(out.end(), cand, cand + w);
    }
    if (pruned_out) *pruned_out += n - candidates;
    return;
  }

  // Plain-view path (no quantized mirror): branchless double column scan
  // into a candidate list for the first gene.
  compress_column(view.col(ord[0]), genes[ord[0]].lo(), genes[ord[0]].hi(), begin, end,
                  out);
  if (pruned_out) *pruned_out += n - (out.size() - first_size);

  // Remaining genes: compact the candidate list in place (write <= read, so
  // the unconditional store is safe), early-outing once it is empty.
  // Indices stay ascending by construction.
  for (std::size_t k = 1; k < bound_count && out.size() > first_size; ++k) {
    const double lo = genes[ord[k]].lo();
    const double hi = genes[ord[k]].hi();
    const double* c = view.col(ord[k]);
    std::size_t write = first_size;
    for (std::size_t r = first_size; r < out.size(); ++r) {
      const std::size_t i = out[r];
      out[write] = i;
      write += static_cast<std::size_t>((c[i] >= lo) & (c[i] <= hi));
    }
    out.resize(write);
  }
}

void rule_major_match(const LagMajorView& view, const RulePlanes& planes, std::size_t begin,
                      std::size_t end, std::vector<std::vector<std::size_t>>& out) {
  if (planes.rule_count == 0 || begin >= end) return;
#if EF_MATCH_X86
  if (cpu_supports_avx2()) {
    rule_major_avx2(view, planes, begin, end, out);
    return;
  }
  rule_major_sse2(view, planes, begin, end, out);
#elif defined(__SSE2__)
  rule_major_sse2(view, planes, begin, end, out);
#else
  rule_major_scalar(view, planes, begin, end, out);
#endif
}

}  // namespace matchkern

}  // namespace ef::core
