// Tests for series/lorenz.hpp: integrator correctness (fixed-point check,
// step-halving convergence), chaos signatures (bounded, two-lobed,
// sensitive dependence), argument validation.
#include "series/lorenz.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace {

using ef::series::generate_lorenz;
using ef::series::LorenzParams;

TEST(Lorenz, Deterministic) {
  const auto a = generate_lorenz(500);
  const auto b = generate_lorenz(500);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Lorenz, CountRespected) {
  EXPECT_EQ(generate_lorenz(1).size(), 1u);
  EXPECT_EQ(generate_lorenz(777).size(), 777u);
}

TEST(Lorenz, InvalidArgumentsThrow) {
  EXPECT_THROW((void)generate_lorenz(0), std::invalid_argument);
  LorenzParams bad;
  bad.dt = 0.0;
  EXPECT_THROW((void)generate_lorenz(10, bad), std::invalid_argument);
  bad = LorenzParams{};
  bad.sample_dt = 0.025;  // not a multiple of dt=0.01
  EXPECT_THROW((void)generate_lorenz(10, bad), std::invalid_argument);
}

// With rho < 1 the origin is globally attracting: the series must decay
// toward x = 0.
TEST(Lorenz, SubcriticalRhoDecaysToOrigin) {
  LorenzParams p;
  p.rho = 0.5;
  p.burn_in = 0.0;
  const auto s = generate_lorenz(200, p);
  EXPECT_LT(std::abs(s[199]), 1e-3);
  EXPECT_GT(std::abs(s[0]), 0.5);  // started away from the origin
}

// For 1 < rho < ~24.7 the fixed points C± = (±√(β(ρ−1)), ·, ·) are stable:
// trajectories settle onto x = ±√(β(ρ−1)).
TEST(Lorenz, ModerateRhoSettlesOntoFixedPoint) {
  LorenzParams p;
  p.rho = 10.0;
  p.burn_in = 80.0;
  const auto s = generate_lorenz(50, p);
  const double expected = std::sqrt(p.beta * (p.rho - 1.0));
  EXPECT_NEAR(std::abs(s[0]), expected, 0.05);
  EXPECT_NEAR(std::abs(s[49]), expected, 0.05);
}

TEST(Lorenz, ChaoticRegimeBoundedAndTwoLobed) {
  const auto s = generate_lorenz(5000);
  int sign_changes = 0;
  for (std::size_t i = 0; i < s.size(); ++i) {
    EXPECT_LT(std::abs(s[i]), 25.0);  // attractor bound for classic params
    if (i > 0 && s[i - 1] * s[i] < 0.0) ++sign_changes;
  }
  // The trajectory keeps switching lobes (x changes sign many times).
  EXPECT_GT(sign_changes, 50);
  EXPECT_GT(s.variance(), 20.0);
}

TEST(Lorenz, SensitiveDependenceOnInitialConditions) {
  // No burn-in: otherwise the perturbation has already amplified by the
  // first sample (Lyapunov time ≈ 1.1 time units ≪ default burn-in of 30).
  LorenzParams a;
  a.burn_in = 0.0;
  LorenzParams b = a;
  b.x0 += 1e-9;
  const auto sa = generate_lorenz(600, a);
  const auto sb = generate_lorenz(600, b);
  // Identical early on...
  EXPECT_NEAR(sa[0], sb[0], 1e-5);
  // ...but the 1e-9 perturbation must have amplified to O(attractor size).
  double max_gap = 0.0;
  for (std::size_t i = 0; i < sa.size(); ++i) {
    max_gap = std::max(max_gap, std::abs(sa[i] - sb[i]));
  }
  EXPECT_GT(max_gap, 1.0);
}

TEST(Lorenz, StepHalvingConverges) {
  LorenzParams coarse;
  coarse.dt = 0.01;
  coarse.burn_in = 0.0;
  LorenzParams fine;
  fine.dt = 0.005;
  fine.burn_in = 0.0;
  LorenzParams reference;
  reference.dt = 0.00125;
  reference.burn_in = 0.0;

  // Short horizon: before chaos amplifies truncation differences.
  const std::size_t n = 20;
  const auto sc = generate_lorenz(n, coarse);
  const auto sf = generate_lorenz(n, fine);
  const auto sr = generate_lorenz(n, reference);
  double err_coarse = 0.0;
  double err_fine = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    err_coarse = std::max(err_coarse, std::abs(sc[i] - sr[i]));
    err_fine = std::max(err_fine, std::abs(sf[i] - sr[i]));
  }
  EXPECT_LT(err_fine, err_coarse);
}

}  // namespace
