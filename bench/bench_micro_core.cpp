// bench_micro_core — google-benchmark microbenchmarks of the engine's hot
// paths: window matching (serial vs pooled), rule evaluation (match +
// regression), one steady-state generation, and rule-system query
// throughput. These quantify the costs that justify the parallel match
// engine and bound full-scale run times.
#include <benchmark/benchmark.h>

#include <numeric>
#include <vector>

#include "core/evolution.hpp"
#include "core/fitness.hpp"
#include "core/match_engine.hpp"
#include "core/rule_index.hpp"
#include "core/rule_system.hpp"
#include "series/venice.hpp"
#include "util/thread_pool.hpp"

namespace {

using ef::core::Interval;
using ef::core::Rule;
using ef::core::WindowDataset;

/// Shared fixture data: one Venice series reused by every benchmark.
const WindowDataset& venice_dataset(std::size_t hours) {
  static const auto series = ef::series::generate_venice(50000);
  static const WindowDataset full(series, 24, 1);
  static const WindowDataset small_ds(series.slice(0, 10024), 24, 1);
  return hours > 20000 ? full : small_ds;
}

/// A mid-selectivity rule (first gene restricted to the upper tide band).
Rule probe_rule(const WindowDataset& data) {
  std::vector<Interval> genes(data.window(), Interval::wildcard());
  const double mid = 0.5 * (data.value_min() + data.value_max());
  genes[0] = Interval(mid, data.value_max());
  genes[12] = Interval(data.value_min(), mid + 20.0);
  return Rule(std::move(genes));
}

void BM_MatchSerial(benchmark::State& state) {
  const auto& data = venice_dataset(static_cast<std::size_t>(state.range(0)));
  const ef::core::MatchEngine engine(data);
  const Rule rule = probe_rule(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.match_indices_serial(rule));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.count()));
}
BENCHMARK(BM_MatchSerial)->Arg(10000)->Arg(50000)->Unit(benchmark::kMicrosecond);

void BM_MatchParallel(benchmark::State& state) {
  const auto& data = venice_dataset(static_cast<std::size_t>(state.range(0)));
  static ef::util::ThreadPool pool;  // shared across iterations
  const ef::core::MatchEngine engine(data, &pool);
  const Rule rule = probe_rule(data);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.match_indices(rule));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(data.count()));
}
BENCHMARK(BM_MatchParallel)->Arg(10000)->Arg(50000)->Unit(benchmark::kMicrosecond);

void BM_EvaluateRule(benchmark::State& state) {
  const auto& data = venice_dataset(static_cast<std::size_t>(state.range(0)));
  const ef::core::MatchEngine engine(data);
  ef::core::EvolutionConfig cfg;
  cfg.emax = 20.0;
  const ef::core::Evaluator evaluator(engine, cfg);
  for (auto _ : state) {
    Rule rule = probe_rule(data);
    evaluator.evaluate(rule);
    benchmark::DoNotOptimize(rule.fitness());
  }
}
BENCHMARK(BM_EvaluateRule)->Arg(10000)->Arg(50000)->Unit(benchmark::kMicrosecond);

void BM_SteadyStateGeneration(benchmark::State& state) {
  const auto& data = venice_dataset(10000);
  ef::core::EvolutionConfig cfg;
  cfg.population_size = 100;
  cfg.generations = 1U << 30;  // never reached; we drive step() manually
  cfg.emax = 20.0;
  cfg.seed = 9;
  ef::core::SteadyStateEngine engine(data, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.step());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SteadyStateGeneration)->Unit(benchmark::kMicrosecond);

void BM_RegressionFit(benchmark::State& state) {
  const auto& data = venice_dataset(10000);
  std::vector<std::size_t> rows(static_cast<std::size_t>(state.range(0)));
  std::iota(rows.begin(), rows.end(), 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ef::core::fit_hyperplane(data, rows));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_RegressionFit)->Arg(100)->Arg(1000)->Arg(9000)->Unit(benchmark::kMicrosecond);

/// Shared trained system for the query benchmarks (multi-execution union →
/// a realistic several-hundred-rule set).
const ef::core::RuleSystem& query_system() {
  static const ef::core::RuleSystem system = [] {
    const auto& d = venice_dataset(10000);
    ef::core::RuleSystemConfig cfg;
    cfg.evolution.population_size = 100;
    cfg.evolution.generations = 2000;
    cfg.evolution.emax = 20.0;
    cfg.max_executions = 4;
    cfg.coverage_target_percent = 100.0;
    return ef::core::train(d, {.config = cfg}).system;
  }();
  return system;
}

void BM_RuleSystemQuery(benchmark::State& state) {
  const auto& data = venice_dataset(10000);
  const auto& system = query_system();
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(system.forecast(data.pattern(i)).as_optional());
    i = (i + 1) % data.count();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(system.size()));
}
BENCHMARK(BM_RuleSystemQuery)->Unit(benchmark::kMicrosecond);

void BM_RuleIndexQuery(benchmark::State& state) {
  const auto& data = venice_dataset(10000);
  const auto& system = query_system();
  static const ef::core::RuleIndex index(system, venice_dataset(10000).value_min(),
                                         venice_dataset(10000).value_max(),
                                         static_cast<std::size_t>(state.range(0)));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.forecast(data.pattern(i)).as_optional());
    i = (i + 1) % data.count();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(system.size()));
  state.counters["mean_candidates"] = index.mean_candidates();
  state.counters["rules"] = static_cast<double>(system.size());
}
BENCHMARK(BM_RuleIndexQuery)->Arg(64)->Unit(benchmark::kMicrosecond);

}  // namespace
