#include "fleet/corpus.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <stdexcept>

#include "core/dataset.hpp"
#include "obs/macros.hpp"
#include "obs/timeline.hpp"

namespace ef::fleet {
namespace {

/// Evaluate one series: train on the prefix, score one-step forecasts over
/// the tail. Throws on series too short for (one training pattern + the
/// minimum holdout); the caller records the reason.
SeriesEvaluation evaluate_one(const SeriesRecord& record, const CorpusOptions& options,
                              util::ThreadPool* inline_pool) {
  SeriesEvaluation out;
  out.id = record.id;

  const std::size_t n = record.series.size();
  const std::size_t embed = (options.train.window - 1) * options.train.stride +
                            options.train.horizon;  // samples consumed before a target
  auto holdout = static_cast<std::size_t>(
      std::floor(options.holdout_fraction * static_cast<double>(n)));
  holdout = std::max(holdout, options.min_holdout);
  if (n < embed + 1 + holdout || holdout < options.min_holdout) {
    throw std::runtime_error("series too short for train + holdout split");
  }
  const std::size_t split = n - holdout;

  const series::TimeSeries train_part = record.series.slice(0, split);
  const core::WindowDataset train_data(train_part, options.train.window,
                                       options.train.horizon, options.train.stride);
  core::TrainOptions train_options;
  train_options.config = options.train.config;
  train_options.pool = inline_pool;
  train_options.parallelism = core::TrainParallelism::kSequential;
  train_options.seed = derive_series_seed(options.train.config.evolution.seed, record.id);
  const core::TrainResult trained = core::train(train_data, train_options);
  out.rules = trained.system.size();

  // Rolling-origin one-step evaluation: the slice starting embed samples
  // before the split yields exactly the patterns whose targets are the
  // holdout points, each forecast from true (not recursive) history.
  const series::TimeSeries eval_part = record.series.slice(split - embed, n);
  const core::WindowDataset eval_data(eval_part, options.train.window,
                                      options.train.horizon, options.train.stride);
  series::PartialForecast predicted(eval_data.count());
  std::vector<double> actual(eval_data.count());
  for (std::size_t i = 0; i < eval_data.count(); ++i) {
    predicted[i] = trained.system.forecast(eval_data.pattern(i)).as_optional();
    actual[i] = eval_data.target(i);
  }
  out.report = series::evaluate_partial(actual, predicted);
  out.holdout_points = eval_data.count();
  return out;
}

}  // namespace

CorpusResult evaluate_fleet(std::span<const SeriesRecord> fleet, const CorpusOptions& options) {
  const obs::TraceScope timeline("fleet.evaluate");
  const auto start = std::chrono::steady_clock::now();

  CorpusResult result;
  result.series.resize(fleet.size());

  static util::ThreadPool inline_pool(1);
  util::ThreadPool& tp =
      options.train.pool ? *options.train.pool : util::ThreadPool::shared();
  const obs::TraceContext trace_ctx = obs::current_context();
  tp.parallel_for(
      0, fleet.size(),
      [&](std::size_t begin, std::size_t end) {
        const obs::ContextGuard trace_guard(trace_ctx);
        for (std::size_t i = begin; i < end; ++i) {
          obs::SpanScope span("fleet.evaluate_series");
          span.set_arg("series", static_cast<double>(i));
          try {
            result.series[i] = evaluate_one(fleet[i], options, &inline_pool);
            EVOFORECAST_COUNT("fleet.series_evaluated", 1);
          } catch (const std::exception& e) {
            result.series[i].id = fleet[i].id;
            result.series[i].skipped = true;
            result.series[i].skip_reason = e.what();
            EVOFORECAST_COUNT("fleet.series_skipped", 1);
          }
        }
      },
      /*grain=*/1);

  // Pool covered-point errors across the fleet (sum-of-squares / sum-of-abs
  // recomposition from per-series reports, weighted by covered counts).
  double sum_sq = 0.0;
  double sum_abs = 0.0;
  for (const SeriesEvaluation& s : result.series) {
    if (s.skipped) {
      ++result.skipped;
      continue;
    }
    ++result.evaluated;
    result.total_points += s.report.total;
    result.covered_points += s.report.covered;
    const auto covered = static_cast<double>(s.report.covered);
    sum_sq += s.report.rmse * s.report.rmse * covered;
    sum_abs += s.report.mae * covered;
  }
  if (result.covered_points > 0) {
    const auto covered = static_cast<double>(result.covered_points);
    result.pooled_rmse = std::sqrt(sum_sq / covered);
    result.pooled_mae = sum_abs / covered;
  }
  if (result.total_points > 0) {
    result.percentage_of_prediction =
        100.0 * static_cast<double>(result.covered_points) /
        static_cast<double>(result.total_points);
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  EVOFORECAST_EVENT("fleet.evaluate", {"series", fleet.size()},
                    {"evaluated", result.evaluated}, {"skipped", result.skipped},
                    {"pooled_rmse", result.pooled_rmse},
                    {"percentage_of_prediction", result.percentage_of_prediction});
  return result;
}

}  // namespace ef::fleet
