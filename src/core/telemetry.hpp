// telemetry.hpp — per-generation traces of a steady-state run.
//
// The engine emits one record every `telemetry_stride` generations; the
// collector accumulates them and can dump a CSV for external plotting (the
// benches attach one to show convergence curves).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace ef::core {

/// Snapshot of population state at one generation.
struct TelemetryRecord {
  std::size_t generation = 0;
  double best_fitness = 0.0;
  double mean_fitness = 0.0;
  double mean_error = 0.0;        ///< mean e_R over evaluated rules
  double mean_matches = 0.0;      ///< mean N_R
  double mean_specificity = 0.0;  ///< mean count of non-wildcard genes
  std::size_t replacements = 0;   ///< accepted offspring so far
};

/// Callback invoked by the engine; default collector stores records.
using TelemetrySink = std::function<void(const TelemetryRecord&)>;

class TelemetryCollector {
 public:
  [[nodiscard]] TelemetrySink sink() {
    return [this](const TelemetryRecord& r) { records_.push_back(r); };
  }

  [[nodiscard]] const std::vector<TelemetryRecord>& records() const noexcept {
    return records_;
  }
  [[nodiscard]] bool empty() const noexcept { return records_.empty(); }

  /// Write all records as CSV (header + one row per record).
  void write_csv(const std::string& path) const;

 private:
  std::vector<TelemetryRecord> records_;
};

}  // namespace ef::core
