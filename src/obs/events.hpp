// obs/events.hpp — structured event log and bounded flight recorder.
//
// Metrics answer "how much"; events answer "what happened". The EventLog
// keeps a bounded ring of timestamped, typed events — generation telemetry
// from training, model reloads and slow requests from serving, lifecycle
// markers — each serialisable to one JSON line:
//
//   {"seq":42,"ts_ms":1723000000123,"kind":"serve.model.reload",
//    "name":"mg17","version":3}
//
// The ring is the flight recorder: when something goes wrong, the last N
// events are dumpable on demand (efserve's SIGUSR1, the "events" protocol
// verb) without having had logging enabled in advance. Setting
// EVOFORECAST_EVENT_LOG=<path> additionally streams every event to a file
// as it happens; EVOFORECAST_EVENT_CAPACITY overrides the ring size
// (default 2048).
//
// Cost model: emit() takes a mutex — events are RARE (per generation, per
// reload, per slow request), never per-window or per-observation, so this
// is deliberately simpler than the lock-free metrics path. Instrumentation
// sites use EVOFORECAST_EVENT from obs/macros.hpp, which compiles to
// nothing under EVOFORECAST_OBS=OFF.
#pragma once

#include <cstdint>
#include <cstdio>
#include <deque>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace ef::obs {

/// One key/value attribute of an event. Accepts the types instrumentation
/// sites actually have in hand: bools, integers, doubles, strings.
struct EventField {
  enum class Kind { kBool, kInt, kUint, kDouble, kString };

  template <typename T, typename = std::enable_if_t<std::is_arithmetic_v<T>>>
  EventField(std::string_view key_in, T value) : key(key_in) {
    if constexpr (std::is_same_v<T, bool>) {
      kind = Kind::kBool;
      b = value;
    } else if constexpr (std::is_floating_point_v<T>) {
      kind = Kind::kDouble;
      d = static_cast<double>(value);
    } else if constexpr (std::is_signed_v<T>) {
      kind = Kind::kInt;
      i = static_cast<std::int64_t>(value);
    } else {
      kind = Kind::kUint;
      u = static_cast<std::uint64_t>(value);
    }
  }
  EventField(std::string_view key_in, std::string_view value)
      : key(key_in), kind(Kind::kString), s(value) {}
  EventField(std::string_view key_in, const char* value)
      : EventField(key_in, std::string_view(value)) {}

  std::string key;
  Kind kind = Kind::kInt;
  bool b = false;
  std::int64_t i = 0;
  std::uint64_t u = 0;
  double d = 0.0;
  std::string s;
};

/// One recorded event. `seq` is a process-wide monotone id; `ts_ms` is wall
/// clock (system_clock) in milliseconds since the epoch.
struct Event {
  std::uint64_t seq = 0;
  std::int64_t ts_ms = 0;
  std::string kind;
  std::vector<EventField> fields;

  /// Serialise to a single JSON object (one line, no trailing newline).
  [[nodiscard]] std::string to_json() const;
};

/// Bounded ring of events plus an optional file sink. Thread-safe.
class EventLog {
 public:
  explicit EventLog(std::size_t capacity = 2048);
  ~EventLog();

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Record an event. Oldest events are dropped once the ring is full
  /// (dropped() counts them). If a file sink is open, the JSON line is
  /// written and flushed before emit() returns.
  void emit(std::string_view kind, std::vector<EventField> fields = {});

  /// Copy of the ring, oldest first.
  [[nodiscard]] std::vector<Event> recent() const;
  /// Ring contents as newline-separated JSON lines, oldest first.
  [[nodiscard]] std::string dump_json_lines() const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t dropped() const;
  [[nodiscard]] std::uint64_t total_emitted() const;

  /// Stream every subsequent event to `path` (append mode) as JSON lines.
  /// Returns false if the file could not be opened. An empty path closes
  /// the sink.
  bool set_file_sink(const std::string& path);
  [[nodiscard]] bool has_file_sink() const;

  /// Drop all buffered events (counters keep their totals).
  void clear();

  /// The process-wide log every EVOFORECAST_EVENT site records into.
  /// Capacity comes from EVOFORECAST_EVENT_CAPACITY (default 2048); a file
  /// sink is opened when EVOFORECAST_EVENT_LOG names a writable path.
  [[nodiscard]] static EventLog& global();

 private:
  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::deque<Event> ring_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t dropped_ = 0;
  std::FILE* sink_ = nullptr;
};

}  // namespace ef::obs
