// Tests for core/regression.hpp: exact recovery of linear data, residual
// properties, degenerate fallbacks, SPD solver correctness.
#include "core/regression.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "series/timeseries.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::fit_hyperplane;
using ef::core::LinearFit;
using ef::core::RegressionOptions;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

TEST(SolveSpd, Identity) {
  std::vector<double> a{1, 0, 0, 0, 1, 0, 0, 0, 1};
  std::vector<double> b{3, -1, 2};
  ASSERT_TRUE(ef::core::solve_spd_inplace(a, b, 3));
  EXPECT_DOUBLE_EQ(b[0], 3.0);
  EXPECT_DOUBLE_EQ(b[1], -1.0);
  EXPECT_DOUBLE_EQ(b[2], 2.0);
}

TEST(SolveSpd, KnownSystem) {
  // A = [[4,2],[2,3]], b = [10, 8] → x = [7/4, 3/2].
  std::vector<double> a{4, 2, 2, 3};
  std::vector<double> b{10, 8};
  ASSERT_TRUE(ef::core::solve_spd_inplace(a, b, 2));
  EXPECT_NEAR(b[0], 1.75, 1e-12);
  EXPECT_NEAR(b[1], 1.5, 1e-12);
}

TEST(SolveSpd, SingularReturnsFalse) {
  std::vector<double> a{1, 1, 1, 1};  // rank 1
  std::vector<double> b{2, 2};
  EXPECT_FALSE(ef::core::solve_spd_inplace(a, b, 2));
}

TEST(SolveSpd, NotPositiveDefiniteReturnsFalse) {
  std::vector<double> a{-1, 0, 0, -1};
  std::vector<double> b{1, 1};
  EXPECT_FALSE(ef::core::solve_spd_inplace(a, b, 2));
}

TEST(SolveSpd, DimensionMismatchThrows) {
  std::vector<double> a{1, 0, 0, 1};
  std::vector<double> b{1};
  EXPECT_THROW((void)ef::core::solve_spd_inplace(a, b, 2), std::invalid_argument);
}

TEST(FitHyperplane, RecoversExactAffineRelation) {
  // y = 2x0 − 3x1 + 0.5x2 + 7, noiseless → exact fit and zero residual.
  ef::util::Rng rng(1);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 60; ++i) {
    std::vector<double> row{rng.uniform(-5, 5), rng.uniform(-5, 5), rng.uniform(-5, 5)};
    y.push_back(2.0 * row[0] - 3.0 * row[1] + 0.5 * row[2] + 7.0);
    x.push_back(std::move(row));
  }
  const LinearFit fit = fit_hyperplane(x, y);
  ASSERT_EQ(fit.coeffs.size(), 4u);
  EXPECT_NEAR(fit.coeffs[0], 2.0, 1e-6);
  EXPECT_NEAR(fit.coeffs[1], -3.0, 1e-6);
  EXPECT_NEAR(fit.coeffs[2], 0.5, 1e-6);
  EXPECT_NEAR(fit.coeffs[3], 7.0, 1e-6);
  EXPECT_LT(fit.max_abs_residual, 1e-6);
  EXPECT_FALSE(fit.degenerate);
}

TEST(FitHyperplane, PredictEvaluatesHyperplane) {
  LinearFit fit;
  fit.coeffs = {1.0, 2.0, 10.0};  // y = x0 + 2x1 + 10
  const std::vector<double> w{3.0, 4.0};
  EXPECT_DOUBLE_EQ(fit.predict(w), 21.0);
}

TEST(FitHyperplane, EmptyRowsThrow) {
  const std::vector<std::vector<double>> x;
  const std::vector<double> y;
  EXPECT_THROW((void)fit_hyperplane(x, y), std::invalid_argument);
}

TEST(FitHyperplane, RaggedRowsThrow) {
  const std::vector<std::vector<double>> x{{1.0, 2.0}, {1.0}};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW((void)fit_hyperplane(x, y), std::invalid_argument);
}

TEST(FitHyperplane, SizeMismatchThrows) {
  const std::vector<std::vector<double>> x{{1.0}};
  const std::vector<double> y{1.0, 2.0};
  EXPECT_THROW((void)fit_hyperplane(x, y), std::invalid_argument);
}

TEST(FitHyperplane, UnderdeterminedFallsBackToMean) {
  // 3 samples, dim 3 (< dim+2 = 5): constant fallback = mean of targets.
  const std::vector<std::vector<double>> x{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}};
  const std::vector<double> y{3.0, 6.0, 9.0};
  const LinearFit fit = fit_hyperplane(x, y);
  EXPECT_TRUE(fit.degenerate);
  EXPECT_DOUBLE_EQ(fit.coeffs.back(), 6.0);
  EXPECT_DOUBLE_EQ(fit.predict(x[0]), 6.0);
  EXPECT_DOUBLE_EQ(fit.max_abs_residual, 3.0);
}

TEST(FitHyperplane, UnderdeterminedWithFallbackDisabledStillSolves) {
  RegressionOptions opt;
  opt.constant_fallback_when_underdetermined = false;
  const std::vector<std::vector<double>> x{{1, 0}, {0, 1}, {1, 1}};
  const std::vector<double> y{1.0, 2.0, 3.0};
  const LinearFit fit = fit_hyperplane(x, y, opt);
  EXPECT_FALSE(fit.degenerate);
  EXPECT_LT(fit.max_abs_residual, 1e-6);  // exactly interpolable
}

TEST(FitHyperplane, CollinearInputsHandledByRidge) {
  // x1 = 2·x0 exactly: XᵀX singular without ridge; must not blow up.
  ef::util::Rng rng(2);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 50; ++i) {
    const double v = rng.uniform(-1, 1);
    x.push_back({v, 2.0 * v, rng.uniform(-1, 1), rng.uniform(-1, 1)});
    y.push_back(3.0 * v + x.back()[2]);
  }
  const LinearFit fit = fit_hyperplane(x, y);
  for (const double c : fit.coeffs) EXPECT_TRUE(std::isfinite(c));
  EXPECT_LT(fit.max_abs_residual, 1e-3);
}

TEST(FitHyperplane, ConstantTargetsGiveZeroResidual) {
  ef::util::Rng rng(3);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 30; ++i) {
    x.push_back({rng.uniform(0, 1), rng.uniform(0, 1)});
    y.push_back(5.5);
  }
  // Tolerance reflects the intentional relative-ridge term (1e-8 of the
  // normal-matrix trace) — not an exact interpolation.
  const LinearFit fit = fit_hyperplane(x, y);
  EXPECT_LT(fit.max_abs_residual, 1e-5);
  EXPECT_NEAR(fit.mean_prediction, 5.5, 1e-5);
}

TEST(FitHyperplane, MaxResidualIsMaxNotMean) {
  // y = x with one outlier: the max |residual| must reflect the outlier.
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 20; ++i) {
    x.push_back({static_cast<double>(i)});
    y.push_back(static_cast<double>(i));
  }
  y[10] += 8.0;  // outlier
  const LinearFit fit = fit_hyperplane(x, y);
  EXPECT_GT(fit.max_abs_residual, 6.0);  // ~ outlier minus small LS shift
}

TEST(FitHyperplane, DatasetOverloadMatchesGenericOverload) {
  // Same data through WindowDataset and through explicit rows.
  ef::util::Rng rng(4);
  std::vector<double> series_values;
  for (int i = 0; i < 200; ++i) series_values.push_back(rng.uniform(0, 1));
  const TimeSeries s(series_values);
  const WindowDataset data(s, 4, 2);

  std::vector<std::size_t> rows(data.count());
  std::iota(rows.begin(), rows.end(), 0);
  const LinearFit from_dataset = fit_hyperplane(data, rows);

  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (std::size_t i = 0; i < data.count(); ++i) {
    const auto p = data.pattern(i);
    x.emplace_back(p.begin(), p.end());
    y.push_back(data.target(i));
  }
  const LinearFit generic = fit_hyperplane(x, y);

  ASSERT_EQ(from_dataset.coeffs.size(), generic.coeffs.size());
  for (std::size_t c = 0; c < generic.coeffs.size(); ++c) {
    EXPECT_NEAR(from_dataset.coeffs[c], generic.coeffs[c], 1e-10);
  }
  EXPECT_NEAR(from_dataset.max_abs_residual, generic.max_abs_residual, 1e-10);
}

// Least-squares property: for the optimal w, residuals are orthogonal to the
// column space — perturbing any coefficient cannot reduce the SSE.
TEST(FitHyperplane, PerturbationIncreasesSse) {
  ef::util::Rng rng(5);
  std::vector<std::vector<double>> x;
  std::vector<double> y;
  for (int i = 0; i < 100; ++i) {
    x.push_back({rng.uniform(-2, 2), rng.uniform(-2, 2)});
    y.push_back(x.back()[0] - 0.5 * x.back()[1] + rng.normal(0.0, 0.1));
  }
  RegressionOptions opt;
  opt.ridge = 0.0;  // pure least squares for the optimality property
  const LinearFit fit = fit_hyperplane(x, y, opt);

  const auto sse = [&](const std::vector<double>& coeffs) {
    double acc = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      double pred = coeffs.back();
      for (std::size_t j = 0; j < x[i].size(); ++j) pred += coeffs[j] * x[i][j];
      acc += (y[i] - pred) * (y[i] - pred);
    }
    return acc;
  };

  const double base = sse(fit.coeffs);
  for (std::size_t c = 0; c < fit.coeffs.size(); ++c) {
    for (const double eps : {-0.05, 0.05}) {
      auto perturbed = fit.coeffs;
      perturbed[c] += eps;
      EXPECT_GE(sse(perturbed), base - 1e-9);
    }
  }
}

}  // namespace
