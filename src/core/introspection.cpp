#include "core/introspection.hpp"

#include <algorithm>
#include <stdexcept>

namespace ef::core {

ForecastExplanation explain(const RuleSystem& system, std::span<const double> window,
                            Aggregation how) {
  ForecastExplanation explanation;
  const auto& rules = system.rules();
  std::vector<Vote> votes;
  for (std::size_t r = 0; r < rules.size(); ++r) {
    const Rule& rule = rules[r];
    if (!rule.predicting() || !rule.matches(window)) continue;
    RuleExplanation voter;
    voter.rule_index = r;
    voter.output = rule.forecast(window);
    voter.fitness = rule.fitness();
    voter.error = rule.predicting()->error();
    voter.matches = rule.predicting()->matches;
    voter.specificity = rule.specificity();
    explanation.voters.push_back(voter);
    votes.push_back(Vote{voter.output, voter.fitness, voter.error});
  }
  explanation.forecast = aggregate_votes(std::move(votes), how);
  return explanation;
}

std::vector<double> gene_importance(const RuleSystem& system, double value_lo,
                                    double value_hi) {
  if (!(value_hi > value_lo)) {
    throw std::invalid_argument("gene_importance: value_hi must exceed value_lo");
  }
  const auto& rules = system.rules();
  if (rules.empty()) return {};
  const std::size_t dims = rules.front().window();
  const double range = value_hi - value_lo;

  std::vector<double> weighted(dims, 0.0);
  double total_weight = 0.0;
  constexpr double kWeightFloor = 1e-6;  // keeps all-f_min populations defined
  for (const Rule& rule : rules) {
    if (rule.window() != dims) continue;  // mixed-window unions: skip misfits
    const double weight = std::max(rule.fitness(), 0.0) + kWeightFloor;
    total_weight += weight;
    for (std::size_t j = 0; j < dims; ++j) {
      const auto& gene = rule.genes()[j];
      const double selectivity =
          gene.is_wildcard()
              ? 0.0
              : std::clamp(1.0 - gene.width() / range, 0.0, 1.0);
      weighted[j] += weight * selectivity;
    }
  }
  if (total_weight > 0.0) {
    for (double& v : weighted) v /= total_weight;
  }
  return weighted;
}

}  // namespace ef::core
