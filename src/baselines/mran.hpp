// mran.hpp — Minimal Resource-Allocating Network ("Error MRAN", Table 2).
//
// Yingwei, Sundararajan & Saratchandran (1997) extend RAN with
//   1. a third growth criterion: the RMS error over a sliding window of the
//      last M samples must also exceed ε_rms (prevents allocation on isolated
//      noise spikes), and
//   2. pruning: a unit whose normalised output contribution stays below a
//      threshold for M_prune consecutive samples is removed.
// The original uses an EKF for parameter adaptation; we adapt with the same
// LMS rule as RAN (documented substitution, EXPERIMENTS.md §Table 2) — the
// growth/prune logic, which is what gives MRAN its "minimal" network size
// and its accuracy edge over RAN, is implemented faithfully.
#pragma once

#include <deque>

#include "baselines/forecaster.hpp"
#include "baselines/rbf_units.hpp"

namespace ef::baselines {

struct MranConfig {
  double epsilon = 0.02;      ///< instantaneous error threshold
  double epsilon_rms = 0.015; ///< sliding-window RMS error threshold
  std::size_t rms_window = 40;
  double delta_max = 0.7;
  double delta_min = 0.07;
  double decay_tau = 1000;
  double kappa = 0.87;
  double learning_rate = 0.05;
  double prune_threshold = 0.01;  ///< min normalised contribution
  std::size_t prune_window = 50;  ///< consecutive below-threshold samples
  std::size_t passes = 1;
  std::size_t max_units = 400;

  void validate() const;
};

class Mran final : public Forecaster {
 public:
  explicit Mran(MranConfig config = {});

  void fit(const core::WindowDataset& train) override;
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "mran"; }

  [[nodiscard]] const MranConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t units() const noexcept { return units_.size(); }
  /// Units removed by pruning over the whole fit (telemetry).
  [[nodiscard]] std::size_t pruned() const noexcept { return pruned_; }

 private:
  MranConfig config_;
  RbfUnits units_;
  std::size_t pruned_ = 0;
  bool fitted_ = false;
};

}  // namespace ef::baselines
