// serve/reactor.hpp — shared-nothing epoll reactor front end.
//
// The transport behind efserve: N reactor threads, each running its own
// epoll loop over the connections it owns. Shard 0 additionally owns the
// non-blocking listener and acts as the dispatching acceptor — accepted
// sockets are assigned round-robin across shards (handed over through a
// mutex-protected inbox + eventfd wake); after that handoff a connection is
// touched by exactly one thread for its whole life, so the per-connection
// state (serve/connection.hpp) needs no locks.
//
// Requests are pipelined: a client may write any number of request lines
// without waiting; responses come back strictly in request order
// (per-connection sequence numbers reorder out-of-order completions).
// The predict path never blocks a reactor thread — cache hits and errors
// complete inline, batcher misses complete on the micro-batcher's
// dispatcher thread and are marshalled back to the owning shard through
// its inbox. Replies are written with writev over the ordered queue;
// partial writes arm EPOLLOUT and resume when the socket drains.
//
// The HTTP carve-out survives from the thread-per-connection server: a
// "GET "/"HEAD " request line flips the connection into single-shot HTTP
// mode (Prometheus scrapes GET /metrics on the same port), including on a
// connection that already served pipelined JSON requests.
//
// Shutdown contract: stop() stops accepting, stops reading, answers every
// request already received (buffered lines included), flushes, then closes
// — bounded by ServeOptions::drain_timeout_ms, after which stragglers are
// force-closed. Call stop() (or destroy the Reactor) BEFORE
// ForecastService::shutdown(), so in-flight batcher completions still find
// the service running while the reactor drains.
//
// Observability: each shard registers serve.reactor.<i>.* counters
// (accepted, requests, completions, wakeups, partial_writes) next to the
// aggregate serve.* family. Linux-only (epoll); start() throws elsewhere.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "serve/connection.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"

namespace ef::serve {

class Reactor {
 public:
  /// Transport configuration (host/port/threads/limits) is read from
  /// `service.options()` — one ServeOptions configures the whole stack.
  explicit Reactor(ForecastService& service);
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Bind, listen and spawn the reactor threads. Throws std::runtime_error
  /// on bind/listen failure (port taken, non-Linux platform).
  void start();

  /// Graceful drain: stop accepting and reading, answer everything already
  /// received, flush, close. Bounded by drain_timeout_ms. Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept;
  /// Actual bound port (resolves port 0 after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return bound_port_; }
  [[nodiscard]] std::uint64_t connections_served() const noexcept;
  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }

 private:
  struct Shard;

  void shard_loop(Shard& shard);
  void enter_drain(Shard& shard);
  void handle_accept(Shard& shard);
  void adopt(Shard& shard, int fd);
  void drain_inbox(Shard& shard);
  void handle_readable(Shard& shard, Connection* conn);
  void process_lines(Shard& shard, Connection* conn);
  void handle_request(Shard& shard, Connection* conn, const std::string& line);
  /// Response line for the non-predict verbs (ping/models/stats/metrics/
  /// events/trace/observe/quality), under the request's v1/v2 envelope.
  [[nodiscard]] std::string handle_verb(const Request& request);
  /// Full HTTP/1.0 response for the GET/HEAD carve-out (Connection: close).
  [[nodiscard]] static std::string handle_http(std::string_view method,
                                               std::string_view path);
  /// Deliver `seq`'s response on the owning thread and unblock a
  /// pipeline-capped read side. Never flushes (callers flush once per
  /// event, outside line processing).
  void complete_local(Shard& shard, Connection* conn, std::uint64_t seq,
                      std::string line);
  /// writev the ordered queue; arms/disarms EPOLLOUT. Returns false when
  /// the connection was closed (write error or close-after-flush drained).
  bool flush(Shard& shard, Connection* conn);
  void close_connection(Shard& shard, Connection* conn);
  void update_interest(Shard& shard, Connection* conn);

  ForecastService& service_;
  const ServeOptions& options_;
  int listen_fd_ = -1;
  std::uint16_t bound_port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> draining_{false};
  std::atomic<std::uint64_t> connections_{0};
  std::atomic<std::uint64_t> next_conn_id_{1};
  std::atomic<std::size_t> rr_next_{0};
  /// shared_ptr so in-flight batcher completions (holding weak_ptrs) can
  /// outlive stop() safely; the `closed` flag inside each shard gates its
  /// fds once the loop has exited.
  std::vector<std::shared_ptr<Shard>> shards_;
};

}  // namespace ef::serve
