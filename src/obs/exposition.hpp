// obs/exposition.hpp — Prometheus text exposition (format 0.0.4) for the
// metrics registry.
//
// Renders a MetricsSnapshot — and optionally a WindowSnapshot — into the
// plain-text format Prometheus scrapes:
//
//   * counters  → `<prefix><name>_total` with a `# TYPE ... counter` line
//   * gauges    → `<prefix><name>` typed gauge
//   * histograms→ cumulative `_bucket{le="..."}` series ending at
//                 `le="+Inf"`, plus `_sum` and `_count`
//   * windowed  → per-instrument gauges derived from the collector:
//                 `<name>_window_rate`, `<name>_window{q="0.50"}` …, and a
//                 single `evoforecast_window_seconds` describing the window
//   * build     → `evoforecast_build_info{commit=...,compiler=...,...} 1`
//
// Metric names are sanitised to [a-zA-Z0-9_:] (every other byte becomes
// '_'), so the registry's dotted names ("serve.request_us") come out as
// Prometheus-legal ("evoforecast_serve_request_us"). Exposition is a pure
// read of snapshots — no registry locks are held while formatting.
#pragma once

#include <string>

#include "obs/metrics.hpp"
#include "obs/window.hpp"

namespace ef::obs {

struct ExpositionOptions {
  std::string prefix = "evoforecast_";
  bool build_info_series = true;  ///< emit evoforecast_build_info{...} 1
};

/// Sanitise one metric name: apply the prefix, map bytes outside
/// [a-zA-Z0-9_:] to '_', and guard a leading digit with '_'.
[[nodiscard]] std::string prometheus_name(std::string_view name,
                                          const ExpositionOptions& options = {});

/// Render a snapshot (and optionally a windowed view) as Prometheus text.
/// `window` may be nullptr to skip the windowed series.
[[nodiscard]] std::string to_prometheus(const MetricsSnapshot& snapshot,
                                        const WindowSnapshot* window = nullptr,
                                        const ExpositionOptions& options = {});

/// Convenience: snapshot Registry::global(), fold in the global collector's
/// window when it has one (>= 2 frames), render.
[[nodiscard]] std::string prometheus_text(const ExpositionOptions& options = {});

}  // namespace ef::obs
