// Tests for series/metrics.hpp against hand-computed references, plus the
// coverage-aware partial-forecast evaluation.
#include "series/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace {

namespace m = ef::series;

const std::vector<double> kActual{1.0, 2.0, 3.0, 4.0};
const std::vector<double> kPerfect{1.0, 2.0, 3.0, 4.0};
const std::vector<double> kOffByOne{2.0, 3.0, 4.0, 5.0};

TEST(Metrics, PerfectPredictionIsZero) {
  EXPECT_DOUBLE_EQ(m::rmse(kActual, kPerfect), 0.0);
  EXPECT_DOUBLE_EQ(m::mse(kActual, kPerfect), 0.0);
  EXPECT_DOUBLE_EQ(m::mae(kActual, kPerfect), 0.0);
  EXPECT_DOUBLE_EQ(m::nmse(kActual, kPerfect), 0.0);
}

TEST(Metrics, ConstantOffset) {
  EXPECT_DOUBLE_EQ(m::rmse(kActual, kOffByOne), 1.0);
  EXPECT_DOUBLE_EQ(m::mse(kActual, kOffByOne), 1.0);
  EXPECT_DOUBLE_EQ(m::mae(kActual, kOffByOne), 1.0);
}

TEST(Metrics, RmseHandComputed) {
  const std::vector<double> a{0.0, 0.0};
  const std::vector<double> p{3.0, 4.0};
  EXPECT_DOUBLE_EQ(m::rmse(a, p), std::sqrt(12.5));
  EXPECT_DOUBLE_EQ(m::mse(a, p), 12.5);
  EXPECT_DOUBLE_EQ(m::mae(a, p), 3.5);
}

TEST(Metrics, NmseNormalisesByVariance) {
  // Var(kActual) = 1.25; MSE(off-by-one) = 1 → NMSE = 0.8.
  EXPECT_DOUBLE_EQ(m::nmse(kActual, kOffByOne), 0.8);
}

TEST(Metrics, NmseOfMeanPredictorIsOne) {
  const std::vector<double> mean_pred(4, 2.5);
  EXPECT_DOUBLE_EQ(m::nmse(kActual, mean_pred), 1.0);
}

TEST(Metrics, NmseZeroVarianceThrows) {
  const std::vector<double> flat{2.0, 2.0};
  EXPECT_THROW((void)m::nmse(flat, kPerfect), std::invalid_argument);
}

TEST(Metrics, SizeMismatchThrows) {
  const std::vector<double> shorter{1.0};
  EXPECT_THROW((void)m::rmse(kActual, shorter), std::invalid_argument);
  EXPECT_THROW((void)m::mse(kActual, shorter), std::invalid_argument);
  EXPECT_THROW((void)m::mae(kActual, shorter), std::invalid_argument);
  EXPECT_THROW((void)m::nmse(kActual, shorter), std::invalid_argument);
}

TEST(Metrics, EmptyThrows) {
  const std::vector<double> empty;
  EXPECT_THROW((void)m::rmse(empty, empty), std::invalid_argument);
}

TEST(Metrics, GalvanErrorFormula) {
  // e = 1/(2(N+τ)) Σ (x−x̃)²; spans of length 3 → N = 2; τ = 4 → denom 12.
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> p{2.0, 2.0, 1.0};  // Σd² = 1 + 0 + 4 = 5
  EXPECT_DOUBLE_EQ(m::galvan_error(a, p, 4), 5.0 / 12.0);
}

TEST(Metrics, GalvanErrorHorizonZero) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> p{1.0, 4.0};  // Σd² = 4, N = 1, denom = 2
  EXPECT_DOUBLE_EQ(m::galvan_error(a, p, 0), 2.0);
}

TEST(Metrics, PaperLiteralRmseDiffersFromStandard) {
  // Documented inconsistency: literal formula squares ½d² again.
  const std::vector<double> a{0.0};
  const std::vector<double> p{2.0};  // d=2: standard RMSE 2; literal √((½·4)²)=2... pick d=4
  const std::vector<double> a2{0.0};
  const std::vector<double> p2{4.0};  // standard 4; literal ½·16 = 8
  EXPECT_DOUBLE_EQ(m::rmse(a2, p2), 4.0);
  EXPECT_DOUBLE_EQ(m::rmse_paper_literal(a2, p2), 8.0);
  EXPECT_DOUBLE_EQ(m::rmse_paper_literal(a, p), 2.0);  // coincides at d=2
}

TEST(EvaluatePartial, FullCoverage) {
  m::PartialForecast pred{1.0, 2.0, 3.0, 5.0};
  const auto rep = m::evaluate_partial(kActual, pred);
  EXPECT_DOUBLE_EQ(rep.coverage_percent, 100.0);
  EXPECT_EQ(rep.covered, 4u);
  EXPECT_DOUBLE_EQ(rep.rmse, 0.5);  // one miss of 1 over 4 points
}

TEST(EvaluatePartial, AbstentionsExcludedFromError) {
  // Abstain exactly on the points that would be wrong.
  m::PartialForecast pred{1.0, std::nullopt, 3.0, std::nullopt};
  const auto rep = m::evaluate_partial(kActual, pred);
  EXPECT_DOUBLE_EQ(rep.coverage_percent, 50.0);
  EXPECT_EQ(rep.covered, 2u);
  EXPECT_DOUBLE_EQ(rep.rmse, 0.0);
}

TEST(EvaluatePartial, NothingCovered) {
  m::PartialForecast pred{std::nullopt, std::nullopt, std::nullopt, std::nullopt};
  const auto rep = m::evaluate_partial(kActual, pred);
  EXPECT_DOUBLE_EQ(rep.coverage_percent, 0.0);
  EXPECT_EQ(rep.covered, 0u);
  EXPECT_DOUBLE_EQ(rep.rmse, 0.0);  // defined as 0, not NaN
}

TEST(EvaluatePartial, SizeMismatchThrows) {
  m::PartialForecast pred{1.0};
  EXPECT_THROW((void)m::evaluate_partial(kActual, pred), std::invalid_argument);
}

TEST(EvaluatePartial, NmseOverCoveredSubset) {
  m::PartialForecast pred{1.0, 2.0, std::nullopt, 5.0};
  // covered actual {1,2,4}: mean 7/3, var = ((16/9)+(1/9)+(25/9))/3 = 14/9
  // mse = (0+0+1)/3 = 1/3 → nmse = 3/14·... compute: (1/3)/(14/9) = 3/14.
  const auto rep = m::evaluate_partial(kActual, pred);
  EXPECT_NEAR(rep.nmse, 3.0 / 14.0, 1e-12);
}

TEST(EvaluatePartial, ConstantCoveredSubsetReportsZeroNmse) {
  const std::vector<double> actual{2.0, 2.0, 9.0};
  m::PartialForecast pred{2.5, 2.5, std::nullopt};
  const auto rep = m::evaluate_partial(actual, pred);
  EXPECT_DOUBLE_EQ(rep.nmse, 0.0);
  EXPECT_DOUBLE_EQ(rep.rmse, 0.5);
}

}  // namespace
