#include "obs/metrics.hpp"

#include <algorithm>
#include <stdexcept>

namespace ef::obs {

double quantile_from_buckets(const std::vector<double>& bounds,
                             const std::vector<std::uint64_t>& buckets, std::uint64_t count,
                             double q, double lo_clamp, double hi_clamp) {
  if (count == 0) return 0.0;
  const double rank = q * static_cast<double>(count);
  double cum = 0.0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const auto in_bucket = static_cast<double>(buckets[i]);
    if (in_bucket == 0.0) continue;
    if (cum + in_bucket >= rank) {
      const double lo = i == 0 ? lo_clamp : bounds[i - 1];
      const double hi = i < bounds.size() ? bounds[i] : hi_clamp;
      const double frac = std::clamp((rank - cum) / in_bucket, 0.0, 1.0);
      const double value = lo + frac * (hi - lo);
      return std::clamp(value, lo_clamp, hi_clamp);
    }
    cum += in_bucket;
  }
  return hi_clamp;
}

Histogram::Histogram(std::string name, std::vector<double> bounds)
    : name_(std::move(name)),
      bounds_(bounds.empty() ? default_bounds() : std::move(bounds)),
      buckets_(bounds_.size() + 1) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::invalid_argument("Histogram '" + name_ + "': bounds must be ascending");
  }
}

std::vector<double> Histogram::default_bounds() {
  std::vector<double> bounds;
  bounds.reserve(21);
  for (int p = 0; p <= 20; ++p) bounds.push_back(static_cast<double>(1u << p));
  return bounds;
}

std::size_t Histogram::bucket_index(double x) const noexcept {
  // First bound >= x; misses past the last bound land in the +inf bucket.
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  return static_cast<std::size_t>(it - bounds_.begin());
}

HistogramStats Histogram::stats() const {
  HistogramStats out;
  out.bounds = bounds_;
  out.buckets.reserve(buckets_.size());
  for (const auto& b : buckets_) out.buckets.push_back(b.load(std::memory_order_relaxed));

  util::RunningStats moments;
  {
    const detail::SpinLockGuard guard(moments_lock_);
    moments = moments_;
  }
  out.count = moments.count();
  if (out.count == 0) return out;

  out.mean = moments.mean();
  out.sum = moments.mean() * static_cast<double>(moments.count());
  out.stddev = moments.stddev();
  out.min = moments.min();
  out.max = moments.max();

  // Quantile estimates from the buckets. The bucket counts may trail the
  // moments by in-flight observe() calls; use the bucket total as the rank
  // base so interpolation stays internally consistent.
  std::uint64_t bucket_total = 0;
  for (const std::uint64_t b : out.buckets) bucket_total += b;
  out.p50 = quantile_from_buckets(out.bounds, out.buckets, bucket_total, 0.50, out.min, out.max);
  out.p90 = quantile_from_buckets(out.bounds, out.buckets, bucket_total, 0.90, out.min, out.max);
  out.p99 = quantile_from_buckets(out.bounds, out.buckets, bucket_total, 0.99, out.min, out.max);
  return out;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  const detail::SpinLockGuard guard(moments_lock_);
  moments_ = util::RunningStats{};
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

void Registry::check_name_free(std::string_view name) const {
  // Caller holds mutex_. A name may appear in at most one kind map.
  const bool taken = counters_.find(name) != counters_.end() ||
                     gauges_.find(name) != gauges_.end() ||
                     histograms_.find(name) != histograms_.end();
  if (taken) {
    throw std::invalid_argument("obs::Registry: metric name '" + std::string(name) +
                                "' already registered as a different kind");
  }
}

Counter& Registry::counter(std::string_view name) {
  const std::lock_guard lock(mutex_);
  if (const auto it = counters_.find(name); it != counters_.end()) return *it->second;
  check_name_free(name);
  auto [it, inserted] =
      counters_.emplace(std::string(name), std::make_unique<Counter>(std::string(name)));
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  const std::lock_guard lock(mutex_);
  if (const auto it = gauges_.find(name); it != gauges_.end()) return *it->second;
  check_name_free(name);
  auto [it, inserted] =
      gauges_.emplace(std::string(name), std::make_unique<Gauge>(std::string(name)));
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name, std::vector<double> bounds) {
  const std::lock_guard lock(mutex_);
  if (const auto it = histograms_.find(name); it != histograms_.end()) return *it->second;
  check_name_free(name);
  auto [it, inserted] = histograms_.emplace(
      std::string(name), std::make_unique<Histogram>(std::string(name), std::move(bounds)));
  return *it->second;
}

void Registry::reset_values() {
  const std::lock_guard lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsSnapshot Registry::snapshot() const {
  const std::lock_guard lock(mutex_);
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) out.counters.push_back({name, c->value()});
  out.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) out.gauges.push_back({name, g->value()});
  out.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) out.histograms.push_back({name, h->stats()});
  return out;
}

}  // namespace ef::obs
