// obs/drift.hpp — Page–Hinkley change detection over a scalar error stream.
//
// The quality layer feeds each model's matured absolute forecast error into
// one of these; a sustained upward shift in the error level — the model's
// rules no longer describing the series (concept drift, regime change,
// sensor fault) — raises a drift signal that serving surfaces as a
// `drift.detected` event and a labelled gauge, and that ROADMAP item 5's
// background-evolution loop will consume as its retrain trigger.
//
// Page–Hinkley in its standard one-sided (increase-detecting) form: track
// the cumulative deviation of samples from their running mean,
//
//   m_t = Σ_i (x_i − x̄_i − δ),    PH_t = m_t − min_{i ≤ t} m_i
//
// and signal when PH_t exceeds λ. δ absorbs benign magnitude jitter; λ sets
// the detection/false-alarm trade-off (larger = slower but surer). On
// detection the statistic resets so the new error level becomes the
// baseline; the detector reports "cleared" once the stream has stayed
// in-control for `clear_after` consecutive samples — i.e. the error process
// is stationary again, possibly at a new level.
//
// Deliberately a plain value type: no locks (callers hold their per-model
// lock), no instrumentation (the serve layer emits the events), compiled
// identically under EVOFORECAST_OBS=OFF — so it is unit-testable in both
// build modes and reusable by offline analysis.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ef::obs {

struct DriftConfig {
  /// Tolerated per-sample magnitude drift; deviations below this never
  /// accumulate. Scale-dependent — pick ~10 % of the expected error level.
  double delta = 0.05;
  /// Detection threshold on the PH statistic. Roughly: a level shift of S
  /// fires after ~λ / (S − δ) samples.
  double lambda = 5.0;
  /// Samples required before a detection can fire (guards the cold-start
  /// mean estimate).
  std::size_t min_samples = 8;
  /// Consecutive in-control samples after a detection before the drift is
  /// reported cleared.
  std::size_t clear_after = 32;
};

class DriftDetector {
 public:
  enum class Signal {
    kNone,      ///< stream in control (or still drifted, not yet cleared)
    kDetected,  ///< this sample pushed the PH statistic over lambda
    kCleared,   ///< clear_after in-control samples since the last detection
  };

  explicit DriftDetector(DriftConfig config = {}) : config_(config) {}

  /// Feed one sample; returns the edge signal for THIS sample (state
  /// transitions only — steady drifted/stable periods return kNone).
  Signal update(double x) {
    ++n_;
    mean_ += (x - mean_) / static_cast<double>(n_);
    cum_ += x - mean_ - config_.delta;
    if (cum_ < min_cum_) min_cum_ = cum_;
    const bool over = n_ >= config_.min_samples && statistic() > config_.lambda;
    if (over) {
      // New regime becomes the baseline: reset the statistic so a *further*
      // shift is detectable and the clear countdown measures stationarity.
      reset_statistic();
      quiet_ = 0;
      if (!drifted_) {
        drifted_ = true;
        ++detections_;
        return Signal::kDetected;
      }
      return Signal::kNone;  // re-trigger while already drifted: stay put
    }
    if (drifted_ && ++quiet_ >= config_.clear_after) {
      drifted_ = false;
      quiet_ = 0;
      return Signal::kCleared;
    }
    return Signal::kNone;
  }

  [[nodiscard]] bool drifted() const noexcept { return drifted_; }
  /// Current PH statistic m_t − min m_i (0 right after detection/reset).
  [[nodiscard]] double statistic() const noexcept { return cum_ - min_cum_; }
  [[nodiscard]] std::size_t samples() const noexcept { return n_; }
  [[nodiscard]] std::uint64_t detections() const noexcept { return detections_; }
  [[nodiscard]] const DriftConfig& config() const noexcept { return config_; }

  /// Forget everything, including the drifted flag and detection count.
  void reset() {
    reset_statistic();
    drifted_ = false;
    quiet_ = 0;
    detections_ = 0;
  }

 private:
  void reset_statistic() {
    n_ = 0;
    mean_ = 0.0;
    cum_ = 0.0;
    min_cum_ = 0.0;
  }

  DriftConfig config_;
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double cum_ = 0.0;
  double min_cum_ = 0.0;
  bool drifted_ = false;
  std::size_t quiet_ = 0;
  std::uint64_t detections_ = 0;
};

}  // namespace ef::obs
