// arma.hpp — ARMA(p, q) baseline via Hannan-Rissanen estimation.
//
// The paper's introduction names ARMA models as the classical approach to
// the Venice series (Moretti & Tomasin). ArModel covers the pure-AR direct
// regression; this adds the moving-average part:
//   x_t = c + Σᵖ φ_k x_{t−k} + Σ𝑞 θ_j ε_{t−j} + ε_t
// estimated with the standard two-stage Hannan-Rissanen procedure:
//   1. fit a long AR by least squares, take its residuals as ε̂,
//   2. regress x_t on p lags of x and q lags of ε̂.
// Forecasting iterates the recursion with future innovations set to zero;
// the window supplies the recent history, whose innovations are
// reconstructed by filtering the window with the fitted model.
#pragma once

#include <cstddef>
#include <vector>

#include "baselines/forecaster.hpp"

namespace ef::baselines {

struct ArmaConfig {
  std::size_t p = 2;  ///< AR order
  std::size_t q = 1;  ///< MA order
  /// Long-AR order for stage 1 (0 = max(20, p+q+5), capped by data).
  std::size_t long_ar = 0;
  double ridge = 1e-8;  ///< regularisation of both regressions

  void validate() const;
};

class Arma final : public Forecaster {
 public:
  explicit Arma(ArmaConfig config = {});

  void fit(const core::WindowDataset& train) override;
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "arma"; }

  [[nodiscard]] const std::vector<double>& ar_coeffs() const noexcept { return phi_; }
  [[nodiscard]] const std::vector<double>& ma_coeffs() const noexcept { return theta_; }
  [[nodiscard]] double intercept() const noexcept { return intercept_; }

 private:
  /// One-step in-sample residuals of the fitted model over `values`
  /// (innovations before index max(p,q) are taken as zero).
  [[nodiscard]] std::vector<double> filter_residuals(std::span<const double> values) const;

  ArmaConfig config_;
  std::vector<double> phi_;    // φ₁…φ_p
  std::vector<double> theta_;  // θ₁…θ_q
  double intercept_ = 0.0;
  std::size_t horizon_ = 1;
  bool fitted_ = false;
};

}  // namespace ef::baselines
