// telemetry.hpp — per-generation traces of a steady-state run.
//
// The engine emits one record every `telemetry_stride` generations; the
// collector accumulates them and can dump a CSV for external plotting (the
// benches attach one to show convergence curves). Records also carry a
// pointer to the global ef::obs metrics registry, so a sink can correlate a
// generation snapshot with the cumulative engine counters (windows tested,
// fits performed, …) and both share one export path (obs/export.hpp).
//
// Thread-safety guarantee: TelemetryCollector is safe to share across
// concurrently running engines — sink callbacks append under an internal
// mutex, and empty()/snapshot_records()/write_csv() take the same mutex.
// records() returns an unlocked reference for the common single-threaded
// case; call it only once every engine feeding the collector has finished
// (use snapshot_records() while runs may still be emitting).
#pragma once

#include <cstddef>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"

namespace ef::core {

/// Snapshot of population state at one generation.
struct TelemetryRecord {
  std::size_t generation = 0;
  double best_fitness = 0.0;
  double mean_fitness = 0.0;
  double mean_error = 0.0;        ///< mean e_R over evaluated rules
  double mean_matches = 0.0;      ///< mean N_R
  double mean_specificity = 0.0;  ///< mean count of non-wildcard genes
  std::size_t replacements = 0;   ///< accepted offspring so far
  /// Global metrics registry at emission time (never null when emitted by an
  /// engine; snapshot() it to pair generation traces with engine counters).
  const obs::Registry* registry = nullptr;
};

/// Callback invoked by the engine; default collector stores records.
using TelemetrySink = std::function<void(const TelemetryRecord&)>;

class TelemetryCollector {
 public:
  /// The returned sink may be invoked from any thread; appends are
  /// serialised internally, so one collector can be shared by parallel
  /// multi-execution runs.
  [[nodiscard]] TelemetrySink sink() {
    return [this](const TelemetryRecord& r) {
      const std::lock_guard lock(mutex_);
      records_.push_back(r);
    };
  }

  /// Unlocked view for single-threaded use — only valid once all engines
  /// feeding this collector have finished running.
  [[nodiscard]] const std::vector<TelemetryRecord>& records() const noexcept {
    return records_;
  }

  /// Locked copy, safe while sinks may still be emitting concurrently.
  [[nodiscard]] std::vector<TelemetryRecord> snapshot_records() const {
    const std::lock_guard lock(mutex_);
    return records_;
  }

  [[nodiscard]] bool empty() const {
    const std::lock_guard lock(mutex_);
    return records_.empty();
  }

  /// Write all records as CSV (header + one row per record).
  void write_csv(const std::string& path) const;

 private:
  mutable std::mutex mutex_;
  std::vector<TelemetryRecord> records_;
};

}  // namespace ef::core
