// knn.hpp — lazy k-nearest-neighbour regressor.
//
// Stands in for the lazy-learning RBF approach of Valls et al. (cited in the
// introduction as the state of the art on Venice/Mackey-Glass): no training
// beyond memorising the windows; a query averages the targets of its k
// nearest training windows (Euclidean metric, uniform weights or inverse-
// distance weighting).
#pragma once

#include <vector>

#include "baselines/forecaster.hpp"

namespace ef::baselines {

struct KnnConfig {
  std::size_t k = 5;  ///< neighbours averaged per query
  /// Weight neighbours by 1/distance instead of uniformly; an exact match
  /// short-circuits to its own target.
  bool inverse_distance_weighting = false;

  /// Throws std::invalid_argument when k == 0.
  void validate() const;
};

class Knn final : public Forecaster {
 public:
  explicit Knn(KnnConfig config = {});

  /// Memorise every (pattern, target) pair — lazy learning has no training.
  void fit(const core::WindowDataset& train) override;
  /// Mean (or distance-weighted mean) target of the k nearest train windows.
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "knn"; }

 private:
  KnnConfig config_;
  std::vector<std::vector<double>> patterns_;
  std::vector<double> targets_;
  bool fitted_ = false;
};

}  // namespace ef::baselines
