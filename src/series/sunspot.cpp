#include "series/sunspot.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace ef::series {
namespace {

/// Hathaway (1994) cycle profile, zero for t <= 0. `t` in months since cycle
/// start. Not normalised — callers rescale by its peak.
[[nodiscard]] double hathaway(double t, double a, double b, double c) {
  if (t <= 0.0) return 0.0;
  const double x = t / b;
  const double denominator = std::exp(x * x) - c;
  if (denominator <= 0.0) return 0.0;
  return a * x * x * x / denominator;
}

/// Peak value of the unscaled Hathaway profile (a=1), found numerically once
/// per cycle so that `amp` parameterises the actual cycle maximum.
[[nodiscard]] double hathaway_peak(double b, double c) {
  double best = 0.0;
  for (double t = 1.0; t <= 6.0 * b; t += 0.5) {
    best = std::max(best, hathaway(t, 1.0, b, c));
  }
  return best;
}

}  // namespace

TimeSeries generate_sunspots(std::size_t months, const SunspotParams& params) {
  if (months == 0) throw std::invalid_argument("generate_sunspots: months must be > 0");

  util::Rng rng(params.seed);
  util::Rng cycle_rng = rng.fork();
  util::Rng noise_rng = rng.fork();

  std::vector<double> signal(months, 0.0);

  // Lay down overlapping cycles until the last one starts beyond the range.
  // Starting slightly before t=0 so the first months sit mid-cycle rather
  // than at an artificial minimum.
  double start = -60.0;
  while (start < static_cast<double>(months)) {
    const double length = std::max(
        80.0, cycle_rng.normal(params.mean_cycle_months, params.cycle_sd_months));
    const double amp =
        std::max(params.amp_min, cycle_rng.normal(params.amp_mean, params.amp_sd));
    // Rise parameter jitters with the cycle (stronger cycles rise faster —
    // the Waldmeier effect — approximated by shrinking b with amplitude)
    // plus independent per-cycle shape variability, so no single global
    // template fits every cycle.
    const double b = params.rise_b_months *
                     (1.0 - 0.15 * (amp - params.amp_mean) / std::max(params.amp_mean, 1.0)) *
                     cycle_rng.uniform(0.8, 1.25);
    const double peak = hathaway_peak(b, params.hathaway_c);
    const double scale = peak > 0.0 ? amp / peak : 0.0;

    // Gnevyshev gap: many cycles carry a delayed secondary maximum.
    const bool double_peaked = cycle_rng.bernoulli(params.gnevyshev_prob);
    const double second_scale = scale * params.gnevyshev_fraction;
    const double second_delay =
        params.gnevyshev_delay_months * cycle_rng.uniform(0.8, 1.2);

    const auto first = static_cast<std::size_t>(std::max(0.0, start));
    const auto last = std::min(
        months, static_cast<std::size_t>(std::max(0.0, start + 1.6 * length)) + 1);
    for (std::size_t m = first; m < last; ++m) {
      const double t = static_cast<double>(m) - start;
      double v = hathaway(t, scale, b, params.hathaway_c);
      if (double_peaked) {
        // Mix the shifted secondary bump in by taking the max: the record
        // shows two local maxima separated by a dip, not a simple sum.
        v = std::max(v, hathaway(t - second_delay, second_scale, b, params.hathaway_c));
      }
      signal[m] += v;
    }
    start += length;
  }

  // Signal-dependent noise, clamped at zero (counts cannot be negative).
  for (std::size_t m = 0; m < months; ++m) {
    const double sd = params.noise_floor + params.noise_slope * signal[m];
    signal[m] = std::max(0.0, signal[m] + noise_rng.normal(0.0, sd));
  }

  return TimeSeries(std::move(signal), "sunspots_monthly");
}

SunspotExperiment make_paper_sunspots(const SunspotParams& params) {
  const std::size_t total =
      kSunspotTrainMonths + kSunspotGapMonths + kSunspotValidationMonths;
  const TimeSeries full = generate_sunspots(total, params);
  const Split split = split_with_gap(full, kSunspotTrainMonths, kSunspotGapMonths);

  const Normalizer norm = Normalizer::min_max(split.train, 0.0, 1.0);
  return SunspotExperiment{norm.transform(split.train), norm.transform(split.validation),
                           norm};
}

}  // namespace ef::series
