#include "core/fitness.hpp"

namespace ef::core {

Evaluator::Evaluator(const MatchEngine& engine, const EvolutionConfig& config,
                     RegressionOptions regression)
    : engine_(engine), config_(config), regression_(regression) {}

void Evaluator::evaluate(Rule& rule, std::vector<std::size_t>* keep_matches) const {
  const std::vector<std::size_t> matched = engine_.match_indices(rule);

  PredictingPart part;
  part.matches = matched.size();
  if (matched.empty()) {
    // No matched window: no regression is definable. e_R is set to EMAX so
    // traces show the rule as "at the error bound"; fitness is f_min.
    part.fit.coeffs.assign(engine_.data().window() + 1, 0.0);
    part.fit.max_abs_residual = config_.emax;
    part.fit.degenerate = true;
    part.fitness = config_.f_min;
  } else {
    part.fit = fit_hyperplane(engine_.data(), matched, regression_);
    part.fitness =
        fitness_value(part.matches, part.fit.max_abs_residual, config_.emax, config_.f_min);
  }
  rule.set_predicting(std::move(part));
  if (keep_matches) *keep_matches = std::move(matched);
}

void Evaluator::evaluate_all(std::span<Rule> population) const {
  for (Rule& rule : population) evaluate(rule);
}

}  // namespace ef::core
