#include "obs/build_info.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#ifndef EVOFORECAST_GIT_COMMIT
#define EVOFORECAST_GIT_COMMIT "unknown"
#endif
#ifndef EVOFORECAST_BUILD_TYPE
#define EVOFORECAST_BUILD_TYPE "unknown"
#endif
#ifndef EVOFORECAST_OBS_ENABLED
#define EVOFORECAST_OBS_ENABLED 1
#endif

#if defined(__unix__) || defined(__APPLE__)
extern "C" char** environ;
#define EVOFORECAST_HAVE_ENVIRON 1
#else
#define EVOFORECAST_HAVE_ENVIRON 0
#endif

namespace ef::obs {
namespace {

std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#elif defined(_MSC_VER)
  return "msvc " + std::to_string(_MSC_VER);
#else
  return "unknown";
#endif
}

BuildInfo capture() {
  BuildInfo info;
  info.git_commit = EVOFORECAST_GIT_COMMIT;
  info.compiler = compiler_id();
  info.build_type = EVOFORECAST_BUILD_TYPE;
  info.obs_enabled = EVOFORECAST_OBS_ENABLED != 0;
#if EVOFORECAST_HAVE_ENVIRON
  for (char** e = environ; e != nullptr && *e != nullptr; ++e) {
    const char* entry = *e;
    if (std::strncmp(entry, "EVOFORECAST_", 12) != 0) continue;
    const char* eq = std::strchr(entry, '=');
    if (!eq) continue;
    info.env.emplace_back(std::string(entry, eq), std::string(eq + 1));
  }
  std::sort(info.env.begin(), info.env.end());
#endif
  return info;
}

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = capture();
  return info;
}

std::string build_info_json() {
  const BuildInfo& info = build_info();
  std::string out = "{\"git_commit\":\"";
  append_escaped(out, info.git_commit);
  out += "\",\"compiler\":\"";
  append_escaped(out, info.compiler);
  out += "\",\"build_type\":\"";
  append_escaped(out, info.build_type);
  out += "\",\"obs_enabled\":";
  out += info.obs_enabled ? "true" : "false";
  out += ",\"env\":{";
  bool first = true;
  for (const auto& [key, value] : info.env) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, key);
    out += "\":\"";
    append_escaped(out, value);
    out += '"';
  }
  out += "}}";
  return out;
}

}  // namespace ef::obs
