// Prometheus text exposition: name sanitisation, type lines, cumulative
// le buckets, windowed gauge series, build_info labels.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/build_info.hpp"
#include "obs/exposition.hpp"

namespace {

using ef::obs::ExpositionOptions;
using ef::obs::Registry;
using ef::obs::WindowedCollector;
using std::chrono::seconds;
using std::chrono::steady_clock;

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) out.push_back(line);
  return out;
}

TEST(PrometheusName, SanitisesIllegalBytes) {
  EXPECT_EQ(ef::obs::prometheus_name("serve.request_us"), "evoforecast_serve_request_us");
  EXPECT_EQ(ef::obs::prometheus_name("a-b c"), "evoforecast_a_b_c");
  ExpositionOptions no_prefix;
  no_prefix.prefix.clear();
  EXPECT_EQ(ef::obs::prometheus_name("9lives", no_prefix), "_9lives");
}

TEST(Exposition, CountersGetTotalSuffixAndTypeLine) {
  Registry registry;
  registry.counter("serve.requests").add(42);
  const std::string text = ef::obs::to_prometheus(registry.snapshot());
  EXPECT_TRUE(contains(text, "# TYPE evoforecast_serve_requests_total counter\n"));
  EXPECT_TRUE(contains(text, "evoforecast_serve_requests_total 42\n"));
}

TEST(Exposition, GaugeRendered) {
  Registry registry;
  registry.gauge("train.coverage_percent").set(87.5);
  const std::string text = ef::obs::to_prometheus(registry.snapshot());
  EXPECT_TRUE(contains(text, "# TYPE evoforecast_train_coverage_percent gauge"));
  EXPECT_TRUE(contains(text, "evoforecast_train_coverage_percent 87.5"));
}

TEST(Exposition, HistogramBucketsAreCumulativeAndEndAtInf) {
  Registry registry;
  auto& h = registry.histogram("lat", {1.0, 10.0, 100.0});
  h.observe(0.5);   // le=1
  h.observe(5.0);   // le=10
  h.observe(5.0);   // le=10
  h.observe(1e9);   // +Inf
  const std::string text = ef::obs::to_prometheus(registry.snapshot());

  EXPECT_TRUE(contains(text, "# TYPE evoforecast_lat histogram"));
  EXPECT_TRUE(contains(text, "evoforecast_lat_bucket{le=\"1\"} 1"));
  EXPECT_TRUE(contains(text, "evoforecast_lat_bucket{le=\"10\"} 3"));
  EXPECT_TRUE(contains(text, "evoforecast_lat_bucket{le=\"100\"} 3"));
  EXPECT_TRUE(contains(text, "evoforecast_lat_bucket{le=\"+Inf\"} 4"));
  EXPECT_TRUE(contains(text, "evoforecast_lat_count 4"));

  // Cumulative monotonicity across the whole bucket series.
  std::uint64_t last = 0;
  for (const std::string& line : lines_of(text)) {
    if (line.rfind("evoforecast_lat_bucket", 0) != 0) continue;
    const std::uint64_t count = std::stoull(line.substr(line.rfind(' ') + 1));
    EXPECT_GE(count, last);
    last = count;
  }
  EXPECT_EQ(last, 4u);  // +Inf bucket == _count
}

TEST(Exposition, WindowedSeriesRenderedAsGauges) {
  Registry registry;
  registry.counter("serve.requests").add(10);
  registry.histogram("serve.request_us").observe(8.0);
  WindowedCollector collector(registry);
  const auto t0 = steady_clock::now();
  collector.tick(t0);
  registry.counter("serve.requests").add(20);
  registry.histogram("serve.request_us").observe(16.0);
  collector.tick(t0 + seconds(10));

  const auto window = collector.window();
  const std::string text = ef::obs::to_prometheus(registry.snapshot(), &window);
  EXPECT_TRUE(contains(text, "# TYPE evoforecast_window_seconds gauge"));
  EXPECT_TRUE(contains(text, "evoforecast_window_seconds 10"));
  EXPECT_TRUE(contains(text, "evoforecast_serve_requests_window_rate 2"));
  EXPECT_TRUE(contains(text, "evoforecast_serve_request_us_window{q=\"0.50\"}"));
  EXPECT_TRUE(contains(text, "evoforecast_serve_request_us_window{q=\"0.99\"}"));
  EXPECT_TRUE(contains(text, "evoforecast_serve_request_us_window_rate"));
}

TEST(Exposition, BuildInfoSeriesCarriesCommitLabel) {
  Registry registry;
  const std::string text = ef::obs::to_prometheus(registry.snapshot());
  EXPECT_TRUE(contains(text, "# TYPE evoforecast_build_info gauge"));
  // Labels render in sorted name order (build_type < commit < compiler), so
  // the commit label sits mid-block rather than leading it.
  EXPECT_TRUE(
      contains(text, ",commit=\"" + ef::obs::build_info().git_commit + "\","));
  EXPECT_TRUE(contains(text, "evoforecast_build_info{build_type=\""));
  ExpositionOptions no_build;
  no_build.build_info_series = false;
  EXPECT_FALSE(contains(ef::obs::to_prometheus(registry.snapshot(), nullptr, no_build),
                        "build_info"));
}

TEST(Exposition, EmptyRegistryStillValid) {
  Registry registry;
  const std::string text = ef::obs::to_prometheus(registry.snapshot());
  // Only the build_info series — still well-formed exposition text.
  for (const std::string& line : lines_of(text)) {
    EXPECT_FALSE(line.empty());
  }
}

TEST(BuildInfo, JsonIsWellFormedAndStable) {
  const std::string json = ef::obs::build_info_json();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_TRUE(contains(json, "\"git_commit\""));
  EXPECT_TRUE(contains(json, "\"compiler\""));
  EXPECT_TRUE(contains(json, "\"build_type\""));
  EXPECT_TRUE(contains(json, "\"obs_enabled\""));
  EXPECT_EQ(json, ef::obs::build_info_json());  // captured once, stable
}

}  // namespace
