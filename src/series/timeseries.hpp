// timeseries.hpp — series container, splits, and invertible normalisers.
//
// Every dataset in the paper is a scalar sequence split into train/validation
// (and sometimes test) contiguous ranges, normalised either to [0,1]
// (Mackey-Glass, sunspots) or left in physical units (Venice, centimetres).
// TimeSeries owns the values; Split/Normalizer are cheap value types layered
// on top.
#pragma once

#include <cstddef>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace ef::series {

/// Owning scalar time series with an optional name and sampling-period label.
class TimeSeries {
 public:
  TimeSeries() = default;

  /// Construct from values. Throws std::invalid_argument if any value is
  /// non-finite — NaNs silently poison regressions downstream, so reject at
  /// the boundary.
  explicit TimeSeries(std::vector<double> values, std::string name = "series");

  [[nodiscard]] std::size_t size() const noexcept { return values_.size(); }
  [[nodiscard]] bool empty() const noexcept { return values_.empty(); }
  [[nodiscard]] double operator[](std::size_t i) const noexcept { return values_[i]; }

  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Contiguous sub-range [begin, end) as a new series.
  /// Throws std::out_of_range on invalid bounds.
  [[nodiscard]] TimeSeries slice(std::size_t begin, std::size_t end) const;

  /// Smallest / largest value. Throws std::logic_error when empty.
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  [[nodiscard]] double mean() const;
  /// Population variance.
  [[nodiscard]] double variance() const;

 private:
  std::vector<double> values_;
  std::string name_;
};

/// Train / validation split of one series by contiguous index ranges
/// (the paper always splits chronologically, never randomly).
struct Split {
  TimeSeries train;
  TimeSeries validation;
};

/// Split `s` at `train_size`: first `train_size` samples train, the rest
/// validate. Throws std::invalid_argument when train_size is 0 or >= size.
[[nodiscard]] Split split_at(const TimeSeries& s, std::size_t train_size);

/// Split with an unused gap between the ranges (the sunspot experiment skips
/// Jan 1920 – Dec 1928 between train and validation).
[[nodiscard]] Split split_with_gap(const TimeSeries& s, std::size_t train_size,
                                   std::size_t gap);

/// Invertible affine normaliser y = (x - offset) / scale.
///
/// Two factory styles mirror the paper: min-max to [lo, hi], and z-score.
/// The transform parameters are always fitted on the *training* range and
/// then applied to validation data — fitting on the full series would leak
/// future information.
class Normalizer {
 public:
  /// Identity transform.
  Normalizer() = default;

  /// Fit a min-max map from the value range of `s` onto [lo, hi].
  /// A constant series maps everything to lo.
  [[nodiscard]] static Normalizer min_max(const TimeSeries& s, double lo = 0.0,
                                          double hi = 1.0);

  /// Fit a z-score map (mean 0, unit variance) on `s`.
  /// A constant series maps everything to 0.
  [[nodiscard]] static Normalizer z_score(const TimeSeries& s);

  [[nodiscard]] double transform(double x) const noexcept { return (x - offset_) * inv_scale_ + target_lo_; }
  [[nodiscard]] double inverse(double y) const noexcept { return (y - target_lo_) * scale_ + offset_; }

  /// Transform every value of a series.
  [[nodiscard]] TimeSeries transform(const TimeSeries& s) const;
  /// Inverse-transform every value of a series.
  [[nodiscard]] TimeSeries inverse(const TimeSeries& s) const;

  /// Multiplicative scale of the *inverse* map; 0 never occurs (constant
  /// inputs produce scale 1 with a degenerate-range flag instead).
  [[nodiscard]] double scale() const noexcept { return scale_; }
  [[nodiscard]] double offset() const noexcept { return offset_; }

 private:
  Normalizer(double offset, double scale, double target_lo);

  double offset_ = 0.0;     // subtracted in forward direction
  double scale_ = 1.0;      // multiplied in inverse direction
  double inv_scale_ = 1.0;  // cached 1/scale_
  double target_lo_ = 0.0;  // lower bound of the target interval
};

}  // namespace ef::series
