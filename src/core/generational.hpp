// generational.hpp — generational GA engine (ablation of the paper's §3.3
// steady-state choice).
//
// The paper evolves steady-state: one offspring per generation, crowding
// replacement. The textbook alternative replaces the whole population each
// generation (tournament parents → crossover → mutation for every slot) with
// elitism. Crowding has no direct analogue here, so diversity relies on the
// stochastic operators alone — exactly the weakness the paper's choice
// avoids, and what Ablation G quantifies. Budget accounting: one
// generational step costs population_size offspring evaluations, so compare
// engines at equal *evaluations*, not equal generations.
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "core/dataset.hpp"
#include "core/fitness.hpp"
#include "core/match_engine.hpp"
#include "core/rule.hpp"
#include "core/telemetry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace ef::core {

struct GenerationalConfig {
  EvolutionConfig base;      ///< shared parameters (population, operators, EMAX…)
  std::size_t elite_count = 2;  ///< best individuals copied unchanged

  void validate() const;
};

class GenerationalEngine {
 public:
  GenerationalEngine(const WindowDataset& data, GenerationalConfig config,
                     util::ThreadPool* pool = nullptr, TelemetrySink telemetry = {});

  /// One full generational replacement (population_size offspring
  /// evaluations). Returns the number of offspring fitter than the slot
  /// they took (informational).
  std::size_t step();

  /// Run until `evaluations()` reaches `budget` offspring evaluations.
  void run_evaluations(std::size_t budget);

  [[nodiscard]] const std::vector<Rule>& population() const noexcept { return population_; }
  [[nodiscard]] std::size_t generation() const noexcept { return generation_; }
  /// Offspring evaluations consumed so far (excludes the initial population).
  [[nodiscard]] std::size_t evaluations() const noexcept { return evaluations_; }
  [[nodiscard]] TelemetryRecord snapshot() const;

 private:
  void emit_telemetry();

  const WindowDataset& data_;
  GenerationalConfig config_;
  MatchEngine engine_;
  Evaluator evaluator_;
  util::Rng rng_;
  TelemetrySink telemetry_;

  std::vector<Rule> population_;
  std::size_t generation_ = 0;
  std::size_t evaluations_ = 0;
};

}  // namespace ef::core
