#include "serve/service.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "obs/macros.hpp"
#include "obs/timeline.hpp"

namespace ef::serve {
namespace {

/// Latency histogram bounds in microseconds: 1 µs … ~1 s with ~2x steps.
[[maybe_unused]] std::vector<double> latency_bounds_us() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 1.0e6; b *= 2.0) bounds.push_back(b);
  return bounds;
}

void observe_latency_us(double us) {
#if EVOFORECAST_OBS_ENABLED
  static obs::Histogram& hist =
      obs::Registry::global().histogram("serve.request_us", latency_bounds_us());
  hist.observe(us);
#else
  (void)us;
#endif
}

/// Common request epilogue: record latency, and flag requests that blew the
/// configured slow threshold into the flight recorder (counter + event with
/// enough context to find the culprit later).
void finish_request([[maybe_unused]] const ServiceConfig& config,
                    [[maybe_unused]] const PredictRequest& request,
                    [[maybe_unused]] const PredictResponse& response,
                    std::chrono::steady_clock::time_point start,
                    [[maybe_unused]] std::uint64_t trace_id) {
  const double us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
          .count();
  observe_latency_us(us);
  if (config.slow_request_us > 0.0 && us >= config.slow_request_us) {
    EVOFORECAST_COUNT("serve.slow_requests", 1);
    EVOFORECAST_EVENT("serve.slow_request", {"model", request.model}, {"us", us},
                      {"horizon", request.horizon}, {"cached", response.cached},
                      {"abstain", response.abstain}, {"trace", trace_id});
    // Slow-request exemplar: keep this trace's full span tree at export even
    // when its head-sample draw said no — the event's "trace" field is the
    // link from the flight recorder into the timeline.
    obs::Timeline::mark_slow(trace_id, us);
  }
}

}  // namespace

ForecastService::ForecastService(ModelStore& store, ServiceConfig config,
                                 util::ThreadPool* pool)
    : store_(store), config_(config), pool_(pool), cache_(config.cache) {
  if (config_.enable_batcher) {
    batcher_ = std::make_unique<MicroBatcher>(config_.batcher, pool_);
  }
}

ForecastService::~ForecastService() { shutdown(); }

void ForecastService::shutdown() {
  accepting_.store(false, std::memory_order_release);
  if (batcher_) batcher_->shutdown();
}

bool ForecastService::accepting() const noexcept {
  return accepting_.load(std::memory_order_acquire);
}

core::Prediction ForecastService::predict_uncached(
    const std::shared_ptr<const LoadedModel>& model, const PredictRequest& request) {
  if (request.horizon == 1) {
    if (batcher_) {
      // The queue/batch/match spans for this path are emitted by the
      // batcher's dispatcher thread under this request's trace context.
      return batcher_->submit(model, request.window, request.agg).get();
    }
    obs::SpanScope match("serve.match");
    return model->forecast(request.window, request.agg);
  }

  // Iterated multi-step: slide the window forward, feeding each one-step
  // forecast back as the newest value. Chain abstention policy: any
  // abstaining step abstains the request (paper semantics — no fabricated
  // bridge values on the serving path).
  obs::SpanScope match("serve.match");
  match.set_arg("steps", static_cast<double>(request.horizon));
  std::vector<double> window = request.window;
  core::Prediction last;
  for (std::size_t step = 0; step < request.horizon; ++step) {
    last = model->forecast(window, request.agg);
    if (last.abstained) return core::Prediction{};
    window.erase(window.begin());
    window.push_back(last.value);
  }
  return last;
}

PredictResponse ForecastService::predict(const PredictRequest& request) {
  // Root timeline span: every span below (including those emitted by the
  // batcher's dispatcher thread) shares this request's trace id. One relaxed
  // atomic load when tracing is off.
  const obs::TraceScope trace("serve.request");
  const auto start = std::chrono::steady_clock::now();
  EVOFORECAST_COUNT("serve.requests", 1);

  PredictResponse response;
  response.model = request.model;
  response.horizon = request.horizon;

  const auto fail = [&](std::string reason) {
    EVOFORECAST_COUNT("serve.errors", 1);
    response.ok = false;
    response.error = std::move(reason);
    return response;
  };

  if (!accepting()) return fail("service shutting down");
  if (request.window.empty()) return fail("window must not be empty");
  if (request.window.size() > config_.max_window) return fail("window too long");
  if (request.horizon == 0) return fail("horizon must be >= 1");
  if (request.horizon > config_.max_horizon) return fail("horizon too large");

  std::shared_ptr<const LoadedModel> model;
  {
    const obs::SpanScope lookup("serve.lookup");
    model = store_.get(request.model);
  }
  if (!model) return fail("unknown model '" + request.model + "'");
  response.version = model->version();
  if (model->window() != 0 && request.window.size() != model->window()) {
    return fail("window length " + std::to_string(request.window.size()) +
                " does not match model window " + std::to_string(model->window()));
  }

  const bool use_cache = config_.enable_cache && request.use_cache;
  WindowCache::Key key;
  if (use_cache) {
    std::optional<WindowCache::Value> hit;
    {
      obs::SpanScope cache_span("serve.cache");
      key = cache_.make_key(model->tag(), static_cast<std::uint32_t>(request.horizon),
                            request.agg, request.window);
      hit = cache_.get(key);
      cache_span.set_arg("hit", hit ? 1.0 : 0.0);
    }
    if (hit) {
      const obs::SpanScope respond("serve.respond");
      response.ok = true;
      response.cached = true;
      response.abstain = hit->abstain;
      response.value = hit->value;
      response.votes = hit->votes;
      if (hit->abstain) EVOFORECAST_COUNT("serve.abstentions", 1);
      finish_request(config_, request, response, start, trace.trace_id());
      return response;
    }
  }

  core::Prediction result;
  try {
    result = predict_uncached(model, request);
  } catch (const std::exception& e) {
    return fail(std::string("prediction failed: ") + e.what());
  }

  const obs::SpanScope respond("serve.respond");
  response.ok = true;
  response.abstain = result.abstained;
  response.value = result.value;
  response.votes = result.votes;
  if (response.abstain) EVOFORECAST_COUNT("serve.abstentions", 1);

  if (use_cache) {
    WindowCache::Value cached;
    cached.abstain = response.abstain;
    cached.value = response.value;
    cached.votes = static_cast<std::uint32_t>(response.votes);
    cache_.put(std::move(key), cached);
  }

  finish_request(config_, request, response, start, trace.trace_id());
  return response;
}

}  // namespace ef::serve
