#include "serve/service.hpp"

#include <chrono>
#include <optional>
#include <utility>

#include "obs/macros.hpp"
#include "obs/timeline.hpp"

namespace ef::serve {
namespace {

/// Latency histogram bounds in microseconds: 1 µs … ~1 s with ~2x steps.
[[maybe_unused]] std::vector<double> latency_bounds_us() {
  std::vector<double> bounds;
  for (double b = 1.0; b <= 1.0e6; b *= 2.0) bounds.push_back(b);
  return bounds;
}

void observe_latency_us(double us) {
#if EVOFORECAST_OBS_ENABLED
  static obs::Histogram& hist =
      obs::Registry::global().histogram("serve.request_us", latency_bounds_us());
  hist.observe(us);
#else
  (void)us;
#endif
}

/// Common request epilogue: record latency, ledger the forecast for later
/// accuracy scoring, and flag requests that blew the configured slow
/// threshold into the flight recorder (counter + event with enough context
/// to find the culprit later).
void finish_request([[maybe_unused]] const ServeOptions& options,
                    [[maybe_unused]] const PredictRequest& request,
                    [[maybe_unused]] const PredictResponse& response,
                    std::chrono::steady_clock::time_point start,
                    [[maybe_unused]] std::uint64_t trace_id,
                    QualityTracker* quality) {
  if (quality != nullptr && response.ok) {
    quality->record_forecast(request.model, request.horizon, response.value,
                             response.bound, response.abstain);
  }
  const double us =
      std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - start)
          .count();
  observe_latency_us(us);
  if (options.slow_request_us > 0.0 && us >= options.slow_request_us) {
    EVOFORECAST_COUNT("serve.slow_requests", 1);
    EVOFORECAST_EVENT("serve.slow_request", {"model", request.model}, {"us", us},
                      {"horizon", request.horizon}, {"cached", response.cached},
                      {"abstain", response.abstain}, {"trace", trace_id});
    // Slow-request exemplar: keep this trace's full span tree at export even
    // when its head-sample draw said no — the event's "trace" field is the
    // link from the flight recorder into the timeline.
    obs::Timeline::mark_slow(trace_id, us);
  }
}

void fail_response(PredictResponse& response, ErrorCode code, std::string reason) {
  EVOFORECAST_COUNT("serve.errors", 1);
  response.ok = false;
  response.code = code;
  response.error = std::move(reason);
}

/// Unwrap the batch kernel's exception into an internal-error response.
void fail_from_exception(PredictResponse& response, const std::exception_ptr& error) {
  try {
    std::rethrow_exception(error);
  } catch (const std::exception& e) {
    fail_response(response, ErrorCode::kInternal,
                  std::string("prediction failed: ") + e.what());
  } catch (...) {
    fail_response(response, ErrorCode::kInternal, "prediction failed");
  }
}

}  // namespace

ForecastService::ForecastService(ModelStore& store, ServeOptions options,
                                 util::ThreadPool* pool)
    : store_(store), options_(std::move(options)), pool_(pool), cache_(options_.cache) {
  if (options_.trace_sample >= 0.0) obs::Timeline::set_sample_rate(options_.trace_sample);
  if (options_.enable_batcher) {
    batcher_ = std::make_unique<MicroBatcher>(options_.batcher, pool_);
  }
  if (options_.quality.enabled && options_.quality.ledger_capacity > 0) {
    quality_ = std::make_unique<QualityTracker>(options_.quality);
  }
}

ForecastService::~ForecastService() { shutdown(); }

void ForecastService::shutdown() {
  accepting_.store(false, std::memory_order_release);
  if (batcher_) batcher_->shutdown();
}

bool ForecastService::accepting() const noexcept {
  return accepting_.load(std::memory_order_acquire);
}

std::shared_ptr<const LoadedModel> ForecastService::prepare(const PredictRequest& request,
                                                            PredictResponse& response) {
  response.model = request.model;
  response.horizon = request.horizon;

  const auto fail = [&](ErrorCode code, std::string reason) {
    fail_response(response, code, std::move(reason));
    return nullptr;
  };

  if (!accepting()) return fail(ErrorCode::kShuttingDown, "service shutting down");
  if (request.window.empty()) return fail(ErrorCode::kBadWindow, "window must not be empty");
  if (request.window.size() > options_.max_window) {
    return fail(ErrorCode::kBadWindow, "window too long");
  }
  if (request.horizon == 0) return fail(ErrorCode::kBadHorizon, "horizon must be >= 1");
  if (request.horizon > options_.max_horizon) {
    return fail(ErrorCode::kBadHorizon, "horizon too large");
  }

  std::shared_ptr<const LoadedModel> model;
  {
    const obs::SpanScope lookup("serve.lookup");
    model = store_.get(request.model);
  }
  if (!model) {
    return fail(ErrorCode::kUnknownModel, "unknown model '" + request.model + "'");
  }
  response.version = model->version();
  if (model->window() != 0 && request.window.size() != model->window()) {
    return fail(ErrorCode::kWindowMismatch,
                "window length " + std::to_string(request.window.size()) +
                    " does not match model window " + std::to_string(model->window()));
  }
  return model;
}

core::Prediction ForecastService::predict_uncached(
    const std::shared_ptr<const LoadedModel>& model, const PredictRequest& request) {
  if (request.horizon == 1) {
    if (batcher_) {
      // The queue/batch/match spans for this path are emitted by the
      // batcher's dispatcher thread under this request's trace context.
      return batcher_->submit(model, request.window, request.agg).get();
    }
    obs::SpanScope match("serve.match");
    return model->forecast(request.window, request.agg);
  }

  // Iterated multi-step: slide the window forward, feeding each one-step
  // forecast back as the newest value. Chain abstention policy: any
  // abstaining step abstains the request (paper semantics — no fabricated
  // bridge values on the serving path).
  obs::SpanScope match("serve.match");
  match.set_arg("steps", static_cast<double>(request.horizon));
  std::vector<double> window = request.window;
  core::Prediction last;
  for (std::size_t step = 0; step < request.horizon; ++step) {
    last = model->forecast(window, request.agg);
    if (last.abstained) return core::Prediction{};
    window.erase(window.begin());
    window.push_back(last.value);
  }
  // A one-step bound does not compose across fed-back forecasts (each step's
  // input already carries the previous step's error) — the chain honestly
  // ships no interval rather than a misleading final-step one.
  last.bound = -1.0;
  return last;
}

PredictResponse ForecastService::predict(const PredictRequest& request) {
  // Root timeline span: every span below (including those emitted by the
  // batcher's dispatcher thread) shares this request's trace id. One relaxed
  // atomic load when tracing is off.
  const obs::TraceScope trace("serve.request");
  const auto start = std::chrono::steady_clock::now();
  EVOFORECAST_COUNT("serve.requests", 1);

  PredictResponse response;
  const std::shared_ptr<const LoadedModel> model = prepare(request, response);
  if (!model) return response;

  const bool use_cache = options_.enable_cache && request.use_cache;
  WindowCache::Key key;
  if (use_cache) {
    std::optional<WindowCache::Value> hit;
    {
      obs::SpanScope cache_span("serve.cache");
      key = cache_.make_key(model->tag(), static_cast<std::uint32_t>(request.horizon),
                            request.agg, request.window);
      hit = cache_.get(key);
      cache_span.set_arg("hit", hit ? 1.0 : 0.0);
    }
    if (hit) {
      const obs::SpanScope respond("serve.respond");
      response.ok = true;
      response.cached = true;
      response.abstain = hit->abstain;
      response.value = hit->value;
      response.bound = hit->bound;
      response.votes = hit->votes;
      if (hit->abstain) EVOFORECAST_COUNT("serve.abstentions", 1);
      finish_request(options_, request, response, start, trace.trace_id(),
                     quality_.get());
      return response;
    }
  }

  core::Prediction result;
  try {
    result = predict_uncached(model, request);
  } catch (const std::exception& e) {
    fail_response(response, ErrorCode::kInternal,
                  std::string("prediction failed: ") + e.what());
    return response;
  }

  const obs::SpanScope respond("serve.respond");
  response.ok = true;
  response.abstain = result.abstained;
  response.value = result.value;
  response.bound = result.abstained ? -1.0 : result.bound;
  response.votes = result.votes;
  if (response.abstain) EVOFORECAST_COUNT("serve.abstentions", 1);

  if (use_cache) {
    WindowCache::Value cached;
    cached.abstain = response.abstain;
    cached.value = response.value;
    cached.bound = response.bound;
    cached.votes = static_cast<std::uint32_t>(response.votes);
    cache_.put(std::move(key), cached);
  }

  finish_request(options_, request, response, start, trace.trace_id(), quality_.get());
  return response;
}

void ForecastService::predict_async(const PredictRequest& request, PredictCallback done) {
  // The root serve.request span covers the submit portion (validation,
  // cache probe, batcher handoff); for batched misses the downstream spans
  // (serve.queue/batch/match, the retrospective serve.respond) attach to
  // the same trace via the captured context, and end-to-end latency is
  // measured from `start` in the completion.
  const obs::TraceScope trace("serve.request");
  const auto start = std::chrono::steady_clock::now();
  EVOFORECAST_COUNT("serve.requests", 1);

  PredictResponse response;
  const std::shared_ptr<const LoadedModel> model = prepare(request, response);
  if (!model) {
    done(std::move(response));
    return;
  }

  const bool use_cache = options_.enable_cache && request.use_cache;
  WindowCache::Key key;
  if (use_cache) {
    std::optional<WindowCache::Value> hit;
    {
      obs::SpanScope cache_span("serve.cache");
      key = cache_.make_key(model->tag(), static_cast<std::uint32_t>(request.horizon),
                            request.agg, request.window);
      hit = cache_.get(key);
      cache_span.set_arg("hit", hit ? 1.0 : 0.0);
    }
    if (hit) {
      const obs::SpanScope respond("serve.respond");
      response.ok = true;
      response.cached = true;
      response.abstain = hit->abstain;
      response.value = hit->value;
      response.bound = hit->bound;
      response.votes = hit->votes;
      if (hit->abstain) EVOFORECAST_COUNT("serve.abstentions", 1);
      finish_request(options_, request, response, start, trace.trace_id(),
                     quality_.get());
      done(std::move(response));
      return;
    }
  }

  if (request.horizon == 1 && batcher_) {
    // Miss on the batched path: hand off without blocking. The completion
    // runs on the batcher's dispatcher thread; it adopts the request's
    // trace context so the cache fill and epilogue land in the right trace.
    const obs::TraceContext ctx = trace.context();
    try {
      batcher_->submit_async(
          model, request.window, request.agg,
          [this, request, response = std::move(response), use_cache,
           key = std::move(key), start, ctx, done = std::move(done)](
              core::Prediction result, std::exception_ptr error) mutable {
            const obs::ContextGuard guard(ctx);
            if (error) {
              fail_from_exception(response, error);
              done(std::move(response));
              return;
            }
            const std::int64_t t_respond_us =
                ctx.active() ? obs::Timeline::now_us() : 0;
            response.ok = true;
            response.abstain = result.abstained;
            response.value = result.value;
            response.bound = result.abstained ? -1.0 : result.bound;
            response.votes = result.votes;
            if (response.abstain) EVOFORECAST_COUNT("serve.abstentions", 1);
            if (use_cache) {
              WindowCache::Value cached;
              cached.abstain = response.abstain;
              cached.value = response.value;
              cached.bound = response.bound;
              cached.votes = static_cast<std::uint32_t>(response.votes);
              cache_.put(std::move(key), cached);
            }
            if (ctx.active()) {
              obs::Timeline::emit(ctx, "serve.respond", t_respond_us,
                                  obs::Timeline::now_us());
            }
            finish_request(options_, request, response, start, ctx.trace_id,
                           quality_.get());
            done(std::move(response));
          });
    } catch (const std::exception&) {
      // Batcher refused: shutdown raced the accepting() check above.
      fail_response(response, ErrorCode::kShuttingDown, "service shutting down");
      done(std::move(response));
    }
    return;
  }

  // Multi-step chain (or batcher disabled): runs inline on the calling
  // thread — an iterated chain is inherently serial, so there is nothing to
  // coalesce and the reactor accepts the latency hit knowingly.
  core::Prediction result;
  try {
    result = predict_uncached(model, request);
  } catch (const std::exception& e) {
    fail_response(response, ErrorCode::kInternal,
                  std::string("prediction failed: ") + e.what());
    done(std::move(response));
    return;
  }

  const obs::SpanScope respond("serve.respond");
  response.ok = true;
  response.abstain = result.abstained;
  response.value = result.value;
  response.bound = result.abstained ? -1.0 : result.bound;
  response.votes = result.votes;
  if (response.abstain) EVOFORECAST_COUNT("serve.abstentions", 1);

  if (use_cache) {
    WindowCache::Value cached;
    cached.abstain = response.abstain;
    cached.value = response.value;
    cached.bound = response.bound;
    cached.votes = static_cast<std::uint32_t>(response.votes);
    cache_.put(std::move(key), cached);
  }

  finish_request(options_, request, response, start, trace.trace_id(), quality_.get());
  done(std::move(response));
}

}  // namespace ef::serve
