// obs/run_report.hpp — standard observability CLI flags for binaries.
//
// Every bench and example that parses a util::Cli can expose the run-report
// surface with one call at the end of main():
//
//   ef::obs::emit_cli_report(cli);
//
// which honours:
//   --report              print the human-readable metrics/trace table
//   --metrics-json PATH   dump the registry + trace snapshot as JSON
//   --metrics-csv PATH    same as flat CSV rows
//
// Header-only so the obs library itself stays free of a util::Cli link
// dependency (util links obs for the thread-pool instrumentation; the
// consumer binary links both).
#pragma once

#include <cstdio>

#include "obs/export.hpp"
#include "util/cli.hpp"

namespace ef::obs {

inline void emit_cli_report(const util::Cli& cli, std::FILE* out = stdout) {
  // A valueless `--metrics-json` parses as boolean "true" (util::Cli); treat
  // it as a usage error rather than writing a file literally named "true".
  const auto path_flag = [&](const char* name) -> std::optional<std::string> {
    auto path = cli.get(name);
    if (path && *path == "true") {
      std::fprintf(stderr, "warning: --%s needs a file path; ignoring\n", name);
      path.reset();
    }
    return path;
  };
  // A bad path shouldn't crash the binary after the run already succeeded.
  try {
    if (const auto path = path_flag("metrics-json")) write_json_file(*path);
    if (const auto path = path_flag("metrics-csv")) write_csv_file(*path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "warning: metrics dump failed: %s\n", e.what());
  }
  if (cli.get_bool("report")) print_report(out);
}

}  // namespace ef::obs
