// bench_ablation_engines — Ablations G & H: the paper's two central EA
// design choices, measured head-to-head at an equal rule-evaluation budget
// on Mackey-Glass τ = 50:
//   G. steady-state + crowding (paper §3.3) vs a generational GA with
//      elitism (same operators, no crowding analogue);
//   H. Michigan encoding (population = solution, paper §2) vs a Pittsburgh
//      engine (individual = whole rule set, best individual = solution).
// The solution of each variant is turned into a RuleSystem and scored on
// the test set with coverage-aware NMSE.
#include <cstdio>
#include <limits>

#include "bench_common.hpp"
#include "core/evolution.hpp"
#include "core/generational.hpp"
#include "core/pittsburgh.hpp"
#include "core/rule_system.hpp"
#include "series/mackey_glass.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full");
  const auto window = static_cast<std::size_t>(cli.get_int("window", 4));
  const auto stride = static_cast<std::size_t>(cli.get_int("stride", 6));
  const auto horizon = static_cast<std::size_t>(cli.get_int("horizon", 50));
  // Budget in offspring/rule evaluations; the steady-state engine consumes
  // exactly one per generation.
  const auto budget =
      static_cast<std::size_t>(cli.get_int("budget", full ? 40000 : 12000));
  const double emax = cli.get_double("emax", 0.14);
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 33));

  std::printf("Ablations G & H — engine comparison at %zu rule evaluations "
              "(Mackey-Glass, tau=%zu)\n",
              budget, horizon);
  ef::bench::print_rule('=');

  const auto experiment = ef::series::make_paper_mackey_glass();
  const ef::core::WindowDataset train(experiment.train, window, horizon, stride);
  const ef::core::WindowDataset test(experiment.test, window, horizon, stride);
  const auto actual = ef::bench::targets_of(test);

  const auto score = [&](const ef::core::RuleSystem& system, const char* name,
                         std::size_t rules) {
    const auto forecast = system.forecast_dataset(test);
    const auto report = ef::series::evaluate_partial(actual, forecast);
    std::printf("%-26s | %7.1f%% %9.4f %9.4f %7zu\n", name, report.coverage_percent,
                report.nmse, report.rmse, rules);
    std::fflush(stdout);
  };

  std::printf("%-26s | %8s %9s %9s %7s\n", "engine", "cov%", "nmse", "rmse", "rules");
  ef::bench::print_rule();

  // --- steady-state + crowding (the paper) -----------------------------------
  {
    ef::core::EvolutionConfig cfg;
    cfg.population_size = 100;
    cfg.generations = budget;  // 1 evaluation per generation
    cfg.emax = emax;
    cfg.seed = seed;
    ef::core::SteadyStateEngine engine(train, cfg);
    engine.run();
    ef::core::RuleSystem system;
    system.add_rules(std::vector<ef::core::Rule>(engine.population()), true, cfg.f_min);
    score(system, "steady-state+crowding", system.size());
  }

  // --- generational + elitism -------------------------------------------------
  {
    ef::core::GenerationalConfig cfg;
    cfg.base.population_size = 100;
    cfg.base.emax = emax;
    cfg.base.seed = seed;
    cfg.elite_count = 2;
    ef::core::GenerationalEngine engine(train, cfg);
    engine.run_evaluations(budget);
    ef::core::RuleSystem system;
    system.add_rules(std::vector<ef::core::Rule>(engine.population()), true, cfg.base.f_min);
    score(system, "generational+elitism", system.size());
  }

  // --- Pittsburgh --------------------------------------------------------------
  {
    ef::core::PittsburghConfig cfg;
    cfg.population_size = 20;
    cfg.rules_per_individual = 20;
    cfg.max_rules = 50;
    cfg.generations = std::numeric_limits<std::size_t>::max();  // budget-bound
    cfg.emax = emax;
    cfg.seed = seed;
    ef::core::PittsburghEngine engine(train, cfg);
    engine.run_evaluations(budget);
    const auto system = engine.best_system();
    score(system, "pittsburgh(best set)", system.size());
  }

  ef::bench::print_rule();
  std::printf(
      "Expected shape (the paper's §2-§3 arguments, quantified): the generational\n"
      "GA collapses without crowding — diversity dies and with it coverage (order-\n"
      "of-magnitude NMSE hit). Pittsburgh's set-level fitness buys coverage but its\n"
      "credit assignment to individual rules is coarse, so per-window error stays a\n"
      "multiple of the Michigan system's. Steady-state + crowding is the only\n"
      "variant that is simultaneously accurate and broadly covering.\n");
  ef::obs::emit_cli_report(cli);
  return 0;
}
