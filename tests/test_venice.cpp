// Tests for series/venice.hpp: determinism, component structure (tidal
// periodicity, surge autocorrelation, storm extremes), paper arrangement.
#include "series/venice.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

namespace {

using ef::series::generate_venice;
using ef::series::VeniceParams;

TEST(Venice, DeterministicForSameSeed) {
  const auto a = generate_venice(2000);
  const auto b = generate_venice(2000);
  for (std::size_t i = 0; i < a.size(); ++i) ASSERT_DOUBLE_EQ(a[i], b[i]);
}

TEST(Venice, DifferentSeedsDiffer) {
  VeniceParams p1;
  p1.seed = 1;
  VeniceParams p2;
  p2.seed = 2;
  const auto a = generate_venice(500, p1);
  const auto b = generate_venice(500, p2);
  int equal = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] == b[i]) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(Venice, ZeroHoursThrows) { EXPECT_THROW((void)generate_venice(0), std::invalid_argument); }

TEST(Venice, RangeResemblesLagoon) {
  // Paper: "the output ranges from -50 cm to 150 cm". The synthetic series
  // should live in roughly that band (storms may exceed 150 occasionally).
  const auto s = generate_venice(20000);
  EXPECT_GT(s.min(), -120.0);
  EXPECT_LT(s.min(), 20.0);
  EXPECT_GT(s.max(), 90.0);
  EXPECT_LT(s.max(), 260.0);
}

TEST(Venice, StormsProduceUnusualHighs) {
  // With storms on, the extreme tail must reach clearly beyond the purely
  // astronomical range; with storms off it must not.
  VeniceParams calm;
  calm.storm_rate_per_hour = 0.0;
  const auto stormy = generate_venice(20000);
  const auto quiet = generate_venice(20000, calm);
  EXPECT_GT(stormy.max(), quiet.max() + 20.0);
}

TEST(Venice, SemidiurnalPeriodicityDominates) {
  // Autocorrelation at the M2 period (~12.42 h → lag 12) should clearly
  // exceed autocorrelation at an off-period lag like 3 h.
  const auto s = generate_venice(30000);
  const double mean = s.mean();
  const auto autocorr = [&](std::size_t lag) {
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = lag; i < s.size(); ++i) {
      num += (s[i] - mean) * (s[i - lag] - mean);
    }
    for (std::size_t i = 0; i < s.size(); ++i) den += (s[i] - mean) * (s[i] - mean);
    return num / den;
  };
  EXPECT_GT(autocorr(25), autocorr(3));  // ~K1/O1 diurnal band beats short lag
  EXPECT_GT(autocorr(25), 0.3);
}

TEST(Venice, SurgeIsAutocorrelated) {
  // Disable tide+storm+noise: the remaining AR(2) surge must have strong
  // lag-1 autocorrelation (phi1+phi2 ≈ 0.98).
  VeniceParams p;
  p.constituents = {{0.0, 12.42, 0.0}};  // zero-amplitude constituent = no tide
  p.mean_sea_level_cm = 0.0;
  p.storm_rate_per_hour = 0.0;
  p.gauge_noise_cm = 0.0;
  const auto s = generate_venice(20000, p);
  const double mean = s.mean();
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 1; i < s.size(); ++i) num += (s[i] - mean) * (s[i - 1] - mean);
  for (std::size_t i = 0; i < s.size(); ++i) den += (s[i] - mean) * (s[i] - mean);
  EXPECT_GT(num / den, 0.9);
}

TEST(Venice, MeanNearMeanSeaLevel) {
  const auto s = generate_venice(40000);
  // Storm pulses push the mean slightly above the configured MSL of 30 cm.
  EXPECT_NEAR(s.mean(), 32.0, 8.0);
}

TEST(Venice, DefaultConstituentsArePlausible) {
  const auto cs = ef::series::default_venice_constituents();
  ASSERT_GE(cs.size(), 5u);
  // M2 must be the largest semidiurnal term.
  EXPECT_DOUBLE_EQ(cs[0].period_hours, 12.4206);
  for (std::size_t i = 1; i < cs.size(); ++i) {
    EXPECT_LE(cs[i].amplitude_cm, cs[0].amplitude_cm);
  }
}

TEST(VeniceExperiment, SplitSizes) {
  const auto exp = ef::series::make_paper_venice(4500, 1000);
  EXPECT_EQ(exp.train.size(), 4500u);
  EXPECT_EQ(exp.validation.size(), 1000u);
}

TEST(VeniceExperiment, ChronologicalContinuity) {
  // validation[0] must be the sample right after train.back() in the full
  // series: regenerate and compare.
  const auto exp = ef::series::make_paper_venice(300, 100);
  const auto full = generate_venice(400);
  EXPECT_DOUBLE_EQ(exp.train[299], full[299]);
  EXPECT_DOUBLE_EQ(exp.validation[0], full[300]);
}

TEST(VeniceExperiment, InvalidSizesThrow) {
  EXPECT_THROW((void)ef::series::make_paper_venice(0, 10), std::invalid_argument);
  EXPECT_THROW((void)ef::series::make_paper_venice(10, 0), std::invalid_argument);
}

}  // namespace
