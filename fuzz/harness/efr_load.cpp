#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "core/rule_system.hpp"
#include "harness.hpp"

namespace ef::fuzz {

int efr_load(const std::uint8_t* data, std::size_t size) {
  std::istringstream in(std::string(reinterpret_cast<const char*>(data), size));
  core::RuleSystem system;
  try {
    system = core::RuleSystem::load(in);
  } catch (const std::runtime_error&) {
    return 0;  // the contract for hostile bytes: reject loudly, typed
  }

  // Accepted input must produce a fully serving-ready system: save/load
  // round-trips to the same rule count, and a forecast over an in-range
  // window neither crashes nor trips UB in the regression path.
  std::ostringstream saved;
  system.save(saved);
  std::istringstream reload(saved.str());
  core::RuleSystem again;
  try {
    again = core::RuleSystem::load(reload);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "efr_load invariant violated: save output rejected: %s\n", e.what());
    std::abort();
  }
  if (again.size() != system.size()) {
    std::fprintf(stderr, "efr_load invariant violated: save/load changed rule count\n");
    std::abort();
  }
  if (!system.empty()) {
    const std::vector<double> window(system.rules().front().window(), 0.5);
    (void)system.forecast(window);
  }
  return 0;
}

}  // namespace ef::fuzz
