#include "serve/protocol.hpp"

#include <cmath>
#include <cstdio>

#include "serve/json.hpp"

namespace ef::serve {
namespace {

/// Shortest round-trip double formatting (%.17g trims via %g).
std::string format_double(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

}  // namespace

std::optional<core::Aggregation> parse_aggregation(std::string_view name) {
  using core::Aggregation;
  for (const Aggregation a :
       {Aggregation::kMean, Aggregation::kFitnessWeighted, Aggregation::kMedian,
        Aggregation::kBestRule, Aggregation::kInverseError}) {
    if (name == core::to_string(a)) return a;
  }
  return std::nullopt;
}

std::optional<Request> parse_request(std::string_view line, std::string& error) {
  std::string parse_error;
  const std::optional<json::Value> root = json::parse(line, parse_error);
  if (!root) {
    error = "bad JSON: " + parse_error;
    return std::nullopt;
  }
  const json::Object* object = root->as_object();
  if (!object) {
    error = "request must be a JSON object";
    return std::nullopt;
  }

  Request request;
  for (const auto& [key, value] : *object) {
    if (key == "cmd") {
      const std::string* text = value.as_string();
      if (!text) {
        error = "\"cmd\" must be a string";
        return std::nullopt;
      }
      if (*text == "predict") {
        request.cmd = Request::Cmd::kPredict;
      } else if (*text == "ping") {
        request.cmd = Request::Cmd::kPing;
      } else if (*text == "models") {
        request.cmd = Request::Cmd::kModels;
      } else if (*text == "stats") {
        request.cmd = Request::Cmd::kStats;
      } else if (*text == "metrics") {
        request.cmd = Request::Cmd::kMetrics;
      } else if (*text == "events") {
        request.cmd = Request::Cmd::kEvents;
      } else if (*text == "trace") {
        request.cmd = Request::Cmd::kTrace;
      } else {
        error = "unknown cmd '" + *text + "'";
        return std::nullopt;
      }
    } else if (key == "model") {
      const std::string* text = value.as_string();
      if (!text) {
        error = "\"model\" must be a string";
        return std::nullopt;
      }
      request.predict.model = *text;
    } else if (key == "window") {
      const json::Array* array = value.as_array();
      if (!array) {
        error = "\"window\" must be an array of numbers";
        return std::nullopt;
      }
      request.predict.window.clear();
      request.predict.window.reserve(array->size());
      for (const json::Value& item : *array) {
        const double* num = item.as_number();
        if (!num) {
          error = "\"window\" must contain only numbers";
          return std::nullopt;
        }
        request.predict.window.push_back(*num);
      }
    } else if (key == "horizon") {
      const double* num = value.as_number();
      if (!num || *num < 1.0 || *num != std::floor(*num) || *num > 1.0e9) {
        error = "\"horizon\" must be a positive integer";
        return std::nullopt;
      }
      request.predict.horizon = static_cast<std::size_t>(*num);
    } else if (key == "agg") {
      const std::string* text = value.as_string();
      const auto agg = text ? parse_aggregation(*text) : std::nullopt;
      if (!agg) {
        error = "\"agg\" must be one of mean|fitness_weighted|median|best_rule|inverse_error";
        return std::nullopt;
      }
      request.predict.agg = *agg;
    } else if (key == "cache") {
      const bool* flag = value.as_bool();
      if (!flag) {
        error = "\"cache\" must be a boolean";
        return std::nullopt;
      }
      request.predict.use_cache = *flag;
    } else {
      error = "unknown field \"" + key + "\"";
      return std::nullopt;
    }
  }
  return request;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", static_cast<unsigned>(c));
          out += buffer;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string error_json(std::string_view reason) {
  return "{\"ok\":false,\"error\":\"" + json_escape(reason) + "\"}";
}

std::string to_json(const PredictResponse& response) {
  if (!response.ok) return error_json(response.error);
  std::string out = "{\"ok\":true";
  out += ",\"model\":\"" + json_escape(response.model) + "\"";
  out += ",\"version\":" + std::to_string(response.version);
  out += ",\"horizon\":" + std::to_string(response.horizon);
  out += ",\"abstain\":";
  out += response.abstain ? "true" : "false";
  if (!response.abstain) out += ",\"value\":" + format_double(response.value);
  out += ",\"votes\":" + std::to_string(response.votes);
  out += ",\"cached\":";
  out += response.cached ? "true" : "false";
  out += "}";
  return out;
}

}  // namespace ef::serve
