#include "baselines/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/rng.hpp"

namespace ef::baselines {

void MlpConfig::validate() const {
  if (learning_rate <= 0.0) throw std::invalid_argument("MlpConfig: learning_rate must be > 0");
  if (momentum < 0.0 || momentum >= 1.0) {
    throw std::invalid_argument("MlpConfig: momentum out of [0,1)");
  }
  if (lr_decay <= 0.0 || lr_decay > 1.0) {
    throw std::invalid_argument("MlpConfig: lr_decay out of (0,1]");
  }
  if (epochs == 0) throw std::invalid_argument("MlpConfig: epochs must be >= 1");
  for (const std::size_t h : hidden) {
    if (h == 0) throw std::invalid_argument("MlpConfig: hidden width must be >= 1");
  }
}

Mlp::Mlp(MlpConfig config) : config_(std::move(config)) { config_.validate(); }

void Mlp::forward(std::span<const double> input,
                  std::vector<std::vector<double>>& act) const {
  act.resize(weights_.size() + 1);
  act[0].assign(input.begin(), input.end());
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    act[l + 1].assign(weights_[l].rows(), 0.0);
    gemv(weights_[l], act[l], act[l + 1]);
    for (std::size_t i = 0; i < act[l + 1].size(); ++i) act[l + 1][i] += biases_[l][i];
    if (l + 1 < weights_.size()) {  // hidden layers are tanh; output is linear
      for (double& v : act[l + 1]) v = std::tanh(v);
    }
  }
}

void Mlp::standardize_input(std::span<const double> window, std::vector<double>& out) const {
  out.assign(window.begin(), window.end());
  if (input_mean_.empty()) return;
  for (std::size_t j = 0; j < out.size() && j < input_mean_.size(); ++j) {
    out[j] = (out[j] - input_mean_[j]) / input_sd_[j];
  }
}

void Mlp::fit(const core::WindowDataset& train) {
  const std::size_t d = train.window();
  util::Rng rng(config_.seed);

  // Fit per-dimension input statistics and target statistics on train.
  input_mean_.assign(d, 0.0);
  input_sd_.assign(d, 1.0);
  target_mean_ = 0.0;
  target_sd_ = 1.0;
  if (config_.standardize) {
    const auto n = static_cast<double>(train.count());
    for (std::size_t i = 0; i < train.count(); ++i) {
      const auto p = train.pattern(i);
      for (std::size_t j = 0; j < d; ++j) input_mean_[j] += p[j];
      target_mean_ += train.target(i);
    }
    for (double& m : input_mean_) m /= n;
    target_mean_ /= n;
    std::vector<double> var(d, 0.0);
    double tvar = 0.0;
    for (std::size_t i = 0; i < train.count(); ++i) {
      const auto p = train.pattern(i);
      for (std::size_t j = 0; j < d; ++j) {
        var[j] += (p[j] - input_mean_[j]) * (p[j] - input_mean_[j]);
      }
      tvar += (train.target(i) - target_mean_) * (train.target(i) - target_mean_);
    }
    for (std::size_t j = 0; j < d; ++j) {
      input_sd_[j] = var[j] > 0.0 ? std::sqrt(var[j] / n) : 1.0;
    }
    target_sd_ = tvar > 0.0 ? std::sqrt(tvar / n) : 1.0;
  } else {
    input_mean_.clear();  // sentinel: standardize_input becomes a copy
  }

  // Layer sizes: d → hidden… → 1.
  std::vector<std::size_t> sizes{d};
  sizes.insert(sizes.end(), config_.hidden.begin(), config_.hidden.end());
  sizes.push_back(1);

  weights_.clear();
  biases_.clear();
  for (std::size_t l = 0; l + 1 < sizes.size(); ++l) {
    Matrix w(sizes[l + 1], sizes[l]);
    // Xavier-style init keeps tanh pre-activations in the linear region.
    const double scale = std::sqrt(6.0 / static_cast<double>(sizes[l] + sizes[l + 1]));
    for (double& v : w.data()) v = rng.uniform(-scale, scale);
    weights_.push_back(std::move(w));
    biases_.emplace_back(sizes[l + 1], 0.0);
  }

  std::vector<Matrix> w_velocity;
  std::vector<std::vector<double>> b_velocity;
  for (std::size_t l = 0; l < weights_.size(); ++l) {
    w_velocity.emplace_back(weights_[l].rows(), weights_[l].cols());
    b_velocity.emplace_back(biases_[l].size(), 0.0);
  }

  std::vector<std::size_t> order(train.count());
  std::iota(order.begin(), order.end(), 0);

  std::vector<std::vector<double>> act;
  std::vector<std::vector<double>> delta(weights_.size());
  std::vector<double> x_std;
  double lr = config_.learning_rate;

  for (std::size_t epoch = 0; epoch < config_.epochs; ++epoch) {
    if (config_.shuffle) {
      // Fisher-Yates with the library RNG (std::shuffle's draws are
      // implementation-defined; this keeps runs bit-reproducible).
      for (std::size_t i = order.size(); i-- > 1;) {
        std::swap(order[i], order[rng.index(i + 1)]);
      }
    }

    double sq_err_sum = 0.0;
    for (const std::size_t s : order) {
      standardize_input(train.pattern(s), x_std);
      forward(x_std, act);
      const double y = act.back()[0];
      const double err = y - (train.target(s) - target_mean_) / target_sd_;
      sq_err_sum += err * err;

      // Backward pass. delta[l] = dLoss/d(pre-activation of layer l+1).
      delta.back().assign(1, err);  // linear output, squared loss (½e²)
      for (std::size_t l = weights_.size() - 1; l-- > 0;) {
        delta[l].assign(weights_[l].rows(), 0.0);
        gemv_t(weights_[l + 1], delta[l + 1], delta[l]);
        for (std::size_t i = 0; i < delta[l].size(); ++i) {
          const double a = act[l + 1][i];  // tanh' = 1 − tanh²
          delta[l][i] *= 1.0 - a * a;
        }
      }

      // SGD with momentum: v ← μ·v − lr·grad; w ← w + v.
      for (std::size_t l = 0; l < weights_.size(); ++l) {
        for (std::size_t r = 0; r < weights_[l].rows(); ++r) {
          const double dl = delta[l][r];
          auto w_row = weights_[l].row(r);
          auto v_row = w_velocity[l].row(r);
          for (std::size_t c = 0; c < weights_[l].cols(); ++c) {
            v_row[c] = config_.momentum * v_row[c] - lr * dl * act[l][c];
            w_row[c] += v_row[c];
          }
          b_velocity[l][r] = config_.momentum * b_velocity[l][r] - lr * dl;
          biases_[l][r] += b_velocity[l][r];
        }
      }
    }
    // Report the training MSE in raw target units.
    final_train_mse_ =
        sq_err_sum / static_cast<double>(train.count()) * target_sd_ * target_sd_;
    lr *= config_.lr_decay;
  }
  fitted_ = true;
}

double Mlp::predict(std::span<const double> window) const {
  if (!fitted_) throw std::logic_error("Mlp::predict before fit");
  std::vector<double> x_std;
  standardize_input(window, x_std);
  std::vector<std::vector<double>> act;
  forward(x_std, act);
  return act.back()[0] * target_sd_ + target_mean_;
}

}  // namespace ef::baselines
