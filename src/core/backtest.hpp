// backtest.hpp — walk-forward evaluation for abstaining forecasters.
//
// A single chronological train/validation split (what the paper reports) is
// one draw; a production user wants the error *distribution* over time.
// Walk-forward backtesting slides an origin through the series: train on
// everything before the origin (expanding, or a fixed-width rolling window)
// and evaluate on the next `fold_size` samples, repeat. Coverage-aware
// metrics per fold plus aggregates.
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "core/rule_system.hpp"
#include "series/metrics.hpp"
#include "series/timeseries.hpp"
#include "util/thread_pool.hpp"

namespace ef::core {

struct BacktestOptions {
  std::size_t window = 24;       ///< D
  std::size_t horizon = 1;       ///< τ
  std::size_t stride = 1;        ///< embedding stride
  std::size_t initial_train = 0; ///< samples before the first origin (0 = half the series)
  std::size_t fold_size = 0;     ///< evaluation span per fold (0 = remaining/4 folds)
  bool rolling = false;          ///< true: fixed-width train window; false: expanding
  std::size_t max_folds = 16;    ///< safety cap
};

struct BacktestFold {
  std::size_t origin = 0;  ///< first evaluated sample index in the full series
  series::CoverageReport report;
  std::size_t rules = 0;
};

struct BacktestResult {
  std::vector<BacktestFold> folds;
  /// Pooled over all folds (weighted by covered counts).
  double mean_coverage_percent = 0.0;
  double pooled_rmse = 0.0;
  double pooled_mae = 0.0;
};

/// Run the walk-forward backtest of the rule system over `series`.
/// Throws std::invalid_argument when the series cannot produce at least one
/// fold with one training window.
[[nodiscard]] BacktestResult backtest_rule_system(const series::TimeSeries& series,
                                                  const RuleSystemConfig& config,
                                                  const BacktestOptions& options = {},
                                                  util::ThreadPool* pool = nullptr);

}  // namespace ef::core
