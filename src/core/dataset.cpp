#include "core/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace ef::core {

WindowDataset::WindowDataset(const series::TimeSeries& s, std::size_t window,
                             std::size_t horizon, std::size_t stride)
    : values_(s.values().begin(), s.values().end()),
      window_(window),
      horizon_(horizon),
      stride_(stride) {
  if (window == 0) throw std::invalid_argument("WindowDataset: window must be > 0");
  if (stride == 0) throw std::invalid_argument("WindowDataset: stride must be > 0");
  const std::size_t reach = (window - 1) * stride + horizon;  // last index offset
  if (s.size() < reach + 1) {
    throw std::invalid_argument("WindowDataset: series of size " + std::to_string(s.size()) +
                                " too short for window " + std::to_string(window) +
                                ", stride " + std::to_string(stride) + " and horizon " +
                                std::to_string(horizon));
  }
  count_ = s.size() - reach;

  patterns_.resize(count_ * window_);
  lag_major_.resize(count_ * window_);
  targets_.resize(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    for (std::size_t j = 0; j < window_; ++j) {
      const double v = values_[i + j * stride_];
      patterns_[i * window_ + j] = v;
      lag_major_[j * count_ + i] = v;
    }
    targets_[i] = values_[i + reach];
  }

  value_min_ = *std::min_element(values_.begin(), values_.end());
  value_max_ = *std::max_element(values_.begin(), values_.end());
  target_min_ = *std::min_element(targets_.begin(), targets_.end());
  target_max_ = *std::max_element(targets_.begin(), targets_.end());

  // Quantized mirror for the prefilter kernel: a monotone map of the value
  // range onto [0, 255]. The kernel relaxes gene bounds through the same
  // map, so the byte scan can only over-accept — never drop — a window, and
  // its survivors are re-verified in double precision.
  qinv_ = value_max_ > value_min_ ? 255.0 / (value_max_ - value_min_) : 0.0;
  lag_major_q_.resize(count_ * window_);
  for (std::size_t k = 0; k < lag_major_.size(); ++k) {
    lag_major_q_[k] = quantize_value(lag_major_[k], value_min_, qinv_);
  }
  // Row-major quantized mirror for the rule-major batched kernel, which
  // streams one window's bytes against the byte planes of the whole rule set.
  patterns_q_.resize(count_ * window_);
  for (std::size_t k = 0; k < patterns_.size(); ++k) {
    patterns_q_[k] = quantize_value(patterns_[k], value_min_, qinv_);
  }
}

}  // namespace ef::core
