#include "series/significance.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace ef::series {
namespace {

/// log C(n, k) via lgamma — stable for large n.
[[nodiscard]] double log_choose(std::size_t n, std::size_t k) {
  return std::lgamma(static_cast<double>(n) + 1.0) -
         std::lgamma(static_cast<double>(k) + 1.0) -
         std::lgamma(static_cast<double>(n - k) + 1.0);
}

/// Standard normal two-sided tail probability for |z|.
[[nodiscard]] double normal_two_sided_p(double z) {
  return std::erfc(std::abs(z) / std::sqrt(2.0));
}

}  // namespace

double sign_test_p(std::size_t wins, std::size_t losses) {
  const std::size_t n = wins + losses;
  if (n == 0) return 1.0;
  const std::size_t k = std::min(wins, losses);
  // Two-sided: 2 · P(X <= k) under Binomial(n, 1/2), capped at 1.
  const double log_half_n = -static_cast<double>(n) * std::log(2.0);
  double tail = 0.0;
  for (std::size_t i = 0; i <= k; ++i) {
    tail += std::exp(log_choose(n, i) + log_half_n);
  }
  return std::min(1.0, 2.0 * tail);
}

double wilcoxon_signed_rank_p(std::span<const double> differences) {
  // Collect non-zero |d| with their signs.
  std::vector<std::pair<double, int>> entries;  // (|d|, sign)
  for (const double d : differences) {
    if (d > 0.0) entries.emplace_back(d, +1);
    if (d < 0.0) entries.emplace_back(-d, -1);
  }
  const std::size_t n = entries.size();
  if (n < 2) return 1.0;

  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  // Average ranks for ties; accumulate the positive-rank sum W+ and the tie
  // correction Σ(t³ − t).
  double w_plus = 0.0;
  double tie_correction = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && entries[j].first == entries[i].first) ++j;
    const auto t = static_cast<double>(j - i);
    const double average_rank = 0.5 * (static_cast<double>(i + 1) + static_cast<double>(j));
    for (std::size_t k = i; k < j; ++k) {
      if (entries[k].second > 0) w_plus += average_rank;
    }
    tie_correction += t * t * t - t;
    i = j;
  }

  const auto nd = static_cast<double>(n);
  const double mean = nd * (nd + 1.0) / 4.0;
  const double variance = nd * (nd + 1.0) * (2.0 * nd + 1.0) / 24.0 - tie_correction / 48.0;
  if (variance <= 0.0) return 1.0;  // all values tied: no information
  // Continuity correction toward the mean.
  const double delta = w_plus - mean;
  const double corrected = delta > 0.5 ? delta - 0.5 : (delta < -0.5 ? delta + 0.5 : 0.0);
  return normal_two_sided_p(corrected / std::sqrt(variance));
}

PairedComparison compare_paired_errors(std::span<const double> abs_err_a,
                                       std::span<const double> abs_err_b) {
  if (abs_err_a.size() != abs_err_b.size()) {
    throw std::invalid_argument("compare_paired_errors: size mismatch");
  }
  if (abs_err_a.empty()) {
    throw std::invalid_argument("compare_paired_errors: empty input");
  }
  PairedComparison result;
  std::vector<double> differences;
  differences.reserve(abs_err_a.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < abs_err_a.size(); ++i) {
    const double d = abs_err_a[i] - abs_err_b[i];
    differences.push_back(d);
    sum += d;
    if (d < 0.0) {
      ++result.a_wins;
    } else if (d > 0.0) {
      ++result.b_wins;
    } else {
      ++result.ties;
    }
  }
  result.mean_diff = sum / static_cast<double>(abs_err_a.size());
  result.sign_p = sign_test_p(result.a_wins, result.b_wins);
  result.wilcoxon_p = wilcoxon_signed_rank_p(differences);
  return result;
}

}  // namespace ef::series
