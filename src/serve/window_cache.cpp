#include "serve/window_cache.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/macros.hpp"

namespace ef::serve {
namespace {

/// Saturating quantization: |v|/quantum beyond int64 range clamps to the
/// extremes instead of overflowing into UB.
std::int64_t quantize(double v, double quantum) noexcept {
  const double q = v / quantum;
  constexpr double kLimit = 9.0e18;
  if (q >= kLimit) return std::numeric_limits<std::int64_t>::max();
  if (q <= -kLimit) return std::numeric_limits<std::int64_t>::min();
  if (std::isnan(q)) return 0;
  return static_cast<std::int64_t>(std::llround(q));
}

}  // namespace

std::size_t WindowCache::KeyHash::operator()(const Key& key) const noexcept {
  // FNV-1a over the key's fixed fields and quantized values.
  std::uint64_t h = 1469598103934665603ULL;
  const auto fold = [&h](std::uint64_t x) {
    for (int i = 0; i < 8; ++i) {
      h ^= (x >> (i * 8)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  fold(key.model_tag);
  fold((static_cast<std::uint64_t>(key.horizon) << 8) | key.agg);
  for (const std::int64_t q : key.qwindow) fold(static_cast<std::uint64_t>(q));
  return static_cast<std::size_t>(h);
}

WindowCache::WindowCache(CacheConfig config) : config_(config) {
  if (config_.shards == 0) throw std::invalid_argument("WindowCache: shards must be > 0");
  if (config_.capacity == 0) throw std::invalid_argument("WindowCache: capacity must be > 0");
  if (!(config_.quantum > 0.0)) {
    throw std::invalid_argument("WindowCache: quantum must be > 0");
  }
  config_.shards = std::min(config_.shards, config_.capacity);
  per_shard_capacity_ = (config_.capacity + config_.shards - 1) / config_.shards;
  shards_ = std::vector<Shard>(config_.shards);
}

WindowCache::Key WindowCache::make_key(std::uint64_t model_tag, std::uint32_t horizon,
                                       core::Aggregation agg,
                                       std::span<const double> window) const {
  Key key;
  key.model_tag = model_tag;
  key.horizon = horizon;
  key.agg = static_cast<std::uint8_t>(agg);
  key.qwindow.reserve(window.size());
  for (const double v : window) key.qwindow.push_back(quantize(v, config_.quantum));
  return key;
}

WindowCache::Shard& WindowCache::shard_of(const Key& key) {
  return shards_[KeyHash{}(key) % shards_.size()];
}

std::optional<WindowCache::Value> WindowCache::get(const Key& key) {
  Shard& shard = shard_of(key);
  const std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    ++shard.misses;
    EVOFORECAST_COUNT("serve.cache.misses", 1);
    return std::nullopt;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  ++shard.hits;
  EVOFORECAST_COUNT("serve.cache.hits", 1);
  return it->second->second;
}

void WindowCache::put(Key key, Value value) {
  Shard& shard = shard_of(key);
  const std::lock_guard lock(shard.mutex);
  const auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->second = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.map.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
    EVOFORECAST_COUNT("serve.cache.evictions", 1);
    // Eviction pressure into the flight recorder, heavily sampled: one
    // event per 1024 evictions per shard, so a thrashing cache is visible
    // without the event ring becoming an eviction ticker.
    if ((shard.evictions & 1023) == 1) {
      EVOFORECAST_EVENT("serve.cache.pressure", {"shard_evictions", shard.evictions},
                        {"entries", shard.lru.size()});
    }
  }
  shard.lru.emplace_front(std::move(key), value);
  shard.map.emplace(shard.lru.front().first, shard.lru.begin());
  ++shard.insertions;
}

WindowCache::Stats WindowCache::stats() const {
  Stats out;
  for (const Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    out.hits += shard.hits;
    out.misses += shard.misses;
    out.insertions += shard.insertions;
    out.evictions += shard.evictions;
    out.entries += shard.lru.size();
  }
  return out;
}

void WindowCache::clear() {
  for (Shard& shard : shards_) {
    const std::lock_guard lock(shard.mutex);
    shard.map.clear();
    shard.lru.clear();
  }
}

}  // namespace ef::serve
