// obs/timeline_export.hpp — Chrome trace-event JSON export of the timeline.
//
// Renders a TimelineSnapshot as the Chrome trace-event format ("JSON object
// format" with a traceEvents array), which both Perfetto
// (https://ui.perfetto.dev) and chrome://tracing open directly. Export is
// where sampling is enforced: a trace appears in the output when its head
// sample drew in (span.sampled) OR it was force-kept by Timeline::mark_slow
// — the slow-request exemplar path. Spans whose parent has already been
// overwritten in the ring are re-parented to the trace root so every
// exported parent id resolves.
//
// These functions are cold-path and compiled unconditionally; under
// EVOFORECAST_OBS=OFF they see only empty snapshots.
#pragma once

#include <string>

#include "obs/timeline.hpp"

namespace ef::obs {

/// Render `snapshot` as a Chrome trace-event JSON document.
[[nodiscard]] std::string to_chrome_trace_json(const TimelineSnapshot& snapshot);

/// Snapshot the live timeline and render it.
[[nodiscard]] std::string chrome_trace_json();

/// Snapshot the live timeline and write it to `path`. Returns false when the
/// file cannot be opened/written.
bool write_chrome_trace_file(const std::string& path);

}  // namespace ef::obs
