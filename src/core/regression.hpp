// regression.hpp — least-squares hyperplane fit for a rule's predicting part.
//
// Paper §3.1: the prediction of a rule is the hyperplane
//   ṽ = a0·x_i + a1·x_{i+1} + … + a_{D-1}·x_{i+D-1} + a_D
// fitted over all training windows the rule matches; the rule's error e is
// the maximum absolute residual of that fit. We solve the normal equations
// with a Cholesky factorisation; a tiny ridge term keeps the system
// well-posed when matched windows are collinear (common for very specific
// rules that match a handful of near-identical windows), and the constant
// (mean) fit serves as the final fallback.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/dataset.hpp"

namespace ef::core {

/// Fitted affine model over D inputs: coeffs has D+1 entries, the last one
/// the intercept a_D.
struct LinearFit {
  std::vector<double> coeffs;
  double max_abs_residual = 0.0;  ///< the paper's rule error e_R
  double mean_prediction = 0.0;   ///< mean of fitted values (phenotype summary)
  bool degenerate = false;        ///< true when the constant fallback was used

  /// Evaluate the hyperplane on a window of D values.
  [[nodiscard]] double predict(std::span<const double> window) const noexcept;
};

/// Options for the solver.
struct RegressionOptions {
  /// Ridge weight λ added to the normal-matrix diagonal (relative to its
  /// trace). 0 disables regularisation.
  double ridge = 1e-8;
  /// Fall back to the constant (mean) model when fewer than D+2 samples are
  /// available — fewer samples than unknowns always interpolates, which
  /// makes e_R = 0 and lets trivially-specific rules look perfect.
  bool constant_fallback_when_underdetermined = true;
};

/// Fit the hyperplane over the subset `rows` of `data`'s patterns.
/// Throws std::invalid_argument when rows is empty.
[[nodiscard]] LinearFit fit_hyperplane(const WindowDataset& data,
                                       std::span<const std::size_t> rows,
                                       const RegressionOptions& options = {});

/// Generic interface (used by tests and the baselines): fit over explicit
/// row vectors. Each row of `x` must have the same length; `y.size()` must
/// equal `x.size()`.
[[nodiscard]] LinearFit fit_hyperplane(const std::vector<std::vector<double>>& x,
                                       std::span<const double> y,
                                       const RegressionOptions& options = {});

/// Solve the symmetric positive-definite system A·w = b in place via
/// Cholesky; returns false when A is not (numerically) SPD. Exposed for the
/// baselines' use and for direct unit testing. `a` is row-major n×n.
[[nodiscard]] bool solve_spd_inplace(std::vector<double>& a, std::vector<double>& b,
                                     std::size_t n);

}  // namespace ef::core
