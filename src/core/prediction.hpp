// prediction.hpp — the value type every forecast entry point returns.
//
// A Michigan rule system can legitimately decline to answer: a window matched
// by no rule is an *abstention* (the flip side of the paper's coverage
// metric), and downstream layers care how many rules voted (fan-in drives
// the serve layer's uncertainty heuristics and the ablation benches). This
// struct carries all three facts at once so callers stop re-deriving them —
// previously abstention travelled as std::optional, votes as an out-param,
// and the pair was re-assembled in at least four places.
#pragma once

#include <cstddef>
#include <optional>

namespace ef::core {

/// One forecast: the aggregated value, how many rules voted, and whether the
/// system abstained (no rule matched — `value` is meaningless then).
struct Prediction {
  double value = 0.0;
  std::size_t votes = 0;
  bool abstained = true;
  /// Interval half-width from the voters' training errors:
  ///   bound = max_k ( e_k + |v_k − value| )
  /// so [value − bound, value + bound] is the paper's prediction interval
  /// (exact in-sample, ≥ ~90 % containment held-out — see
  /// RuleSystem::predict_with_bound). Negative = no bound available (an
  /// abstention, or a path that cannot compose one, e.g. iterated
  /// multi-step chains).
  double bound = -1.0;

  /// True when at least one rule matched (the forecast is usable).
  [[nodiscard]] bool matched() const noexcept { return !abstained; }

  /// The pre-redesign shape, for callers that want optional semantics.
  [[nodiscard]] std::optional<double> as_optional() const noexcept {
    if (abstained) return std::nullopt;
    return value;
  }
};

}  // namespace ef::core
