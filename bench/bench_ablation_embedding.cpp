// bench_ablation_embedding — Ablation E: how much does the input embedding
// matter at long horizons? The paper encodes D *consecutive* values (stride
// 1); the Mackey-Glass comparators it quotes use a sparse delay embedding
// (4 values spaced 6 apart). This bench sweeps (D, stride) on MG τ = 50 at a
// fixed evolution budget — motivating the stride generalisation this library
// adds to the paper's encoding (DESIGN.md §5).
#include <cstdio>

#include "bench_common.hpp"
#include "core/rule_system.hpp"
#include "series/mackey_glass.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full");
  const auto horizon = static_cast<std::size_t>(cli.get_int("horizon", 50));
  const auto generations =
      static_cast<std::size_t>(cli.get_int("generations", full ? 40000 : 12000));

  std::printf("Ablation E — window/stride embedding (Mackey-Glass, tau=%zu)\n", horizon);
  ef::bench::print_rule('=');

  const auto experiment = ef::series::make_paper_mackey_glass();

  struct Variant {
    std::size_t window;
    std::size_t stride;
  };
  // span = (D−1)·stride: how much history the condition sees.
  const Variant variants[] = {
      {4, 1},   // paper-style consecutive, short span (3)
      {4, 6},   // the comparators' classic embedding (span 18)
      {4, 12},  // sparser, longer span (36)
      {8, 3},   // denser mid-span (21)
      {18, 1},  // consecutive with the same span as {4,6}
      {24, 1},  // the paper's Venice/sunspot D, consecutive (span 23)
  };

  std::printf("%3s %7s %6s | %8s %9s %9s %7s\n", "D", "stride", "span", "cov%", "nmse",
              "rmse", "rules");
  ef::bench::print_rule();

  for (const Variant& v : variants) {
    const ef::core::WindowDataset train(experiment.train, v.window, horizon, v.stride);
    const ef::core::WindowDataset test(experiment.test, v.window, horizon, v.stride);

    ef::core::RuleSystemConfig cfg;
    cfg.evolution.population_size = 100;
    cfg.evolution.generations = generations;
    cfg.evolution.emax = 0.14;
    cfg.evolution.seed = 17;
    cfg.coverage_target_percent = 78.0;
    cfg.max_executions = 3;

    const auto rs = ef::bench::run_rule_system(train, test, cfg);
    std::printf("%3zu %7zu %6zu | %7.1f%% %9.4f %9.4f %7zu\n", v.window, v.stride,
                (v.window - 1) * v.stride, rs.report.coverage_percent, rs.report.nmse,
                rs.report.rmse, rs.rules);
    std::fflush(stdout);
  }

  ef::bench::print_rule();
  std::printf(
      "Expected shape: consecutive short windows (D=4, stride 1) carry too little\n"
      "history for tau=50 and lose badly; the sparse classic embedding (4x6) matches\n"
      "or beats dense consecutive windows of the same span at a fraction of the\n"
      "dimensionality (fewer genes -> easier evolution).\n");
  ef::obs::emit_cli_report(cli);
  return 0;
}
