#include "core/compaction.hpp"

#include <cmath>
#include <limits>
#include <vector>

namespace ef::core {

bool condition_subsumed(const Rule& inner, const Rule& outer) {
  if (inner.window() != outer.window()) return false;
  for (std::size_t j = 0; j < inner.window(); ++j) {
    if (!inner.genes()[j].subset_of(outer.genes()[j])) return false;
  }
  return true;
}

namespace {

[[nodiscard]] bool same_genes(const Rule& a, const Rule& b) {
  if (a.window() != b.window()) return false;
  for (std::size_t j = 0; j < a.window(); ++j) {
    if (!(a.genes()[j] == b.genes()[j])) return false;
  }
  return true;
}

}  // namespace

RuleSystem compact(const RuleSystem& system, CompactionReport& report,
                   const CompactionOptions& options, const WindowDataset* reference) {
  report = CompactionReport{};
  report.input_rules = system.size();

  const auto& rules = system.rules();
  std::vector<bool> dropped(rules.size(), false);

  // Pass 1: exact duplicates (keep the first occurrence — highest-fitness
  // copies are interchangeable since genes determine the refit).
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (dropped[i]) continue;
    for (std::size_t j = i + 1; j < rules.size(); ++j) {
      if (!dropped[j] && same_genes(rules[i], rules[j])) {
        dropped[j] = true;
        ++report.duplicates_removed;
      }
    }
  }

  // Pass 2: subsumption. The *subsumed* (inner) rule is removed only when a
  // surviving outer rule predicts essentially the same value, so every
  // window the inner rule served keeps a voter.
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (dropped[i] || !rules[i].predicting()) continue;
    for (std::size_t j = 0; j < rules.size(); ++j) {
      if (i == j || dropped[j] || !rules[j].predicting()) continue;
      if (!condition_subsumed(rules[i], rules[j])) continue;
      // Same box both ways = same acceptance set; keep the lower index.
      if (condition_subsumed(rules[j], rules[i]) && j < i) continue;
      const double gap = std::abs(rules[i].predicting()->prediction() -
                                  rules[j].predicting()->prediction());
      if (gap <= options.prediction_tolerance) {
        dropped[i] = true;
        ++report.subsumed_removed;
        break;
      }
    }
  }

  // Pass 3: rules that never fire on the reference dataset.
  if (options.drop_unfired && reference) {
    for (std::size_t i = 0; i < rules.size(); ++i) {
      if (dropped[i]) continue;
      bool fires = false;
      for (std::size_t w = 0; w < reference->count() && !fires; ++w) {
        fires = rules[i].matches(reference->pattern(w));
      }
      if (!fires) {
        dropped[i] = true;
        ++report.unfired_removed;
      }
    }
  }

  RuleSystem out;
  std::vector<Rule> kept;
  for (std::size_t i = 0; i < rules.size(); ++i) {
    if (!dropped[i]) kept.push_back(rules[i]);
  }
  out.add_rules(std::move(kept), /*discard_unfit=*/false,
                -std::numeric_limits<double>::infinity());
  return out;
}

}  // namespace ef::core
