// crowding.hpp — phenotypic-distance replacement (paper §3.3).
//
// The offspring "replaces the nearest individual … in phenotypic distance,
// i.e. the individual … that makes predictions on similar zones in the
// prediction space", and only if fitter — De Jong-style crowding, used here
// to keep the population spread over the whole prediction space. The paper
// does not pin down the distance; three readings are implemented and
// compared in Ablation B (see DESIGN.md §5.2).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/config.hpp"
#include "core/dataset.hpp"
#include "core/rule.hpp"
#include "util/rng.hpp"

namespace ef::core {

/// Distance between two rules under `metric`.
///  * kPrediction: |p_A − p_B| over the scalar prediction value; requires
///    both rules evaluated (throws std::logic_error otherwise).
///  * kConditionOverlap: 1 − mean per-gene overlap fraction of the condition
///    boxes (wildcards span the dataset's value range).
///  * kMatchedJaccard: 1 − |A∩B|/|A∪B| over matched training-window index
///    sets, which must be supplied sorted ascending.
[[nodiscard]] double phenotypic_distance(const Rule& a, const Rule& b, DistanceMetric metric,
                                         const WindowDataset& data,
                                         std::span<const std::size_t> matched_a = {},
                                         std::span<const std::size_t> matched_b = {});

/// Jaccard distance 1 − |a∩b|/|a∪b| of two ascending index sets (both empty
/// → distance 0: two rules matching nothing predict the same — nothing).
[[nodiscard]] double jaccard_distance(std::span<const std::size_t> a,
                                      std::span<const std::size_t> b) noexcept;

/// Index of the population member nearest to `offspring` under `metric`.
/// `matched_population[i]` / `matched_offspring` are consulted only for the
/// Jaccard metric (pass empty otherwise). Ties resolve to the lowest index.
/// Throws std::invalid_argument on an empty population.
[[nodiscard]] std::size_t nearest_individual(
    std::span<const Rule> population, const Rule& offspring, DistanceMetric metric,
    const WindowDataset& data,
    std::span<const std::vector<std::size_t>> matched_population = {},
    std::span<const std::size_t> matched_offspring = {});

/// Victim slot for the configured replacement strategy (Ablation B):
/// crowding → nearest; replace-worst → lowest fitness; random → uniform.
[[nodiscard]] std::size_t choose_victim(std::span<const Rule> population,
                                        const Rule& offspring, const EvolutionConfig& config,
                                        const WindowDataset& data, util::Rng& rng,
                                        std::span<const std::vector<std::size_t>> matched_population = {},
                                        std::span<const std::size_t> matched_offspring = {});

}  // namespace ef::core
