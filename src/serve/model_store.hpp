// serve/model_store.hpp — named, versioned rule-system models with atomic
// hot-reload.
//
// The serving layer must swap a model from disk without dropping or blocking
// in-flight requests. The store keeps each model as a
// std::shared_ptr<const LoadedModel>; readers copy the pointer under a brief
// mutex (RCU-style: the swap is atomic from the reader's perspective, and a
// request that grabbed the old version keeps it alive until its last
// reference drops). A poller thread stats the backing .efr files and
// reloads on mtime change; a reload that fails to parse keeps the previous
// version serving and only bumps a failure counter — a half-written file
// never takes down a model. Writers should still publish atomically
// (write temp + rename) to avoid serving a torn intermediate version.
//
// Fleet scale uses a *container* instead of per-model files: one `.efr` v2
// file (fleet/container.hpp) backs every series. The store keeps the mapped
// reader plus a lazy cache of materialised models behind one RCU-swapped
// snapshot; get() falls through the named entries to the container, so a
// million-series fleet serves through the same API as two named models.
// Reload cost collapses with it: the poller stats the one container file
// per tick — not one stat per model per tick — and a repack (atomic rename)
// swaps the entire fleet in a single pointer exchange, old snapshot pinned
// by in-flight requests until the last reference drops.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "core/prediction.hpp"
#include "core/rule_index.hpp"
#include "core/rule_system.hpp"
#include "fleet/container.hpp"

namespace ef::serve {

/// One immutable, serving-ready model version: the rule system plus a
/// pre-built query index and the metadata the service needs to validate and
/// cache requests. Never mutated after construction — hot-reload replaces
/// the whole object.
class LoadedModel {
 public:
  /// Build a serving-ready snapshot. `tag` must be process-unique (the
  /// store's monotone counter); it keys the prediction cache so entries of
  /// a replaced version can never serve a newer one.
  [[nodiscard]] static std::shared_ptr<const LoadedModel> make(core::RuleSystem system,
                                                               std::string name,
                                                               std::uint64_t version,
                                                               std::uint64_t tag);

  [[nodiscard]] const core::RuleSystem& system() const noexcept { return system_; }
  /// Query index over the rule set; absent when the system is empty or its
  /// genes give no finite value range to bucket.
  [[nodiscard]] const std::optional<core::RuleIndex>& index() const noexcept { return index_; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  /// Per-name reload generation (1 = first load).
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }
  /// Process-unique identity of this exact snapshot (cache key component).
  [[nodiscard]] std::uint64_t tag() const noexcept { return tag_; }
  /// Window length D every rule expects (0 when the system is empty).
  [[nodiscard]] std::size_t window() const noexcept { return window_; }

  /// One forecast through the index when available, full scan otherwise.
  /// Value, vote count and abstention arrive together — nothing to re-derive.
  [[nodiscard]] core::Prediction forecast(
      std::span<const double> window,
      core::Aggregation how = core::Aggregation::kMean) const;

 private:
  LoadedModel() = default;

  core::RuleSystem system_;
  std::optional<core::RuleIndex> index_;  // references system_; built after it settles
  std::string name_;
  std::uint64_t version_ = 0;
  std::uint64_t tag_ = 0;
  std::size_t window_ = 0;
};

/// Thread-safe registry of named models with optional file backing and
/// mtime-driven hot-reload.
class ModelStore {
 public:
  ModelStore() = default;
  ~ModelStore();

  ModelStore(const ModelStore&) = delete;
  ModelStore& operator=(const ModelStore&) = delete;

  /// Register a model from a .efr file; loads immediately and throws
  /// std::runtime_error when the file is missing or malformed. Re-adding an
  /// existing name replaces it (version continues from the old one).
  void add_file(const std::string& name, const std::string& path);

  /// Register an in-memory system (tests, demo mode). Not file-backed, so
  /// the poller ignores it.
  void add_system(const std::string& name, core::RuleSystem system);

  /// Attach (or replace) the `.efr` v2 container backing the store's
  /// fallthrough namespace. Opens and validates the file immediately;
  /// throws std::runtime_error on a malformed container. Named entries
  /// always shadow container series of the same id.
  void attach_container(const std::string& path);

  [[nodiscard]] bool has_container() const;

  /// Point-in-time summary of the attached container (nullopt when none).
  struct ContainerInfo {
    std::string path;
    std::size_t models = 0;       ///< series resident in the container
    std::size_t bytes = 0;        ///< mapped file size
    std::uint64_t generation = 0; ///< bumps on every successful reload
    std::size_t materialized = 0; ///< series served (and cached) so far
  };
  [[nodiscard]] std::optional<ContainerInfo> container_info() const;

  /// Container series ids in index (sorted) order; `limit` 0 = all.
  [[nodiscard]] std::vector<std::string> container_ids(std::size_t limit = 0) const;

  /// Current snapshot of `name`; nullptr when unknown. Checks named entries
  /// first, then the attached container (materialising — and caching — the
  /// series on first use). The returned pointer stays valid (and the model
  /// alive) for as long as the caller holds it, across any number of
  /// hot-reloads.
  [[nodiscard]] std::shared_ptr<const LoadedModel> get(std::string_view name) const;

  [[nodiscard]] std::vector<std::string> names() const;
  [[nodiscard]] std::size_t size() const;

  /// Check every file-backed model's mtime — plus ONE stat for the whole
  /// container, however many series it holds — and reload what changed.
  /// Returns the number of successful reloads (a container swap counts as
  /// one). A file that fails to parse keeps its current version serving
  /// (counted in serve.model.reload_failures).
  std::size_t poll_now();

  /// Start/stop the background poller calling poll_now() every `interval`.
  void start_polling(std::chrono::milliseconds interval);
  void stop_polling();

 private:
  struct Entry {
    std::shared_ptr<const LoadedModel> model;
    std::string path;  ///< empty for in-memory models
    std::filesystem::file_time_type mtime{};
  };

  /// One immutable container generation: the mapped reader plus the lazy
  /// materialisation cache. Swapped wholesale on reload (the fresh state
  /// starts with an empty cache; in-flight requests pin the old one).
  struct ContainerState {
    fleet::FleetReader reader;
    std::string path;
    std::uint64_t generation = 1;
    std::filesystem::file_time_type mtime{};
    mutable std::mutex cache_mutex;
    mutable std::map<std::string, std::shared_ptr<const LoadedModel>, std::less<>> cache;
  };

  mutable std::mutex mutex_;  ///< guards entries_ map shape and pointer swaps
  std::map<std::string, Entry, std::less<>> entries_;
  std::shared_ptr<ContainerState> container_;  ///< RCU-swapped under mutex_
  /// Container mtime whose open() failed — skip retrying until it changes
  /// again (the per-file loaders get the same no-rehammer behaviour from
  /// their recorded Entry::mtime).
  std::filesystem::file_time_type container_failed_mtime_{};
  mutable std::atomic<std::uint64_t> next_tag_{1};

  std::thread poller_;
  std::mutex poll_mutex_;
  std::condition_variable poll_cv_;
  bool poll_stop_ = false;
};

}  // namespace ef::serve
