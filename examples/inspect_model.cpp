// inspect_model — command-line inspector for saved rule systems (.efr).
//
//   inspect_model --model rules.efr [--top 15] [--series data.csv
//                 --window 12 --horizon 1] [--encode]
//
// Prints the describe() summary; with --series, additionally reports
// coverage and coverage-aware errors of the saved model against that series
// and the per-rule vote counts. With --encode, dumps every rule in the
// paper's §3.1 flat text form. Without --model it trains a small demo model
// first so the example always runs out of the box.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/introspection.hpp"
#include "core/rule_index.hpp"
#include "core/rule_system.hpp"
#include "obs/run_report.hpp"
#include "series/csv.hpp"
#include "series/metrics.hpp"
#include "series/synthetic.hpp"
#include "util/cli.hpp"

namespace {

ef::core::RuleSystem demo_model() {
  std::printf("no --model given; training a demo system on a noisy sine...\n");
  const auto s = ef::series::generate_sine(1500, {1.0, 25.0, 0.0, 0.0, 0.05, 9});
  const ef::core::WindowDataset train(s, 6, 1);
  ef::core::RuleSystemConfig cfg;
  cfg.evolution.population_size = 50;
  cfg.evolution.generations = 3000;
  cfg.evolution.emax = 0.25;
  cfg.evolution.seed = 12;
  cfg.max_executions = 2;
  cfg.coverage_target_percent = 95.0;
  return ef::core::train(train, {.config = cfg}).system;
}

}  // namespace

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);

  ef::core::RuleSystem system = [&] {
    if (const auto path = cli.get("model")) {
      std::ifstream in(*path);
      if (!in) {
        std::fprintf(stderr, "cannot open model file '%s'\n", path->c_str());
        std::exit(1);
      }
      return ef::core::RuleSystem::load(in);
    }
    return demo_model();
  }();

  const auto top = static_cast<std::size_t>(cli.get_int("top", 15));
  std::ostringstream summary;
  system.describe(summary, top);
  std::fputs(summary.str().c_str(), stdout);

  if (cli.get_bool("encode")) {
    std::printf("\nfull rule encodings (paper §3.1 form):\n");
    for (const auto& rule : system.rules()) {
      std::printf("  %s\n", rule.encode().c_str());
    }
  }

  // Optional evaluation against a series.
  if (const auto series_path = cli.get("series")) {
    const auto window = static_cast<std::size_t>(cli.get_int("window", 6));
    const auto horizon = static_cast<std::size_t>(cli.get_int("horizon", 1));
    const auto column = static_cast<std::size_t>(cli.get_int("column", 0));
    const auto series = ef::series::read_series_csv(*series_path, column);
    const ef::core::WindowDataset data(series, window, horizon);

    const auto forecast = system.forecast_dataset(data);
    std::vector<double> actual;
    for (std::size_t i = 0; i < data.count(); ++i) actual.push_back(data.target(i));
    const auto report = ef::series::evaluate_partial(actual, forecast);
    std::printf("\nagainst %s (D=%zu, tau=%zu, %zu windows):\n", series_path->c_str(),
                window, horizon, data.count());
    std::printf("  coverage %.1f%%, RMSE %.4f, MAE %.4f, NMSE %.4f\n",
                report.coverage_percent, report.rmse, report.mae, report.nmse);

    // Vote distribution: how many rules typically agree on a window?
    std::size_t max_votes = 0;
    double mean_votes = 0.0;
    for (std::size_t i = 0; i < data.count(); ++i) {
      const std::size_t votes = system.vote_count(data.pattern(i));
      max_votes = std::max(max_votes, votes);
      mean_votes += static_cast<double>(votes);
    }
    mean_votes /= static_cast<double>(data.count());
    std::printf("  votes per covered window: mean %.1f, max %zu (of %zu rules)\n",
                mean_votes, max_votes, system.size());

    // Index effectiveness preview.
    const ef::core::RuleIndex index(system, data.value_min(), data.value_max());
    std::printf("  query index: dimension %zu, mean candidates %.1f of %zu rules\n",
                index.dimension(), index.mean_candidates(), system.size());

    // Which lags does the rule set constrain? (0 = oldest gene position)
    const auto importance =
        ef::core::gene_importance(system, data.value_min(), data.value_max());
    std::printf("  gene importance:");
    for (const double v : importance) std::printf(" %.2f", v);
    std::printf("\n");
  }

  ef::obs::emit_cli_report(cli);
  return 0;
}
