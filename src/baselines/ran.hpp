// ran.hpp — Platt's Resource-Allocating Network ("Error RAN", Table 2).
//
// Platt (1991): an RBF network grown online. For each training sample
// (x, y): if the prediction error exceeds ε AND x is farther than δ from
// every existing centre, allocate a new unit (centre x, width κ·distance,
// weight = error); otherwise adapt the existing parameters by LMS. The
// novelty radius δ decays exponentially from δ_max to δ_min, so early units
// are coarse and later ones refine.
#pragma once

#include <cstdint>

#include "baselines/forecaster.hpp"
#include "baselines/rbf_units.hpp"

namespace ef::baselines {

struct RanConfig {
  double epsilon = 0.02;     ///< error threshold for allocation
  double delta_max = 0.7;    ///< initial novelty radius
  double delta_min = 0.07;   ///< final novelty radius
  double decay_tau = 1000;   ///< samples for the e-folding of δ
  double kappa = 0.87;       ///< width = κ · distance-to-nearest (Platt's value)
  double learning_rate = 0.05;
  std::size_t passes = 1;    ///< sweeps over the training data (Platt: online, 1)
  std::size_t max_units = 400;  ///< hard cap (keeps worst-case cost bounded)

  void validate() const;
};

class Ran final : public Forecaster {
 public:
  explicit Ran(RanConfig config = {});

  void fit(const core::WindowDataset& train) override;
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "ran"; }

  [[nodiscard]] const RanConfig& config() const noexcept { return config_; }
  [[nodiscard]] std::size_t units() const noexcept { return units_.size(); }

 private:
  RanConfig config_;
  RbfUnits units_;
  bool fitted_ = false;
};

}  // namespace ef::baselines
