#include "core/rule_system.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/evolution.hpp"
#include "core/match_backend.hpp"
#include "obs/macros.hpp"
#include "obs/timeline.hpp"
#include "util/rng.hpp"

namespace ef::core {
namespace {

/// Prediction-time metrics shared by every aggregation path: request and
/// abstention counts plus the fan-in histogram make the paper's
/// "percentage of prediction" observable live instead of post-hoc.
inline void note_prediction(std::size_t votes) {
  EVOFORECAST_COUNT("predict.requests", 1);
  if (votes == 0) {
    EVOFORECAST_COUNT("predict.abstentions", 1);
  } else {
    EVOFORECAST_HISTOGRAM("predict.fan_in", votes);
  }
#if !EVOFORECAST_OBS_ENABLED
  (void)votes;
#endif
}

}  // namespace

void RuleSystem::add_rules(std::vector<Rule> rules, bool discard_unfit, double f_min) {
  for (Rule& rule : rules) {
    if (!rule.predicting()) continue;  // nothing to predict with
    if (discard_unfit && rule.fitness() <= f_min) continue;
    rules_.push_back(std::move(rule));
  }
}

Prediction RuleSystem::forecast(std::span<const double> window, Aggregation how) const {
  std::vector<Vote> votes = collect_votes(rules_, window);
  note_prediction(votes.size());
  Prediction out;
  out.votes = votes.size();
  // Votes survive the aggregation (copied in) so the interval half-width can
  // be derived from the same vote set the value came from.
  const auto value = aggregate_votes(votes, how);
  out.abstained = !value.has_value();
  if (value) {
    out.value = *value;
    out.bound = vote_bound(votes, *value);
  }
  return out;
}

std::vector<Prediction> RuleSystem::forecast_batch(std::span<const double> flat_windows,
                                                   std::size_t window, Aggregation how,
                                                   util::ThreadPool* pool) const {
  if (window == 0) {
    throw std::invalid_argument("RuleSystem::forecast_batch: window must be > 0");
  }
  if (flat_windows.size() % window != 0) {
    throw std::invalid_argument(
        "RuleSystem::forecast_batch: flat_windows.size() not a multiple of window");
  }
  const std::size_t n = flat_windows.size() / window;
  EVOFORECAST_COUNT("predict.batch.calls", 1);
  EVOFORECAST_HISTOGRAM("predict.batch.windows", n);

  std::vector<Prediction> out(n);
  if (n == 0) return out;

  // Lag-major transpose of the batch, shared by every rule's kernel pass.
  const MatchBackend backend = resolve_match_backend(MatchBackend::kAuto);
  std::vector<double> lag_major;
  if (backend != MatchBackend::kScalar) {
    lag_major.resize(flat_windows.size());
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < window; ++j) {
        lag_major[j * n + i] = flat_windows[i * window + j];
      }
    }
  }
  LagMajorView view{lag_major.data(), n, window};
  view.rows = flat_windows.data();

  // Rule-major path: quantize the batch with a batch-local byte map (any
  // monotone map preserves the candidate-superset property — the training
  // map isn't needed), build the planes of the whole rule set once, and
  // match every rule against each chunk in a single pass.
  RulePlanes planes;
  std::vector<std::uint8_t> qrows;
  if (backend == MatchBackend::kRuleMajor) {
    double lo = std::numeric_limits<double>::infinity();
    double hi = -std::numeric_limits<double>::infinity();
    for (const double v : flat_windows) {
      if (std::isfinite(v)) {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    }
    // Degenerate batches (constant, or no finite value at all) collapse to
    // the identity-0 map: every byte test passes, exact verification decides.
    view.qmin = hi > lo ? lo : 0.0;
    view.qinv = hi > lo ? 255.0 / (hi - lo) : 0.0;
    qrows.resize(flat_windows.size());
    for (std::size_t k = 0; k < qrows.size(); ++k) {
      qrows[k] = quantize_value(flat_windows[k], view.qmin, view.qinv);
    }
    view.qrows = qrows.data();
    std::vector<std::span<const Interval>> genes(rules_.size());
    for (std::size_t r = 0; r < rules_.size(); ++r) {
      // Non-predicting or wrong-dimension rules become inactive lanes (the
      // same rules the per-rule loop skips).
      if (rules_[r].predicting() && rules_[r].window() == window) {
        genes[r] = rules_[r].genes();
      }
    }
    planes = build_rule_planes(genes, window, view.qmin, view.qinv);
  }

  util::ThreadPool& tp = pool ? *pool : util::ThreadPool::shared();
  tp.parallel_for(
      0, n,
      [&](std::size_t begin, std::size_t end) {
        // Rule-outer within the chunk: each rule's kernel pass appends its
        // matched windows, so per-window vote lists fill in ascending rule
        // order — exactly the vectors the window-outer collect_votes path
        // builds, hence identical aggregation for every strategy.
        std::vector<std::vector<Vote>> votes(end - begin);
        const auto push_votes = [&](const Rule& rule, const std::vector<std::size_t>& matched) {
          for (const std::size_t i : matched) {
            const auto w = flat_windows.subspan(i * window, window);
            votes[i - begin].push_back(
                Vote{rule.forecast(w), rule.fitness(), rule.predicting()->error()});
          }
        };
        if (backend == MatchBackend::kRuleMajor) {
          std::vector<std::vector<std::size_t>> matched(rules_.size());
          matchkern::rule_major_match(view, planes, begin, end, matched);
          for (std::size_t r = 0; r < rules_.size(); ++r) push_votes(rules_[r], matched[r]);
        } else {
          std::vector<std::size_t> matched;
          for (const Rule& rule : rules_) {
            if (!rule.predicting() || rule.window() != window) continue;
            matched.clear();
            switch (backend) {
              case MatchBackend::kScalar:
                matchkern::scalar_match(flat_windows.data(), window, rule.genes(), begin, end,
                                        matched);
                break;
              case MatchBackend::kSoa:
                matchkern::soa_match(view, rule.genes(), begin, end, matched);
                break;
              case MatchBackend::kSoaPrefilter:
                matchkern::soa_prefilter_match(view, rule.genes(), begin, end, matched);
                break;
              case MatchBackend::kAvx2:
                matchkern::soa_prefilter_match(view, rule.genes(), begin, end, matched,
                                               nullptr, /*avx2=*/true);
                break;
              case MatchBackend::kRuleMajor:
              case MatchBackend::kAuto:
                break;  // unreachable: handled above / resolved away
            }
            push_votes(rule, matched);
          }
        }
        for (std::size_t i = begin; i < end; ++i) {
          std::vector<Vote>& v = votes[i - begin];
          note_prediction(v.size());
          Prediction& p = out[i];
          p.votes = v.size();
          const auto value = aggregate_votes(v, how);
          p.abstained = !value.has_value();
          if (value) {
            p.value = *value;
            p.bound = vote_bound(v, *value);
          }
        }
      },
      /*grain=*/16);
  return out;
}

std::optional<RuleSystem::BoundedForecast> RuleSystem::predict_with_bound(
    std::span<const double> window, Aggregation how) const {
  const std::vector<Vote> votes = collect_votes(rules_, window);
  note_prediction(votes.size());
  const auto value = aggregate_votes(votes, how);
  if (!value) return std::nullopt;

  BoundedForecast out;
  out.value = *value;
  out.votes = votes.size();
  out.bound = vote_bound(votes, *value);
  return out;
}

std::size_t RuleSystem::vote_count(std::span<const double> window) const {
  std::size_t votes = 0;
  for (const Rule& rule : rules_) {
    if (rule.matches(window)) ++votes;
  }
  return votes;
}

series::PartialForecast RuleSystem::forecast_dataset(const WindowDataset& data,
                                                     util::ThreadPool* pool) const {
  EVOFORECAST_TRACE("core.forecast_dataset");
  series::PartialForecast out(data.count());
  util::ThreadPool& tp = pool ? *pool : util::ThreadPool::shared();
  tp.parallel_for(0, data.count(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) out[i] = forecast(data.pattern(i)).as_optional();
  });
  return out;
}

series::PartialForecast RuleSystem::forecast_dataset(const WindowDataset& data,
                                                     Aggregation how,
                                                     util::ThreadPool* pool) const {
  EVOFORECAST_TRACE("core.forecast_dataset");
  series::PartialForecast out(data.count());
  util::ThreadPool& tp = pool ? *pool : util::ThreadPool::shared();
  tp.parallel_for(0, data.count(), [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      out[i] = forecast(data.pattern(i), how).as_optional();
  });
  return out;
}

double RuleSystem::coverage_percent(const WindowDataset& data, util::ThreadPool* pool) const {
  EVOFORECAST_TRACE("core.coverage_scan");
  if (data.count() == 0) return 0.0;
  EVOFORECAST_COUNT("coverage.scans", 1);
  EVOFORECAST_COUNT("coverage.windows_tested", data.count());
  std::atomic<std::size_t> covered{0};
  util::ThreadPool& tp = pool ? *pool : util::ThreadPool::shared();

  if (resolve_match_backend(MatchBackend::kAuto) == MatchBackend::kRuleMajor &&
      !rules_.empty()) {
    // Batched scan: the dataset already carries the quantized mirrors, so
    // build the rule planes once and mark per-window hits chunk by chunk —
    // one pass over the windows for the whole rule set. Coverage only needs
    // "any rule matched", so the per-rule index lists collapse to a bitmap.
    const LagMajorView view = data.lag_major();
    std::vector<std::span<const Interval>> genes(rules_.size());
    for (std::size_t r = 0; r < rules_.size(); ++r) {
      if (rules_[r].window() == data.window()) genes[r] = rules_[r].genes();
    }
    const RulePlanes planes =
        build_rule_planes(genes, data.window(), view.qmin, view.qinv);
    tp.parallel_for(0, data.count(), [&](std::size_t begin, std::size_t end) {
      std::vector<std::vector<std::size_t>> matched(rules_.size());
      matchkern::rule_major_match(view, planes, begin, end, matched);
      std::vector<std::uint8_t> hit(end - begin, 0);
      for (const auto& m : matched) {
        for (const std::size_t i : m) hit[i - begin] = 1;
      }
      std::size_t local = 0;
      for (const std::uint8_t h : hit) local += h;
      covered.fetch_add(local, std::memory_order_relaxed);
    });
    return 100.0 * static_cast<double>(covered.load()) / static_cast<double>(data.count());
  }

  tp.parallel_for(0, data.count(), [&](std::size_t begin, std::size_t end) {
    std::size_t local = 0;
    for (std::size_t i = begin; i < end; ++i) {
      const auto window = data.pattern(i);
      for (const Rule& rule : rules_) {
        if (rule.matches(window)) {
          ++local;
          break;
        }
      }
    }
    covered.fetch_add(local, std::memory_order_relaxed);
  });
  return 100.0 * static_cast<double>(covered.load()) / static_cast<double>(data.count());
}

void RuleSystem::save(std::ostream& out) const {
  out << "evoforecast-rules v1\n" << rules_.size() << '\n';
  out.precision(17);
  for (const Rule& rule : rules_) {
    out << rule.window();
    for (const auto& gene : rule.genes()) {
      if (gene.is_wildcard()) {
        out << " * *";
      } else {
        out << ' ' << gene.lo() << ' ' << gene.hi();
      }
    }
    const auto& part = rule.predicting();
    if (!part) throw std::logic_error("RuleSystem::save: unevaluated rule");
    out << ' ' << part->fit.coeffs.size();
    for (const double c : part->fit.coeffs) out << ' ' << c;
    out << ' ' << part->fit.max_abs_residual << ' ' << part->fit.mean_prediction << ' '
        << (part->fit.degenerate ? 1 : 0) << ' ' << part->matches << ' ' << part->fitness
        << '\n';
  }
}

RuleSystem RuleSystem::load(std::istream& in) {
  // Hard limits against corrupt or hostile input: the declared counts are
  // validated *before* any allocation sized by them (no allocation bomb),
  // and every floating-point field must be finite (a NaN gene or coefficient
  // would poison every forecast downstream). Generous bounds: real unions
  // are ~10^2-10^3 rules with D ≤ 24.
  constexpr std::size_t kMaxRules = 1'000'000;
  constexpr std::size_t kMaxWindow = 4096;
  constexpr std::size_t kMaxCoeffs = kMaxWindow + 1;

  std::string header;
  std::getline(in, header);
  if (header != "evoforecast-rules v1") {
    throw std::runtime_error("RuleSystem::load: bad header '" + header + "'");
  }
  std::size_t count = 0;
  if (!(in >> count)) throw std::runtime_error("RuleSystem::load: missing rule count");
  if (count > kMaxRules) {
    throw std::runtime_error("RuleSystem::load: rule count " + std::to_string(count) +
                             " exceeds limit " + std::to_string(kMaxRules));
  }

  RuleSystem system;
  // Bounded up-front reservation; a truncated payload with a huge declared
  // count fails while parsing, not while allocating.
  system.rules_.reserve(std::min<std::size_t>(count, 4096));
  for (std::size_t r = 0; r < count; ++r) {
    std::size_t window = 0;
    if (!(in >> window)) throw std::runtime_error("RuleSystem::load: truncated rule header");
    if (window == 0 || window > kMaxWindow) {
      throw std::runtime_error("RuleSystem::load: window size " + std::to_string(window) +
                               " out of [1, " + std::to_string(kMaxWindow) + "]");
    }

    std::vector<Interval> genes;
    genes.reserve(window);
    for (std::size_t j = 0; j < window; ++j) {
      std::string lo_text;
      std::string hi_text;
      if (!(in >> lo_text >> hi_text)) {
        throw std::runtime_error("RuleSystem::load: truncated genes");
      }
      if (lo_text == "*" && hi_text == "*") {
        genes.push_back(Interval::wildcard());
      } else {
        try {
          const double lo = std::stod(lo_text);
          const double hi = std::stod(hi_text);
          if (!std::isfinite(lo) || !std::isfinite(hi)) {
            throw std::runtime_error("non-finite gene bound");
          }
          genes.emplace_back(lo, hi);  // Interval rejects lo > hi
        } catch (const std::exception& e) {
          throw std::runtime_error(std::string("RuleSystem::load: bad gene: ") + e.what());
        }
      }
    }

    PredictingPart part;
    std::size_t n_coeffs = 0;
    if (!(in >> n_coeffs)) throw std::runtime_error("RuleSystem::load: truncated coeffs");
    if (n_coeffs > kMaxCoeffs) {
      throw std::runtime_error("RuleSystem::load: coefficient count " +
                               std::to_string(n_coeffs) + " exceeds limit " +
                               std::to_string(kMaxCoeffs));
    }
    part.fit.coeffs.resize(n_coeffs);
    for (double& c : part.fit.coeffs) {
      if (!(in >> c)) throw std::runtime_error("RuleSystem::load: truncated coeffs");
      if (!std::isfinite(c)) {
        throw std::runtime_error("RuleSystem::load: non-finite coefficient");
      }
    }
    int degenerate = 0;
    if (!(in >> part.fit.max_abs_residual >> part.fit.mean_prediction >> degenerate >>
          part.matches >> part.fitness)) {
      throw std::runtime_error("RuleSystem::load: truncated stats");
    }
    if (!std::isfinite(part.fit.max_abs_residual) || !std::isfinite(part.fit.mean_prediction) ||
        !std::isfinite(part.fitness)) {
      throw std::runtime_error("RuleSystem::load: non-finite rule stats");
    }
    part.fit.degenerate = degenerate != 0;

    Rule rule{std::move(genes)};
    rule.set_predicting(std::move(part));
    system.rules_.push_back(std::move(rule));
  }
  return system;
}

void RuleSystem::merge(const RuleSystem& other) {
  rules_.insert(rules_.end(), other.rules_.begin(), other.rules_.end());
}

void RuleSystem::describe(std::ostream& out, std::size_t top_n) const {
  // Sort indices by fitness descending.
  std::vector<std::size_t> order(rules_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rules_[a].fitness() > rules_[b].fitness();
  });
  const std::size_t shown = top_n == 0 ? order.size() : std::min(top_n, order.size());

  out << "RuleSystem: " << rules_.size() << " rules (showing " << shown << ")\n";
  out << "  rank  fitness   matches  max-err   prediction  spec\n";
  for (std::size_t k = 0; k < shown; ++k) {
    const Rule& rule = rules_[order[k]];
    const auto& part = *rule.predicting();
    out << "  " << k + 1 << "\t" << part.fitness << "\t" << part.matches << "\t"
        << part.error() << "\t" << part.prediction() << "\t" << rule.specificity() << "/"
        << rule.window() << "\n";
  }
}

TrainResult extend_rule_system(const RuleSystem& existing, const WindowDataset& train,
                               const RuleSystemConfig& config, util::ThreadPool* pool) {
  EVOFORECAST_TRACE("core.train.extend");
  const obs::TraceScope timeline("core.train");
  config.validate();

  SteadyStateEngine engine(train, config.evolution,
                           std::vector<Rule>(existing.rules()), pool);
  engine.run();

  TrainResult result;
  result.system.add_rules(std::vector<Rule>(engine.population()), config.discard_unfit,
                          config.evolution.f_min);
  result.executions = 1;
  result.train_coverage_percent = result.system.coverage_percent(train, pool);
  result.coverage_per_execution.push_back(result.train_coverage_percent);
  EVOFORECAST_COUNT("train.executions", 1);
  EVOFORECAST_GAUGE_SET("train.coverage_percent", result.train_coverage_percent);
  EVOFORECAST_GAUGE_SET("train.rules_union_size", result.system.size());
  EVOFORECAST_EVENT("train.execution", {"schedule", "extend"}, {"execution", std::size_t{1}},
                    {"coverage_percent", result.train_coverage_percent},
                    {"rules", result.system.size()});
  return result;
}

namespace {

/// Island schedule: all executions concurrently, unioned in island order.
TrainResult train_islands(const WindowDataset& train, const RuleSystemConfig& config,
                          util::ThreadPool* pool) {
  EVOFORECAST_TRACE("core.train_parallel");
  util::ThreadPool& tp = pool ? *pool : util::ThreadPool::shared();

  // Same seed schedule as the sequential trainer.
  util::Rng seeder(config.evolution.seed);
  std::vector<std::uint64_t> seeds(config.max_executions);
  for (std::size_t exec = 0; exec < seeds.size(); ++exec) {
    seeds[exec] = exec == 0 ? config.evolution.seed : seeder();
  }

  // One island per execution; islands evaluate serially (single-worker
  // sentinel pool) so a pool worker never blocks on nested parallel_for.
  static util::ThreadPool inline_pool(1);
  std::vector<std::vector<Rule>> islands(config.max_executions);
  // Pool workers adopt the caller's trace context so island execution spans
  // land in the same timeline despite the thread hop.
  const obs::TraceContext trace_ctx = obs::current_context();
  tp.parallel_for(
      0, config.max_executions,
      [&](std::size_t begin, std::size_t end) {
        const obs::ContextGuard trace_guard(trace_ctx);
        for (std::size_t exec = begin; exec < end; ++exec) {
          obs::SpanScope execution_span("train.execution");
          execution_span.set_arg("execution", static_cast<double>(exec + 1));
          EvolutionConfig run_config = config.evolution;
          run_config.seed = seeds[exec];
          SteadyStateEngine engine(train, run_config, &inline_pool);
          engine.run();
          islands[exec] = engine.population();
        }
      },
      /*grain=*/1);

  // Union in island order until the coverage target is met — identical to
  // the sequential early-stopping result.
  TrainResult result;
  for (std::size_t exec = 0; exec < islands.size(); ++exec) {
    result.system.add_rules(std::move(islands[exec]), config.discard_unfit,
                            config.evolution.f_min);
    ++result.executions;
    EVOFORECAST_COUNT("train.executions", 1);
    result.train_coverage_percent = result.system.coverage_percent(train, pool);
    result.coverage_per_execution.push_back(result.train_coverage_percent);
    EVOFORECAST_GAUGE_SET("train.coverage_percent", result.train_coverage_percent);
    EVOFORECAST_GAUGE_SET("train.rules_union_size", result.system.size());
    EVOFORECAST_EVENT("train.execution", {"schedule", "islands"}, {"execution", result.executions},
                      {"coverage_percent", result.train_coverage_percent},
                      {"rules", result.system.size()});
    if (result.train_coverage_percent >= config.coverage_target_percent) break;
  }
  return result;
}

/// Sequential schedule: one execution after another; supports telemetry.
TrainResult train_sequential(const WindowDataset& train, const RuleSystemConfig& config,
                             util::ThreadPool* pool, const TelemetrySink& telemetry) {
  EVOFORECAST_TRACE("core.train");
  TrainResult result;
  util::Rng seeder(config.evolution.seed);
  for (std::size_t exec = 0; exec < config.max_executions; ++exec) {
    EVOFORECAST_TRACE("core.train.execution");
    obs::SpanScope execution_span("train.execution");
    execution_span.set_arg("execution", static_cast<double>(exec + 1));
    EvolutionConfig run_config = config.evolution;
    // First execution uses the configured seed verbatim (reproducing a
    // single-run experiment exactly); later ones fork from it.
    run_config.seed = exec == 0 ? config.evolution.seed : seeder();

    SteadyStateEngine engine(train, run_config, pool, telemetry);
    engine.run();
    result.system.add_rules(std::vector<Rule>(engine.population()), config.discard_unfit,
                            config.evolution.f_min);
    ++result.executions;
    EVOFORECAST_COUNT("train.executions", 1);

    result.train_coverage_percent = result.system.coverage_percent(train, pool);
    result.coverage_per_execution.push_back(result.train_coverage_percent);
    EVOFORECAST_GAUGE_SET("train.coverage_percent", result.train_coverage_percent);
    EVOFORECAST_GAUGE_SET("train.rules_union_size", result.system.size());
    EVOFORECAST_EVENT("train.execution", {"schedule", "sequential"},
                      {"execution", result.executions},
                      {"coverage_percent", result.train_coverage_percent},
                      {"rules", result.system.size()});
    if (result.train_coverage_percent >= config.coverage_target_percent) break;
  }
  return result;
}

}  // namespace

TrainResult train(const WindowDataset& data, const TrainOptions& options) {
  // Timeline root for the whole training run: execution and generation
  // spans below nest under it (child span when a request trace is already
  // active — e.g. future in-server evolution).
  const obs::TraceScope timeline("core.train");
  RuleSystemConfig config = options.config;
  if (options.seed) config.evolution.seed = *options.seed;
  config.validate();

  TrainParallelism mode = options.parallelism;
  if (mode == TrainParallelism::kAuto) {
    util::ThreadPool& tp = options.pool ? *options.pool : util::ThreadPool::shared();
    const bool islands_help =
        config.max_executions > 1 && tp.size() > 1 && !options.telemetry;
    mode = islands_help ? TrainParallelism::kIslands : TrainParallelism::kSequential;
  }
  if (mode == TrainParallelism::kIslands && options.telemetry) {
    throw std::invalid_argument(
        "train: telemetry is not supported with TrainParallelism::kIslands (interleaved "
        "records from concurrent islands would be unordered)");
  }
  if (mode == TrainParallelism::kIslands) return train_islands(data, config, options.pool);
  return train_sequential(data, config, options.pool, options.telemetry);
}

}  // namespace ef::core
