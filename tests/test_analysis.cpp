// Tests for series/analysis.hpp: ACF references (white noise, AR(1), pure
// sine), period detection on the library's own generators.
#include "series/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "series/sunspot.hpp"
#include "series/venice.hpp"
#include "util/rng.hpp"

namespace {

using ef::series::acf;
using ef::series::autocorrelation;
using ef::series::detect_period;
using ef::series::TimeSeries;

TimeSeries pure_sine(std::size_t n, std::size_t period) {
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) /
                    static_cast<double>(period));
  }
  return TimeSeries(std::move(v));
}

TEST(Autocorrelation, LagZeroIsOne) {
  ef::util::Rng rng(1);
  std::vector<double> v(100);
  for (double& x : v) x = rng.uniform(0, 1);
  EXPECT_DOUBLE_EQ(autocorrelation(TimeSeries(std::move(v)), 0), 1.0);
}

TEST(Autocorrelation, WhiteNoiseNearZero) {
  ef::util::Rng rng(2);
  std::vector<double> v(20000);
  for (double& x : v) x = rng.normal(0, 1);
  const TimeSeries s(std::move(v));
  for (const std::size_t lag : {1u, 5u, 20u}) {
    EXPECT_NEAR(autocorrelation(s, lag), 0.0, 0.03) << lag;
  }
}

TEST(Autocorrelation, Ar1MatchesPhiPowers) {
  // AR(1) with phi = 0.8: ACF(k) ≈ 0.8^k.
  ef::util::Rng rng(3);
  std::vector<double> v;
  double x = 0.0;
  for (int i = 0; i < 50000; ++i) {
    x = 0.8 * x + rng.normal(0, 1);
    v.push_back(x);
  }
  const TimeSeries s(std::move(v));
  EXPECT_NEAR(autocorrelation(s, 1), 0.8, 0.02);
  EXPECT_NEAR(autocorrelation(s, 2), 0.64, 0.03);
  EXPECT_NEAR(autocorrelation(s, 3), 0.512, 0.04);
}

TEST(Autocorrelation, SinePeriodicity) {
  // The biased estimator caps ACF(lag) at ~(n − lag)/n, so the tolerance
  // accounts for lag/n.
  const TimeSeries s = pure_sine(1000, 20);
  EXPECT_NEAR(autocorrelation(s, 20), 1.0, 0.025);   // full period
  EXPECT_NEAR(autocorrelation(s, 10), -1.0, 0.015);  // half period
}

TEST(Autocorrelation, ErrorsOnBadInput) {
  const TimeSeries s({1.0, 2.0, 3.0});
  EXPECT_THROW((void)autocorrelation(s, 3), std::invalid_argument);
  const TimeSeries flat({2.0, 2.0, 2.0});
  EXPECT_THROW((void)autocorrelation(flat, 1), std::invalid_argument);
}

TEST(Acf, ShapeAndHead) {
  const TimeSeries s = pure_sine(500, 10);
  const auto correlations = acf(s, 25);
  ASSERT_EQ(correlations.size(), 26u);
  EXPECT_DOUBLE_EQ(correlations[0], 1.0);
  for (const double c : correlations) {
    EXPECT_GE(c, -1.0 - 1e-9);
    EXPECT_LE(c, 1.0 + 1e-9);
  }
}

TEST(DetectPeriod, FindsSinePeriod) {
  const TimeSeries s = pure_sine(2000, 24);
  const auto estimate = detect_period(s, 2, 100);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_EQ(estimate->period, 24u);
  EXPECT_GT(estimate->acf_value, 0.95);
}

TEST(DetectPeriod, WhiteNoiseReturnsNothing) {
  ef::util::Rng rng(6);
  std::vector<double> v(5000);
  for (double& x : v) x = rng.normal(0, 1);
  const auto estimate = detect_period(TimeSeries(std::move(v)), 2, 100, /*threshold=*/0.2);
  EXPECT_FALSE(estimate.has_value());
}

TEST(DetectPeriod, VeniceFindsDiurnalBand) {
  // The synthetic tide's strongest short-range periodicity is the ~24-25 h
  // diurnal/semidiurnal beat.
  const auto venice = ef::series::generate_venice(20000);
  const auto estimate = detect_period(venice, 3, 40);
  ASSERT_TRUE(estimate.has_value());
  EXPECT_GE(estimate->period, 11u);
  EXPECT_LE(estimate->period, 27u);
}

TEST(DetectPeriod, SunspotFindsSolarCycle) {
  const auto sun = ef::series::generate_sunspots(2739);
  const auto estimate = detect_period(sun, 60, 240, /*threshold=*/0.05);
  ASSERT_TRUE(estimate.has_value());
  // ~11-year cycle = ~132 months, with generator variability.
  EXPECT_GE(estimate->period, 100u);
  EXPECT_LE(estimate->period, 170u);
}

TEST(DetectPeriod, BadBoundsThrow) {
  const TimeSeries s = pure_sine(100, 10);
  EXPECT_THROW((void)detect_period(s, 1, 20), std::invalid_argument);
  EXPECT_THROW((void)detect_period(s, 10, 10), std::invalid_argument);
  EXPECT_THROW((void)detect_period(s, 2, 99), std::invalid_argument);
}

}  // namespace
