#!/usr/bin/env python3
"""Loopback smoke test for efserve (used by CI).

Usage: serve_smoke.py EFSERVE_BINARY MODEL_EFR [EFSTAT_BINARY]

Starts efserve on an ephemeral port with fast polling and timeline tracing
armed (--trace-sample 1, --trace-out, a sub-microsecond --slow-request-us
so every request becomes a slow exemplar), then exercises the JSON-lines
protocol end to end: ping, cold miss, warm cache hit, explicit abstention,
bad requests (connection must survive), protocol v2 (id echo, "v":2
envelope, structured error objects — with a v1 client on the same server
still getting byte-plain v1 answers), pipelined bursts over several
concurrent connections answered strictly in request order, a slowloris
client framing one byte at a time, on-disk model swap (version bump,
identical values), the metrics/events/trace observability verbs (trace
document validated with check_trace_json), windowed coverage of every
histogram once the collector window is live, a raw HTTP GET /metrics
scrape (validated with check_prometheus), a SIGUSR1 flight-recorder dump
(server keeps serving), the forecast-quality loop (v2 interval field,
observe/quality verbs, live accuracy maturation, a forced regime shift
landing drift.detected in the event log, stale-actual handling, labelled
ef_quality_* series on the scrape), optionally one efstat --once --json
poll plus an efstat --trace breakdown, graceful SIGTERM shutdown, and
finally the --trace-out file itself (well-formed, >= 4 span names in one
request, slow exemplars present). Exits non-zero on the first failed
check.
"""
import json
import math
import os
import re
import shutil
import signal
import socket
import subprocess
import sys
import threading
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_prometheus  # noqa: E402  (sibling module, no package)
import check_trace_json  # noqa: E402

FAILURES = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"  [{status}] {name}{': ' + str(detail) if detail and not ok else ''}")
    if not ok:
        FAILURES.append(name)


class Client:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        self.reader = self.sock.makefile("r")

    def request(self, line):
        self.sock.sendall((line + "\n").encode())
        response = self.reader.readline().strip()
        try:
            return json.loads(response)
        except json.JSONDecodeError:
            return {"_raw": response}

    def close(self):
        self.sock.close()


def sine_window(phase, length=6, period=25.0):
    return [math.sin(2.0 * math.pi * (phase + t) / period) for t in range(length)]


class LineDrain:
    """Continuously drain a pipe into a list so the child never blocks on a
    full pipe buffer (the SIGUSR1 dump writes freely to stdout/stderr)."""

    def __init__(self, stream):
        self.lines = []
        self.cond = threading.Condition()
        self.thread = threading.Thread(target=self._run, args=(stream,), daemon=True)
        self.thread.start()

    def _run(self, stream):
        for line in stream:
            with self.cond:
                self.lines.append(line.rstrip("\n"))
                self.cond.notify_all()

    def wait_for(self, needle, timeout=15):
        """Block until a line containing `needle` arrives; returns its index
        or None on timeout."""
        deadline = time.time() + timeout
        with self.cond:
            while True:
                for i, line in enumerate(self.lines):
                    if needle in line:
                        return i
                remaining = deadline - time.time()
                if remaining <= 0:
                    return None
                self.cond.wait(remaining)


def http_get(port, path):
    """One-shot HTTP/1.0 GET on the JSON-lines port; returns (status, body)."""
    with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
        sock.sendall(f"GET {path} HTTP/1.0\r\nHost: localhost\r\n\r\n".encode())
        raw = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            raw += chunk
    head, _, body = raw.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    return status, body.decode()


def launch_server(efserve, model_path, trace_path, attempts=3):
    """Start efserve on an ephemeral port and wait for it to report the port.

    The kernel hands out the port (--port 0), so a clean bind cannot collide
    — but a constrained environment can still fail the bind (exhausted
    ephemeral range, EADDRINUSE from aggressive TIME_WAIT reuse). Retry a
    few times before declaring the smoke test dead; each retry gets a fresh
    socket and a fresh kernel-assigned port.

    Returns (proc, port, stderr_drain) or (None, None, None) after the last
    failed attempt.
    """
    for attempt in range(1, attempts + 1):
        proc = subprocess.Popen(
            [efserve, f"demo={model_path}", "--port", "0", "--poll-ms", "100",
             # Timeline tracing armed for the whole run; the tiny slow
             # threshold turns every request into a slow exemplar so the
             # exemplar path is exercised deterministically.
             "--trace-sample", "1", "--trace-out", trace_path,
             "--slow-request-us", "0.001"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        stderr_drain = LineDrain(proc.stderr)
        deadline = time.time() + 30
        while time.time() < deadline:
            line = proc.stdout.readline()
            if not line:
                break
            print(f"  server: {line.rstrip()}")
            if "listening on" in line:
                port = int(line.rsplit(":", 1)[1].split()[0])
                return proc, port, stderr_drain
        proc.kill()
        proc.wait()
        bind_error = any(
            "bind" in line or "Address already in use" in line
            for line in stderr_drain.lines)
        print(f"  launch attempt {attempt}/{attempts} failed"
              f"{' (bind error, retrying)' if bind_error else ''}:")
        for line in stderr_drain.lines[-5:]:
            print(f"    server stderr: {line}")
        if not bind_error:
            break  # not a port problem; retrying would just repeat it
        time.sleep(0.5 * attempt)
    return None, None, None


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__)
        return 2
    efserve, model_path = sys.argv[1], sys.argv[2]
    efstat = sys.argv[3] if len(sys.argv) == 4 else None
    trace_path = model_path + ".trace.json"

    proc, port, stderr_drain = launch_server(efserve, model_path, trace_path)
    if proc is None:
        print("FAIL: server never reported its port")
        return 1
    stdout_drain = LineDrain(proc.stdout)

    try:
        client = Client(port)

        check("ping", client.request('{"cmd":"ping"}').get("ok") is True)
        models = client.request('{"cmd":"models"}')
        check("models lists demo", models.get("ok") is True and "demo" in str(models))
        demo_entry = next((m for m in models.get("models", [])
                           if m.get("name") == "demo"), None)
        check("models entry carries version/rules/window",
              demo_entry is not None
              and demo_entry.get("version", 0) >= 1
              and demo_entry.get("rules", 0) >= 1
              and demo_entry.get("window", 0) >= 1, demo_entry)
        # The container section is fleet-mode only (scripts/fleet_smoke.py
        # asserts its schema); a file-backed server must not emit it.
        check("no container section without --container",
              "container" not in models, models)

        # Cold miss on a window the demo model (noisy sine) should cover.
        # Try a few phases; the trained model covers ~95% of the attractor.
        covered = None
        for phase in range(0, 25, 3):
            window = sine_window(phase)
            r = client.request(json.dumps({"model": "demo", "window": window}))
            if r.get("ok") and not r.get("abstain"):
                covered = (window, r)
                break
        check("cold miss returns a value", covered is not None)
        if covered is None:
            raise SystemExit(1)
        window, cold = covered
        check("cold miss is uncached", cold.get("cached") is False, cold)
        check("value is finite", math.isfinite(cold.get("value", math.nan)), cold)
        check("votes reported", cold.get("votes", 0) >= 1, cold)

        # Warm hit: identical request, identical value, cached:true.
        warm = client.request(json.dumps({"model": "demo", "window": window}))
        check("warm hit is cached", warm.get("cached") is True, warm)
        check("warm hit value identical", warm.get("value") == cold.get("value"), warm)

        # Explicit abstention: windows far outside the training attractor.
        abstained = None
        for probe in ([50.0] * 6, [-50.0] * 6, [1e6] * 6):
            r = client.request(json.dumps({"model": "demo", "window": probe}))
            if r.get("ok") and r.get("abstain"):
                abstained = r
                break
        check("uncovered window abstains explicitly", abstained is not None)
        if abstained:
            check("abstention has no value field", "value" not in abstained, abstained)
            check("abstention reports zero votes", abstained.get("votes") == 0, abstained)

        # Bad requests: ok:false with a reason, connection stays usable.
        for bad in (
            "this is not json",
            '{"model":"no-such-model","window":[0.1]}',
            '{"model":"demo","window":[0.1]}',          # wrong window length
            '{"model":"demo","window":[0.1],"bogus":1}',  # unknown field
            '{"model":"demo"}',                          # missing window
        ):
            r = client.request(bad)
            check(f"bad request rejected ({bad[:24]}...)",
                  r.get("ok") is False and r.get("error"), r)
        check("connection survives bad requests",
              client.request('{"cmd":"ping"}').get("ok") is True)

        # -- protocol v2: envelope echo, structured errors, v1 unchanged --

        v2 = client.request('{"cmd":"ping","v":2,"id":"smoke-1"}')
        check("v2 ping carries envelope", v2.get("ok") is True
              and v2.get("v") == 2 and v2.get("id") == "smoke-1", v2)
        numeric = client.request('{"cmd":"ping","id":7}')
        check("numeric id alone implies v2",
              numeric.get("v") == 2 and numeric.get("id") == 7, numeric)
        v2p = client.request(json.dumps(
            {"model": "demo", "window": window, "v": 2, "id": "p-1"}))
        check("v2 predict echoes id", v2p.get("ok") is True
              and v2p.get("v") == 2 and v2p.get("id") == "p-1", v2p)
        check("v2 predict value matches v1",
              v2p.get("value") == cold.get("value"), v2p)
        v2err = client.request(json.dumps(
            {"model": "no-such-model", "window": window, "v": 2, "id": "e-1"}))
        check("v2 error is a structured object",
              v2err.get("ok") is False and isinstance(v2err.get("error"), dict)
              and v2err["error"].get("code") == "unknown_model"
              and v2err["error"].get("message"), v2err)
        check("v2 error echoes envelope", v2err.get("v") == 2
              and v2err.get("id") == "e-1", v2err)
        v1err = client.request('{"model":"no-such-model","window":[0.1]}')
        check("v1 error stays a plain string",
              v1err.get("ok") is False and isinstance(v1err.get("error"), str)
              and "v" not in v1err and "id" not in v1err, v1err)
        v1ok = client.request('{"cmd":"ping"}')
        check("v1 response carries no envelope",
              v1ok.get("ok") is True and "v" not in v1ok and "id" not in v1ok,
              v1ok)
        badv = client.request('{"cmd":"ping","v":3}')
        check("unknown protocol version rejected",
              badv.get("ok") is False, badv)

        # -- pipelining: concurrent connections, bursts answered in order --

        def pipelined_burst(tag, count=32):
            with socket.create_connection(("127.0.0.1", port),
                                          timeout=10) as sock:
                payload = b"".join(
                    (json.dumps({"cmd": "ping", "v": 2, "id": f"{tag}-{i}"})
                     + "\n").encode()
                    for i in range(count))
                sock.sendall(payload)  # whole burst before reading anything
                reader = sock.makefile("r")
                ids = []
                for _ in range(count):
                    line = reader.readline()
                    if not line:
                        return None
                    ids.append(json.loads(line).get("id"))
                return ids

        burst_results = {}

        def burst_worker(tag):
            burst_results[tag] = pipelined_burst(tag)

        burst_threads = [threading.Thread(target=burst_worker, args=(tag,))
                         for tag in ("a", "b", "c", "d")]
        for t in burst_threads:
            t.start()
        for t in burst_threads:
            t.join()
        for tag in ("a", "b", "c", "d"):
            ids = burst_results.get(tag)
            check(f"pipelined burst '{tag}' answered in request order",
                  ids == [f"{tag}-{i}" for i in range(32)],
                  ids[:4] if ids else ids)

        # -- slowloris: one byte at a time must still frame and answer -----

        with socket.create_connection(("127.0.0.1", port), timeout=10) as slow:
            for byte in b'{"cmd":"ping","v":2,"id":"slow"}\n':
                slow.sendall(bytes([byte]))
                time.sleep(0.001)
            reply = slow.makefile("r").readline().strip()
        try:
            slow_reply = json.loads(reply)
        except json.JSONDecodeError:
            slow_reply = {}
        check("byte-at-a-time request answered",
              slow_reply.get("ok") is True and slow_reply.get("id") == "slow",
              reply[:80])

        # Hot reload: rewrite the model file in place (same rules, new
        # mtime); the server must bump the version and keep answering with
        # identical values — zero failed requests across the swap.
        swap = model_path + ".swap"
        shutil.copyfile(model_path, swap)
        os.replace(swap, model_path)  # atomic publish, fresh mtime
        reloaded = None
        for _ in range(50):
            time.sleep(0.1)
            r = client.request(json.dumps(
                {"model": "demo", "window": window, "cache": False}))
            if not r.get("ok"):
                check("request during reload", False, r)
                break
            if r.get("version", 1) >= 2:
                reloaded = r
                break
        check("model hot-reloaded (version bumped)", reloaded is not None)
        if reloaded:
            check("reloaded value identical", reloaded.get("value") == cold.get("value"),
                  reloaded)

        stats = client.request('{"cmd":"stats"}')
        check("stats", stats.get("ok") is True, stats)

        # -- observability: metrics verb, raw HTTP scrape, events, SIGUSR1 --

        metrics = client.request('{"cmd":"metrics"}')
        check("metrics verb", metrics.get("ok") is True
              and metrics.get("format") == "prometheus", metrics)
        problems = check_prometheus.validate(metrics.get("exposition", ""))
        check("metrics verb exposition valid", not problems, problems[:3])

        status, scrape = http_get(port, "/metrics")
        check("GET /metrics is 200", status == 200, status)
        problems = check_prometheus.validate(scrape)
        check("GET /metrics exposition valid", not problems, problems[:3])
        check("scrape has request histogram",
              "evoforecast_serve_request_us_bucket" in scrape)
        check("scrape has build_info", "evoforecast_build_info{" in scrape)
        status404, _ = http_get(port, "/nope")
        check("GET unknown path is 404", status404 == 404, status404)
        check("connection survives HTTP scrape",
              client.request('{"cmd":"ping"}').get("ok") is True)

        events = client.request('{"cmd":"events"}')
        check("events verb", events.get("ok") is True
              and isinstance(events.get("events"), list), events.get("_raw"))
        kinds = {e.get("kind") for e in events.get("events", [])}
        check("events carry serve.start", "serve.start" in kinds, sorted(kinds))
        check("events carry serve.model.load", "serve.model.load" in kinds,
              sorted(kinds))
        check("events carry serve.model.reload", "serve.model.reload" in kinds,
              sorted(kinds))
        # First prediction resolves a match backend (RuleSystem kAuto), which
        # emits the one-time selection breadcrumb.
        check("events carry match.backend_selected",
              "match.backend_selected" in kinds, sorted(kinds))

        # Trace verb: embedded Chrome trace-event document, structurally
        # valid, with the request pipeline (>= 4 distinct span names in one
        # trace) and slow exemplars (every request is "slow" at 0.001 us).
        trace = client.request('{"cmd":"trace"}')
        check("trace verb", trace.get("ok") is True, trace.get("_raw"))
        check("trace verb reports enabled", trace.get("enabled") is True, trace)
        doc = trace.get("trace", {})
        tevents = doc.get("traceEvents")
        check("trace verb has traceEvents", isinstance(tevents, list)
              and len(tevents) > 0, trace.get("_raw"))
        problems = check_trace_json.validate(doc, min_span_names=4,
                                             require_slow=True)
        check("trace verb document valid", not problems, problems[:3])
        names = {e.get("name") for e in tevents or [] if isinstance(e, dict)}
        check("trace has serve.request spans", "serve.request" in names,
              sorted(names)[:10])
        check("trace has batcher pipeline spans",
              {"serve.queue", "serve.batch", "serve.match"} <= names,
              sorted(names)[:10])

        # Windowed coverage: once the collector window is live every
        # histogram must expose windowed quantiles and a rate. Poll — the
        # collector frames once per second, and a histogram registered
        # after the newest frame only shows up windowed in the next one.
        problems = ["collector window never went live"]
        for _ in range(100):
            text = client.request('{"cmd":"metrics"}').get("exposition", "")
            live = re.search(
                r"^evoforecast_window_seconds ([0-9.eE+-]+)", text, re.MULTILINE)
            if live and float(live.group(1)) > 0:
                problems = check_prometheus.validate_windowed(text)
                if not problems:
                    break
            time.sleep(0.2)
        check("every histogram appears windowed", not problems, problems[:3])

        # SIGUSR1: flight recorder to stderr between markers, report to
        # stdout, server keeps answering.
        begin_before = len(stderr_drain.lines)
        proc.send_signal(signal.SIGUSR1)
        end_at = stderr_drain.wait_for("== flight recorder end ==")
        check("SIGUSR1 dumps flight recorder", end_at is not None)
        if end_at is not None:
            begin_at = stderr_drain.wait_for("== flight recorder begin ==")
            recorded = stderr_drain.lines[begin_at + 1:end_at]
            parsed = []
            for line in recorded:
                try:
                    parsed.append(json.loads(line))
                except json.JSONDecodeError:
                    check("flight recorder line is JSON", False, line[:80])
            dump_kinds = {e.get("kind") for e in parsed}
            check("flight recorder has events", len(parsed) >= 3
                  and begin_at >= begin_before, sorted(dump_kinds))
            check("flight recorder carries model lifecycle",
                  "serve.model.load" in dump_kinds, sorted(dump_kinds))
        check("report goes to stdout",
              stdout_drain.wait_for("run report") is not None
              or stdout_drain.wait_for("serve.requests") is not None)
        check("server survives SIGUSR1",
              client.request('{"cmd":"ping"}').get("ok") is True)
        after = client.request('{"cmd":"metrics"}').get("exposition", "")
        check("report_dumps counter incremented",
              "evoforecast_serve_report_dumps_total 1" in after)

        # -- forecast quality: intervals, observe/quality verbs, drift ------

        # v2 predict replies carry the rule-error interval around the value;
        # v1 must never gain the field.
        v2i = client.request(json.dumps(
            {"model": "demo", "window": window, "v": 2, "id": "i-1"}))
        interval = v2i.get("interval")
        check("v2 predict carries interval",
              isinstance(interval, list) and len(interval) == 2, v2i)
        if isinstance(interval, list) and len(interval) == 2:
            check("interval brackets the value",
                  interval[0] <= v2i.get("value", math.nan) <= interval[1]
                  and interval[0] <= interval[1], v2i)
        v1i = client.request(json.dumps({"model": "demo", "window": window}))
        check("v1 predict has no interval field", "interval" not in v1i, v1i)
        if abstained:
            check("abstention has no interval", "interval" not in abstained,
                  abstained)

        # Before any actuals: tracker enabled but not armed, nothing tracked.
        q0 = client.request('{"cmd":"quality"}')
        check("quality verb before arming", q0.get("ok") is True
              and q0.get("enabled") is True and q0.get("armed") is False
              and q0.get("models") == [], q0)

        bad_observe = client.request('{"cmd":"observe","model":"demo"}')
        check("observe without value rejected", bad_observe.get("ok") is False,
              bad_observe)
        unknown_observe = client.request(
            '{"cmd":"observe","model":"nope","value":1.0,"v":2}')
        check("observe for unknown model rejected",
              unknown_observe.get("ok") is False
              and unknown_observe.get("error", {}).get("code") == "unknown_model",
              unknown_observe)

        # Live accuracy loop: predict, then feed the realized next value.
        # The first observe arms the tracker and creates the model's state;
        # each later observe advances the tick and matures the forecast
        # issued one tick earlier.
        def true_next(phase, length=6, period=25.0):
            return math.sin(2.0 * math.pi * (phase + length) / period)

        first = client.request('{"cmd":"observe","model":"demo","value":%r}'
                               % true_next(-1))
        check("first observe arms and ticks", first.get("ok") is True
              and first.get("tick") == 1 and first.get("stale") is False, first)
        matured_total = 0
        for i in range(30):
            client.request(json.dumps(
                {"model": "demo", "window": sine_window(i), "cache": False}))
            r = client.request(json.dumps(
                {"cmd": "observe", "model": "demo", "value": true_next(i)}))
            matured_total += r.get("matured", 0)
        check("healthy loop matures forecasts", matured_total >= 20,
              matured_total)
        q1 = client.request('{"cmd":"quality","model":"demo"}')
        rows = q1.get("models", [])
        check("quality verb reports demo", q1.get("ok") is True
              and q1.get("armed") is True and len(rows) == 1
              and rows[0].get("model") == "demo", q1)
        if rows:
            row = rows[0]
            check("quality row has rmse/mae", row.get("rmse") is not None
                  and row.get("mae") is not None
                  and row.get("rmse", 0) < 2.0, row)
            check("quality row has coverage",
                  isinstance(row.get("coverage"), (int, float)), row)
            check("no drift on the healthy stream",
                  row.get("drift", {}).get("drifted") is False
                  and row.get("drift", {}).get("detections") == 0, row)

        # Regime shift: the realized values jump by +10 while predictions
        # stay on the sine — matured errors explode and Page–Hinkley fires.
        drift_seen = False
        for i in range(30, 45):
            client.request(json.dumps(
                {"model": "demo", "window": sine_window(i), "cache": False}))
            r = client.request(json.dumps(
                {"cmd": "observe", "model": "demo", "value": true_next(i) + 10.0}))
            if r.get("drift") == "detected":
                drift_seen = True
        check("regime shift raises drift", drift_seen)
        q2 = client.request('{"cmd":"quality","model":"demo"}')
        drift2 = (q2.get("models") or [{}])[0].get("drift", {})
        check("quality reports the detection", drift2.get("detections", 0) >= 1,
              q2)
        drift_events = client.request('{"cmd":"events"}')
        drift_kinds = {e.get("kind") for e in drift_events.get("events", [])}
        check("drift.detected lands in the event log",
              "drift.detected" in drift_kinds, sorted(drift_kinds))

        # Out-of-order actual: an explicit tick at or below the clock is
        # counted stale and matures nothing.
        stale = client.request(
            '{"cmd":"observe","model":"demo","value":0.0,"t":1}')
        check("out-of-order actual is stale", stale.get("ok") is True
              and stale.get("stale") is True and stale.get("matured") == 0,
              stale)

        # Labelled quality series on the scrape, under the label-aware
        # validator (sorted labels, stable sets, bounded cardinality).
        status_q, scrape_q = http_get(port, "/metrics")
        check("quality scrape is 200", status_q == 200, status_q)
        problems = check_prometheus.validate(scrape_q)
        check("labelled scrape still valid", not problems, problems[:3])
        check("scrape has per-model quality series",
              'ef_quality_rmse{model="demo"}' in scrape_q)
        check("scrape has fleet aggregate",
              'ef_quality_rmse{model="_fleet"}' in scrape_q)
        check("scrape has drift counter",
              'ef_quality_drift_detected_total{model="demo"}' in scrape_q)

        if efstat:
            stat = subprocess.run(
                [efstat, "--port", str(port), "--once", "--json"],
                capture_output=True, text=True, timeout=30)
            check("efstat --once --json exits 0", stat.returncode == 0,
                  stat.stderr)
            try:
                snapshot = json.loads(stat.stdout)
                check("efstat reports requests",
                      snapshot.get("requests_total", 0) >= 1, snapshot)
                check("efstat lists demo model",
                      any(m.get("name") == "demo"
                          for m in snapshot.get("models", [])), snapshot)
                check("efstat reports quality panel",
                      snapshot.get("quality_armed") is True
                      and any(q.get("model") == "demo"
                              for q in snapshot.get("quality", [])), snapshot)
            except json.JSONDecodeError:
                check("efstat output is JSON", False, stat.stdout[:120])

            stat_trace = subprocess.run(
                [efstat, "--port", str(port), "--trace"],
                capture_output=True, text=True, timeout=30)
            check("efstat --trace exits 0", stat_trace.returncode == 0,
                  stat_trace.stderr)
            check("efstat --trace shows stage breakdown",
                  "queue" in stat_trace.stdout and "match" in stat_trace.stdout,
                  stat_trace.stdout[:200])

        client.close()
    finally:
        proc.send_signal(signal.SIGTERM)
        try:
            proc.wait(timeout=30)
        except subprocess.TimeoutExpired:
            proc.kill()
            check("graceful shutdown", False, "timed out")
    check("clean exit code", proc.returncode == 0, proc.returncode)

    # --trace-out is written at shutdown: validate the file the same way
    # Perfetto would load it. Every request was a slow exemplar, so the
    # full span trees must be present.
    check("trace file written", os.path.exists(trace_path), trace_path)
    if os.path.exists(trace_path):
        try:
            with open(trace_path) as f:
                file_doc = json.load(f)
        except json.JSONDecodeError as err:
            file_doc = None
            check("trace file is JSON", False, str(err))
        if file_doc is not None:
            problems = check_trace_json.validate(file_doc, min_span_names=4,
                                                 require_slow=True)
            check("trace file valid", not problems, problems[:3])

    if FAILURES:
        print(f"{len(FAILURES)} check(s) failed: {FAILURES}")
        return 1
    print("all serve smoke checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
