#!/usr/bin/env bash
# Time-boxed fuzz smoke: replay the committed corpus through every target,
# then (when the binaries were built with libFuzzer) explore for a fixed
# budget per target. CI runs this for ~60 s/target; it is a regression
# tripwire, not a soak — long exploratory runs happen offline.
#
# Usage: run_fuzz_smoke.sh BUILD_DIR [SECONDS_PER_TARGET]
#
# Works in two modes:
#   - libFuzzer build (-DEVOFORECAST_FUZZ=ON, clang): corpus replay is
#     implicit in the -runs exploration; crashes land in fuzz-artifacts/.
#   - plain build (gcc, no libFuzzer): falls back to fuzz_replay, which
#     drives the same harness entry points over the corpus once.
set -euo pipefail

build_dir="${1:?usage: run_fuzz_smoke.sh BUILD_DIR [SECONDS_PER_TARGET]}"
seconds="${2:-60}"
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
corpus_root="${repo_root}/fuzz/corpus"
artifact_dir="${PWD}/fuzz-artifacts"

targets=(json efr efr2 protocol csv)

have_libfuzzer=true
for t in "${targets[@]}"; do
  [ -x "${build_dir}/fuzz/fuzz_${t}" ] || have_libfuzzer=false
done

if $have_libfuzzer; then
  mkdir -p "${artifact_dir}"
  for t in "${targets[@]}"; do
    echo "== fuzz_${t}: ${seconds}s exploration seeded from fuzz/corpus/${t} =="
    # -max_total_time bounds wall clock; the committed corpus seeds the run.
    # Generated inputs go to a scratch dir so the committed corpus only grows
    # through deliberate check-ins of triggers.
    scratch="$(mktemp -d)"
    "${build_dir}/fuzz/fuzz_${t}" \
      -max_total_time="${seconds}" \
      -timeout=10 \
      -rss_limit_mb=2048 \
      -print_final_stats=1 \
      -artifact_prefix="${artifact_dir}/fuzz_${t}-" \
      "${scratch}" "${corpus_root}/${t}"
    rm -rf "${scratch}"
  done
else
  echo "== no libFuzzer binaries in ${build_dir}/fuzz: corpus replay fallback =="
  replay="${build_dir}/fuzz/fuzz_replay"
  [ -x "${replay}" ] || { echo "fuzz_replay not built" >&2; exit 1; }
  for t in "${targets[@]}"; do
    echo "-- replaying fuzz/corpus/${t}"
    "${replay}" "${t}" "${corpus_root}/${t}"
  done
fi

echo "fuzz smoke passed"
