// analysis.hpp — descriptive statistics of a series: autocorrelation and
// dominant-period detection.
//
// Used to pick the seasonal period for SeasonalPersistence/HoltWinters and
// a sensible embedding span for the rule system (Ablation E showed the
// window span matters). Period detection scans the ACF for its strongest
// local maximum beyond lag 1 — robust for the strongly periodic series this
// library targets, and cheap (O(n·max_lag)).
#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "series/timeseries.hpp"

namespace ef::series {

/// Autocorrelation at one lag (biased estimator, standard for ACF plots).
/// Throws std::invalid_argument when lag >= size or the series is constant.
[[nodiscard]] double autocorrelation(const TimeSeries& s, std::size_t lag);

/// ACF for lags 0..max_lag inclusive (acf[0] == 1).
[[nodiscard]] std::vector<double> acf(const TimeSeries& s, std::size_t max_lag);

struct PeriodEstimate {
  std::size_t period = 0;
  double acf_value = 0.0;  ///< ACF at the detected period
};

/// Dominant period: the lag of the highest ACF local maximum in
/// [min_lag, max_lag]. nullopt when no local maximum clears `threshold`
/// (aperiodic series). Throws on inconsistent lag bounds.
[[nodiscard]] std::optional<PeriodEstimate> detect_period(const TimeSeries& s,
                                                          std::size_t min_lag,
                                                          std::size_t max_lag,
                                                          double threshold = 0.1);

}  // namespace ef::series
