// thread_pool.hpp — fixed-size worker pool with a blocking parallel_for.
//
// The evolutionary engine's hot path is evaluating one rule against every
// sliding window of the training set (tens of thousands of interval tests per
// offspring). That work is embarrassingly parallel over window ranges, so the
// pool exposes a simple static-partition parallel_for rather than a general
// task graph. Determinism note: callers must ensure the per-chunk work is
// order-independent (the match engine reduces with order-insensitive
// operations only).
//
// Observability: the pool feeds the ef::obs registry — task counts, total
// and per-worker busy time (`pool.worker<i>.busy_us`), a task-duration
// histogram, and the inline-vs-pooled decision counters of parallel_for.
// All of it compiles out under -DEVOFORECAST_OBS=OFF.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

#include "util/function_ref.hpp"

namespace ef::util {

/// A fixed pool of worker threads executing submitted closures.
///
/// Usage:
///   ThreadPool pool;                              // hardware concurrency
///   pool.parallel_for(0, n, [&](size_t b, size_t e) { ...work [b,e)... });
///
/// parallel_for blocks until every chunk has completed, so the caller may
/// freely capture stack locals by reference. Exceptions thrown by chunk
/// bodies are rethrown on the calling thread (first one wins).
class ThreadPool {
 public:
  /// Create a pool with `threads` workers; 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  ~ThreadPool();

  /// Number of worker threads in the pool.
  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Run `body(chunk_begin, chunk_end)` over [begin, end) split into
  /// contiguous chunks, one or more per worker. Blocks until all chunks have
  /// run. Runs inline on the calling thread when the range is small or the
  /// pool has a single worker (avoids synchronisation cost for tiny batches).
  ///
  /// `grain` is the minimum chunk width; ranges narrower than `grain` are
  /// executed inline.
  ///
  /// Accepts any callable with signature void(size_t, size_t) by lightweight
  /// reference — no std::function conversion, so hot-path callers pay no
  /// allocation. parallel_for blocks, so the reference never dangles.
  template <typename Body>
  void parallel_for(std::size_t begin, std::size_t end, Body&& body,
                    std::size_t grain = 1024) {
    parallel_for_impl(begin, end,
                      FunctionRef<void(std::size_t, std::size_t)>(std::forward<Body>(body)),
                      grain);
  }

  /// Process-wide shared pool, lazily constructed. Library components that do
  /// not receive an explicit pool use this one.
  static ThreadPool& shared();

 private:
  void parallel_for_impl(std::size_t begin, std::size_t end,
                         FunctionRef<void(std::size_t, std::size_t)> body,
                         std::size_t grain);

  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_ready_;
  bool stopping_ = false;
};

}  // namespace ef::util
