// rng.hpp — deterministic random number generation for evoforecast.
//
// All stochastic components of the library (EA operators, synthetic data
// generators, baseline initialisers) draw from ef::util::Rng so that a run is
// fully reproducible from a single 64-bit seed. Rng wraps a SplitMix64-seeded
// xoshiro256** engine: it is cheap to construct, cheap to fork for worker
// threads, and free of the correlated-low-bit artifacts of LCGs.
#pragma once

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

namespace ef::util {

/// SplitMix64 step. Used to expand a single seed into engine state and to
/// derive child seeds; recommended by the xoshiro authors for seeding.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Seeded pseudo-random engine (xoshiro256**), UniformRandomBitGenerator.
///
/// Satisfies the named requirements needed by <random> distributions, but the
/// library's own helpers (uniform/normal/index/bernoulli) are preferred: they
/// are guaranteed to consume a fixed number of engine draws per call, which
/// keeps cross-platform reproducibility.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Default seed chosen arbitrarily; fixed so default-constructed engines
  /// are reproducible too.
  static constexpr std::uint64_t kDefaultSeed = 0x5eed0fc0ffeeULL;

  constexpr explicit Rng(std::uint64_t seed = kDefaultSeed) noexcept { reseed(seed); }

  /// Re-initialise the engine from a 64-bit seed via SplitMix64 expansion.
  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Next raw 64-bit value.
  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1). Uses the top 53 bits — exact dyadic rationals,
  /// no modulo bias.
  [[nodiscard]] constexpr double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi). Requires lo <= hi; returns lo when lo == hi.
  [[nodiscard]] constexpr double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer index in [0, n). n must be > 0.
  /// Lemire-style rejection-free multiply-shift; bias is < 2^-64 per call and
  /// irrelevant for EA-scale n, while keeping exactly one engine draw.
  [[nodiscard]] constexpr std::size_t index(std::size_t n) noexcept {
#if defined(__SIZEOF_INT128__)
    __extension__ using uint128 = unsigned __int128;
    const uint128 wide = static_cast<uint128>((*this)()) * static_cast<uint128>(n);
    return static_cast<std::size_t>(wide >> 64);
#else
    return static_cast<std::size_t>((*this)() % static_cast<std::uint64_t>(n));
#endif
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] constexpr bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal deviate via Marsaglia polar method.
  /// Consumes a variable number of draws; cached pair keeps the average cost
  /// close to one draw per call.
  [[nodiscard]] double normal() noexcept {
    if (has_cached_) {
      has_cached_ = false;
      return cached_;
    }
    double u = 0.0;
    double v = 0.0;
    double s = 0.0;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_ = v * factor;
    has_cached_ = true;
    return u * factor;
  }

  /// Normal deviate with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Derive an independent child engine (for worker threads or sub-runs).
  /// Deterministic: the i-th fork of a given engine state is always the same.
  [[nodiscard]] constexpr Rng fork() noexcept { return Rng{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_ = 0.0;
  bool has_cached_ = false;
};

}  // namespace ef::util
