#include "core/rule_index.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/macros.hpp"
#include "util/thread_pool.hpp"

namespace ef::core {

RuleIndex::RuleIndex(const RuleSystem& system, double value_lo, double value_hi,
                     std::size_t buckets)
    : system_(system), lo_(value_lo) {
  if (!(value_hi > value_lo)) {
    throw std::invalid_argument("RuleIndex: value_hi must exceed value_lo");
  }
  if (buckets == 0) throw std::invalid_argument("RuleIndex: buckets must be > 0");
  width_ = (value_hi - value_lo) / static_cast<double>(buckets);
  bucket_rules_.resize(buckets);

  const auto& rules = system.rules();

  // Pick the most selective dimension: smallest mean normalised interval
  // width (wildcard = full range) over the rule set.
  const std::size_t dims = rules.empty() ? 0 : rules.front().window();
  const double range = value_hi - value_lo;
  double best_mean_width = 2.0;  // normalised widths are <= ~1
  for (std::size_t d = 0; d < dims; ++d) {
    double total = 0.0;
    std::size_t counted = 0;
    for (const Rule& rule : rules) {
      if (rule.window() != dims) continue;
      const auto& gene = rule.genes()[d];
      total += gene.is_wildcard() ? 1.0 : std::min(1.0, gene.width() / range);
      ++counted;
    }
    if (counted == 0) continue;
    const double mean_width = total / static_cast<double>(counted);
    if (mean_width < best_mean_width) {
      best_mean_width = mean_width;
      dimension_ = d;
    }
  }

  for (std::size_t r = 0; r < rules.size(); ++r) {
    if (rules[r].window() <= dimension_) continue;
    const auto& gene = rules[r].genes()[dimension_];
    std::size_t first_bucket = 0;
    std::size_t last_bucket = buckets - 1;
    if (!gene.is_wildcard()) {
      first_bucket = bucket_of(gene.lo());
      last_bucket = bucket_of(gene.hi());
    }
    for (std::size_t b = first_bucket; b <= last_bucket; ++b) {
      bucket_rules_[b].push_back(r);
    }
  }
}

std::size_t RuleIndex::bucket_of(double value) const {
  if (value <= lo_) return 0;
  const auto b = static_cast<std::size_t>((value - lo_) / width_);
  return std::min(b, bucket_rules_.size() - 1);
}

std::span<const std::size_t> RuleIndex::candidates(double value_at_dimension) const {
  return bucket_rules_[bucket_of(value_at_dimension)];
}

core::Prediction RuleIndex::forecast(std::span<const double> window, Aggregation how) const {
  core::Prediction out;
  if (window.size() <= dimension_) return out;
  std::vector<Vote> votes;
  const auto& rules = system_.rules();
  for (const std::size_t r : candidates(window[dimension_])) {
    const Rule& rule = rules[r];
    if (!rule.predicting() || !rule.matches(window)) continue;
    votes.push_back(Vote{rule.forecast(window), rule.fitness(), rule.predicting()->error()});
  }
  out.votes = votes.size();
  const auto value = aggregate_votes(votes, how);
  out.abstained = !value.has_value();
  if (value) {
    out.value = *value;
    out.bound = vote_bound(votes, *value);
  }
  return out;
}

std::vector<core::Prediction> RuleIndex::forecast_batch(std::span<const double> flat_windows,
                                                        std::size_t window, Aggregation how,
                                                        util::ThreadPool* pool) const {
  if (window == 0) {
    throw std::invalid_argument("RuleIndex::forecast_batch: window must be > 0");
  }
  if (flat_windows.size() % window != 0) {
    throw std::invalid_argument(
        "RuleIndex::forecast_batch: flat_windows.size() not a multiple of window");
  }
  // An unselective index (candidate lists covering most of the rule set)
  // filters almost nothing; the rule-outer vectorized batch path is faster
  // and produces identical results, so hand over.
  if (mean_candidates() >= 0.5 * static_cast<double>(system_.rules().size())) {
    EVOFORECAST_COUNT("rule_index.batch_delegated", 1);
    return system_.forecast_batch(flat_windows, window, how, pool);
  }
  const std::size_t n = flat_windows.size() / window;
  EVOFORECAST_COUNT("predict.batch.calls", 1);
  EVOFORECAST_HISTOGRAM("predict.batch.windows", static_cast<double>(n));
  std::vector<core::Prediction> out(n);
  util::ThreadPool& tp = pool ? *pool : util::ThreadPool::shared();
  tp.parallel_for(
      0, n,
      [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) {
          out[i] = forecast(flat_windows.subspan(i * window, window), how);
        }
      },
      /*grain=*/16);
  return out;
}

std::size_t RuleIndex::vote_count(std::span<const double> window) const {
  if (window.size() <= dimension_) return 0;
  std::size_t count = 0;
  const auto& rules = system_.rules();
  for (const std::size_t r : candidates(window[dimension_])) {
    if (rules[r].matches(window)) ++count;
  }
  return count;
}

double RuleIndex::mean_candidates() const {
  if (bucket_rules_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& bucket : bucket_rules_) total += bucket.size();
  return static_cast<double>(total) / static_cast<double>(bucket_rules_.size());
}

}  // namespace ef::core
