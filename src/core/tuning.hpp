// tuning.hpp — automatic calibration of the EMAX dial.
//
// The paper's conclusion: "The algorithm can also be tuned in order to
// attain a higher prediction percentage at the cost of worse prediction
// results." In practice EMAX is the one parameter users must get right per
// dataset/horizon, and its usable range spans an order of magnitude (see
// bench_ablation_emax). tune_emax() automates the search: bisection on EMAX
// against a *short* pilot evolution per probe, targeting a training
// coverage, returning the smallest EMAX that reaches it (smallest = tightest
// per-rule error budget = best accuracy at that coverage).
#pragma once

#include <cstddef>
#include <vector>

#include "core/config.hpp"
#include "core/dataset.hpp"
#include "util/thread_pool.hpp"

namespace ef::core {

struct EmaxTuningOptions {
  double coverage_target_percent = 95.0;
  /// Bracket: [lo, hi] as fractions of the training target range. The hi
  /// bound (a whole range) always reaches full coverage.
  double lo_fraction = 0.005;
  double hi_fraction = 1.0;
  std::size_t bisection_steps = 8;
  /// Pilot budget per probe — deliberately small; coverage-vs-EMAX is
  /// monotone enough that short runs rank candidates correctly.
  std::size_t pilot_generations = 1500;
  std::size_t pilot_executions = 2;
};

struct EmaxTuningResult {
  double emax = 0.0;
  double achieved_coverage_percent = 0.0;
  /// Every probe evaluated: (emax, coverage), in evaluation order —
  /// useful for plotting the dial.
  std::vector<std::pair<double, double>> probes;
};

/// Find the smallest EMAX whose pilot run reaches the coverage target.
/// `base` supplies every other evolution parameter (population, operators,
/// seed…). Throws std::invalid_argument on a degenerate (constant-target)
/// dataset or a nonsensical bracket.
[[nodiscard]] EmaxTuningResult tune_emax(const WindowDataset& train,
                                         const EvolutionConfig& base,
                                         const EmaxTuningOptions& options = {},
                                         util::ThreadPool* pool = nullptr);

}  // namespace ef::core
