#include "series/lorenz.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <vector>

namespace ef::series {
namespace {

using State = std::array<double, 3>;

[[nodiscard]] State rhs(const State& s, const LorenzParams& p) {
  return {p.sigma * (s[1] - s[0]), s[0] * (p.rho - s[2]) - s[1], s[0] * s[1] - p.beta * s[2]};
}

[[nodiscard]] State axpy(const State& s, double h, const State& k) {
  return {s[0] + h * k[0], s[1] + h * k[1], s[2] + h * k[2]};
}

void rk4_step(State& s, double h, const LorenzParams& p) {
  const State k1 = rhs(s, p);
  const State k2 = rhs(axpy(s, 0.5 * h, k1), p);
  const State k3 = rhs(axpy(s, 0.5 * h, k2), p);
  const State k4 = rhs(axpy(s, h, k3), p);
  for (int i = 0; i < 3; ++i) {
    s[static_cast<std::size_t>(i)] +=
        h / 6.0 *
        (k1[static_cast<std::size_t>(i)] + 2.0 * k2[static_cast<std::size_t>(i)] +
         2.0 * k3[static_cast<std::size_t>(i)] + k4[static_cast<std::size_t>(i)]);
  }
}

}  // namespace

TimeSeries generate_lorenz(std::size_t count, const LorenzParams& params) {
  if (count == 0) throw std::invalid_argument("generate_lorenz: count must be > 0");
  if (params.dt <= 0.0 || params.sample_dt <= 0.0) {
    throw std::invalid_argument("generate_lorenz: dt and sample_dt must be > 0");
  }
  const double ratio = params.sample_dt / params.dt;
  const auto steps_per_sample = static_cast<std::size_t>(std::llround(ratio));
  if (steps_per_sample == 0 || std::abs(ratio - static_cast<double>(steps_per_sample)) > 1e-9) {
    throw std::invalid_argument("generate_lorenz: sample_dt must be a multiple of dt");
  }

  State s{params.x0, params.y0, params.z0};
  const auto burn_steps = static_cast<std::size_t>(std::llround(params.burn_in / params.dt));
  for (std::size_t i = 0; i < burn_steps; ++i) rk4_step(s, params.dt, params);

  std::vector<double> samples;
  samples.reserve(count);
  samples.push_back(s[0]);
  for (std::size_t n = 1; n < count; ++n) {
    for (std::size_t i = 0; i < steps_per_sample; ++i) rk4_step(s, params.dt, params);
    samples.push_back(s[0]);
  }
  return TimeSeries(std::move(samples), "lorenz_x");
}

}  // namespace ef::series
