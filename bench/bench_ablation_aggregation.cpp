// bench_ablation_aggregation — Ablation D: how should matching rules'
// outputs be combined? The paper (§3.4) averages; this bench trains one
// system on Mackey-Glass τ = 50 and replays the same test set under five
// aggregation strategies, then runs rule-set compaction and verifies the
// error is unchanged while the rule count (and query cost) drops.
#include <cstdio>

#include "bench_common.hpp"
#include "core/compaction.hpp"
#include "core/rule_system.hpp"
#include "series/mackey_glass.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full");
  const auto window = static_cast<std::size_t>(cli.get_int("window", 4));
  const auto stride = static_cast<std::size_t>(cli.get_int("stride", 6));
  const auto horizon = static_cast<std::size_t>(cli.get_int("horizon", 50));
  const auto generations =
      static_cast<std::size_t>(cli.get_int("generations", full ? 40000 : 15000));

  std::printf("Ablation D — vote aggregation & rule-set compaction "
              "(Mackey-Glass, tau=%zu)\n",
              horizon);
  ef::bench::print_rule('=');

  const auto experiment = ef::series::make_paper_mackey_glass();
  const ef::core::WindowDataset train(experiment.train, window, horizon, stride);
  const ef::core::WindowDataset test(experiment.test, window, horizon, stride);
  const auto actual = ef::bench::targets_of(test);

  ef::core::RuleSystemConfig cfg;
  cfg.evolution.population_size = 100;
  cfg.evolution.generations = generations;
  cfg.evolution.emax = 0.14;
  cfg.evolution.seed = 9;
  cfg.coverage_target_percent = 78.0;
  cfg.max_executions = 4;

  const auto trained = ef::core::train(train, {.config = cfg});
  std::printf("trained: %zu rules, train coverage %.1f%%\n\n", trained.system.size(),
              trained.train_coverage_percent);

  std::printf("%-18s | %8s %9s %9s\n", "aggregation", "cov%", "nmse", "rmse");
  ef::bench::print_rule();
  for (const auto how :
       {ef::core::Aggregation::kMean, ef::core::Aggregation::kFitnessWeighted,
        ef::core::Aggregation::kMedian, ef::core::Aggregation::kBestRule,
        ef::core::Aggregation::kInverseError}) {
    const auto forecast = trained.system.forecast_dataset(test, how);
    const auto report = ef::series::evaluate_partial(actual, forecast);
    std::printf("%-18s | %7.1f%% %9.4f %9.4f\n", ef::core::to_string(how),
                report.coverage_percent, report.nmse, report.rmse);
  }

  // --- compaction ------------------------------------------------------------
  ef::core::CompactionReport report;
  ef::core::CompactionOptions options;
  options.prediction_tolerance = cli.get_double("tolerance", 0.02);
  const auto slim = ef::core::compact(trained.system, report, options, &train);

  const auto before = ef::series::evaluate_partial(
      actual, trained.system.forecast_dataset(test));
  const auto after = ef::series::evaluate_partial(actual, slim.forecast_dataset(test));

  ef::bench::print_rule();
  std::printf("compaction: %zu -> %zu rules (%zu duplicates, %zu subsumed, %zu unfired "
              "removed)\n",
              report.input_rules, report.output_rules(), report.duplicates_removed,
              report.subsumed_removed, report.unfired_removed);
  std::printf("mean-aggregated NMSE before %.4f / after %.4f, coverage %.1f%% -> %.1f%%\n",
              before.nmse, after.nmse, before.coverage_percent, after.coverage_percent);
  std::printf("\nExpected shape: all aggregations agree within a few percent (votes are\n"
              "locally consistent); best-rule is noisiest. Compaction sheds a large\n"
              "fraction of the multi-execution union at (near-)unchanged accuracy.\n");
  ef::obs::emit_cli_report(cli);
  return 0;
}
