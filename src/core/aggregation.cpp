#include "core/aggregation.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ef::core {

std::optional<double> aggregate_votes(std::vector<Vote> votes, Aggregation how) {
  if (votes.empty()) return std::nullopt;

  switch (how) {
    case Aggregation::kMean: {
      double sum = 0.0;
      for (const Vote& v : votes) sum += v.value;
      return sum / static_cast<double>(votes.size());
    }
    case Aggregation::kFitnessWeighted: {
      // Negative-fitness (f_min) rules get zero weight; if every vote is
      // non-positive, fall back to the plain mean rather than dividing by 0.
      double weighted = 0.0;
      double total = 0.0;
      for (const Vote& v : votes) {
        const double w = std::max(v.fitness, 0.0);
        weighted += w * v.value;
        total += w;
      }
      if (total <= 0.0) return aggregate_votes(std::move(votes), Aggregation::kMean);
      return weighted / total;
    }
    case Aggregation::kMedian: {
      const std::size_t mid = votes.size() / 2;
      std::nth_element(votes.begin(), votes.begin() + static_cast<std::ptrdiff_t>(mid),
                       votes.end(),
                       [](const Vote& a, const Vote& b) { return a.value < b.value; });
      if (votes.size() % 2 == 1) return votes[mid].value;
      // Even count: average the two central order statistics.
      const double upper = votes[mid].value;
      double lower = votes[0].value;
      for (std::size_t i = 1; i < mid; ++i) lower = std::max(lower, votes[i].value);
      return 0.5 * (lower + upper);
    }
    case Aggregation::kBestRule: {
      const Vote* best = &votes.front();
      for (const Vote& v : votes) {
        if (v.fitness > best->fitness) best = &v;
      }
      return best->value;
    }
    case Aggregation::kInverseError: {
      constexpr double kEpsilon = 1e-9;
      double weighted = 0.0;
      double total = 0.0;
      for (const Vote& v : votes) {
        const double w = 1.0 / (v.error + kEpsilon);
        weighted += w * v.value;
        total += w;
      }
      return weighted / total;
    }
  }
  throw std::logic_error("aggregate_votes: unknown strategy");
}

double vote_bound(std::span<const Vote> votes, double value) {
  double bound = 0.0;
  for (const Vote& v : votes) {
    bound = std::max(bound, v.error + std::abs(v.value - value));
  }
  return bound;
}

std::vector<Vote> collect_votes(std::span<const Rule> rules,
                                std::span<const double> window) {
  std::vector<Vote> votes;
  for (const Rule& rule : rules) {
    if (!rule.predicting() || !rule.matches(window)) continue;
    votes.push_back(Vote{rule.forecast(window), rule.fitness(), rule.predicting()->error()});
  }
  return votes;
}

}  // namespace ef::core
