#include "fleet/long_csv.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <istream>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "series/csv.hpp"

namespace ef::fleet {
namespace {

/// Split one line on `delimiter` into at most 4 fields (id, timestamp,
/// value, rest); extra delimiters beyond the value column are tolerated so
/// wide long-format exports (extra feature columns) still load.
struct Row {
  std::string_view id;
  std::string_view value;
  bool ok = false;
};

Row split_row(std::string_view line, char delimiter) {
  Row row;
  const std::size_t first = line.find(delimiter);
  if (first == std::string_view::npos) return row;
  const std::size_t second = line.find(delimiter, first + 1);
  if (second == std::string_view::npos) return row;
  std::size_t value_end = line.find(delimiter, second + 1);
  if (value_end == std::string_view::npos) value_end = line.size();
  row.id = line.substr(0, first);
  row.value = line.substr(second + 1, value_end - second - 1);
  row.ok = true;
  return row;
}

std::optional<double> parse_value(std::string_view text) {
  if (text.empty()) return std::nullopt;
  try {
    std::size_t consumed = 0;
    const double v = std::stod(std::string(text), &consumed);
    // Trailing junk after the number ("1.5x") is a malformed cell, not a
    // partial parse. Trailing whitespace (CR already stripped) is fine.
    while (consumed < text.size() &&
           (text[consumed] == ' ' || text[consumed] == '\t')) {
      ++consumed;
    }
    if (consumed != text.size()) return std::nullopt;
    return v;
  } catch (const std::exception&) {
    return std::nullopt;
  }
}

}  // namespace

std::vector<SeriesRecord> read_long_csv(std::istream& in, const LongCsvOptions& options) {
  std::vector<std::string> order;                           // ids by first appearance
  std::unordered_map<std::string, std::vector<double>> by_id;
  std::string line;
  std::size_t line_no = 0;
  std::size_t rows = 0;
  bool first_data_row = true;
  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    const Row row = split_row(line, options.delimiter);
    if (!row.ok) {
      throw std::runtime_error("read_long_csv: line " + std::to_string(line_no) +
                               ": expected at least 3 columns (series_id,timestamp,value)");
    }
    const std::optional<double> value = parse_value(row.value);
    if (!value) {
      // A non-numeric value column on the very first row is the header.
      if (first_data_row) {
        first_data_row = false;
        continue;
      }
      throw std::runtime_error("read_long_csv: line " + std::to_string(line_no) +
                               ": value '" + std::string(row.value) + "' is not numeric");
    }
    first_data_row = false;
    if (!std::isfinite(*value)) {
      throw std::runtime_error("read_long_csv: line " + std::to_string(line_no) +
                               ": non-finite value");
    }
    if (row.id.empty()) {
      throw std::runtime_error("read_long_csv: line " + std::to_string(line_no) +
                               ": empty series id");
    }
    if (++rows > options.max_rows) {
      throw std::runtime_error("read_long_csv: row count exceeds limit");
    }
    const std::string id(row.id);
    auto it = by_id.find(id);
    if (it == by_id.end()) {
      if (by_id.size() >= options.max_series) {
        throw std::runtime_error("read_long_csv: series count exceeds limit");
      }
      it = by_id.emplace(id, std::vector<double>{}).first;
      order.push_back(id);
    }
    it->second.push_back(*value);
  }

  std::vector<SeriesRecord> out;
  out.reserve(order.size());
  for (const std::string& id : order) {
    out.push_back({id, series::TimeSeries(std::move(by_id[id]), id)});
  }
  return out;
}

std::vector<SeriesRecord> read_long_csv(const std::string& path, const LongCsvOptions& options) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_long_csv: cannot open '" + path + "'");
  return read_long_csv(in, options);
}

std::vector<SeriesRecord> read_series_directory(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) {
    throw std::runtime_error("read_series_directory: '" + dir + "' is not a directory");
  }
  std::vector<std::filesystem::path> files;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".csv") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());

  std::vector<SeriesRecord> out;
  out.reserve(files.size());
  for (const auto& path : files) {
    out.push_back({path.stem().string(), series::read_series_csv(path.string())});
  }
  return out;
}

}  // namespace ef::fleet
