// Tests for core/evolution.hpp: steady-state invariants (population size,
// replacement only improves the slot), determinism, telemetry, learning on a
// predictable series.
#include "core/evolution.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "series/mackey_glass.hpp"
#include "series/timeseries.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::EvolutionConfig;
using ef::core::SteadyStateEngine;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

TimeSeries noisy_sine(std::size_t n, double noise, std::uint64_t seed = 123) {
  ef::util::Rng rng(seed);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(static_cast<double>(i) * 0.2) + rng.normal(0.0, noise);
  }
  return TimeSeries(std::move(v), "noisy_sine");
}

EvolutionConfig small_config() {
  EvolutionConfig cfg;
  cfg.population_size = 20;
  cfg.generations = 300;
  cfg.emax = 0.3;
  cfg.seed = 77;
  return cfg;
}

TEST(Engine, PopulationSizeInvariantAcrossGenerations) {
  const TimeSeries s = noisy_sine(400, 0.05);
  const WindowDataset data(s, 4, 1);
  SteadyStateEngine engine(data, small_config());
  for (int g = 0; g < 200; ++g) {
    engine.step();
    ASSERT_EQ(engine.population().size(), 20u);
  }
}

TEST(Engine, EveryIndividualStaysEvaluated) {
  const TimeSeries s = noisy_sine(400, 0.05);
  const WindowDataset data(s, 4, 1);
  SteadyStateEngine engine(data, small_config());
  for (int g = 0; g < 100; ++g) engine.step();
  for (const auto& r : engine.population()) {
    ASSERT_TRUE(r.predicting().has_value());
    EXPECT_TRUE(std::isfinite(r.fitness()));
  }
}

TEST(Engine, GenerationCounterAdvances) {
  const TimeSeries s = noisy_sine(300, 0.05);
  const WindowDataset data(s, 4, 1);
  SteadyStateEngine engine(data, small_config());
  EXPECT_EQ(engine.generation(), 0u);
  engine.step();
  EXPECT_EQ(engine.generation(), 1u);
  engine.run();
  EXPECT_EQ(engine.generation(), 300u);
}

TEST(Engine, DeterministicForSameSeed) {
  const TimeSeries s = noisy_sine(400, 0.05);
  const WindowDataset data(s, 4, 1);
  SteadyStateEngine a(data, small_config());
  SteadyStateEngine b(data, small_config());
  a.run();
  b.run();
  ASSERT_EQ(a.population().size(), b.population().size());
  for (std::size_t i = 0; i < a.population().size(); ++i) {
    EXPECT_DOUBLE_EQ(a.population()[i].fitness(), b.population()[i].fitness());
    for (std::size_t j = 0; j < a.population()[i].window(); ++j) {
      EXPECT_EQ(a.population()[i].genes()[j], b.population()[i].genes()[j]);
    }
  }
  EXPECT_EQ(a.replacements(), b.replacements());
}

TEST(Engine, DifferentSeedsProduceDifferentRuns) {
  const TimeSeries s = noisy_sine(400, 0.05);
  const WindowDataset data(s, 4, 1);
  EvolutionConfig cfg1 = small_config();
  EvolutionConfig cfg2 = small_config();
  cfg2.seed = 78;
  SteadyStateEngine a(data, cfg1);
  SteadyStateEngine b(data, cfg2);
  a.run();
  b.run();
  // Same init (deterministic §3.2), different evolution: at least some slots
  // diverge.
  bool any_different = false;
  for (std::size_t i = 0; i < a.population().size() && !any_different; ++i) {
    for (std::size_t j = 0; j < a.population()[i].window(); ++j) {
      if (!(a.population()[i].genes()[j] == b.population()[i].genes()[j])) {
        any_different = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_different);
}

// Replacement contract: mean fitness never decreases in a steady-state run
// with better-only replacement (each accepted offspring strictly improves
// its slot; rejected offspring change nothing).
TEST(Engine, MeanFitnessNonDecreasing) {
  const TimeSeries s = noisy_sine(500, 0.05);
  const WindowDataset data(s, 4, 1);
  SteadyStateEngine engine(data, small_config());
  double last_mean = engine.snapshot().mean_fitness;
  for (int g = 0; g < 300; ++g) {
    engine.step();
    const double mean = engine.snapshot().mean_fitness;
    ASSERT_GE(mean, last_mean - 1e-12);
    last_mean = mean;
  }
}

TEST(Engine, ReplacementsCountedCorrectly) {
  const TimeSeries s = noisy_sine(400, 0.05);
  const WindowDataset data(s, 4, 1);
  SteadyStateEngine engine(data, small_config());
  std::size_t accepted = 0;
  for (int g = 0; g < 200; ++g) {
    if (engine.step()) ++accepted;
  }
  EXPECT_EQ(engine.replacements(), accepted);
}

TEST(Engine, LearnsNoisySine) {
  // On a low-noise sine, evolution should raise the mean fitness clearly
  // above the §3.2 initial population's.
  const TimeSeries s = noisy_sine(600, 0.02);
  const WindowDataset data(s, 4, 1);
  EvolutionConfig cfg = small_config();
  cfg.generations = 2000;
  cfg.emax = 0.2;
  SteadyStateEngine engine(data, cfg);
  const double initial_mean = engine.snapshot().mean_fitness;
  engine.run();
  const double final_mean = engine.snapshot().mean_fitness;
  EXPECT_GT(final_mean, initial_mean * 1.05 + 1.0);
  EXPECT_GT(engine.replacements(), 50u);
}

TEST(Engine, TelemetryEmittedAtStride) {
  const TimeSeries s = noisy_sine(300, 0.05);
  const WindowDataset data(s, 4, 1);
  EvolutionConfig cfg = small_config();
  cfg.generations = 100;
  cfg.telemetry_stride = 10;
  ef::core::TelemetryCollector collector;
  SteadyStateEngine engine(data, cfg, nullptr, collector.sink());
  engine.run();
  // Generation 0 snapshot + one per 10 generations.
  ASSERT_EQ(collector.records().size(), 11u);
  EXPECT_EQ(collector.records().front().generation, 0u);
  EXPECT_EQ(collector.records().back().generation, 100u);
}

TEST(Engine, TelemetryOffByDefault) {
  const TimeSeries s = noisy_sine(300, 0.05);
  const WindowDataset data(s, 4, 1);
  ef::core::TelemetryCollector collector;
  EvolutionConfig cfg = small_config();
  cfg.generations = 50;
  cfg.telemetry_stride = 0;
  SteadyStateEngine engine(data, cfg, nullptr, collector.sink());
  engine.run();
  EXPECT_EQ(collector.records().size(), 1u);  // only the generation-0 snapshot
}

TEST(Engine, InvalidConfigThrows) {
  const TimeSeries s = noisy_sine(300, 0.05);
  const WindowDataset data(s, 4, 1);
  EvolutionConfig cfg = small_config();
  cfg.population_size = 1;
  EXPECT_THROW(SteadyStateEngine(data, cfg), std::invalid_argument);
  cfg = small_config();
  cfg.emax = 0.0;
  EXPECT_THROW(SteadyStateEngine(data, cfg), std::invalid_argument);
}

TEST(Engine, BestReturnsHighestFitness) {
  const TimeSeries s = noisy_sine(400, 0.05);
  const WindowDataset data(s, 4, 1);
  SteadyStateEngine engine(data, small_config());
  engine.run();
  const double best = engine.best().fitness();
  for (const auto& r : engine.population()) EXPECT_LE(r.fitness(), best);
}

TEST(Engine, JaccardCrowdingRunsAndKeepsInvariants) {
  const TimeSeries s = noisy_sine(400, 0.05);
  const WindowDataset data(s, 4, 1);
  EvolutionConfig cfg = small_config();
  cfg.distance = ef::core::DistanceMetric::kMatchedJaccard;
  cfg.generations = 200;
  SteadyStateEngine engine(data, cfg);
  engine.run();
  EXPECT_EQ(engine.population().size(), cfg.population_size);
  for (const auto& r : engine.population()) EXPECT_TRUE(r.predicting().has_value());
}

TEST(Engine, ConditionOverlapCrowdingRuns) {
  const TimeSeries s = noisy_sine(400, 0.05);
  const WindowDataset data(s, 4, 1);
  EvolutionConfig cfg = small_config();
  cfg.distance = ef::core::DistanceMetric::kConditionOverlap;
  cfg.generations = 200;
  SteadyStateEngine engine(data, cfg);
  engine.run();
  EXPECT_EQ(engine.population().size(), cfg.population_size);
}

TEST(Engine, MackeyGlassSmokeRun) {
  const auto exp = ef::series::make_paper_mackey_glass();
  const WindowDataset data(exp.train, 4, 1);
  EvolutionConfig cfg;
  cfg.population_size = 30;
  cfg.generations = 500;
  cfg.emax = 0.15;
  cfg.seed = 5;
  SteadyStateEngine engine(data, cfg);
  engine.run();
  EXPECT_GT(engine.snapshot().mean_fitness, 0.0);
}

}  // namespace
