// transforms.hpp — invertible series preprocessing.
//
// The preprocessing toolbox a forecasting user expects next to normalisers:
// differencing (removes trend), seasonal differencing (removes a fixed
// period), log1p scaling (stabilises multiplicative variance — sunspot-like
// counts), and a centred moving average (analysis smoothing; *not*
// invertible, clearly marked). Forward transforms shrink the series (by the
// lag); inversion requires the withheld prefix, which the transform result
// carries so round-trips are mechanical.
#pragma once

#include <cstddef>
#include <vector>

#include "series/timeseries.hpp"

namespace ef::series {

/// Result of a differencing transform: the differenced body plus the prefix
/// needed to undifference.
struct Differenced {
  TimeSeries series;           ///< y_t = x_{t+lag} − x_t  (size = n − lag)
  std::vector<double> prefix;  ///< x_0 … x_{lag−1}, required by inverse
  std::size_t lag = 1;
};

/// First (lag = 1) or seasonal (lag = period) difference.
/// Throws std::invalid_argument when lag == 0 or series.size() <= lag.
[[nodiscard]] Differenced difference(const TimeSeries& s, std::size_t lag = 1);

/// Invert `difference`: reconstructs the original series exactly.
/// Throws std::invalid_argument when prefix/lag are inconsistent.
[[nodiscard]] TimeSeries undifference(const Differenced& d);

/// log(1 + x) transform. Throws std::invalid_argument when any value ≤ −1
/// (log1p undefined); sunspot-like non-negative series are always safe.
[[nodiscard]] TimeSeries log1p_transform(const TimeSeries& s);

/// Inverse of log1p_transform (expm1 per value).
[[nodiscard]] TimeSeries expm1_transform(const TimeSeries& s);

/// Centred moving average of width 2·half + 1 (edges use the available
/// samples only). Smoothing for analysis/plots — not invertible.
[[nodiscard]] TimeSeries moving_average(const TimeSeries& s, std::size_t half);

}  // namespace ef::series
