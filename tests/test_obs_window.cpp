// Windowed collector: synthetic-timestamp ticks over a private registry,
// including the acceptance scenario — a load change visible in the windowed
// serve.request_us quantiles that the lifetime histogram smears away.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/window.hpp"

namespace {

using ef::obs::Registry;
using ef::obs::WindowSnapshot;
using ef::obs::WindowedCollector;
using std::chrono::milliseconds;
using std::chrono::seconds;
using std::chrono::steady_clock;

TEST(WindowedCollector, EmptyUntilTwoFrames) {
  Registry registry;
  (void)registry.counter("c");
  WindowedCollector collector(registry);
  EXPECT_EQ(collector.window().window_seconds, 0.0);
  const auto t0 = steady_clock::now();
  collector.tick(t0);
  EXPECT_EQ(collector.window().window_seconds, 0.0);
  collector.tick(t0 + seconds(1));
  EXPECT_GT(collector.window().window_seconds, 0.0);
}

TEST(WindowedCollector, CounterDeltaAndRate) {
  Registry registry;
  auto& counter = registry.counter("serve.requests");
  WindowedCollector collector(registry);
  const auto t0 = steady_clock::now();

  counter.add(100);
  collector.tick(t0);
  counter.add(50);
  collector.tick(t0 + seconds(10));

  const auto windowed = collector.counter_rate("serve.requests");
  ASSERT_TRUE(windowed.has_value());
  EXPECT_EQ(windowed->delta, 50u);          // only in-window increments
  EXPECT_NEAR(windowed->per_sec, 5.0, 1e-9);
  EXPECT_EQ(counter.value(), 150u);         // lifetime untouched
}

TEST(WindowedCollector, CounterResetClamps) {
  Registry registry;
  auto& counter = registry.counter("c");
  WindowedCollector collector(registry);
  const auto t0 = steady_clock::now();

  counter.add(1000);
  collector.tick(t0);
  registry.reset_values();
  counter.add(7);
  collector.tick(t0 + seconds(1));

  const auto windowed = collector.counter_rate("c");
  ASSERT_TRUE(windowed.has_value());
  EXPECT_EQ(windowed->delta, 7u);  // not a huge underflow
}

TEST(WindowedCollector, InstrumentBornInsideWindow) {
  Registry registry;
  WindowedCollector collector(registry);
  const auto t0 = steady_clock::now();
  collector.tick(t0);
  registry.counter("born.late").add(3);
  registry.histogram("h.late").observe(4.0);
  collector.tick(t0 + seconds(1));

  const auto counter = collector.counter_rate("born.late");
  ASSERT_TRUE(counter.has_value());
  EXPECT_EQ(counter->delta, 3u);
  const auto histogram = collector.histogram_window("h.late");
  ASSERT_TRUE(histogram.has_value());
  EXPECT_EQ(histogram->count, 1u);
}

TEST(WindowedCollector, FramesExpireBeyondHorizon) {
  Registry registry;
  auto& counter = registry.counter("c");
  WindowedCollector collector(registry, {.bucket = milliseconds(1000), .buckets = 5});
  const auto t0 = steady_clock::now();

  counter.add(100);
  collector.tick(t0);
  for (int s = 1; s <= 10; ++s) {
    counter.add(1);
    collector.tick(t0 + seconds(s));
  }
  const auto windowed = collector.counter_rate("c");
  ASSERT_TRUE(windowed.has_value());
  // The t0 frame (and its 100-increment baseline) fell off the 5 s horizon:
  // the visible delta covers only the retained ring.
  EXPECT_LE(windowed->delta, 6u);
  EXPECT_GE(windowed->delta, 4u);
}

// The tentpole acceptance: a server that ran fast for a long time, then got
// slow. Lifetime p90 stays dominated by the fast bulk; the windowed p90
// tracks the regression.
TEST(WindowedCollector, WindowedQuantilesTrackLoadChangeLifetimeSmears) {
  Registry registry;
  auto& latency = registry.histogram("serve.request_us");
  WindowedCollector collector(registry);
  const auto t0 = steady_clock::now();

  // Phase 1: 10k fast requests (~4 µs) — the long quiet history.
  for (int i = 0; i < 10000; ++i) latency.observe(4.0);
  collector.tick(t0);

  // Phase 2: 100 slow requests (~4096 µs) inside the observation window.
  for (int i = 0; i < 100; ++i) latency.observe(4096.0);
  collector.tick(t0 + seconds(30));

  const auto lifetime = latency.stats();
  // Lifetime smears: 10000 fast vs 100 slow → p90 still in the fast bucket.
  EXPECT_LT(lifetime.p90, 100.0);

  const auto windowed = collector.histogram_window("serve.request_us");
  ASSERT_TRUE(windowed.has_value());
  EXPECT_EQ(windowed->count, 100u);
  // Windowed: every in-window observation is slow → p50/p90 near 4096 µs.
  EXPECT_GT(windowed->p50, 1000.0);
  EXPECT_GT(windowed->p90, 1000.0);
  EXPECT_NEAR(windowed->per_sec, 100.0 / 30.0, 1e-6);
}

TEST(WindowedCollector, BackgroundSamplerProducesFrames) {
  Registry registry;
  registry.counter("c").add(1);
  WindowedCollector collector(registry, {.bucket = milliseconds(20), .buckets = 10});
  EXPECT_FALSE(collector.sampling());
  collector.start();
  EXPECT_TRUE(collector.sampling());
  for (int i = 0; i < 100 && collector.window().window_seconds <= 0.0; ++i) {
    std::this_thread::sleep_for(milliseconds(10));
  }
  EXPECT_GT(collector.window().window_seconds, 0.0);
  collector.stop();
  EXPECT_FALSE(collector.sampling());
  collector.stop();  // idempotent
}

TEST(WindowedCollector, GlobalIsLazyAndNotSampling) {
  auto& collector = WindowedCollector::global();
  EXPECT_FALSE(collector.sampling());
  EXPECT_EQ(&collector, &WindowedCollector::global());
}

}  // namespace
