#include "baselines/arma.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/regression.hpp"

namespace ef::baselines {

void ArmaConfig::validate() const {
  if (p == 0 && q == 0) throw std::invalid_argument("ArmaConfig: p + q must be > 0");
  if (ridge < 0.0) throw std::invalid_argument("ArmaConfig: ridge must be >= 0");
}

Arma::Arma(ArmaConfig config) : config_(config) { config_.validate(); }

namespace {

/// Least squares with intercept via the shared regression kernel.
core::LinearFit fit_rows(const std::vector<std::vector<double>>& x,
                         const std::vector<double>& y, double ridge) {
  core::RegressionOptions options;
  options.ridge = ridge;
  options.constant_fallback_when_underdetermined = true;
  return core::fit_hyperplane(x, y, options);
}

}  // namespace

void Arma::fit(const core::WindowDataset& train) {
  horizon_ = train.horizon();
  const auto values = train.values();
  const std::size_t n = values.size();
  const std::size_t p = config_.p;
  const std::size_t q = config_.q;

  std::size_t long_ar = config_.long_ar;
  if (long_ar == 0) long_ar = std::max<std::size_t>(20, p + q + 5);
  long_ar = std::min(long_ar, n > 4 ? n / 4 : 1);
  if (n < long_ar + p + q + 4) {
    throw std::invalid_argument("Arma::fit: series too short for the requested orders");
  }

  // --- stage 1: long AR, residuals -------------------------------------------
  std::vector<std::vector<double>> x1;
  std::vector<double> y1;
  for (std::size_t t = long_ar; t < n; ++t) {
    std::vector<double> row(long_ar);
    for (std::size_t k = 0; k < long_ar; ++k) row[k] = values[t - 1 - k];
    x1.push_back(std::move(row));
    y1.push_back(values[t]);
  }
  const core::LinearFit long_fit = fit_rows(x1, y1, config_.ridge);

  std::vector<double> residuals(n, 0.0);
  for (std::size_t t = long_ar; t < n; ++t) {
    residuals[t] = values[t] - long_fit.predict(x1[t - long_ar]);
  }

  // --- stage 2: regress on p lags of x and q lags of ε̂ ------------------------
  const std::size_t start = std::max(long_ar, std::max(p, q));
  std::vector<std::vector<double>> x2;
  std::vector<double> y2;
  for (std::size_t t = start; t < n; ++t) {
    std::vector<double> row;
    row.reserve(p + q);
    for (std::size_t k = 1; k <= p; ++k) row.push_back(values[t - k]);
    for (std::size_t j = 1; j <= q; ++j) row.push_back(residuals[t - j]);
    x2.push_back(std::move(row));
    y2.push_back(values[t]);
  }
  const core::LinearFit fit = fit_rows(x2, y2, config_.ridge);

  phi_.assign(fit.coeffs.begin(), fit.coeffs.begin() + static_cast<long>(p));
  theta_.assign(fit.coeffs.begin() + static_cast<long>(p),
                fit.coeffs.begin() + static_cast<long>(p + q));
  intercept_ = fit.coeffs.back();
  fitted_ = true;
}

std::vector<double> Arma::filter_residuals(std::span<const double> values) const {
  const std::size_t p = config_.p;
  const std::size_t q = config_.q;
  std::vector<double> residuals(values.size(), 0.0);
  for (std::size_t t = 0; t < values.size(); ++t) {
    double pred = intercept_;
    for (std::size_t k = 1; k <= p; ++k) {
      // History before the window is approximated by the window's first
      // value (better than zero for level series).
      const double lag = t >= k ? values[t - k] : values.front();
      pred += phi_[k - 1] * lag;
    }
    for (std::size_t j = 1; j <= q; ++j) {
      const double eps = t >= j ? residuals[t - j] : 0.0;
      pred += theta_[j - 1] * eps;
    }
    residuals[t] = values[t] - pred;
  }
  return residuals;
}

double Arma::predict(std::span<const double> window) const {
  if (!fitted_) throw std::logic_error("Arma::predict before fit");
  if (window.empty()) throw std::invalid_argument("Arma::predict: empty window");

  const std::size_t p = config_.p;
  const std::size_t q = config_.q;

  // Reconstruct the innovations over the window, then iterate the recursion
  // horizon_ steps with future innovations zeroed.
  const std::vector<double> residuals = filter_residuals(window);
  std::vector<double> history(window.begin(), window.end());
  std::vector<double> eps = residuals;

  double forecast = history.back();
  for (std::size_t step = 0; step < horizon_; ++step) {
    double next = intercept_;
    for (std::size_t k = 1; k <= p; ++k) {
      const double lag =
          history.size() >= k ? history[history.size() - k] : history.front();
      next += phi_[k - 1] * lag;
    }
    for (std::size_t j = 1; j <= q; ++j) {
      const double e = eps.size() >= j ? eps[eps.size() - j] : 0.0;
      next += theta_[j - 1] * e;
    }
    history.push_back(next);
    eps.push_back(0.0);  // E[future innovation] = 0
    forecast = next;
  }
  return forecast;
}

}  // namespace ef::baselines
