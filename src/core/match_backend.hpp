// match_backend.hpp — pluggable implementations of the match hot loop.
//
// Evaluating one offspring rule tests every training window (up to ~45 000
// for Venice) against D interval genes; that scan dominates training
// wall-clock. This module isolates the per-range kernels behind a small
// enum so the engine (match_engine.hpp) can dispatch and callers can select:
//
//   * kScalar       — the row-wise reference scan: one window at a time,
//                     short-circuiting on the first failing gene.
//   * kSoa          — structure-of-arrays: one lag-major column pass per
//                     non-wildcard gene, AND-ing a branchless pass/fail flag
//                     per window. The inner loop is a pure compare-and-mask
//                     over contiguous doubles, which auto-vectorizes.
//   * kSoaPrefilter — SoA plus selectivity ordering: non-wildcard genes are
//                     processed narrowest-interval first. On views carrying
//                     the quantized byte mirror (WindowDataset builds one),
//                     the narrowest gene is relaxed to a byte range and
//                     scanned over uint8 columns — 8× less memory traffic
//                     than the double column, 16 lanes per SSE2 compare —
//                     and the surviving candidates are re-verified exactly
//                     against the contiguous row-major mirror (all genes,
//                     narrowest first). On plain views it falls back to a
//                     double column scan + in-place candidate compaction.
//
// All three kernels produce bit-identical match sets (ascending window
// indices, identical NaN semantics: a non-wildcard gene rejects NaN, a
// wildcard accepts anything) — backends differ only in speed. Quantization
// never costs a match: the byte mapping is monotone, so the relaxed byte
// range is a superset of the gene's exact interval, and every candidate is
// re-checked with the same double comparisons the scalar kernel uses. The
// engine default is kSoaPrefilter; the EVOFORECAST_MATCH_BACKEND environment
// variable overrides any configured choice (see resolve_match_backend).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "core/interval.hpp"

namespace ef::core {

enum class MatchBackend {
  kScalar,        ///< row-wise reference scan
  kSoa,           ///< lag-major vectorizable flag kernel
  kSoaPrefilter,  ///< lag-major with selectivity-ordered candidate pruning
};

[[nodiscard]] constexpr const char* to_string(MatchBackend b) noexcept {
  switch (b) {
    case MatchBackend::kScalar: return "scalar";
    case MatchBackend::kSoa: return "soa";
    case MatchBackend::kSoaPrefilter: return "soa_prefilter";
  }
  return "?";
}

/// Parse a backend name ("scalar", "soa", "soa_prefilter"; "soa+prefilter"
/// is accepted as an alias). nullopt on anything else.
[[nodiscard]] std::optional<MatchBackend> parse_match_backend(std::string_view name) noexcept;

/// Apply the EVOFORECAST_MATCH_BACKEND environment override to a configured
/// choice. An unset variable returns `configured` unchanged; a set but
/// unparsable value warns once on stderr and is ignored. The environment is
/// read once per process (the result is cached).
[[nodiscard]] MatchBackend resolve_match_backend(MatchBackend configured);

/// Lag-major (transposed) view of packed windows: column j holds the value
/// of lag j for every window, contiguously. Built once by WindowDataset at
/// construction; forecast_batch builds one per batch.
struct LagMajorView {
  const double* data = nullptr;  ///< window columns of `count` doubles each
  std::size_t count = 0;         ///< windows (rows of the logical matrix)
  std::size_t window = 0;        ///< lags (columns)

  /// Optional row-major mirror of the same windows (count × window,
  /// window-contiguous per row). When present together with `qdata`, the
  /// prefilter kernel verifies byte-pass candidates against one contiguous
  /// row instead of gathering from `window` strided columns.
  const double* rows = nullptr;

  /// Optional quantized lag-major mirror: byte = clamp(⌊(v − qmin)·qinv⌋,
  /// 0, 255), same column layout as `data`. The mapping is monotone, so a
  /// gene interval relaxed to byte bounds the same way yields a candidate
  /// superset — exact double verification then restores bit-identical match
  /// sets. nullptr on ad-hoc views (kernels fall back to double columns).
  const std::uint8_t* qdata = nullptr;
  double qmin = 0.0;  ///< quantization origin (dataset value minimum)
  double qinv = 0.0;  ///< 255 / (max − min); 0 for a constant series

  [[nodiscard]] const double* col(std::size_t j) const noexcept {
    return data + j * count;
  }
  [[nodiscard]] const std::uint8_t* qcol(std::size_t j) const noexcept {
    return qdata + j * count;
  }
};

/// Low-level kernels. Each appends the indices in [begin, end) whose window
/// matches `genes` to `out`, ascending. `genes.size()` must equal the view's
/// window length (callers handle the dimension-mismatch = matches-nothing
/// rule). Kernels are stateless and safe to call concurrently on disjoint
/// or overlapping ranges.
namespace matchkern {

/// Row-wise reference scan over row-major packed windows (`rows` is
/// count × window, window-contiguous per row).
void scalar_match(const double* rows, std::size_t window,
                  std::span<const Interval> genes, std::size_t begin, std::size_t end,
                  std::vector<std::size_t>& out);

/// SoA flag kernel: one column pass per non-wildcard gene.
void soa_match(const LagMajorView& view, std::span<const Interval> genes,
               std::size_t begin, std::size_t end, std::vector<std::size_t>& out);

/// SoA prefilter kernel: narrowest non-wildcard gene first, candidate-list
/// compaction for the rest. When `pruned_out` is non-null it accumulates the
/// number of windows eliminated by the first (most selective) gene — i.e.
/// windows never tested against the remaining genes.
void soa_prefilter_match(const LagMajorView& view, std::span<const Interval> genes,
                         std::size_t begin, std::size_t end, std::vector<std::size_t>& out,
                         std::size_t* pruned_out = nullptr);

}  // namespace matchkern

}  // namespace ef::core
