#include "core/match_engine.hpp"

#include <atomic>

#include "obs/macros.hpp"

namespace ef::core {
namespace {

/// Scan [begin, end) serially, appending matches to `out`.
void scan_range(const WindowDataset& data, const Rule& rule, std::size_t begin,
                std::size_t end, std::vector<std::size_t>& out) {
  const auto& genes = rule.genes();
  const std::size_t d = genes.size();
  if (d != data.window()) return;  // dimension mismatch: matches nothing
  for (std::size_t i = begin; i < end; ++i) {
    const std::span<const double> window = data.pattern(i);
    bool ok = true;
    for (std::size_t j = 0; j < d; ++j) {
      if (!genes[j].contains(window[j])) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(i);
  }
}

constexpr std::size_t kParallelGrain = 4096;

}  // namespace

MatchEngine::MatchEngine(const WindowDataset& data, util::ThreadPool* pool)
    : data_(data), pool_(pool ? pool : &util::ThreadPool::shared()) {}

std::vector<std::size_t> MatchEngine::match_indices_serial(const Rule& rule) const {
  std::vector<std::size_t> out;
  scan_range(data_, rule, 0, data_.count(), out);
  return out;
}

std::vector<std::size_t> MatchEngine::match_indices(const Rule& rule) const {
  EVOFORECAST_TRACE("core.match");
  const std::size_t m = data_.count();
  EVOFORECAST_COUNT("match.calls", 1);
  EVOFORECAST_COUNT("match.windows_tested", m);
  if (m <= kParallelGrain || pool_->size() <= 1) {
    auto out = match_indices_serial(rule);
    EVOFORECAST_COUNT("match.windows_matched", out.size());
    return out;
  }

  // One result buffer per chunk, keyed by the chunk's begin index so the
  // concatenation order is deterministic regardless of completion order.
  const std::size_t chunks = pool_->size();
  const std::size_t width = (m + chunks - 1) / chunks;
  std::vector<std::vector<std::size_t>> partial(chunks);

  pool_->parallel_for(
      0, m,
      [&](std::size_t begin, std::size_t end) {
        scan_range(data_, rule, begin, end, partial[begin / width]);
      },
      width);

  std::size_t total = 0;
  for (const auto& p : partial) total += p.size();
  std::vector<std::size_t> out;
  out.reserve(total);
  for (const auto& p : partial) out.insert(out.end(), p.begin(), p.end());
  EVOFORECAST_COUNT("match.windows_matched", out.size());
  return out;
}

std::size_t MatchEngine::match_count(const Rule& rule) const {
  EVOFORECAST_TRACE("core.match");
  const std::size_t m = data_.count();
  EVOFORECAST_COUNT("match.calls", 1);
  EVOFORECAST_COUNT("match.windows_tested", m);
  if (m <= kParallelGrain || pool_->size() <= 1) {
    const std::size_t count = match_indices_serial(rule).size();
    EVOFORECAST_COUNT("match.windows_matched", count);
    return count;
  }

  std::atomic<std::size_t> total{0};
  pool_->parallel_for(
      0, m,
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::size_t> local;
        scan_range(data_, rule, begin, end, local);
        total.fetch_add(local.size(), std::memory_order_relaxed);
      },
      kParallelGrain);
  EVOFORECAST_COUNT("match.windows_matched", total.load());
  return total.load();
}

}  // namespace ef::core
