#include "baselines/linalg.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace ef::baselines {
namespace {

void require(bool ok, const char* what) {
  if (!ok) throw std::invalid_argument(std::string("linalg: ") + what);
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  require(data_.size() == rows * cols, "Matrix: data size != rows*cols");
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

void gemv(const Matrix& a, std::span<const double> x, std::span<double> y) {
  require(x.size() == a.cols() && y.size() == a.rows(), "gemv: shape mismatch");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    double acc = 0.0;
    const auto row = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
}

void gemv_t(const Matrix& a, std::span<const double> x, std::span<double> y) {
  require(x.size() == a.rows() && y.size() == a.cols(), "gemv_t: shape mismatch");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double xr = x[r];
    const auto row = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) y[c] += row[c] * xr;
  }
}

Matrix gemm(const Matrix& a, const Matrix& b) {
  require(a.cols() == b.rows(), "gemm: inner dimension mismatch");
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < a.cols(); ++k) {
      const double aik = a(i, k);
      if (aik == 0.0) continue;
      for (std::size_t j = 0; j < b.cols(); ++j) c(i, j) += aik * b(k, j);
    }
  }
  return c;
}

void axpy(double alpha, std::span<const double> x, std::span<double> y) {
  require(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void rank1_update(Matrix& a, double alpha, std::span<const double> x,
                  std::span<const double> y) {
  require(x.size() == a.rows() && y.size() == a.cols(), "rank1_update: shape mismatch");
  for (std::size_t r = 0; r < a.rows(); ++r) {
    const double ax = alpha * x[r];
    auto row = a.row(r);
    for (std::size_t c = 0; c < a.cols(); ++c) row[c] += ax * y[c];
  }
}

double dot(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "dot: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

double norm2(std::span<const double> x) { return std::sqrt(dot(x, x)); }

double squared_distance(std::span<const double> x, std::span<const double> y) {
  require(x.size() == y.size(), "squared_distance: size mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double d = x[i] - y[i];
    acc += d * d;
  }
  return acc;
}

std::vector<double> solve_least_squares_qr(const Matrix& a, std::span<const double> b) {
  const std::size_t m = a.rows();
  const std::size_t n = a.cols();
  require(b.size() == m, "solve_least_squares_qr: rhs size mismatch");
  require(m >= n && n > 0, "solve_least_squares_qr: need m >= n > 0");

  // Householder QR applied to a working copy of [A | b].
  Matrix r = a;
  std::vector<double> rhs(b.begin(), b.end());

  for (std::size_t k = 0; k < n; ++k) {
    // Householder vector for column k, rows k..m-1.
    double sigma = 0.0;
    for (std::size_t i = k; i < m; ++i) sigma += r(i, k) * r(i, k);
    const double col_norm = std::sqrt(sigma);
    if (col_norm < 1e-300) throw std::runtime_error("solve_least_squares_qr: rank deficient");

    const double alpha = r(k, k) >= 0.0 ? -col_norm : col_norm;
    std::vector<double> v(m - k, 0.0);
    v[0] = r(k, k) - alpha;
    for (std::size_t i = k + 1; i < m; ++i) v[i - k] = r(i, k);
    const double v_norm_sq = dot(v, v);
    if (v_norm_sq < 1e-300) {
      // Column already reduced; still check the pivot magnitude.
      if (std::abs(alpha) < 1e-12) {
        throw std::runtime_error("solve_least_squares_qr: rank deficient");
      }
      r(k, k) = alpha;
      continue;
    }

    // Reflect the remaining columns and the rhs: x ← x − 2 v (vᵀx)/(vᵀv).
    for (std::size_t j = k; j < n; ++j) {
      double proj = 0.0;
      for (std::size_t i = k; i < m; ++i) proj += v[i - k] * r(i, j);
      const double scale = 2.0 * proj / v_norm_sq;
      for (std::size_t i = k; i < m; ++i) r(i, j) -= scale * v[i - k];
    }
    double proj = 0.0;
    for (std::size_t i = k; i < m; ++i) proj += v[i - k] * rhs[i];
    const double scale = 2.0 * proj / v_norm_sq;
    for (std::size_t i = k; i < m; ++i) rhs[i] -= scale * v[i - k];
  }

  // Back-substitution on the upper-triangular n×n block.
  std::vector<double> w(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = rhs[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= r(ii, j) * w[j];
    const double pivot = r(ii, ii);
    if (std::abs(pivot) < 1e-12) {
      throw std::runtime_error("solve_least_squares_qr: rank deficient");
    }
    w[ii] = acc / pivot;
  }
  return w;
}

}  // namespace ef::baselines
