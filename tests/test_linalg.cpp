// Tests for baselines/linalg.hpp: kernels against hand references, QR
// least-squares against the normal-equation solution.
#include "baselines/linalg.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace {

namespace bl = ef::baselines;
using bl::Matrix;

TEST(Matrix, ConstructionAndIndexing) {
  Matrix m(2, 3);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(m(r, c), 0.0);
  }
  m(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m(1, 2), 5.0);
}

TEST(Matrix, FromDataSizeChecked) {
  EXPECT_THROW(Matrix(2, 2, {1.0, 2.0, 3.0}), std::invalid_argument);
  const Matrix m(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, Transpose) {
  const Matrix m(2, 3, {1, 2, 3, 4, 5, 6});
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(0, 1), 4.0);
  EXPECT_DOUBLE_EQ(t(2, 0), 3.0);
}

TEST(Gemv, KnownProduct) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const std::vector<double> x{1, 0, -1};
  std::vector<double> y(2, 0.0);
  bl::gemv(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
}

TEST(Gemv, ShapeMismatchThrows) {
  const Matrix a(2, 3);
  std::vector<double> x(2, 0.0);
  std::vector<double> y(2, 0.0);
  EXPECT_THROW(bl::gemv(a, x, y), std::invalid_argument);
}

TEST(GemvT, TransposeProduct) {
  const Matrix a(2, 3, {1, 2, 3, 4, 5, 6});
  const std::vector<double> x{1, 1};
  std::vector<double> y(3, 99.0);  // must be overwritten, not accumulated
  bl::gemv_t(a, x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  EXPECT_DOUBLE_EQ(y[2], 9.0);
}

TEST(Gemm, KnownProduct) {
  const Matrix a(2, 2, {1, 2, 3, 4});
  const Matrix b(2, 2, {5, 6, 7, 8});
  const Matrix c = bl::gemm(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Gemm, InnerDimensionChecked) {
  EXPECT_THROW((void)bl::gemm(Matrix(2, 3), Matrix(2, 2)), std::invalid_argument);
}

TEST(Axpy, Accumulates) {
  const std::vector<double> x{1, 2, 3};
  std::vector<double> y{10, 20, 30};
  bl::axpy(0.5, x, y);
  EXPECT_DOUBLE_EQ(y[0], 10.5);
  EXPECT_DOUBLE_EQ(y[2], 31.5);
}

TEST(Rank1Update, OuterProduct) {
  Matrix a(2, 2);
  const std::vector<double> x{1, 2};
  const std::vector<double> y{3, 4};
  bl::rank1_update(a, 2.0, x, y);
  EXPECT_DOUBLE_EQ(a(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(a(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 12.0);
  EXPECT_DOUBLE_EQ(a(1, 1), 16.0);
}

TEST(DotNorm, Values) {
  const std::vector<double> x{3, 4};
  EXPECT_DOUBLE_EQ(bl::dot(x, x), 25.0);
  EXPECT_DOUBLE_EQ(bl::norm2(x), 5.0);
  const std::vector<double> y{1, 1};
  EXPECT_DOUBLE_EQ(bl::squared_distance(x, y), 4.0 + 9.0);
}

TEST(LeastSquaresQr, ExactSystem) {
  // Square full-rank system → exact solution.
  const Matrix a(2, 2, {2, 0, 0, 4});
  const std::vector<double> b{6, 8};
  const auto w = bl::solve_least_squares_qr(a, b);
  EXPECT_NEAR(w[0], 3.0, 1e-12);
  EXPECT_NEAR(w[1], 2.0, 1e-12);
}

TEST(LeastSquaresQr, OverdeterminedRecoversPlane) {
  ef::util::Rng rng(1);
  const std::size_t m = 100;
  Matrix a(m, 3);
  std::vector<double> b(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    a(i, 0) = rng.uniform(-1, 1);
    a(i, 1) = rng.uniform(-1, 1);
    a(i, 2) = 1.0;
    b[i] = 2.0 * a(i, 0) - 0.5 * a(i, 1) + 3.0;
  }
  const auto w = bl::solve_least_squares_qr(a, b);
  EXPECT_NEAR(w[0], 2.0, 1e-10);
  EXPECT_NEAR(w[1], -0.5, 1e-10);
  EXPECT_NEAR(w[2], 3.0, 1e-10);
}

TEST(LeastSquaresQr, NoisyFitMinimisesResidual) {
  ef::util::Rng rng(2);
  const std::size_t m = 200;
  Matrix a(m, 2);
  std::vector<double> b(m, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    a(i, 0) = rng.uniform(-1, 1);
    a(i, 1) = 1.0;
    b[i] = 5.0 * a(i, 0) + 1.0 + rng.normal(0.0, 0.1);
  }
  const auto w = bl::solve_least_squares_qr(a, b);
  const auto sse = [&](double w0, double w1) {
    double acc = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      const double r = b[i] - (w0 * a(i, 0) + w1 * a(i, 1));
      acc += r * r;
    }
    return acc;
  };
  const double base = sse(w[0], w[1]);
  EXPECT_GE(sse(w[0] + 0.01, w[1]), base);
  EXPECT_GE(sse(w[0], w[1] + 0.01), base);
  EXPECT_NEAR(w[0], 5.0, 0.05);
}

TEST(LeastSquaresQr, RankDeficientThrows) {
  Matrix a(3, 2);
  for (std::size_t i = 0; i < 3; ++i) {
    a(i, 0) = static_cast<double>(i);
    a(i, 1) = 2.0 * static_cast<double>(i);  // col2 = 2·col1
  }
  const std::vector<double> b{1, 2, 3};
  EXPECT_THROW((void)bl::solve_least_squares_qr(a, b), std::runtime_error);
}

TEST(LeastSquaresQr, ShapeErrorsThrow) {
  const Matrix a(2, 3);
  const std::vector<double> b{1, 2};
  EXPECT_THROW((void)bl::solve_least_squares_qr(a, b), std::invalid_argument);  // m < n
  const Matrix ok(3, 2);
  const std::vector<double> wrong{1, 2};
  EXPECT_THROW((void)bl::solve_least_squares_qr(ok, wrong), std::invalid_argument);
}

}  // namespace
