// holt_winters.hpp — additive Holt-Winters exponential smoothing.
//
// The classical-statistics comparator family the paper's introduction
// gestures at ("linear stochastic models ... simple models [whose]
// computational burden is low"). Additive triple smoothing maintains level,
// trend and a seasonal profile:
//   ℓ_t = α(y_t − s_{t−m}) + (1−α)(ℓ_{t−1} + b_{t−1})
//   b_t = β(ℓ_t − ℓ_{t−1}) + (1−β) b_{t−1}
//   s_t = γ(y_t − ℓ_t) + (1−γ) s_{t−m}
//   ŷ_{t+τ} = ℓ_t + τ·b_t + s_{t+τ−m·⌈τ/m⌉}
//
// The Forecaster interface is window-based, so prediction replays the
// smoother over the supplied window starting from the fitted global state's
// priors; smoothing parameters are fitted on the training series by a coarse
// grid search over (α, β, γ) minimising one-step-ahead SSE.
#pragma once

#include <cstddef>
#include <vector>

#include "baselines/forecaster.hpp"

namespace ef::baselines {

struct HoltWintersConfig {
  std::size_t period = 12;  ///< season length m in samples
  /// Grid for the parameter search; each axis sweeps {0.05 … 0.95}.
  std::size_t grid_points = 5;
  /// Fix parameters instead of searching (set to >= 0 to pin).
  double alpha = -1.0;
  double beta = -1.0;
  double gamma = -1.0;

  void validate() const;
};

class HoltWinters final : public Forecaster {
 public:
  explicit HoltWinters(HoltWintersConfig config = {});

  void fit(const core::WindowDataset& train) override;
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "holt_winters"; }

  [[nodiscard]] double alpha() const noexcept { return alpha_; }
  [[nodiscard]] double beta() const noexcept { return beta_; }
  [[nodiscard]] double gamma() const noexcept { return gamma_; }

 private:
  /// Run the smoother over `values`, return the τ-ahead forecast from its
  /// final state. `sse` (optional) accumulates one-step-ahead errors.
  [[nodiscard]] double smooth_and_forecast(std::span<const double> values,
                                           std::size_t horizon, double alpha, double beta,
                                           double gamma, double* sse) const;

  HoltWintersConfig config_;
  double alpha_ = 0.5;
  double beta_ = 0.1;
  double gamma_ = 0.3;
  std::size_t horizon_ = 1;
  bool fitted_ = false;
};

}  // namespace ef::baselines
