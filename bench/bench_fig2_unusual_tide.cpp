// bench_fig2_unusual_tide — reproduces Figure 2: predicted vs real water
// level around an *unusual* high tide at horizon τ = 1. The bench trains the
// rule system, locates the highest water-level event in the validation span,
// prints an ASCII overlay of real vs predicted, reports accuracy inside the
// event window vs the whole set, and writes the trace to fig2_trace.csv for
// external plotting.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/rule_system.hpp"
#include "series/csv.hpp"
#include "series/venice.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full");

  const auto train_hours =
      static_cast<std::size_t>(cli.get_int("train-hours", full ? 45000 : 8000));
  const auto validation_hours =
      static_cast<std::size_t>(cli.get_int("validation-hours", full ? 10000 : 2000));
  const auto window = static_cast<std::size_t>(cli.get_int("window", 24));
  constexpr std::size_t kHorizon = 1;

  std::printf("Figure 2 reproduction — prediction of an unusual high tide, horizon 1\n");
  ef::bench::print_rule('=');

  const auto experiment = ef::series::make_paper_venice(train_hours, validation_hours);
  const ef::core::WindowDataset train(experiment.train, window, kHorizon);
  const ef::core::WindowDataset validation(experiment.validation, window, kHorizon);

  ef::core::RuleSystemConfig cfg;
  cfg.evolution.population_size =
      static_cast<std::size_t>(cli.get_int("population", 100));
  cfg.evolution.generations =
      static_cast<std::size_t>(cli.get_int("generations", full ? 75000 : 6000));
  cfg.evolution.emax = cli.get_double("emax", 18.0);
  cfg.evolution.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2));
  cfg.coverage_target_percent = 97.0;
  cfg.max_executions = 4;

  const auto rs = ef::bench::run_rule_system(train, validation, cfg);
  const auto actual = ef::bench::targets_of(validation);

  // Locate the largest event: the index of the maximum validation target.
  const std::size_t peak = static_cast<std::size_t>(
      std::max_element(actual.begin(), actual.end()) - actual.begin());
  const std::size_t half_span = 60;  // hours around the event
  const std::size_t begin = peak > half_span ? peak - half_span : 0;
  const std::size_t end = std::min(actual.size(), peak + half_span);

  std::printf("overall: coverage %.1f%%, RMSE %.2f cm over %zu covered points "
              "(%zu rules, %zu executions)\n",
              rs.report.coverage_percent, rs.report.rmse, rs.report.covered, rs.rules,
              rs.executions);
  std::printf("event:   peak %.1f cm at validation hour %zu (window shown: [%zu, %zu))\n",
              actual[peak], peak, begin, end);

  // Event-window accuracy vs whole-set accuracy.
  double event_err = 0.0;
  std::size_t event_covered = 0;
  std::vector<double> real_curve;
  std::vector<double> pred_curve;
  for (std::size_t i = begin; i < end; ++i) {
    real_curve.push_back(actual[i]);
    if (rs.forecast[i]) {
      pred_curve.push_back(*rs.forecast[i]);
      event_err += (actual[i] - *rs.forecast[i]) * (actual[i] - *rs.forecast[i]);
      ++event_covered;
    } else {
      // Abstentions plot as the last covered value to keep the curve visible.
      pred_curve.push_back(pred_curve.empty() ? actual[i] : pred_curve.back());
    }
  }
  if (event_covered > 0) {
    std::printf("event:   RMSE %.2f cm over %zu/%zu covered event hours\n",
                std::sqrt(event_err / static_cast<double>(event_covered)), event_covered,
                end - begin);
  }

  std::printf("\nReal ('.') vs predicted ('#') around the event:\n");
  ef::bench::ascii_plot({{'.', real_curve}, {'#', pred_curve}});

  // CSV trace for external plotting (NaN marks abstentions).
  ef::series::Table table;
  std::vector<double> hours;
  std::vector<double> reals;
  std::vector<double> preds;
  for (std::size_t i = begin; i < end; ++i) {
    hours.push_back(static_cast<double>(i));
    reals.push_back(actual[i]);
    preds.push_back(rs.forecast[i] ? *rs.forecast[i] : std::nan(""));
  }
  table.add_column("validation_hour", std::move(hours));
  table.add_column("real_cm", std::move(reals));
  table.add_column("predicted_cm", std::move(preds));
  const std::string out = cli.get_string("out", "fig2_trace.csv");
  ef::series::write_table_csv(out, table);
  std::printf("\ntrace written to %s\n", out.c_str());
  std::printf(
      "Shape check vs the paper's Figure 2: the predicted curve tracks the real\n"
      "series closely through the surge peak, not just in the tidal regime.\n");
  ef::obs::emit_cli_report(cli);
  return 0;
}
