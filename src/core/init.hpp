// init.hpp — population initialisation (paper §3.2 + ablation baseline).
//
// The paper's procedure stratifies the *output* range: with a population of
// P rules, the target range [min, max] is cut into P equal sub-intervals;
// for each sub-interval I the rule's gene j becomes [min_j, max_j] over all
// training patterns whose target lies in I, and the rule's initial
// prediction is the mean of those targets. These deliberately general rules
// cover the whole prediction space; evolution then specialises them.
#pragma once

#include <vector>

#include "core/config.hpp"
#include "core/dataset.hpp"
#include "core/rule.hpp"
#include "util/rng.hpp"

namespace ef::core {

/// Paper §3.2 output-stratified initialisation. Sub-intervals that contain
/// no training target produce a maximally-general (all-range) rule so the
/// population size is always exactly `population_size`.
[[nodiscard]] std::vector<Rule> init_output_stratified(const WindowDataset& data,
                                                       std::size_t population_size);

/// Ablation baseline: each gene is an independent random sub-interval of the
/// input range (or a wildcard with probability `wildcard_prob`).
[[nodiscard]] std::vector<Rule> init_uniform_random(const WindowDataset& data,
                                                    std::size_t population_size,
                                                    util::Rng& rng,
                                                    double wildcard_prob = 0.1);

/// Dispatch on the configured strategy.
[[nodiscard]] std::vector<Rule> initialize_population(const WindowDataset& data,
                                                      const EvolutionConfig& config,
                                                      util::Rng& rng);

}  // namespace ef::core
