#include "series/metrics.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace ef::series {
namespace {

void check_pair(std::span<const double> actual, std::span<const double> predicted,
                const char* who) {
  if (actual.size() != predicted.size()) {
    throw std::invalid_argument(std::string(who) + ": size mismatch (" +
                                std::to_string(actual.size()) + " vs " +
                                std::to_string(predicted.size()) + ")");
  }
  if (actual.empty()) throw std::invalid_argument(std::string(who) + ": empty input");
}

[[nodiscard]] double sum_sq_err(std::span<const double> a, std::span<const double> p) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - p[i];
    acc += d * d;
  }
  return acc;
}

}  // namespace

double mse(std::span<const double> actual, std::span<const double> predicted) {
  check_pair(actual, predicted, "mse");
  return sum_sq_err(actual, predicted) / static_cast<double>(actual.size());
}

double rmse(std::span<const double> actual, std::span<const double> predicted) {
  check_pair(actual, predicted, "rmse");
  return std::sqrt(sum_sq_err(actual, predicted) / static_cast<double>(actual.size()));
}

double mae(std::span<const double> actual, std::span<const double> predicted) {
  check_pair(actual, predicted, "mae");
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) acc += std::abs(actual[i] - predicted[i]);
  return acc / static_cast<double>(actual.size());
}

double nmse(std::span<const double> actual, std::span<const double> predicted) {
  check_pair(actual, predicted, "nmse");
  double mean = 0.0;
  for (const double v : actual) mean += v;
  mean /= static_cast<double>(actual.size());
  double var = 0.0;
  for (const double v : actual) var += (v - mean) * (v - mean);
  var /= static_cast<double>(actual.size());
  if (var == 0.0) throw std::invalid_argument("nmse: actual series has zero variance");
  return mse(actual, predicted) / var;
}

double galvan_error(std::span<const double> actual, std::span<const double> predicted,
                    std::size_t horizon) {
  check_pair(actual, predicted, "galvan_error");
  // Paper: e = 1/(2(N+τ)) Σ_{i=0}^{N}(x(i)−x̃(i))², with N+1 summands.
  const std::size_t n_plus_1 = actual.size();
  const double denom = 2.0 * (static_cast<double>(n_plus_1 - 1) + static_cast<double>(horizon));
  if (denom == 0.0) throw std::invalid_argument("galvan_error: degenerate denominator");
  return sum_sq_err(actual, predicted) / denom;
}

double smape(std::span<const double> actual, std::span<const double> predicted) {
  check_pair(actual, predicted, "smape");
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double denom = std::abs(actual[i]) + std::abs(predicted[i]);
    if (denom > 0.0) acc += std::abs(actual[i] - predicted[i]) / denom;
  }
  return 200.0 * acc / static_cast<double>(actual.size());
}

double mase(std::span<const double> actual, std::span<const double> predicted,
            std::span<const double> train_series) {
  check_pair(actual, predicted, "mase");
  if (train_series.size() < 2) {
    throw std::invalid_argument("mase: training series needs >= 2 samples");
  }
  double naive = 0.0;
  for (std::size_t i = 1; i < train_series.size(); ++i) {
    naive += std::abs(train_series[i] - train_series[i - 1]);
  }
  naive /= static_cast<double>(train_series.size() - 1);
  if (naive == 0.0) throw std::invalid_argument("mase: constant training series");
  return mae(actual, predicted) / naive;
}

double rmse_paper_literal(std::span<const double> actual, std::span<const double> predicted) {
  check_pair(actual, predicted, "rmse_paper_literal");
  double acc = 0.0;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    const double d = actual[i] - predicted[i];
    const double e = 0.5 * d * d;
    acc += e * e;
  }
  return std::sqrt(acc / static_cast<double>(actual.size()));
}

double galvan_error_partial(std::span<const double> actual, const PartialForecast& predicted,
                            std::size_t horizon) {
  if (actual.size() != predicted.size()) {
    throw std::invalid_argument("galvan_error_partial: size mismatch");
  }
  std::vector<double> covered_actual;
  std::vector<double> covered_predicted;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (predicted[i]) {
      covered_actual.push_back(actual[i]);
      covered_predicted.push_back(*predicted[i]);
    }
  }
  if (covered_actual.empty()) return 0.0;
  return galvan_error(covered_actual, covered_predicted, horizon);
}

CoverageReport evaluate_partial(std::span<const double> actual,
                                const PartialForecast& predicted) {
  if (actual.size() != predicted.size()) {
    throw std::invalid_argument("evaluate_partial: size mismatch");
  }
  CoverageReport report;
  report.total = actual.size();

  std::vector<double> covered_actual;
  std::vector<double> covered_predicted;
  for (std::size_t i = 0; i < actual.size(); ++i) {
    if (predicted[i].has_value()) {
      covered_actual.push_back(actual[i]);
      covered_predicted.push_back(*predicted[i]);
    }
  }
  report.covered = covered_actual.size();
  report.coverage_percent =
      report.total == 0
          ? 0.0
          : 100.0 * static_cast<double>(report.covered) / static_cast<double>(report.total);

  if (report.covered == 0) return report;

  report.rmse = rmse(covered_actual, covered_predicted);
  report.mse = mse(covered_actual, covered_predicted);
  report.mae = mae(covered_actual, covered_predicted);
  // NMSE over a constant covered subset is undefined; report 0 instead of
  // throwing so a pathological rule set still produces a usable report.
  double mean = 0.0;
  for (const double v : covered_actual) mean += v;
  mean /= static_cast<double>(covered_actual.size());
  double var = 0.0;
  for (const double v : covered_actual) var += (v - mean) * (v - mean);
  var /= static_cast<double>(covered_actual.size());
  report.nmse = var > 0.0 ? report.mse / var : 0.0;
  return report;
}

}  // namespace ef::series
