#include "core/match_engine.hpp"

#include <atomic>
#include <chrono>

#include "obs/macros.hpp"

namespace ef::core {
namespace {

constexpr std::size_t kParallelGrain = 4096;

#if EVOFORECAST_OBS_ENABLED
/// Records the wall time of one engine call into the per-backend histogram.
/// Histogram names must be string literals, hence the switch.
class BackendTimer {
 public:
  explicit BackendTimer(MatchBackend backend) noexcept
      : backend_(backend), start_(Clock::now()) {}
  BackendTimer(const BackendTimer&) = delete;
  BackendTimer& operator=(const BackendTimer&) = delete;
  ~BackendTimer() {
    const double us = std::chrono::duration<double, std::micro>(Clock::now() - start_).count();
    switch (backend_) {
      case MatchBackend::kScalar:
        EVOFORECAST_HISTOGRAM("match.scalar.us", us);
        break;
      case MatchBackend::kSoa:
        EVOFORECAST_HISTOGRAM("match.soa.us", us);
        break;
      case MatchBackend::kSoaPrefilter:
        EVOFORECAST_HISTOGRAM("match.soa_prefilter.us", us);
        break;
      case MatchBackend::kAvx2:
        EVOFORECAST_HISTOGRAM("match.avx2.us", us);
        break;
      case MatchBackend::kRuleMajor:
        EVOFORECAST_HISTOGRAM("match.rule_major.us", us);
        break;
      case MatchBackend::kAuto:
        break;  // unreachable: engines hold a resolved backend
    }
  }

 private:
  using Clock = std::chrono::steady_clock;
  MatchBackend backend_;
  Clock::time_point start_;
};
#define EF_MATCH_TIMER(backend) const ::ef::core::BackendTimer ef_match_timer { backend }
#else
#define EF_MATCH_TIMER(backend) ((void)0)
#endif

}  // namespace

MatchEngine::MatchEngine(const WindowDataset& data, util::ThreadPool* pool, MatchBackend backend)
    : data_(data),
      pool_(pool ? pool : &util::ThreadPool::shared()),
      // Normalize against the CPU so the dispatch switches below never see
      // kAuto or an unsupported kAvx2 (explicit supported choices pass
      // through unchanged — tests construct engines with a forced backend).
      backend_(pick_match_backend(backend, cpu_supports_avx2())) {}

void MatchEngine::match_range(const Rule& rule, std::size_t begin, std::size_t end,
                              std::vector<std::size_t>& out, std::size_t* pruned) const {
  const auto& genes = rule.genes();
  switch (backend_) {
    case MatchBackend::kScalar:
      matchkern::scalar_match(data_.pattern(0).data(), data_.window(), genes, begin, end, out);
      break;
    case MatchBackend::kSoa:
      matchkern::soa_match(data_.lag_major(), genes, begin, end, out);
      break;
    case MatchBackend::kSoaPrefilter:
      matchkern::soa_prefilter_match(data_.lag_major(), genes, begin, end, out, pruned);
      break;
    case MatchBackend::kAvx2:
      matchkern::soa_prefilter_match(data_.lag_major(), genes, begin, end, out, pruned,
                                     /*avx2=*/true);
      break;
    case MatchBackend::kRuleMajor:
      // Single-rule query under the batched backend: use the best per-rule
      // kernel the CPU has (the batched plane build only pays off for whole
      // rule sets — see match_all).
      matchkern::soa_prefilter_match(data_.lag_major(), genes, begin, end, out, pruned,
                                     /*avx2=*/cpu_supports_avx2());
      break;
    case MatchBackend::kAuto:
      break;  // unreachable: the constructor stores a resolved backend
  }
}

std::vector<std::size_t> MatchEngine::match_indices_serial(const Rule& rule) const {
  std::vector<std::size_t> out;
  if (rule.genes().size() != data_.window()) return out;  // dimension mismatch
  matchkern::scalar_match(data_.pattern(0).data(), data_.window(), rule.genes(), 0, data_.count(),
                          out);
  return out;
}

std::vector<std::size_t> MatchEngine::match_indices(const Rule& rule) const {
  EVOFORECAST_TRACE("core.match");
  const std::size_t m = data_.count();
  EVOFORECAST_COUNT("match.calls", 1);
  EVOFORECAST_COUNT("match.windows_scanned", m);
  std::vector<std::size_t> out;
  if (rule.genes().size() != data_.window()) return out;  // dimension mismatch
  EF_MATCH_TIMER(backend_);

  std::size_t pruned = 0;
  if (m <= kParallelGrain || pool_->size() <= 1) {
    match_range(rule, 0, m, out, &pruned);
  } else {
    // One result buffer per chunk, keyed by the chunk's begin index so the
    // concatenation order is deterministic regardless of completion order.
    const std::size_t chunks = pool_->size();
    const std::size_t width = (m + chunks - 1) / chunks;
    std::vector<std::vector<std::size_t>> partial(chunks);
    std::vector<std::size_t> partial_pruned(chunks, 0);

    pool_->parallel_for(
        0, m,
        [&](std::size_t begin, std::size_t end) {
          const std::size_t c = begin / width;
          match_range(rule, begin, end, partial[c], &partial_pruned[c]);
        },
        width);

    std::size_t total = 0;
    for (const auto& p : partial) total += p.size();
    out.reserve(total);
    for (const auto& p : partial) out.insert(out.end(), p.begin(), p.end());
    for (const std::size_t p : partial_pruned) pruned += p;
  }
  EVOFORECAST_COUNT("match.windows_matched", out.size());
  if (pruned != 0) EVOFORECAST_COUNT("match.pruned", pruned);
  return out;
}

std::vector<std::vector<std::size_t>> MatchEngine::match_all(
    std::span<const Rule> rules) const {
  EVOFORECAST_TRACE("core.match_all");
  const std::size_t m = data_.count();
  const std::size_t n = rules.size();
  std::vector<std::vector<std::size_t>> out(n);
  if (n == 0) return out;

  if (backend_ != MatchBackend::kRuleMajor) {
    for (std::size_t r = 0; r < n; ++r) out[r] = match_indices(rules[r]);
    return out;
  }

  EVOFORECAST_COUNT("match.calls", n);
  EVOFORECAST_COUNT("match.windows_scanned", m);
  EF_MATCH_TIMER(backend_);

  // Build the quantized planes for the whole batch once; rules whose gene
  // count differs from the dataset window (the matches-nothing contract)
  // become inactive lanes.
  const LagMajorView view = data_.lag_major();
  std::vector<std::span<const Interval>> genes(n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto& g = rules[r].genes();
    genes[r] = g.size() == data_.window() ? std::span<const Interval>(g)
                                          : std::span<const Interval>{};
  }
  const RulePlanes planes = build_rule_planes(genes, data_.window(), view.qmin, view.qinv);

  if (m <= kParallelGrain || pool_->size() <= 1) {
    matchkern::rule_major_match(view, planes, 0, m, out);
  } else {
    // Chunk over windows; per-chunk result sets are concatenated in chunk
    // order per rule, so the output is identical to the serial pass.
    const std::size_t chunks = pool_->size();
    const std::size_t width = (m + chunks - 1) / chunks;
    std::vector<std::vector<std::vector<std::size_t>>> partial(
        chunks, std::vector<std::vector<std::size_t>>(n));
    pool_->parallel_for(
        0, m,
        [&](std::size_t begin, std::size_t end) {
          matchkern::rule_major_match(view, planes, begin, end, partial[begin / width]);
        },
        width);
    for (std::size_t r = 0; r < n; ++r) {
      std::size_t total = 0;
      for (const auto& p : partial) total += p[r].size();
      out[r].reserve(total);
      for (auto& p : partial) out[r].insert(out[r].end(), p[r].begin(), p[r].end());
    }
  }

  std::size_t matched = 0;
  for (const auto& v : out) matched += v.size();
  EVOFORECAST_COUNT("match.windows_matched", matched);
  return out;
}

std::size_t MatchEngine::match_count(const Rule& rule) const {
  EVOFORECAST_TRACE("core.match");
  const std::size_t m = data_.count();
  EVOFORECAST_COUNT("match.calls", 1);
  EVOFORECAST_COUNT("match.windows_scanned", m);
  if (rule.genes().size() != data_.window()) return 0;  // dimension mismatch
  EF_MATCH_TIMER(backend_);

  if (m <= kParallelGrain || pool_->size() <= 1) {
    std::vector<std::size_t> out;
    std::size_t pruned = 0;
    match_range(rule, 0, m, out, &pruned);
    EVOFORECAST_COUNT("match.windows_matched", out.size());
    if (pruned != 0) EVOFORECAST_COUNT("match.pruned", pruned);
    return out.size();
  }

  std::atomic<std::size_t> total{0};
  std::atomic<std::size_t> pruned{0};
  pool_->parallel_for(
      0, m,
      [&](std::size_t begin, std::size_t end) {
        std::vector<std::size_t> local;
        std::size_t local_pruned = 0;
        match_range(rule, begin, end, local, &local_pruned);
        total.fetch_add(local.size(), std::memory_order_relaxed);
        pruned.fetch_add(local_pruned, std::memory_order_relaxed);
      },
      kParallelGrain);
  EVOFORECAST_COUNT("match.windows_matched", total.load());
  if (pruned.load() != 0) EVOFORECAST_COUNT("match.pruned", pruned.load());
  return total.load();
}

}  // namespace ef::core
