// Tests for the epoll reactor transport: the syscall-free Connection state
// machine (framing, pipelining, partial writes), then loopback socket tests
// for pipelined in-order responses, observability verbs and HTTP scrapes on
// pipelined connections, slowloris byte-at-a-time framing, partial writes
// under a tiny SO_SNDBUF, connection churn during hot-reload, and graceful
// drain with responses still in flight.
#include "serve/reactor.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/interval.hpp"
#include "core/rule.hpp"
#include "core/rule_system.hpp"
#include "serve/connection.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"

#if defined(__linux__)
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleSystem;
using ef::serve::Connection;
using ef::serve::ForecastService;
using ef::serve::ModelStore;
using ef::serve::ServeOptions;

/// A system predicting a damped recurrence on all of [0,2]^2 — every probe
/// inside the box is covered, so predictions never abstain.
RuleSystem make_covering_system() {
  Rule rule({Interval(0.0, 2.0), Interval(0.0, 2.0)});
  ef::core::PredictingPart part;
  part.fit.coeffs = {0.3, 0.6, 0.05};
  part.fit.mean_prediction = 0.5;
  part.fit.max_abs_residual = 0.01;
  part.matches = 5;
  part.fitness = 2.0;
  rule.set_predicting(part);
  RuleSystem system;
  system.add_rules({rule}, false, -1.0);
  return system;
}

// --- Connection state machine (no sockets) ---------------------------------

TEST(Connection, FramesLinesIncrementally) {
  Connection conn(-1, 1, 0);
  conn.append("{\"a\"", 4);
  EXPECT_FALSE(conn.next_line(1024).has_value());
  conn.append(":1}\r\npart", 9);
  const auto line = conn.next_line(1024);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "{\"a\":1}");  // '\r' stripped, terminator consumed
  EXPECT_FALSE(conn.next_line(1024).has_value());
  EXPECT_TRUE(conn.has_buffered_input());
}

TEST(Connection, OutOfOrderCompletionsReleaseInSequence) {
  Connection conn(-1, 1, 0);
  const auto s0 = conn.allocate_seq();
  const auto s1 = conn.allocate_seq();
  const auto s2 = conn.allocate_seq();
  EXPECT_EQ(conn.in_flight(), 3u);

  conn.complete(s2, "two\n");
  conn.complete(s1, "one\n");
  EXPECT_FALSE(conn.has_output()) << "successors must park behind seq 0";

  conn.complete(s0, "zero\n");
  ASSERT_EQ(conn.output().size(), 3u);
  EXPECT_EQ(conn.output()[0], "zero\n");
  EXPECT_EQ(conn.output()[1], "one\n");
  EXPECT_EQ(conn.output()[2], "two\n");
  EXPECT_EQ(conn.in_flight(), 0u);
  EXPECT_FALSE(conn.idle()) << "queued output still pending";
  conn.consume_output(13);
  EXPECT_TRUE(conn.idle());
}

TEST(Connection, OverlongLineDiscardedMidStreamThenRecovers) {
  Connection conn(-1, 1, 0);
  const std::string big(64, 'x');
  conn.append(big.data(), big.size());
  EXPECT_FALSE(conn.next_line(16).has_value());
  EXPECT_TRUE(conn.take_overlong());
  EXPECT_FALSE(conn.take_overlong()) << "overlong reports once per line";

  // The connection keeps framing afterwards.
  conn.append("ok\n", 3);
  const auto line = conn.next_line(16);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, "ok");
}

TEST(Connection, ConsumeOutputHandlesPartialWrites) {
  Connection conn(-1, 1, 0);
  conn.complete(conn.allocate_seq(), "abcdef");
  conn.complete(conn.allocate_seq(), "ghij");
  conn.consume_output(4);  // partial first string
  EXPECT_EQ(conn.write_offset(), 4u);
  conn.consume_output(5);  // finishes first, 3 bytes into second
  EXPECT_EQ(conn.write_offset(), 3u);
  ASSERT_EQ(conn.output().size(), 1u);
  conn.consume_output(1);
  EXPECT_FALSE(conn.has_output());
  EXPECT_EQ(conn.write_offset(), 0u);
}

// --- loopback socket tests --------------------------------------------------

#if defined(__linux__)

/// Blocking JSON-lines client with buffered line reads and a deadline.
class LineClient {
 public:
  explicit LineClient(std::uint16_t port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    connected_ = fd_ >= 0 &&
                 ::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0;
  }
  ~LineClient() { close(); }
  void close() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }
  [[nodiscard]] bool connected() const { return connected_; }

  /// Half-close: no more requests, but responses still flow back.
  void shutdown_write() { ::shutdown(fd_, SHUT_WR); }

  [[nodiscard]] bool send_all(std::string_view data) {
    while (!data.empty()) {
      const auto n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
      if (n <= 0) return false;
      data.remove_prefix(static_cast<std::size_t>(n));
    }
    return true;
  }

  /// Next newline-terminated line (terminator stripped); nullopt on
  /// timeout or connection close.
  [[nodiscard]] std::optional<std::string> read_line(int timeout_ms = 5000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        std::string line = buffer_.substr(0, newline);
        buffer_.erase(0, newline + 1);
        return line;
      }
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return std::nullopt;
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) return std::nullopt;
      char chunk[4096];
      const auto n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return std::nullopt;
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
  }

  /// Drain everything until the server closes (HTTP responses, drain tests).
  [[nodiscard]] std::string read_until_close(int timeout_ms = 5000) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    std::string all = std::move(buffer_);
    buffer_.clear();
    for (;;) {
      const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
          deadline - std::chrono::steady_clock::now());
      if (left.count() <= 0) return all;
      pollfd pfd{fd_, POLLIN, 0};
      if (::poll(&pfd, 1, static_cast<int>(left.count())) <= 0) return all;
      char chunk[4096];
      const auto n = ::recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) return all;
      all.append(chunk, static_cast<std::size_t>(n));
    }
  }

 private:
  int fd_ = -1;
  bool connected_ = false;
  std::string buffer_;
};

/// Store + service + running reactor wired for one test.
struct Server {
  explicit Server(ServeOptions options = {}) {
    options.port = 0;  // ephemeral
    store.add_system("m", make_covering_system());
    service.emplace(store, options);
    reactor.emplace(*service);
    reactor->start();
  }
  ~Server() {
    reactor->stop();
    service->shutdown();
  }
  ModelStore store;
  std::optional<ForecastService> service;
  std::optional<ef::serve::Reactor> reactor;
};

TEST(Reactor, PipelinedRequestsAnsweredInOrder) {
  Server server;
  LineClient client(server.reactor->port());
  ASSERT_TRUE(client.connected());

  // One burst of 64 requests, ids 0..63, mixing predicts and pings; the
  // responses must come back strictly in request order.
  constexpr int kRequests = 64;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    if (i % 5 == 4) {
      burst += R"({"cmd":"ping","id":)" + std::to_string(i) + "}\n";
    } else {
      burst += R"({"model":"m","window":[0.8,1.1],"id":)" + std::to_string(i) + "}\n";
    }
  }
  ASSERT_TRUE(client.send_all(burst));

  for (int i = 0; i < kRequests; ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line.has_value()) << "response " << i << " missing";
    EXPECT_NE(line->find("\"ok\":true"), std::string::npos) << *line;
    EXPECT_NE(line->find("\"v\":2,\"id\":" + std::to_string(i)), std::string::npos)
        << "out of order at " << i << ": " << *line;
    if (i % 5 == 4) {
      EXPECT_NE(line->find("\"pong\":true"), std::string::npos) << *line;
    } else {
      EXPECT_NE(line->find("\"value\":"), std::string::npos) << *line;
    }
  }
}

TEST(Reactor, V1ResponsesCarryNoEnvelope) {
  Server server;
  LineClient client(server.reactor->port());
  ASSERT_TRUE(client.connected());
  ASSERT_TRUE(client.send_all("{\"cmd\":\"ping\"}\n"));
  const auto line = client.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(*line, R"({"ok":true,"pong":true})");

  // v1 errors keep the bare-string shape.
  ASSERT_TRUE(client.send_all("garbage\n"));
  const auto error = client.read_line();
  ASSERT_TRUE(error.has_value());
  EXPECT_EQ(error->rfind(R"({"ok":false,"error":")", 0), 0u) << *error;
  EXPECT_EQ(error->find("\"code\""), std::string::npos) << *error;
}

TEST(Reactor, ObservabilityVerbsWorkPipelined) {
  Server server;
  LineClient client(server.reactor->port());
  ASSERT_TRUE(client.connected());

  // All verbs in one burst on one connection — each must answer, in order.
  ASSERT_TRUE(client.send_all(R"({"cmd":"models","id":0})"
                              "\n"
                              R"({"cmd":"stats","id":1})"
                              "\n"
                              R"({"cmd":"metrics","id":2})"
                              "\n"
                              R"({"cmd":"events","id":3})"
                              "\n"
                              R"({"cmd":"trace","id":4})"
                              "\n"
                              R"({"cmd":"ping","id":5})"
                              "\n"));
  const char* expect[] = {"\"models\":", "\"connections\":", "\"exposition\":",
                          "\"events\":", "\"trace\":",       "\"pong\":true"};
  for (int i = 0; i < 6; ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line.has_value()) << "verb " << i;
    EXPECT_NE(line->find("\"ok\":true"), std::string::npos) << *line;
    EXPECT_NE(line->find("\"id\":" + std::to_string(i)), std::string::npos) << *line;
    EXPECT_NE(line->find(expect[i]), std::string::npos) << *line;
  }
}

TEST(Reactor, HttpMetricsScrapeAfterPipelinedJson) {
  Server server;
  LineClient client(server.reactor->port());
  ASSERT_TRUE(client.connected());

  // A JSON request immediately followed by an HTTP scrape on the same
  // connection: the JSON response comes first, then the HTTP response, then
  // the server closes (Connection: close).
  ASSERT_TRUE(client.send_all("{\"cmd\":\"ping\"}\nGET /metrics HTTP/1.0\r\n\r\n"));
  const auto pong = client.read_line();
  ASSERT_TRUE(pong.has_value());
  EXPECT_NE(pong->find("\"pong\":true"), std::string::npos) << *pong;

  const std::string http = client.read_until_close();
  EXPECT_EQ(http.rfind("HTTP/1.0 200 OK", 0), 0u) << http;
  EXPECT_NE(http.find("Content-Type: text/plain"), std::string::npos) << http;

  // Unknown paths 404 but still answer.
  LineClient second(server.reactor->port());
  ASSERT_TRUE(second.connected());
  ASSERT_TRUE(second.send_all("GET /nope HTTP/1.0\r\n\r\n"));
  EXPECT_NE(second.read_until_close().find("404"), std::string::npos);
}

TEST(Reactor, SlowlorisByteAtATimeStillAnswers) {
  Server server;
  LineClient client(server.reactor->port());
  ASSERT_TRUE(client.connected());

  const std::string request = "{\"cmd\":\"ping\",\"id\":9}\n";
  for (const char c : request) {
    ASSERT_TRUE(client.send_all(std::string_view(&c, 1)));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  const auto line = client.read_line();
  ASSERT_TRUE(line.has_value());
  EXPECT_NE(line->find("\"pong\":true"), std::string::npos) << *line;
  EXPECT_NE(line->find("\"id\":9"), std::string::npos) << *line;
}

TEST(Reactor, OverlongLineRejectedConnectionSurvives) {
  ServeOptions options;
  options.max_line_bytes = 512;
  Server server(options);
  LineClient client(server.reactor->port());
  ASSERT_TRUE(client.connected());

  const std::string big(2048, 'x');
  ASSERT_TRUE(client.send_all(big + "\n{\"cmd\":\"ping\"}\n"));
  // A discarded line never got to declare v2, so the error is v1-shaped.
  const auto error = client.read_line();
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("\"ok\":false"), std::string::npos) << *error;
  EXPECT_NE(error->find("request line too long"), std::string::npos) << *error;
  const auto pong = client.read_line();
  ASSERT_TRUE(pong.has_value());
  EXPECT_NE(pong->find("\"pong\":true"), std::string::npos) << *pong;
}

TEST(Reactor, PartialWritesUnderTinySndbuf) {
  ServeOptions options;
  options.sndbuf_bytes = 4096;  // force EAGAIN/EPOLLOUT on bursts
  Server server(options);
  LineClient client(server.reactor->port());
  ASSERT_TRUE(client.connected());

  // Pipeline enough responses to overflow the shrunken send buffer before
  // reading a single byte — the reactor must arm EPOLLOUT, finish the
  // partial writes, and keep every response intact and ordered.
  constexpr int kRequests = 256;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += R"({"model":"m","window":[0.8,1.1],"id":)" + std::to_string(i) + "}\n";
  }
  ASSERT_TRUE(client.send_all(burst));
  std::this_thread::sleep_for(std::chrono::milliseconds(50));  // let responses pile up

  for (int i = 0; i < kRequests; ++i) {
    const auto line = client.read_line();
    ASSERT_TRUE(line.has_value()) << "response " << i << " missing";
    EXPECT_NE(line->find("\"id\":" + std::to_string(i)), std::string::npos)
        << "out of order at " << i << ": " << *line;
    EXPECT_NE(line->find("\"value\":"), std::string::npos) << *line;
  }
}

TEST(Reactor, ConnectionChurnDuringHotReloadZeroFailures) {
  ServeOptions options;
  options.enable_cache = false;  // every request exercises the live model
  Server server(options);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> completed{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      while (!stop.load(std::memory_order_relaxed)) {
        LineClient client(server.reactor->port());
        if (!client.connected()) {
          ++failures;
          continue;
        }
        std::string burst;
        for (int i = 0; i < 8; ++i) {
          burst += R"({"model":"m","window":[0.8,1.1],"id":)" +
                   std::to_string(t * 100 + i) + "}\n";
        }
        if (!client.send_all(burst)) {
          ++failures;
          continue;
        }
        for (int i = 0; i < 8; ++i) {
          const auto line = client.read_line();
          if (!line || line->find("\"ok\":true") == std::string::npos) {
            ++failures;
          } else {
            ++completed;
          }
        }
      }
    });
  }

  // Swap the model repeatedly while connections churn against it.
  for (int swap = 0; swap < 20; ++swap) {
    server.store.add_system("m", make_covering_system());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop = true;
  for (auto& c : clients) c.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(completed.load(), 0u);
  EXPECT_EQ(server.store.get("m")->version(), 21u);
}

TEST(Reactor, GracefulDrainAnswersInFlightPipeline) {
  Server server;
  LineClient client(server.reactor->port());
  ASSERT_TRUE(client.connected());

  constexpr int kRequests = 32;
  std::string burst;
  for (int i = 0; i < kRequests; ++i) {
    burst += R"({"model":"m","window":[0.8,1.1],"id":)" + std::to_string(i) + "}\n";
  }
  ASSERT_TRUE(client.send_all(burst));
  // Give the reactor a beat to pull the burst off the socket, then initiate
  // the drain (what SIGTERM does in efserve): every buffered request must
  // still be answered before the connection closes.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  server.reactor->stop();

  int received = 0;
  while (received < kRequests) {
    const auto line = client.read_line();
    if (!line) break;
    EXPECT_NE(line->find("\"id\":" + std::to_string(received)), std::string::npos)
        << *line;
    ++received;
  }
  EXPECT_EQ(received, kRequests) << "drain dropped buffered responses";
  EXPECT_FALSE(server.reactor->running());
}

TEST(Reactor, HalfCloseWithDeepInlinePipelineDoesNotRecurse) {
  // Regression: with the batcher off every predict completes inline on the
  // reactor thread. A client that pipelines thousands of lines and then
  // shutdown(SHUT_WR) used to drive complete_local -> process_lines mutual
  // recursion one frame per buffered line — a remotely triggerable stack
  // overflow. Every response must still arrive, in order, then the server
  // closes the drained connection.
  ServeOptions options;
  options.enable_batcher = false;
  Server server(options);
  LineClient client(server.reactor->port());
  ASSERT_TRUE(client.connected());

  constexpr int kRequests = 20000;
  std::string burst;
  burst.reserve(kRequests * 48);
  for (int i = 0; i < kRequests; ++i) {
    burst += R"({"model":"m","window":[0.8,1.1],"id":)" + std::to_string(i) + "}\n";
  }
  ASSERT_TRUE(client.send_all(burst));
  client.shutdown_write();

  for (int i = 0; i < kRequests; ++i) {
    const auto line = client.read_line(10000);
    ASSERT_TRUE(line.has_value()) << "response " << i << " missing";
    ASSERT_NE(line->find("\"id\":" + std::to_string(i)), std::string::npos)
        << "out of order at " << i << ": " << *line;
  }
  EXPECT_FALSE(client.read_line(2000).has_value())
      << "server must close once the half-closed pipeline drains";
}

TEST(Reactor, DrainCompletesBufferedInlineTailWithoutRecursing) {
  // The other guaranteed paused_read + buffered-lines + inline-completion
  // combination (the recursion precondition, see HalfClose above): park the
  // connection at the pipeline cap behind one slow batcher miss, with a
  // cached tail already sitting in its read buffer, then initiate the
  // drain. When the miss finally completes, every buffered tail line is a
  // cache hit completing inline under paused_read — pre-guard this nested
  // one stack frame per line. All buffered lines must be answered in
  // order, then the connection closes.
  ServeOptions options;
  options.max_pipeline = 1;
  options.batcher.max_delay = std::chrono::milliseconds(100);  // park window
  Server server(options);
  LineClient client(server.reactor->port());
  ASSERT_TRUE(client.connected());

  // Prime the cache for the tail window.
  ASSERT_TRUE(client.send_all("{\"model\":\"m\",\"window\":[0.8,1.1]}\n"));
  ASSERT_TRUE(client.read_line().has_value());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));  // miss drained

  // One fresh-window miss parks the connection for ~100ms at the cap; the
  // cached tail lands in the read buffer behind it.
  constexpr int kRequests = 20000;
  std::string burst = "{\"model\":\"m\",\"window\":[0.5,0.9]}\n";
  for (int i = 0; i < kRequests; ++i) {
    burst += R"({"model":"m","window":[0.8,1.1],"id":)" + std::to_string(i) + "}\n";
  }
  ASSERT_TRUE(client.send_all(burst));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));  // reactor parked
  server.reactor->stop();  // drain with the tail still buffered

  // The miss answers first (v1 — no id), then the buffered tail in order;
  // lines the reactor never read off the socket are dropped by the drain
  // contract, so assert order and gap-freeness, not the total.
  const auto miss = client.read_line();
  ASSERT_TRUE(miss.has_value());
  EXPECT_NE(miss->find("\"ok\":true"), std::string::npos) << *miss;
  int next_id = 0;
  for (;;) {
    const auto line = client.read_line(2000);
    if (!line) break;  // server closed the drained connection
    ASSERT_NE(line->find("\"id\":" + std::to_string(next_id)), std::string::npos)
        << "out of order at " << next_id << ": " << *line;
    ++next_id;
  }
  EXPECT_GT(next_id, 0) << "drain dropped the buffered tail";
}

TEST(Reactor, MultipleShardsServeConcurrentConnections) {
  ServeOptions options;
  options.reactor_threads = 2;
  Server server(options);
  ASSERT_EQ(server.reactor->shard_count(), 2u);

  std::atomic<std::size_t> failures{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < 6; ++t) {
    clients.emplace_back([&] {
      LineClient client(server.reactor->port());
      if (!client.connected()) {
        ++failures;
        return;
      }
      for (int i = 0; i < 25; ++i) {
        if (!client.send_all("{\"model\":\"m\",\"window\":[0.8,1.1]}\n")) {
          ++failures;
          return;
        }
        const auto line = client.read_line();
        if (!line || line->find("\"ok\":true") == std::string::npos) ++failures;
      }
    });
  }
  for (auto& c : clients) c.join();
  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GE(server.reactor->connections_served(), 6u);
}

#endif  // defined(__linux__)

}  // namespace
