// Tests for series/significance.hpp against hand-computed references and
// statistical sanity properties.
#include "series/significance.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace {

namespace sig = ef::series;

// ---- sign test ----------------------------------------------------------------

TEST(SignTest, HandComputedSmallCases) {
  // 8 wins / 2 losses: 2·Σ_{i<=2} C(10,i)/2^10 = 2·56/1024 = 0.109375.
  EXPECT_NEAR(sig::sign_test_p(8, 2), 0.109375, 1e-12);
  // 5/5: the most balanced split → p = 2·P(X<=5) > 1 → capped at 1.
  EXPECT_DOUBLE_EQ(sig::sign_test_p(5, 5), 1.0);
  // 10/0: 2·(1/1024) ≈ 0.00195.
  EXPECT_NEAR(sig::sign_test_p(10, 0), 2.0 / 1024.0, 1e-12);
}

TEST(SignTest, EmptyIsInconclusive) { EXPECT_DOUBLE_EQ(sig::sign_test_p(0, 0), 1.0); }

TEST(SignTest, SymmetricInArguments) {
  EXPECT_DOUBLE_EQ(sig::sign_test_p(7, 3), sig::sign_test_p(3, 7));
}

TEST(SignTest, MonotoneInImbalance) {
  double last = 1.1;
  for (std::size_t wins = 10; wins <= 20; ++wins) {
    const double p = sig::sign_test_p(wins, 20 - wins);
    EXPECT_LE(p, last + 1e-12);
    last = p;
  }
  EXPECT_LT(sig::sign_test_p(20, 0), 1e-4);
}

TEST(SignTest, LargeCountsStable) {
  // 600/400: clearly significant, finite, in (0, 1).
  const double p = sig::sign_test_p(600, 400);
  EXPECT_GT(p, 0.0);
  EXPECT_LT(p, 1e-9);
}

// ---- Wilcoxon ------------------------------------------------------------------

TEST(Wilcoxon, TooFewSamplesInconclusive) {
  EXPECT_DOUBLE_EQ(sig::wilcoxon_signed_rank_p(std::vector<double>{}), 1.0);
  EXPECT_DOUBLE_EQ(sig::wilcoxon_signed_rank_p(std::vector<double>{0.5}), 1.0);
  EXPECT_DOUBLE_EQ(sig::wilcoxon_signed_rank_p(std::vector<double>{0.0, 0.0}), 1.0);
}

TEST(Wilcoxon, BalancedDifferencesNotSignificant) {
  const std::vector<double> d{1.0, -1.0, 2.0, -2.0, 3.0, -3.0, 0.5, -0.5};
  EXPECT_GT(sig::wilcoxon_signed_rank_p(d), 0.8);
}

TEST(Wilcoxon, OneSidedShiftIsSignificant) {
  std::vector<double> d;
  for (int i = 1; i <= 20; ++i) d.push_back(0.1 * i);  // all positive
  EXPECT_LT(sig::wilcoxon_signed_rank_p(d), 0.001);
}

TEST(Wilcoxon, NullDistributionRarelyRejects) {
  // Under H0 (symmetric differences) the rejection rate at alpha = 0.05
  // should be about 5 %.
  ef::util::Rng rng(7);
  int rejections = 0;
  constexpr int kTrials = 400;
  for (int trial = 0; trial < kTrials; ++trial) {
    std::vector<double> d(30);
    for (double& x : d) x = rng.normal(0.0, 1.0);
    if (sig::wilcoxon_signed_rank_p(d) < 0.05) ++rejections;
  }
  EXPECT_GT(rejections, 4);   // not degenerate
  EXPECT_LT(rejections, 50);  // ~5 % ± noise, far from 12.5 %
}

TEST(Wilcoxon, DetectsConsistentSmallShift) {
  ef::util::Rng rng(8);
  std::vector<double> d(200);
  for (double& x : d) x = rng.normal(0.3, 1.0);  // small real effect, n large
  EXPECT_LT(sig::wilcoxon_signed_rank_p(d), 0.01);
}

TEST(Wilcoxon, TiesHandled) {
  // Repeated magnitudes on both sides must not crash or degenerate.
  const std::vector<double> d{1.0, 1.0, -1.0, 2.0, 2.0, -2.0, 2.0, 1.0};
  const double p = sig::wilcoxon_signed_rank_p(d);
  EXPECT_GT(p, 0.0);
  EXPECT_LE(p, 1.0);
}

// ---- paired comparison -----------------------------------------------------------

TEST(ComparePaired, CountsAndMeanDiff) {
  const std::vector<double> a{1.0, 2.0, 3.0, 1.0};
  const std::vector<double> b{2.0, 1.0, 4.0, 1.0};
  const auto cmp = sig::compare_paired_errors(a, b);
  EXPECT_EQ(cmp.a_wins, 2u);  // windows 0 and 2
  EXPECT_EQ(cmp.b_wins, 1u);  // window 1
  EXPECT_EQ(cmp.ties, 1u);
  EXPECT_DOUBLE_EQ(cmp.mean_diff, (-1.0 + 1.0 - 1.0 + 0.0) / 4.0);
}

TEST(ComparePaired, ClearWinnerIsSignificant) {
  ef::util::Rng rng(9);
  std::vector<double> a(100);
  std::vector<double> b(100);
  for (std::size_t i = 0; i < a.size(); ++i) {
    a[i] = std::abs(rng.normal(0.0, 1.0));
    b[i] = a[i] + 0.5 + std::abs(rng.normal(0.0, 0.1));  // B always worse
  }
  const auto cmp = sig::compare_paired_errors(a, b);
  EXPECT_EQ(cmp.a_wins, 100u);
  EXPECT_LT(cmp.sign_p, 1e-10);
  EXPECT_LT(cmp.wilcoxon_p, 1e-10);
  EXPECT_LT(cmp.mean_diff, 0.0);
}

TEST(ComparePaired, ErrorsOnBadInput) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW((void)sig::compare_paired_errors(a, b), std::invalid_argument);
  const std::vector<double> empty;
  EXPECT_THROW((void)sig::compare_paired_errors(empty, empty), std::invalid_argument);
}

}  // namespace
