// interval.hpp — the interval gene of a prediction rule (paper §3.1).
//
// A rule's conditional part is one interval per input lag; a gene is either a
// closed interval [lo, hi] or the wildcard '*' ("don't care"), which matches
// every value. Encoded in the paper as the pair (LL_i, UL_i) or (*, *).
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ef::core {

/// One gene of a rule's conditional part: a closed interval or a wildcard.
class Interval {
 public:
  /// Wildcard gene (matches everything).
  constexpr Interval() noexcept = default;

  /// Bounded gene [lo, hi]. Throws std::invalid_argument when lo > hi or a
  /// bound is non-finite.
  constexpr Interval(double lo, double hi) : lo_(lo), hi_(hi), wildcard_(false) {
    if (!(lo <= hi)) {  // negated to also catch NaN
      throw std::invalid_argument("Interval: requires lo <= hi and finite bounds");
    }
    if (std::isinf(lo) || std::isinf(hi)) {
      throw std::invalid_argument("Interval: bounds must be finite");
    }
  }

  [[nodiscard]] static constexpr Interval wildcard() noexcept { return Interval{}; }

  [[nodiscard]] constexpr bool is_wildcard() const noexcept { return wildcard_; }

  /// Lower/upper bound. Calling on a wildcard throws std::logic_error —
  /// wildcard genes have no bounds, and silently returning ±inf has caused
  /// subtle mutation bugs in classifier-system codebases.
  [[nodiscard]] constexpr double lo() const {
    if (wildcard_) throw std::logic_error("Interval::lo on wildcard");
    return lo_;
  }
  [[nodiscard]] constexpr double hi() const {
    if (wildcard_) throw std::logic_error("Interval::hi on wildcard");
    return hi_;
  }

  /// Membership test; a wildcard contains every finite value.
  [[nodiscard]] constexpr bool contains(double x) const noexcept {
    return wildcard_ || (lo_ <= x && x <= hi_);
  }

  /// Interval width; wildcard reports +infinity.
  [[nodiscard]] constexpr double width() const noexcept {
    return wildcard_ ? std::numeric_limits<double>::infinity() : hi_ - lo_;
  }

  /// Midpoint. Throws std::logic_error on a wildcard.
  [[nodiscard]] constexpr double midpoint() const {
    if (wildcard_) throw std::logic_error("Interval::midpoint on wildcard");
    return 0.5 * (lo_ + hi_);
  }

  /// Width of the overlap between two genes; `span` is the variable's full
  /// range, used as the extent of wildcards so the result is always finite.
  [[nodiscard]] constexpr double overlap_width(const Interval& other, double span_lo,
                                               double span_hi) const noexcept {
    const double a_lo = wildcard_ ? span_lo : lo_;
    const double a_hi = wildcard_ ? span_hi : hi_;
    const double b_lo = other.wildcard_ ? span_lo : other.lo_;
    const double b_hi = other.wildcard_ ? span_hi : other.hi_;
    return std::max(0.0, std::min(a_hi, b_hi) - std::max(a_lo, b_lo));
  }

  /// True when this gene's acceptance set is a subset of `other`'s.
  [[nodiscard]] constexpr bool subset_of(const Interval& other) const noexcept {
    if (other.wildcard_) return true;
    if (wildcard_) return false;
    return other.lo_ <= lo_ && hi_ <= other.hi_;
  }

  friend constexpr bool operator==(const Interval& a, const Interval& b) noexcept {
    if (a.wildcard_ != b.wildcard_) return false;
    if (a.wildcard_) return true;
    return a.lo_ == b.lo_ && a.hi_ == b.hi_;
  }

 private:
  double lo_ = 0.0;
  double hi_ = 0.0;
  bool wildcard_ = true;
};

}  // namespace ef::core
