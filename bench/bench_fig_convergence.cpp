// bench_fig_convergence — supplementary figure: how a steady-state run
// converges. The paper reports only endpoint numbers after 75 000
// generations; this bench traces best/mean fitness, mean rule error, mean
// matches and training coverage over the generations of one Venice τ = 1
// run, prints ASCII sparklines and writes convergence_trace.csv. Useful for
// choosing scaled-down generation budgets (where does the curve flatten?).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/evolution.hpp"
#include "core/rule_system.hpp"
#include "series/csv.hpp"
#include "series/venice.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full");
  const auto train_hours =
      static_cast<std::size_t>(cli.get_int("train-hours", full ? 45000 : 6000));
  const auto generations =
      static_cast<std::size_t>(cli.get_int("generations", full ? 75000 : 12000));
  const auto window = static_cast<std::size_t>(cli.get_int("window", 24));
  const auto horizon = static_cast<std::size_t>(cli.get_int("horizon", 1));
  const auto coverage_every =
      static_cast<std::size_t>(cli.get_int("coverage-every", generations / 20));

  std::printf("Convergence trace — Venice tau=%zu, %zu generations\n", horizon, generations);
  ef::bench::print_rule('=');

  const auto experiment = ef::series::make_paper_venice(train_hours, 1000);
  const ef::core::WindowDataset train(experiment.train, window, horizon);

  ef::core::EvolutionConfig cfg;
  cfg.population_size = static_cast<std::size_t>(cli.get_int("population", 100));
  cfg.generations = generations;
  cfg.emax = cli.get_double("emax", 14.0);
  cfg.seed = static_cast<std::uint64_t>(cli.get_int("seed", 4));
  cfg.telemetry_stride = generations / 100 ? generations / 100 : 1;

  ef::core::TelemetryCollector collector;
  ef::core::SteadyStateEngine engine(train, cfg, nullptr, collector.sink());

  // Coverage needs the whole population — sample it at a coarser stride.
  std::vector<double> coverage_gen;
  std::vector<double> coverage_val;
  const auto sample_coverage = [&]() {
    ef::core::RuleSystem snapshot;
    snapshot.add_rules(std::vector<ef::core::Rule>(engine.population()), true, cfg.f_min);
    coverage_gen.push_back(static_cast<double>(engine.generation()));
    coverage_val.push_back(snapshot.coverage_percent(train));
  };
  sample_coverage();
  while (engine.generation() < generations) {
    engine.step();
    if (coverage_every != 0 && engine.generation() % coverage_every == 0) sample_coverage();
  }

  // --- sparklines -------------------------------------------------------------
  const auto& records = collector.records();
  std::vector<double> mean_fitness;
  std::vector<double> mean_error;
  for (const auto& rec : records) {
    mean_fitness.push_back(rec.mean_fitness);
    mean_error.push_back(rec.mean_error);
  }
  std::printf("mean fitness over generations ('*'):\n");
  ef::bench::ascii_plot({{'*', mean_fitness}}, 12);
  std::printf("\nmean rule error e_R over generations ('#', cm):\n");
  ef::bench::ascii_plot({{'#', mean_error}}, 12);
  std::printf("\ntraining coverage over generations ('o', %%):\n");
  ef::bench::ascii_plot({{'o', coverage_val}}, 12);

  std::printf("\nendpoint: mean fitness %.2f, mean e_R %.2f cm, coverage %.1f%%, "
              "replacements %zu/%zu\n",
              records.back().mean_fitness, records.back().mean_error, coverage_val.back(),
              engine.replacements(), generations);

  // --- CSV ---------------------------------------------------------------------
  ef::series::Table table;
  std::vector<double> gens;
  std::vector<double> best;
  std::vector<double> mean;
  std::vector<double> err;
  std::vector<double> matches;
  for (const auto& rec : records) {
    gens.push_back(static_cast<double>(rec.generation));
    best.push_back(rec.best_fitness);
    mean.push_back(rec.mean_fitness);
    err.push_back(rec.mean_error);
    matches.push_back(rec.mean_matches);
  }
  table.add_column("generation", std::move(gens));
  table.add_column("best_fitness", std::move(best));
  table.add_column("mean_fitness", std::move(mean));
  table.add_column("mean_error", std::move(err));
  table.add_column("mean_matches", std::move(matches));
  const std::string out = cli.get_string("out", "convergence_trace.csv");
  ef::series::write_table_csv(out, table);
  std::printf("trace written to %s\n", out.c_str());
  std::printf("\nExpected shape: mean fitness rises monotonically (better-only\n"
              "replacement); mean e_R falls toward the EMAX budget as rules specialise;\n"
              "coverage may dip mid-run (specialisation) before the multi-execution\n"
              "union (not shown here) restores it.\n");
  ef::obs::emit_cli_report(cli);
  return 0;
}
