// Tests for core/backtest.hpp: fold geometry (no leakage), expanding vs
// rolling windows, aggregate arithmetic, degenerate inputs.
#include "core/backtest.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace {

using ef::core::BacktestOptions;
using ef::core::backtest_rule_system;
using ef::core::RuleSystemConfig;
using ef::series::TimeSeries;

TimeSeries noisy_sine(std::size_t n) {
  ef::util::Rng rng(21);
  std::vector<double> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = std::sin(static_cast<double>(i) * 0.2) + rng.normal(0.0, 0.03);
  }
  return TimeSeries(std::move(v));
}

RuleSystemConfig quick_config() {
  RuleSystemConfig cfg;
  cfg.evolution.population_size = 15;
  cfg.evolution.generations = 300;
  cfg.evolution.emax = 0.3;
  cfg.evolution.seed = 4;
  cfg.max_executions = 2;
  cfg.coverage_target_percent = 90.0;
  return cfg;
}

TEST(Backtest, ProducesExpectedFoldCount) {
  const TimeSeries s = noisy_sine(1000);
  BacktestOptions options;
  options.window = 4;
  options.horizon = 1;
  options.initial_train = 400;
  options.fold_size = 150;
  const auto result = backtest_rule_system(s, quick_config(), options);
  // Origins at 400, 550, 700, 850 → 4 folds.
  EXPECT_EQ(result.folds.size(), 4u);
  EXPECT_EQ(result.folds[0].origin, 400u);
  EXPECT_EQ(result.folds[3].origin, 850u);
}

TEST(Backtest, MaxFoldsCapRespected) {
  const TimeSeries s = noisy_sine(1000);
  BacktestOptions options;
  options.window = 4;
  options.initial_train = 300;
  options.fold_size = 50;
  options.max_folds = 3;
  const auto result = backtest_rule_system(s, quick_config(), options);
  EXPECT_EQ(result.folds.size(), 3u);
}

TEST(Backtest, FoldsReportReasonableMetrics) {
  const TimeSeries s = noisy_sine(900);
  BacktestOptions options;
  options.window = 4;
  options.initial_train = 400;
  options.fold_size = 200;
  const auto result = backtest_rule_system(s, quick_config(), options);
  ASSERT_FALSE(result.folds.empty());
  for (const auto& fold : result.folds) {
    EXPECT_GT(fold.report.coverage_percent, 20.0);
    EXPECT_LT(fold.report.rmse, 0.5);  // sine amplitude 1, low noise
    EXPECT_GT(fold.rules, 0u);
  }
  EXPECT_GT(result.mean_coverage_percent, 20.0);
  EXPECT_GT(result.pooled_rmse, 0.0);
  EXPECT_GE(result.pooled_rmse, result.pooled_mae);  // RMSE >= MAE always
}

TEST(Backtest, DefaultsFillInitialTrainAndFoldSize) {
  const TimeSeries s = noisy_sine(800);
  BacktestOptions options;
  options.window = 4;
  const auto result = backtest_rule_system(s, quick_config(), options);
  // initial_train = 400, fold = 100 → 4 folds.
  EXPECT_EQ(result.folds.size(), 4u);
}

TEST(Backtest, RollingAndExpandingDiffer) {
  const TimeSeries s = [] {
    // A series with a drifting mean: expanding training sees stale data,
    // rolling does not, so the trained systems must differ.
    ef::util::Rng rng(8);
    std::vector<double> v(900);
    for (std::size_t i = 0; i < v.size(); ++i) {
      const double drift = static_cast<double>(i) * 0.002;
      v[i] = drift + std::sin(static_cast<double>(i) * 0.2) + rng.normal(0.0, 0.02);
    }
    return TimeSeries(std::move(v));
  }();
  BacktestOptions expanding;
  expanding.window = 4;
  expanding.initial_train = 300;
  expanding.fold_size = 150;
  BacktestOptions rolling = expanding;
  rolling.rolling = true;

  const auto e = backtest_rule_system(s, quick_config(), expanding);
  const auto r = backtest_rule_system(s, quick_config(), rolling);
  ASSERT_EQ(e.folds.size(), r.folds.size());
  bool any_difference = false;
  for (std::size_t f = 0; f < e.folds.size(); ++f) {
    if (std::abs(e.folds[f].report.rmse - r.folds[f].report.rmse) > 1e-12) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(Backtest, TooShortSeriesThrows) {
  const TimeSeries s = noisy_sine(30);
  BacktestOptions options;
  options.window = 10;
  options.initial_train = 25;
  options.fold_size = 20;
  EXPECT_THROW((void)backtest_rule_system(s, quick_config(), options),
               std::invalid_argument);
}

TEST(Backtest, StrideSupported) {
  const TimeSeries s = noisy_sine(1000);
  BacktestOptions options;
  options.window = 4;
  options.stride = 3;
  options.initial_train = 400;
  options.fold_size = 250;
  const auto result = backtest_rule_system(s, quick_config(), options);
  EXPECT_GE(result.folds.size(), 2u);
  EXPECT_GT(result.mean_coverage_percent, 10.0);
}

TEST(Backtest, Deterministic) {
  const TimeSeries s = noisy_sine(700);
  BacktestOptions options;
  options.window = 4;
  options.initial_train = 350;
  options.fold_size = 170;
  const auto a = backtest_rule_system(s, quick_config(), options);
  const auto b = backtest_rule_system(s, quick_config(), options);
  ASSERT_EQ(a.folds.size(), b.folds.size());
  for (std::size_t f = 0; f < a.folds.size(); ++f) {
    EXPECT_DOUBLE_EQ(a.folds[f].report.rmse, b.folds[f].report.rmse);
  }
  EXPECT_DOUBLE_EQ(a.pooled_rmse, b.pooled_rmse);
}

}  // namespace
