// Tests for core/aggregation.hpp: each strategy against hand-computed
// references, abstention behaviour, invariance properties (all strategies
// bounded by the vote extremes; single vote is identity).
#include "core/aggregation.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/rule_system.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::aggregate_votes;
using ef::core::Aggregation;
using ef::core::Vote;

std::vector<Vote> votes3() {
  return {{10.0, 1.0, 0.10}, {20.0, 3.0, 0.01}, {60.0, 2.0, 0.05}};
}

TEST(Aggregation, EmptyVotesAbstain) {
  for (const auto how :
       {Aggregation::kMean, Aggregation::kFitnessWeighted, Aggregation::kMedian,
        Aggregation::kBestRule, Aggregation::kInverseError}) {
    EXPECT_FALSE(aggregate_votes({}, how).has_value()) << ef::core::to_string(how);
  }
}

TEST(Aggregation, SingleVoteIsIdentityForAllStrategies) {
  const std::vector<Vote> one{{7.5, 2.0, 0.1}};
  for (const auto how :
       {Aggregation::kMean, Aggregation::kFitnessWeighted, Aggregation::kMedian,
        Aggregation::kBestRule, Aggregation::kInverseError}) {
    const auto out = aggregate_votes(one, how);
    ASSERT_TRUE(out.has_value());
    EXPECT_DOUBLE_EQ(*out, 7.5) << ef::core::to_string(how);
  }
}

TEST(Aggregation, MeanMatchesHandComputation) {
  EXPECT_DOUBLE_EQ(*aggregate_votes(votes3(), Aggregation::kMean), 30.0);
}

TEST(Aggregation, FitnessWeighted) {
  // (1·10 + 3·20 + 2·60) / 6 = 190/6.
  EXPECT_DOUBLE_EQ(*aggregate_votes(votes3(), Aggregation::kFitnessWeighted), 190.0 / 6.0);
}

TEST(Aggregation, FitnessWeightedIgnoresNegativeFitness) {
  const std::vector<Vote> votes{{10.0, -1.0, 0.1}, {20.0, 2.0, 0.1}};
  EXPECT_DOUBLE_EQ(*aggregate_votes(votes, Aggregation::kFitnessWeighted), 20.0);
}

TEST(Aggregation, FitnessWeightedAllNegativeFallsBackToMean) {
  const std::vector<Vote> votes{{10.0, -1.0, 0.1}, {20.0, -2.0, 0.1}};
  EXPECT_DOUBLE_EQ(*aggregate_votes(votes, Aggregation::kFitnessWeighted), 15.0);
}

TEST(Aggregation, MedianOddCount) {
  EXPECT_DOUBLE_EQ(*aggregate_votes(votes3(), Aggregation::kMedian), 20.0);
}

TEST(Aggregation, MedianEvenCount) {
  const std::vector<Vote> votes{{1.0, 0, 0}, {9.0, 0, 0}, {3.0, 0, 0}, {5.0, 0, 0}};
  EXPECT_DOUBLE_EQ(*aggregate_votes(votes, Aggregation::kMedian), 4.0);
}

TEST(Aggregation, MedianRobustToOutlier) {
  std::vector<Vote> votes{{10.0, 0, 0}, {11.0, 0, 0}, {1e6, 0, 0}};
  EXPECT_DOUBLE_EQ(*aggregate_votes(votes, Aggregation::kMedian), 11.0);
}

TEST(Aggregation, BestRulePicksHighestFitness) {
  EXPECT_DOUBLE_EQ(*aggregate_votes(votes3(), Aggregation::kBestRule), 20.0);
}

TEST(Aggregation, InverseErrorWeightsTightRules) {
  // Errors 0.1, 0.01, 0.05 → weights ~10, 100, 20 → pulled toward 20.
  const double out = *aggregate_votes(votes3(), Aggregation::kInverseError);
  EXPECT_GT(out, 20.0);
  EXPECT_LT(out, 30.0);  // closer to 20 than plain mean (30)
}

TEST(Aggregation, AllStrategiesBoundedByVoteExtremes) {
  ef::util::Rng rng(9);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<Vote> votes;
    const std::size_t n = 1 + rng.index(8);
    double lo = 1e300;
    double hi = -1e300;
    for (std::size_t i = 0; i < n; ++i) {
      Vote v{rng.uniform(-50, 50), rng.uniform(-1, 5), rng.uniform(0.001, 1.0)};
      lo = std::min(lo, v.value);
      hi = std::max(hi, v.value);
      votes.push_back(v);
    }
    for (const auto how :
         {Aggregation::kMean, Aggregation::kFitnessWeighted, Aggregation::kMedian,
          Aggregation::kBestRule, Aggregation::kInverseError}) {
      const auto out = aggregate_votes(votes, how);
      ASSERT_TRUE(out.has_value());
      EXPECT_GE(*out, lo - 1e-9) << ef::core::to_string(how);
      EXPECT_LE(*out, hi + 1e-9) << ef::core::to_string(how);
    }
  }
}

TEST(CollectVotes, OnlyMatchingEvaluatedRulesVote) {
  using ef::core::Interval;
  using ef::core::Rule;
  std::vector<Rule> rules;
  // Rule 0: matches [0,10]², evaluated.
  Rule a({Interval(0, 10), Interval(0, 10)});
  ef::core::PredictingPart part;
  part.fit.coeffs = {0.0, 0.0, 5.0};
  part.fitness = 1.0;
  part.fit.max_abs_residual = 0.2;
  a.set_predicting(part);
  rules.push_back(a);
  // Rule 1: matches but unevaluated → must not vote.
  rules.emplace_back(std::vector<Interval>{Interval(0, 10), Interval(0, 10)});
  // Rule 2: evaluated but doesn't match.
  Rule c({Interval(90, 99), Interval(90, 99)});
  c.set_predicting(part);
  rules.push_back(c);

  const std::vector<double> window{5.0, 5.0};
  const auto votes = ef::core::collect_votes(rules, window);
  ASSERT_EQ(votes.size(), 1u);
  EXPECT_DOUBLE_EQ(votes[0].value, 5.0);
  EXPECT_DOUBLE_EQ(votes[0].fitness, 1.0);
  EXPECT_DOUBLE_EQ(votes[0].error, 0.2);
}

TEST(RuleSystemAggregation, PredictWithStrategyMatchesDirectAggregation) {
  using ef::core::Interval;
  using ef::core::Rule;
  using ef::core::RuleSystem;

  const auto make_rule = [](double p, double fitness) {
    Rule r({Interval(0, 10)});
    ef::core::PredictingPart part;
    part.fit.coeffs = {0.0, p};
    part.fit.mean_prediction = p;
    part.fitness = fitness;
    r.set_predicting(part);
    return r;
  };
  RuleSystem system;
  system.add_rules({make_rule(2.0, 1.0), make_rule(4.0, 3.0)}, false, -1.0);

  const std::vector<double> w{5.0};
  EXPECT_DOUBLE_EQ(*system.forecast(w, Aggregation::kMean).as_optional(), 3.0);
  EXPECT_DOUBLE_EQ(*system.forecast(w, Aggregation::kBestRule).as_optional(), 4.0);
  EXPECT_DOUBLE_EQ(*system.forecast(w).as_optional(), *system.forecast(w, Aggregation::kMean).as_optional());
  EXPECT_FALSE(system.forecast(std::vector<double>{99.0}, Aggregation::kMedian).as_optional().has_value());
}

}  // namespace
