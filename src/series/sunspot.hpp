// sunspot.hpp — synthetic monthly sunspot-number generator.
//
// SUBSTITUTION (see DESIGN.md §4): the paper uses the SIDC monthly mean
// sunspot numbers, Jan 1749 – Mar 1977 (2739 months), which we cannot fetch
// offline. The experiment needs a noisy quasi-periodic natural series with
// cycle-to-cycle variability and local regimes; we synthesise one with the
// solar cycle's well-documented morphology:
//   * cycles of ~11 years whose length varies (σ ≈ 1 year),
//   * strongly varying peak amplitudes (≈ 50 – 200),
//   * asymmetric shape — fast rise (~4 y) and slow decay (~7 y) — modelled
//     with the Hathaway (1994) parametric cycle profile
//       f(t) = a (t/b)³ / (exp((t/b)²) − c),
//   * signal-dependent noise (scatter grows with activity),
//   * non-negativity and overlap of consecutive cycles at minima.
#pragma once

#include <cstddef>
#include <cstdint>

#include "series/timeseries.hpp"

namespace ef::series {

/// Generator parameters; defaults calibrated to the historical record's
/// gross statistics (mean cycle 131 months, amplitude range ≈ 50-200).
struct SunspotParams {
  std::uint64_t seed = 1749;

  double mean_cycle_months = 131.0;
  double cycle_sd_months = 13.0;

  double amp_mean = 125.0;  ///< Hathaway `a` scaling, before shape normalisation
  double amp_sd = 45.0;
  double amp_min = 40.0;  ///< floor so every cycle is visible

  /// Hathaway rise-time parameter `b` in months (controls asymmetry).
  double rise_b_months = 48.0;
  double hathaway_c = 0.71;

  /// Gnevyshev gap: probability that a cycle is double-peaked, with a
  /// secondary maximum `gnevyshev_delay` months after the first at
  /// `gnevyshev_fraction` of its height (the real record shows this in a
  /// majority of cycles; it is exactly the kind of local structure global
  /// models blur out).
  double gnevyshev_prob = 0.6;
  double gnevyshev_delay_months = 24.0;
  double gnevyshev_fraction = 0.8;

  /// Noise: sd = noise_floor + noise_slope * signal. The real monthly means
  /// scatter ~15-20 % around the smoothed cycle near maxima.
  double noise_floor = 3.0;
  double noise_slope = 0.15;
};

/// Generate `months` consecutive monthly sunspot numbers (non-negative).
/// Deterministic in (params.seed, months). Throws on months == 0.
[[nodiscard]] TimeSeries generate_sunspots(std::size_t months,
                                           const SunspotParams& params = {});

/// The paper's arrangement (§4.3): train Jan 1749 – Dec 1919 (2052 months),
/// skip Jan 1920 – Dec 1928 (108 months), validate Jan 1929 – Mar 1977
/// (579 months); both ranges scaled to [0,1] with bounds fitted on train.
struct SunspotExperiment {
  TimeSeries train;       ///< normalised to [0,1]
  TimeSeries validation;  ///< normalised with the same map
  Normalizer normalizer;
};

[[nodiscard]] SunspotExperiment make_paper_sunspots(const SunspotParams& params = {});

/// Sizes of the paper's ranges, exposed for tests/docs.
inline constexpr std::size_t kSunspotTrainMonths = 2052;  // 1749-01 .. 1919-12
inline constexpr std::size_t kSunspotGapMonths = 108;     // 1920-01 .. 1928-12
inline constexpr std::size_t kSunspotValidationMonths = 579;  // 1929-01 .. 1977-03

}  // namespace ef::series
