// mackey_glass.hpp — RK4 integrator for the Mackey-Glass delay ODE.
//
//   ds/dt = -b*s(t) + a * s(t-lambda) / (1 + s(t-lambda)^10)
//
// The paper (§4.2) uses a = 0.2, b = 0.1, lambda = 17, generates 5000 samples,
// discards the first 3500 as transient, trains on [3500, 4499] and tests on
// [4500, 5000), all normalised to [0, 1]. This module reproduces that setup
// exactly — the only dataset in the paper that needs no substitution.
#pragma once

#include <cstddef>

#include "series/timeseries.hpp"

namespace ef::series {

/// Parameters of the Mackey-Glass system and its integration.
struct MackeyGlassParams {
  double a = 0.2;        ///< production coefficient (paper value)
  double b = 0.1;        ///< decay coefficient (paper value)
  double lambda = 17.0;  ///< delay (paper value; λ>16.8 gives chaos)
  double exponent = 10.0;
  double initial = 1.2;  ///< constant history s(t)=initial for t ≤ 0
  double dt = 0.1;       ///< integrator step; samples are taken at t = 0,1,2,…
};

/// Integrate the system and return `count` samples at unit time spacing,
/// starting at t = 0. Uses classic RK4 with linear interpolation into the
/// stored history for the delayed term (the history is stored at the
/// integrator resolution, so interpolation error is O(dt²), far below the
/// O(dt⁴) truncation of RK4 at the default step).
///
/// Throws std::invalid_argument on non-positive dt/count or negative lambda.
[[nodiscard]] TimeSeries generate_mackey_glass(std::size_t count,
                                               const MackeyGlassParams& params = {});

/// The paper's exact experimental arrangement: 5000 samples, first 3500
/// discarded, 1000 training points [3500, 4499], 500 test points
/// [4500, 5000), jointly normalised to [0, 1] with bounds fitted on the
/// training range.
struct MackeyGlassExperiment {
  TimeSeries train;
  TimeSeries test;
  Normalizer normalizer;  ///< maps raw series values onto [0,1]
};

[[nodiscard]] MackeyGlassExperiment make_paper_mackey_glass(
    const MackeyGlassParams& params = {});

}  // namespace ef::series
