#!/usr/bin/env python3
"""Gate a bench_serve_throughput --bench-json report (BENCH_serve.json).

Structural checks always run: the report must carry the mode, throughput,
outcome and latency sections the open-loop load generator writes, the
quantiles must be ordered, the histogram must account for every request,
and no request may have failed (the RCU reload contract: hot-swapping the
model mid-load never drops a request).

Optional band checks (opt-in flags, so CI on wildly different hardware can
pick its own floors):

  --min-rps R        achieved throughput floor
  --max-p99-us N     p99 latency ceiling
  --min-connections N  the run must have used at least N connections

Usage:
  python3 scripts/check_serve_bench.py BENCH_serve.json [--min-rps 1000]
      [--max-p99-us 500000] [--min-connections 64]

Exit codes: 0 all checks pass, 1 check failures, 2 usage/IO error.
"""

import json
import sys

FAILURES = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    suffix = f"  ({detail})" if detail else ""
    print(f"[{status:>4}] {name}{suffix}")
    if not ok:
        FAILURES.append(name)


def main(argv):
    args = []
    flags = {}
    rest = argv[1:]
    i = 0
    while i < len(rest):
        if rest[i].startswith("--"):
            if i + 1 >= len(rest):
                print(f"error: flag {rest[i]} needs a value", file=sys.stderr)
                return 2
            flags[rest[i][2:]] = rest[i + 1]
            i += 2
        else:
            args.append(rest[i])
            i += 1
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2

    try:
        with open(args[0], encoding="utf-8") as f:
            report = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read {args[0]}: {err}", file=sys.stderr)
        return 2

    # --- structure ---------------------------------------------------------
    check("mode present", report.get("mode") in ("tcp_open_loop", "in_process"),
          f"mode={report.get('mode')!r}")
    for section in ("config", "throughput", "outcomes", "latency_us", "histogram_us"):
        check(f"section {section}", isinstance(report.get(section), (dict, list)))
    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed")
        return 1

    config = report["config"]
    throughput = report["throughput"]
    outcomes = report["outcomes"]
    latency = report["latency_us"]
    histogram = report["histogram_us"]

    requests = throughput.get("requests", 0)
    check("requests > 0", requests > 0, f"requests={requests}")
    check("elapsed_s > 0", throughput.get("elapsed_s", 0) > 0)
    check("achieved_rps > 0", throughput.get("achieved_rps", 0) > 0)

    # --- outcomes: the reload-under-fire / pipelining contract -------------
    check("zero failed requests", outcomes.get("failed", 1) == 0,
          f"failed={outcomes.get('failed')}")
    check("outcomes account for all requests",
          outcomes.get("ok", 0) + outcomes.get("failed", 0) == requests,
          f"ok={outcomes.get('ok')} failed={outcomes.get('failed')} requests={requests}")
    check("abstained within ok",
          0 <= outcomes.get("abstained", -1) <= outcomes.get("ok", 0))

    # --- latency: quantiles ordered, histogram complete --------------------
    quantiles = ["p50", "p90", "p99", "p999", "max"]
    check("latency quantiles present", all(q in latency for q in quantiles))
    values = [latency.get(q, 0) for q in quantiles]
    check("latency quantiles ordered",
          all(a <= b for a, b in zip(values, values[1:])),
          " <= ".join(f"{q}={latency.get(q)}" for q in quantiles))
    check("latency quantiles positive", all(v > 0 for v in values[:-1]))

    buckets = [b.get("count", -1) for b in histogram if isinstance(b, dict)]
    check("histogram buckets present", len(buckets) >= 2)
    check("histogram counts non-negative", all(c >= 0 for c in buckets))
    check("histogram accounts for every request", sum(buckets) == requests,
          f"sum={sum(buckets)} requests={requests}")

    # --- opt-in bands ------------------------------------------------------
    if "min-rps" in flags:
        floor = float(flags["min-rps"])
        achieved = throughput.get("achieved_rps", 0)
        check(f"achieved_rps >= {floor}", achieved >= floor,
              f"achieved={achieved:.0f}")
    if "max-p99-us" in flags:
        ceiling = float(flags["max-p99-us"])
        p99 = latency.get("p99", float("inf"))
        check(f"p99 <= {ceiling} us", p99 <= ceiling, f"p99={p99:.0f} us")
    if "min-connections" in flags:
        floor = int(flags["min-connections"])
        conns = config.get("connections", 0)
        check(f"connections >= {floor}", conns >= floor, f"connections={conns}")

    if FAILURES:
        print(f"\n{len(FAILURES)} check(s) failed")
        return 1
    print("\nall serve bench checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
