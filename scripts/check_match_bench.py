#!/usr/bin/env python3
"""Gate a bench_match_kernel run against the committed baseline (used by CI).

Usage: check_match_bench.py CURRENT_JSON [BASELINE_JSON]

BASELINE_JSON defaults to BENCH_match.json next to the repo root (one
directory above this script). The current run is typically --quick on a
noisy shared runner while the baseline is a full run on a quiet box, so
the throughput thresholds are deliberately generous — this is a smoke
gate against order-of-magnitude regressions and correctness bugs, not a
performance tracker.

Checks, in order of severity:
  1. match_sets_identical must be true (hard correctness failure).
  2. soa_prefilter speedup vs scalar must stay >= MIN_SPEEDUP (1.5x;
     the committed baseline demonstrates >= 3x).
  3. Each backend's windows/s must stay >= MIN_THROUGHPUT_RATIO (0.25)
     of the baseline's.
Exits non-zero on the first category that fails, after printing all checks.
"""
import json
import os
import sys

MIN_SPEEDUP = 1.5
MIN_THROUGHPUT_RATIO = 0.25

FAILURES = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    suffix = f": {detail}" if detail and not ok else ""
    print(f"  [{status}] {name}{suffix}")
    if not ok:
        FAILURES.append(name)


def main():
    if len(sys.argv) < 2 or len(sys.argv) > 3:
        print(__doc__)
        return 2
    current_path = sys.argv[1]
    baseline_path = (
        sys.argv[2]
        if len(sys.argv) == 3
        else os.path.join(os.path.dirname(__file__), "..", "BENCH_match.json")
    )

    def load(path, role):
        try:
            with open(path) as f:
                return json.load(f)
        except OSError as err:
            print(f"check_match_bench: cannot read {role} {path}: {err}")
        except json.JSONDecodeError as err:
            print(f"check_match_bench: {role} {path} is not valid JSON "
                  f"(line {err.lineno}, col {err.colno}): {err.msg}")
        return None

    current = load(current_path, "current run")
    baseline = load(baseline_path, "baseline")
    if current is None or baseline is None:
        return 2
    if not isinstance(current, dict) or not isinstance(baseline, dict):
        print("check_match_bench: expected a JSON object at the top level")
        return 2

    print(f"check_match_bench: {current_path} vs {baseline_path}")

    check(
        "match sets identical",
        current.get("match_sets_identical") is True,
        "backends disagree with the scalar reference — correctness bug",
    )

    speedup = current.get("speedup", {}).get("soa_prefilter", 0.0)
    check(
        f"soa_prefilter speedup {speedup:.2f}x >= {MIN_SPEEDUP}x",
        speedup >= MIN_SPEEDUP,
        f"baseline has {baseline.get('speedup', {}).get('soa_prefilter', 0.0):.2f}x",
    )

    for name, base in baseline.get("backends", {}).items():
        cur = current.get("backends", {}).get(name)
        if cur is None:
            check(f"backend {name} present", False, "missing from current run")
            continue
        floor = base["windows_per_sec"] * MIN_THROUGHPUT_RATIO
        check(
            f"{name} {cur['windows_per_sec']:.3e} windows/s >= "
            f"{MIN_THROUGHPUT_RATIO} x baseline ({floor:.3e})",
            cur["windows_per_sec"] >= floor,
        )

    if FAILURES:
        print(f"check_match_bench: {len(FAILURES)} check(s) failed")
        return 1
    print("check_match_bench: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
