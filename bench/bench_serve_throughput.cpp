// bench_serve_throughput — load generator for the serving pipeline.
//
// Drives ForecastService in-process (no sockets: this measures the serving
// machinery — cache, batcher, batch predict — not the kernel's TCP stack)
// with N client threads issuing blocking predicts over a pool of probe
// windows. Reports throughput and client-side latency quantiles, and, via
// --metrics-json, the full obs registry (serve.request_us histogram,
// cache/batch/abstention counters) for CI baselines (BENCH_serve.json).
//
// A --reload-every-ms flag hot-swaps the model mid-load to demonstrate the
// RCU reload contract: every request must still succeed.
//
// Flags:
//   --clients N          concurrent client threads        (default 4)
//   --requests N         requests per client              (default 25000)
//   --window D           window length                    (default 6)
//   --rules R            synthetic rule count             (default 64)
//   --unique N           distinct probe windows (cache hit rate ~ 1-N/total)
//   --horizon H          steps ahead                      (default 1)
//   --no-cache           disable the prediction cache
//   --no-batch           disable the micro-batcher (inline predicts)
//   --batch-delay-us N   batcher coalescing delay         (default 200)
//   --reload-every-ms N  hot-swap the model every N ms    (default 0 = off)
//   --seed S             probe/rule RNG seed              (default 1)
//   --metrics-json PATH  write the obs run report as JSON
//   --trace-out PATH     write the request timeline as Chrome trace-event
//                        JSON (arms tracing at rate 1.0 unless
//                        EVOFORECAST_TRACE_SAMPLE configured one)
//   --report             print the obs table at exit
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/interval.hpp"
#include "core/rule.hpp"
#include "core/rule_system.hpp"
#include "obs/export.hpp"
#include "obs/timeline.hpp"
#include "obs/timeline_export.hpp"
#include "serve/model_store.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleSystem;

/// Synthetic rule set over [0,1]^window: random boxes (some wildcard genes)
/// with random hyperplanes. Deterministic in `seed` so baselines compare.
RuleSystem synthetic_system(std::size_t rules, std::size_t window, std::uint64_t seed) {
  ef::util::Rng rng(seed);
  std::vector<Rule> out;
  out.reserve(rules);
  for (std::size_t r = 0; r < rules; ++r) {
    std::vector<Interval> genes;
    genes.reserve(window);
    for (std::size_t g = 0; g < window; ++g) {
      if (rng.uniform(0.0, 1.0) < 0.3) {
        genes.emplace_back(Interval::wildcard());
      } else {
        const double lo = rng.uniform(0.0, 0.7);
        genes.emplace_back(lo, lo + rng.uniform(0.2, 0.3));
      }
    }
    Rule rule(std::move(genes));
    ef::core::PredictingPart part;
    part.fit.coeffs.reserve(window + 1);
    for (std::size_t c = 0; c <= window; ++c) {
      part.fit.coeffs.push_back(rng.uniform(-0.3, 0.3));
    }
    part.fit.mean_prediction = part.fit.coeffs.back();
    part.fit.max_abs_residual = rng.uniform(0.01, 0.1);
    part.matches = 10;
    part.fitness = rng.uniform(0.5, 5.0);
    rule.set_predicting(part);
    out.push_back(std::move(rule));
  }
  RuleSystem system;
  system.add_rules(std::move(out), /*discard_unfit=*/false, /*f_min=*/-1.0);
  return system;
}

double quantile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

}  // namespace

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const auto clients = static_cast<std::size_t>(cli.get_int("clients", 4));
  const auto requests = static_cast<std::size_t>(cli.get_int("requests", 25000));
  const auto window = static_cast<std::size_t>(cli.get_int("window", 6));
  const auto rules = static_cast<std::size_t>(cli.get_int("rules", 64));
  const auto unique = static_cast<std::size_t>(cli.get_int("unique", 512));
  const auto horizon = static_cast<std::size_t>(cli.get_int("horizon", 1));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto reload_every_ms = cli.get_int("reload-every-ms", 0);
  const std::string trace_out = cli.get_string("trace-out", "");
  if (!trace_out.empty() && !ef::obs::Timeline::enabled()) {
    ef::obs::Timeline::set_sample_rate(1.0);
  }

  ef::serve::ModelStore store;
  store.add_system("bench", synthetic_system(rules, window, seed));

  ef::serve::ServiceConfig config;
  config.enable_cache = !cli.get_bool("no-cache");
  config.enable_batcher = !cli.get_bool("no-batch");
  config.batcher.max_delay =
      std::chrono::microseconds(cli.get_int("batch-delay-us", 200));
  ef::serve::ForecastService service(store, config);

  // Probe pool: windows in a slightly enlarged range so a realistic fraction
  // of requests abstain (uncovered regions answer explicitly, per the paper).
  ef::util::Rng rng(seed + 1);
  std::vector<std::vector<double>> probes(unique);
  for (auto& probe : probes) {
    probe.reserve(window);
    for (std::size_t i = 0; i < window; ++i) probe.push_back(rng.uniform(-0.1, 1.1));
  }

  std::atomic<std::size_t> ok{0};
  std::atomic<std::size_t> abstained{0};
  std::atomic<std::size_t> failed{0};
  std::vector<std::vector<double>> latencies_us(clients);

  std::atomic<bool> reloading{reload_every_ms > 0};
  std::thread reloader;
  if (reload_every_ms > 0) {
    reloader = std::thread([&] {
      std::uint64_t generation = 1;
      while (reloading.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(reload_every_ms));
        store.add_system("bench", synthetic_system(rules, window, seed + generation++));
      }
    });
  }

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(clients);
  for (std::size_t c = 0; c < clients; ++c) {
    workers.emplace_back([&, c] {
      auto& lat = latencies_us[c];
      lat.reserve(requests);
      ef::serve::PredictRequest req;
      req.model = "bench";
      req.horizon = horizon;
      for (std::size_t i = 0; i < requests; ++i) {
        req.window = probes[(c * 7919 + i) % probes.size()];
        const auto t0 = std::chrono::steady_clock::now();
        const auto response = service.predict(req);
        lat.push_back(std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - t0)
                          .count());
        if (!response.ok) {
          ++failed;
        } else if (response.abstain) {
          ++abstained;
          ++ok;
        } else {
          ++ok;
        }
      }
    });
  }
  for (auto& w : workers) w.join();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  if (reloader.joinable()) {
    reloading = false;
    reloader.join();
  }

  std::vector<double> all;
  for (const auto& lat : latencies_us) all.insert(all.end(), lat.begin(), lat.end());
  std::sort(all.begin(), all.end());

  const std::size_t total = clients * requests;
  const auto cache = service.cache_stats();
  const double hit_rate =
      cache.hits + cache.misses == 0
          ? 0.0
          : static_cast<double>(cache.hits) / static_cast<double>(cache.hits + cache.misses);

  std::printf("bench_serve_throughput: %zu clients x %zu requests (window %zu, rules %zu, "
              "horizon %zu, cache %s, batcher %s%s)\n",
              clients, requests, window, rules, horizon,
              config.enable_cache ? "on" : "off", config.enable_batcher ? "on" : "off",
              reload_every_ms > 0 ? ", hot-reload on" : "");
  std::printf("  throughput : %10.0f req/s (%zu requests in %.2fs)\n",
              static_cast<double>(total) / elapsed, total, elapsed);
  std::printf("  latency    : p50 %8.1f us   p90 %8.1f us   p99 %8.1f us   max %8.1f us\n",
              quantile(all, 0.50), quantile(all, 0.90), quantile(all, 0.99),
              all.empty() ? 0.0 : all.back());
  std::printf("  outcomes   : ok %zu   abstained %zu (%.1f%%)   failed %zu\n", ok.load(),
              abstained.load(), 100.0 * static_cast<double>(abstained.load()) /
                                    static_cast<double>(total),
              failed.load());
  std::printf("  cache      : hits %llu   misses %llu   evictions %llu   hit rate %.1f%%\n",
              static_cast<unsigned long long>(cache.hits),
              static_cast<unsigned long long>(cache.misses),
              static_cast<unsigned long long>(cache.evictions), 100.0 * hit_rate);

  if (const auto path = cli.get("metrics-json")) {
    ef::obs::write_json_file(*path);
    std::printf("  metrics    : wrote %s\n", path->c_str());
  }
  if (!trace_out.empty()) {
    if (ef::obs::write_chrome_trace_file(trace_out)) {
      std::printf("  trace      : wrote %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "bench_serve_throughput: cannot write '%s'\n",
                   trace_out.c_str());
      return 1;
    }
  }
  if (cli.get_bool("report")) ef::obs::print_report();

  return failed.load() == 0 ? 0 : 1;
}
