// Tests for ModelStore's container-backed mode: fallthrough lookup with
// lazy materialisation, named-entry shadowing, the one-stat poll (container
// generation swap on repack), corrupt-repack resilience, and RCU liveness
// for models materialised from a replaced generation.
#include "serve/model_store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/interval.hpp"
#include "core/rule.hpp"
#include "core/rule_system.hpp"
#include "fleet/container.hpp"

namespace {

using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleSystem;
using ef::fleet::FleetWriter;
using ef::serve::ModelStore;

/// One-rule system predicting the constant `value` on windows in [0,1]^2.
RuleSystem constant_system(double value) {
  Rule rule({Interval(0.0, 1.0), Interval(0.0, 1.0)});
  ef::core::PredictingPart part;
  part.fit.coeffs = {0.0, 0.0, value};
  part.fit.mean_prediction = value;
  part.fit.max_abs_residual = 0.01;
  part.matches = 4;
  part.fitness = 2.0;
  rule.set_predicting(part);
  RuleSystem system;
  system.add_rules({rule}, false, -1.0);
  return system;
}

std::filesystem::path temp_container_path(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

void write_container(const std::filesystem::path& path,
                     const std::vector<std::pair<std::string, double>>& models) {
  FleetWriter writer;
  for (const auto& [id, value] : models) writer.add(id, constant_system(value));
  writer.write_file(path.string());
}

void bump_mtime(const std::filesystem::path& path) {
  const auto now = std::filesystem::last_write_time(path);
  std::filesystem::last_write_time(path, now + std::chrono::seconds(2));
}

double predict_value(const ef::serve::LoadedModel& model) {
  const std::vector<double> window{0.5, 0.5};
  const auto p = model.forecast(window);
  EXPECT_FALSE(p.abstained);
  return p.value;
}

TEST(ServeContainer, AttachAndFallthroughGet) {
  const auto path = temp_container_path("serve_container_basic.efr2");
  write_container(path, {{"aaa", 1.0}, {"bbb", 2.0}});

  ModelStore store;
  EXPECT_FALSE(store.has_container());
  store.attach_container(path.string());
  EXPECT_TRUE(store.has_container());

  // Container series resolve through the same get() as named models.
  const auto model = store.get("bbb");
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), "bbb");
  EXPECT_EQ(model->version(), 1u);  // container generation
  EXPECT_DOUBLE_EQ(predict_value(*model), 2.0);
  EXPECT_EQ(store.get("absent"), nullptr);

  // Repeated gets hit the materialisation cache — same snapshot object.
  EXPECT_EQ(store.get("bbb").get(), model.get());

  const auto info = store.container_info();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->models, 2u);
  EXPECT_EQ(info->generation, 1u);
  EXPECT_EQ(info->materialized, 1u);  // only "bbb" touched
  EXPECT_GT(info->bytes, 0u);
  EXPECT_EQ(store.container_ids(), (std::vector<std::string>{"aaa", "bbb"}));
  EXPECT_EQ(store.container_ids(1), (std::vector<std::string>{"aaa"}));

  // names()/size() still describe the named namespace only.
  EXPECT_EQ(store.size(), 0u);
  std::filesystem::remove(path);
}

TEST(ServeContainer, NamedEntryShadowsContainerSeries) {
  const auto path = temp_container_path("serve_container_shadow.efr2");
  write_container(path, {{"shared", 1.0}});
  ModelStore store;
  store.attach_container(path.string());
  store.add_system("shared", constant_system(9.0));
  const auto model = store.get("shared");
  ASSERT_NE(model, nullptr);
  EXPECT_DOUBLE_EQ(predict_value(*model), 9.0);  // named wins
  std::filesystem::remove(path);
}

TEST(ServeContainer, RepackSwapsWholeFleetInOnePoll) {
  const auto path = temp_container_path("serve_container_repack.efr2");
  write_container(path, {{"s1", 1.0}, {"s2", 2.0}});
  ModelStore store;
  store.attach_container(path.string());

  const auto old_model = store.get("s1");
  ASSERT_NE(old_model, nullptr);
  EXPECT_DOUBLE_EQ(predict_value(*old_model), 1.0);
  EXPECT_EQ(store.poll_now(), 0u);  // unchanged file: no reload

  // Repack (atomic rename, like eftrain) with new values and a new series.
  write_container(path, {{"s1", 10.0}, {"s2", 20.0}, {"s3", 30.0}});
  bump_mtime(path);
  EXPECT_EQ(store.poll_now(), 1u);  // one reload covers the whole fleet

  const auto info = store.container_info();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->generation, 2u);
  EXPECT_EQ(info->models, 3u);
  EXPECT_EQ(info->materialized, 0u);  // fresh generation starts cold

  const auto new_model = store.get("s1");
  ASSERT_NE(new_model, nullptr);
  EXPECT_EQ(new_model->version(), 2u);
  EXPECT_DOUBLE_EQ(predict_value(*new_model), 10.0);
  ASSERT_NE(store.get("s3"), nullptr);

  // RCU liveness: the pre-repack snapshot still serves for its holders.
  EXPECT_DOUBLE_EQ(predict_value(*old_model), 1.0);
  EXPECT_EQ(old_model->version(), 1u);
  std::filesystem::remove(path);
}

TEST(ServeContainer, CorruptRepackKeepsOldGenerationServing) {
  const auto path = temp_container_path("serve_container_corrupt.efr2");
  write_container(path, {{"keep", 5.0}});
  ModelStore store;
  store.attach_container(path.string());

  // Publish the corrupt bytes the way a (buggy) packer would: temp +
  // rename. In-place truncation would yank pages out from under the live
  // mapping — the format contract requires atomic replacement, which keeps
  // the old inode (and the old generation's mmap) intact.
  {
    const auto tmp = temp_container_path("serve_container_corrupt.tmp");
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << "this is not a container";
    out.close();
    std::filesystem::rename(tmp, path);
  }
  bump_mtime(path);
  EXPECT_EQ(store.poll_now(), 0u);
  // Old generation still serves every series.
  const auto model = store.get("keep");
  ASSERT_NE(model, nullptr);
  EXPECT_DOUBLE_EQ(predict_value(*model), 5.0);
  EXPECT_EQ(store.container_info()->generation, 1u);
  // The failed mtime is remembered: polling again does not re-validate.
  EXPECT_EQ(store.poll_now(), 0u);

  // A good repack recovers.
  write_container(path, {{"keep", 6.0}});
  bump_mtime(path);
  EXPECT_EQ(store.poll_now(), 1u);
  EXPECT_DOUBLE_EQ(predict_value(*store.get("keep")), 6.0);
  EXPECT_EQ(store.container_info()->generation, 2u);
  std::filesystem::remove(path);
}

TEST(ServeContainer, AttachMalformedContainerThrows) {
  const auto path = temp_container_path("serve_container_bad.efr2");
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << "garbage";
  }
  ModelStore store;
  EXPECT_THROW(store.attach_container(path.string()), std::runtime_error);
  EXPECT_FALSE(store.has_container());
  std::filesystem::remove(path);
}

TEST(ServeContainer, ReattachBumpsGeneration) {
  const auto path = temp_container_path("serve_container_reattach.efr2");
  write_container(path, {{"x", 1.0}});
  ModelStore store;
  store.attach_container(path.string());
  EXPECT_EQ(store.container_info()->generation, 1u);
  store.attach_container(path.string());
  EXPECT_EQ(store.container_info()->generation, 2u);
  std::filesystem::remove(path);
}

}  // namespace
