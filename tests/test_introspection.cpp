// Tests for core/introspection.hpp: explanation provenance, aggregation
// consistency, gene-importance profiles on hand-built and trained systems.
#include "core/introspection.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/rule_system.hpp"
#include "series/synthetic.hpp"

namespace {

using ef::core::Aggregation;
using ef::core::explain;
using ef::core::gene_importance;
using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleSystem;

Rule make_rule(std::vector<Interval> genes, double prediction, double fitness,
               std::size_t matches = 7, double error = 0.2) {
  Rule r(std::move(genes));
  ef::core::PredictingPart part;
  part.fit.coeffs.assign(r.window() + 1, 0.0);
  part.fit.coeffs.back() = prediction;
  part.fit.mean_prediction = prediction;
  part.fit.max_abs_residual = error;
  part.matches = matches;
  part.fitness = fitness;
  r.set_predicting(part);
  return r;
}

TEST(Explain, AbstentionHasNoVoters) {
  RuleSystem system;
  system.add_rules({make_rule({Interval(0, 1)}, 5.0, 1.0)}, false, -1.0);
  const auto expl = explain(system, std::vector<double>{9.0});
  EXPECT_FALSE(expl.forecast.has_value());
  EXPECT_TRUE(expl.voters.empty());
}

TEST(Explain, VoterProvenanceComplete) {
  RuleSystem system;
  system.add_rules({make_rule({Interval(0, 10)}, 4.0, 2.5, 11, 0.125),
                    make_rule({Interval(50, 60)}, 9.0, 1.0)},
                   false, -1.0);
  const auto expl = explain(system, std::vector<double>{5.0});
  ASSERT_TRUE(expl.forecast.has_value());
  ASSERT_EQ(expl.voters.size(), 1u);
  const auto& voter = expl.voters.front();
  EXPECT_EQ(voter.rule_index, 0u);
  EXPECT_DOUBLE_EQ(voter.output, 4.0);
  EXPECT_DOUBLE_EQ(voter.fitness, 2.5);
  EXPECT_DOUBLE_EQ(voter.error, 0.125);
  EXPECT_EQ(voter.matches, 11u);
  EXPECT_EQ(voter.specificity, 1u);
}

TEST(Explain, ForecastMatchesPredictForEveryAggregation) {
  RuleSystem system;
  system.add_rules({make_rule({Interval(0, 10)}, 4.0, 2.0), make_rule({Interval(0, 10)}, 8.0, 1.0),
                    make_rule({Interval(0, 10)}, 6.0, 3.0)},
                   false, -1.0);
  const std::vector<double> w{5.0};
  for (const auto how :
       {Aggregation::kMean, Aggregation::kFitnessWeighted, Aggregation::kMedian,
        Aggregation::kBestRule, Aggregation::kInverseError}) {
    const auto expl = explain(system, w, how);
    const auto direct = system.forecast(w, how).as_optional();
    ASSERT_EQ(expl.forecast.has_value(), direct.has_value());
    EXPECT_DOUBLE_EQ(*expl.forecast, *direct);
    EXPECT_EQ(expl.voters.size(), 3u);
  }
}

TEST(GeneImportance, EmptySystemEmptyProfile) {
  const RuleSystem empty;
  EXPECT_TRUE(gene_importance(empty, 0.0, 1.0).empty());
}

TEST(GeneImportance, BadRangeThrows) {
  RuleSystem system;
  system.add_rules({make_rule({Interval(0, 1)}, 1.0, 1.0)}, false, -1.0);
  EXPECT_THROW((void)gene_importance(system, 1.0, 1.0), std::invalid_argument);
}

TEST(GeneImportance, WildcardsScoreZero) {
  RuleSystem system;
  system.add_rules(
      {make_rule({Interval::wildcard(), Interval::wildcard()}, 1.0, 1.0)}, false, -1.0);
  const auto profile = gene_importance(system, 0.0, 1.0);
  ASSERT_EQ(profile.size(), 2u);
  EXPECT_DOUBLE_EQ(profile[0], 0.0);
  EXPECT_DOUBLE_EQ(profile[1], 0.0);
}

TEST(GeneImportance, NarrowGenesScoreHigher) {
  RuleSystem system;
  // Gene 0: narrow band; gene 1: nearly the whole range; gene 2: wildcard.
  system.add_rules({make_rule({Interval(0.4, 0.5), Interval(0.05, 0.95),
                               Interval::wildcard()},
                              1.0, 1.0)},
                   false, -1.0);
  const auto profile = gene_importance(system, 0.0, 1.0);
  ASSERT_EQ(profile.size(), 3u);
  EXPECT_GT(profile[0], profile[1]);
  EXPECT_GT(profile[1], profile[2]);
  EXPECT_NEAR(profile[0], 0.9, 1e-9);
  EXPECT_NEAR(profile[1], 0.1, 1e-9);
}

TEST(GeneImportance, FitnessWeightsDominantRules) {
  RuleSystem system;
  // High-fitness rule constrains gene 0; low-fitness rule constrains gene 1.
  system.add_rules({make_rule({Interval(0.4, 0.5), Interval::wildcard()}, 1.0, 10.0),
                    make_rule({Interval::wildcard(), Interval(0.4, 0.5)}, 1.0, 0.1)},
                   false, -1.0);
  const auto profile = gene_importance(system, 0.0, 1.0);
  EXPECT_GT(profile[0], 5.0 * profile[1]);
}

TEST(GeneImportance, TrainedSystemFindsTheInformativeLag) {
  // Series: target = strong function of the last window value (an AR(1)
  // process): the evolved rules should constrain the *last* lag hardest.
  const auto s = ef::series::generate_ar(1500, {{0.95}, 0.3, 0.0, 200, 17});
  const ef::core::WindowDataset train(s, 6, 1);
  ef::core::RuleSystemConfig cfg;
  cfg.evolution.population_size = 40;
  cfg.evolution.generations = 4000;
  cfg.evolution.emax = 0.4;
  cfg.evolution.seed = 23;
  cfg.max_executions = 2;
  cfg.coverage_target_percent = 95.0;
  const auto trained = ef::core::train(train, {.config = cfg});

  const auto profile =
      gene_importance(trained.system, train.value_min(), train.value_max());
  ASSERT_EQ(profile.size(), 6u);
  // The last lag (index 5) carries the AR(1) signal: it must be the most
  // (or near-most) constrained position.
  double best = 0.0;
  for (const double v : profile) best = std::max(best, v);
  EXPECT_GE(profile[5], 0.8 * best);
  EXPECT_GT(profile[5], 0.0);
}

}  // namespace
