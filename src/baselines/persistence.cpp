#include "baselines/persistence.hpp"

#include <stdexcept>

namespace ef::baselines {

void Persistence::fit(const core::WindowDataset& train) {
  (void)train;
  fitted_ = true;
}

double Persistence::predict(std::span<const double> window) const {
  if (!fitted_) throw std::logic_error("Persistence::predict before fit");
  if (window.empty()) throw std::invalid_argument("Persistence::predict: empty window");
  return window.back();
}

SeasonalPersistence::SeasonalPersistence(std::size_t period) : period_(period) {
  if (period == 0) throw std::invalid_argument("SeasonalPersistence: period must be > 0");
}

void SeasonalPersistence::fit(const core::WindowDataset& train) {
  horizon_ = train.horizon();
  stride_ = train.stride();
  fitted_ = true;
}

double SeasonalPersistence::predict(std::span<const double> window) const {
  if (!fitted_) throw std::logic_error("SeasonalPersistence::predict before fit");
  if (window.empty()) {
    throw std::invalid_argument("SeasonalPersistence::predict: empty window");
  }
  // Target instant is `horizon_` samples after the window's last element.
  // Element `back_raw` raw samples before the window end is exactly one
  // season before the target when back_raw + horizon ≡ 0 (mod period).
  const std::size_t back_raw = (period_ - horizon_ % period_) % period_;
  if (back_raw % stride_ == 0) {
    const std::size_t back = back_raw / stride_;  // window positions before the end
    if (back < window.size()) return window[window.size() - 1 - back];
  }
  return window.back();  // season unreachable from this window: persistence
}

}  // namespace ef::baselines
