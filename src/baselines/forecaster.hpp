// forecaster.hpp — the common interface of all comparator models.
//
// Every baseline the paper compares against (MLP, Elman, RAN, MRAN, plus the
// linear AR and lazy k-NN references from the introduction) trains on a
// WindowDataset and maps a D-window to a point forecast. Unlike the rule
// system, baselines always answer (no abstention) — that asymmetry is the
// paper's central trade-off and is preserved deliberately.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/dataset.hpp"

namespace ef::baselines {

class Forecaster {
 public:
  virtual ~Forecaster() = default;

  /// Train on every (pattern, target) pair of the dataset. May be called
  /// again to retrain from scratch on new data.
  virtual void fit(const core::WindowDataset& train) = 0;

  /// Point forecast for one window of the same length the model was fitted
  /// with. Throws std::logic_error when called before fit().
  [[nodiscard]] virtual double predict(std::span<const double> window) const = 0;

  /// Human-readable model name for bench tables.
  [[nodiscard]] virtual std::string name() const = 0;

  /// Forecast every pattern of a dataset (row i → prediction for pattern i).
  [[nodiscard]] std::vector<double> predict_all(const core::WindowDataset& data) const;
};

}  // namespace ef::baselines
