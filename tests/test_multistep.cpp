// Tests for core/multistep.hpp: chain mechanics on a hand-built system,
// abstention policies, and equivalence with direct prediction on a linear
// series.
#include "core/multistep.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

#include "core/rule_system.hpp"
#include "series/timeseries.hpp"

namespace {

using ef::core::ChainAbstention;
using ef::core::Interval;
using ef::core::iterate_forecast;
using ef::core::iterate_forecast_dataset;
using ef::core::MultistepOptions;
using ef::core::Rule;
using ef::core::RuleSystem;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

/// One-step "+1" system: a single rule over a finite box predicting
/// last + 1 via the hyperplane (0, 1 | intercept 1).
RuleSystem plus_one_system(double lo, double hi) {
  Rule r({Interval(lo, hi), Interval(lo, hi)});
  ef::core::PredictingPart part;
  part.fit.coeffs = {0.0, 1.0, 1.0};  // ŷ = x₁ + 1
  part.fit.mean_prediction = 0.5 * (lo + hi);
  part.matches = 10;
  part.fitness = 1.0;
  r.set_predicting(part);
  RuleSystem system;
  system.add_rules({std::move(r)}, false, -1.0);
  return system;
}

TEST(Multistep, SingleStepEqualsDirectPredict) {
  const RuleSystem system = plus_one_system(0, 100);
  const std::vector<double> w{3.0, 4.0};
  MultistepOptions options;
  options.horizon = 1;
  const auto iterated = iterate_forecast(system, w, options);
  const auto direct = system.forecast(w).as_optional();
  ASSERT_TRUE(iterated.has_value());
  ASSERT_TRUE(direct.has_value());
  EXPECT_DOUBLE_EQ(*iterated, *direct);
}

TEST(Multistep, ChainsAdditiveSteps) {
  const RuleSystem system = plus_one_system(0, 100);
  const std::vector<double> w{3.0, 4.0};
  for (const std::size_t h : {2u, 5u, 10u}) {
    MultistepOptions options;
    options.horizon = h;
    const auto out = iterate_forecast(system, w, options);
    ASSERT_TRUE(out.has_value()) << h;
    EXPECT_DOUBLE_EQ(*out, 4.0 + static_cast<double>(h)) << h;
  }
}

TEST(Multistep, AbstainPolicyPropagatesAbstention) {
  // Box only covers values <= 6: the chain leaves it after a few steps.
  const RuleSystem system = plus_one_system(0, 6);
  const std::vector<double> w{3.0, 4.0};
  MultistepOptions options;
  options.horizon = 10;
  options.on_abstain = ChainAbstention::kAbstain;
  EXPECT_FALSE(iterate_forecast(system, w, options).has_value());
}

TEST(Multistep, PersistencePolicyBridgesGaps) {
  const RuleSystem system = plus_one_system(0, 6);
  const std::vector<double> w{3.0, 4.0};
  MultistepOptions options;
  options.horizon = 10;
  options.on_abstain = ChainAbstention::kPersistence;
  const auto out = iterate_forecast(system, w, options);
  ASSERT_TRUE(out.has_value());
  // Steps: 5, 6, 7 (predicted while window in box)… after the window fills
  // with values > 6 the rule stops matching and persistence holds the level.
  EXPECT_GE(*out, 6.0);
  EXPECT_LE(*out, 8.0);
}

TEST(Multistep, InvalidArgumentsThrow) {
  const RuleSystem system = plus_one_system(0, 10);
  MultistepOptions options;
  options.horizon = 0;
  EXPECT_THROW((void)iterate_forecast(system, std::vector<double>{1.0, 2.0}, options),
               std::invalid_argument);
  options.horizon = 1;
  EXPECT_THROW((void)iterate_forecast(system, std::vector<double>{}, options),
               std::invalid_argument);
}

TEST(MultistepDataset, RequiresStrideOne) {
  const TimeSeries s(std::vector<double>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11});
  const WindowDataset strided(s, 2, 2, /*stride=*/2);
  const RuleSystem system = plus_one_system(0, 100);
  EXPECT_THROW(
      (void)iterate_forecast_dataset(system, strided, ChainAbstention::kAbstain),
      std::invalid_argument);
}

TEST(MultistepDataset, ExactOnRampWithPlusOneSystem) {
  // Ramp series: the true τ-step continuation of (x, x+1) is x+1+τ, which
  // the iterated +1 system reproduces exactly.
  std::vector<double> v(30);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = static_cast<double>(i);
  const TimeSeries s(std::move(v));
  const WindowDataset data(s, 2, 4);  // τ = 4
  const RuleSystem system = plus_one_system(0, 100);

  const auto forecast = iterate_forecast_dataset(system, data, ChainAbstention::kAbstain);
  ASSERT_EQ(forecast.size(), data.count());
  for (std::size_t i = 0; i < data.count(); ++i) {
    ASSERT_TRUE(forecast[i].has_value()) << i;
    EXPECT_DOUBLE_EQ(*forecast[i], data.target(i)) << i;
  }
}

TEST(Trajectory, ProducesRequestedSteps) {
  const RuleSystem system = plus_one_system(0, 1000);
  const auto traj =
      ef::core::iterate_trajectory(system, std::vector<double>{3.0, 4.0}, 5);
  ASSERT_EQ(traj.size(), 5u);
  for (std::size_t k = 0; k < traj.size(); ++k) {
    EXPECT_DOUBLE_EQ(traj[k], 5.0 + static_cast<double>(k));
  }
}

TEST(Trajectory, TruncatesAtAbstention) {
  const RuleSystem system = plus_one_system(0, 6);  // leaves the box quickly
  const auto traj =
      ef::core::iterate_trajectory(system, std::vector<double>{3.0, 4.0}, 10);
  EXPECT_LT(traj.size(), 10u);
  EXPECT_GE(traj.size(), 1u);
  // Every produced value is a genuine one-step prediction (last + 1).
  EXPECT_DOUBLE_EQ(traj.front(), 5.0);
}

TEST(Trajectory, PersistenceBridgesToFullLength) {
  const RuleSystem system = plus_one_system(0, 6);
  MultistepOptions options;
  options.on_abstain = ef::core::ChainAbstention::kPersistence;
  const auto traj =
      ef::core::iterate_trajectory(system, std::vector<double>{3.0, 4.0}, 10, options);
  EXPECT_EQ(traj.size(), 10u);
  // Once persistence kicks in the level holds.
  EXPECT_DOUBLE_EQ(traj.back(), traj[traj.size() - 2]);
}

TEST(Trajectory, EmptyWindowThrows) {
  const RuleSystem system = plus_one_system(0, 10);
  EXPECT_THROW((void)ef::core::iterate_trajectory(system, std::vector<double>{}, 3),
               std::invalid_argument);
}

TEST(Trajectory, ZeroStepsIsEmpty) {
  const RuleSystem system = plus_one_system(0, 10);
  EXPECT_TRUE(ef::core::iterate_trajectory(system, std::vector<double>{1.0, 2.0}, 0).empty());
}

TEST(MultistepDataset, HorizonZeroThrows) {
  std::vector<double> v(20, 1.0);
  const TimeSeries s(std::move(v));
  const WindowDataset data(s, 2, 0);
  const RuleSystem system = plus_one_system(0, 100);
  EXPECT_THROW((void)iterate_forecast_dataset(system, data, ChainAbstention::kAbstain),
               std::invalid_argument);
}

}  // namespace
