// experiments.hpp — the paper's three evaluation experiments as a library.
//
// One function per table row: build the dataset at the requested scale,
// train the rule system, train the comparators, return every number the
// paper's table reports. The bench binaries are thin CLI/printing wrappers
// around these, and the test suite calls them at reduced scale to regression-
// test the *shape* of each result (who wins, coverage bands) — so a change
// that silently breaks a reproduction fails ctest, not just eyeballs.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/rule_system.hpp"

namespace ef::experiments {

/// Common rule-system outcome fields of a table row.
struct RuleSystemRow {
  double coverage_percent = 0.0;
  double rmse = 0.0;   ///< covered subset
  double mae = 0.0;    ///< covered subset
  double nmse = 0.0;   ///< covered subset
  std::size_t rules = 0;
  std::size_t executions = 0;
};

// ---------------------------------------------------------------------------
// Table 1 — Venice Lagoon
// ---------------------------------------------------------------------------

struct VeniceRowConfig {
  std::size_t horizon = 1;
  std::size_t window = 24;  ///< paper: 24 hourly inputs
  std::size_t train_hours = 8000;
  std::size_t validation_hours = 2000;
  std::size_t population = 100;
  std::size_t generations = 6000;
  std::size_t max_executions = 8;
  double coverage_target_percent = 97.0;
  /// <= 0: use the calibrated schedule 8 + 48·(1 − e^{−τ/8}) cm.
  double emax = -1.0;
  std::uint64_t seed = 1;
  std::size_t mlp_epochs = 30;
};

struct VeniceRowResult {
  RuleSystemRow rs;
  double rmse_mlp = 0.0;
  double rmse_ar = 0.0;
  double rmse_arma = 0.0;
  /// Two-sided Wilcoxon signed-rank p for |err_RS| vs |err_MLP| paired over
  /// the rule system's covered windows (1.0 when nothing is covered).
  double p_rs_vs_mlp = 1.0;
};

[[nodiscard]] VeniceRowResult run_venice_row(const VeniceRowConfig& config);

/// The calibrated EMAX schedule used when VeniceRowConfig::emax <= 0.
[[nodiscard]] double venice_emax_schedule(std::size_t horizon);

// ---------------------------------------------------------------------------
// Table 2 — Mackey-Glass
// ---------------------------------------------------------------------------

struct MackeyGlassRowConfig {
  std::size_t horizon = 50;
  std::size_t window = 4;
  std::size_t stride = 6;  ///< comparators' classic delay embedding
  std::size_t population = 100;
  std::size_t generations = 15000;
  std::size_t max_executions = 4;
  double coverage_target_percent = 78.0;  ///< paper's operating point
  double emax = 0.14;
  std::uint64_t seed = 1;
  std::size_t rbf_passes = 2;  ///< RAN/MRAN sweeps (cited works: online)
};

struct MackeyGlassRowResult {
  RuleSystemRow rs;
  double nmse_ran = 0.0;
  double nmse_mran = 0.0;
};

[[nodiscard]] MackeyGlassRowResult run_mackey_glass_row(const MackeyGlassRowConfig& config);

// ---------------------------------------------------------------------------
// Table 3 — sunspots
// ---------------------------------------------------------------------------

struct SunspotRowConfig {
  std::size_t horizon = 1;
  std::size_t window = 24;  ///< paper: 24 inputs
  std::size_t population = 100;
  std::size_t generations = 15000;
  std::size_t max_executions = 8;
  double coverage_target_percent = 96.0;
  /// <= 0: use the calibrated schedule 0.18 + 0.007·τ (normalised units).
  double emax = -1.0;
  std::uint64_t seed = 1;
  std::size_t mlp_epochs = 40;
  std::size_t elman_epochs = 25;
};

struct SunspotRowResult {
  RuleSystemRow rs;
  double galvan_rs = 0.0;  ///< Table 3's metric, covered subset
  double galvan_mlp = 0.0;
  double galvan_elman = 0.0;
};

[[nodiscard]] SunspotRowResult run_sunspot_row(const SunspotRowConfig& config);

[[nodiscard]] double sunspot_emax_schedule(std::size_t horizon);

}  // namespace ef::experiments
