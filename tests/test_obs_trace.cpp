// Tests for obs/trace.hpp: span aggregation, nesting and self-time
// accounting, per-thread span stacks, and compile-out behaviour under
// -DEVOFORECAST_OBS=OFF.
#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/macros.hpp"

namespace {

using ef::obs::ScopedTimer;
using ef::obs::TraceRegistry;
using ef::obs::TraceSnapshot;

const ef::obs::SpanStats* find_span(const TraceSnapshot& snap, const char* name) {
  for (const auto& span : snap.spans) {
    if (span.name == name) return &span.stats;
  }
  return nullptr;
}

void busy_wait_us(int us) {
  const auto until = std::chrono::steady_clock::now() + std::chrono::microseconds(us);
  while (std::chrono::steady_clock::now() < until) {
  }
}

TEST(ObsTraceRegistry, RecordAggregatesByName) {
  TraceRegistry::global().reset();
  TraceRegistry::global().record("trace.test.manual", 100.0, 60.0);
  TraceRegistry::global().record("trace.test.manual", 300.0, 140.0);
  const auto snap = TraceRegistry::global().snapshot();
  const auto* stats = find_span(snap, "trace.test.manual");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->calls, 2u);
  EXPECT_DOUBLE_EQ(stats->total_ns, 400.0);
  EXPECT_DOUBLE_EQ(stats->self_ns, 200.0);
  EXPECT_DOUBLE_EQ(stats->duration_ns.mean(), 200.0);
}

TEST(ObsTrace, ElapsedSecondsWorksInEveryBuildMode) {
  const ScopedTimer timer("trace.test.elapsed");
  busy_wait_us(200);
  const double s = timer.elapsed_seconds();
  EXPECT_GE(s, 100e-6);
  EXPECT_LT(s, 5.0);
}

#if EVOFORECAST_OBS_ENABLED

TEST(ObsTrace, ScopedTimerRecordsOnExit) {
  TraceRegistry::global().reset();
  {
    const ScopedTimer timer("trace.test.single");
    busy_wait_us(200);
  }
  const auto snap = TraceRegistry::global().snapshot();
  const auto* stats = find_span(snap, "trace.test.single");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->calls, 1u);
  EXPECT_GE(stats->total_ns, 100e3);
  // No children ran, so self time equals total time.
  EXPECT_DOUBLE_EQ(stats->self_ns, stats->total_ns);
}

TEST(ObsTrace, NestedSpanSelfTimeIsTotalMinusChildren) {
  TraceRegistry::global().reset();
  {
    const ScopedTimer outer("trace.test.outer");
    busy_wait_us(300);
    {
      const ScopedTimer inner("trace.test.inner");
      busy_wait_us(300);
    }
    busy_wait_us(300);
  }
  const auto snap = TraceRegistry::global().snapshot();
  const auto* outer = find_span(snap, "trace.test.outer");
  const auto* inner = find_span(snap, "trace.test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  // The parent's child accounting uses the same measured duration the child
  // records, so the identity is exact, not approximate.
  EXPECT_NEAR(outer->self_ns, outer->total_ns - inner->total_ns, 1.0);
  // Two 300 us busy waits bound outer's self time from below. (Don't compare
  // against inner->total_ns: preemption on a loaded machine inflates the
  // inner span's wall clock arbitrarily, which flaked under `ctest -j`.)
  EXPECT_GE(outer->self_ns, 2 * 300e3);
  EXPECT_DOUBLE_EQ(inner->self_ns, inner->total_ns);
}

TEST(ObsTrace, SpanStacksArePerThread) {
  TraceRegistry::global().reset();
  {
    const ScopedTimer outer("trace.test.thread_outer");
    // A span opened on another thread must not become our child.
    std::thread worker([] {
      const ScopedTimer other("trace.test.thread_other");
      busy_wait_us(500);
    });
    worker.join();
  }
  const auto snap = TraceRegistry::global().snapshot();
  const auto* outer = find_span(snap, "trace.test.thread_outer");
  ASSERT_NE(outer, nullptr);
  // If the worker's span had nested under us, our self time would be roughly
  // total minus its 500 us; per-thread stacks keep self == total.
  EXPECT_DOUBLE_EQ(outer->self_ns, outer->total_ns);
}

TEST(ObsTrace, MacroExpandsToScopedTimer) {
  TraceRegistry::global().reset();
  {
    EVOFORECAST_TRACE("trace.test.macro");
    busy_wait_us(100);
  }
  const auto snap = TraceRegistry::global().snapshot();
  const auto* stats = find_span(snap, "trace.test.macro");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->calls, 1u);
}

TEST(ObsTrace, RepeatedCallsAccumulate) {
  TraceRegistry::global().reset();
  for (int i = 0; i < 5; ++i) {
    const ScopedTimer timer("trace.test.repeat");
    busy_wait_us(50);
  }
  const auto snap = TraceRegistry::global().snapshot();
  const auto* stats = find_span(snap, "trace.test.repeat");
  ASSERT_NE(stats, nullptr);
  EXPECT_EQ(stats->calls, 5u);
  EXPECT_EQ(stats->duration_ns.count(), 5u);
  EXPECT_GT(stats->duration_ns.mean(), 0.0);
}

#else  // !EVOFORECAST_OBS_ENABLED

TEST(ObsTrace, CompiledOutScopedTimerRecordsNothing) {
  TraceRegistry::global().reset();
  {
    const ScopedTimer timer("trace.test.compiled_out");
    busy_wait_us(100);
  }
  {
    EVOFORECAST_TRACE("trace.test.compiled_out_macro");
    busy_wait_us(100);
  }
  const auto snap = TraceRegistry::global().snapshot();
  EXPECT_TRUE(snap.spans.empty());
}

#endif  // EVOFORECAST_OBS_ENABLED

TEST(ObsTrace, ResetAllClearsSpans) {
  TraceRegistry::global().record("trace.test.reset", 10.0, 10.0);
  ef::obs::reset_all();
  const auto snap = TraceRegistry::global().snapshot();
  EXPECT_EQ(find_span(snap, "trace.test.reset"), nullptr);
}

}  // namespace
