// obs/window.hpp — time-windowed view over the cumulative metrics registry.
//
// The registry's counters and histograms are lifetime aggregates: perfect
// for a run report, useless for an operator watching a server that has been
// up for a week — yesterday's million requests smear today's latency spike
// into invisibility. The WindowedCollector fixes that WITHOUT touching the
// hot path: instrumentation sites keep paying exactly one relaxed atomic op,
// and the collector *samples* the registry into a ring of timestamped
// frames (one snapshot per bucket interval). A windowed value is then just
// the difference between the newest and oldest frame in the ring:
//
//   * counter  → delta over the window and a per-second rate
//   * histogram→ bucket-wise delta, re-interpolated into windowed
//                p50/p90/p99 plus a windowed observation rate
//
// Sampling cost is one Registry::snapshot() per bucket (default 1 s) —
// microseconds against a serving workload. Tests drive tick(time_point)
// with synthetic timestamps; efserve runs start() for a real background
// sampler. Counter resets between frames clamp to "everything is new"
// rather than underflowing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"

namespace ef::obs {

/// Windowed view of one counter.
struct WindowedCounter {
  std::string name;
  std::uint64_t delta = 0;  ///< increments inside the window
  double per_sec = 0.0;
};

/// Windowed view of one histogram: quantiles of the observations that fell
/// inside the window, not of the process lifetime.
struct WindowedHistogram {
  std::string name;
  std::uint64_t count = 0;  ///< observations inside the window
  double per_sec = 0.0;
  double sum = 0.0;
  double p50 = 0.0;  ///< bucket-interpolated over the window's bucket deltas
  double p90 = 0.0;
  double p99 = 0.0;
};

/// Everything the collector can say about the last window. Empty (and
/// window_seconds == 0) until two frames exist.
struct WindowSnapshot {
  double window_seconds = 0.0;
  std::vector<WindowedCounter> counters;      ///< sorted by name
  std::vector<WindowedHistogram> histograms;  ///< sorted by name
};

class WindowedCollector {
 public:
  struct Config {
    std::chrono::milliseconds bucket{1000};  ///< sampling interval
    std::size_t buckets = 60;                ///< ring length (horizon = bucket * buckets)
  };

  explicit WindowedCollector(Registry& registry = Registry::global());
  WindowedCollector(Registry& registry, Config config);
  ~WindowedCollector();

  WindowedCollector(const WindowedCollector&) = delete;
  WindowedCollector& operator=(const WindowedCollector&) = delete;

  /// Sample the registry now. Frames older than the horizon (relative to
  /// `now`) are dropped. Thread-safe.
  void tick() { tick(std::chrono::steady_clock::now()); }
  void tick(std::chrono::steady_clock::time_point now);

  /// Start/stop a background thread calling tick() every config.bucket.
  /// start() is idempotent; stop() joins the sampler.
  void start();
  void stop();
  [[nodiscard]] bool sampling() const noexcept {
    return sampling_.load(std::memory_order_acquire);
  }

  /// Windowed view across every counter and histogram the registry held at
  /// the two endpoint frames. window_seconds == 0 with < 2 frames.
  [[nodiscard]] WindowSnapshot window() const;

  /// Single-instrument lookups; nullopt with < 2 frames or unknown name.
  [[nodiscard]] std::optional<WindowedCounter> counter_rate(std::string_view name) const;
  [[nodiscard]] std::optional<WindowedHistogram> histogram_window(std::string_view name) const;

  [[nodiscard]] const Config& config() const noexcept { return config_; }

  /// The process-wide collector over Registry::global(), default config.
  /// Constructed lazily and never started implicitly — long-running servers
  /// call start(); short-lived binaries never pay for it.
  [[nodiscard]] static WindowedCollector& global();

 private:
  struct Frame {
    std::chrono::steady_clock::time_point at;
    MetricsSnapshot snap;
  };

  /// Newest + oldest frame under the mutex; false with < 2 frames.
  [[nodiscard]] bool endpoints(Frame& oldest, Frame& newest) const;

  Registry& registry_;
  Config config_;

  mutable std::mutex mutex_;
  std::deque<Frame> frames_;

  std::thread sampler_;
  std::mutex sampler_mutex_;
  std::condition_variable sampler_cv_;
  bool sampler_stop_ = false;
  std::atomic<bool> sampling_{false};
};

}  // namespace ef::obs
