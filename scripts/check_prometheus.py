#!/usr/bin/env python3
"""Validate Prometheus text exposition format 0.0.4 (used by CI).

Reads stdin when FILE is omitted.

Structural checks on a scrape of efserve's GET /metrics:
  * every sample line parses as  name{labels} value  with a legal metric
    name ([a-zA-Z_:][a-zA-Z0-9_:]*) and a parseable value
  * every sample's base family has a # TYPE line, and it appears before
    the samples it describes
  * counters end in _total
  * histogram bucket series are cumulative (non-decreasing in le order),
    end with an le="+Inf" bucket, and that bucket equals <family>_count
  * le label values are parseable floats or +Inf

With --windowed, additionally require windowed coverage: the collector
window must be live (evoforecast_window_seconds > 0) and every histogram
family must expose windowed quantile gauges (<family>_window{q="..."}) and
a windowed rate (<family>_window_rate) — catching histograms added to the
registry without showing up in the windowed section.

Usage: check_prometheus.py [--windowed] [FILE]

Importable: validate(text) and validate_windowed(text) return lists of
problem strings (empty = ok); validate_windowed reports nothing when the
window is not live yet (callers poll for evoforecast_window_seconds > 0
first). The CLI prints each problem and exits 1 on any, 2 on usage/IO
errors — always a readable message, never a traceback.
"""
import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)(?: \d+)?$"
)
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _parse_value(text):
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    if text == "NaN":
        return float("nan")
    return float(text)  # raises ValueError on garbage


def _family_of(name):
    """Base metric family: strip histogram sample suffixes."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def validate(text):
    problems = []
    types = {}          # family -> declared type
    type_line_no = {}   # family -> line number of its # TYPE
    buckets = {}        # family -> list of (le, value, line_no)
    counts = {}         # family -> _count value
    samples = 0

    for line_no, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            problems.append(f"line {line_no}: blank line in exposition")
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                problems.append(f"line {line_no}: malformed TYPE line: {line!r}")
                continue
            _, _, family, kind = parts
            if kind not in ("counter", "gauge", "histogram", "summary", "untyped"):
                problems.append(f"line {line_no}: unknown type {kind!r} for {family}")
            if family in types:
                problems.append(f"line {line_no}: duplicate TYPE for {family}")
            types[family] = kind
            type_line_no[family] = line_no
            continue
        if line.startswith("#"):
            continue  # HELP / comments: fine

        match = SAMPLE_RE.match(line)
        if not match:
            problems.append(f"line {line_no}: unparseable sample: {line!r}")
            continue
        samples += 1
        name = match.group("name")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            problems.append(
                f"line {line_no}: bad value {match.group('value')!r} for {name}")
            continue
        labels = dict(LABEL_RE.findall(match.group("labels") or ""))

        family = _family_of(name)
        declared = types.get(family) or types.get(name)
        if declared is None:
            problems.append(f"line {line_no}: sample {name} has no # TYPE line")
            continue
        described = family if family in types else name
        if type_line_no[described] > line_no:
            problems.append(
                f"line {line_no}: sample {name} precedes its # TYPE line")

        if declared == "counter" and not name.endswith("_total"):
            problems.append(
                f"line {line_no}: counter sample {name} does not end in _total")

        if declared == "histogram" and name.endswith("_bucket"):
            le = labels.get("le")
            if le is None:
                problems.append(f"line {line_no}: bucket without le label: {name}")
                continue
            try:
                bound = _parse_value(le)
            except ValueError:
                problems.append(f"line {line_no}: unparseable le={le!r} on {name}")
                continue
            buckets.setdefault(family, []).append((bound, value, line_no))
        if declared == "histogram" and name.endswith("_count"):
            counts[family] = value

    for family, series in sorted(buckets.items()):
        bounds = [bound for bound, _, _ in series]
        if bounds != sorted(bounds):
            problems.append(f"{family}: le buckets not in ascending order")
        last = None
        for bound, value, line_no in series:
            if last is not None and value < last:
                problems.append(
                    f"line {line_no}: {family} bucket le={bound} count {value} "
                    f"< previous bucket {last} (not cumulative)")
            last = value
        if not series or series[-1][0] != float("inf"):
            problems.append(f"{family}: bucket series does not end at le=\"+Inf\"")
        elif family in counts and series[-1][1] != counts[family]:
            problems.append(
                f"{family}: +Inf bucket {series[-1][1]} != _count {counts[family]}")
        if family in types and family not in counts:
            problems.append(f"{family}: histogram has buckets but no _count sample")

    if samples == 0:
        problems.append("no samples found — empty or non-exposition input")
    return problems


def validate_windowed(text):
    """Cross-check that every histogram also appears in windowed form.

    The WindowedCollector derives <family>_window{q=...} gauges and a
    <family>_window_rate from every histogram in its newest frame, so a
    histogram missing from the windowed section means it was registered but
    never reached a collector frame — exactly the regression this catches.
    Returns [] when the window is not live yet (no frames: nothing windowed
    is expected); callers wanting a hard requirement poll for
    evoforecast_window_seconds > 0 before calling.
    """
    problems = []
    window_seconds = 0.0
    histogram_families = set()
    window_quantiles = set()
    window_rates = set()
    for line in text.splitlines():
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) == 4 and parts[3] == "histogram":
                histogram_families.add(parts[2])
            continue
        if line.startswith("#"):
            continue
        match = SAMPLE_RE.match(line)
        if not match:
            continue  # validate() reports malformed lines
        name = match.group("name")
        if name == "evoforecast_window_seconds":
            try:
                window_seconds = _parse_value(match.group("value"))
            except ValueError:
                pass
        elif name.endswith("_window"):
            window_quantiles.add(name[: -len("_window")])
        elif name.endswith("_window_rate"):
            window_rates.add(name[: -len("_window_rate")])
    if not window_seconds > 0.0:
        return problems
    for family in sorted(histogram_families):
        if family not in window_quantiles:
            problems.append(
                f"{family}: histogram has no windowed quantiles ({family}_window)")
        if family not in window_rates:
            problems.append(
                f"{family}: histogram has no windowed rate ({family}_window_rate)")
    return problems


def main():
    argv = sys.argv[1:]
    windowed = "--windowed" in argv
    argv = [a for a in argv if a != "--windowed"]
    if len(argv) > 1:
        print(__doc__)
        return 2
    try:
        if len(argv) == 1:
            with open(argv[0]) as f:
                text = f.read()
        else:
            text = sys.stdin.read()
    except OSError as err:
        print(f"check_prometheus: cannot read input: {err}")
        return 2

    problems = validate(text)
    if windowed:
        # The flag makes windowed coverage a hard requirement: a scrape with
        # no live window fails instead of vacuously passing.
        live = re.search(
            r"^evoforecast_window_seconds ([0-9.eE+-]+)", text, re.MULTILINE)
        if live is None or not float(live.group(1)) > 0.0:
            problems.append(
                "--windowed: collector window not live "
                "(evoforecast_window_seconds missing or 0)")
        else:
            problems += validate_windowed(text)
    if problems:
        for problem in problems:
            print(f"  [FAIL] {problem}")
        print(f"check_prometheus: {len(problems)} problem(s)")
        return 1
    families = len(re.findall(r"^# TYPE ", text, re.MULTILINE))
    print(f"check_prometheus: ok ({families} metric families)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
