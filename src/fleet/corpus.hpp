// fleet/corpus.hpp — rolling-origin accuracy evaluation across a fleet.
//
// M4-style corpus scoring for abstaining forecasters: per series, hold out
// the chronological tail, train on the prefix (deterministic per-series
// seeds, same derivation the bulk trainer uses), forecast every holdout
// window one step at a time, and report coverage-aware errors. The
// fleet-level aggregates pool covered points across series (so a series
// with 100 holdout points weighs 10× one with 10) and track the paper's
// headline secondary metric — percentage of prediction — fleet-wide.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "fleet/bulk_trainer.hpp"
#include "series/metrics.hpp"

namespace ef::fleet {

struct CorpusOptions {
  /// Training configuration + embedding + pool (seed derivation included).
  FleetTrainOptions train;
  /// Fraction of each series held out for evaluation (chronological tail).
  double holdout_fraction = 0.2;
  /// Lower bound on holdout points per series; series whose holdout would
  /// be smaller are skipped (recorded, not silent).
  std::size_t min_holdout = 4;
};

struct SeriesEvaluation {
  std::string id;
  series::CoverageReport report;  ///< errors over covered holdout points
  std::size_t rules = 0;
  std::size_t holdout_points = 0;
  bool skipped = false;
  std::string skip_reason;
};

struct CorpusResult {
  std::vector<SeriesEvaluation> series;  ///< input order, skips included
  std::size_t evaluated = 0;
  std::size_t skipped = 0;
  /// Pooled over every covered holdout point of every evaluated series.
  double pooled_rmse = 0.0;
  double pooled_mae = 0.0;
  /// Fleet-wide percentage of prediction: 100 · covered / total holdout
  /// points (the abstention complement).
  double percentage_of_prediction = 0.0;
  std::size_t total_points = 0;
  std::size_t covered_points = 0;
  double wall_seconds = 0.0;
};

/// Train-and-evaluate the fleet with rolling-origin holdout. Parallel
/// across series on options.train.pool.
[[nodiscard]] CorpusResult evaluate_fleet(std::span<const SeriesRecord> fleet,
                                          const CorpusOptions& options);

}  // namespace ef::fleet
