// mlp.hpp — multilayer perceptron baseline ("Error NN" / "Feedfw NN").
//
// Re-implementation of the feed-forward comparator the paper quotes from
// Zaldívar et al. (Venice, Table 1) and Galván-Isasi (sunspots, Table 3):
// tanh hidden layers, linear scalar output, per-sample SGD with momentum and
// optional learning-rate decay. Inputs are the same D-windows the rule
// system sees, so comparisons are apples-to-apples.
#pragma once

#include <cstdint>
#include <vector>

#include "baselines/forecaster.hpp"
#include "baselines/linalg.hpp"

namespace ef::baselines {

struct MlpConfig {
  std::vector<std::size_t> hidden{16};  ///< hidden layer widths
  double learning_rate = 0.01;
  double momentum = 0.9;
  double lr_decay = 0.97;  ///< per-epoch multiplier
  std::size_t epochs = 60;
  bool shuffle = true;  ///< reshuffle sample order every epoch
  std::uint64_t seed = 7;
  /// Standardise inputs and target to zero-mean/unit-variance internally
  /// (fitted on the training set, inverted at prediction). Essential when
  /// the series is in physical units (Venice centimetres): raw O(100)
  /// inputs saturate the tanh layer immediately.
  bool standardize = true;

  /// Throws std::invalid_argument on nonsensical values.
  void validate() const;
};

class Mlp final : public Forecaster {
 public:
  explicit Mlp(MlpConfig config = {});

  void fit(const core::WindowDataset& train) override;
  [[nodiscard]] double predict(std::span<const double> window) const override;
  [[nodiscard]] std::string name() const override { return "mlp"; }

  [[nodiscard]] const MlpConfig& config() const noexcept { return config_; }
  /// Mean squared training error of the final epoch (convergence telemetry).
  [[nodiscard]] double final_train_mse() const noexcept { return final_train_mse_; }

 private:
  /// Forward pass on a *standardised* input; fills per-layer activations
  /// (act[0] is the input copy).
  void forward(std::span<const double> input, std::vector<std::vector<double>>& act) const;

  /// Standardise one raw window into `out` using the fitted statistics.
  void standardize_input(std::span<const double> window, std::vector<double>& out) const;

  MlpConfig config_;
  std::vector<double> input_mean_;
  std::vector<double> input_sd_;
  double target_mean_ = 0.0;
  double target_sd_ = 1.0;
  // weights_[l] maps activations of layer l to pre-activations of layer l+1;
  // biases_[l] are that layer's offsets. Output layer is linear width 1.
  std::vector<Matrix> weights_;
  std::vector<std::vector<double>> biases_;
  bool fitted_ = false;
  double final_train_mse_ = 0.0;
};

}  // namespace ef::baselines
