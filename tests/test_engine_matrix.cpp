// Property-test matrix over the steady-state engine's strategy space:
// every (init × replacement × distance) combination must preserve the core
// invariants — stable population size, evaluated individuals, gene bounds,
// monotone mean fitness under better-only replacement, determinism.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/evolution.hpp"
#include "series/timeseries.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::DistanceMetric;
using ef::core::EvolutionConfig;
using ef::core::InitStrategy;
using ef::core::ReplacementStrategy;
using ef::core::SteadyStateEngine;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

using Combo = std::tuple<InitStrategy, ReplacementStrategy, DistanceMetric>;

class EngineMatrixTest : public testing::TestWithParam<Combo> {
 protected:
  static TimeSeries series() {
    ef::util::Rng rng(61);
    std::vector<double> v(350);
    for (std::size_t i = 0; i < v.size(); ++i) {
      v[i] = std::sin(static_cast<double>(i) * 0.25) + rng.normal(0.0, 0.05);
    }
    return TimeSeries(std::move(v));
  }

  static EvolutionConfig config() {
    const auto [init, replacement, distance] = GetParam();
    EvolutionConfig cfg;
    cfg.population_size = 12;
    cfg.generations = 250;
    cfg.emax = 0.3;
    cfg.seed = 19;
    cfg.init = init;
    cfg.replacement = replacement;
    cfg.distance = distance;
    return cfg;
  }
};

TEST_P(EngineMatrixTest, InvariantsHoldThroughoutRun) {
  const TimeSeries s = series();
  const WindowDataset data(s, 4, 1);
  SteadyStateEngine engine(data, config());

  double last_mean = engine.snapshot().mean_fitness;
  for (int g = 0; g < 250; ++g) {
    engine.step();
    ASSERT_EQ(engine.population().size(), 12u);
    const double mean = engine.snapshot().mean_fitness;
    // Better-only replacement ⇒ mean fitness never decreases.
    ASSERT_GE(mean, last_mean - 1e-12) << "generation " << g;
    last_mean = mean;
  }
  for (const auto& rule : engine.population()) {
    ASSERT_TRUE(rule.predicting().has_value());
    ASSERT_EQ(rule.window(), 4u);
    for (const auto& gene : rule.genes()) {
      if (gene.is_wildcard()) continue;
      ASSERT_LE(gene.lo(), gene.hi());
    }
  }
}

TEST_P(EngineMatrixTest, DeterministicAcrossRuns) {
  const TimeSeries s = series();
  const WindowDataset data(s, 4, 1);
  SteadyStateEngine a(data, config());
  SteadyStateEngine b(data, config());
  a.run();
  b.run();
  EXPECT_EQ(a.replacements(), b.replacements());
  for (std::size_t i = 0; i < a.population().size(); ++i) {
    ASSERT_DOUBLE_EQ(a.population()[i].fitness(), b.population()[i].fitness());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategyCombos, EngineMatrixTest,
    testing::Combine(testing::Values(InitStrategy::kOutputStratified,
                                     InitStrategy::kUniformRandom),
                     testing::Values(ReplacementStrategy::kCrowding,
                                     ReplacementStrategy::kReplaceWorst,
                                     ReplacementStrategy::kRandom),
                     testing::Values(DistanceMetric::kPrediction,
                                     DistanceMetric::kConditionOverlap,
                                     DistanceMetric::kMatchedJaccard)));

}  // namespace
