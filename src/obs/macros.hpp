// obs/macros.hpp — zero-cost-when-disabled instrumentation entry points.
//
// Hot paths record through these macros rather than calling the registry
// directly, for two reasons:
//   1. Compile-out: with -DEVOFORECAST_OBS=OFF (CMake option) every macro
//      expands to `((void)0)` — release benches measure literally the seed
//      code.
//   2. One-time registration: each enabled call site caches its instrument
//      in a function-local static reference, so the steady-state cost is a
//      pointer load plus one relaxed atomic op — no map lookup, no lock.
//
// Names must be string literals (static storage); see docs/OBSERVABILITY.md
// for the catalogue of names used across the library.
#pragma once

#include "obs/events.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#ifndef EVOFORECAST_OBS_ENABLED
#define EVOFORECAST_OBS_ENABLED 1
#endif

#define EF_OBS_CONCAT_INNER(a, b) a##b
#define EF_OBS_CONCAT(a, b) EF_OBS_CONCAT_INNER(a, b)

#if EVOFORECAST_OBS_ENABLED

/// RAII span covering the rest of the enclosing scope.
#define EVOFORECAST_TRACE(name) \
  const ::ef::obs::ScopedTimer EF_OBS_CONCAT(ef_obs_span_, __LINE__) { name }

/// counter(name) += delta.
#define EVOFORECAST_COUNT(name, delta)                                              \
  do {                                                                              \
    static ::ef::obs::Counter& ef_obs_c = ::ef::obs::Registry::global().counter(name); \
    ef_obs_c.add(static_cast<std::uint64_t>(delta));                                \
  } while (0)

/// gauge(name) = value.
#define EVOFORECAST_GAUGE_SET(name, value)                                        \
  do {                                                                            \
    static ::ef::obs::Gauge& ef_obs_g = ::ef::obs::Registry::global().gauge(name); \
    ef_obs_g.set(static_cast<double>(value));                                     \
  } while (0)

/// histogram(name, default bounds) <- value.
#define EVOFORECAST_HISTOGRAM(name, value)                            \
  do {                                                                \
    static ::ef::obs::Histogram& ef_obs_h =                           \
        ::ef::obs::Registry::global().histogram(name);                \
    ef_obs_h.observe(static_cast<double>(value));                     \
  } while (0)

/// Structured event into the global flight recorder. Fields are EventField
/// initialisers: EVOFORECAST_EVENT("serve.model.reload", {"name", name},
/// {"version", v}) — or none at all. Events are rare (per generation / per
/// reload / per slow request), so this takes the EventLog mutex.
#define EVOFORECAST_EVENT(kind, ...) \
  ::ef::obs::EventLog::global().emit(kind, std::vector<::ef::obs::EventField>{__VA_ARGS__})

#else  // EVOFORECAST_OBS_ENABLED == 0: instrumentation compiles out.

#define EVOFORECAST_TRACE(name) ((void)0)
#define EVOFORECAST_COUNT(name, delta) ((void)0)
#define EVOFORECAST_GAUGE_SET(name, value) ((void)0)
#define EVOFORECAST_HISTOGRAM(name, value) ((void)0)
#define EVOFORECAST_EVENT(kind, ...) ((void)0)

#endif  // EVOFORECAST_OBS_ENABLED
