// metrics.hpp — error measures used by the paper's three evaluation tables.
//
// The rule system *abstains* on windows no rule matches, so every metric has
// a coverage-aware variant that evaluates only the predicted subset — this is
// what the paper's tables report (error over predicted points, plus a
// separate "percentage of prediction" column).
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

namespace ef::series {

/// Root mean squared error over paired spans. Throws std::invalid_argument
/// on size mismatch or empty input. (Table 1's comparison metric.)
[[nodiscard]] double rmse(std::span<const double> actual, std::span<const double> predicted);

/// Mean squared error.
[[nodiscard]] double mse(std::span<const double> actual, std::span<const double> predicted);

/// Mean absolute error.
[[nodiscard]] double mae(std::span<const double> actual, std::span<const double> predicted);

/// Normalised mean squared error: MSE / Var(actual). (Table 2's metric.)
/// Throws std::invalid_argument when actual has zero variance.
[[nodiscard]] double nmse(std::span<const double> actual, std::span<const double> predicted);

/// The Galván-Isasi error of Table 3:  e = 1/(2(N+τ)) Σ_{i=0}^{N} (x_i − x̃_i)².
/// `horizon` is the τ in the normalisation term; N is derived from the spans.
[[nodiscard]] double galvan_error(std::span<const double> actual,
                                  std::span<const double> predicted, std::size_t horizon);

/// Symmetric MAPE in percent: 200/n · Σ |a−p| / (|a|+|p|); pairs with both
/// values zero contribute 0. (Scale-free comparison across datasets.)
[[nodiscard]] double smape(std::span<const double> actual, std::span<const double> predicted);

/// Mean absolute scaled error (Hyndman & Koehler): MAE of the forecast
/// divided by the MAE of the naive one-step forecast *on the training
/// series*. < 1 = better than naive persistence. Throws when the training
/// series is constant (naive MAE = 0) or too short.
[[nodiscard]] double mase(std::span<const double> actual, std::span<const double> predicted,
                          std::span<const double> train_series);

/// The paper §4.1 writes RMSE through an intermediate e = ½(x−x̄)², i.e.
/// RMSE_paper = sqrt(Σ e² / n) = sqrt(Σ ¼(x−x̄)⁴ / n). That formula is almost
/// certainly a typo for plain RMSE (its units are cm², not cm), but we expose
/// it verbatim for completeness; EXPERIMENTS.md discusses the discrepancy.
[[nodiscard]] double rmse_paper_literal(std::span<const double> actual,
                                        std::span<const double> predicted);

/// Forecast sequence where abstentions are nullopt (the rule system's native
/// output shape).
using PartialForecast = std::vector<std::optional<double>>;

/// Error metrics restricted to the covered subset of a partial forecast,
/// together with the coverage percentage the paper tabulates.
struct CoverageReport {
  double coverage_percent = 0.0;  ///< 100 * covered / total
  std::size_t covered = 0;
  std::size_t total = 0;
  double rmse = 0.0;  ///< over covered points; 0 when nothing covered
  double mse = 0.0;
  double mae = 0.0;
  double nmse = 0.0;  ///< normalised by variance of covered actuals; 0 if degenerate
};

/// Evaluate a partial forecast against actuals (sizes must match).
[[nodiscard]] CoverageReport evaluate_partial(std::span<const double> actual,
                                              const PartialForecast& predicted);

/// Galván-Isasi error restricted to the covered subset of a partial
/// forecast (Table 3's metric under abstention). 0 when nothing is covered.
[[nodiscard]] double galvan_error_partial(std::span<const double> actual,
                                          const PartialForecast& predicted,
                                          std::size_t horizon);

}  // namespace ef::series
