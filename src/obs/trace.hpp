// obs/trace.hpp — scoped wall-clock spans aggregated per span name.
//
// A ScopedTimer measures one dynamic extent (a match scan, a regression fit,
// one training execution) and, on destruction, folds the duration into the
// process-wide TraceRegistry keyed by span name. Spans nest through a
// thread-local stack: every span knows its parent, so the registry can
// account *self* time (total minus time spent in child spans) — the number
// that actually says where a training run's wall clock went.
//
// Instrumentation sites should use the EVOFORECAST_TRACE macro
// (obs/macros.hpp), which compiles to nothing under -DEVOFORECAST_OBS=OFF.
// ScopedTimer itself stays functional in that mode — elapsed_seconds() keeps
// working for callers (the benches) that want a plain stopwatch on the same
// clock path — but nothing is recorded into the registry.
//
// Recursion note: recursive spans of the same name aggregate all their
// frames, so a self-recursive span's total can exceed wall time; self time
// remains meaningful.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/running_stats.hpp"

namespace ef::obs {

/// Aggregated view of one span name.
struct SpanStats {
  std::uint64_t calls = 0;
  double total_ns = 0.0;  ///< sum of span durations
  double self_ns = 0.0;   ///< total minus time inside child spans
  util::RunningStats duration_ns;  ///< per-call duration distribution (Welford)
};

struct TraceSnapshot {
  struct Span {
    std::string name;
    SpanStats stats;
  };
  std::vector<Span> spans;  ///< sorted by name
};

/// Process-wide span aggregation. record() takes a mutex; span *exits* are
/// orders of magnitude rarer than counter increments (one per evaluation,
/// not one per window), so this stays invisible next to the measured work.
class TraceRegistry {
 public:
  [[nodiscard]] static TraceRegistry& global();

  TraceRegistry() = default;
  TraceRegistry(const TraceRegistry&) = delete;
  TraceRegistry& operator=(const TraceRegistry&) = delete;

  void record(std::string_view name, double total_ns, double self_ns);

  [[nodiscard]] TraceSnapshot snapshot() const;

  /// Drop all aggregated spans (active ScopedTimers are unaffected; they
  /// re-register their name on exit).
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, SpanStats, std::less<>> spans_;
};

/// RAII span. `name` must outlive the timer — pass a string literal.
class ScopedTimer {
 public:
  explicit ScopedTimer(const char* name) noexcept;
  ~ScopedTimer();

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Seconds since construction (same steady clock the spans record).
  [[nodiscard]] double elapsed_seconds() const noexcept {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  const char* name_;
  std::chrono::steady_clock::time_point start_;
  double child_ns_ = 0.0;      ///< filled in by exiting children
  ScopedTimer* parent_ = nullptr;  ///< enclosing span on this thread
};

/// Zero both global stores (metrics registry + trace registry). Tests and
/// long-lived servers use this between runs; cached instrument references
/// stay valid.
void reset_all();

}  // namespace ef::obs
