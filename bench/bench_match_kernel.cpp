// bench_match_kernel — match-backend throughput on Mackey-Glass (D=4, τ=6).
//
// Trains a real rule system on a prefix of a long Mackey-Glass series
// (deterministic seed → identical rule sets across runs), then measures
// single-threaded match throughput of every MatchBackend sweeping the full
// rule set over the full dataset. Before timing, every backend's match set
// is checked index-for-index against the scalar serial reference: the
// backends' contract is *bit-identical* match sets, so any divergence is a
// correctness bug and the bench exits non-zero — speed numbers for wrong
// answers are worthless.
//
// Output: a human-readable table plus (via --json) a machine-readable
// report with per-backend windows/s and speedups vs scalar. CI runs
// --quick and diffs against the committed baseline BENCH_match.json with
// scripts/check_match_bench.py.
//
// Flags:
//   --quick         scaled-down series/training/reps (CI smoke)
//   --series N      series length                (default 120000 / 20000 quick)
//   --generations N per-execution budget         (default 3000 / 300 quick)
//   --executions N  training executions unioned  (default 3 / 1 quick)
//   --reps N        timed sweeps per backend     (default 5 / 7 quick)
//   --seed S        training seed                (default 7)
//   --json PATH     write the JSON report
//   --trace-out PATH  write the training + sweep timeline as Chrome
//                     trace-event JSON (arms tracing at rate 1.0)
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "core/match_backend.hpp"
#include "obs/build_info.hpp"
#include "obs/timeline.hpp"
#include "obs/timeline_export.hpp"
#include "core/match_engine.hpp"
#include "core/rule_system.hpp"
#include "series/mackey_glass.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

using ef::core::MatchBackend;
using ef::core::MatchEngine;
using ef::core::Rule;
using ef::core::WindowDataset;

struct BackendResult {
  MatchBackend backend = MatchBackend::kScalar;
  double seconds = 0.0;  ///< best (minimum) single-sweep wall time
  double windows_per_sec = 0.0;
  std::size_t matched = 0;  ///< total matches over one sweep (sanity anchor)
};

double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick");
  const auto series_len =
      static_cast<std::size_t>(cli.get_int("series", quick ? 20000 : 120000));
  const auto generations =
      static_cast<std::size_t>(cli.get_int("generations", quick ? 300 : 3000));
  const auto executions =
      static_cast<std::size_t>(cli.get_int("executions", quick ? 1 : 3));
  // Quick sweeps are ~1 ms, so extra reps are free and the min needs them
  // to be repeatable on a noisy CI box.
  const auto reps = static_cast<std::size_t>(cli.get_int("reps", quick ? 7 : 5));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const std::string json_path = cli.get_string("json", "");
  const std::string trace_out = cli.get_string("trace-out", "");
  if (!trace_out.empty() && !ef::obs::Timeline::enabled()) {
    ef::obs::Timeline::set_sample_rate(1.0);
  }
  // Root trace covering training (generation spans land under it via
  // ef::core::train) and the timed backend sweeps below.
  const ef::obs::TraceScope bench_trace("bench.match_kernel");

  // The paper's Mackey-Glass embedding: D = 4 lags, horizon τ = 6.
  const auto series = ef::series::generate_mackey_glass(series_len);
  const WindowDataset data(series, 4, 6);
  const WindowDataset train_ds(series.slice(0, std::min<std::size_t>(3000, series_len)),
                               4, 6);

  ef::core::RuleSystemConfig cfg;
  cfg.evolution.population_size = 50;
  cfg.evolution.generations = generations;
  cfg.evolution.emax = 0.06;  // raw MG amplitude ≈ [0.2, 1.4]
  cfg.evolution.seed = seed;
  cfg.max_executions = executions;
  cfg.coverage_target_percent = 100.0;  // union every execution
  const auto trained = ef::core::train(train_ds, {.config = cfg});
  const std::vector<Rule>& rules = trained.system.rules();
  if (rules.empty()) {
    std::fprintf(stderr, "bench_match_kernel: training produced no rules\n");
    return 2;
  }

  std::printf("bench_match_kernel: %zu windows x %zu rules, %zu reps%s\n",
              data.count(), rules.size(), reps, quick ? " (quick)" : "");

  // Single-worker pool: m > the parallel grain, so a multi-worker pool would
  // measure chunking, not the kernels.
  ef::util::ThreadPool one(1);

  // Correctness gate first: every backend vs the scalar serial reference.
  const MatchEngine reference(data, &one);
  bool identical = true;
  constexpr MatchBackend kBackends[] = {MatchBackend::kScalar, MatchBackend::kSoa,
                                        MatchBackend::kSoaPrefilter};
  for (const MatchBackend backend : kBackends) {
    const MatchEngine engine(data, &one, backend);
    for (const Rule& rule : rules) {
      if (engine.match_indices(rule) != reference.match_indices_serial(rule)) {
        std::fprintf(stderr, "MATCH SET MISMATCH: backend=%s\n",
                     ef::core::to_string(backend));
        identical = false;
        break;
      }
    }
  }

  std::vector<BackendResult> results;
  for (const MatchBackend backend : kBackends) {
    ef::obs::SpanScope sweep_span("bench.sweep");
    sweep_span.set_arg("backend", static_cast<double>(backend));
    const MatchEngine engine(data, &one, backend);
    BackendResult r;
    r.backend = backend;
    for (const Rule& rule : rules) r.matched += engine.match_indices(rule).size();  // warm
    // Per-rep minimum: the machine is shared, so total time over reps mixes
    // in scheduler noise; the fastest sweep is the most repeatable estimate
    // of what the kernel actually costs.
    r.seconds = 0.0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const double t0 = now_seconds();
      for (const Rule& rule : rules) {
        const auto matches = engine.match_indices(rule);
        (void)matches;
      }
      const double dt = now_seconds() - t0;
      if (rep == 0 || dt < r.seconds) r.seconds = dt;
    }
    const double scanned =
        static_cast<double>(rules.size()) * static_cast<double>(data.count());
    r.windows_per_sec = r.seconds > 0.0 ? scanned / r.seconds : 0.0;
    results.push_back(r);
    std::printf("  %-14s %8.3f s/sweep   %12.3e windows/s   (%zu matches/sweep)\n",
                ef::core::to_string(backend), r.seconds, r.windows_per_sec, r.matched);
  }

  const double scalar_wps = results[0].windows_per_sec;
  std::printf("  speedup: soa %.2fx, soa_prefilter %.2fx, match sets %s\n",
              results[1].windows_per_sec / scalar_wps,
              results[2].windows_per_sec / scalar_wps,
              identical ? "identical" : "MISMATCH");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "bench_match_kernel: cannot write %s\n", json_path.c_str());
      return 2;
    }
    std::fprintf(f, "{\n");
    // Provenance stamp: which sources/toolchain produced these numbers.
    // check_match_bench.py ignores it; humans diffing baselines don't.
    std::fprintf(f, "  \"build\": %s,\n", ef::obs::build_info_json().c_str());
    std::fprintf(f,
                 "  \"config\": {\"series\": %zu, \"windows\": %zu, \"rules\": %zu, "
                 "\"reps\": %zu, \"quick\": %s, \"window\": 4, \"horizon\": 6},\n",
                 series_len, data.count(), rules.size(), reps,
                 quick ? "true" : "false");
    std::fprintf(f, "  \"backends\": {\n");
    for (std::size_t i = 0; i < results.size(); ++i) {
      std::fprintf(f,
                   "    \"%s\": {\"seconds\": %.6f, \"windows_per_sec\": %.1f, "
                   "\"matches_per_sweep\": %zu}%s\n",
                   ef::core::to_string(results[i].backend), results[i].seconds,
                   results[i].windows_per_sec, results[i].matched,
                   i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"speedup\": {\"soa\": %.3f, \"soa_prefilter\": %.3f},\n",
                 results[1].windows_per_sec / scalar_wps,
                 results[2].windows_per_sec / scalar_wps);
    std::fprintf(f, "  \"match_sets_identical\": %s\n", identical ? "true" : "false");
    std::fprintf(f, "}\n");
    std::fclose(f);
  }

  if (!trace_out.empty()) {
    if (ef::obs::write_chrome_trace_file(trace_out)) {
      std::printf("  trace: wrote %s\n", trace_out.c_str());
    } else {
      std::fprintf(stderr, "bench_match_kernel: cannot write %s\n", trace_out.c_str());
      return 2;
    }
  }

  return identical ? 0 : 1;
}
