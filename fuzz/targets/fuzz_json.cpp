// libFuzzer target: serve/json parse → dump → parse round trip.
#include "harness/harness.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size) {
  return ef::fuzz::json_roundtrip(data, size);
}
