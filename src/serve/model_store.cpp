#include "serve/model_store.hpp"

#include <algorithm>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "obs/macros.hpp"

namespace ef::serve {
namespace {

/// Value range spanned by the rule set's non-wildcard genes — the bucket
/// extent of the query index. nullopt when no gene bounds exist (all
/// wildcard or empty system).
std::optional<std::pair<double, double>> gene_value_range(const core::RuleSystem& system) {
  bool seen = false;
  double lo = 0.0;
  double hi = 0.0;
  for (const core::Rule& rule : system.rules()) {
    for (const core::Interval& gene : rule.genes()) {
      if (gene.is_wildcard()) continue;
      if (!seen) {
        lo = gene.lo();
        hi = gene.hi();
        seen = true;
      } else {
        lo = std::min(lo, gene.lo());
        hi = std::max(hi, gene.hi());
      }
    }
  }
  if (!seen || !(hi > lo)) return std::nullopt;
  return std::make_pair(lo, hi);
}

core::RuleSystem load_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("ModelStore: cannot open '" + path + "'");
  return core::RuleSystem::load(in);
}

std::filesystem::file_time_type mtime_of(const std::string& path) {
  std::error_code ec;
  const auto t = std::filesystem::last_write_time(path, ec);
  return ec ? std::filesystem::file_time_type{} : t;
}

}  // namespace

std::shared_ptr<const LoadedModel> LoadedModel::make(core::RuleSystem system,
                                                     std::string name,
                                                     std::uint64_t version,
                                                     std::uint64_t tag) {
  auto model = std::shared_ptr<LoadedModel>(new LoadedModel());
  model->system_ = std::move(system);
  model->name_ = std::move(name);
  model->version_ = version;
  model->tag_ = tag;
  model->window_ = model->system_.empty() ? 0 : model->system_.rules().front().window();
  // The index holds a reference to system_, so it is built only once the
  // system has reached its final address inside the shared_ptr.
  if (const auto range = gene_value_range(model->system_)) {
    model->index_.emplace(model->system_, range->first, range->second);
  }
  return model;
}

core::Prediction LoadedModel::forecast(std::span<const double> window,
                                       core::Aggregation how) const {
  if (index_) return index_->forecast(window, how);
  return system_.forecast(window, how);
}

ModelStore::~ModelStore() { stop_polling(); }

void ModelStore::add_file(const std::string& name, const std::string& path) {
  core::RuleSystem system = load_file(path);
  const auto mtime = mtime_of(path);
  const std::lock_guard lock(mutex_);
  auto& entry = entries_[name];
  const std::uint64_t version = entry.model ? entry.model->version() + 1 : 1;
  entry.model = LoadedModel::make(std::move(system), name, version,
                                  next_tag_.fetch_add(1, std::memory_order_relaxed));
  entry.path = path;
  entry.mtime = mtime;
  EVOFORECAST_COUNT("serve.model.loads", 1);
  EVOFORECAST_EVENT("serve.model.load", {"name", name}, {"version", version},
                    {"path", path});
}

void ModelStore::add_system(const std::string& name, core::RuleSystem system) {
  const std::lock_guard lock(mutex_);
  auto& entry = entries_[name];
  const std::uint64_t version = entry.model ? entry.model->version() + 1 : 1;
  entry.model = LoadedModel::make(std::move(system), name, version,
                                  next_tag_.fetch_add(1, std::memory_order_relaxed));
  entry.path.clear();
  EVOFORECAST_COUNT("serve.model.loads", 1);
  EVOFORECAST_EVENT("serve.model.load", {"name", name}, {"version", version});
}

void ModelStore::attach_container(const std::string& path) {
  auto state = std::make_shared<ContainerState>();
  state->reader = fleet::FleetReader::open(path);  // throws on malformed file
  state->path = path;
  state->mtime = mtime_of(path);
  const std::size_t models = state->reader.size();
  std::uint64_t generation = 0;
  {
    const std::lock_guard lock(mutex_);
    state->generation = container_ ? container_->generation + 1 : 1;
    generation = state->generation;
    container_ = std::move(state);
    container_failed_mtime_ = {};
  }
  EVOFORECAST_COUNT("serve.model.container_loads", 1);
  EVOFORECAST_GAUGE_SET("serve.model.container_series", static_cast<double>(models));
  EVOFORECAST_EVENT("serve.model.container_load", {"path", path}, {"models", models},
                    {"generation", generation});
#if !EVOFORECAST_OBS_ENABLED
  (void)models;
  (void)generation;
#endif
}

bool ModelStore::has_container() const {
  const std::lock_guard lock(mutex_);
  return container_ != nullptr;
}

std::optional<ModelStore::ContainerInfo> ModelStore::container_info() const {
  std::shared_ptr<ContainerState> state;
  {
    const std::lock_guard lock(mutex_);
    state = container_;
  }
  if (!state) return std::nullopt;
  ContainerInfo info;
  info.path = state->path;
  info.models = state->reader.size();
  info.bytes = state->reader.bytes();
  info.generation = state->generation;
  {
    const std::lock_guard lock(state->cache_mutex);
    info.materialized = state->cache.size();
  }
  return info;
}

std::vector<std::string> ModelStore::container_ids(std::size_t limit) const {
  std::shared_ptr<ContainerState> state;
  {
    const std::lock_guard lock(mutex_);
    state = container_;
  }
  std::vector<std::string> out;
  if (!state) return out;
  const std::size_t n =
      limit == 0 ? state->reader.size() : std::min(limit, state->reader.size());
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.emplace_back(state->reader.id_at(i));
  return out;
}

std::shared_ptr<const LoadedModel> ModelStore::get(std::string_view name) const {
  std::shared_ptr<ContainerState> container;
  {
    const std::lock_guard lock(mutex_);
    const auto it = entries_.find(name);
    if (it != entries_.end()) return it->second.model;
    container = container_;
  }
  if (!container) return nullptr;
  {
    const std::lock_guard lock(container->cache_mutex);
    const auto it = container->cache.find(name);
    if (it != container->cache.end()) return it->second;
  }
  const auto slot = container->reader.find(name);
  if (!slot) return nullptr;
  // Materialise outside every lock — first touch of a series deep-copies its
  // rules out of the mapping; concurrent first touches race benignly (the
  // cache keeps whichever inserted first, the loser's copy is dropped).
  core::RuleSystem system;
  try {
    system = container->reader.materialize_at(*slot);
  } catch (const std::exception& e) {
    EVOFORECAST_COUNT("serve.model.container_materialize_failures", 1);
    EVOFORECAST_EVENT("serve.model.container_materialize_failed",
                      {"series", std::string(name)}, {"error", e.what()});
    return nullptr;
  }
  auto model =
      LoadedModel::make(std::move(system), std::string(name), container->generation,
                        next_tag_.fetch_add(1, std::memory_order_relaxed));
  const std::lock_guard lock(container->cache_mutex);
  const auto [it, inserted] = container->cache.emplace(std::string(name), std::move(model));
  if (inserted) EVOFORECAST_COUNT("serve.model.container_materializations", 1);
  return it->second;
}

std::vector<std::string> ModelStore::names() const {
  const std::lock_guard lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(name);
  return out;
}

std::size_t ModelStore::size() const {
  const std::lock_guard lock(mutex_);
  return entries_.size();
}

std::size_t ModelStore::poll_now() {
  // Snapshot the file-backed entries, then parse outside the map mutex so a
  // slow reload never blocks get() on the serving path.
  struct Pending {
    std::string name;
    std::string path;
    std::filesystem::file_time_type old_mtime;
  };
  std::vector<Pending> pending;
  {
    const std::lock_guard lock(mutex_);
    for (const auto& [name, entry] : entries_) {
      if (!entry.path.empty()) pending.push_back({name, entry.path, entry.mtime});
    }
  }

  std::size_t reloaded = 0;
  for (const Pending& p : pending) {
    const auto now_mtime = mtime_of(p.path);
    if (now_mtime == p.old_mtime) continue;
    try {
      core::RuleSystem system = load_file(p.path);
      const std::lock_guard lock(mutex_);
      const auto it = entries_.find(p.name);
      if (it == entries_.end() || it->second.path != p.path) continue;  // removed/re-added
      const std::uint64_t version = it->second.model ? it->second.model->version() + 1 : 1;
      it->second.model = LoadedModel::make(std::move(system), p.name, version, next_tag_++);
      it->second.mtime = now_mtime;
      ++reloaded;
      EVOFORECAST_COUNT("serve.model.reloads", 1);
      EVOFORECAST_EVENT("serve.model.reload", {"name", p.name}, {"version", version},
                        {"path", p.path});
    } catch (const std::exception& reload_error) {
      // Torn or corrupt file: keep serving the previous version; the next
      // mtime change retries.
      EVOFORECAST_COUNT("serve.model.reload_failures", 1);
      EVOFORECAST_EVENT("serve.model.reload_failed", {"name", p.name}, {"path", p.path},
                        {"error", reload_error.what()});
      const std::lock_guard lock(mutex_);
      const auto it = entries_.find(p.name);
      if (it != entries_.end() && it->second.path == p.path) it->second.mtime = now_mtime;
    }
  }

  // Container poll: one stat covers the entire fleet. A changed mtime means
  // a repack was renamed into place; open the new file, and only on a fully
  // validated read swap the snapshot (generation + 1, cache starts cold).
  std::shared_ptr<ContainerState> current;
  std::filesystem::file_time_type failed_mtime;
  {
    const std::lock_guard lock(mutex_);
    current = container_;
    failed_mtime = container_failed_mtime_;
  }
  if (current) {
    const auto now_mtime = mtime_of(current->path);
    if (now_mtime != current->mtime && now_mtime != failed_mtime) {
      try {
        auto fresh = std::make_shared<ContainerState>();
        fresh->reader = fleet::FleetReader::open(current->path);
        fresh->path = current->path;
        fresh->mtime = now_mtime;
        const std::size_t models = fresh->reader.size();
        std::uint64_t generation = 0;
        {
          const std::lock_guard lock(mutex_);
          if (container_ == current) {  // lost to a concurrent attach? keep that one
            fresh->generation = current->generation + 1;
            generation = fresh->generation;
            container_ = std::move(fresh);
            container_failed_mtime_ = {};
            ++reloaded;
          }
        }
        if (generation != 0) {
          EVOFORECAST_COUNT("serve.model.container_reloads", 1);
          EVOFORECAST_GAUGE_SET("serve.model.container_series",
                                static_cast<double>(models));
          EVOFORECAST_EVENT("serve.model.container_reload", {"path", current->path},
                            {"models", models}, {"generation", generation});
        }
#if !EVOFORECAST_OBS_ENABLED
        (void)models;
#endif
      } catch (const std::exception& reload_error) {
        // Corrupt repack: the old snapshot keeps serving every series; the
        // recorded failed mtime stops re-validating the same bad file every
        // tick until the publisher writes again.
        EVOFORECAST_COUNT("serve.model.reload_failures", 1);
        EVOFORECAST_EVENT("serve.model.container_reload_failed",
                          {"path", current->path}, {"error", reload_error.what()});
        const std::lock_guard lock(mutex_);
        if (container_ == current) container_failed_mtime_ = now_mtime;
      }
    }
  }
  return reloaded;
}

void ModelStore::start_polling(std::chrono::milliseconds interval) {
  stop_polling();
  {
    const std::lock_guard lock(poll_mutex_);
    poll_stop_ = false;
  }
  poller_ = std::thread([this, interval] {
    std::unique_lock lock(poll_mutex_);
    while (!poll_cv_.wait_for(lock, interval, [this] { return poll_stop_; })) {
      lock.unlock();
      poll_now();
      lock.lock();
    }
  });
}

void ModelStore::stop_polling() {
  {
    const std::lock_guard lock(poll_mutex_);
    poll_stop_ = true;
  }
  poll_cv_.notify_all();
  if (poller_.joinable()) poller_.join();
}

}  // namespace ef::serve
