#include "core/dataset.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace ef::core {

WindowDataset::WindowDataset(const series::TimeSeries& s, std::size_t window,
                             std::size_t horizon, std::size_t stride)
    : values_(s.values().begin(), s.values().end()),
      window_(window),
      horizon_(horizon),
      stride_(stride) {
  if (window == 0) throw std::invalid_argument("WindowDataset: window must be > 0");
  if (stride == 0) throw std::invalid_argument("WindowDataset: stride must be > 0");
  const std::size_t reach = (window - 1) * stride + horizon;  // last index offset
  if (s.size() < reach + 1) {
    throw std::invalid_argument("WindowDataset: series of size " + std::to_string(s.size()) +
                                " too short for window " + std::to_string(window) +
                                ", stride " + std::to_string(stride) + " and horizon " +
                                std::to_string(horizon));
  }
  count_ = s.size() - reach;

  patterns_.resize(count_ * window_);
  targets_.resize(count_);
  for (std::size_t i = 0; i < count_; ++i) {
    for (std::size_t j = 0; j < window_; ++j) {
      patterns_[i * window_ + j] = values_[i + j * stride_];
    }
    targets_[i] = values_[i + reach];
  }

  value_min_ = *std::min_element(values_.begin(), values_.end());
  value_max_ = *std::max_element(values_.begin(), values_.end());
  target_min_ = *std::min_element(targets_.begin(), targets_.end());
  target_max_ = *std::max_element(targets_.begin(), targets_.end());
}

}  // namespace ef::core
