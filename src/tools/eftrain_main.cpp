// eftrain — fleet-scale bulk trainer, `.efr` v2 container packer, and
// corpus runner in one operator-facing binary.
//
// Modes (exactly one per invocation):
//   --by-series DATA     train one rule system per series. DATA is either a
//                        long-format CSV (`series_id,timestamp,value`) or a
//                        dataset directory (one single-column CSV per
//                        series, id = file stem).
//   --synthetic N        train over a generated N-series fleet (sine / AR /
//                        regime-switch mix, deterministic in --seed).
//   --pack DIR           no training: pack every v1 `*.efr` under DIR into
//                        a v2 container (id = file stem). Requires --out.
//   --list FILE          print the index of a v2 container.
//   --extract ID         write one series of --container FILE back out as
//                        v1 text (--out PATH, default stdout) — the
//                        bit-identity bridge between the two formats.
//
// Training modes accept --out fleet.efr2 (pack the trained fleet),
// --evaluate (rolling-origin corpus scoring: per-series + pooled errors and
// fleet-wide percentage of prediction), and --bench-json PATH
// (BENCH_fleet.json: trained-models/sec, container bytes/model, cold-load
// time, lookup p99 — the numbers scripts/check_fleet_bench.py gates on).
//
// Embedding/evolution flags mirror the library defaults:
//   --window D --horizon T --stride S --population P --generations G
//   --emax E --coverage-target PCT --max-executions K --seed S
// Fleet shaping: --limit K (first K series), --length L (synthetic),
// --threads N (private pool; default = shared pool), --holdout FRAC /
// --min-holdout K (corpus split). Observability: --report, --metrics-json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <exception>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "core/config.hpp"
#include "core/rule_system.hpp"
#include "fleet/bulk_trainer.hpp"
#include "fleet/container.hpp"
#include "fleet/corpus.hpp"
#include "fleet/long_csv.hpp"
#include "obs/build_info.hpp"
#include "obs/export.hpp"
#include "series/synthetic.hpp"
#include "util/cli.hpp"
#include "util/thread_pool.hpp"

namespace {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Peak resident set size in kB from /proc/self/status (0 when unavailable).
std::size_t peak_rss_kb() {
  std::ifstream in("/proc/self/status");
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(std::strtoull(line.c_str() + 6, nullptr, 10));
    }
  }
  return 0;
}

/// Deterministic synthetic fleet: a sine / AR(2) / regime-switch rotation
/// with per-series parameter drift, so the fleet exercises heterogeneous
/// dynamics rather than 1000 copies of one signal. Ids are zero-padded so
/// lexicographic (container index) order equals generation order.
std::vector<ef::fleet::SeriesRecord> synthetic_fleet(std::size_t count, std::size_t length,
                                                     std::uint64_t seed) {
  std::vector<ef::fleet::SeriesRecord> fleet;
  fleet.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    char id[32];
    std::snprintf(id, sizeof(id), "synthetic-%06zu", i);
    const std::uint64_t series_seed = seed + 0x51ed270b * static_cast<std::uint64_t>(i) + 1;
    ef::series::TimeSeries series;
    switch (i % 3) {
      case 0: {
        ef::series::SineParams p;
        p.amplitude = 0.6 + 0.05 * static_cast<double>(i % 9);
        p.period = 8.0 + static_cast<double>(i % 37);
        p.phase = 0.1 * static_cast<double>(i % 63);
        p.noise_sd = 0.02;
        p.seed = series_seed;
        series = ef::series::generate_sine(length, p);
        break;
      }
      case 1: {
        ef::series::ArParams p;
        p.phi = {0.55 + 0.06 * static_cast<double>(i % 5),
                 -0.1 - 0.04 * static_cast<double>(i % 4)};
        p.noise_sd = 0.3;
        p.seed = series_seed;
        series = ef::series::generate_ar(length, p);
        break;
      }
      default: {
        ef::series::RegimeSwitchParams p;
        p.mean_dwell = 40.0 + static_cast<double>(i % 30);
        p.regimes = {{1.0, 16.0 + static_cast<double>(i % 11)},
                     {2.0 + 0.1 * static_cast<double>(i % 7), 7.0}};
        p.noise_sd = 0.05;
        p.seed = series_seed;
        series = ef::series::generate_regime_switch(length, p);
        break;
      }
    }
    fleet.push_back({id, std::move(series)});
  }
  return fleet;
}

/// Quantile of a sorted sample vector (nearest-rank).
double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct ContainerStats {
  std::size_t models = 0;
  std::size_t bytes = 0;
  double bytes_per_model = 0.0;
  double cold_load_us = 0.0;    ///< best-of-3 open()+validate of the file
  double lookup_p50_ns = 0.0;   ///< find() over the mapped index
  double lookup_p99_ns = 0.0;
  double materialize_p99_us = 0.0;  ///< deep-copy one model to a RuleSystem
};

/// Measure the serving-side numbers on a freshly written container.
ContainerStats measure_container(const std::string& path) {
  ContainerStats stats;

  double best = 1e18;
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    const auto reader = ef::fleet::FleetReader::open(path);
    best = std::min(best, seconds_since(t0));
    if (rep == 0) {
      stats.models = reader.size();
      stats.bytes = reader.bytes();
    }
  }
  stats.cold_load_us = best * 1e6;
  if (stats.models > 0) {
    stats.bytes_per_model =
        static_cast<double>(stats.bytes) / static_cast<double>(stats.models);
  }

  const auto reader = ef::fleet::FleetReader::open(path);
  if (reader.empty()) return stats;

  // Lookup latency over a deterministic shuffle of resident ids (xorshift
  // walk, no std::random so runs are reproducible bit-for-bit).
  const std::vector<std::string> ids = reader.ids();
  const std::size_t samples = std::min<std::size_t>(20000, ids.size() * 50);
  std::vector<double> lookup_ns;
  lookup_ns.reserve(samples);
  std::uint64_t x = 0x9e3779b97f4a7c15ull;
  for (std::size_t i = 0; i < samples; ++i) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    const std::string& id = ids[x % ids.size()];
    const auto t0 = Clock::now();
    const auto slot = reader.find(id);
    lookup_ns.push_back(seconds_since(t0) * 1e9);
    if (!slot) std::abort();  // resident id must always resolve
  }
  std::sort(lookup_ns.begin(), lookup_ns.end());
  stats.lookup_p50_ns = quantile_sorted(lookup_ns, 0.50);
  stats.lookup_p99_ns = quantile_sorted(lookup_ns, 0.99);

  const std::size_t mat_samples = std::min<std::size_t>(reader.size(), 256);
  std::vector<double> mat_us;
  mat_us.reserve(mat_samples);
  for (std::size_t i = 0; i < mat_samples; ++i) {
    const std::size_t slot = (i * 2654435761u) % reader.size();
    const auto t0 = Clock::now();
    const ef::core::RuleSystem system = reader.materialize_at(slot);
    mat_us.push_back(seconds_since(t0) * 1e6);
    if (system.size() != reader.rule_count_at(slot)) std::abort();
  }
  std::sort(mat_us.begin(), mat_us.end());
  stats.materialize_p99_us = quantile_sorted(mat_us, 0.99);
  return stats;
}

int run_list(const std::string& path) {
  const auto reader = ef::fleet::FleetReader::open(path);
  std::printf("%s: %zu models, %zu bytes\n", path.c_str(), reader.size(), reader.bytes());
  for (std::size_t i = 0; i < reader.size(); ++i) {
    const auto id = reader.id_at(i);
    std::printf("  %-32.*s %6zu rules\n", static_cast<int>(id.size()), id.data(),
                reader.rule_count_at(i));
  }
  return 0;
}

int run_extract(const std::string& container_path, const std::string& id,
                const std::string& out_path) {
  const auto reader = ef::fleet::FleetReader::open(container_path);
  const auto system = reader.materialize(id);
  if (!system) {
    std::fprintf(stderr, "eftrain: series '%s' not found in %s\n", id.c_str(),
                 container_path.c_str());
    return 2;
  }
  if (out_path.empty()) {
    system->save(std::cout);
  } else {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "eftrain: cannot write %s\n", out_path.c_str());
      return 2;
    }
    system->save(out);
  }
  return 0;
}

int run_pack(const std::string& dir, const std::string& out_path) {
  if (out_path.empty()) {
    std::fprintf(stderr, "eftrain: --pack requires --out CONTAINER\n");
    return 2;
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file() && entry.path().extension() == ".efr") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  if (files.empty()) {
    std::fprintf(stderr, "eftrain: no *.efr files under %s\n", dir.c_str());
    return 2;
  }
  ef::fleet::FleetWriter writer;
  for (const fs::path& file : files) {
    std::ifstream in(file);
    if (!in) throw std::runtime_error("cannot open " + file.string());
    writer.add(file.stem().string(), ef::core::RuleSystem::load(in));
  }
  writer.write_file(out_path);
  const auto stats = measure_container(out_path);
  std::printf("packed %zu models (%zu bytes, %.1f bytes/model) -> %s\n", stats.models,
              stats.bytes, stats.bytes_per_model, out_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  try {
    // ---- single-file modes (no training) ------------------------------
    if (cli.has("list")) return run_list(cli.get_string("list", ""));
    if (cli.has("extract")) {
      const std::string container = cli.get_string("container", "");
      if (container.empty()) {
        std::fprintf(stderr, "eftrain: --extract requires --container FILE\n");
        return 2;
      }
      return run_extract(container, cli.get_string("extract", ""),
                         cli.get_string("out", ""));
    }
    if (cli.has("pack")) {
      return run_pack(cli.get_string("pack", ""), cli.get_string("out", ""));
    }

    // ---- training configuration --------------------------------------
    ef::fleet::FleetTrainOptions train_options;
    train_options.window = static_cast<std::size_t>(cli.get_int("window", 6));
    train_options.horizon = static_cast<std::size_t>(cli.get_int("horizon", 1));
    train_options.stride = static_cast<std::size_t>(cli.get_int("stride", 1));
    auto& config = train_options.config;
    config.evolution.population_size =
        static_cast<std::size_t>(cli.get_int("population", 40));
    config.evolution.generations =
        static_cast<std::size_t>(cli.get_int("generations", 800));
    config.evolution.emax = cli.get_double("emax", 0.1);
    config.evolution.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
    config.coverage_target_percent = cli.get_double("coverage-target", 90.0);
    config.max_executions = static_cast<std::size_t>(cli.get_int("max-executions", 2));
    config.validate();

    std::unique_ptr<ef::util::ThreadPool> private_pool;
    const auto threads = static_cast<std::size_t>(cli.get_int("threads", 0));
    if (threads > 0) {
      private_pool = std::make_unique<ef::util::ThreadPool>(threads);
      train_options.pool = private_pool.get();
    }

    // ---- load the fleet -----------------------------------------------
    std::vector<ef::fleet::SeriesRecord> fleet;
    if (cli.has("synthetic")) {
      fleet = synthetic_fleet(static_cast<std::size_t>(cli.get_int("synthetic", 100)),
                              static_cast<std::size_t>(cli.get_int("length", 200)),
                              config.evolution.seed);
    } else if (cli.has("by-series")) {
      const std::string data = cli.get_string("by-series", "");
      fleet = fs::is_directory(data) ? ef::fleet::read_series_directory(data)
                                     : ef::fleet::read_long_csv(data);
    } else {
      std::fprintf(stderr,
                   "usage: eftrain --by-series DATA | --synthetic N | --pack DIR "
                   "| --list FILE | --extract ID --container FILE\n"
                   "  (see docs/FLEET.md for the full flag reference)\n");
      return 2;
    }
    const auto limit = static_cast<std::size_t>(cli.get_int("limit", 0));
    if (limit > 0 && fleet.size() > limit) fleet.resize(limit);
    std::printf("fleet: %zu series\n", fleet.size());

    // ---- train --------------------------------------------------------
    const auto result = ef::fleet::train_fleet(fleet, train_options);
    const double models_per_sec =
        result.wall_seconds > 0.0
            ? static_cast<double>(result.trained) / result.wall_seconds
            : 0.0;
    std::printf("trained %zu/%zu series in %.2fs (%.1f models/s, %zu rules",
                result.trained, fleet.size(), result.wall_seconds, models_per_sec,
                result.total_rules);
    if (result.skipped > 0) std::printf(", %zu skipped", result.skipped);
    std::printf(")\n");
    for (const auto& model : result.models) {
      if (model.skipped) {
        std::fprintf(stderr, "  skipped %s: %s\n", model.id.c_str(),
                     model.skip_reason.c_str());
      }
    }

    // ---- pack ---------------------------------------------------------
    const std::string out_path = cli.get_string("out", "");
    ContainerStats container;
    if (!out_path.empty()) {
      ef::fleet::FleetWriter writer;
      for (const auto& model : result.models) {
        if (!model.skipped) writer.add(model.id, model.system);
      }
      writer.write_file(out_path);
      container = measure_container(out_path);
      std::printf(
          "container: %s (%zu models, %zu bytes, %.1f bytes/model, "
          "cold load %.1f us, lookup p99 %.0f ns)\n",
          out_path.c_str(), container.models, container.bytes,
          container.bytes_per_model, container.cold_load_us, container.lookup_p99_ns);
    }

    // ---- evaluate -----------------------------------------------------
    ef::fleet::CorpusResult corpus;
    const bool evaluated = cli.get_bool("evaluate");
    if (evaluated) {
      ef::fleet::CorpusOptions corpus_options;
      corpus_options.train = train_options;
      corpus_options.holdout_fraction = cli.get_double("holdout", 0.2);
      corpus_options.min_holdout =
          static_cast<std::size_t>(cli.get_int("min-holdout", 4));
      corpus = ef::fleet::evaluate_fleet(fleet, corpus_options);
      std::printf(
          "corpus: %zu evaluated, %zu skipped | pooled rmse %.4f mae %.4f | "
          "%% of prediction %.1f (%zu/%zu points) in %.2fs\n",
          corpus.evaluated, corpus.skipped, corpus.pooled_rmse, corpus.pooled_mae,
          corpus.percentage_of_prediction, corpus.covered_points, corpus.total_points,
          corpus.wall_seconds);
    }

    // ---- bench report -------------------------------------------------
    const std::string bench_path = cli.get_string("bench-json", "");
    if (!bench_path.empty()) {
      std::FILE* f = std::fopen(bench_path.c_str(), "w");
      if (!f) {
        std::fprintf(stderr, "eftrain: cannot write %s\n", bench_path.c_str());
        return 2;
      }
      std::fprintf(f, "{\n");
      std::fprintf(f, "  \"build\": %s,\n", ef::obs::build_info_json().c_str());
      std::fprintf(f,
                   "  \"config\": {\"series\": %zu, \"window\": %zu, \"horizon\": %zu, "
                   "\"stride\": %zu, \"population\": %zu, \"generations\": %zu, "
                   "\"max_executions\": %zu, \"seed\": %llu},\n",
                   fleet.size(), train_options.window, train_options.horizon,
                   train_options.stride, config.evolution.population_size,
                   config.evolution.generations, config.max_executions,
                   static_cast<unsigned long long>(config.evolution.seed));
      std::fprintf(f,
                   "  \"train\": {\"trained\": %zu, \"skipped\": %zu, \"rules\": %zu, "
                   "\"wall_seconds\": %.4f, \"models_per_sec\": %.2f},\n",
                   result.trained, result.skipped, result.total_rules,
                   result.wall_seconds, models_per_sec);
      if (!out_path.empty()) {
        std::fprintf(f,
                     "  \"container\": {\"models\": %zu, \"bytes\": %zu, "
                     "\"bytes_per_model\": %.1f, \"cold_load_us\": %.2f, "
                     "\"lookup_p50_ns\": %.0f, \"lookup_p99_ns\": %.0f, "
                     "\"materialize_p99_us\": %.2f},\n",
                     container.models, container.bytes, container.bytes_per_model,
                     container.cold_load_us, container.lookup_p50_ns,
                     container.lookup_p99_ns, container.materialize_p99_us);
      }
      if (evaluated) {
        std::fprintf(f,
                     "  \"corpus\": {\"evaluated\": %zu, \"skipped\": %zu, "
                     "\"pooled_rmse\": %.6f, \"pooled_mae\": %.6f, "
                     "\"percentage_of_prediction\": %.2f, \"total_points\": %zu, "
                     "\"covered_points\": %zu, \"wall_seconds\": %.4f},\n",
                     corpus.evaluated, corpus.skipped, corpus.pooled_rmse,
                     corpus.pooled_mae, corpus.percentage_of_prediction,
                     corpus.total_points, corpus.covered_points, corpus.wall_seconds);
      }
      std::fprintf(f, "  \"peak_rss_kb\": %zu\n", peak_rss_kb());
      std::fprintf(f, "}\n");
      std::fclose(f);
      std::printf("bench: wrote %s\n", bench_path.c_str());
    }

    if (!cli.get_string("metrics-json", "").empty()) {
      ef::obs::write_json_file(cli.get_string("metrics-json", ""));
    }
    if (cli.get_bool("report")) ef::obs::print_report();
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "eftrain: %s\n", e.what());
    return 2;
  }
}
