// Tests for core/crowding.hpp: the three phenotypic distances, nearest-
// neighbour lookup, and the victim-selection strategies.
#include "core/crowding.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "series/timeseries.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::DistanceMetric;
using ef::core::EvolutionConfig;
using ef::core::Interval;
using ef::core::phenotypic_distance;
using ef::core::ReplacementStrategy;
using ef::core::Rule;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

Rule rule_with_prediction(double p, double fitness = 0.0) {
  Rule r({Interval(0, 10), Interval(0, 10)});
  ef::core::PredictingPart part;
  part.fit.coeffs = {0.0, 0.0, p};
  part.fit.mean_prediction = p;
  part.fitness = fitness;
  r.set_predicting(part);
  return r;
}

WindowDataset tiny_dataset() {
  return WindowDataset(TimeSeries(std::vector<double>{0, 2, 4, 6, 8, 10}), 2, 1);
}

// ---- jaccard ----------------------------------------------------------------

TEST(Jaccard, IdenticalSetsDistanceZero) {
  const std::vector<std::size_t> a{1, 2, 3};
  EXPECT_DOUBLE_EQ(ef::core::jaccard_distance(a, a), 0.0);
}

TEST(Jaccard, DisjointSetsDistanceOne) {
  const std::vector<std::size_t> a{1, 2};
  const std::vector<std::size_t> b{3, 4};
  EXPECT_DOUBLE_EQ(ef::core::jaccard_distance(a, b), 1.0);
}

TEST(Jaccard, PartialOverlap) {
  const std::vector<std::size_t> a{1, 2, 3, 4};
  const std::vector<std::size_t> b{3, 4, 5, 6};
  // |∩| = 2, |∪| = 6 → 1 − 1/3.
  EXPECT_DOUBLE_EQ(ef::core::jaccard_distance(a, b), 1.0 - 2.0 / 6.0);
}

TEST(Jaccard, BothEmptyIsZero) {
  const std::vector<std::size_t> e;
  EXPECT_DOUBLE_EQ(ef::core::jaccard_distance(e, e), 0.0);
}

TEST(Jaccard, OneEmptyIsOne) {
  const std::vector<std::size_t> e;
  const std::vector<std::size_t> a{1};
  EXPECT_DOUBLE_EQ(ef::core::jaccard_distance(e, a), 1.0);
  EXPECT_DOUBLE_EQ(ef::core::jaccard_distance(a, e), 1.0);
}

TEST(Jaccard, SubsetDistance) {
  const std::vector<std::size_t> a{1, 2};
  const std::vector<std::size_t> b{1, 2, 3, 4};
  EXPECT_DOUBLE_EQ(ef::core::jaccard_distance(a, b), 0.5);
}

// ---- prediction distance ----------------------------------------------------

TEST(PredictionDistance, AbsoluteDifference) {
  const auto data = tiny_dataset();
  const Rule a = rule_with_prediction(10.0);
  const Rule b = rule_with_prediction(13.5);
  EXPECT_DOUBLE_EQ(phenotypic_distance(a, b, DistanceMetric::kPrediction, data), 3.5);
  EXPECT_DOUBLE_EQ(phenotypic_distance(b, a, DistanceMetric::kPrediction, data), 3.5);
}

TEST(PredictionDistance, UnevaluatedRuleThrows) {
  const auto data = tiny_dataset();
  const Rule a = rule_with_prediction(1.0);
  const Rule b({Interval(0, 1), Interval(0, 1)});
  EXPECT_THROW((void)phenotypic_distance(a, b, DistanceMetric::kPrediction, data),
               std::logic_error);
}

// ---- condition-overlap distance ----------------------------------------------

TEST(OverlapDistance, IdenticalRulesDistanceZero) {
  const auto data = tiny_dataset();
  const Rule a({Interval(0, 5), Interval(2, 8)});
  EXPECT_DOUBLE_EQ(
      phenotypic_distance(a, a, DistanceMetric::kConditionOverlap, data), 0.0);
}

TEST(OverlapDistance, DisjointBoxesDistanceOne) {
  const auto data = tiny_dataset();
  const Rule a({Interval(0, 2), Interval(0, 2)});
  const Rule b({Interval(5, 9), Interval(5, 9)});
  EXPECT_DOUBLE_EQ(
      phenotypic_distance(a, b, DistanceMetric::kConditionOverlap, data), 1.0);
}

TEST(OverlapDistance, WildcardVsWildcardIsZero) {
  const auto data = tiny_dataset();
  const Rule a({Interval::wildcard(), Interval::wildcard()});
  EXPECT_DOUBLE_EQ(
      phenotypic_distance(a, a, DistanceMetric::kConditionOverlap, data), 0.0);
}

TEST(OverlapDistance, SymmetricAndBounded) {
  const auto data = tiny_dataset();
  ef::util::Rng rng(5);
  for (int trial = 0; trial < 100; ++trial) {
    const auto rand_rule = [&] {
      std::vector<Interval> genes;
      for (int j = 0; j < 2; ++j) {
        double x = rng.uniform(0.0, 10.0);
        double y = rng.uniform(0.0, 10.0);
        if (x > y) std::swap(x, y);
        genes.emplace_back(x, y);
      }
      return Rule(std::move(genes));
    };
    const Rule a = rand_rule();
    const Rule b = rand_rule();
    const double ab = phenotypic_distance(a, b, DistanceMetric::kConditionOverlap, data);
    const double ba = phenotypic_distance(b, a, DistanceMetric::kConditionOverlap, data);
    EXPECT_DOUBLE_EQ(ab, ba);
    EXPECT_GE(ab, 0.0);
    EXPECT_LE(ab, 1.0);
  }
}

// ---- nearest individual -----------------------------------------------------

TEST(Nearest, FindsPredictionNeighbour) {
  const auto data = tiny_dataset();
  std::vector<Rule> population{rule_with_prediction(0.0), rule_with_prediction(5.0),
                               rule_with_prediction(10.0)};
  const Rule offspring = rule_with_prediction(6.2);
  EXPECT_EQ(ef::core::nearest_individual(population, offspring,
                                         DistanceMetric::kPrediction, data),
            1u);
}

TEST(Nearest, TieBreaksToLowestIndex) {
  const auto data = tiny_dataset();
  std::vector<Rule> population{rule_with_prediction(4.0), rule_with_prediction(8.0)};
  const Rule offspring = rule_with_prediction(6.0);  // equidistant
  EXPECT_EQ(ef::core::nearest_individual(population, offspring,
                                         DistanceMetric::kPrediction, data),
            0u);
}

TEST(Nearest, EmptyPopulationThrows) {
  const auto data = tiny_dataset();
  const std::vector<Rule> empty;
  const Rule offspring = rule_with_prediction(1.0);
  EXPECT_THROW((void)ef::core::nearest_individual(empty, offspring,
                                                  DistanceMetric::kPrediction, data),
               std::invalid_argument);
}

TEST(Nearest, JaccardRequiresMatchedSets) {
  const auto data = tiny_dataset();
  std::vector<Rule> population{rule_with_prediction(0.0)};
  const Rule offspring = rule_with_prediction(1.0);
  EXPECT_THROW((void)ef::core::nearest_individual(population, offspring,
                                                  DistanceMetric::kMatchedJaccard, data),
               std::invalid_argument);
}

TEST(Nearest, JaccardFindsSetNeighbour) {
  const auto data = tiny_dataset();
  std::vector<Rule> population{rule_with_prediction(0.0), rule_with_prediction(0.0)};
  const std::vector<std::vector<std::size_t>> matched{{0, 1, 2}, {7, 8, 9}};
  const Rule offspring = rule_with_prediction(0.0);
  const std::vector<std::size_t> offspring_matched{1, 2, 3};
  EXPECT_EQ(ef::core::nearest_individual(population, offspring,
                                         DistanceMetric::kMatchedJaccard, data, matched,
                                         offspring_matched),
            0u);
}

// ---- choose_victim ----------------------------------------------------------

TEST(ChooseVictim, CrowdingPicksNearest) {
  const auto data = tiny_dataset();
  EvolutionConfig cfg;
  cfg.replacement = ReplacementStrategy::kCrowding;
  cfg.distance = DistanceMetric::kPrediction;
  ef::util::Rng rng(6);
  std::vector<Rule> population{rule_with_prediction(0.0, 5.0), rule_with_prediction(9.0, 1.0)};
  const Rule offspring = rule_with_prediction(8.5);
  EXPECT_EQ(ef::core::choose_victim(population, offspring, cfg, data, rng), 1u);
}

TEST(ChooseVictim, ReplaceWorstPicksLowestFitness) {
  const auto data = tiny_dataset();
  EvolutionConfig cfg;
  cfg.replacement = ReplacementStrategy::kReplaceWorst;
  ef::util::Rng rng(7);
  std::vector<Rule> population{rule_with_prediction(0.0, 5.0), rule_with_prediction(1.0, -3.0),
                               rule_with_prediction(2.0, 2.0)};
  const Rule offspring = rule_with_prediction(0.0);
  EXPECT_EQ(ef::core::choose_victim(population, offspring, cfg, data, rng), 1u);
}

TEST(ChooseVictim, RandomStaysInRange) {
  const auto data = tiny_dataset();
  EvolutionConfig cfg;
  cfg.replacement = ReplacementStrategy::kRandom;
  ef::util::Rng rng(8);
  std::vector<Rule> population{rule_with_prediction(0.0), rule_with_prediction(1.0),
                               rule_with_prediction(2.0)};
  const Rule offspring = rule_with_prediction(0.0);
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3000; ++i) {
    ++counts[ef::core::choose_victim(population, offspring, cfg, data, rng)];
  }
  for (const int c : counts) EXPECT_NEAR(c, 1000, 200);
}

}  // namespace
