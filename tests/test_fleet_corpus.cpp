// Tests for fleet/corpus.hpp: rolling-origin fleet evaluation — holdout
// sizing, skip handling, and the pooled aggregate recomposition (covered
// points weight the fleet-level RMSE/MAE; percentage of prediction is the
// fleet-wide abstention complement).
#include "fleet/corpus.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "series/synthetic.hpp"

namespace {

using ef::fleet::CorpusOptions;
using ef::fleet::evaluate_fleet;
using ef::fleet::SeriesRecord;

std::vector<SeriesRecord> test_fleet(std::size_t count, std::size_t length) {
  std::vector<SeriesRecord> fleet;
  for (std::uint64_t i = 0; i < count; ++i) {
    // Id built by append: GCC 12's -Wrestrict false-positives on
    // "literal" + std::string&& chains under -Werror.
    std::string id = "s";
    id += std::to_string(i);
    fleet.push_back({std::move(id),
                     ef::series::generate_sine(
                         length, {1.0, 18.0 + static_cast<double>(i), 0.0, 0.0, 0.05, i + 5})});
  }
  return fleet;
}

CorpusOptions quick_options() {
  CorpusOptions options;
  options.train.window = 4;
  options.train.config.evolution.population_size = 16;
  options.train.config.evolution.generations = 80;
  options.train.config.evolution.emax = 0.25;
  options.train.config.evolution.seed = 3;
  options.train.config.max_executions = 1;
  return options;
}

TEST(FleetCorpus, EvaluatesEverySeriesWithExpectedHoldout) {
  const auto fleet = test_fleet(4, 150);
  const auto options = quick_options();
  const auto result = evaluate_fleet(fleet, options);

  ASSERT_EQ(result.series.size(), fleet.size());
  EXPECT_EQ(result.evaluated, fleet.size());
  EXPECT_EQ(result.skipped, 0u);
  std::size_t total = 0;
  std::size_t covered = 0;
  for (const auto& s : result.series) {
    EXPECT_FALSE(s.skipped) << s.id << ": " << s.skip_reason;
    // holdout = floor(0.2 · 150) = 30 one-step targets, every one scored.
    EXPECT_EQ(s.holdout_points, 30u) << s.id;
    EXPECT_EQ(s.report.total, s.holdout_points);
    EXPECT_GT(s.rules, 0u);
    total += s.report.total;
    covered += s.report.covered;
  }
  EXPECT_EQ(result.total_points, total);
  EXPECT_EQ(result.covered_points, covered);
  EXPECT_NEAR(result.percentage_of_prediction,
              100.0 * static_cast<double>(covered) / static_cast<double>(total), 1e-9);
  EXPECT_GE(result.percentage_of_prediction, 0.0);
  EXPECT_LE(result.percentage_of_prediction, 100.0);
}

TEST(FleetCorpus, PooledErrorsRecomposeFromPerSeriesReports) {
  const auto result = evaluate_fleet(test_fleet(3, 140), quick_options());
  double sum_sq = 0.0;
  double sum_abs = 0.0;
  double covered = 0.0;
  for (const auto& s : result.series) {
    const auto n = static_cast<double>(s.report.covered);
    sum_sq += s.report.rmse * s.report.rmse * n;
    sum_abs += s.report.mae * n;
    covered += n;
  }
  if (covered > 0.0) {
    EXPECT_NEAR(result.pooled_rmse, std::sqrt(sum_sq / covered), 1e-9);
    EXPECT_NEAR(result.pooled_mae, sum_abs / covered, 1e-9);
    EXPECT_GE(result.pooled_rmse, result.pooled_mae);  // RMS ≥ mean absolute
  }
}

TEST(FleetCorpus, ShortSeriesSkippedWithReason) {
  auto fleet = test_fleet(2, 150);
  // 6 samples < embed + 1 + min_holdout = 4 + 1 + 4: must be skipped.
  fleet.push_back({"tiny", ef::series::generate_sine(6, {})});
  const auto result = evaluate_fleet(fleet, quick_options());
  EXPECT_EQ(result.evaluated, 2u);
  EXPECT_EQ(result.skipped, 1u);
  EXPECT_TRUE(result.series.back().skipped);
  EXPECT_EQ(result.series.back().id, "tiny");
  EXPECT_FALSE(result.series.back().skip_reason.empty());
}

TEST(FleetCorpus, MinHoldoutOverridesFraction) {
  auto options = quick_options();
  options.holdout_fraction = 0.01;  // floor(0.01 · 150) = 1 → clamped up to 8
  options.min_holdout = 8;
  const auto result = evaluate_fleet(test_fleet(1, 150), options);
  ASSERT_EQ(result.evaluated, 1u);
  EXPECT_EQ(result.series[0].holdout_points, 8u);
}

TEST(FleetCorpus, DeterministicAcrossRuns) {
  const auto fleet = test_fleet(3, 140);
  const auto options = quick_options();
  const auto a = evaluate_fleet(fleet, options);
  const auto b = evaluate_fleet(fleet, options);
  ASSERT_EQ(a.series.size(), b.series.size());
  EXPECT_EQ(a.pooled_rmse, b.pooled_rmse);
  EXPECT_EQ(a.pooled_mae, b.pooled_mae);
  EXPECT_EQ(a.covered_points, b.covered_points);
}

TEST(FleetCorpus, EmptyFleet) {
  const auto result = evaluate_fleet({}, quick_options());
  EXPECT_EQ(result.evaluated, 0u);
  EXPECT_EQ(result.total_points, 0u);
  EXPECT_EQ(result.percentage_of_prediction, 0.0);
}

}  // namespace
