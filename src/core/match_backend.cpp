#include "core/match_backend.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#if defined(__SSE2__)
#include <emmintrin.h>
#endif

namespace ef::core {

std::optional<MatchBackend> parse_match_backend(std::string_view name) noexcept {
  if (name == "scalar") return MatchBackend::kScalar;
  if (name == "soa") return MatchBackend::kSoa;
  if (name == "soa_prefilter" || name == "soa+prefilter") return MatchBackend::kSoaPrefilter;
  return std::nullopt;
}

MatchBackend resolve_match_backend(MatchBackend configured) {
  // Read and parse the environment once; std::getenv is not guaranteed
  // thread-safe against setenv, and engines are constructed on hot paths.
  static const std::optional<MatchBackend> override_backend = [] {
    const char* value = std::getenv("EVOFORECAST_MATCH_BACKEND");
    if (!value || *value == '\0') return std::optional<MatchBackend>{};
    const auto parsed = parse_match_backend(value);
    if (!parsed) {
      std::fprintf(stderr,
                   "evoforecast: ignoring unknown EVOFORECAST_MATCH_BACKEND='%s' "
                   "(expected scalar | soa | soa_prefilter)\n",
                   value);
    }
    return parsed;
  }();
  return override_backend.value_or(configured);
}

namespace matchkern {

namespace {

/// Branchless block compress: append every i in [begin, end) with
/// lo <= c[i] <= hi to `out`, ascending. The hot loop stores every index
/// into a small stack buffer and advances the write cursor by the predicate
/// — no data-dependent branch, so sparse and dense columns cost the same
/// and the column read streams at bandwidth. The buffer stays L1-resident;
/// the vector grows only in bulk appends between blocks.
inline void compress_column(const double* c, double lo, double hi, std::size_t begin,
                            std::size_t end, std::vector<std::size_t>& out) {
  constexpr std::size_t kBlock = 512;
  std::size_t buf[kBlock];
  std::size_t i = begin;
  while (i < end) {
    const std::size_t stop = std::min(end, i + kBlock);
    std::size_t w = 0;
    for (; i < stop; ++i) {
      buf[w] = i;
      w += static_cast<std::size_t>((c[i] >= lo) & (c[i] <= hi));
    }
    out.insert(out.end(), buf, buf + w);
  }
}

/// Byte-column compress of one block: write every i in [begin, end) with
/// qlo <= qc[i] <= qhi into `cand`, ascending; return how many. `cand` must
/// hold at least end − begin indices. Reads 1/8th the memory of the double
/// column and, with SSE2, tests 16 windows per compare — candidate indices
/// are extracted from the 16-bit movemask, so sparse masks cost almost
/// nothing beyond the streaming compare.
inline std::size_t byte_compress_block(const std::uint8_t* qc, std::uint8_t qlo,
                                       std::uint8_t qhi, std::size_t begin,
                                       std::size_t end, std::size_t* cand) {
  std::size_t w = 0;
  std::size_t i = begin;
#if defined(__SSE2__)
  // Unsigned byte range test without epu8 compares (SSE2 has none):
  // v >= lo  <=>  max(v, lo) == v, and v <= hi  <=>  min(v, hi) == v.
  const __m128i vlo = _mm_set1_epi8(static_cast<char>(qlo));
  const __m128i vhi = _mm_set1_epi8(static_cast<char>(qhi));
  for (; i + 16 <= end; i += 16) {
    const __m128i v = _mm_loadu_si128(reinterpret_cast<const __m128i*>(qc + i));
    const __m128i ge = _mm_cmpeq_epi8(_mm_max_epu8(v, vlo), v);
    const __m128i le = _mm_cmpeq_epi8(_mm_min_epu8(v, vhi), v);
    unsigned mask = static_cast<unsigned>(_mm_movemask_epi8(_mm_and_si128(ge, le)));
    while (mask) {
      cand[w++] = i + static_cast<unsigned>(__builtin_ctz(mask));
      mask &= mask - 1;
    }
  }
#endif
  for (; i < end; ++i) {
    cand[w] = i;
    w += static_cast<std::size_t>((qc[i] >= qlo) & (qc[i] <= qhi));
  }
  return w;
}

/// Relax a double bound through the quantization map. floor() and the
/// multiply are monotone, so clamp(⌊(b − qmin)·qinv⌋) applied to both gene
/// edges brackets every byte a passing value could quantize to.
inline std::uint8_t quantize_bound(double b, double qmin, double qinv) {
  return static_cast<std::uint8_t>(std::clamp(std::floor((b - qmin) * qinv), 0.0, 255.0));
}

}  // namespace

void scalar_match(const double* rows, std::size_t window, std::span<const Interval> genes,
                  std::size_t begin, std::size_t end, std::vector<std::size_t>& out) {
  const std::size_t d = genes.size();
  for (std::size_t i = begin; i < end; ++i) {
    const double* w = rows + i * window;
    bool ok = true;
    for (std::size_t j = 0; j < d; ++j) {
      if (!genes[j].contains(w[j])) {
        ok = false;
        break;
      }
    }
    if (ok) out.push_back(i);
  }
}

void soa_match(const LagMajorView& view, std::span<const Interval> genes, std::size_t begin,
               std::size_t end, std::vector<std::size_t>& out) {
  const std::size_t n = end - begin;
  if (n == 0) return;

  // One pass/fail byte per window; wildcard genes never touch it. The
  // bitwise AND of two comparisons keeps the inner loop branch-free so the
  // compiler can vectorize it.
  std::vector<unsigned char> ok(n, 1);
  for (std::size_t j = 0; j < genes.size(); ++j) {
    if (genes[j].is_wildcard()) continue;
    const double lo = genes[j].lo();
    const double hi = genes[j].hi();
    const double* c = view.col(j) + begin;
    for (std::size_t i = 0; i < n; ++i) {
      ok[i] = static_cast<unsigned char>(ok[i] & ((c[i] >= lo) & (c[i] <= hi)));
    }
  }
  // Collect survivors with the same branchless block compress the prefilter
  // kernel uses.
  constexpr std::size_t kBlock = 512;
  std::size_t buf[kBlock];
  std::size_t i = 0;
  while (i < n) {
    const std::size_t stop = std::min(n, i + kBlock);
    std::size_t w = 0;
    for (; i < stop; ++i) {
      buf[w] = begin + i;
      w += ok[i];
    }
    out.insert(out.end(), buf, buf + w);
  }
}

void soa_prefilter_match(const LagMajorView& view, std::span<const Interval> genes,
                         std::size_t begin, std::size_t end, std::vector<std::size_t>& out,
                         std::size_t* pruned_out) {
  const std::size_t n = end - begin;
  if (n == 0) return;

  // Non-wildcard genes ordered narrowest interval first: interval width is
  // proportional to expected pass rate, so the first column pass eliminates
  // as many windows as a single gene can.
  std::size_t order[64];
  std::size_t bound_count = 0;
  std::vector<std::size_t> order_heap;  // spill for very long windows
  std::size_t* ord = order;
  if (genes.size() > std::size(order)) {
    order_heap.resize(genes.size());
    ord = order_heap.data();
  }
  for (std::size_t j = 0; j < genes.size(); ++j) {
    if (!genes[j].is_wildcard()) ord[bound_count++] = j;
  }
  std::sort(ord, ord + bound_count, [&](std::size_t a, std::size_t b) {
    return genes[a].width() < genes[b].width();
  });

  if (bound_count == 0) {
    // All-wildcard rule: everything matches.
    out.reserve(out.size() + n);
    for (std::size_t i = begin; i < end; ++i) out.push_back(i);
    return;
  }

  const std::size_t first_size = out.size();

  if (view.qdata != nullptr && view.rows != nullptr) {
    // Fast path: scan the quantized byte column of the narrowest gene (8×
    // less traffic than doubles, 16 lanes per SSE2 compare), then verify
    // each surviving candidate exactly against its contiguous row-major
    // window — every bound gene, narrowest first, in double precision. The
    // byte ranges are conservative supersets, so this reproduces the scalar
    // reference bit-for-bit. The column is processed in blocks through a
    // stack candidate buffer so `out` only ever receives verified matches —
    // typically a handful per thousand windows — instead of the much larger
    // candidate superset.
    const std::size_t j0 = ord[0];
    const std::uint8_t qlo = quantize_bound(genes[j0].lo(), view.qmin, view.qinv);
    const std::uint8_t qhi = quantize_bound(genes[j0].hi(), view.qmin, view.qinv);

    double glo_stack[64];
    double ghi_stack[64];
    std::vector<double> glo_heap;
    std::vector<double> ghi_heap;
    double* glo = glo_stack;
    double* ghi = ghi_stack;
    if (bound_count > std::size(glo_stack)) {
      glo_heap.resize(bound_count);
      ghi_heap.resize(bound_count);
      glo = glo_heap.data();
      ghi = ghi_heap.data();
    }
    for (std::size_t k = 0; k < bound_count; ++k) {
      glo[k] = genes[ord[k]].lo();
      ghi[k] = genes[ord[k]].hi();
    }

    const std::uint8_t* qc = view.qcol(j0);
    const double* rows = view.rows;
    const std::size_t d = view.window;
    constexpr std::size_t kBlockWin = 4096;
    std::size_t cand[kBlockWin];
    std::size_t candidates = 0;
    for (std::size_t b = begin; b < end; b += kBlockWin) {
      const std::size_t block_end = std::min(end, b + kBlockWin);
      const std::size_t m = byte_compress_block(qc, qlo, qhi, b, block_end, cand);
      candidates += m;
      // Verify in place (write <= read, so the unconditional store is safe);
      // candidate rows are scattered, so prefetching a couple dozen ahead
      // hides the row-gather latency behind the branchless gene checks.
      std::size_t w = 0;
      for (std::size_t r = 0; r < m; ++r) {
        if (r + 24 < m) __builtin_prefetch(rows + cand[r + 24] * d);
        const std::size_t i = cand[r];
        const double* row = rows + i * d;
        unsigned okf = 1;
        for (std::size_t k = 0; k < bound_count; ++k) {
          const double v = row[ord[k]];
          okf &= static_cast<unsigned>((v >= glo[k]) & (v <= ghi[k]));
        }
        cand[w] = i;
        w += okf;
      }
      out.insert(out.end(), cand, cand + w);
    }
    if (pruned_out) *pruned_out += n - candidates;
    return;
  }

  // Plain-view path (no quantized mirror): branchless double column scan
  // into a candidate list for the first gene.
  compress_column(view.col(ord[0]), genes[ord[0]].lo(), genes[ord[0]].hi(), begin, end,
                  out);
  if (pruned_out) *pruned_out += n - (out.size() - first_size);

  // Remaining genes: compact the candidate list in place (write <= read, so
  // the unconditional store is safe), early-outing once it is empty.
  // Indices stay ascending by construction.
  for (std::size_t k = 1; k < bound_count && out.size() > first_size; ++k) {
    const double lo = genes[ord[k]].lo();
    const double hi = genes[ord[k]].hi();
    const double* c = view.col(ord[k]);
    std::size_t write = first_size;
    for (std::size_t r = first_size; r < out.size(); ++r) {
      const std::size_t i = out[r];
      out[write] = i;
      write += static_cast<std::size_t>((c[i] >= lo) & (c[i] <= hi));
    }
    out.resize(write);
  }
}

}  // namespace matchkern

}  // namespace ef::core
