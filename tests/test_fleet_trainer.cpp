// Tests for fleet/long_csv.hpp and fleet/bulk_trainer.hpp: long-format CSV
// grouping and validation, dataset-directory loading, per-series seed
// derivation, and the bulk trainer's core determinism contract — the same
// fleet trained with different pool widths (and in shuffled order) produces
// bit-identical rule systems per series id.
#include "fleet/bulk_trainer.hpp"
#include "fleet/long_csv.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "core/rule_system.hpp"
#include "series/synthetic.hpp"
#include "util/thread_pool.hpp"

namespace {

using ef::fleet::derive_series_seed;
using ef::fleet::FleetTrainOptions;
using ef::fleet::read_long_csv;
using ef::fleet::SeriesRecord;
using ef::fleet::train_fleet;

std::vector<double> values_of(const ef::series::TimeSeries& s) {
  return {s.values().begin(), s.values().end()};
}

// ---- long CSV ------------------------------------------------------------

TEST(LongCsv, GroupsRowsByIdInFirstAppearanceOrder) {
  std::istringstream in(
      "series_id,timestamp,value\n"
      "b,2021-01-01,1.5\n"
      "a,2021-01-01,10\n"
      "b,2021-01-02,2.5\n"
      "a,2021-01-02,20\n"
      "c,2021-01-01,-3\n");
  const auto fleet = read_long_csv(in);
  ASSERT_EQ(fleet.size(), 3u);
  EXPECT_EQ(fleet[0].id, "b");
  EXPECT_EQ(fleet[1].id, "a");
  EXPECT_EQ(fleet[2].id, "c");
  EXPECT_EQ(values_of(fleet[0].series), (std::vector<double>{1.5, 2.5}));
  EXPECT_EQ(values_of(fleet[1].series), (std::vector<double>{10.0, 20.0}));
  EXPECT_EQ(values_of(fleet[2].series), (std::vector<double>{-3.0}));
}

TEST(LongCsv, HeaderlessInputAndExtraColumnsAccepted) {
  std::istringstream in(
      "x,t0,1.0,extra,columns\n"
      "x,t1,2.0\n");
  const auto fleet = read_long_csv(in);
  ASSERT_EQ(fleet.size(), 1u);
  EXPECT_EQ(fleet[0].series.size(), 2u);
}

TEST(LongCsv, RejectsMalformedRowsWithLineNumbers) {
  const auto expect_throw_mentioning = [](const std::string& text, const std::string& line) {
    std::istringstream in(text);
    try {
      (void)read_long_csv(in);
      FAIL() << "expected std::runtime_error for: " << text;
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find(line), std::string::npos) << e.what();
    }
  };
  expect_throw_mentioning("a,t,1.0\nshort,row\n", "line 2");          // < 3 columns
  expect_throw_mentioning("a,t,1.0\nb,t,not-a-number\n", "line 2");   // bad value
  expect_throw_mentioning("a,t,1.0\nb,t,1.5trailing\n", "line 2");    // trailing junk
  expect_throw_mentioning("a,t,1.0\nb,t,inf\n", "line 2");            // non-finite
  expect_throw_mentioning("a,t,1.0\n,t,2.0\n", "line 2");             // empty id
}

TEST(LongCsv, SeriesCapEnforced) {
  std::istringstream in("a,t,1\nb,t,2\nc,t,3\n");
  ef::fleet::LongCsvOptions options;
  options.max_series = 2;
  EXPECT_THROW((void)read_long_csv(in, options), std::runtime_error);
}

TEST(LongCsv, MissingFileThrows) {
  EXPECT_THROW((void)read_long_csv(std::string("/nonexistent/fleet.csv")),
               std::runtime_error);
}

TEST(SeriesDirectory, LoadsOneSeriesPerCsvByStem) {
  const auto dir = std::filesystem::temp_directory_path() / "fleet_dir_test";
  std::filesystem::create_directories(dir);
  std::ofstream(dir / "beta.csv") << "1.0\n2.0\n3.0\n";
  std::ofstream(dir / "alpha.csv") << "5.5\n6.5\n";
  std::ofstream(dir / "ignored.txt") << "not a csv\n";
  const auto fleet = ef::fleet::read_series_directory(dir.string());
  ASSERT_EQ(fleet.size(), 2u);
  EXPECT_EQ(fleet[0].id, "alpha");  // lexicographic file order
  EXPECT_EQ(fleet[1].id, "beta");
  EXPECT_EQ(fleet[0].series.size(), 2u);
  EXPECT_EQ(fleet[1].series.size(), 3u);
  std::filesystem::remove_all(dir);
}

// ---- seed derivation -----------------------------------------------------

TEST(SeedDerivation, DeterministicAndIdSensitive) {
  EXPECT_EQ(derive_series_seed(1, "alpha"), derive_series_seed(1, "alpha"));
  EXPECT_NE(derive_series_seed(1, "alpha"), derive_series_seed(1, "alphb"));
  EXPECT_NE(derive_series_seed(1, "alpha"), derive_series_seed(2, "alpha"));
  // Near-identical ids must land far apart, not in adjacent seed values.
  std::set<std::uint64_t> seeds;
  for (int i = 0; i < 100; ++i) {
    seeds.insert(derive_series_seed(7, "series-" + std::to_string(i)));
  }
  EXPECT_EQ(seeds.size(), 100u);
}

// ---- bulk trainer --------------------------------------------------------

std::vector<SeriesRecord> small_fleet() {
  std::vector<SeriesRecord> fleet;
  for (std::uint64_t i = 0; i < 6; ++i) {
    // Id built by append: GCC 12's -Wrestrict false-positives on
    // "literal" + std::string&& chains under -Werror.
    std::string id = "s";
    id += std::to_string(i);
    fleet.push_back({std::move(id),
                     ef::series::generate_sine(
                         150, {1.0, 15.0 + static_cast<double>(i), 0.0, 0.0, 0.05, i + 1})});
  }
  return fleet;
}

FleetTrainOptions quick_options() {
  FleetTrainOptions options;
  options.window = 4;
  options.config.evolution.population_size = 16;
  options.config.evolution.generations = 60;
  options.config.evolution.emax = 0.25;
  options.config.evolution.seed = 42;
  options.config.max_executions = 1;
  return options;
}

/// Canonical text of a trained system — the bit-identity comparator.
std::string text_of(const ef::core::RuleSystem& system) {
  std::stringstream out;
  system.save(out);
  return out.str();
}

TEST(BulkTrainer, TrainsEverySeriesAndCountsRules) {
  const auto fleet = small_fleet();
  const auto result = train_fleet(fleet, quick_options());
  ASSERT_EQ(result.models.size(), fleet.size());
  EXPECT_EQ(result.trained, fleet.size());
  EXPECT_EQ(result.skipped, 0u);
  std::size_t rules = 0;
  for (const auto& model : result.models) {
    EXPECT_EQ(model.seed, derive_series_seed(42, model.id));
    EXPECT_GT(model.system.size(), 0u) << model.id;
    rules += model.system.size();
  }
  EXPECT_EQ(result.total_rules, rules);
}

TEST(BulkTrainer, DeterministicAcrossPoolWidthAndOrder) {
  auto fleet = small_fleet();
  auto options = quick_options();

  ef::util::ThreadPool one(1);
  options.pool = &one;
  const auto serial = train_fleet(fleet, options);

  ef::util::ThreadPool four(4);
  options.pool = &four;
  std::reverse(fleet.begin(), fleet.end());  // order must not matter either
  const auto parallel = train_fleet(fleet, options);

  ASSERT_EQ(serial.trained, parallel.trained);
  for (const auto& a : serial.models) {
    const auto b = std::find_if(parallel.models.begin(), parallel.models.end(),
                                [&](const auto& m) { return m.id == a.id; });
    ASSERT_NE(b, parallel.models.end()) << a.id;
    EXPECT_EQ(text_of(a.system), text_of(b->system)) << a.id;
  }
}

TEST(BulkTrainer, ShortSeriesSkippedNotFatal) {
  auto fleet = small_fleet();
  fleet.push_back({"too-short", ef::series::generate_sine(3, {})});
  const auto result = train_fleet(fleet, quick_options());
  EXPECT_EQ(result.trained, fleet.size() - 1);
  EXPECT_EQ(result.skipped, 1u);
  const auto& skipped = result.models.back();
  EXPECT_TRUE(skipped.skipped);
  EXPECT_EQ(skipped.id, "too-short");
  EXPECT_FALSE(skipped.skip_reason.empty());
}

TEST(BulkTrainer, EmptyFleetIsFine) {
  const auto result = train_fleet({}, quick_options());
  EXPECT_EQ(result.trained, 0u);
  EXPECT_EQ(result.skipped, 0u);
  EXPECT_TRUE(result.models.empty());
}

}  // namespace
