// dataset.hpp — sliding-window view of a series for rule evaluation.
//
// For window length D, embedding stride s and horizon τ, pattern i is
//   X_i = (x_i, x_{i+s}, …, x_{i+(D-1)s})
// with target v_i = x_{i+(D-1)s+τ}. The paper's encoding (§3.1) uses
// consecutive values (s = 1); the stride generalisation matches the delay
// embedding used by the Mackey-Glass comparators it quotes (RAN/MRAN take
// s(t), s(t−6), s(t−12), s(t−18) to predict s(t+τ)). Patterns are
// materialised twice, both built once at construction: row-contiguously
// (pattern(i) spans for regression residuals and per-window forecasting)
// and lag-major (lag_major(): one contiguous column per lag, the layout the
// vectorized match kernels and the SoA normal-equation accumulation scan).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/match_backend.hpp"
#include "series/timeseries.hpp"

namespace ef::core {

class WindowDataset {
 public:
  /// Build from a series. Throws std::invalid_argument when the series is
  /// too short for one pattern (size < (D−1)·stride + 1 + τ), or D == 0, or
  /// stride == 0.
  WindowDataset(const series::TimeSeries& s, std::size_t window, std::size_t horizon,
                std::size_t stride = 1);

  /// Window length D.
  [[nodiscard]] std::size_t window() const noexcept { return window_; }
  /// Prediction horizon τ.
  [[nodiscard]] std::size_t horizon() const noexcept { return horizon_; }
  /// Embedding stride s (1 = the paper's consecutive windows).
  [[nodiscard]] std::size_t stride() const noexcept { return stride_; }
  /// Number of patterns m = size − (D−1)·s − τ.
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

  /// Pattern X_i as a contiguous span of D values.
  [[nodiscard]] std::span<const double> pattern(std::size_t i) const noexcept {
    return {patterns_.data() + i * window_, window_};
  }

  /// Transposed (lag-major) view of every pattern: column j is the value of
  /// lag j across all windows, contiguous. This is the layout the SoA match
  /// backends and the regression accumulator consume. The view also carries
  /// the row-major mirror and the quantized byte columns the prefilter
  /// kernel uses (built once here, at construction).
  [[nodiscard]] LagMajorView lag_major() const noexcept {
    return LagMajorView{lag_major_.data(), count_,      window_, patterns_.data(),
                        lag_major_q_.data(), value_min_, qinv_,   patterns_q_.data()};
  }

  /// Target v_i = x_{i+(D-1)·s+τ}.
  [[nodiscard]] double target(std::size_t i) const noexcept { return targets_[i]; }

  /// All targets, contiguous (regression accumulates over this directly).
  [[nodiscard]] std::span<const double> targets() const noexcept { return targets_; }

  /// The underlying raw series values.
  [[nodiscard]] std::span<const double> values() const noexcept { return values_; }

  /// Smallest / largest value over the series (used to size wildcard extents
  /// and mutation steps).
  [[nodiscard]] double value_min() const noexcept { return value_min_; }
  [[nodiscard]] double value_max() const noexcept { return value_max_; }

  /// Smallest / largest *target*; the initialisation procedure stratifies
  /// over this output range (paper §3.2).
  [[nodiscard]] double target_min() const noexcept { return target_min_; }
  [[nodiscard]] double target_max() const noexcept { return target_max_; }

 private:
  std::vector<double> values_;
  std::vector<double> patterns_;   ///< row-major m×D packed windows
  std::vector<double> lag_major_;  ///< transposed D×m copy (one column per lag)
  std::vector<std::uint8_t> lag_major_q_;  ///< quantized mirror of lag_major_
  std::vector<std::uint8_t> patterns_q_;   ///< quantized mirror of patterns_ (row-major)
  std::vector<double> targets_;
  std::size_t window_ = 0;
  std::size_t horizon_ = 0;
  std::size_t stride_ = 1;
  std::size_t count_ = 0;
  double value_min_ = 0.0;
  double value_max_ = 0.0;
  double target_min_ = 0.0;
  double target_max_ = 0.0;
  double qinv_ = 0.0;  ///< 255 / (value_max_ − value_min_); 0 when constant
};

}  // namespace ef::core
