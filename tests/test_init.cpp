// Tests for core/init.hpp: the paper's §3.2 output-stratified procedure
// (coverage of the output range, bounding-box correctness) and the random
// baseline.
#include "core/init.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

#include "series/venice.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::init_output_stratified;
using ef::core::init_uniform_random;
using ef::core::Interval;
using ef::core::Rule;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

TEST(StratifiedInit, PopulationSizeExact) {
  const auto venice = ef::series::generate_venice(2000);
  const WindowDataset data(venice, 6, 1);
  for (const std::size_t p : {1u, 7u, 50u, 100u}) {
    EXPECT_EQ(init_output_stratified(data, p).size(), p);
  }
}

TEST(StratifiedInit, ZeroPopulationThrows) {
  const auto venice = ef::series::generate_venice(200);
  const WindowDataset data(venice, 4, 1);
  EXPECT_THROW((void)init_output_stratified(data, 0), std::invalid_argument);
}

// Core contract of §3.2: every training pattern must be matched by the rule
// of its own output stratum (the rule's box is the min/max envelope of the
// stratum's patterns).
TEST(StratifiedInit, EveryPatternMatchedByItsStratumRule) {
  const auto venice = ef::series::generate_venice(3000);
  const WindowDataset data(venice, 8, 4);
  const std::size_t pop = 40;
  const auto rules = init_output_stratified(data, pop);

  const double lo = data.target_min();
  const double hi = data.target_max();
  const double step = (hi - lo) / static_cast<double>(pop);
  for (std::size_t i = 0; i < data.count(); ++i) {
    const double v = data.target(i);
    auto stratum = static_cast<std::size_t>((v - lo) / step);
    if (stratum >= pop) stratum = pop - 1;  // v == hi lands in the last one
    EXPECT_TRUE(rules[stratum].matches(data.pattern(i)))
        << "pattern " << i << " not matched by its stratum " << stratum;
  }
}

// Consequence: the union of the initial rules covers 100 % of training.
TEST(StratifiedInit, InitialPopulationCoversWholeTrainingSet) {
  const auto venice = ef::series::generate_venice(2500);
  const WindowDataset data(venice, 6, 2);
  const auto rules = init_output_stratified(data, 30);
  for (std::size_t i = 0; i < data.count(); ++i) {
    bool matched = false;
    for (const Rule& r : rules) {
      if (r.matches(data.pattern(i))) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << "pattern " << i;
  }
}

TEST(StratifiedInit, EmptyStrataGetFullRangeRules) {
  // Targets form two widely-separated clusters, so middle strata are empty;
  // their rules must be the full-range box (match everything in range).
  std::vector<double> v;
  for (int i = 0; i < 30; ++i) v.push_back(i % 2 == 0 ? 0.0 : 0.01);
  for (int i = 0; i < 30; ++i) v.push_back(i % 2 == 0 ? 100.0 : 99.9);
  const TimeSeries s(std::move(v));
  const WindowDataset data(s, 2, 1);
  const auto rules = init_output_stratified(data, 10);
  ASSERT_EQ(rules.size(), 10u);
  // Strata around the middle (targets ~40-60) are empty → full-range genes.
  const Rule& mid = rules[5];
  for (const auto& g : mid.genes()) {
    ASSERT_FALSE(g.is_wildcard());
    EXPECT_DOUBLE_EQ(g.lo(), data.value_min());
    EXPECT_DOUBLE_EQ(g.hi(), data.value_max());
  }
}

TEST(StratifiedInit, ConstantSeriesDoesNotCrash) {
  const TimeSeries s(std::vector<double>(50, 3.0));
  const WindowDataset data(s, 4, 1);
  const auto rules = init_output_stratified(data, 10);
  EXPECT_EQ(rules.size(), 10u);
  // Every rule must match the constant window.
  for (const Rule& r : rules) EXPECT_TRUE(r.matches(data.pattern(0)));
}

TEST(StratifiedInit, RulesAreGeneralNotWildcard) {
  // §3.2 produces bounded boxes, never '*' genes.
  const auto venice = ef::series::generate_venice(1000);
  const WindowDataset data(venice, 5, 1);
  for (const Rule& r : init_output_stratified(data, 20)) {
    EXPECT_EQ(r.specificity(), 5u);
  }
}

TEST(RandomInit, PopulationSizeAndGeneBounds) {
  const auto venice = ef::series::generate_venice(500);
  const WindowDataset data(venice, 6, 1);
  ef::util::Rng rng(3);
  const auto rules = init_uniform_random(data, 25, rng, 0.1);
  ASSERT_EQ(rules.size(), 25u);
  for (const Rule& r : rules) {
    ASSERT_EQ(r.window(), 6u);
    for (const auto& g : r.genes()) {
      if (g.is_wildcard()) continue;
      EXPECT_GE(g.lo(), data.value_min());
      EXPECT_LE(g.hi(), data.value_max());
      EXPECT_LE(g.lo(), g.hi());
    }
  }
}

TEST(RandomInit, WildcardProbabilityRespected) {
  const auto venice = ef::series::generate_venice(300);
  const WindowDataset data(venice, 10, 1);
  ef::util::Rng rng(4);
  const auto none = init_uniform_random(data, 50, rng, 0.0);
  for (const Rule& r : none) EXPECT_EQ(r.specificity(), 10u);
  const auto all = init_uniform_random(data, 50, rng, 1.0);
  for (const Rule& r : all) EXPECT_EQ(r.specificity(), 0u);
}

TEST(RandomInit, Deterministic) {
  const auto venice = ef::series::generate_venice(300);
  const WindowDataset data(venice, 4, 1);
  ef::util::Rng rng_a(9);
  ef::util::Rng rng_b(9);
  const auto a = init_uniform_random(data, 10, rng_a);
  const auto b = init_uniform_random(data, 10, rng_b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a[i].window(); ++j) {
      EXPECT_EQ(a[i].genes()[j], b[i].genes()[j]);
    }
  }
}

TEST(InitializePopulation, DispatchesOnStrategy) {
  const auto venice = ef::series::generate_venice(400);
  const WindowDataset data(venice, 4, 1);
  ef::util::Rng rng(1);

  ef::core::EvolutionConfig cfg;
  cfg.population_size = 12;
  cfg.init = ef::core::InitStrategy::kOutputStratified;
  const auto strat = ef::core::initialize_population(data, cfg, rng);
  EXPECT_EQ(strat.size(), 12u);
  // Stratified rules are fully bounded.
  EXPECT_EQ(strat.front().specificity(), 4u);

  cfg.init = ef::core::InitStrategy::kUniformRandom;
  const auto rnd = ef::core::initialize_population(data, cfg, rng);
  EXPECT_EQ(rnd.size(), 12u);
}

}  // namespace
