// Compilation/state test for the umbrella header: everything is reachable
// through one include, plus tests for RuleSystem::merge and
// galvan_error_partial added alongside it.
#include "evoforecast.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace {

TEST(Umbrella, EveryLayerUsableThroughOneInclude) {
  // util
  ef::util::Rng rng(1);
  (void)rng.uniform();
  ef::util::RunningStats stats;
  stats.add(1.0);
  // series
  const auto sine = ef::series::generate_sine(50);
  EXPECT_EQ(sine.size(), 50u);
  // core
  const ef::core::Interval gene(0.0, 1.0);
  EXPECT_TRUE(gene.contains(0.5));
  ef::core::EvolutionConfig config;
  EXPECT_NO_THROW(config.validate());
  // baselines
  ef::baselines::Persistence persistence;
  EXPECT_EQ(persistence.name(), "persistence");
}

TEST(Merge, CombinesRuleSets) {
  using ef::core::Interval;
  using ef::core::Rule;
  const auto make = [](double p) {
    Rule r({Interval(0, 10)});
    ef::core::PredictingPart part;
    part.fit.coeffs = {0.0, p};
    part.fitness = 1.0;
    r.set_predicting(part);
    return r;
  };
  ef::core::RuleSystem a;
  a.add_rules({make(1.0)}, false, -1.0);
  ef::core::RuleSystem b;
  b.add_rules({make(3.0), make(5.0)}, false, -1.0);

  a.merge(b);
  EXPECT_EQ(a.size(), 3u);
  // Each rule predicts its constant p (zero slope, intercept p): mean = 3.
  const auto out = a.forecast(std::vector<double>{2.0}).as_optional();
  ASSERT_TRUE(out.has_value());
  EXPECT_DOUBLE_EQ(*out, 3.0);
}

TEST(Merge, WithEmptyIsIdentity) {
  ef::core::RuleSystem a;
  const ef::core::RuleSystem empty;
  a.merge(empty);
  EXPECT_TRUE(a.empty());
}

TEST(GalvanPartial, MatchesFullMetricAtFullCoverage) {
  const std::vector<double> actual{1.0, 2.0, 3.0};
  ef::series::PartialForecast forecast{1.5, 2.0, 2.0};
  std::vector<double> dense{1.5, 2.0, 2.0};
  EXPECT_DOUBLE_EQ(ef::series::galvan_error_partial(actual, forecast, 4),
                   ef::series::galvan_error(actual, dense, 4));
}

TEST(GalvanPartial, SkipsAbstentions) {
  const std::vector<double> actual{1.0, 2.0, 3.0};
  ef::series::PartialForecast forecast{1.5, std::nullopt, 2.0};
  // Covered subset {1.0→1.5, 3.0→2.0}: Σd² = 0.25 + 1 = 1.25, N = 1, τ = 2
  // → denom 2·3 = 6.
  EXPECT_DOUBLE_EQ(ef::series::galvan_error_partial(actual, forecast, 2), 1.25 / 6.0);
}

TEST(GalvanPartial, NothingCoveredIsZero) {
  const std::vector<double> actual{1.0};
  ef::series::PartialForecast forecast{std::nullopt};
  EXPECT_DOUBLE_EQ(ef::series::galvan_error_partial(actual, forecast, 1), 0.0);
}

TEST(GalvanPartial, SizeMismatchThrows) {
  const std::vector<double> actual{1.0, 2.0};
  ef::series::PartialForecast forecast{1.0};
  EXPECT_THROW((void)ef::series::galvan_error_partial(actual, forecast, 1),
               std::invalid_argument);
}

}  // namespace
