// Tests for core/dataset.hpp: window/target arithmetic, bounds, edge sizes.
#include "core/dataset.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <stdexcept>
#include <vector>

namespace {

using ef::core::WindowDataset;
using ef::series::TimeSeries;

TimeSeries ramp(std::size_t n) {
  std::vector<double> v(n);
  std::iota(v.begin(), v.end(), 0.0);
  return TimeSeries(std::move(v), "ramp");
}

TEST(WindowDataset, CountFormula) {
  // m = size − (D−1) − τ
  const WindowDataset d(ramp(100), 5, 3);
  EXPECT_EQ(d.count(), 100u - 4u - 3u);
  EXPECT_EQ(d.window(), 5u);
  EXPECT_EQ(d.horizon(), 3u);
}

TEST(WindowDataset, PatternContents) {
  const WindowDataset d(ramp(10), 3, 1);
  const auto p0 = d.pattern(0);
  ASSERT_EQ(p0.size(), 3u);
  EXPECT_DOUBLE_EQ(p0[0], 0.0);
  EXPECT_DOUBLE_EQ(p0[2], 2.0);
  const auto p4 = d.pattern(4);
  EXPECT_DOUBLE_EQ(p4[0], 4.0);
  EXPECT_DOUBLE_EQ(p4[2], 6.0);
}

TEST(WindowDataset, TargetIsHorizonAhead) {
  // target(i) = x[i + D − 1 + τ]
  const WindowDataset d(ramp(20), 4, 5);
  EXPECT_DOUBLE_EQ(d.target(0), 8.0);
  EXPECT_DOUBLE_EQ(d.target(3), 11.0);
}

TEST(WindowDataset, HorizonZeroPredictsLastWindowValue) {
  const WindowDataset d(ramp(10), 3, 0);
  EXPECT_EQ(d.count(), 8u);
  EXPECT_DOUBLE_EQ(d.target(0), 2.0);  // same as pattern(0).back()
}

TEST(WindowDataset, MinimalSeriesOnePattern) {
  const WindowDataset d(ramp(6), 5, 1);
  EXPECT_EQ(d.count(), 1u);
  EXPECT_DOUBLE_EQ(d.target(0), 5.0);
}

TEST(WindowDataset, TooShortThrows) {
  EXPECT_THROW(WindowDataset(ramp(5), 5, 1), std::invalid_argument);
  EXPECT_THROW(WindowDataset(ramp(4), 5, 0), std::invalid_argument);
}

TEST(WindowDataset, ZeroWindowThrows) {
  EXPECT_THROW(WindowDataset(ramp(10), 0, 1), std::invalid_argument);
}

TEST(WindowDataset, ValueRangeOverWholeSeries) {
  const TimeSeries s({5.0, -2.0, 7.0, 0.0, 3.0, 1.0});
  const WindowDataset d(s, 2, 1);
  EXPECT_DOUBLE_EQ(d.value_min(), -2.0);
  EXPECT_DOUBLE_EQ(d.value_max(), 7.0);
}

TEST(WindowDataset, TargetRangeOverTargetsOnly) {
  // Series {10, 0, 1, 2}: with D=2, τ=1 → targets are x[2]=1 and x[3]=2;
  // the 10 and 0 never appear as targets.
  const TimeSeries s({10.0, 0.0, 1.0, 2.0});
  const WindowDataset d(s, 2, 1);
  EXPECT_EQ(d.count(), 2u);
  EXPECT_DOUBLE_EQ(d.target_min(), 1.0);
  EXPECT_DOUBLE_EQ(d.target_max(), 2.0);
}

TEST(WindowDataset, ConsecutivePatternsOverlap) {
  const WindowDataset d(ramp(50), 8, 2);
  for (std::size_t i = 0; i + 1 < d.count(); ++i) {
    const auto a = d.pattern(i);
    const auto b = d.pattern(i + 1);
    for (std::size_t j = 1; j < 8; ++j) EXPECT_DOUBLE_EQ(a[j], b[j - 1]);
  }
}

TEST(WindowDataset, StrideEmbedding) {
  // D=4, stride=6, τ=50 — the Mackey-Glass comparators' delay embedding.
  const WindowDataset d(ramp(100), 4, 50, 6);
  // reach = 3·6 + 50 = 68 → m = 100 − 68 = 32.
  EXPECT_EQ(d.count(), 32u);
  EXPECT_EQ(d.stride(), 6u);
  const auto p0 = d.pattern(0);
  EXPECT_DOUBLE_EQ(p0[0], 0.0);
  EXPECT_DOUBLE_EQ(p0[1], 6.0);
  EXPECT_DOUBLE_EQ(p0[2], 12.0);
  EXPECT_DOUBLE_EQ(p0[3], 18.0);
  EXPECT_DOUBLE_EQ(d.target(0), 68.0);
  const auto p5 = d.pattern(5);
  EXPECT_DOUBLE_EQ(p5[0], 5.0);
  EXPECT_DOUBLE_EQ(p5[3], 23.0);
  EXPECT_DOUBLE_EQ(d.target(5), 73.0);
}

TEST(WindowDataset, StrideOneMatchesDefault) {
  const WindowDataset a(ramp(50), 5, 2);
  const WindowDataset b(ramp(50), 5, 2, 1);
  ASSERT_EQ(a.count(), b.count());
  for (std::size_t i = 0; i < a.count(); ++i) {
    EXPECT_DOUBLE_EQ(a.target(i), b.target(i));
    for (std::size_t j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(a.pattern(i)[j], b.pattern(i)[j]);
  }
}

TEST(WindowDataset, ZeroStrideThrows) {
  EXPECT_THROW(WindowDataset(ramp(50), 5, 2, 0), std::invalid_argument);
}

TEST(WindowDataset, StrideTooLongThrows) {
  // reach = (4−1)·20 + 0 = 60 ≥ 50.
  EXPECT_THROW(WindowDataset(ramp(50), 4, 0, 20), std::invalid_argument);
}

TEST(WindowDataset, PaperVeniceShape) {
  // D = 24, τ = 96 on a 45 000-sample training set: m = 45 000 − 23 − 96.
  std::vector<double> v(45000, 0.0);
  const WindowDataset d(TimeSeries(std::move(v)), 24, 96);
  EXPECT_EQ(d.count(), 45000u - 23u - 96u);
}

}  // namespace
