// Tests for core/rule_index.hpp: exact agreement with brute-force matching
// across aggregations and random probes, bucket mechanics, and pruning
// effectiveness on a trained system.
#include "core/rule_index.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "core/rule_system.hpp"
#include "series/mackey_glass.hpp"
#include "util/rng.hpp"

namespace {

using ef::core::Aggregation;
using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleIndex;
using ef::core::RuleSystem;

Rule make_rule(std::vector<Interval> genes, double prediction, double fitness,
               double error = 0.1) {
  Rule r(std::move(genes));
  ef::core::PredictingPart part;
  part.fit.coeffs.assign(r.window() + 1, 0.0);
  part.fit.coeffs.back() = prediction;
  part.fit.mean_prediction = prediction;
  part.fit.max_abs_residual = error;
  part.matches = 5;
  part.fitness = fitness;
  r.set_predicting(part);
  return r;
}

TEST(RuleIndex, ConstructionValidation) {
  RuleSystem system;
  EXPECT_THROW(RuleIndex(system, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(RuleIndex(system, 2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(RuleIndex(system, 0.0, 1.0, 0), std::invalid_argument);
}

TEST(RuleIndex, BucketsPruneCandidates) {
  RuleSystem system;
  // Three disjoint first-gene bands plus one wildcard-first rule.
  system.add_rules({make_rule({Interval(0.0, 0.2), Interval::wildcard()}, 1.0, 1.0),
                    make_rule({Interval(0.4, 0.6), Interval::wildcard()}, 2.0, 1.0),
                    make_rule({Interval(0.8, 1.0), Interval::wildcard()}, 3.0, 1.0),
                    make_rule({Interval::wildcard(), Interval::wildcard()}, 9.0, 0.5)},
                   false, -1.0);
  const RuleIndex index(system, 0.0, 1.0, 10);
  // Query at 0.5: candidates = the middle-band rule + the wildcard rule.
  const auto candidates = index.candidates(0.5);
  EXPECT_EQ(candidates.size(), 2u);
  // All four rules would be scanned brute-force; the index looks at 2.
  EXPECT_LT(index.mean_candidates(), 4.0);
}

TEST(RuleIndex, AgreesWithBruteForceOnHandSystem) {
  RuleSystem system;
  system.add_rules({make_rule({Interval(0.0, 0.5), Interval(0.0, 1.0)}, 10.0, 2.0),
                    make_rule({Interval(0.3, 0.9), Interval(0.0, 1.0)}, 20.0, 1.0),
                    make_rule({Interval::wildcard(), Interval(0.2, 0.4)}, 30.0, 3.0)},
                   false, -1.0);
  const RuleIndex index(system, 0.0, 1.0, 16);

  ef::util::Rng rng(4);
  for (int probe = 0; probe < 500; ++probe) {
    const std::vector<double> w{rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)};
    for (const auto how :
         {Aggregation::kMean, Aggregation::kFitnessWeighted, Aggregation::kMedian,
          Aggregation::kBestRule, Aggregation::kInverseError}) {
      const auto direct = system.forecast(w, how).as_optional();
      const auto indexed = index.forecast(w, how).as_optional();
      ASSERT_EQ(direct.has_value(), indexed.has_value());
      if (direct) {
        ASSERT_DOUBLE_EQ(*direct, *indexed);
      }
    }
    ASSERT_EQ(system.vote_count(w), index.vote_count(w));
  }
}

TEST(RuleIndex, AgreesWithBruteForceOnTrainedSystem) {
  const auto mg = ef::series::make_paper_mackey_glass();
  const ef::core::WindowDataset train(mg.train, 4, 1);
  const ef::core::WindowDataset test(mg.test, 4, 1);

  ef::core::RuleSystemConfig cfg;
  cfg.evolution.population_size = 40;
  cfg.evolution.generations = 1500;
  cfg.evolution.emax = 0.12;
  cfg.evolution.seed = 3;
  cfg.max_executions = 2;
  cfg.coverage_target_percent = 100.0;
  const auto trained = ef::core::train(train, {.config = cfg});

  const RuleIndex index(trained.system, train.value_min(), train.value_max(), 64);
  for (std::size_t i = 0; i < test.count(); ++i) {
    const auto direct = trained.system.forecast(test.pattern(i)).as_optional();
    const auto indexed = index.forecast(test.pattern(i)).as_optional();
    ASSERT_EQ(direct.has_value(), indexed.has_value()) << i;
    if (direct) {
      ASSERT_DOUBLE_EQ(*direct, *indexed) << i;
    }
  }
  // The index must actually prune on a trained (specific) rule set.
  EXPECT_LT(index.mean_candidates(), 0.8 * static_cast<double>(trained.system.size()));
}

TEST(RuleIndex, OutOfRangeQueriesHitEdgeBuckets) {
  RuleSystem system;
  system.add_rules({make_rule({Interval(0.0, 0.1), Interval::wildcard()}, 1.0, 1.0)}, false,
                   -1.0);
  const RuleIndex index(system, 0.0, 1.0, 4);
  // Below range: bucket 0 — the low-band rule is there.
  EXPECT_EQ(index.candidates(-5.0).size(), 1u);
  // Above range: last bucket — empty.
  EXPECT_EQ(index.candidates(5.0).size(), 0u);
  // Matching still exact: the window value itself is checked by the rule.
  EXPECT_FALSE(index.forecast(std::vector<double>{-5.0, 0.0}).as_optional().has_value());
}

TEST(RuleIndex, EmptyWindowAbstains) {
  RuleSystem system;
  system.add_rules({make_rule({Interval(0.0, 1.0)}, 1.0, 1.0)}, false, -1.0);
  const RuleIndex index(system, 0.0, 1.0, 4);
  EXPECT_FALSE(index.forecast(std::vector<double>{}).as_optional().has_value());
  EXPECT_EQ(index.vote_count(std::vector<double>{}), 0u);
}

}  // namespace
