#include "serve/tcp_server.hpp"

#include <cerrno>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "obs/events.hpp"
#include "obs/exposition.hpp"
#include "obs/macros.hpp"
#include "obs/timeline.hpp"
#include "obs/timeline_export.hpp"
#include "serve/protocol.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define EVOFORECAST_HAVE_SOCKETS 1
#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#else
#define EVOFORECAST_HAVE_SOCKETS 0
#endif

namespace ef::serve {

TcpServer::TcpServer(ForecastService& service, ServerConfig config)
    : service_(service), config_(std::move(config)) {}

TcpServer::~TcpServer() { stop(); }

bool TcpServer::running() const noexcept {
  return running_.load(std::memory_order_acquire);
}

std::uint64_t TcpServer::connections_served() const noexcept {
  return connections_.load(std::memory_order_relaxed);
}

#if EVOFORECAST_HAVE_SOCKETS

void TcpServer::start() {
  if (running()) return;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw std::runtime_error("TcpServer: socket() failed");

  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpServer: bad host '" + config_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpServer: cannot bind " + config_.host + ":" +
                             std::to_string(config_.port));
  }
  // Periodic accept timeout: the accept loop wakes up to observe stop()
  // without anyone having to touch the listening fd from another thread.
  timeval accept_timeout{};
  accept_timeout.tv_usec = 200 * 1000;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_RCVTIMEO, &accept_timeout, sizeof(accept_timeout));

  if (::listen(listen_fd_, config_.backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("TcpServer: listen() failed");
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  running_.store(true, std::memory_order_release);
  acceptor_ = std::thread([this] { accept_loop(); });
}

void TcpServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (acceptor_.joinable()) acceptor_.join();
    return;
  }
  // Nudge a blocked accept() awake (the SO_RCVTIMEO on the listener bounds
  // the wait at 200 ms regardless), then join BEFORE closing the fd: closing
  // while the acceptor still reads listen_fd_ is a data race, and a recycled
  // fd number could send accept() onto some unrelated descriptor
  // (race reported by TSan on the loopback round-trip test).
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  std::vector<Connection> connections;
  {
    const std::lock_guard lock(threads_mutex_);
    connections.swap(connection_threads_);
  }
  for (Connection& c : connections) {
    if (c.thread.joinable()) c.thread.join();
  }
}

void TcpServer::reap_finished_locked() {
  std::erase_if(connection_threads_, [](Connection& c) {
    if (!c.done->load(std::memory_order_acquire)) return false;
    if (c.thread.joinable()) c.thread.join();
    return true;
  });
}

void TcpServer::accept_loop() {
  while (running()) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (!running()) break;
      continue;  // transient accept failure
    }
    connections_.fetch_add(1, std::memory_order_relaxed);
    EVOFORECAST_COUNT("serve.connections", 1);

    // Periodic recv timeout so idle connections notice stop() promptly.
    timeval timeout{};
    timeout.tv_usec = 200 * 1000;
    ::setsockopt(client, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    const int one = 1;
    ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

    const std::lock_guard lock(threads_mutex_);
    reap_finished_locked();
    auto done = std::make_shared<std::atomic<bool>>(false);
    Connection connection;
    connection.done = done;
    connection.thread =
        std::thread([this, client, done] { connection_loop(client, std::move(done)); });
    connection_threads_.push_back(std::move(connection));
  }
}

namespace {

/// send() until done; false on a broken connection.
bool send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t w = ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (w <= 0) return false;
    sent += static_cast<std::size_t>(w);
  }
  return true;
}

}  // namespace

void TcpServer::connection_loop(int client_fd, std::shared_ptr<std::atomic<bool>> done) {
  std::string buffer;
  char chunk[4096];
  bool overlong = false;
  // Set once a "GET "/"HEAD " request line arrives: subsequent lines are
  // HTTP headers, and the blank line that ends them triggers one HTTP
  // response followed by close (Connection: close semantics).
  bool http_mode = false;
  bool closing = false;
  std::string http_method;
  std::string http_path;
  while (running() && !closing) {
    const ssize_t n = ::recv(client_fd, chunk, sizeof(chunk), 0);
    if (n == 0) break;  // client closed
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) continue;
      break;
    }
    buffer.append(chunk, static_cast<std::size_t>(n));

    std::size_t newline;
    while ((newline = buffer.find('\n')) != std::string::npos) {
      std::string line = buffer.substr(0, newline);
      buffer.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      std::string response;
      if (overlong) {
        response = error_json("request line too long");
        overlong = false;
      } else if (http_mode) {
        if (!line.empty()) continue;  // header line; ignore
        send_all(client_fd, handle_http(http_method, http_path));
        closing = true;  // Connection: close — one response per HTTP client
        break;
      } else if (line.empty()) {
        continue;
      } else if (line.rfind("GET ", 0) == 0 || line.rfind("HEAD ", 0) == 0) {
        const std::size_t space = line.find(' ');
        const std::size_t path_end = line.find(' ', space + 1);
        http_method = line.substr(0, space);
        http_path = line.substr(space + 1, path_end == std::string::npos
                                               ? std::string::npos
                                               : path_end - space - 1);
        http_mode = true;
        continue;
      } else {
        response = handle_line(line);
      }
      response.push_back('\n');
      if (!send_all(client_fd, response)) {
        closing = true;
        break;
      }
    }
    if (buffer.size() > config_.max_line_bytes) {
      // Discard the runaway line but keep the connection; the error goes out
      // once its terminating newline arrives.
      buffer.clear();
      overlong = true;
    }
  }
  ::close(client_fd);
  done->store(true, std::memory_order_release);
}

#else  // !EVOFORECAST_HAVE_SOCKETS

void TcpServer::start() {
  throw std::runtime_error("TcpServer: no socket support on this platform");
}

void TcpServer::stop() {}

void TcpServer::accept_loop() {}

void TcpServer::connection_loop(int, std::shared_ptr<std::atomic<bool>>) {}

void TcpServer::reap_finished_locked() {}

#endif  // EVOFORECAST_HAVE_SOCKETS

std::string TcpServer::handle_line(const std::string& line) {
  std::string parse_error;
  const auto request = parse_request(line, parse_error);
  if (!request) return error_json(parse_error);

  switch (request->cmd) {
    case Request::Cmd::kPing:
      return "{\"ok\":true,\"pong\":true}";
    case Request::Cmd::kModels: {
      std::string out = "{\"ok\":true,\"models\":[";
      bool first = true;
      for (const std::string& name : service_.store().names()) {
        const auto model = service_.store().get(name);
        if (!model) continue;
        if (!first) out += ",";
        first = false;
        out += "{\"name\":\"" + json_escape(name) + "\"";
        out += ",\"version\":" + std::to_string(model->version());
        out += ",\"rules\":" + std::to_string(model->system().size());
        out += ",\"window\":" + std::to_string(model->window()) + "}";
      }
      out += "]";
      // Container-backed series ride in their own section: every id is
      // predictable by name, versioned by the container generation. The id
      // list is capped so a million-series fleet answers in one line;
      // "series_total" carries the true count.
      if (const auto info = service_.store().container_info()) {
        constexpr std::size_t kMaxListedSeries = 256;
        out += ",\"container\":{\"path\":\"" + json_escape(info->path) + "\"";
        out += ",\"generation\":" + std::to_string(info->generation);
        out += ",\"bytes\":" + std::to_string(info->bytes);
        out += ",\"materialized\":" + std::to_string(info->materialized);
        out += ",\"series_total\":" + std::to_string(info->models);
        out += ",\"series\":[";
        bool first_id = true;
        for (const std::string& id : service_.store().container_ids(kMaxListedSeries)) {
          if (!first_id) out += ",";
          first_id = false;
          out += "\"" + json_escape(id) + "\"";
        }
        out += "]}";
      }
      out += "}";
      return out;
    }
    case Request::Cmd::kStats: {
      const auto cache = service_.cache_stats();
      std::string out = "{\"ok\":true";
      out += ",\"connections\":" + std::to_string(connections_served());
      out += ",\"cache_hits\":" + std::to_string(cache.hits);
      out += ",\"cache_misses\":" + std::to_string(cache.misses);
      out += ",\"cache_entries\":" + std::to_string(cache.entries);
      out += ",\"cache_evictions\":" + std::to_string(cache.evictions);
      out += "}";
      return out;
    }
    case Request::Cmd::kMetrics: {
      // The exposition text is multi-line; ship it JSON-escaped inside the
      // one-line envelope so JSON-lines framing survives. HTTP clients get
      // the raw text via GET /metrics instead.
      std::string out = "{\"ok\":true,\"format\":\"prometheus\",\"exposition\":\"";
      out += json_escape(obs::prometheus_text());
      out += "\"}";
      return out;
    }
    case Request::Cmd::kTrace: {
      // Chrome trace-event document embedded as a JSON value (it is already
      // valid JSON, depth 3 — well inside the parser's depth limit). Clients
      // save response["trace"] to a file and open it in Perfetto.
      char rate[32];
      std::snprintf(rate, sizeof(rate), "%g", obs::Timeline::sample_rate());
      std::string out = "{\"ok\":true,\"enabled\":";
      out += obs::Timeline::enabled() ? "true" : "false";
      out += ",\"sample\":";
      out += rate;
      out += ",\"trace\":";
      out += obs::chrome_trace_json();
      out += "}";
      return out;
    }
    case Request::Cmd::kEvents: {
      const auto events = obs::EventLog::global().recent();
      std::string out = "{\"ok\":true,\"dropped\":";
      out += std::to_string(obs::EventLog::global().dropped());
      out += ",\"events\":[";
      for (std::size_t i = 0; i < events.size(); ++i) {
        if (i != 0) out += ',';
        out += events[i].to_json();
      }
      out += "]}";
      return out;
    }
    case Request::Cmd::kPredict:
      break;
  }
  return to_json(service_.predict(request->predict));
}

std::string TcpServer::handle_http(std::string_view method, std::string_view path) {
  const std::string_view bare_path = path.substr(0, path.find('?'));
  std::string status = "200 OK";
  std::string content_type = "text/plain; version=0.0.4; charset=utf-8";
  std::string body;
  if (bare_path == "/metrics") {
    EVOFORECAST_COUNT("serve.http_scrapes", 1);
    body = obs::prometheus_text();
  } else {
    status = "404 Not Found";
    content_type = "text/plain; charset=utf-8";
    body = "not found: only /metrics is served here\n";
  }
  std::string out = "HTTP/1.0 ";
  out += status;
  out += "\r\nContent-Type: ";
  out += content_type;
  out += "\r\nContent-Length: ";
  out += std::to_string(body.size());
  out += "\r\nConnection: close\r\n\r\n";
  if (method != "HEAD") out += body;
  return out;
}

}  // namespace ef::serve
