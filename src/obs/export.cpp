#include "obs/export.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

#include "obs/build_info.hpp"

namespace ef::obs {
namespace {

void append_escaped(std::string& out, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

/// JSON has no inf/nan; emit null for them (empty histograms etc.).
void append_number(std::string& out, double value) {
  if (!std::isfinite(value)) {
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

void append_number(std::string& out, std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
  out += buf;
}

void append_key(std::string& out, std::string_view name) {
  out += '"';
  append_escaped(out, name);
  out += "\":";
}

/// One CSV row; names are metric identifiers (no commas/quotes expected,
/// but quote defensively if present).
void append_csv_row(std::string& out, std::string_view kind, std::string_view name,
                    std::string_view field, const std::string& value) {
  out += kind;
  out += ',';
  const bool needs_quotes = name.find_first_of(",\"\n") != std::string_view::npos;
  if (needs_quotes) {
    out += '"';
    for (const char c : name) {
      out += c;
      if (c == '"') out += '"';
    }
    out += '"';
  } else {
    out += name;
  }
  out += ',';
  out += field;
  out += ',';
  out += value;
  out += '\n';
}

[[nodiscard]] std::string number_text(double value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

[[nodiscard]] std::string number_text(std::uint64_t value) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(value));
  return buf;
}

}  // namespace

RunReport capture_run_report() {
  return {Registry::global().snapshot(), TraceRegistry::global().snapshot()};
}

std::string to_json(const RunReport& report) {
  std::string out;
  out.reserve(4096);
  out += "{\n  \"build\": ";
  out += build_info_json();
  out += ",\n  \"counters\": {";
  for (std::size_t i = 0; i < report.metrics.counters.size(); ++i) {
    const auto& c = report.metrics.counters[i];
    out += i == 0 ? "\n    " : ",\n    ";
    append_key(out, c.name);
    out += ' ';
    append_number(out, c.value);
  }
  out += "\n  },\n  \"gauges\": {";
  for (std::size_t i = 0; i < report.metrics.gauges.size(); ++i) {
    const auto& g = report.metrics.gauges[i];
    out += i == 0 ? "\n    " : ",\n    ";
    append_key(out, g.name);
    out += ' ';
    append_number(out, g.value);
  }
  out += "\n  },\n  \"histograms\": {";
  for (std::size_t i = 0; i < report.metrics.histograms.size(); ++i) {
    const auto& h = report.metrics.histograms[i];
    out += i == 0 ? "\n    " : ",\n    ";
    append_key(out, h.name);
    out += " {";
    append_key(out, "count");
    out += ' ';
    append_number(out, h.stats.count);
    const std::pair<const char*, double> fields[] = {
        {"sum", h.stats.sum}, {"mean", h.stats.mean}, {"stddev", h.stats.stddev},
        {"min", h.stats.min}, {"max", h.stats.max},   {"p50", h.stats.p50},
        {"p90", h.stats.p90}, {"p99", h.stats.p99}};
    for (const auto& [key, value] : fields) {
      out += ", ";
      append_key(out, key);
      out += ' ';
      append_number(out, value);
    }
    out += ", ";
    append_key(out, "buckets");
    out += " [";
    for (std::size_t b = 0; b < h.stats.buckets.size(); ++b) {
      if (b != 0) out += ", ";
      out += "{";
      append_key(out, "le");
      out += ' ';
      if (b < h.stats.bounds.size()) {
        append_number(out, h.stats.bounds[b]);
      } else {
        out += "\"inf\"";
      }
      out += ", ";
      append_key(out, "count");
      out += ' ';
      append_number(out, h.stats.buckets[b]);
      out += "}";
    }
    out += "]}";
  }
  out += "\n  },\n  \"spans\": {";
  for (std::size_t i = 0; i < report.trace.spans.size(); ++i) {
    const auto& s = report.trace.spans[i];
    out += i == 0 ? "\n    " : ",\n    ";
    append_key(out, s.name);
    out += " {";
    append_key(out, "calls");
    out += ' ';
    append_number(out, s.stats.calls);
    const std::pair<const char*, double> fields[] = {
        {"total_ms", s.stats.total_ns * 1e-6},
        {"self_ms", s.stats.self_ns * 1e-6},
        {"mean_us", s.stats.duration_ns.mean() * 1e-3},
        {"min_us", s.stats.calls ? s.stats.duration_ns.min() * 1e-3 : 0.0},
        {"max_us", s.stats.calls ? s.stats.duration_ns.max() * 1e-3 : 0.0}};
    for (const auto& [key, value] : fields) {
      out += ", ";
      append_key(out, key);
      out += ' ';
      append_number(out, value);
    }
    out += "}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string to_csv(const RunReport& report) {
  std::string out = "kind,name,field,value\n";
  for (const auto& c : report.metrics.counters) {
    append_csv_row(out, "counter", c.name, "value", number_text(c.value));
  }
  for (const auto& g : report.metrics.gauges) {
    append_csv_row(out, "gauge", g.name, "value", number_text(g.value));
  }
  for (const auto& h : report.metrics.histograms) {
    append_csv_row(out, "histogram", h.name, "count", number_text(h.stats.count));
    append_csv_row(out, "histogram", h.name, "mean", number_text(h.stats.mean));
    append_csv_row(out, "histogram", h.name, "stddev", number_text(h.stats.stddev));
    append_csv_row(out, "histogram", h.name, "min", number_text(h.stats.min));
    append_csv_row(out, "histogram", h.name, "max", number_text(h.stats.max));
    append_csv_row(out, "histogram", h.name, "p50", number_text(h.stats.p50));
    append_csv_row(out, "histogram", h.name, "p90", number_text(h.stats.p90));
    append_csv_row(out, "histogram", h.name, "p99", number_text(h.stats.p99));
  }
  for (const auto& s : report.trace.spans) {
    append_csv_row(out, "span", s.name, "calls", number_text(s.stats.calls));
    append_csv_row(out, "span", s.name, "total_ms", number_text(s.stats.total_ns * 1e-6));
    append_csv_row(out, "span", s.name, "self_ms", number_text(s.stats.self_ns * 1e-6));
    append_csv_row(out, "span", s.name, "mean_us",
                   number_text(s.stats.duration_ns.mean() * 1e-3));
  }
  return out;
}

std::string format_report(const RunReport& report) {
  std::string out;
  char line[256];
  const auto emit = [&](const char* fmt, auto... args) {
    std::snprintf(line, sizeof line, fmt, args...);
    out += line;
  };

  out += "== run report "
         "================================================================\n";
  if (!report.metrics.counters.empty()) {
    out += "counters\n";
    for (const auto& c : report.metrics.counters) {
      emit("  %-44s %18llu\n", c.name.c_str(),
           static_cast<unsigned long long>(c.value));
    }
  }
  if (!report.metrics.gauges.empty()) {
    out += "gauges\n";
    for (const auto& g : report.metrics.gauges) {
      emit("  %-44s %18.4g\n", g.name.c_str(), g.value);
    }
  }
  if (!report.metrics.histograms.empty()) {
    emit("histograms%36s %10s %9s %9s %9s %9s\n", "", "count", "mean", "p50", "p90",
         "p99");
    for (const auto& h : report.metrics.histograms) {
      emit("  %-44s %10llu %9.3g %9.3g %9.3g %9.3g\n", h.name.c_str(),
           static_cast<unsigned long long>(h.stats.count), h.stats.mean, h.stats.p50,
           h.stats.p90, h.stats.p99);
    }
  }
  if (!report.trace.spans.empty()) {
    // Spans sorted by total time descending: the profile view.
    auto spans = report.trace.spans;
    std::sort(spans.begin(), spans.end(), [](const auto& a, const auto& b) {
      return a.stats.total_ns > b.stats.total_ns;
    });
    emit("spans%41s %10s %11s %11s %9s\n", "", "calls", "total ms", "self ms",
         "mean us");
    for (const auto& s : spans) {
      emit("  %-44s %10llu %11.2f %11.2f %9.2f\n", s.name.c_str(),
           static_cast<unsigned long long>(s.stats.calls), s.stats.total_ns * 1e-6,
           s.stats.self_ns * 1e-6, s.stats.duration_ns.mean() * 1e-3);
    }
  }
  if (report.metrics.counters.empty() && report.metrics.gauges.empty() &&
      report.metrics.histograms.empty() && report.trace.spans.empty()) {
    out += "(no metrics recorded — built with EVOFORECAST_OBS=OFF?)\n";
  }
  out += "==============================================================="
         "===============\n";
  return out;
}

namespace {

void write_file(const std::string& path, const std::string& content) {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("obs: cannot open '" + path + "'");
  file << content;
  if (!file) throw std::runtime_error("obs: write failed for '" + path + "'");
}

}  // namespace

void write_json_file(const std::string& path) {
  write_file(path, to_json(capture_run_report()));
}

void write_csv_file(const std::string& path) {
  write_file(path, to_csv(capture_run_report()));
}

void print_report(std::FILE* out) {
  const std::string text = format_report(capture_run_report());
  std::fputs(text.c_str(), out);
}

}  // namespace ef::obs
