// lorenz.hpp — Lorenz-63 chaotic series generator (extension benchmark).
//
// Not used by the paper's three experiments, but a standard chaotic
// forecasting benchmark alongside Mackey-Glass; included so downstream users
// (and our extension tests) can exercise the rule system on a second,
// structurally different chaotic attractor (no delay term, 3-D state,
// two-lobed switching dynamics → strong *local* regimes, which is exactly
// the method's habitat).
//
//   dx/dt = σ(y − x),  dy/dt = x(ρ − z) − y,  dz/dt = xy − βz
//
// The observable returned is x(t), sampled every `sample_dt` time units
// after a transient burn-in, integrated with classic RK4.
#pragma once

#include <cstddef>

#include "series/timeseries.hpp"

namespace ef::series {

struct LorenzParams {
  double sigma = 10.0;
  double rho = 28.0;
  double beta = 8.0 / 3.0;
  double x0 = 1.0;
  double y0 = 1.0;
  double z0 = 1.0;
  double dt = 0.01;        ///< integrator step
  double sample_dt = 0.1;  ///< spacing between output samples
  double burn_in = 30.0;   ///< simulated time discarded before sampling
};

/// Generate `count` samples of the x component. Deterministic in params.
/// Throws std::invalid_argument on non-positive count/dt/sample_dt or when
/// sample_dt is not an integer multiple of dt.
[[nodiscard]] TimeSeries generate_lorenz(std::size_t count, const LorenzParams& params = {});

}  // namespace ef::series
