#include "core/telemetry.hpp"

#include <fstream>
#include <stdexcept>

namespace ef::core {

void TelemetryCollector::write_csv(const std::string& path) const {
  const std::lock_guard lock(mutex_);
  std::ofstream file(path);
  if (!file) throw std::runtime_error("TelemetryCollector: cannot open '" + path + "'");
  file << "generation,best_fitness,mean_fitness,mean_error,mean_matches,"
          "mean_specificity,replacements\n";
  for (const auto& r : records_) {
    file << r.generation << ',' << r.best_fitness << ',' << r.mean_fitness << ','
         << r.mean_error << ',' << r.mean_matches << ',' << r.mean_specificity << ','
         << r.replacements << '\n';
  }
  if (!file) throw std::runtime_error("TelemetryCollector: write failed for '" + path + "'");
}

}  // namespace ef::core
