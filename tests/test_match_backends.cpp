// Property tests for the pluggable match backends: every backend must
// produce exactly the same ascending index set as the scalar serial
// reference (match_indices_serial), across wildcard densities, window
// sizes, selectivities, and datasets large enough to trigger the parallel
// chunked path. Bit-identical match sets are the contract that makes the
// backend choice purely a speed knob.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "core/match_backend.hpp"
#include "core/match_engine.hpp"
#include "series/timeseries.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using ef::core::Interval;
using ef::core::MatchBackend;
using ef::core::MatchEngine;
using ef::core::Rule;
using ef::core::WindowDataset;
using ef::series::TimeSeries;

constexpr MatchBackend kAllBackends[] = {MatchBackend::kScalar, MatchBackend::kSoa,
                                         MatchBackend::kSoaPrefilter, MatchBackend::kAvx2,
                                         MatchBackend::kRuleMajor};

TimeSeries random_series(std::size_t n, std::uint64_t seed) {
  ef::util::Rng rng(seed);
  std::vector<double> v(n);
  for (double& x : v) x = rng.uniform(0.0, 1.0);
  return TimeSeries(std::move(v));
}

/// Random rule with a given wildcard probability. Interval edges are drawn
/// raw (no widening), so selectivity varies from near-empty to near-full.
Rule random_rule(std::size_t d, double wildcard_prob, std::uint64_t seed) {
  ef::util::Rng rng(seed);
  std::vector<Interval> genes;
  genes.reserve(d);
  for (std::size_t j = 0; j < d; ++j) {
    if (rng.bernoulli(wildcard_prob)) {
      genes.push_back(Interval::wildcard());
      continue;
    }
    double a = rng.uniform(0.0, 1.0);
    double b = rng.uniform(0.0, 1.0);
    if (a > b) std::swap(a, b);
    genes.emplace_back(a, b);
  }
  return Rule(std::move(genes));
}

void expect_backends_match_reference(const WindowDataset& data, const Rule& rule,
                                     ef::util::ThreadPool* pool, const char* what) {
  const MatchEngine reference(data);
  const std::vector<std::size_t> expected = reference.match_indices_serial(rule);
  for (const MatchBackend backend : kAllBackends) {
    const MatchEngine engine(data, pool, backend);
    const auto got = engine.match_indices(rule);
    EXPECT_EQ(got, expected) << what << " backend=" << ef::core::to_string(backend);
    EXPECT_EQ(engine.match_count(rule), expected.size())
        << what << " backend=" << ef::core::to_string(backend);
  }
}

/// Batched contract: match_all(rules)[r] must equal the scalar serial
/// reference of rules[r] under every backend (only kRuleMajor actually
/// batches; the rest loop per rule — both must agree bit-for-bit).
void expect_match_all_matches_reference(const WindowDataset& data,
                                        const std::vector<Rule>& rules,
                                        ef::util::ThreadPool* pool, const char* what) {
  const MatchEngine reference(data);
  for (const MatchBackend backend : kAllBackends) {
    const MatchEngine engine(data, pool, backend);
    const auto got = engine.match_all(rules);
    ASSERT_EQ(got.size(), rules.size()) << what;
    for (std::size_t r = 0; r < rules.size(); ++r) {
      EXPECT_EQ(got[r], reference.match_indices_serial(rules[r]))
          << what << " backend=" << ef::core::to_string(backend) << " rule=" << r;
    }
  }
}

TEST(MatchBackends, AgreeAcrossWildcardDensitiesAndWindows) {
  // Small dataset: serial path in match_indices (below the parallel grain).
  const TimeSeries s = random_series(600, 11);
  for (const std::size_t window : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    const WindowDataset data(s, window, 1);
    std::uint64_t seed = 1000 * window;
    for (const double wc : {0.0, 0.2, 0.5, 1.0}) {
      for (int trial = 0; trial < 8; ++trial) {
        expect_backends_match_reference(data, random_rule(window, wc, ++seed), nullptr,
                                        "small");
      }
    }
  }
}

TEST(MatchBackends, AgreeOnParallelChunkedPath) {
  // > 4096 windows and an explicit multi-worker pool: the chunked parallel
  // path must concatenate per-chunk results in dataset order for every
  // backend.
  const TimeSeries s = random_series(20000, 29);
  const WindowDataset data(s, 4, 1);
  ef::util::ThreadPool pool(4);
  std::uint64_t seed = 500;
  for (const double wc : {0.0, 0.2, 0.5, 1.0}) {
    for (int trial = 0; trial < 4; ++trial) {
      expect_backends_match_reference(data, random_rule(4, wc, ++seed), &pool, "parallel");
    }
  }
}

TEST(MatchBackends, AllWildcardRuleMatchesEverything) {
  const TimeSeries s = random_series(5000, 3);
  const WindowDataset data(s, 5, 1);
  const Rule rule(std::vector<Interval>(5, Interval::wildcard()));
  for (const MatchBackend backend : kAllBackends) {
    const MatchEngine engine(data, nullptr, backend);
    EXPECT_EQ(engine.match_count(rule), data.count())
        << ef::core::to_string(backend);
  }
  expect_backends_match_reference(data, rule, nullptr, "all-wildcard");
}

TEST(MatchBackends, EmptyMatchSetAgrees) {
  // Values live in [0,1); an interval above 2 can never match.
  const TimeSeries s = random_series(3000, 7);
  const WindowDataset data(s, 3, 1);
  std::vector<Interval> genes(3, Interval::wildcard());
  genes[1] = Interval(2.0, 3.0);
  const Rule rule(std::move(genes));
  for (const MatchBackend backend : kAllBackends) {
    const MatchEngine engine(data, nullptr, backend);
    EXPECT_TRUE(engine.match_indices(rule).empty()) << ef::core::to_string(backend);
  }
  expect_backends_match_reference(data, rule, nullptr, "empty");
}

TEST(MatchBackends, DimensionMismatchMatchesNothing) {
  const TimeSeries s = random_series(500, 13);
  const WindowDataset data(s, 4, 1);
  const Rule narrow(std::vector<Interval>(3, Interval::wildcard()));
  const Rule wide(std::vector<Interval>(6, Interval::wildcard()));
  for (const MatchBackend backend : kAllBackends) {
    const MatchEngine engine(data, nullptr, backend);
    EXPECT_TRUE(engine.match_indices(narrow).empty()) << ef::core::to_string(backend);
    EXPECT_TRUE(engine.match_indices(wide).empty()) << ef::core::to_string(backend);
  }
}

TEST(MatchBackends, NanSemanticsAgreeAtKernelLevel) {
  // TimeSeries rejects non-finite input, so NaN can only be probed at the
  // kernel layer: a NaN value must be rejected by any bounded gene and
  // accepted by a wildcard — identically in every kernel.
  constexpr std::size_t kWindow = 3;
  constexpr std::size_t kCount = 64;
  ef::util::Rng rng(17);
  std::vector<double> rows(kCount * kWindow);
  for (double& x : rows) x = rng.uniform(0.0, 1.0);
  rows[5 * kWindow + 1] = std::numeric_limits<double>::quiet_NaN();
  rows[20 * kWindow + 0] = std::numeric_limits<double>::quiet_NaN();
  rows[33 * kWindow + 2] = std::numeric_limits<double>::quiet_NaN();

  std::vector<double> lag_major(kCount * kWindow);
  for (std::size_t i = 0; i < kCount; ++i) {
    for (std::size_t j = 0; j < kWindow; ++j) {
      lag_major[j * kCount + i] = rows[i * kWindow + j];
    }
  }
  const ef::core::LagMajorView view{lag_major.data(), kCount, kWindow};

  std::uint64_t seed = 90;
  for (const double wc : {0.0, 0.5, 1.0}) {
    for (int trial = 0; trial < 8; ++trial) {
      const Rule rule = random_rule(kWindow, wc, ++seed);
      std::vector<std::size_t> scalar_out;
      std::vector<std::size_t> soa_out;
      std::vector<std::size_t> prefilter_out;
      ef::core::matchkern::scalar_match(rows.data(), kWindow, rule.genes(), 0, kCount,
                                        scalar_out);
      ef::core::matchkern::soa_match(view, rule.genes(), 0, kCount, soa_out);
      ef::core::matchkern::soa_prefilter_match(view, rule.genes(), 0, kCount,
                                               prefilter_out);
      EXPECT_EQ(soa_out, scalar_out) << "wc=" << wc << " trial=" << trial;
      EXPECT_EQ(prefilter_out, scalar_out) << "wc=" << wc << " trial=" << trial;
      // Any row containing NaN must be absent unless every NaN lag is
      // wildcarded.
      for (const std::size_t i : {std::size_t{5}, std::size_t{20}, std::size_t{33}}) {
        const std::size_t nan_lag = i == 5 ? 1 : (i == 20 ? 0 : 2);
        if (!rule.genes()[nan_lag].is_wildcard()) {
          EXPECT_TRUE(std::find(scalar_out.begin(), scalar_out.end(), i) ==
                      scalar_out.end())
              << "row " << i << " with NaN at bounded lag matched";
        }
      }
    }
  }
}

TEST(MatchBackends, ParseAndToStringRoundTrip) {
  for (const MatchBackend backend : kAllBackends) {
    const auto parsed = ef::core::parse_match_backend(ef::core::to_string(backend));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, backend);
  }
  EXPECT_EQ(ef::core::parse_match_backend("soa+prefilter"), MatchBackend::kSoaPrefilter);
  EXPECT_EQ(ef::core::parse_match_backend("auto"), MatchBackend::kAuto);
  EXPECT_FALSE(ef::core::parse_match_backend("definitely-not-a-backend").has_value());
}

TEST(MatchBackends, DispatchDecision) {
  using ef::core::pick_match_backend;
  // Explicit supported choices pass through untouched.
  for (const MatchBackend backend : kAllBackends) {
    if (backend == MatchBackend::kAvx2) continue;
    EXPECT_EQ(pick_match_backend(backend, true), backend);
    EXPECT_EQ(pick_match_backend(backend, false), backend);
  }
  // kAvx2 requires the CPU; without it the choice degrades, never SIGILLs.
  EXPECT_EQ(pick_match_backend(MatchBackend::kAvx2, true), MatchBackend::kAvx2);
  EXPECT_EQ(pick_match_backend(MatchBackend::kAvx2, false), MatchBackend::kSoaPrefilter);
  // kAuto resolves to a concrete backend either way.
  EXPECT_EQ(pick_match_backend(MatchBackend::kAuto, true), MatchBackend::kRuleMajor);
  EXPECT_EQ(pick_match_backend(MatchBackend::kAuto, false), MatchBackend::kRuleMajor);
}

TEST(MatchBackends, RuleMajorBatchAgreesOnRandomRuleSets) {
  const TimeSeries s = random_series(3000, 41);
  const WindowDataset data(s, 5, 1);
  std::uint64_t seed = 7000;
  ef::util::Rng sizes(99);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t n_rules = 1 + sizes.index(70);  // crosses the 32/16 lane pads
    std::vector<Rule> rules;
    rules.reserve(n_rules);
    for (std::size_t r = 0; r < n_rules; ++r) {
      rules.push_back(random_rule(5, 0.25 * static_cast<double>(r % 5), ++seed));
    }
    expect_match_all_matches_reference(data, rules, nullptr, "random-set");
  }
}

TEST(MatchBackends, RuleMajorBatchEdgeCases) {
  const TimeSeries s = random_series(6000, 43);
  const WindowDataset data(s, 4, 1);
  ef::util::ThreadPool pool(4);

  // Empty rule set: no planes, no output.
  expect_match_all_matches_reference(data, {}, nullptr, "empty-set");

  std::vector<Rule> rules;
  // All-genes-wildcard (matches everything), impossible interval (matches
  // nothing), and dimension-mismatch rules (matches nothing, inactive lane)
  // mixed with random ones.
  rules.emplace_back(std::vector<Interval>(4, Interval::wildcard()));
  {
    std::vector<Interval> genes(4, Interval::wildcard());
    genes[2] = Interval(2.0, 3.0);  // values live in [0,1)
    rules.emplace_back(std::move(genes));
  }
  rules.emplace_back(std::vector<Interval>(3, Interval::wildcard()));  // too narrow
  rules.emplace_back(std::vector<Interval>(6, Interval::wildcard()));  // too wide
  std::uint64_t seed = 8100;
  for (int r = 0; r < 40; ++r) rules.push_back(random_rule(4, 0.3, ++seed));

  // Serial and parallel chunked paths must both agree with the reference.
  expect_match_all_matches_reference(data, rules, nullptr, "edge-serial");
  expect_match_all_matches_reference(data, rules, &pool, "edge-parallel");
}

TEST(MatchBackends, RuleMajorKernelNanSemantics) {
  // Ad-hoc view with NaN cells (TimeSeries rejects non-finite input, so this
  // probes the kernel layer directly): quantized mirrors are built with the
  // same monotone map the dataset uses, NaN quantizing to 0. A bounded gene
  // must reject NaN rows, a wildcard must accept them — identically to the
  // scalar reference.
  constexpr std::size_t kWindow = 3;
  constexpr std::size_t kCount = 64;
  ef::util::Rng rng(23);
  std::vector<double> rows(kCount * kWindow);
  for (double& x : rows) x = rng.uniform(0.0, 1.0);
  rows[4 * kWindow + 1] = std::numeric_limits<double>::quiet_NaN();
  rows[17 * kWindow + 0] = std::numeric_limits<double>::quiet_NaN();
  rows[50 * kWindow + 2] = std::numeric_limits<double>::quiet_NaN();

  const double qmin = 0.0;
  const double qinv = 255.0;  // values in [0,1)
  std::vector<std::uint8_t> qrows(rows.size());
  for (std::size_t k = 0; k < rows.size(); ++k) {
    qrows[k] = ef::core::quantize_value(rows[k], qmin, qinv);
  }
  ef::core::LagMajorView view{};
  view.count = kCount;
  view.window = kWindow;
  view.rows = rows.data();
  view.qmin = qmin;
  view.qinv = qinv;
  view.qrows = qrows.data();

  std::uint64_t seed = 310;
  for (const double wc : {0.0, 0.5, 1.0}) {
    for (int trial = 0; trial < 6; ++trial) {
      std::vector<Rule> rules;
      for (int r = 0; r < 37; ++r) rules.push_back(random_rule(kWindow, wc, ++seed));
      std::vector<std::span<const Interval>> genes;
      genes.reserve(rules.size());
      for (const Rule& rule : rules) genes.emplace_back(rule.genes());
      const ef::core::RulePlanes planes =
          ef::core::build_rule_planes(genes, kWindow, qmin, qinv);

      std::vector<std::vector<std::size_t>> got(rules.size());
      ef::core::matchkern::rule_major_match(view, planes, 0, kCount, got);
      for (std::size_t r = 0; r < rules.size(); ++r) {
        std::vector<std::size_t> expected;
        ef::core::matchkern::scalar_match(rows.data(), kWindow, rules[r].genes(), 0,
                                          kCount, expected);
        EXPECT_EQ(got[r], expected) << "wc=" << wc << " trial=" << trial << " rule=" << r;
      }
    }
  }
}

}  // namespace
