#include "core/crowding.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace ef::core {

double jaccard_distance(std::span<const std::size_t> a,
                        std::span<const std::size_t> b) noexcept {
  if (a.empty() && b.empty()) return 0.0;
  // Linear merge over ascending sets.
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t intersection = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] == b[j]) {
      ++intersection;
      ++i;
      ++j;
    } else if (a[i] < b[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  const std::size_t uni = a.size() + b.size() - intersection;
  return 1.0 - static_cast<double>(intersection) / static_cast<double>(uni);
}

namespace {

[[nodiscard]] double prediction_distance(const Rule& a, const Rule& b) {
  if (!a.predicting() || !b.predicting()) {
    throw std::logic_error("phenotypic_distance(kPrediction): rules must be evaluated");
  }
  return std::abs(a.predicting()->prediction() - b.predicting()->prediction());
}

[[nodiscard]] double condition_overlap_distance(const Rule& a, const Rule& b,
                                                const WindowDataset& data) {
  if (a.window() != b.window()) {
    throw std::invalid_argument("phenotypic_distance: window mismatch");
  }
  const double lo = data.value_min();
  const double hi = data.value_max();
  const double span = hi - lo;
  if (span <= 0.0) return 0.0;  // constant series: all boxes coincide

  double overlap_sum = 0.0;
  for (std::size_t j = 0; j < a.window(); ++j) {
    const auto& ga = a.genes()[j];
    const auto& gb = b.genes()[j];
    const double ow = ga.overlap_width(gb, lo, hi);
    // Normalise by the union width so per-gene overlap is in [0,1].
    const double wa = ga.is_wildcard() ? span : ga.width();
    const double wb = gb.is_wildcard() ? span : gb.width();
    const double union_w = wa + wb - ow;
    overlap_sum += union_w > 0.0 ? ow / union_w : 1.0;  // two point-intervals at same spot
  }
  return 1.0 - overlap_sum / static_cast<double>(a.window());
}

}  // namespace

double phenotypic_distance(const Rule& a, const Rule& b, DistanceMetric metric,
                           const WindowDataset& data, std::span<const std::size_t> matched_a,
                           std::span<const std::size_t> matched_b) {
  switch (metric) {
    case DistanceMetric::kPrediction:
      return prediction_distance(a, b);
    case DistanceMetric::kConditionOverlap:
      return condition_overlap_distance(a, b, data);
    case DistanceMetric::kMatchedJaccard:
      return jaccard_distance(matched_a, matched_b);
  }
  throw std::logic_error("phenotypic_distance: unknown metric");
}

std::size_t nearest_individual(std::span<const Rule> population, const Rule& offspring,
                               DistanceMetric metric, const WindowDataset& data,
                               std::span<const std::vector<std::size_t>> matched_population,
                               std::span<const std::size_t> matched_offspring) {
  if (population.empty()) throw std::invalid_argument("nearest_individual: empty population");
  if (metric == DistanceMetric::kMatchedJaccard &&
      matched_population.size() != population.size()) {
    throw std::invalid_argument(
        "nearest_individual: Jaccard metric needs matched sets for every individual");
  }

  std::size_t best = 0;
  double best_distance = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < population.size(); ++i) {
    const std::span<const std::size_t> mi =
        metric == DistanceMetric::kMatchedJaccard ? std::span<const std::size_t>(matched_population[i])
                                                  : std::span<const std::size_t>{};
    const double dist =
        phenotypic_distance(population[i], offspring, metric, data, mi, matched_offspring);
    if (dist < best_distance) {
      best_distance = dist;
      best = i;
    }
  }
  return best;
}

std::size_t choose_victim(std::span<const Rule> population, const Rule& offspring,
                          const EvolutionConfig& config, const WindowDataset& data,
                          util::Rng& rng,
                          std::span<const std::vector<std::size_t>> matched_population,
                          std::span<const std::size_t> matched_offspring) {
  if (population.empty()) throw std::invalid_argument("choose_victim: empty population");
  switch (config.replacement) {
    case ReplacementStrategy::kCrowding:
      return nearest_individual(population, offspring, config.distance, data,
                                matched_population, matched_offspring);
    case ReplacementStrategy::kReplaceWorst: {
      std::size_t worst = 0;
      for (std::size_t i = 1; i < population.size(); ++i) {
        if (population[i].fitness() < population[worst].fitness()) worst = i;
      }
      return worst;
    }
    case ReplacementStrategy::kRandom:
      return rng.index(population.size());
  }
  throw std::logic_error("choose_victim: unknown strategy");
}

}  // namespace ef::core
