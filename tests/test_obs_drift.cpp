// Page–Hinkley drift detection: stationary streams stay quiet, level
// shifts fire once, the cold-start guard holds, detection re-baselines,
// and clear/reset semantics. Deterministic pseudo-noise only — no RNG
// seeds to chase.
#include "obs/drift.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>

namespace {

using ef::obs::DriftConfig;
using ef::obs::DriftDetector;
using Signal = ef::obs::DriftDetector::Signal;

/// Deterministic jitter in [-amp, +amp] — an LCG, not std::rand, so the
/// stream is identical on every platform.
class Jitter {
 public:
  explicit Jitter(double amp) : amp_(amp) {}
  double next() {
    state_ = state_ * 6364136223846793005ULL + 1442695040888963407ULL;
    const double unit = static_cast<double>(state_ >> 11) /
                        static_cast<double>(1ULL << 53);  // [0,1)
    return (2.0 * unit - 1.0) * amp_;
  }

 private:
  std::uint64_t state_ = 0x9e3779b97f4a7c15ULL;
  double amp_;
};

TEST(DriftDetector, StationaryNoiseNeverFires) {
  DriftDetector detector;  // delta=0.05 lambda=5.0
  Jitter jitter(0.04);     // below delta: deviations never accumulate
  for (std::size_t i = 0; i < 10000; ++i) {
    EXPECT_EQ(detector.update(0.2 + jitter.next()), Signal::kNone) << "sample " << i;
  }
  EXPECT_FALSE(detector.drifted());
  EXPECT_EQ(detector.detections(), 0u);
  EXPECT_LE(detector.statistic(), detector.config().lambda);
}

TEST(DriftDetector, LevelShiftFiresOnce) {
  DriftDetector detector;
  for (std::size_t i = 0; i < 100; ++i) detector.update(0.1);

  // A one-unit upward shift accumulates ~(1 - delta) per sample once the
  // running mean lags behind, so lambda=5 falls within a handful of samples.
  bool detected = false;
  std::size_t samples_to_fire = 0;
  for (std::size_t i = 0; i < 50 && !detected; ++i) {
    detected = detector.update(1.1) == Signal::kDetected;
    ++samples_to_fire;
  }
  ASSERT_TRUE(detected);
  EXPECT_LE(samples_to_fire, 20u);
  EXPECT_TRUE(detector.drifted());
  EXPECT_EQ(detector.detections(), 1u);

  // The shifted level is the new baseline: staying there re-fires nothing.
  for (std::size_t i = 0; i < 200; ++i) {
    EXPECT_NE(detector.update(1.1), Signal::kDetected);
  }
  EXPECT_EQ(detector.detections(), 1u);
}

TEST(DriftDetector, MinSamplesGuardsColdStart) {
  DriftConfig config;
  config.min_samples = 8;
  DriftDetector detector(config);
  // A wild early stream would trip a guardless detector immediately; here
  // nothing may fire before 8 samples no matter how extreme the values.
  for (std::size_t i = 0; i < config.min_samples - 1; ++i) {
    EXPECT_EQ(detector.update(i % 2 == 0 ? 100.0 : 0.0), Signal::kNone);
  }
}

TEST(DriftDetector, DetectionResetsStatistic) {
  DriftDetector detector;
  for (std::size_t i = 0; i < 50; ++i) detector.update(0.1);
  while (detector.update(2.0) != Signal::kDetected) {
  }
  // Re-baselined: the statistic restarts from zero over an empty window.
  EXPECT_EQ(detector.statistic(), 0.0);
  EXPECT_EQ(detector.samples(), 0u);
  EXPECT_TRUE(detector.drifted());
}

TEST(DriftDetector, ClearsAfterInControlRun) {
  DriftConfig config;
  config.clear_after = 16;
  DriftDetector detector(config);
  for (std::size_t i = 0; i < 50; ++i) detector.update(0.1);
  while (detector.update(2.0) != Signal::kDetected) {
  }

  // Settle at the (new) level: exactly one kCleared edge after clear_after
  // in-control samples, then silence.
  std::size_t cleared_edges = 0;
  std::size_t samples_to_clear = 0;
  for (std::size_t i = 0; i < 100; ++i) {
    if (detector.update(2.0) == Signal::kCleared) {
      ++cleared_edges;
      if (samples_to_clear == 0) samples_to_clear = i + 1;
    }
  }
  EXPECT_EQ(cleared_edges, 1u);
  EXPECT_EQ(samples_to_clear, config.clear_after);
  EXPECT_FALSE(detector.drifted());
}

TEST(DriftDetector, SecondShiftDetectableAfterClear) {
  DriftConfig config;
  config.clear_after = 8;
  DriftDetector detector(config);
  for (std::size_t i = 0; i < 50; ++i) detector.update(0.1);
  while (detector.update(1.0) != Signal::kDetected) {
  }
  std::size_t guard = 0;
  while (detector.update(1.0) != Signal::kCleared) {
    ASSERT_LT(++guard, 1000u);
  }
  // From the adopted baseline of 1.0, a further shift is a fresh detection.
  guard = 0;
  while (detector.update(2.5) != Signal::kDetected) {
    ASSERT_LT(++guard, 1000u);
  }
  EXPECT_EQ(detector.detections(), 2u);
}

TEST(DriftDetector, ResetForgetsEverything) {
  DriftDetector detector;
  for (std::size_t i = 0; i < 50; ++i) detector.update(0.1);
  while (detector.update(2.0) != Signal::kDetected) {
  }
  detector.reset();
  EXPECT_FALSE(detector.drifted());
  EXPECT_EQ(detector.detections(), 0u);
  EXPECT_EQ(detector.samples(), 0u);
  EXPECT_EQ(detector.statistic(), 0.0);
  // And the reset detector behaves like a fresh one on a quiet stream.
  for (std::size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(detector.update(0.1), Signal::kNone);
  }
}

}  // namespace
