// Wire-protocol hardening: the JSON grammar edge cases a public TCP port
// sees (duplicate keys, overflowing numbers, deep nesting), the
// metrics/events observability verbs, and the v2 envelope (id echo,
// structured error codes, v1 byte-compatibility).
#include <gtest/gtest.h>

#include <string>

#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace {

using ef::serve::ErrorCode;
using ef::serve::ProtocolError;
using ef::serve::Request;
using ef::serve::parse_request;

// --- json::parse ----------------------------------------------------------

TEST(ServeJson, ParsesScalarsArraysObjects) {
  std::string error;
  const auto doc = ef::serve::json::parse(
      R"({"a":1.5,"b":"x","c":[1,2,3],"d":true,"e":null})", error);
  ASSERT_TRUE(doc.has_value()) << error;
  const auto* object = doc->as_object();
  ASSERT_NE(object, nullptr);
  EXPECT_EQ(*object->at("a").as_number(), 1.5);
  EXPECT_EQ(*object->at("b").as_string(), "x");
  ASSERT_NE(object->at("c").as_array(), nullptr);
  EXPECT_EQ(object->at("c").as_array()->size(), 3u);
  EXPECT_TRUE(*object->at("d").as_bool());
  EXPECT_TRUE(object->at("e").is_null());
}

TEST(ServeJson, RejectsDuplicateKeys) {
  std::string error;
  const auto doc = ef::serve::json::parse(R"({"cmd":"ping","cmd":"stats"})", error);
  EXPECT_FALSE(doc.has_value());
  EXPECT_NE(error.find("duplicate"), std::string::npos) << error;
}

TEST(ServeJson, RejectsNumbersOverflowingDouble) {
  std::string error;
  EXPECT_FALSE(ef::serve::json::parse("1e999", error).has_value());
  EXPECT_FALSE(ef::serve::json::parse("-1e999", error).has_value());
  EXPECT_FALSE(ef::serve::json::parse(R"({"horizon":1e999})", error).has_value());
}

TEST(ServeJson, RejectsNestingBeyondMaxDepth) {
  // 20 nested arrays > default max_depth 8. Must fail, not overflow.
  std::string deep;
  for (int i = 0; i < 20; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 20; ++i) deep += ']';
  std::string error;
  EXPECT_FALSE(ef::serve::json::parse(deep, error).has_value());
  EXPECT_NE(error.find("deep"), std::string::npos) << error;

  // A raised limit accepts the same document.
  ef::serve::json::ParseOptions relaxed;
  relaxed.max_depth = 32;
  EXPECT_TRUE(ef::serve::json::parse(deep, error, relaxed).has_value());
}

TEST(ServeJson, RejectsTrailingGarbageAndTruncation) {
  std::string error;
  EXPECT_FALSE(ef::serve::json::parse(R"({"a":1} extra)", error).has_value());
  EXPECT_FALSE(ef::serve::json::parse(R"({"a":)", error).has_value());
  EXPECT_FALSE(ef::serve::json::parse("", error).has_value());
}

// --- parse_request --------------------------------------------------------

TEST(ParseRequest, PredictFieldsRoundTrip) {
  ProtocolError error;
  const auto request = parse_request(
      R"({"cmd":"predict","model":"m1","window":[1.0,2.0,3.0],"horizon":4,"agg":"median","cache":false})",
      error);
  ASSERT_TRUE(request.has_value()) << error.message;
  EXPECT_EQ(request->cmd, Request::Cmd::kPredict);
  EXPECT_EQ(request->version, 1);
  EXPECT_TRUE(request->id_json.empty());
  EXPECT_EQ(request->predict.model, "m1");
  ASSERT_EQ(request->predict.window.size(), 3u);
  EXPECT_EQ(request->predict.horizon, 4u);
  EXPECT_FALSE(request->predict.use_cache);
}

TEST(ParseRequest, MetricsAndEventsVerbs) {
  ProtocolError error;
  const auto metrics = parse_request(R"({"cmd":"metrics"})", error);
  ASSERT_TRUE(metrics.has_value()) << error.message;
  EXPECT_EQ(metrics->cmd, Request::Cmd::kMetrics);

  const auto events = parse_request(R"({"cmd":"events"})", error);
  ASSERT_TRUE(events.has_value()) << error.message;
  EXPECT_EQ(events->cmd, Request::Cmd::kEvents);

  const auto trace = parse_request(R"({"cmd":"trace"})", error);
  ASSERT_TRUE(trace.has_value()) << error.message;
  EXPECT_EQ(trace->cmd, Request::Cmd::kTrace);
}

TEST(ParseRequest, DuplicateKeysAreAnError) {
  ProtocolError error;
  EXPECT_FALSE(parse_request(R"({"horizon":1,"horizon":2})", error).has_value());
  EXPECT_NE(error.message.find("duplicate"), std::string::npos) << error.message;
  EXPECT_EQ(error.code, ErrorCode::kBadJson);
}

TEST(ParseRequest, OverflowingNumberIsAnError) {
  ProtocolError error;
  EXPECT_FALSE(parse_request(R"({"window":[1e999]})", error).has_value());
  EXPECT_EQ(error.code, ErrorCode::kBadJson);
}

TEST(ParseRequest, DeepNestingIsAnError) {
  std::string deep = R"({"window":)";
  for (int i = 0; i < 20; ++i) deep += '[';
  deep += '1';
  for (int i = 0; i < 20; ++i) deep += ']';
  deep += '}';
  ProtocolError error;
  EXPECT_FALSE(parse_request(deep, error).has_value());
  EXPECT_FALSE(error.message.empty());
}

TEST(ParseRequest, UnknownCmdIsAnError) {
  ProtocolError error;
  EXPECT_FALSE(parse_request(R"({"cmd":"reboot"})", error).has_value());
  EXPECT_NE(error.message.find("cmd"), std::string::npos) << error.message;
  EXPECT_EQ(error.code, ErrorCode::kUnknownCmd);
}


// --- protocol v2 envelope -------------------------------------------------

TEST(ProtocolV2, ExplicitVersionAndStringIdEcho) {
  ProtocolError error;
  const auto request =
      parse_request(R"({"cmd":"ping","v":2,"id":"req-1"})", error);
  ASSERT_TRUE(request.has_value()) << error.message;
  EXPECT_EQ(request->version, 2);
  EXPECT_EQ(request->id_json, "\"req-1\"");
  EXPECT_EQ(ef::serve::envelope_json(*request), R"(,"v":2,"id":"req-1")");
}

TEST(ProtocolV2, IdAloneImpliesVersion2) {
  ProtocolError error;
  const auto request = parse_request(R"({"cmd":"ping","id":17})", error);
  ASSERT_TRUE(request.has_value()) << error.message;
  EXPECT_EQ(request->version, 2);
  EXPECT_EQ(request->id_json, "17");
}

TEST(ProtocolV2, IdImpliesVersion2RegardlessOfKeyOrder) {
  // A later "v":1 key must not undo the id-implies-v2 upgrade: both key
  // orders yield the same v2 response with the id echoed.
  ProtocolError error;
  const auto id_first = parse_request(R"({"id":7,"v":1,"cmd":"ping"})", error);
  ASSERT_TRUE(id_first.has_value()) << error.message;
  EXPECT_EQ(id_first->version, 2);
  EXPECT_EQ(id_first->id_json, "7");

  const auto v_first = parse_request(R"({"v":1,"id":7,"cmd":"ping"})", error);
  ASSERT_TRUE(v_first.has_value()) << error.message;
  EXPECT_EQ(v_first->version, 2);
  EXPECT_EQ(v_first->id_json, "7");
}

TEST(ProtocolV2, Version1StaysV1) {
  ProtocolError error;
  const auto request = parse_request(R"({"cmd":"ping","v":1})", error);
  ASSERT_TRUE(request.has_value()) << error.message;
  EXPECT_EQ(request->version, 1);
  EXPECT_TRUE(ef::serve::envelope_json(*request).empty());
}

TEST(ProtocolV2, RejectsUnknownVersionAndBadIds) {
  ProtocolError error;
  EXPECT_FALSE(parse_request(R"({"cmd":"ping","v":3})", error).has_value());
  EXPECT_EQ(error.code, ErrorCode::kBadRequest);

  error = {};
  EXPECT_FALSE(parse_request(R"({"cmd":"ping","v":1.5})", error).has_value());
  EXPECT_EQ(error.code, ErrorCode::kBadRequest);

  error = {};
  EXPECT_FALSE(parse_request(R"({"cmd":"ping","id":true})", error).has_value());
  EXPECT_EQ(error.code, ErrorCode::kBadRequest);

  // An id over the 256-byte cap is refused, not truncated.
  error = {};
  const std::string big(300, 'x');
  EXPECT_FALSE(
      parse_request(R"({"cmd":"ping","id":")" + big + R"("})", error).has_value());
  EXPECT_EQ(error.code, ErrorCode::kBadRequest);
}

TEST(ProtocolV2, ErrorsEchoEnvelopeParsedBeforeFailure) {
  // The envelope pass runs first, so a later field error still echoes the id.
  ProtocolError error;
  EXPECT_FALSE(
      parse_request(R"({"id":"a","window":[0.1],"horizon":0})", error).has_value());
  EXPECT_EQ(error.version, 2);
  EXPECT_EQ(error.id_json, "\"a\"");
  const std::string line = ef::serve::error_json(error);
  EXPECT_NE(line.find(R"("v":2)"), std::string::npos) << line;
  EXPECT_NE(line.find(R"("id":"a")"), std::string::npos) << line;
  EXPECT_NE(line.find(R"("error":{"code":")"), std::string::npos) << line;
}

TEST(ProtocolV2, ErrorJsonV1BytesUnchanged) {
  // v1 errors keep the exact pre-v2 bare-string shape.
  EXPECT_EQ(ef::serve::error_json("nope"), R"({"ok":false,"error":"nope"})");
  EXPECT_EQ(ef::serve::error_json(ErrorCode::kUnknownModel, "nope", 1),
            R"({"ok":false,"error":"nope"})");
  EXPECT_EQ(ef::serve::error_json(ErrorCode::kUnknownModel, "nope", 2, "3"),
            R"({"ok":false,"v":2,"id":3,"error":{"code":"unknown_model","message":"nope"}})");
}

TEST(ProtocolV2, PredictResponseCarriesEnvelope) {
  ef::serve::PredictResponse ok;
  ok.ok = true;
  ok.model = "m";
  ok.version = 3;
  ok.horizon = 1;
  ok.value = 0.5;
  ok.votes = 2;

  Request v1;
  EXPECT_EQ(ef::serve::to_json(ok, v1), ef::serve::to_json(ok))
      << "v1 responses must stay byte-identical";

  Request v2;
  v2.version = 2;
  v2.id_json = "\"r\"";
  const std::string line = ef::serve::to_json(ok, v2);
  EXPECT_EQ(line.rfind(R"({"ok":true,"v":2,"id":"r",)", 0), 0u) << line;

  ef::serve::PredictResponse bad;
  bad.ok = false;
  bad.code = ErrorCode::kUnknownModel;
  bad.error = "unknown model";
  const std::string error_line = ef::serve::to_json(bad, v2);
  EXPECT_NE(error_line.find(R"("error":{"code":"unknown_model")"), std::string::npos)
      << error_line;
  EXPECT_EQ(ef::serve::to_json(bad, v1), R"({"ok":false,"error":"unknown model"})");
}

TEST(ParseRequest, ObserveVerbRoundTrip) {
  ProtocolError error;
  const auto request =
      parse_request(R"({"cmd":"observe","model":"demo","value":1.5})", error);
  ASSERT_TRUE(request.has_value()) << error.message;
  EXPECT_EQ(request->cmd, Request::Cmd::kObserve);
  EXPECT_TRUE(request->has_model);
  EXPECT_EQ(request->predict.model, "demo");
  EXPECT_DOUBLE_EQ(request->observe.value, 1.5);
  EXPECT_FALSE(request->observe.t.has_value());

  const auto with_tick =
      parse_request(R"({"cmd":"observe","value":-2.25,"t":7})", error);
  ASSERT_TRUE(with_tick.has_value()) << error.message;
  EXPECT_DOUBLE_EQ(with_tick->observe.value, -2.25);
  ASSERT_TRUE(with_tick->observe.t.has_value());
  EXPECT_EQ(*with_tick->observe.t, 7u);
  // Model defaults like predict: omitted means "default".
  EXPECT_FALSE(with_tick->has_model);
}

TEST(ParseRequest, ObserveRequiresValue) {
  ProtocolError error;
  EXPECT_FALSE(parse_request(R"({"cmd":"observe","model":"m"})", error).has_value());
  EXPECT_EQ(error.code, ErrorCode::kBadRequest);
  EXPECT_NE(error.message.find("value"), std::string::npos) << error.message;
}

TEST(ParseRequest, ValueAndTickBelongToObserveAlone) {
  // An actual silently attached to another verb would be a lost
  // observation, so it fails loudly on every other cmd.
  ProtocolError error;
  EXPECT_FALSE(parse_request(R"({"window":[0.1],"value":1.0})", error).has_value());
  EXPECT_EQ(error.code, ErrorCode::kBadRequest);
  EXPECT_FALSE(parse_request(R"({"cmd":"ping","t":3})", error).has_value());
  EXPECT_EQ(error.code, ErrorCode::kBadRequest);
}

TEST(ParseRequest, ObserveRejectsMalformedValueAndTick) {
  ProtocolError error;
  EXPECT_FALSE(parse_request(R"({"cmd":"observe","value":"x"})", error).has_value());
  EXPECT_FALSE(parse_request(R"({"cmd":"observe","value":1.0,"t":-1})", error).has_value());
  EXPECT_FALSE(
      parse_request(R"({"cmd":"observe","value":1.0,"t":1.5})", error).has_value());
  EXPECT_FALSE(
      parse_request(R"({"cmd":"observe","value":1.0,"t":1e16})", error).has_value());
}

TEST(ParseRequest, QualityVerbOptionallyFiltersByModel) {
  ProtocolError error;
  const auto all = parse_request(R"({"cmd":"quality"})", error);
  ASSERT_TRUE(all.has_value()) << error.message;
  EXPECT_EQ(all->cmd, Request::Cmd::kQuality);
  EXPECT_FALSE(all->has_model);

  const auto one = parse_request(R"({"cmd":"quality","model":"demo"})", error);
  ASSERT_TRUE(one.has_value()) << error.message;
  EXPECT_TRUE(one->has_model);
  EXPECT_EQ(one->predict.model, "demo");
}

TEST(ProtocolV2, IntervalOnlyOnCoveredV2Responses) {
  ef::serve::PredictResponse response;
  response.ok = true;
  response.model = "m";
  response.version = 1;
  response.horizon = 1;
  response.value = 0.5;
  response.votes = 3;
  response.bound = 0.25;

  // v1 stays byte-compatible: no interval field, ever.
  Request v1;
  EXPECT_EQ(ef::serve::to_json(response, v1).find("interval"), std::string::npos);

  Request v2;
  v2.version = 2;
  const std::string line = ef::serve::to_json(response, v2);
  EXPECT_NE(line.find(R"("value":0.5,"interval":[0.25,0.75])"), std::string::npos)
      << line;

  // No bound (abstention-adjacent paths, multi-step chains): no interval.
  response.bound = -1.0;
  EXPECT_EQ(ef::serve::to_json(response, v2).find("interval"), std::string::npos);

  // Abstentions carry neither value nor interval, whatever the bound says.
  response.abstain = true;
  response.bound = 0.25;
  const std::string abstain_line = ef::serve::to_json(response, v2);
  EXPECT_EQ(abstain_line.find("interval"), std::string::npos) << abstain_line;
  EXPECT_EQ(abstain_line.find("\"value\""), std::string::npos) << abstain_line;
}

}  // namespace
