#include "series/mackey_glass.hpp"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace ef::series {
namespace {

/// Right-hand side of the delay ODE given current value s and delayed value sd.
[[nodiscard]] double rhs(double s, double sd, const MackeyGlassParams& p) {
  return -p.b * s + p.a * sd / (1.0 + std::pow(sd, p.exponent));
}

}  // namespace

TimeSeries generate_mackey_glass(std::size_t count, const MackeyGlassParams& params) {
  if (count == 0) throw std::invalid_argument("generate_mackey_glass: count must be > 0");
  if (params.dt <= 0.0) throw std::invalid_argument("generate_mackey_glass: dt must be > 0");
  if (params.lambda < 0.0) {
    throw std::invalid_argument("generate_mackey_glass: lambda must be >= 0");
  }

  const double steps_per_unit = 1.0 / params.dt;
  // Round to the nearest integer number of integrator steps per output sample
  // so sample instants fall exactly on grid points.
  const auto per_unit = static_cast<std::size_t>(std::llround(steps_per_unit));
  if (per_unit == 0 || std::abs(steps_per_unit - static_cast<double>(per_unit)) > 1e-9) {
    throw std::invalid_argument("generate_mackey_glass: 1/dt must be an integer");
  }

  const std::size_t total_steps = (count - 1) * per_unit;
  const double delay_steps_exact = params.lambda / params.dt;

  // history[i] = s(i * dt); seeded with the constant initial condition.
  std::vector<double> history;
  history.reserve(total_steps + 1);
  history.push_back(params.initial);

  // Delayed value at continuous step index q (may be fractional/negative).
  const auto delayed = [&](double q) -> double {
    if (q <= 0.0) return params.initial;
    const auto lo = static_cast<std::size_t>(q);
    const double frac = q - static_cast<double>(lo);
    if (lo + 1 >= history.size()) return history.back();
    return history[lo] * (1.0 - frac) + history[lo + 1] * frac;
  };

  for (std::size_t step = 0; step < total_steps; ++step) {
    const double s = history.back();
    const auto idx = static_cast<double>(step);
    // Delayed values needed at t, t+dt/2 and t+dt.
    const double sd0 = delayed(idx - delay_steps_exact);
    const double sdh = delayed(idx + 0.5 - delay_steps_exact);
    const double sd1 = delayed(idx + 1.0 - delay_steps_exact);

    const double k1 = rhs(s, sd0, params);
    const double k2 = rhs(s + 0.5 * params.dt * k1, sdh, params);
    const double k3 = rhs(s + 0.5 * params.dt * k2, sdh, params);
    const double k4 = rhs(s + params.dt * k3, sd1, params);
    history.push_back(s + params.dt / 6.0 * (k1 + 2.0 * k2 + 2.0 * k3 + k4));
  }

  std::vector<double> samples;
  samples.reserve(count);
  for (std::size_t i = 0; i < count; ++i) samples.push_back(history[i * per_unit]);
  return TimeSeries(std::move(samples), "mackey_glass");
}

MackeyGlassExperiment make_paper_mackey_glass(const MackeyGlassParams& params) {
  constexpr std::size_t kTotal = 5000;
  constexpr std::size_t kTrainBegin = 3500;
  constexpr std::size_t kTrainEnd = 4500;  // exclusive; paper: samples 3500..4499
  constexpr std::size_t kTestEnd = 5000;   // exclusive; paper: [4500, 5000)

  const TimeSeries full = generate_mackey_glass(kTotal, params);
  const TimeSeries train_raw = full.slice(kTrainBegin, kTrainEnd);
  const TimeSeries test_raw = full.slice(kTrainEnd, kTestEnd);

  const Normalizer norm = Normalizer::min_max(train_raw, 0.0, 1.0);
  return MackeyGlassExperiment{norm.transform(train_raw), norm.transform(test_raw), norm};
}

}  // namespace ef::series
