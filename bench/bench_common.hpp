// bench_common.hpp — shared plumbing for the table/figure reproduction
// benches: train-and-evaluate wrapper for the rule system, baseline runners,
// fixed-width table printing, and a tiny ASCII plotter for figure benches.
//
// Every bench accepts --full to switch from the scaled-down default to the
// paper-scale configuration, and --seed / --generations / … overrides so a
// sweep script can tune without recompiling.
#pragma once

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "baselines/forecaster.hpp"
#include "core/rule_system.hpp"
#include "obs/run_report.hpp"
#include "obs/trace.hpp"
#include "series/metrics.hpp"

namespace ef::bench {

/// Targets of a dataset as a flat vector (metrics take spans).
[[nodiscard]] inline std::vector<double> targets_of(const core::WindowDataset& data) {
  std::vector<double> out;
  out.reserve(data.count());
  for (std::size_t i = 0; i < data.count(); ++i) out.push_back(data.target(i));
  return out;
}

/// Outcome of one rule-system experiment on one horizon.
struct RuleSystemOutcome {
  series::CoverageReport report;  ///< coverage % + errors over covered subset
  std::size_t rules = 0;
  std::size_t executions = 0;
  double train_seconds = 0.0;
  core::RuleSystem system;
  series::PartialForecast forecast;
};

/// Train the rule system on `train` and evaluate on `validation`.
[[nodiscard]] inline RuleSystemOutcome run_rule_system(const core::WindowDataset& train,
                                                       const core::WindowDataset& validation,
                                                       const core::RuleSystemConfig& config) {
  RuleSystemOutcome out;
  const obs::ScopedTimer timer("bench.run_rule_system");
  // Sequential schedule: train_seconds must stay comparable across runs and
  // with the committed baselines, so the schedule is pinned rather than kAuto.
  auto result = core::train(train, {.config = config,
                                    .parallelism = core::TrainParallelism::kSequential});
  out.train_seconds = timer.elapsed_seconds();
  out.rules = result.system.size();
  out.executions = result.executions;
  out.forecast = result.system.forecast_dataset(validation);
  out.report = series::evaluate_partial(targets_of(validation), out.forecast);
  out.system = std::move(result.system);
  return out;
}

/// Outcome of one baseline on one horizon (always full coverage).
struct BaselineOutcome {
  double rmse = 0.0;
  double mse = 0.0;
  double nmse = 0.0;
  double train_seconds = 0.0;
};

[[nodiscard]] inline BaselineOutcome run_baseline(baselines::Forecaster& model,
                                                  const core::WindowDataset& train,
                                                  const core::WindowDataset& validation) {
  BaselineOutcome out;
  const obs::ScopedTimer timer("bench.run_baseline");
  model.fit(train);
  out.train_seconds = timer.elapsed_seconds();
  const auto predictions = model.predict_all(validation);
  const auto actual = targets_of(validation);
  out.rmse = series::rmse(actual, predictions);
  out.mse = series::mse(actual, predictions);
  out.nmse = series::nmse(actual, predictions);
  return out;
}

/// Galván-Isasi error (Table 3 metric) for a full-coverage prediction.
[[nodiscard]] inline double galvan_of(const std::vector<double>& actual,
                                      const std::vector<double>& predicted,
                                      std::size_t horizon) {
  return series::galvan_error(actual, predicted, horizon);
}

/// Galván error over the covered subset of a partial forecast.
[[nodiscard]] inline double galvan_partial(const std::vector<double>& actual,
                                           const series::PartialForecast& forecast,
                                           std::size_t horizon) {
  return series::galvan_error_partial(actual, forecast, horizon);
}

/// Parse a comma-separated list of sizes ("1,4,24"); empty/absent → empty
/// vector (callers treat that as "all").
[[nodiscard]] inline std::vector<std::size_t> parse_size_list(const std::string& text) {
  std::vector<std::size_t> out;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t comma = text.find(',', pos);
    const std::string token =
        text.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    if (!token.empty()) out.push_back(static_cast<std::size_t>(std::stoul(token)));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

/// True when `value` is in `filter`, or the filter is empty (= "all").
[[nodiscard]] inline bool selected(const std::vector<std::size_t>& filter,
                                   std::size_t value) {
  if (filter.empty()) return true;
  for (const std::size_t v : filter) {
    if (v == value) return true;
  }
  return false;
}

/// printf-style row formatting keeps the bench output aligned and grep-able.
inline void print_rule(char fill = '-', int width = 78) {
  for (int i = 0; i < width; ++i) std::putchar(fill);
  std::putchar('\n');
}

/// Render a set of series as a crude ASCII chart (for figure benches).
/// Each series is one glyph; overlapping points show the later series.
inline void ascii_plot(const std::vector<std::pair<char, std::vector<double>>>& curves,
                       int rows = 20) {
  if (curves.empty() || curves.front().second.empty()) return;
  double lo = curves.front().second.front();
  double hi = lo;
  std::size_t width = 0;
  for (const auto& [glyph, ys] : curves) {
    width = std::max(width, ys.size());
    for (const double y : ys) {
      lo = std::min(lo, y);
      hi = std::max(hi, y);
    }
  }
  if (hi == lo) hi = lo + 1.0;

  std::vector<std::string> canvas(static_cast<std::size_t>(rows), std::string(width, ' '));
  for (const auto& [glyph, ys] : curves) {
    for (std::size_t x = 0; x < ys.size(); ++x) {
      const double t = (ys[x] - lo) / (hi - lo);
      const int row = rows - 1 - static_cast<int>(t * (rows - 1) + 0.5);
      canvas[static_cast<std::size_t>(row)][x] = glyph;
    }
  }
  std::printf("%8.1f +%s\n", hi, std::string(width, '-').c_str());
  for (const auto& line : canvas) std::printf("         |%s\n", line.c_str());
  std::printf("%8.1f +%s\n", lo, std::string(width, '-').c_str());
}

}  // namespace ef::bench
