// bench_serve_throughput — load generator for the serving stack.
//
// Two modes:
//
//   in-process (default): drives ForecastService directly (no sockets: this
//   measures the serving machinery — cache, batcher, batch predict — not the
//   kernel's TCP stack) with N client threads issuing blocking predicts over
//   a pool of probe windows.
//
//   --tcp: open-loop multi-connection load against an in-process epoll
//   Reactor. Worker threads own non-blocking pipelined connections; a token
//   bucket issues requests at the offered --rate regardless of response
//   progress (so queueing delay is *measured*, not absorbed, the way a
//   closed-loop driver would). Latencies are taken from scheduled-send to
//   response arrival, matched per connection in request order (the protocol
//   guarantees in-order responses). Reports throughput, quantiles and a
//   log2 latency histogram; --bench-json writes the machine-readable
//   summary CI gates with scripts/check_serve_bench.py (BENCH_serve.json).
//
// A --reload-every-ms flag hot-swaps the model mid-load in either mode to
// demonstrate the RCU reload contract: every request must still succeed.
//
// Flags (both modes):
//   --window D           window length                    (default 6)
//   --rules R            synthetic rule count             (default 64)
//   --unique N           distinct probe windows (cache hit rate ~ 1-N/total)
//   --horizon H          steps ahead                      (default 1)
//   --no-cache           disable the prediction cache
//   --no-batch           disable the micro-batcher (inline predicts)
//   --batch-delay-us N   batcher coalescing delay         (default 200)
//   --reload-every-ms N  hot-swap the model every N ms    (default 0 = off)
//   --seed S             probe/rule RNG seed              (default 1)
//   --bench-json PATH    write the load-test summary as JSON
// In-process mode:
//   --clients N          concurrent client threads        (default 4)
//   --requests N         requests per client              (default 25000)
//   --metrics-json PATH  write the obs run report as JSON
//   --trace-out PATH     write the request timeline as Chrome trace JSON
//   --report             print the obs table at exit
// TCP mode:
//   --tcp                enable the open-loop socket mode
//   --connections N      pipelined connections            (default 64)
//   --rate R             offered load, req/s, 0 = closed-loop saturation
//                        at --pipeline depth               (default 0)
//   --pipeline N         per-connection in-flight cap      (default 32)
//   --duration-s S       measurement window                (default 5)
//   --io-threads K       client worker threads             (default 2)
//   --reactors N         server reactor shards             (default 0 = auto)
//   --p99-slo-us N       exit non-zero when p99 exceeds N  (default 0 = off)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <deque>
#include <string>
#include <thread>
#include <vector>

#include "core/interval.hpp"
#include "core/rule.hpp"
#include "core/rule_system.hpp"
#include "obs/export.hpp"
#include "obs/timeline.hpp"
#include "obs/timeline_export.hpp"
#include "serve/model_store.hpp"
#include "serve/reactor.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

#if defined(__linux__)
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#endif

namespace {

using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleSystem;

/// Synthetic rule set over [0,1]^window: random boxes (some wildcard genes)
/// with random hyperplanes. Deterministic in `seed` so baselines compare.
RuleSystem synthetic_system(std::size_t rules, std::size_t window, std::uint64_t seed) {
  ef::util::Rng rng(seed);
  std::vector<Rule> out;
  out.reserve(rules);
  for (std::size_t r = 0; r < rules; ++r) {
    std::vector<Interval> genes;
    genes.reserve(window);
    for (std::size_t g = 0; g < window; ++g) {
      if (rng.uniform(0.0, 1.0) < 0.3) {
        genes.emplace_back(Interval::wildcard());
      } else {
        const double lo = rng.uniform(0.0, 0.7);
        genes.emplace_back(lo, lo + rng.uniform(0.2, 0.3));
      }
    }
    Rule rule(std::move(genes));
    ef::core::PredictingPart part;
    part.fit.coeffs.reserve(window + 1);
    for (std::size_t c = 0; c <= window; ++c) {
      part.fit.coeffs.push_back(rng.uniform(-0.3, 0.3));
    }
    part.fit.mean_prediction = part.fit.coeffs.back();
    part.fit.max_abs_residual = rng.uniform(0.01, 0.1);
    part.matches = 10;
    part.fitness = rng.uniform(0.5, 5.0);
    rule.set_predicting(part);
    out.push_back(std::move(rule));
  }
  RuleSystem system;
  system.add_rules(std::move(out), /*discard_unfit=*/false, /*f_min=*/-1.0);
  return system;
}

double quantile(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const auto idx = static_cast<std::size_t>(q * static_cast<double>(sorted.size() - 1));
  return sorted[idx];
}

/// Shared run summary, written by whichever mode ran.
struct Summary {
  std::string mode;
  std::size_t connections = 0;
  double offered_rps = 0.0;  // 0 = closed loop
  std::size_t requests = 0;
  double elapsed_s = 0.0;
  std::size_t ok = 0;
  std::size_t abstained = 0;
  std::size_t failed = 0;
  std::vector<double> latencies_us;  // sorted by the writer
};

bool write_bench_json(const std::string& path, const Summary& s) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const double achieved =
      s.elapsed_s > 0 ? static_cast<double>(s.requests) / s.elapsed_s : 0.0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"mode\": \"%s\",\n", s.mode.c_str());
  std::fprintf(f,
               "  \"config\": {\"connections\": %zu, \"offered_rps\": %.1f},\n",
               s.connections, s.offered_rps);
  std::fprintf(f,
               "  \"throughput\": {\"requests\": %zu, \"elapsed_s\": %.3f, "
               "\"achieved_rps\": %.1f},\n",
               s.requests, s.elapsed_s, achieved);
  std::fprintf(f,
               "  \"outcomes\": {\"ok\": %zu, \"abstained\": %zu, \"failed\": %zu},\n",
               s.ok, s.abstained, s.failed);
  std::fprintf(f,
               "  \"latency_us\": {\"p50\": %.2f, \"p90\": %.2f, \"p99\": %.2f, "
               "\"p999\": %.2f, \"max\": %.2f},\n",
               quantile(s.latencies_us, 0.50), quantile(s.latencies_us, 0.90),
               quantile(s.latencies_us, 0.99), quantile(s.latencies_us, 0.999),
               s.latencies_us.empty() ? 0.0 : s.latencies_us.back());
  // log2 histogram, 1us .. 2^20us, then +inf — same shape the obs registry
  // uses, so dashboards can overlay the two.
  std::fprintf(f, "  \"histogram_us\": [");
  double le = 1.0;
  std::size_t covered = 0;
  for (int b = 0; b <= 20; ++b, le *= 2.0) {
    const auto it = std::upper_bound(s.latencies_us.begin(), s.latencies_us.end(), le);
    const auto cum = static_cast<std::size_t>(it - s.latencies_us.begin());
    std::fprintf(f, "%s{\"le\": %.0f, \"count\": %zu}", b ? ", " : "", le, cum - covered);
    covered = cum;
  }
  std::fprintf(f, ", {\"le\": \"inf\", \"count\": %zu}]\n",
               s.latencies_us.size() - covered);
  std::fprintf(f, "}\n");
  std::fclose(f);
  return true;
}

void print_summary(const Summary& s) {
  std::printf("  throughput : %10.0f req/s (%zu requests in %.2fs%s)\n",
              s.elapsed_s > 0 ? static_cast<double>(s.requests) / s.elapsed_s : 0.0,
              s.requests, s.elapsed_s,
              s.offered_rps > 0
                  ? (", offered " + std::to_string(static_cast<long>(s.offered_rps)) +
                     " req/s")
                        .c_str()
                  : "");
  std::printf("  latency    : p50 %8.1f us   p90 %8.1f us   p99 %8.1f us   max %8.1f us\n",
              quantile(s.latencies_us, 0.50), quantile(s.latencies_us, 0.90),
              quantile(s.latencies_us, 0.99),
              s.latencies_us.empty() ? 0.0 : s.latencies_us.back());
  std::printf("  outcomes   : ok %zu   abstained %zu (%.1f%%)   failed %zu\n", s.ok,
              s.abstained,
              s.requests ? 100.0 * static_cast<double>(s.abstained) /
                               static_cast<double>(s.requests)
                         : 0.0,
              s.failed);
}

#if defined(__linux__)

/// One non-blocking pipelined connection owned by a TCP-mode worker.
struct BenchConn {
  int fd = -1;
  std::string out;              ///< bytes not yet accepted by the socket
  std::string in;               ///< bytes not yet framed into lines
  std::deque<double> inflight;  ///< scheduled-send stamps, request order
};

struct TcpWorkerResult {
  std::size_t ok = 0;
  std::size_t abstained = 0;
  std::size_t failed = 0;
  std::vector<double> latencies_us;
};

double now_us(std::chrono::steady_clock::time_point epoch) {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   epoch)
      .count();
}

int connect_nonblocking(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

/// Drain socket progress for one connection: push pending output, pull and
/// frame responses, record latencies. Returns false on connection failure.
bool pump(BenchConn& conn, TcpWorkerResult& result,
          std::chrono::steady_clock::time_point epoch) {
  while (!conn.out.empty()) {
    const auto n = ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else {
      return false;
    }
  }
  for (;;) {
    char chunk[16384];
    const auto n = ::recv(conn.fd, chunk, sizeof(chunk), 0);
    if (n > 0) {
      conn.in.append(chunk, static_cast<std::size_t>(n));
    } else if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      break;
    } else {
      return false;
    }
  }
  std::size_t start = 0;
  for (;;) {
    const std::size_t newline = conn.in.find('\n', start);
    if (newline == std::string::npos) break;
    const std::string_view line(conn.in.data() + start, newline - start);
    start = newline + 1;
    if (conn.inflight.empty()) return false;  // unsolicited response
    result.latencies_us.push_back(now_us(epoch) - conn.inflight.front());
    conn.inflight.pop_front();
    if (line.find("\"ok\":true") == std::string_view::npos) {
      ++result.failed;
    } else if (line.find("\"abstain\":true") != std::string_view::npos) {
      ++result.abstained;
      ++result.ok;
    } else {
      ++result.ok;
    }
  }
  conn.in.erase(0, start);
  return true;
}

#endif  // defined(__linux__)

}  // namespace

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const auto window = static_cast<std::size_t>(cli.get_int("window", 6));
  const auto rules = static_cast<std::size_t>(cli.get_int("rules", 64));
  const auto unique = static_cast<std::size_t>(cli.get_int("unique", 512));
  const auto horizon = static_cast<std::size_t>(cli.get_int("horizon", 1));
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const auto reload_every_ms = cli.get_int("reload-every-ms", 0);
  const std::string bench_json = cli.get_string("bench-json", "");
  const std::string trace_out = cli.get_string("trace-out", "");
  if (!trace_out.empty() && !ef::obs::Timeline::enabled()) {
    ef::obs::Timeline::set_sample_rate(1.0);
  }

  ef::serve::ModelStore store;
  store.add_system("bench", synthetic_system(rules, window, seed));

  ef::serve::ServeOptions options;
  options.enable_cache = !cli.get_bool("no-cache");
  options.enable_batcher = !cli.get_bool("no-batch");
  options.batcher.max_delay =
      std::chrono::microseconds(cli.get_int("batch-delay-us", 200));
  options.port = 0;  // ephemeral (TCP mode)
  options.reactor_threads = static_cast<std::size_t>(cli.get_int("reactors", 0));
  ef::serve::ForecastService service(store, options);

  // Probe pool: windows in a slightly enlarged range so a realistic fraction
  // of requests abstain (uncovered regions answer explicitly, per the paper).
  ef::util::Rng rng(seed + 1);
  std::vector<std::vector<double>> probes(unique);
  for (auto& probe : probes) {
    probe.reserve(window);
    for (std::size_t i = 0; i < window; ++i) probe.push_back(rng.uniform(-0.1, 1.1));
  }

  std::atomic<bool> reloading{reload_every_ms > 0};
  std::thread reloader;
  if (reload_every_ms > 0) {
    reloader = std::thread([&] {
      std::uint64_t generation = 1;
      while (reloading.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(reload_every_ms));
        store.add_system("bench", synthetic_system(rules, window, seed + generation++));
      }
    });
  }
  const auto stop_reloader = [&] {
    if (reloader.joinable()) {
      reloading = false;
      reloader.join();
    }
  };

  Summary summary;

  if (cli.get_bool("tcp")) {
#if !defined(__linux__)
    std::fprintf(stderr, "bench_serve_throughput: --tcp requires Linux (epoll)\n");
    return 1;
#else
    const auto connections = static_cast<std::size_t>(cli.get_int("connections", 64));
    const double rate = cli.get_double("rate", 0.0);
    const auto pipeline = static_cast<std::size_t>(cli.get_int("pipeline", 32));
    const double duration_s = cli.get_double("duration-s", 5.0);
    const auto io_threads =
        std::min<std::size_t>(static_cast<std::size_t>(cli.get_int("io-threads", 2)),
                              connections);

    ef::serve::Reactor reactor(service);
    reactor.start();
    const std::uint16_t port = reactor.port();

    // Pre-render request lines (the probe pool cycled) so the hot loop only
    // appends strings.
    std::vector<std::string> lines(probes.size());
    for (std::size_t i = 0; i < probes.size(); ++i) {
      std::string& line = lines[i];
      line = R"({"model":"bench","horizon":)" + std::to_string(horizon) +
             R"(,"window":[)";
      for (std::size_t v = 0; v < probes[i].size(); ++v) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%s%.6f", v ? "," : "", probes[i][v]);
        line += buf;
      }
      line += "]}\n";
    }

    std::vector<TcpWorkerResult> results(io_threads);
    std::atomic<bool> connect_failed{false};
    const auto epoch = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < io_threads; ++w) {
      workers.emplace_back([&, w] {
        TcpWorkerResult& result = results[w];
        const std::size_t mine =
            connections / io_threads + (w < connections % io_threads ? 1 : 0);
        std::vector<BenchConn> conns(mine);
        std::vector<pollfd> pfds(mine);
        for (auto& conn : conns) {
          conn.fd = connect_nonblocking(port);
          if (conn.fd < 0) {
            connect_failed = true;
            return;
          }
        }
        // Per-worker token bucket; 0 rate = closed loop at `pipeline` depth.
        const double worker_rate = rate / static_cast<double>(io_threads);
        double tokens = 0.0;
        double last = now_us(epoch);
        const double deadline_us = duration_s * 1e6;
        std::size_t rr = 0;
        std::size_t probe = w;  // offset workers so caches overlap realistically
        bool issuing = true;
        while (true) {
          const double t = now_us(epoch);
          if (issuing && t >= deadline_us) issuing = false;
          if (issuing) {
            if (rate > 0) {
              tokens = std::min(tokens + (t - last) * 1e-6 * worker_rate,
                                std::max(1.0, worker_rate * 0.01));
              last = t;
              while (tokens >= 1.0) {
                BenchConn& conn = conns[rr++ % conns.size()];
                tokens -= 1.0;
                if (conn.inflight.size() >= pipeline) continue;  // token spent: overload
                conn.out += lines[probe++ % lines.size()];
                conn.inflight.push_back(t);
              }
            } else {
              last = t;
              for (auto& conn : conns) {
                while (conn.inflight.size() < pipeline) {
                  conn.out += lines[probe++ % lines.size()];
                  conn.inflight.push_back(now_us(epoch));
                }
              }
            }
          }
          bool pending = false;
          for (std::size_t i = 0; i < conns.size(); ++i) {
            if (conns[i].fd < 0) continue;
            if (!pump(conns[i], result, epoch)) {
              result.failed += conns[i].inflight.size();
              ::close(conns[i].fd);
              conns[i].fd = -1;
              continue;
            }
            if (!conns[i].inflight.empty() || !conns[i].out.empty()) pending = true;
          }
          if (!issuing && !pending) break;
          if (!issuing && t > deadline_us + 5e6) {  // 5s drain grace
            for (auto& conn : conns) result.failed += conn.inflight.size();
            break;
          }
          // Block briefly on readability instead of spinning.
          std::size_t n = 0;
          for (const auto& conn : conns) {
            if (conn.fd < 0) continue;
            pfds[n++] = pollfd{conn.fd, static_cast<short>(POLLIN), 0};
          }
          if (n == 0) break;
          ::poll(pfds.data(), n, 1);
        }
        for (auto& conn : conns) {
          if (conn.fd >= 0) ::close(conn.fd);
        }
      });
    }
    for (auto& worker : workers) worker.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - epoch).count();
    stop_reloader();
    reactor.stop();

    if (connect_failed.load()) {
      std::fprintf(stderr, "bench_serve_throughput: loopback connect failed\n");
      return 1;
    }

    summary.mode = "tcp_open_loop";
    summary.connections = connections;
    summary.offered_rps = rate;
    summary.elapsed_s = elapsed;
    for (auto& result : results) {
      summary.ok += result.ok;
      summary.abstained += result.abstained;
      summary.failed += result.failed;
      summary.latencies_us.insert(summary.latencies_us.end(),
                                  result.latencies_us.begin(),
                                  result.latencies_us.end());
    }
    summary.requests = summary.ok + summary.failed;
    std::sort(summary.latencies_us.begin(), summary.latencies_us.end());

    std::printf("bench_serve_throughput: tcp open-loop, %zu connections x pipeline %zu "
                "over %zu io threads, %zu reactor shards (window %zu, rules %zu, "
                "cache %s, batcher %s%s)\n",
                connections, pipeline, io_threads, reactor.shard_count(), window, rules,
                options.enable_cache ? "on" : "off",
                options.enable_batcher ? "on" : "off",
                reload_every_ms > 0 ? ", hot-reload on" : "");
    print_summary(summary);
#endif
  } else {
    const auto clients = static_cast<std::size_t>(cli.get_int("clients", 4));
    const auto requests = static_cast<std::size_t>(cli.get_int("requests", 25000));

    std::atomic<std::size_t> ok{0};
    std::atomic<std::size_t> abstained{0};
    std::atomic<std::size_t> failed{0};
    std::vector<std::vector<double>> latencies_us(clients);

    const auto start = std::chrono::steady_clock::now();
    std::vector<std::thread> workers;
    workers.reserve(clients);
    for (std::size_t c = 0; c < clients; ++c) {
      workers.emplace_back([&, c] {
        auto& lat = latencies_us[c];
        lat.reserve(requests);
        ef::serve::PredictRequest req;
        req.model = "bench";
        req.horizon = horizon;
        for (std::size_t i = 0; i < requests; ++i) {
          req.window = probes[(c * 7919 + i) % probes.size()];
          const auto t0 = std::chrono::steady_clock::now();
          const auto response = service.predict(req);
          lat.push_back(std::chrono::duration<double, std::micro>(
                            std::chrono::steady_clock::now() - t0)
                            .count());
          if (!response.ok) {
            ++failed;
          } else if (response.abstain) {
            ++abstained;
            ++ok;
          } else {
            ++ok;
          }
        }
      });
    }
    for (auto& w : workers) w.join();
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    stop_reloader();

    summary.mode = "in_process";
    summary.connections = clients;
    summary.elapsed_s = elapsed;
    summary.requests = clients * requests;
    summary.ok = ok.load();
    summary.abstained = abstained.load();
    summary.failed = failed.load();
    for (const auto& lat : latencies_us) {
      summary.latencies_us.insert(summary.latencies_us.end(), lat.begin(), lat.end());
    }
    std::sort(summary.latencies_us.begin(), summary.latencies_us.end());

    const auto cache = service.cache_stats();
    const double hit_rate =
        cache.hits + cache.misses == 0
            ? 0.0
            : static_cast<double>(cache.hits) /
                  static_cast<double>(cache.hits + cache.misses);

    std::printf("bench_serve_throughput: %zu clients x %zu requests (window %zu, "
                "rules %zu, horizon %zu, cache %s, batcher %s%s)\n",
                clients, requests, window, rules, horizon,
                options.enable_cache ? "on" : "off",
                options.enable_batcher ? "on" : "off",
                reload_every_ms > 0 ? ", hot-reload on" : "");
    print_summary(summary);
    std::printf("  cache      : hits %llu   misses %llu   evictions %llu   "
                "hit rate %.1f%%\n",
                static_cast<unsigned long long>(cache.hits),
                static_cast<unsigned long long>(cache.misses),
                static_cast<unsigned long long>(cache.evictions), 100.0 * hit_rate);

    if (const auto path = cli.get("metrics-json")) {
      ef::obs::write_json_file(*path);
      std::printf("  metrics    : wrote %s\n", path->c_str());
    }
    if (!trace_out.empty()) {
      if (ef::obs::write_chrome_trace_file(trace_out)) {
        std::printf("  trace      : wrote %s\n", trace_out.c_str());
      } else {
        std::fprintf(stderr, "bench_serve_throughput: cannot write '%s'\n",
                     trace_out.c_str());
        return 1;
      }
    }
    if (cli.get_bool("report")) ef::obs::print_report();
  }

  if (!bench_json.empty()) {
    if (!write_bench_json(bench_json, summary)) {
      std::fprintf(stderr, "bench_serve_throughput: cannot write '%s'\n",
                   bench_json.c_str());
      return 1;
    }
    std::printf("  bench json : wrote %s\n", bench_json.c_str());
  }

  const double slo_us = cli.get_double("p99-slo-us", 0.0);
  if (slo_us > 0.0) {
    const double p99 = quantile(summary.latencies_us, 0.99);
    if (p99 > slo_us) {
      std::fprintf(stderr, "bench_serve_throughput: p99 %.1f us exceeds SLO %.1f us\n",
                   p99, slo_us);
      return 1;
    }
    std::printf("  slo        : p99 %.1f us within %.1f us\n", p99, slo_us);
  }

  return summary.failed == 0 ? 0 : 1;
}
