#!/usr/bin/env python3
"""Fleet end-to-end smoke test: eftrain -> .efr v2 container -> efserve (CI).

Usage: fleet_smoke.py EFTRAIN_BINARY EFSERVE_BINARY [WORKDIR]

Drives the whole fleet pipeline on a ~50-series synthetic corpus:

  1. eftrain --synthetic 50: train one rule system per series in parallel,
     pack the fleet into a v2 container, run the rolling-origin corpus
     evaluation, and emit BENCH_fleet.json (validated in-process with
     check_fleet_bench, --min-series 50).
  2. eftrain --list / --extract: index listing is complete and sorted;
     one series extracts back to v1 text (the bit-identity bridge).
  3. efserve --container: the models verb reports the container section
     (generation, series_total, capped id list), a container-backed series
     answers predictions with values BIT-IDENTICAL to the same model served
     from its extracted v1 file, lazy materialisation shows up in the
     "materialized" counter, and the service cache works for series ids.
  4. Hot repack: publish a retrained container over the served path
     (temp + rename, the format's atomic-publish contract); the poller must
     swap the whole fleet in one generation bump with zero failed requests.
  5. Graceful SIGTERM shutdown.

Exits non-zero on the first failed check.
"""
import json
import math
import os
import signal
import socket
import subprocess
import sys
import tempfile
import time

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_fleet_bench  # noqa: E402  (sibling module, no package)

FLEET_SERIES = 50
REPACK_SERIES = 10
# Matches the i % 3 == 0 synthetic rotation in eftrain (sine, amplitude
# 0.6 + 0.05*(i%9), period 8 + i%37, phase 0.1*(i%63)) for i == 0.
SINE_ID = "synthetic-000000"
WINDOW = 6

FAILURES = []


def check(name, ok, detail=""):
    status = "ok" if ok else "FAIL"
    print(f"  [{status}] {name}{': ' + str(detail) if detail and not ok else ''}")
    if not ok:
        FAILURES.append(name)


def run(argv, **kwargs):
    print(f"  $ {' '.join(argv)}")
    return subprocess.run(argv, capture_output=True, text=True, timeout=600,
                          **kwargs)


def sine_window(phase):
    """A window on series synthetic-000000's attractor (noise_sd 0.02)."""
    return [0.6 * math.sin(2.0 * math.pi * (phase + t) / 8.0)
            for t in range(WINDOW)]


class Client:
    def __init__(self, port):
        self.sock = socket.create_connection(("127.0.0.1", port), timeout=10)
        self.reader = self.sock.makefile("r")

    def request(self, obj):
        line = obj if isinstance(obj, str) else json.dumps(obj)
        self.sock.sendall((line + "\n").encode())
        response = self.reader.readline().strip()
        try:
            return json.loads(response)
        except json.JSONDecodeError:
            return {"_raw": response}

    def close(self):
        self.sock.close()


def launch_server(efserve, args):
    """Start efserve on an ephemeral port; returns (proc, port) or (None, None)."""
    proc = subprocess.Popen([efserve, *args, "--port", "0", "--poll-ms", "100"],
                            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                            text=True)
    deadline = time.time() + 30
    while time.time() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        print(f"  server: {line.rstrip()}")
        if "listening on" in line:
            return proc, int(line.rsplit(":", 1)[1].split()[0])
    proc.kill()
    proc.wait()
    print("  server stderr:", proc.stderr.read())
    return None, None


def main():
    if len(sys.argv) not in (3, 4):
        print(__doc__)
        return 2
    eftrain, efserve = sys.argv[1], sys.argv[2]
    workdir = sys.argv[3] if len(sys.argv) == 4 else tempfile.mkdtemp(
        prefix="fleet_smoke.")
    os.makedirs(workdir, exist_ok=True)
    container = os.path.join(workdir, "fleet.efr2")
    bench_json = os.path.join(workdir, "BENCH_fleet.json")
    extracted = os.path.join(workdir, "extracted.efr")

    # -- 1. train + pack + evaluate ------------------------------------------
    print("fleet_smoke: training %d-series synthetic fleet" % FLEET_SERIES)
    metrics_json = os.path.join(workdir, "train_metrics.json")
    train = run([eftrain, "--synthetic", str(FLEET_SERIES), "--length", "240",
                 "--population", "24", "--generations", "150",
                 "--out", container, "--evaluate", "--bench-json", bench_json,
                 "--metrics-json", metrics_json])
    check("eftrain exits 0", train.returncode == 0, train.stderr[-2000:])
    check("container written", os.path.isfile(container))
    check("bench json written", os.path.isfile(bench_json))
    if FAILURES:
        return 1

    # The first engine construction resolves a match backend and bumps the
    # one-time match.backend.<name>.selected counter — training a whole
    # fleet must have selected exactly one backend per process.
    with open(metrics_json) as f:
        metrics = json.load(f)
    selected = [name for name in metrics.get("counters", {})
                if name.startswith("match.backend.") and name.endswith(".selected")]
    check("training selected a match backend", len(selected) >= 1,
          sorted(metrics.get("counters", {})))

    saved_argv = sys.argv
    sys.argv = ["check_fleet_bench.py", bench_json,
                "--min-series", str(FLEET_SERIES)]
    try:
        check("check_fleet_bench passes", check_fleet_bench.main() == 0)
    finally:
        sys.argv = saved_argv
        check_fleet_bench.FAILURES.clear()

    # -- 2. list + extract ----------------------------------------------------
    listing = run([eftrain, "--list", container])
    ids = [line.split()[0] for line in listing.stdout.splitlines()
           if line.strip().startswith("synthetic-")]
    check("list exits 0", listing.returncode == 0, listing.stderr)
    check(f"list shows {FLEET_SERIES} series", len(ids) == FLEET_SERIES,
          f"got {len(ids)}")
    check("list order is sorted", ids == sorted(ids))
    check("first id present", SINE_ID in ids)

    extract = run([eftrain, "--extract", SINE_ID, "--container", container,
                   "--out", extracted])
    check("extract exits 0", extract.returncode == 0, extract.stderr)
    with open(extracted) as f:
        first_line = f.readline()
    check("extract emits v1 text", first_line.startswith("evoforecast-rules v1"),
          first_line)

    # -- 3. serve from the container -----------------------------------------
    # `twin` is the same model served from its extracted v1 file: predictions
    # through both paths must agree bit-for-bit.
    proc, port = launch_server(efserve, [f"twin={extracted}",
                                         "--container", container])
    check("server reports its port", proc is not None)
    if proc is None:
        return 1

    try:
        client = Client(port)
        models = client.request({"cmd": "models"})
        info = models.get("container", {})
        check("models verb ok", models.get("ok") is True, models)
        check("named model listed alongside container",
              any(m.get("name") == "twin" for m in models.get("models", [])),
              models)
        check("container section present", bool(info), models)
        check("container generation 1", info.get("generation") == 1, info)
        check(f"container series_total {FLEET_SERIES}",
              info.get("series_total") == FLEET_SERIES, info)
        check("container id list complete (under cap)",
              info.get("series") == ids, info.get("series", [])[:3])
        check("nothing materialized before first request",
              info.get("materialized") == 0, info)

        covered = None
        for phase in [p / 2.0 for p in range(16)]:
            window = sine_window(phase)
            r = client.request({"model": SINE_ID, "window": window})
            check_ok = r.get("ok") is True
            if not check_ok:
                check("container predict request ok", False, r)
                break
            if not r.get("abstain"):
                covered = (window, r)
                break
        check("container series yields a prediction", covered is not None)
        if covered is None:
            raise SystemExit(1)
        window, via_container = covered

        via_v1 = client.request({"model": "twin", "window": window})
        check("extracted twin predicts", via_v1.get("ok") is True
              and not via_v1.get("abstain"), via_v1)
        check("container == extracted v1 value (bit-identity)",
              via_container.get("value") == via_v1.get("value"),
              (via_container.get("value"), via_v1.get("value")))
        check("container == extracted v1 votes",
              via_container.get("votes") == via_v1.get("votes"),
              (via_container.get("votes"), via_v1.get("votes")))

        warm = client.request({"model": SINE_ID, "window": window})
        check("container series warm hit cached", warm.get("cached") is True,
              warm)
        check("warm value identical", warm.get("value") ==
              via_container.get("value"), warm)

        info = client.request({"cmd": "models"}).get("container", {})
        check("materialized counter advanced", info.get("materialized", 0) >= 1,
              info)

        r = client.request({"model": "synthetic-999999",
                            "window": [0.0] * WINDOW})
        check("unknown series rejected", r.get("ok") is False and r.get("error"),
              r)

        # -- 4. hot repack ----------------------------------------------------
        print("fleet_smoke: repacking a %d-series fleet over the served path"
              % REPACK_SERIES)
        repack = os.path.join(workdir, "fleet2.efr2")
        retrain = run([eftrain, "--synthetic", str(REPACK_SERIES), "--length",
                       "240", "--population", "24", "--generations", "150",
                       "--seed", "7", "--out", repack])
        check("repack training exits 0", retrain.returncode == 0,
              retrain.stderr[-2000:])
        os.replace(repack, container)  # atomic publish, fresh mtime

        swapped = None
        for _ in range(100):
            time.sleep(0.1)
            r = client.request({"model": SINE_ID, "window": window,
                                "cache": False})
            if not r.get("ok"):
                check("request during repack", False, r)
                break
            info = client.request({"cmd": "models"}).get("container", {})
            if info.get("generation", 1) >= 2:
                swapped = info
                break
        check("repack swapped in (generation bumped)", swapped is not None)
        if swapped:
            check(f"repacked series_total {REPACK_SERIES}",
                  swapped.get("series_total") == REPACK_SERIES, swapped)
            # The probe request that noticed the swap may itself have
            # materialized one series against the new generation; anything
            # beyond that means the old cache leaked across.
            check("repack starts with a cold materialize cache",
                  swapped.get("materialized", 99) <= 1, swapped)
            r = client.request({"model": f"synthetic-{FLEET_SERIES - 1:06d}",
                                "window": [0.0] * WINDOW})
            check("series dropped by repack now rejected",
                  r.get("ok") is False, r)
            r = client.request({"model": SINE_ID, "window": window,
                                "cache": False})
            check("surviving series still predicts after repack",
                  r.get("ok") is True, r)

        client.close()

        # -- 5. graceful shutdown --------------------------------------------
        proc.send_signal(signal.SIGTERM)
        try:
            rc = proc.wait(timeout=15)
            check("graceful SIGTERM shutdown", rc == 0, f"exit {rc}")
        except subprocess.TimeoutExpired:
            check("graceful SIGTERM shutdown", False, "timeout")
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    if FAILURES:
        print(f"fleet_smoke: {len(FAILURES)} check(s) failed")
        return 1
    print("fleet_smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
