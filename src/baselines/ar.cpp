#include "baselines/ar.hpp"

#include <numeric>
#include <stdexcept>

namespace ef::baselines {

void ArModel::fit(const core::WindowDataset& train) {
  std::vector<std::size_t> all(train.count());
  std::iota(all.begin(), all.end(), 0);
  fit_ = core::fit_hyperplane(train, all, config_.regression);
  fitted_ = true;
}

double ArModel::predict(std::span<const double> window) const {
  if (!fitted_) throw std::logic_error("ArModel::predict before fit");
  return fit_.predict(window);
}

const core::LinearFit& ArModel::fit_result() const {
  if (!fitted_) throw std::logic_error("ArModel::fit_result before fit");
  return fit_;
}

}  // namespace ef::baselines
