// Tests for serve/model_store.hpp: registration, versioning, mtime-driven
// hot-reload, corrupt-reload resilience, and RCU liveness (old snapshots
// stay valid while readers hold them, across concurrent reload traffic).
#include "serve/model_store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "core/rule_system.hpp"

namespace {

using ef::core::Interval;
using ef::core::Rule;
using ef::core::RuleSystem;
using ef::serve::LoadedModel;
using ef::serve::ModelStore;

/// One-rule system predicting the constant `value` on windows in [0,1]^2.
RuleSystem constant_system(double value) {
  Rule rule({Interval(0.0, 1.0), Interval(0.0, 1.0)});
  ef::core::PredictingPart part;
  part.fit.coeffs = {0.0, 0.0, value};
  part.fit.mean_prediction = value;
  part.fit.max_abs_residual = 0.01;
  part.matches = 4;
  part.fitness = 2.0;
  rule.set_predicting(part);
  RuleSystem system;
  system.add_rules({rule}, false, -1.0);
  return system;
}

std::filesystem::path temp_model_path(const char* name) {
  return std::filesystem::temp_directory_path() / name;
}

void write_model(const std::filesystem::path& path, const RuleSystem& system) {
  std::ofstream out(path);
  ASSERT_TRUE(out.is_open());
  system.save(out);
}

/// Force an mtime the poller is guaranteed to see as changed, regardless of
/// filesystem timestamp granularity.
void bump_mtime(const std::filesystem::path& path) {
  const auto now = std::filesystem::last_write_time(path);
  std::filesystem::last_write_time(path, now + std::chrono::seconds(2));
}

TEST(ModelStore, AddSystemAndGet) {
  ModelStore store;
  store.add_system("a", constant_system(1.0));
  store.add_system("b", constant_system(2.0));
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.names(), (std::vector<std::string>{"a", "b"}));

  const auto a = store.get("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->name(), "a");
  EXPECT_EQ(a->version(), 1u);
  EXPECT_EQ(a->window(), 2u);
  EXPECT_EQ(store.get("missing"), nullptr);

  const std::vector<double> window{0.5, 0.5};
  const auto p = a->forecast(window);
  ASSERT_FALSE(p.abstained);
  EXPECT_DOUBLE_EQ(p.value, 1.0);
  EXPECT_EQ(p.votes, 1u);
}

TEST(ModelStore, ReplacingBumpsVersionAndTag) {
  ModelStore store;
  store.add_system("m", constant_system(1.0));
  const auto v1 = store.get("m");
  store.add_system("m", constant_system(5.0));
  const auto v2 = store.get("m");
  ASSERT_NE(v1, nullptr);
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v1->version(), 1u);
  EXPECT_EQ(v2->version(), 2u);
  EXPECT_NE(v1->tag(), v2->tag());
  // The old snapshot stays alive and keeps answering with the old model.
  EXPECT_DOUBLE_EQ(v1->forecast(std::vector<double>{0.5, 0.5}).value, 1.0);
  EXPECT_DOUBLE_EQ(v2->forecast(std::vector<double>{0.5, 0.5}).value, 5.0);
}

TEST(ModelStore, FileLoadAndHotReload) {
  const auto path = temp_model_path("efserve_test_reload.efr");
  write_model(path, constant_system(1.0));

  ModelStore store;
  store.add_file("m", path.string());
  const auto v1 = store.get("m");
  ASSERT_NE(v1, nullptr);
  EXPECT_EQ(v1->version(), 1u);

  // Unchanged file: poll is a no-op.
  EXPECT_EQ(store.poll_now(), 0u);
  EXPECT_EQ(store.get("m")->tag(), v1->tag());

  // Swap the on-disk model; the poller must pick it up and bump the version.
  write_model(path, constant_system(9.0));
  bump_mtime(path);
  EXPECT_EQ(store.poll_now(), 1u);
  const auto v2 = store.get("m");
  ASSERT_NE(v2, nullptr);
  EXPECT_EQ(v2->version(), 2u);
  EXPECT_DOUBLE_EQ(v2->forecast(std::vector<double>{0.5, 0.5}).value, 9.0);
  // The pre-reload snapshot held by an in-flight request is untouched.
  EXPECT_DOUBLE_EQ(v1->forecast(std::vector<double>{0.5, 0.5}).value, 1.0);

  std::filesystem::remove(path);
}

TEST(ModelStore, CorruptReloadKeepsServingOldVersion) {
  const auto path = temp_model_path("efserve_test_corrupt.efr");
  write_model(path, constant_system(3.0));

  ModelStore store;
  store.add_file("m", path.string());
  const auto before = store.get("m");

  {
    std::ofstream out(path);
    out << "evoforecast-rules v1\n999999999\ngarbage";
  }
  bump_mtime(path);
  EXPECT_EQ(store.poll_now(), 0u);  // reload failed...
  const auto after = store.get("m");
  ASSERT_NE(after, nullptr);
  EXPECT_EQ(after->tag(), before->tag());  // ...old version still serving
  EXPECT_DOUBLE_EQ(after->forecast(std::vector<double>{0.5, 0.5}).value, 3.0);

  // And once the file is healthy again, reload succeeds.
  write_model(path, constant_system(4.0));
  bump_mtime(path);
  EXPECT_EQ(store.poll_now(), 1u);
  EXPECT_DOUBLE_EQ(store.get("m")->forecast(std::vector<double>{0.5, 0.5}).value, 4.0);

  std::filesystem::remove(path);
}

TEST(ModelStore, BackgroundPollerReloads) {
  const auto path = temp_model_path("efserve_test_poller.efr");
  write_model(path, constant_system(1.0));

  ModelStore store;
  store.add_file("m", path.string());
  store.start_polling(std::chrono::milliseconds(20));

  write_model(path, constant_system(2.0));
  bump_mtime(path);
  // The poller should observe the change within a few intervals.
  bool reloaded = false;
  for (int i = 0; i < 200 && !reloaded; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    reloaded = store.get("m")->version() == 2;
  }
  store.stop_polling();
  EXPECT_TRUE(reloaded);

  std::filesystem::remove(path);
}

TEST(ModelStore, ConcurrentReadersDuringReloads) {
  // Readers hammer get()+predict while the writer hot-swaps versions; every
  // answer must come from a coherent snapshot (value matches that snapshot's
  // version), with zero failures.
  const auto path = temp_model_path("efserve_test_concurrent.efr");
  write_model(path, constant_system(1.0));

  ModelStore store;
  store.add_file("m", path.string());

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> failures{0};
  std::atomic<std::size_t> reads{0};
  std::vector<std::thread> readers;
  const std::vector<double> window{0.5, 0.5};
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        const auto model = store.get("m");
        if (!model) {
          ++failures;
          continue;
        }
        const auto p = model->forecast(window);
        // Version k serves the constant k.
        if (p.abstained || p.value != static_cast<double>(model->version())) ++failures;
        ++reads;
      }
    });
  }

  for (double v = 2.0; v <= 6.0; v += 1.0) {
    write_model(path, constant_system(v));
    bump_mtime(path);
    ASSERT_EQ(store.poll_now(), 1u);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop = true;
  for (auto& t : readers) t.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(store.get("m")->version(), 6u);

  std::filesystem::remove(path);
}

TEST(LoadedModelFactory, EmptySystemHasNoIndex) {
  const auto model = LoadedModel::make(RuleSystem{}, "empty", 1, 1);
  EXPECT_FALSE(model->index().has_value());
  EXPECT_EQ(model->window(), 0u);
  const auto p = model->forecast(std::vector<double>{0.1});
  EXPECT_TRUE(p.abstained);
  EXPECT_EQ(p.votes, 0u);
}

}  // namespace
