// Tests for series/transforms.hpp: exact round trips, trend/season removal
// semantics, error cases, moving-average smoothing.
#include "series/transforms.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <stdexcept>
#include <vector>

#include "util/rng.hpp"

namespace {

using ef::series::difference;
using ef::series::Differenced;
using ef::series::TimeSeries;
using ef::series::undifference;

TEST(Difference, FirstDifferenceValues) {
  const TimeSeries s({1.0, 4.0, 9.0, 16.0});
  const Differenced d = difference(s);
  ASSERT_EQ(d.series.size(), 3u);
  EXPECT_DOUBLE_EQ(d.series[0], 3.0);
  EXPECT_DOUBLE_EQ(d.series[1], 5.0);
  EXPECT_DOUBLE_EQ(d.series[2], 7.0);
  ASSERT_EQ(d.prefix.size(), 1u);
  EXPECT_DOUBLE_EQ(d.prefix[0], 1.0);
}

TEST(Difference, RemovesLinearTrendExactly) {
  std::vector<double> v(50);
  for (std::size_t i = 0; i < v.size(); ++i) v[i] = 3.0 + 0.5 * static_cast<double>(i);
  const Differenced d = difference(TimeSeries(std::move(v)));
  for (std::size_t i = 0; i < d.series.size(); ++i) EXPECT_NEAR(d.series[i], 0.5, 1e-12);
}

TEST(Difference, SeasonalLagRemovesPurePeriod) {
  const std::size_t period = 8;
  std::vector<double> v(64);
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = std::sin(2.0 * std::numbers::pi * static_cast<double>(i) /
                    static_cast<double>(period));
  }
  const Differenced d = difference(TimeSeries(std::move(v)), period);
  for (std::size_t i = 0; i < d.series.size(); ++i) EXPECT_NEAR(d.series[i], 0.0, 1e-12);
}

TEST(Difference, RoundTripIsExact) {
  ef::util::Rng rng(4);
  std::vector<double> v(200);
  for (double& x : v) x = rng.uniform(-10, 10);
  const TimeSeries original(v);
  for (const std::size_t lag : {1u, 2u, 7u, 24u}) {
    const TimeSeries back = undifference(difference(original, lag));
    ASSERT_EQ(back.size(), original.size()) << lag;
    for (std::size_t i = 0; i < back.size(); ++i) {
      EXPECT_NEAR(back[i], original[i], 1e-9) << "lag " << lag << " index " << i;
    }
  }
}

TEST(Difference, InvalidArgumentsThrow) {
  const TimeSeries s({1.0, 2.0, 3.0});
  EXPECT_THROW((void)difference(s, 0), std::invalid_argument);
  EXPECT_THROW((void)difference(s, 3), std::invalid_argument);
}

TEST(Undifference, InconsistentPrefixThrows) {
  Differenced d;
  d.series = TimeSeries({1.0, 2.0});
  d.lag = 2;
  d.prefix = {0.0};  // size != lag
  EXPECT_THROW((void)undifference(d), std::invalid_argument);
}

TEST(Log1p, RoundTripOnCounts) {
  const TimeSeries s({0.0, 1.0, 10.0, 250.0});
  const TimeSeries t = ef::series::log1p_transform(s);
  EXPECT_DOUBLE_EQ(t[0], 0.0);
  const TimeSeries back = ef::series::expm1_transform(t);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_NEAR(back[i], s[i], 1e-9);
}

TEST(Log1p, CompressesLargeValues) {
  const TimeSeries s({0.0, 9.0, 99.0});
  const TimeSeries t = ef::series::log1p_transform(s);
  // Ratio 99/9 = 11 compresses to log(100)/log(10) = 2.
  EXPECT_NEAR(t[2] / t[1], 2.0, 1e-12);
}

TEST(Log1p, RejectsOutOfDomain) {
  EXPECT_THROW((void)ef::series::log1p_transform(TimeSeries({-1.0})),
               std::invalid_argument);
  EXPECT_THROW((void)ef::series::log1p_transform(TimeSeries({-2.0})),
               std::invalid_argument);
}

TEST(MovingAverage, FlattensNoiseKeepsMean) {
  ef::util::Rng rng(5);
  std::vector<double> v(500);
  for (double& x : v) x = 10.0 + rng.normal(0.0, 1.0);
  const TimeSeries s(std::move(v));
  const TimeSeries smooth = ef::series::moving_average(s, 10);
  ASSERT_EQ(smooth.size(), s.size());
  EXPECT_NEAR(smooth.mean(), s.mean(), 0.05);
  EXPECT_LT(smooth.variance(), 0.2 * s.variance());
}

TEST(MovingAverage, HalfZeroIsIdentity) {
  const TimeSeries s({1.0, 5.0, 2.0});
  const TimeSeries out = ef::series::moving_average(s, 0);
  for (std::size_t i = 0; i < s.size(); ++i) EXPECT_DOUBLE_EQ(out[i], s[i]);
}

TEST(MovingAverage, EdgesUseAvailableSamples) {
  const TimeSeries s({0.0, 3.0, 6.0});
  const TimeSeries out = ef::series::moving_average(s, 1);
  EXPECT_DOUBLE_EQ(out[0], 1.5);  // mean of first two
  EXPECT_DOUBLE_EQ(out[1], 3.0);  // full window
  EXPECT_DOUBLE_EQ(out[2], 4.5);  // mean of last two
}

TEST(MovingAverage, EmptySeriesSafe) {
  const TimeSeries s;
  EXPECT_EQ(ef::series::moving_average(s, 3).size(), 0u);
}

}  // namespace
