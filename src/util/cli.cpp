#include "util/cli.hpp"

#include <charconv>
#include <stdexcept>

namespace ef::util {
namespace {

[[nodiscard]] bool looks_like_flag(std::string_view arg) {
  return arg.size() > 2 && arg.substr(0, 2) == "--";
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (!looks_like_flag(arg)) {
      positional_.emplace_back(arg);
      continue;
    }
    const std::string_view body = arg.substr(2);
    if (const auto eq = body.find('='); eq != std::string_view::npos) {
      flags_.emplace(std::string(body.substr(0, eq)), std::string(body.substr(eq + 1)));
      continue;
    }
    // `--name value` unless the next token is itself a flag (then boolean).
    if (i + 1 < argc && !looks_like_flag(argv[i + 1])) {
      flags_.emplace(std::string(body), argv[i + 1]);
      ++i;
    } else {
      flags_.emplace(std::string(body), "true");
    }
  }
}

std::optional<std::string> Cli::get(std::string_view name) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return std::nullopt;
  return it->second;
}

bool Cli::has(std::string_view name) const { return flags_.contains(name); }

std::string Cli::get_string(std::string_view name, std::string def) const {
  auto value = get(name);
  return value ? *value : std::move(def);
}

std::int64_t Cli::get_int(std::string_view name, std::int64_t def) const {
  const auto value = get(name);
  if (!value) return def;
  std::int64_t out = 0;
  const auto [ptr, ec] = std::from_chars(value->data(), value->data() + value->size(), out);
  if (ec != std::errc{} || ptr != value->data() + value->size()) {
    throw std::invalid_argument("flag --" + std::string(name) + " expects an integer, got '" +
                                *value + "'");
  }
  return out;
}

double Cli::get_double(std::string_view name, double def) const {
  const auto value = get(name);
  if (!value) return def;
  try {
    std::size_t consumed = 0;
    const double out = std::stod(*value, &consumed);
    if (consumed != value->size()) throw std::invalid_argument("trailing characters");
    return out;
  } catch (const std::exception&) {
    throw std::invalid_argument("flag --" + std::string(name) + " expects a number, got '" +
                                *value + "'");
  }
}

bool Cli::get_bool(std::string_view name, bool def) const {
  const auto value = get(name);
  if (!value) return def;
  if (*value == "true" || *value == "1" || *value == "yes" || *value == "on") return true;
  if (*value == "false" || *value == "0" || *value == "no" || *value == "off") return false;
  throw std::invalid_argument("flag --" + std::string(name) + " expects a boolean, got '" +
                              *value + "'");
}

}  // namespace ef::util
