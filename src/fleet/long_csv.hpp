// fleet/long_csv.hpp — long-format multi-series CSV input.
//
// Production forecasting corpora (M4/M5-style, per-product retail demand)
// ship as long-format tables: one observation per row, keyed by a series
// id — `series_id,timestamp,value`. This loader groups rows into one
// TimeSeries per id, preserving first-appearance order across series and
// file order within a series (rows are assumed chronologically sorted per
// series, the universal convention for these corpora; the timestamp column
// is carried for schema compatibility but not parsed as a date).
//
// A dataset *directory* is the other common shape: one single-column CSV
// per series, named by file stem. read_series_directory() wraps the
// existing v1 loader over every `*.csv` in lexicographic order.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "series/timeseries.hpp"

namespace ef::fleet {

/// One named series of a fleet.
struct SeriesRecord {
  std::string id;
  series::TimeSeries series;
};

struct LongCsvOptions {
  char delimiter = ',';
  /// Hard cap on distinct series ids (allocation guard on hostile input).
  std::size_t max_series = 16'000'000;
  /// Hard cap on total rows.
  std::size_t max_rows = 1'000'000'000;
};

/// Parse long-format CSV text. A header row is skipped when its value
/// column does not parse as a number. Throws std::runtime_error with the
/// offending line number on rows with fewer than 3 columns, non-numeric or
/// non-finite values, empty series ids, or cap violations.
[[nodiscard]] std::vector<SeriesRecord> read_long_csv(std::istream& in,
                                                      const LongCsvOptions& options = {});

/// File variant; throws std::runtime_error when the file cannot be opened.
[[nodiscard]] std::vector<SeriesRecord> read_long_csv(const std::string& path,
                                                      const LongCsvOptions& options = {});

/// Load every `*.csv` under `dir` (non-recursive, lexicographic order) as
/// one series per file via series::read_series_csv; the series id is the
/// file stem. Throws std::runtime_error when the directory cannot be read
/// or any file fails to parse.
[[nodiscard]] std::vector<SeriesRecord> read_series_directory(const std::string& dir);

}  // namespace ef::fleet
