// Tests for core/config.hpp: every validation rule fires, defaults are
// valid, enum stringification is total.
#include "core/config.hpp"

#include "core/aggregation.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace {

using ef::core::EvolutionConfig;
using ef::core::RuleSystemConfig;

TEST(EvolutionConfig, DefaultsAreValid) { EXPECT_NO_THROW(EvolutionConfig{}.validate()); }

TEST(EvolutionConfig, PopulationTooSmall) {
  EvolutionConfig cfg;
  cfg.population_size = 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.population_size = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.population_size = 2;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(EvolutionConfig, EmaxMustBePositive) {
  EvolutionConfig cfg;
  cfg.emax = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.emax = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EvolutionConfig, TournamentRoundsAtLeastOne) {
  EvolutionConfig cfg;
  cfg.tournament_rounds = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EvolutionConfig, MutationProbabilityBounds) {
  EvolutionConfig cfg;
  cfg.mutation_prob = -0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.mutation_prob = 1.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.mutation_prob = 0.0;
  EXPECT_NO_THROW(cfg.validate());
  cfg.mutation_prob = 1.0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(EvolutionConfig, MutationScalePositive) {
  EvolutionConfig cfg;
  cfg.mutation_scale = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EvolutionConfig, WildcardToggleBounds) {
  EvolutionConfig cfg;
  cfg.wildcard_toggle_prob = -0.01;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.wildcard_toggle_prob = 1.01;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EvolutionConfig, ZeroGenerationsIsLegal) {
  // A zero-generation run = evaluate the initial population only (used by
  // the init ablation).
  EvolutionConfig cfg;
  cfg.generations = 0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(RuleSystemConfig, DefaultsAreValid) { EXPECT_NO_THROW(RuleSystemConfig{}.validate()); }

TEST(RuleSystemConfig, CoverageTargetBounds) {
  RuleSystemConfig cfg;
  cfg.coverage_target_percent = -1.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.coverage_target_percent = 100.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg.coverage_target_percent = 0.0;
  EXPECT_NO_THROW(cfg.validate());
  cfg.coverage_target_percent = 100.0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(RuleSystemConfig, MaxExecutionsAtLeastOne) {
  RuleSystemConfig cfg;
  cfg.max_executions = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(RuleSystemConfig, ValidatePropagatesToEvolution) {
  RuleSystemConfig cfg;
  cfg.evolution.emax = -5.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

TEST(EnumStrings, DistanceMetricTotal) {
  using ef::core::DistanceMetric;
  EXPECT_STREQ(to_string(DistanceMetric::kPrediction), "prediction");
  EXPECT_STREQ(to_string(DistanceMetric::kConditionOverlap), "condition_overlap");
  EXPECT_STREQ(to_string(DistanceMetric::kMatchedJaccard), "matched_jaccard");
}

TEST(EnumStrings, AggregationTotal) {
  using ef::core::Aggregation;
  EXPECT_STREQ(to_string(Aggregation::kMean), "mean");
  EXPECT_STREQ(to_string(Aggregation::kFitnessWeighted), "fitness_weighted");
  EXPECT_STREQ(to_string(Aggregation::kMedian), "median");
  EXPECT_STREQ(to_string(Aggregation::kBestRule), "best_rule");
  EXPECT_STREQ(to_string(Aggregation::kInverseError), "inverse_error");
}

}  // namespace
