#include "obs/timeline_export.hpp"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <unordered_map>
#include <unordered_set>

namespace ef::obs {
namespace {

std::string format_double(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.17g", v);
  return buffer;
}

/// Minimal escape for span names/arg keys (string literals in practice, but
/// the format must stay valid whatever they contain).
std::string escape(const char* text) {
  std::string out;
  for (const char* p = text; p && *p; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x", static_cast<unsigned>(c));
      out += buffer;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

}  // namespace

std::string to_chrome_trace_json(const TimelineSnapshot& snapshot) {
  // Slow exemplars are kept even when their head-sample draw said no.
  std::unordered_map<std::uint64_t, double> slow;
  for (const TimelineSnapshot::SlowTrace& s : snapshot.slow) slow[s.trace_id] = s.us;

  std::vector<const TimelineSpan*> kept;
  kept.reserve(snapshot.spans.size());
  std::unordered_set<std::uint64_t> span_ids;
  for (const TimelineSpan& span : snapshot.spans) {
    if (span.sampled || slow.count(span.trace_id) != 0) {
      kept.push_back(&span);
      span_ids.insert(span.span_id);
    }
  }
  // Perfetto requires nothing here, but check_trace_json.py asserts monotone
  // timestamps and resolvable parents — sort, and re-root orphans whose
  // parent span was overwritten in the ring before the snapshot.
  std::sort(kept.begin(), kept.end(), [](const TimelineSpan* a, const TimelineSpan* b) {
    if (a->t_start_us != b->t_start_us) return a->t_start_us < b->t_start_us;
    return a->span_id < b->span_id;
  });

  // One instant marker per slow trace with spans in view — the visual anchor
  // the serve.slow_request flight-recorder event's trace_id points at — sits
  // at the end of the span tree it annotates, which is mid-stream when other
  // traces run later. Compute marker positions first, then emit spans and
  // markers as one ts-sorted merge so the stream stays monotone end to end.
  std::unordered_map<std::uint64_t, std::int64_t> slow_end;
  for (const TimelineSpan* span : kept) {
    if (slow.count(span->trace_id) != 0) {
      std::int64_t& end = slow_end[span->trace_id];
      end = std::max(end, span->t_start_us + span->dur_us);
    }
  }
  std::vector<std::pair<std::int64_t, std::uint64_t>> markers;
  markers.reserve(slow_end.size());
  for (const auto& [trace_id, end] : slow_end) markers.emplace_back(end, trace_id);
  std::sort(markers.begin(), markers.end());

  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto emit_marker = [&](std::int64_t end, std::uint64_t trace_id) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"serve.slow_request\",\"ph\":\"i\",\"s\":\"g\"";
    out += ",\"ts\":" + std::to_string(end);
    out += ",\"pid\":1,\"tid\":0";
    out += ",\"args\":{\"trace_id\":" + std::to_string(trace_id);
    out += ",\"slow_us\":" + format_double(slow[trace_id]) + "}}";
  };
  std::size_t next_marker = 0;
  for (const TimelineSpan* span : kept) {
    while (next_marker < markers.size() &&
           markers[next_marker].first < span->t_start_us) {
      emit_marker(markers[next_marker].first, markers[next_marker].second);
      ++next_marker;
    }
    if (!first) out += ",";
    first = false;
    const std::uint64_t parent =
        span->parent_id != 0 && span_ids.count(span->parent_id) == 0 ? 0
                                                                     : span->parent_id;
    out += "{\"name\":\"" + escape(span->name) + "\",\"ph\":\"X\"";
    out += ",\"ts\":" + std::to_string(span->t_start_us);
    out += ",\"dur\":" + std::to_string(span->dur_us);
    out += ",\"pid\":1,\"tid\":" + std::to_string(span->thread_index);
    out += ",\"args\":{\"trace_id\":" + std::to_string(span->trace_id);
    out += ",\"span_id\":" + std::to_string(span->span_id);
    out += ",\"parent_id\":" + std::to_string(parent);
    if (span->arg_key) {
      out += ",\"" + escape(span->arg_key) + "\":" + format_double(span->arg_value);
    }
    const auto it = slow.find(span->trace_id);
    if (it != slow.end()) {
      out += ",\"slow_us\":" + format_double(it->second);
    }
    out += "}}";
  }
  while (next_marker < markers.size()) {
    emit_marker(markers[next_marker].first, markers[next_marker].second);
    ++next_marker;
  }
  out += "]}";
  return out;
}

std::string chrome_trace_json() { return to_chrome_trace_json(Timeline::snapshot()); }

bool write_chrome_trace_file(const std::string& path) {
  std::ofstream file(path, std::ios::binary | std::ios::trunc);
  if (!file) return false;
  file << chrome_trace_json() << "\n";
  return static_cast<bool>(file);
}

}  // namespace ef::obs
