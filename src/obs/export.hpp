// obs/export.hpp — turn the metrics + trace registries into artifacts.
//
// Three formats, one capture path:
//   * JSON  — machine-readable, one object with counters/gauges/histograms/
//             spans sections (CI uploads the quickstart run's file).
//   * CSV   — flat `kind,name,field,value` rows for spreadsheet/plot tools.
//   * table — format_report(), the human-readable summary benches and
//             examples print at exit under --report.
//
// All entry points operate on an explicit RunReport so tests can round-trip
// synthetic snapshots; the *_file/print helpers capture the global
// registries first.
#pragma once

#include <cstdio>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace ef::obs {

/// One run's complete observability state.
struct RunReport {
  MetricsSnapshot metrics;
  TraceSnapshot trace;
};

/// Snapshot both global registries.
[[nodiscard]] RunReport capture_run_report();

/// Serialise as a single JSON object (UTF-8, no trailing newline guarantees
/// beyond one '\n' at the end). Non-finite doubles become null.
[[nodiscard]] std::string to_json(const RunReport& report);

/// Serialise as `kind,name,field,value` CSV rows (header included).
[[nodiscard]] std::string to_csv(const RunReport& report);

/// Human-readable fixed-width table: counters, gauges, histogram quantiles,
/// span timings sorted by total time.
[[nodiscard]] std::string format_report(const RunReport& report);

/// Capture the global registries and write JSON/CSV to `path`. Throws
/// std::runtime_error on I/O failure.
void write_json_file(const std::string& path);
void write_csv_file(const std::string& path);

/// Capture the global registries and print format_report() to `out`.
void print_report(std::FILE* out = stdout);

}  // namespace ef::obs
