// serve/connection.hpp — per-connection state for the epoll reactor.
//
// A Connection is owned by exactly one reactor shard after accept
// (shared-nothing): only that shard's thread touches it, so there are no
// locks here. The class holds the protocol-visible state machine —
// incremental line framing, the pipelining sequence numbers, and the
// ordered write queue — while the Reactor owns the sockets and epoll
// bookkeeping. Keeping the state machine syscall-free makes it directly
// unit-testable (see test_serve_reactor).
//
// Pipelining contract: every request line is assigned a monotonically
// increasing sequence number at parse time; responses may complete in any
// order (cache hits finish inline, batcher misses finish on the dispatcher
// thread) but are released to the write queue strictly in sequence —
// out-of-order completions park in `parked_` until their turn.
//
// Framing notes:
//   * `scan_` remembers how far the newline scan has progressed, so a
//     slowloris client dribbling one byte at a time costs O(1) per byte,
//     not O(line²).
//   * A line exceeding max_line_bytes is discarded as it streams in
//     (`overlong` flag); the error response goes out once the terminating
//     newline finally arrives, and the connection survives.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>

namespace ef::serve {

class Connection {
 public:
  Connection(int fd, std::uint64_t id, std::size_t shard) noexcept
      : fd_(fd), id_(id), shard_(shard) {}

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] std::size_t shard() const noexcept { return shard_; }

  // --- read side: incremental line framing --------------------------------

  /// Append freshly received bytes to the read buffer.
  void append(const char* data, std::size_t n) { rbuf_.append(data, n); }

  /// Extract the next complete line (newline-terminated, '\r' stripped,
  /// terminator consumed) or nullopt when no full line is buffered. When
  /// the partial line outgrows `max_line_bytes` it is discarded and the
  /// overlong flag raised — check take_overlong() after each line.
  [[nodiscard]] std::optional<std::string> next_line(std::size_t max_line_bytes) {
    const std::size_t newline = rbuf_.find('\n', scan_);
    if (newline == std::string::npos) {
      scan_ = rbuf_.size();
      if (rbuf_.size() > max_line_bytes) {
        rbuf_.clear();
        scan_ = 0;
        overlong_ = true;
      }
      return std::nullopt;
    }
    std::string line = rbuf_.substr(0, newline);
    rbuf_.erase(0, newline + 1);
    scan_ = 0;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.size() > max_line_bytes) {
      // The whole overlong line arrived in one read, so the incremental
      // discard above never ran — flag it here instead of parsing it.
      line.clear();
      overlong_ = true;
    }
    return line;
  }

  /// True once per overlong line: the caller owes the client an error
  /// response in place of the discarded request.
  [[nodiscard]] bool take_overlong() noexcept {
    const bool was = overlong_;
    overlong_ = false;
    return was;
  }

  [[nodiscard]] bool has_buffered_input() const noexcept { return !rbuf_.empty(); }

  // --- pipelining: sequence numbers + in-order release --------------------

  /// Sequence number for the next request on this connection.
  [[nodiscard]] std::uint64_t allocate_seq() noexcept { return next_seq_++; }

  /// Requests assigned a sequence number whose response has not yet been
  /// released to the write queue.
  [[nodiscard]] std::size_t in_flight() const noexcept {
    return static_cast<std::size_t>(next_seq_ - next_release_);
  }

  /// Deliver the response for `seq`. Releases it — and any consecutively
  /// parked successors — to the write queue; out-of-order completions park
  /// until their predecessors land.
  void complete(std::uint64_t seq, std::string response) {
    if (seq != next_release_) {
      parked_.emplace(seq, std::move(response));
      return;
    }
    release(std::move(response));
    for (auto it = parked_.begin(); it != parked_.end() && it->first == next_release_;
         it = parked_.erase(it)) {
      release(std::move(it->second));
    }
  }

  // --- write side: ordered output queue -----------------------------------

  [[nodiscard]] bool has_output() const noexcept { return !outq_.empty(); }
  [[nodiscard]] std::deque<std::string>& output() noexcept { return outq_; }
  /// Bytes of output().front() already written by a previous partial write.
  [[nodiscard]] std::size_t& write_offset() noexcept { return write_offset_; }

  /// Drop `n` fully written bytes from the front of the queue.
  void consume_output(std::size_t n) {
    n += write_offset_;
    write_offset_ = 0;
    while (n > 0 && !outq_.empty()) {
      if (n >= outq_.front().size()) {
        n -= outq_.front().size();
        outq_.pop_front();
      } else {
        write_offset_ = n;
        return;
      }
    }
  }

  /// Fully answered and flushed — nothing pending in either direction.
  [[nodiscard]] bool idle() const noexcept {
    return outq_.empty() && parked_.empty() && in_flight() == 0;
  }

  // --- connection-scoped flags (reactor-managed) --------------------------

  /// HTTP carve-out: a "GET "/"HEAD " request line flips the connection into
  /// single-shot HTTP mode (headers swallowed, one response, then close).
  bool http_mode = false;
  std::string http_method;
  std::string http_path;
  /// Close once the write queue drains and nothing is in flight (HTTP
  /// Connection: close, fatal framing errors, graceful drain).
  bool close_after_flush = false;
  /// EPOLLOUT currently armed (a prior write hit EAGAIN or was partial).
  bool want_write = false;
  /// EPOLLIN currently disarmed (pipeline cap reached — backpressure).
  bool paused_read = false;
  /// process_lines is on the stack for this connection: a nested inline
  /// completion must release its response and return, not recurse back in
  /// (the enclosing loop picks up the remaining buffered lines).
  bool processing = false;
  /// fd closed and connection unlinked; the object survives in the shard's
  /// graveyard until the current epoll batch finishes, because a later
  /// event in the same batch may still carry this pointer.
  bool dead = false;

 private:
  void release(std::string response) {
    ++next_release_;
    outq_.push_back(std::move(response));
  }

  int fd_;
  std::uint64_t id_;
  std::size_t shard_;

  std::string rbuf_;
  std::size_t scan_ = 0;  ///< newline scan resumes here (slowloris-proof)
  bool overlong_ = false;

  std::uint64_t next_seq_ = 0;      ///< next sequence number to assign
  std::uint64_t next_release_ = 0;  ///< next sequence to release to the queue
  std::map<std::uint64_t, std::string> parked_;  ///< out-of-order completions

  std::deque<std::string> outq_;
  std::size_t write_offset_ = 0;
};

}  // namespace ef::serve
