// csv.hpp — plain CSV read/write for series and experiment traces.
//
// Kept deliberately small: one value column for series I/O plus a generic
// multi-column table writer used by the bench harness to dump figures
// (e.g. the Fig. 2 real-vs-predicted trace) for external plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "series/timeseries.hpp"

namespace ef::series {

/// Read a single-column (or first-column-of-many) numeric CSV into a series.
/// Skips a non-numeric header row if present; throws std::runtime_error on
/// unreadable files, rows that are neither numeric nor header, and cells
/// that parse to a non-finite value ("inf"/"nan" spellings).
[[nodiscard]] TimeSeries read_series_csv(const std::string& path,
                                         std::size_t column = 0, char delimiter = ',');

/// Parse CSV text from a stream (unit-testable without touching the fs).
[[nodiscard]] TimeSeries read_series_csv(std::istream& in, std::size_t column = 0,
                                         char delimiter = ',', const std::string& name = "csv");

/// Write one value per line with a header. Throws std::runtime_error when
/// the file cannot be opened.
void write_series_csv(const std::string& path, const TimeSeries& s);

/// Generic column-oriented table for trace output. All columns must have the
/// same length; cells may be NaN to indicate "no value" (written empty).
struct Table {
  std::vector<std::string> header;
  std::vector<std::vector<double>> columns;

  /// Append a column; throws std::invalid_argument on length mismatch with
  /// existing columns.
  void add_column(std::string name, std::vector<double> values);

  [[nodiscard]] std::size_t rows() const noexcept {
    return columns.empty() ? 0 : columns.front().size();
  }
};

/// Serialise a table as CSV. NaN cells are written as empty fields.
void write_table_csv(const std::string& path, const Table& table);
void write_table_csv(std::ostream& out, const Table& table);

}  // namespace ef::series
