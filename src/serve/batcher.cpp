#include "serve/batcher.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "obs/macros.hpp"

namespace ef::serve {

// Resolve one item: callback items complete via their Completion (on the
// dispatcher thread), blocking items via their promise.
void MicroBatcher::complete_item(Item& item, Result result, std::exception_ptr error) {
  if (item.done) {
    item.done(std::move(result), std::move(error));
  } else if (error) {
    item.promise.set_exception(std::move(error));
  } else {
    item.promise.set_value(std::move(result));
  }
}

MicroBatcher::MicroBatcher(BatcherConfig config, util::ThreadPool* pool)
    : config_(config), pool_(pool) {
  if (config_.max_batch == 0) {
    throw std::invalid_argument("MicroBatcher: max_batch must be > 0");
  }
  dispatcher_ = std::thread([this] { dispatcher_loop(); });
}

MicroBatcher::~MicroBatcher() { shutdown(); }

std::future<MicroBatcher::Result> MicroBatcher::submit(
    std::shared_ptr<const LoadedModel> model, std::vector<double> window,
    core::Aggregation agg) {
  Item item;
  item.model = std::move(model);
  item.window = std::move(window);
  item.agg = agg;
  item.trace = obs::current_context();
  if (item.trace.active()) item.t_enqueue_us = obs::Timeline::now_us();
  std::future<Result> future = item.promise.get_future();
  {
    const std::lock_guard lock(mutex_);
    if (!accepting_) throw std::runtime_error("MicroBatcher: shutting down");
    queue_.push_back(std::move(item));
  }
  queue_cv_.notify_one();
  return future;
}

void MicroBatcher::submit_async(std::shared_ptr<const LoadedModel> model,
                                std::vector<double> window, core::Aggregation agg,
                                Completion done) {
  Item item;
  item.model = std::move(model);
  item.window = std::move(window);
  item.agg = agg;
  item.done = std::move(done);
  item.trace = obs::current_context();
  if (item.trace.active()) item.t_enqueue_us = obs::Timeline::now_us();
  {
    const std::lock_guard lock(mutex_);
    if (!accepting_) throw std::runtime_error("MicroBatcher: shutting down");
    queue_.push_back(std::move(item));
  }
  queue_cv_.notify_one();
}

std::size_t MicroBatcher::pending() const {
  const std::lock_guard lock(mutex_);
  return queue_.size();
}

void MicroBatcher::shutdown() {
  {
    const std::lock_guard lock(mutex_);
    accepting_ = false;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) dispatcher_.join();
}

void MicroBatcher::dispatcher_loop() {
  std::unique_lock lock(mutex_);
  for (;;) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_) return;
      continue;
    }
    // Coalescing window: give concurrent callers max_delay to join this
    // round, but dispatch immediately once max_batch is queued or shutdown
    // begins (the drain must not sleep).
    if (queue_.size() < config_.max_batch && !stopping_) {
      queue_cv_.wait_for(lock, config_.max_delay, [this] {
        return stopping_ || queue_.size() >= config_.max_batch;
      });
    }

    std::vector<Item> batch;
    const std::size_t take = std::min(queue_.size(), config_.max_batch);
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    lock.unlock();
    EVOFORECAST_HISTOGRAM("serve.batch.size", batch.size());
    EVOFORECAST_COUNT("serve.batch.dispatches", 1);
    // Queue-wait spans are retrospective: each traced item's wait is only
    // known now that the dispatcher picked its batch up.
    std::int64_t t_dispatch_us = 0;
    for (const Item& item : batch) {
      if (!item.trace.active()) continue;
      if (t_dispatch_us == 0) t_dispatch_us = obs::Timeline::now_us();
      obs::Timeline::emit(item.trace, "serve.queue", item.t_enqueue_us,
                          t_dispatch_us);
    }
    run_batch(std::move(batch), pool_);
    lock.lock();
  }
}

void MicroBatcher::run_batch(std::vector<Item> batch, util::ThreadPool* pool) {
  // Group by (model snapshot, aggregation, window length): one batch-predict
  // call per group keeps windows of mixed models/shapes correct while still
  // coalescing the common single-model case into one flat span.
  std::vector<std::size_t> order(batch.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Item& ia = batch[a];
    const Item& ib = batch[b];
    const std::uint64_t ta = ia.model ? ia.model->tag() : 0;
    const std::uint64_t tb = ib.model ? ib.model->tag() : 0;
    if (ta != tb) return ta < tb;
    if (ia.agg != ib.agg) return ia.agg < ib.agg;
    return ia.window.size() < ib.window.size();
  });

  std::size_t group_begin = 0;
  while (group_begin < order.size()) {
    std::size_t group_end = group_begin + 1;
    const Item& head = batch[order[group_begin]];
    const std::uint64_t head_tag = head.model ? head.model->tag() : 0;
    while (group_end < order.size()) {
      const Item& next = batch[order[group_end]];
      const std::uint64_t next_tag = next.model ? next.model->tag() : 0;
      if (next_tag != head_tag || next.agg != head.agg ||
          next.window.size() != head.window.size()) {
        break;
      }
      ++group_end;
    }

    const std::size_t group_size = group_end - group_begin;
    const std::size_t width = head.window.size();
    if (!head.model || head.model->system().empty() || width == 0) {
      // No rules (or empty window): every request in the group abstains.
      for (std::size_t k = group_begin; k < group_end; ++k) {
        complete_item(batch[order[k]], Result{}, nullptr);
      }
      group_begin = group_end;
      continue;
    }

    std::vector<double> flat;
    flat.reserve(group_size * width);
    bool traced = false;
    for (std::size_t k = group_begin; k < group_end; ++k) {
      const Item& item = batch[order[k]];
      flat.insert(flat.end(), item.window.begin(), item.window.end());
      traced = traced || item.trace.active();
    }

    const std::int64_t t_group_us = traced ? obs::Timeline::now_us() : 0;
    std::int64_t t_match0_us = 0;
    std::int64_t t_match1_us = 0;
    try {
      const auto& model = *head.model;
      if (traced) t_match0_us = obs::Timeline::now_us();
      const std::vector<core::Prediction> results =
          model.index() ? model.index()->forecast_batch(flat, width, head.agg, pool)
                        : model.system().forecast_batch(flat, width, head.agg, pool);
      if (traced) t_match1_us = obs::Timeline::now_us();
      for (std::size_t k = group_begin; k < group_end; ++k) {
        complete_item(batch[order[k]], results[k - group_begin], nullptr);
      }
    } catch (...) {
      if (traced && t_match1_us == 0) t_match1_us = obs::Timeline::now_us();
      for (std::size_t k = group_begin; k < group_end; ++k) {
        complete_item(batch[order[k]], Result{}, std::current_exception());
      }
    }
    if (traced) {
      // Per traced request: a serve.batch span (the group it rode in, with
      // the group size as an arg) parenting the shared serve.match kernel
      // span — both under the request's own trace id.
      const std::int64_t t_end_us = obs::Timeline::now_us();
      for (std::size_t k = group_begin; k < group_end; ++k) {
        const Item& item = batch[order[k]];
        if (!item.trace.active()) continue;
        const std::uint64_t batch_span =
            obs::Timeline::emit(item.trace, "serve.batch", t_group_us, t_end_us, 0,
                                "batch", static_cast<double>(group_size));
        obs::Timeline::emit(item.trace, "serve.match", t_match0_us, t_match1_us,
                            batch_span);
      }
    }
    group_begin = group_end;
  }
}

}  // namespace ef::serve
