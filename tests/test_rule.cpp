// Tests for core/rule.hpp: matching semantics, encode/parse round-trip,
// forecast contract, the paper's worked example.
#include "core/rule.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <vector>

namespace {

using ef::core::Interval;
using ef::core::PredictingPart;
using ef::core::Rule;

Rule paper_example_rule() {
  // Paper §3.1: (50,100, 40,90, −10,5, *,*, 1,100, 33, 5) with D = 5.
  return Rule({Interval(50, 100), Interval(40, 90), Interval(-10, 5), Interval::wildcard(),
               Interval(1, 100)});
}

TEST(Rule, PaperExampleMatching) {
  const Rule r = paper_example_rule();
  EXPECT_EQ(r.window(), 5u);
  // Window satisfying every bound (position 3 is don't-care).
  EXPECT_TRUE(r.matches(std::vector<double>{75, 60, 0, 12345, 50}));
  // Violate the first gene.
  EXPECT_FALSE(r.matches(std::vector<double>{49, 60, 0, 0, 50}));
  // Violate the last gene.
  EXPECT_FALSE(r.matches(std::vector<double>{75, 60, 0, 0, 101}));
  // Boundary values are inclusive.
  EXPECT_TRUE(r.matches(std::vector<double>{50, 40, -10, -999, 1}));
  EXPECT_TRUE(r.matches(std::vector<double>{100, 90, 5, 999, 100}));
}

TEST(Rule, WrongWindowLengthNeverMatches) {
  const Rule r = paper_example_rule();
  EXPECT_FALSE(r.matches(std::vector<double>{75, 60, 0, 0}));
  EXPECT_FALSE(r.matches(std::vector<double>{75, 60, 0, 0, 50, 1}));
  EXPECT_FALSE(r.matches(std::vector<double>{}));
}

TEST(Rule, AllWildcardMatchesEverything) {
  const Rule r({Interval::wildcard(), Interval::wildcard()});
  EXPECT_TRUE(r.matches(std::vector<double>{-1e9, 1e9}));
  EXPECT_EQ(r.specificity(), 0u);
}

TEST(Rule, SpecificityCountsBoundedGenes) {
  EXPECT_EQ(paper_example_rule().specificity(), 4u);
}

TEST(Rule, FitnessBeforeEvaluationIsMinusInfinity) {
  const Rule r = paper_example_rule();
  EXPECT_FALSE(r.predicting().has_value());
  EXPECT_EQ(r.fitness(), -std::numeric_limits<double>::infinity());
}

TEST(Rule, ForecastBeforeEvaluationThrows) {
  const Rule r = paper_example_rule();
  EXPECT_THROW((void)r.forecast(std::vector<double>{75, 60, 0, 0, 50}), std::logic_error);
}

TEST(Rule, ForecastAppliesHyperplane) {
  Rule r({Interval(0, 10), Interval(0, 10)});
  PredictingPart part;
  part.fit.coeffs = {2.0, -1.0, 5.0};  // 2x0 − x1 + 5
  part.matches = 3;
  part.fitness = 1.0;
  r.set_predicting(part);
  EXPECT_DOUBLE_EQ(r.forecast(std::vector<double>{4.0, 1.0}), 12.0);
  EXPECT_DOUBLE_EQ(r.fitness(), 1.0);
}

TEST(Rule, ClearPredictingResetsFitness) {
  Rule r({Interval(0, 1)});
  PredictingPart part;
  part.fit.coeffs = {0.0, 1.0};
  part.fitness = 9.0;
  r.set_predicting(part);
  r.clear_predicting();
  EXPECT_EQ(r.fitness(), -std::numeric_limits<double>::infinity());
}

TEST(Rule, EncodeShowsWildcardsAndBounds) {
  const Rule r({Interval(50, 100), Interval::wildcard()});
  EXPECT_EQ(r.encode(), "(50, 100, *, *)");
}

TEST(Rule, EncodeIncludesPredictingPart) {
  Rule r({Interval(0, 1)});
  PredictingPart part;
  part.fit.coeffs = {0.0, 33.0};
  part.fit.mean_prediction = 33.0;
  part.fit.max_abs_residual = 5.0;
  r.set_predicting(part);
  EXPECT_EQ(r.encode(), "(0, 1 | p=33, e=5)");
}

TEST(Rule, ParseRoundTripConditional) {
  const Rule original({Interval(50, 100), Interval(40, 90), Interval::wildcard(),
                       Interval(-10, 5)});
  const Rule parsed = Rule::parse(original.encode());
  ASSERT_EQ(parsed.window(), original.window());
  for (std::size_t j = 0; j < parsed.window(); ++j) {
    EXPECT_EQ(parsed.genes()[j], original.genes()[j]);
  }
}

TEST(Rule, ParseIgnoresPredictingSuffix) {
  const Rule parsed = Rule::parse("(1, 2, *, * | p=3, e=4)");
  ASSERT_EQ(parsed.window(), 2u);
  EXPECT_EQ(parsed.genes()[0], Interval(1, 2));
  EXPECT_TRUE(parsed.genes()[1].is_wildcard());
  EXPECT_FALSE(parsed.predicting().has_value());
}

TEST(Rule, ParseMalformedThrows) {
  EXPECT_THROW((void)Rule::parse("no parens"), std::invalid_argument);
  EXPECT_THROW((void)Rule::parse("(1, 2, 3)"), std::invalid_argument);   // odd bound count
  EXPECT_THROW((void)Rule::parse("(1, *)"), std::invalid_argument);      // half wildcard
  EXPECT_THROW((void)Rule::parse("(a, b)"), std::invalid_argument);      // non-numeric
  EXPECT_THROW((void)Rule::parse("()"), std::invalid_argument);          // empty
}

TEST(Rule, MutableGenesAccess) {
  Rule r({Interval(0, 1), Interval(2, 3)});
  r.genes()[0] = Interval::wildcard();
  EXPECT_TRUE(r.genes()[0].is_wildcard());
  EXPECT_EQ(r.specificity(), 1u);
}

}  // namespace
