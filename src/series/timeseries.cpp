#include "series/timeseries.hpp"

#include <algorithm>
#include <cmath>

namespace ef::series {

TimeSeries::TimeSeries(std::vector<double> values, std::string name)
    : values_(std::move(values)), name_(std::move(name)) {
  for (const double v : values_) {
    if (!std::isfinite(v)) {
      throw std::invalid_argument("TimeSeries '" + name_ + "': non-finite value rejected");
    }
  }
}

TimeSeries TimeSeries::slice(std::size_t begin, std::size_t end) const {
  if (begin > end || end > values_.size()) {
    throw std::out_of_range("TimeSeries::slice: [" + std::to_string(begin) + ", " +
                            std::to_string(end) + ") out of range for size " +
                            std::to_string(values_.size()));
  }
  return TimeSeries(
      std::vector<double>(values_.begin() + static_cast<std::ptrdiff_t>(begin),
                          values_.begin() + static_cast<std::ptrdiff_t>(end)),
      name_ + "[" + std::to_string(begin) + ":" + std::to_string(end) + ")");
}

double TimeSeries::min() const {
  if (values_.empty()) throw std::logic_error("TimeSeries::min on empty series");
  return *std::min_element(values_.begin(), values_.end());
}

double TimeSeries::max() const {
  if (values_.empty()) throw std::logic_error("TimeSeries::max on empty series");
  return *std::max_element(values_.begin(), values_.end());
}

double TimeSeries::mean() const {
  if (values_.empty()) throw std::logic_error("TimeSeries::mean on empty series");
  double sum = 0.0;
  for (const double v : values_) sum += v;
  return sum / static_cast<double>(values_.size());
}

double TimeSeries::variance() const {
  const double m = mean();  // throws on empty
  double acc = 0.0;
  for (const double v : values_) acc += (v - m) * (v - m);
  return acc / static_cast<double>(values_.size());
}

Split split_at(const TimeSeries& s, std::size_t train_size) {
  if (train_size == 0 || train_size >= s.size()) {
    throw std::invalid_argument("split_at: train_size " + std::to_string(train_size) +
                                " invalid for series of size " + std::to_string(s.size()));
  }
  return Split{s.slice(0, train_size), s.slice(train_size, s.size())};
}

Split split_with_gap(const TimeSeries& s, std::size_t train_size, std::size_t gap) {
  if (train_size == 0 || train_size + gap >= s.size()) {
    throw std::invalid_argument("split_with_gap: train " + std::to_string(train_size) +
                                " + gap " + std::to_string(gap) +
                                " leaves no validation data in series of size " +
                                std::to_string(s.size()));
  }
  return Split{s.slice(0, train_size), s.slice(train_size + gap, s.size())};
}

Normalizer::Normalizer(double offset, double scale, double target_lo)
    : offset_(offset), scale_(scale), inv_scale_(1.0 / scale), target_lo_(target_lo) {}

Normalizer Normalizer::min_max(const TimeSeries& s, double lo, double hi) {
  if (hi <= lo) throw std::invalid_argument("Normalizer::min_max: hi must exceed lo");
  const double smin = s.min();
  const double smax = s.max();
  const double range = smax - smin;
  if (range == 0.0) return Normalizer(smin, 1.0, lo);  // constant series → all lo
  return Normalizer(smin, range / (hi - lo), lo);
}

Normalizer Normalizer::z_score(const TimeSeries& s) {
  const double sd = std::sqrt(s.variance());
  if (sd == 0.0) return Normalizer(s.mean(), 1.0, 0.0);
  return Normalizer(s.mean(), sd, 0.0);
}

TimeSeries Normalizer::transform(const TimeSeries& s) const {
  std::vector<double> out;
  out.reserve(s.size());
  for (const double v : s.values()) out.push_back(transform(v));
  return TimeSeries(std::move(out), s.name() + "/norm");
}

TimeSeries Normalizer::inverse(const TimeSeries& s) const {
  std::vector<double> out;
  out.reserve(s.size());
  for (const double v : s.values()) out.push_back(inverse(v));
  return TimeSeries(std::move(out), s.name() + "/denorm");
}

}  // namespace ef::series
