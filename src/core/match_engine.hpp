// match_engine.hpp — the hot loop: which training windows does a rule match?
//
// Evaluating one offspring means scanning every sliding window of the
// training set against D interval genes — O(m·D) with m up to 45 000. The
// engine is a thin dispatcher over the pluggable kernels of
// core/match_backend.hpp (scalar reference, SoA vectorized, SoA with
// selectivity prefilter, the AVX2 widening of the prefilter, and the
// rule-major whole-ruleset kernel); all backends return bit-identical match
// sets, so the choice is purely a throughput knob
// (EvolutionConfig::match_backend, overridable via
// EVOFORECAST_MATCH_BACKEND). Large scans are partitioned across the shared
// thread pool; chunks append into per-chunk buffers that are concatenated in
// order, so results are identical to the serial scan. match_all() is the
// batched entry point the fitness path uses: one plane build + one window
// pass for a whole population instead of one sweep per rule.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "core/dataset.hpp"
#include "core/match_backend.hpp"
#include "core/rule.hpp"
#include "util/thread_pool.hpp"

namespace ef::core {

class MatchEngine {
 public:
  /// `pool` must outlive the engine; nullptr = use ThreadPool::shared().
  /// `backend` selects the kernel (already resolved against the environment
  /// by the caller, or pass resolve_match_backend(...) explicitly).
  explicit MatchEngine(const WindowDataset& data, util::ThreadPool* pool = nullptr,
                       MatchBackend backend = resolve_match_backend(MatchBackend::kAuto));

  [[nodiscard]] const WindowDataset& data() const noexcept { return data_; }
  [[nodiscard]] MatchBackend backend() const noexcept { return backend_; }
  [[nodiscard]] util::ThreadPool& pool() const noexcept { return *pool_; }

  /// Indices of all patterns the rule's conditional part accepts, ascending.
  [[nodiscard]] std::vector<std::size_t> match_indices(const Rule& rule) const;

  /// Just the count (skips building the full index vector when only N_R
  /// matters on the serial path).
  [[nodiscard]] std::size_t match_count(const Rule& rule) const;

  /// Sequential scalar reference implementation (used by tests to cross-check
  /// every backend and by callers with tiny datasets).
  [[nodiscard]] std::vector<std::size_t> match_indices_serial(const Rule& rule) const;

  /// Match every rule of a batch in one call: out[r] holds the ascending
  /// match indices of rules[r], bit-identical to match_indices(rules[r]).
  /// Under kRuleMajor (and kAuto) the quantized planes of the whole batch
  /// are built once and the window stream is scanned in a single pass —
  /// this is the shape the evolution fitness path evaluates populations
  /// with. Other backends loop match_indices per rule, so the call is
  /// always safe to use.
  [[nodiscard]] std::vector<std::vector<std::size_t>> match_all(
      std::span<const Rule> rules) const;

 private:
  /// Run the selected kernel over [begin, end), appending to `out`.
  void match_range(const Rule& rule, std::size_t begin, std::size_t end,
                   std::vector<std::size_t>& out, std::size_t* pruned) const;

  const WindowDataset& data_;
  util::ThreadPool* pool_;
  MatchBackend backend_;
};

}  // namespace ef::core
