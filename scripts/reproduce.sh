#!/usr/bin/env bash
# Reproduce every table/figure/ablation of the paper and record the outputs.
#
#   scripts/reproduce.sh           # scaled-down defaults (~10 min laptop)
#   scripts/reproduce.sh --full    # paper-scale (hours)
#
# Results land in reproduction/<timestamp>/, one log per experiment, plus
# the CSV traces the figure benches emit.
set -euo pipefail

cd "$(dirname "$0")/.."
FULL_FLAG="${1:-}"

OUT="reproduction/$(date +%Y%m%d-%H%M%S)"
mkdir -p "$OUT"

cmake -B build -G Ninja
cmake --build build

# Provenance manifest: which sources, toolchain, and host produced this
# reproduction. The per-bench metrics JSONs carry the same build stamp in
# their "build" section; manifest.json ties the whole directory together.
{
  echo "{"
  echo "  \"git_commit\": \"$(git rev-parse HEAD 2>/dev/null || echo unknown)\","
  echo "  \"git_dirty\": $(git diff --quiet 2>/dev/null && echo false || echo true),"
  echo "  \"date_utc\": \"$(date -u +%Y-%m-%dT%H:%M:%SZ)\","
  echo "  \"host\": \"$(uname -srm)\","
  echo "  \"nproc\": $(nproc),"
  echo "  \"compiler\": \"$(c++ --version 2>/dev/null | head -1 | tr -d '"\\')\","
  echo "  \"mode\": \"${FULL_FLAG:-quick}\""
  echo "}"
} > "$OUT/manifest.json"
python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$OUT/manifest.json" \
  || echo "warning: manifest.json failed to validate"

echo "== tests ==" | tee "$OUT/tests.log"
ctest --test-dir build -j"$(nproc)" 2>&1 | tee -a "$OUT/tests.log"

for bench in build/bench/*; do
  name="$(basename "$bench")"
  echo "== $name $FULL_FLAG =="
  # bench_micro_core takes google-benchmark flags, not --full. Every other
  # bench also emits its observability run report (docs/OBSERVABILITY.md):
  # the table goes into the log, the JSON next to it for machine analysis.
  if [[ "$name" == "bench_micro_core" ]]; then
    "$bench" 2>&1 | tee "$OUT/$name.log"
  else
    "$bench" $FULL_FLAG --report --metrics-json "$OUT/$name.metrics.json" \
      2>&1 | tee "$OUT/$name.log"
  fi
done

# Collect CSV traces emitted into the working directory by figure benches.
mv -f fig2_trace.csv convergence_trace.csv "$OUT"/ 2>/dev/null || true

echo
echo "done — outputs in $OUT/"
