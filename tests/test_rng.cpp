// Tests for util/rng.hpp: determinism, distribution sanity, forking.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <array>
#include <set>
#include <vector>

namespace {

using ef::util::Rng;

TEST(Rng, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, DefaultConstructedIsReproducible) {
  Rng a;
  Rng b;
  EXPECT_EQ(a(), b());
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.5, 8.25);
    EXPECT_GE(u, -3.5);
    EXPECT_LT(u, 8.25);
  }
}

TEST(Rng, UniformDegenerateRangeReturnsLo) {
  Rng rng(5);
  EXPECT_DOUBLE_EQ(rng.uniform(2.0, 2.0), 2.0);
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(6);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Rng, IndexStaysInRange) {
  Rng rng(8);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.index(17), 17u);
}

TEST(Rng, IndexOneAlwaysZero) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.index(1), 0u);
}

TEST(Rng, IndexCoversAllValues) {
  Rng rng(10);
  std::set<std::size_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.index(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, IndexRoughlyUniform) {
  Rng rng(11);
  std::array<int, 8> counts{};
  constexpr int kN = 80000;
  for (int i = 0; i < kN; ++i) ++counts[rng.index(8)];
  for (const int c : counts) EXPECT_NEAR(c, kN / 8, kN / 80);  // ±10 %
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(12);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRateMatchesP) {
  Rng rng(13);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(14);
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double z = rng.normal();
    sum += z;
    sq += z * z;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Rng, NormalScaledMoments) {
  Rng rng(15);
  double sum = 0.0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += rng.normal(5.0, 2.0);
  EXPECT_NEAR(sum / kN, 5.0, 0.05);
}

TEST(Rng, ForkIsDeterministic) {
  Rng a(20);
  Rng b(20);
  Rng fa = a.fork();
  Rng fb = b.fork();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(fa(), fb());
}

TEST(Rng, ForkIndependentOfParentContinuation) {
  Rng parent(21);
  Rng child = parent.fork();
  // Drawing more from the parent must not affect the already-forked child.
  Rng parent2(21);
  Rng child2 = parent2.fork();
  (void)parent2();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(child(), child2());
}

TEST(Rng, SplitMix64KnownValue) {
  // Reference value from the SplitMix64 definition with state 0:
  std::uint64_t state = 0;
  EXPECT_EQ(ef::util::splitmix64(state), 0xE220A8397B1DCDAFULL);
}

}  // namespace
