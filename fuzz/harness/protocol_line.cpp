#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <string_view>

#include "harness.hpp"
#include "serve/json.hpp"
#include "serve/protocol.hpp"

namespace ef::fuzz {
namespace {

[[noreturn]] void die(const std::string& what) {
  std::fprintf(stderr, "protocol_line invariant violated: %s\n", what.c_str());
  std::abort();
}

}  // namespace

int protocol_line(const std::uint8_t* data, std::size_t size) {
  const std::string_view line(reinterpret_cast<const char*>(data), size);
  serve::ProtocolError error;
  const std::optional<serve::Request> request = serve::parse_request(line, error);
  if (!request && error.message.empty()) die("rejection without an error message");
  if (!request && error.code == serve::ErrorCode::kNone) die("rejection without an error code");

  // Whatever the parse produced, the server answers with protocol JSON. The
  // error envelope quotes the (hostile) error text — and under v2 echoes the
  // hostile id verbatim — so it must survive its own escaping: efstat and
  // the smoke harness parse these lines with the same strict parser.
  const std::string envelope =
      request ? serve::error_json(serve::ErrorCode::kInternal, "fuzz", request->version,
                                  request->id_json)
              : serve::error_json(error);
  std::string parse_error;
  if (!serve::json::parse(envelope, parse_error)) {
    die("error envelope is not valid protocol JSON: " + parse_error + ": " + envelope);
  }

  if (request && request->cmd == serve::Request::Cmd::kPredict) {
    // A parsed predict request has validated fields; horizon fits size_t
    // and the window holds only finite doubles (the JSON layer rejects
    // non-finite numbers).
    if (request->predict.horizon < 1) die("parsed horizon < 1");
    for (const double v : request->predict.window) {
      if (!std::isfinite(v)) die("non-finite window value accepted");
    }
    if (request->version != 1 && request->version != 2) die("parsed version not 1 or 2");
    if (request->version == 1 && !request->id_json.empty()) die("id without v2 envelope");
  }
  return 0;
}

}  // namespace ef::fuzz
