#include "baselines/holt_winters.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>
#include <vector>

namespace ef::baselines {

void HoltWintersConfig::validate() const {
  if (period == 0) throw std::invalid_argument("HoltWintersConfig: period must be > 0");
  if (grid_points == 0) {
    throw std::invalid_argument("HoltWintersConfig: grid_points must be > 0");
  }
  for (const double p : {alpha, beta, gamma}) {
    if (p >= 0.0 && p > 1.0) {
      throw std::invalid_argument("HoltWintersConfig: pinned parameter out of [0,1]");
    }
  }
}

HoltWinters::HoltWinters(HoltWintersConfig config) : config_(config) { config_.validate(); }

double HoltWinters::smooth_and_forecast(std::span<const double> values, std::size_t horizon,
                                        double alpha, double beta, double gamma,
                                        double* sse) const {
  const std::size_t m = config_.period;
  // Degenerate input: fall back to persistence-style behaviour.
  if (values.size() < 2) return values.empty() ? 0.0 : values.back();

  // Initial trend from the season-to-season (or sample-to-sample) drift;
  // the seasonal profile is estimated on *detrended* first-season values —
  // without detrending, a linear ramp would be misread as seasonality.
  double trend = values.size() > m ? (values[m] - values[0]) / static_cast<double>(m)
                                   : (values[1] - values[0]);
  const std::size_t init_span = values.size() < m ? values.size() : m;
  double init_mean = 0.0;
  for (std::size_t i = 0; i < init_span; ++i) init_mean += values[i];
  init_mean /= static_cast<double>(init_span);
  // Level at t = 0 such that level + trend·i passes through the init span.
  const double level0 = init_mean - trend * 0.5 * static_cast<double>(init_span - 1);

  std::vector<double> seasonal(m, 0.0);
  for (std::size_t i = 0; i < init_span; ++i) {
    seasonal[i % m] = values[i] - (level0 + trend * static_cast<double>(i));
  }
  double level = level0 - trend;  // state "before" t = 0 so step 0 predicts level0

  for (std::size_t t = 0; t < values.size(); ++t) {
    const double season = seasonal[t % m];
    if (sse) {
      const double pred = level + trend + season;
      const double err = values[t] - pred;
      *sse += err * err;
    }
    const double prev_level = level;
    level = alpha * (values[t] - season) + (1.0 - alpha) * (level + trend);
    trend = beta * (level - prev_level) + (1.0 - beta) * trend;
    seasonal[t % m] = gamma * (values[t] - level) + (1.0 - gamma) * season;
  }

  // Forecast: seasonal index of the target instant.
  const std::size_t target_phase = (values.size() - 1 + horizon) % m;
  return level + static_cast<double>(horizon) * trend + seasonal[target_phase];
}

void HoltWinters::fit(const core::WindowDataset& train) {
  horizon_ = train.horizon();
  const auto values = train.values();

  const auto pinned = [](double p, double fallback) { return p >= 0.0 ? p : fallback; };
  double best_sse = std::numeric_limits<double>::infinity();
  double best_a = pinned(config_.alpha, 0.5);
  double best_b = pinned(config_.beta, 0.1);
  double best_g = pinned(config_.gamma, 0.3);

  const std::size_t n = config_.grid_points;
  const auto grid_value = [&](std::size_t i) {
    return 0.05 + 0.9 * static_cast<double>(i) / static_cast<double>(n - 1 ? n - 1 : 1);
  };

  for (std::size_t ia = 0; ia < (config_.alpha >= 0.0 ? 1 : n); ++ia) {
    const double a = config_.alpha >= 0.0 ? config_.alpha : grid_value(ia);
    for (std::size_t ib = 0; ib < (config_.beta >= 0.0 ? 1 : n); ++ib) {
      const double b = config_.beta >= 0.0 ? config_.beta : grid_value(ib);
      for (std::size_t ig = 0; ig < (config_.gamma >= 0.0 ? 1 : n); ++ig) {
        const double g = config_.gamma >= 0.0 ? config_.gamma : grid_value(ig);
        double sse = 0.0;
        (void)smooth_and_forecast(values, 1, a, b, g, &sse);
        if (sse < best_sse) {
          best_sse = sse;
          best_a = a;
          best_b = b;
          best_g = g;
        }
      }
    }
  }
  alpha_ = best_a;
  beta_ = best_b;
  gamma_ = best_g;
  fitted_ = true;
}

double HoltWinters::predict(std::span<const double> window) const {
  if (!fitted_) throw std::logic_error("HoltWinters::predict before fit");
  return smooth_and_forecast(window, horizon_, alpha_, beta_, gamma_, nullptr);
}

}  // namespace ef::baselines
