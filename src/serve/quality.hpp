// serve/quality.hpp — forecast-quality tracking: prediction ledger, live
// accuracy scoring, and drift detection.
//
// The serving stack measures latency and throughput in depth but, until
// this layer, never whether its forecasts were RIGHT once reality arrived.
// QualityTracker closes that loop per model:
//
//   * a bounded PredictionLedger (ring) of issued forecasts — predicted
//     value, interval half-width e (the paper's rule error, surfaced as
//     "interval":[p−e, p+e] in v2 replies), horizon, rule-backed vs
//     abstained — each stamped with the model's observation tick and due at
//     tick + horizon;
//   * an observe() ingestion path ({"cmd":"observe"} on the wire) that
//     advances the model's tick with each realized value and matures every
//     ledger entry due at that tick: absolute/squared error, sMAPE term,
//     interval coverage (|p − actual| ≤ e), abstention share;
//   * rolling windowed quality — RMSE, MAE, sMAPE, coverage rate,
//     abstention share over the last `window` matured forecasts;
//   * a Page–Hinkley drift detector (obs/drift.hpp) over the matured
//     absolute-error stream, emitting drift.detected / drift.cleared
//     through the EventLog;
//   * a registered exposition provider rendering bounded-cardinality
//     ef_quality_*{model="…"} series — the configurable top-K worst models
//     by rolling RMSE plus a "_fleet" aggregate — into every Prometheus
//     scrape (container fleets of 1000+ series must not explode scrape
//     cardinality).
//
// Tick semantics. Each model carries its own observation clock, advanced
// only by observe(): an actual without an explicit "t" lands at tick+1; an
// explicit t > tick jumps the clock (entries due in the gap have no actual
// and are dropped as overdue); t ≤ tick is a duplicate or out-of-order
// actual — counted stale, clock untouched, nothing matured twice. A
// forecast issued at tick T with horizon h matures against the actual at
// tick T + h.
//
// Cost model. The tracker arms lazily: until the first observe() arrives,
// record_forecast() is one relaxed atomic load and a branch — the predict
// hot path pays nothing when no actuals are flowing (and forecasts issued
// before arming are simply not scored). Once armed, recording takes the
// model's mutex for a ring write; models never observed are never tracked,
// so a container fleet only pays for the series actually being scored.
//
// Everything here is a product feature, not instrumentation: it compiles
// and functions identically under EVOFORECAST_OBS=OFF (only the macro
// emissions — events, counters, spans — vanish), and it never alters a
// forecast value.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "obs/drift.hpp"
#include "obs/exposition.hpp"

namespace ef::serve {

struct QualityOptions {
  bool enabled = true;
  /// Per-model ledger capacity; the oldest pending forecast is evicted when
  /// a full ring records a new one. 0 disables quality tracking entirely.
  std::size_t ledger_capacity = 1024;
  /// Matured forecasts in the rolling quality window (RMSE/MAE/sMAPE/
  /// coverage/abstention are computed over the last this-many).
  std::size_t window = 256;
  /// Labelled models in the Prometheus exposition: the top-K worst by
  /// rolling RMSE, plus the "_fleet" aggregate.
  std::size_t top_k = 5;
  obs::DriftConfig drift;
};

class QualityTracker {
 public:
  explicit QualityTracker(QualityOptions options = {});
  ~QualityTracker();

  QualityTracker(const QualityTracker&) = delete;
  QualityTracker& operator=(const QualityTracker&) = delete;

  /// Record one issued forecast into the model's ledger. No-op until the
  /// tracker is armed, and for models never observed. `bound` < 0 = no
  /// interval available (excluded from coverage, still error-scored).
  void record_forecast(std::string_view model, std::size_t horizon, double value,
                       double bound, bool abstained);

  struct ObserveResult {
    std::uint64_t tick = 0;   ///< the model's clock after this observation
    std::size_t matured = 0;  ///< ledger entries scored against this actual
    std::size_t overdue = 0;  ///< entries dropped (their tick had no actual)
    std::size_t pending = 0;  ///< entries still awaiting a future actual
    bool stale = false;       ///< t ≤ current tick: ignored, clock untouched
    bool drift_detected = false;
    bool drift_cleared = false;
  };
  /// Ingest one realized value for `model`. Arms the tracker on first use.
  ObserveResult observe(std::string_view model, double actual,
                        std::optional<std::uint64_t> t = std::nullopt);

  struct ModelSnapshot {
    std::string model;
    std::uint64_t tick = 0;
    std::size_t pending = 0;
    std::uint64_t observed = 0;  ///< actuals ingested (stale ones excluded)
    std::uint64_t matured = 0;   ///< forecasts scored or counted abstained
    std::uint64_t scored = 0;    ///< matured with a value (error-scored)
    std::uint64_t overdue = 0;   ///< dropped: actual for their tick never came
    std::uint64_t stale = 0;     ///< duplicate / out-of-order actuals ignored
    std::uint64_t evicted = 0;   ///< pending forecasts pushed out of a full ring
    // Rolling window (last `QualityOptions::window` matured forecasts).
    std::size_t window_n = 0;       ///< matured entries in the window
    std::size_t window_scored = 0;  ///< of which carried a value
    double rmse = 0.0;              ///< meaningful when window_scored > 0
    double mae = 0.0;
    double smape = 0.0;          ///< symmetric MAPE, percent
    double coverage = 0.0;       ///< share of interval-bearing entries with
                                 ///< |p − actual| ≤ e; see window_intervals
    std::size_t window_intervals = 0;
    double abstain_share = 0.0;  ///< abstained / window_n
    bool drifted = false;
    std::uint64_t drift_detections = 0;
    double drift_stat = 0.0;  ///< current Page–Hinkley statistic
  };
  /// Point-in-time snapshot of every tracked model, name order.
  [[nodiscard]] std::vector<ModelSnapshot> snapshot() const;

  [[nodiscard]] bool armed() const noexcept {
    return armed_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] const QualityOptions& options() const noexcept { return options_; }

  /// Exposition provider body: # TYPE + labelled ef_quality_* samples for
  /// the top-K worst models and the "_fleet" aggregate. Registered with the
  /// obs provider registry at construction; public for direct testing.
  void render_prometheus(std::string& out, const obs::ExpositionOptions& options) const;

 private:
  struct ModelState;

  /// Find-or-create under map_mutex_; returns nullptr only for find-only
  /// misses.
  ModelState* state(std::string_view model, bool create);
  static void score(ModelState& st, double actual, ObserveResult& result);

  QualityOptions options_;
  std::atomic<bool> armed_{false};
  mutable std::mutex map_mutex_;  ///< guards the map shape; states have own locks
  std::map<std::string, std::unique_ptr<ModelState>, std::less<>> models_;
  std::uint64_t provider_id_ = 0;
};

}  // namespace ef::serve
