// serve/service.hpp — the in-process forecast service.
//
// ForecastService is the complete serving pipeline behind one blocking
// call: validate → cache lookup → micro-batched (or iterated multi-step)
// prediction → cache fill → instrumented response. It owns the cache and
// the batcher but only borrows the ModelStore, so several services (or a
// service plus an offline evaluator) can share one store. Tests drive this
// API directly — no sockets involved; the TCP server in serve/tcp_server.hpp
// is a thin line-protocol wrapper around it.
//
// Abstention semantics follow the paper: a window matched by no rule gets
// an explicit "abstain" response, never a fabricated value. Multi-step
// requests (horizon > 1) iterate the one-step system, feeding each
// prediction back as the newest input; an abstention at any intermediate
// step abstains the whole chain (core::ChainAbstention::kAbstain policy).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/aggregation.hpp"
#include "core/prediction.hpp"
#include "serve/batcher.hpp"
#include "serve/model_store.hpp"
#include "serve/window_cache.hpp"
#include "util/thread_pool.hpp"

namespace ef::serve {

struct ServiceConfig {
  CacheConfig cache;
  BatcherConfig batcher;
  bool enable_cache = true;
  bool enable_batcher = true;  ///< off = predict inline (lowest latency, no coalescing)
  std::size_t max_window = 4096;
  std::size_t max_horizon = 1024;
  /// Requests slower than this emit a serve.slow_request event and bump the
  /// serve.slow_requests counter; <= 0 disables the check.
  double slow_request_us = 50000.0;
};

struct PredictRequest {
  std::string model = "default";
  std::vector<double> window;  ///< most recent value last
  std::size_t horizon = 1;     ///< steps ahead; > 1 iterates the one-step system
  core::Aggregation agg = core::Aggregation::kMean;
  bool use_cache = true;  ///< per-request bypass (debugging, cache-busting)
};

struct PredictResponse {
  bool ok = false;
  std::string error;  ///< set when !ok
  std::string model;
  std::uint64_t version = 0;
  std::size_t horizon = 1;
  bool abstain = false;
  double value = 0.0;   ///< valid when ok && !abstain
  std::size_t votes = 0;  ///< matching rules behind the (final-step) forecast
  bool cached = false;
};

class ForecastService {
 public:
  explicit ForecastService(ModelStore& store, ServiceConfig config = {},
                           util::ThreadPool* pool = nullptr);
  ~ForecastService();

  ForecastService(const ForecastService&) = delete;
  ForecastService& operator=(const ForecastService&) = delete;

  /// One blocking forecast. Thread-safe; concurrent callers are coalesced
  /// by the micro-batcher. Never throws for bad requests — returns
  /// ok=false with a reason instead (the protocol layer forwards it).
  [[nodiscard]] PredictResponse predict(const PredictRequest& request);

  /// Drain in-flight batches and refuse further predicts (graceful
  /// shutdown). Idempotent.
  void shutdown();
  [[nodiscard]] bool accepting() const noexcept;

  [[nodiscard]] const ModelStore& store() const noexcept { return store_; }
  [[nodiscard]] ModelStore& store() noexcept { return store_; }
  [[nodiscard]] WindowCache::Stats cache_stats() const { return cache_.stats(); }
  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

 private:
  [[nodiscard]] core::Prediction predict_uncached(
      const std::shared_ptr<const LoadedModel>& model, const PredictRequest& request);

  ModelStore& store_;
  ServiceConfig config_;
  util::ThreadPool* pool_;
  WindowCache cache_;
  std::unique_ptr<MicroBatcher> batcher_;  ///< null when enable_batcher = false
  std::atomic<bool> accepting_{true};
};

}  // namespace ef::serve
