// Corpus-replay test: every committed fuzz seed runs through its harness
// entry point on every build, fuzzer-capable or not. This is the no-libFuzzer
// fallback the build relies on with GCC, and it catches corpus regressions
// (a deleted directory, an input that starts crashing) in plain CI jobs.
//
// The corpus root comes in via EVOFORECAST_FUZZ_CORPUS_DIR (an absolute path
// baked in by tests/CMakeLists.txt). A crash here is a real finding: fix the
// code, keep the input.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "harness/harness.hpp"

namespace {

namespace fs = std::filesystem;

using Entry = int (*)(const std::uint8_t*, std::size_t);

std::vector<fs::path> corpus_files(const char* target) {
  const fs::path dir = fs::path(EVOFORECAST_FUZZ_CORPUS_DIR) / target;
  std::vector<fs::path> files;
  if (fs::is_directory(dir)) {
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<std::uint8_t> read_bytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void replay_corpus(const char* target, Entry entry) {
  const std::vector<fs::path> files = corpus_files(target);
  // An empty corpus means the seeds were lost, not that there is nothing to
  // test — fail loudly instead of green-running zero inputs.
  ASSERT_GE(files.size(), 3u) << "fuzz corpus '" << target << "' is missing or empty under "
                              << EVOFORECAST_FUZZ_CORPUS_DIR;
  for (const fs::path& file : files) {
    SCOPED_TRACE(file.string());
    const std::vector<std::uint8_t> bytes = read_bytes(file);
    static const std::uint8_t kEmpty = 0;
    const int rc = entry(bytes.empty() ? &kEmpty : bytes.data(), bytes.size());
    EXPECT_EQ(rc, 0);
  }
}

TEST(FuzzCorpus, JsonRoundTrip) { replay_corpus("json", ef::fuzz::json_roundtrip); }

TEST(FuzzCorpus, EfrLoad) { replay_corpus("efr", ef::fuzz::efr_load); }

TEST(FuzzCorpus, Efr2Load) { replay_corpus("efr2", ef::fuzz::efr2_load); }

TEST(FuzzCorpus, ProtocolLine) { replay_corpus("protocol", ef::fuzz::protocol_line); }

TEST(FuzzCorpus, CsvLoad) { replay_corpus("csv", ef::fuzz::csv_load); }

// The harness invariants must hold on inputs the corpus cannot express
// byte-for-byte in a reviewable file (e.g. embedded NUL bytes).
TEST(FuzzCorpus, HarnessesAcceptEmbeddedNul) {
  const std::uint8_t nul_json[] = {'"', 'a', 0x00, 'b', '"'};
  EXPECT_EQ(ef::fuzz::json_roundtrip(nul_json, sizeof nul_json), 0);
  const std::uint8_t nul_csv[] = {'0', '1', 0x00, '2', '\n'};
  EXPECT_EQ(ef::fuzz::csv_load(nul_csv, sizeof nul_csv), 0);
  const std::uint8_t nul_proto[] = {'{', 0x00, '}'};
  EXPECT_EQ(ef::fuzz::protocol_line(nul_proto, sizeof nul_proto), 0);
  const std::uint8_t nul_efr[] = {'e', 'v', 0x00};
  EXPECT_EQ(ef::fuzz::efr_load(nul_efr, sizeof nul_efr), 0);
}

}  // namespace
