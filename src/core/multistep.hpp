// multistep.hpp — iterated (recursive) multi-step forecasting.
//
// The paper forecasts horizon τ *directly*: one rule system trained on
// (window → value τ ahead). The classical alternative trains a one-step
// system and iterates it, feeding each prediction back as the newest input.
// Direct vs iterated is a standing question in forecasting; Ablation F
// benches it on this system. Iteration interacts with abstention: if the
// system abstains at any intermediate step the chain breaks — policy below.
#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <vector>

#include "core/dataset.hpp"
#include "core/rule_system.hpp"

namespace ef::core {

/// What to do when the one-step system abstains mid-chain.
enum class ChainAbstention {
  kAbstain,      ///< the whole multi-step forecast becomes an abstention
  kPersistence,  ///< bridge the gap with the last known/predicted value
};

struct MultistepOptions {
  std::size_t horizon = 1;  ///< total steps ahead
  ChainAbstention on_abstain = ChainAbstention::kAbstain;
  Aggregation aggregation = Aggregation::kMean;
};

/// Iterate a one-step rule system `options.horizon` steps from `window`
/// (the D most recent values, consecutive — stride-1 systems only; throws
/// std::invalid_argument when horizon == 0 or window is empty).
[[nodiscard]] std::optional<double> iterate_forecast(const RuleSystem& one_step,
                                                     std::span<const double> window,
                                                     const MultistepOptions& options);

/// Iterated forecast for every pattern of a τ-horizon dataset using a
/// one-step system. `data`'s own horizon sets the step count; its stride
/// must be 1. Abstentions per the policy.
[[nodiscard]] series::PartialForecast iterate_forecast_dataset(const RuleSystem& one_step,
                                                               const WindowDataset& data,
                                                               ChainAbstention on_abstain,
                                                               Aggregation aggregation =
                                                                   Aggregation::kMean);

/// Synthesise a whole continuation: the next `steps` values after `window`,
/// each fed back as input for the next (scenario simulation / trajectory
/// preview). Abstention handling per `options.on_abstain`; under kAbstain
/// the trajectory is truncated at the first abstention (possibly empty).
[[nodiscard]] std::vector<double> iterate_trajectory(const RuleSystem& one_step,
                                                     std::span<const double> window,
                                                     std::size_t steps,
                                                     const MultistepOptions& options = {});

}  // namespace ef::core
