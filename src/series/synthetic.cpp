#include "series/synthetic.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rng.hpp"

namespace ef::series {

TimeSeries generate_sine(std::size_t count, const SineParams& params) {
  if (count == 0) throw std::invalid_argument("generate_sine: count must be > 0");
  if (params.period <= 0.0) throw std::invalid_argument("generate_sine: period must be > 0");
  if (params.noise_sd < 0.0) {
    throw std::invalid_argument("generate_sine: noise_sd must be >= 0");
  }
  util::Rng rng(params.seed);
  std::vector<double> v(count);
  for (std::size_t t = 0; t < count; ++t) {
    v[t] = params.offset +
           params.amplitude * std::sin(2.0 * std::numbers::pi * static_cast<double>(t) /
                                           params.period +
                                       params.phase);
    if (params.noise_sd > 0.0) v[t] += rng.normal(0.0, params.noise_sd);
  }
  return TimeSeries(std::move(v), "sine");
}

TimeSeries generate_ar(std::size_t count, const ArParams& params) {
  if (count == 0) throw std::invalid_argument("generate_ar: count must be > 0");
  if (params.noise_sd < 0.0) throw std::invalid_argument("generate_ar: noise_sd must be >= 0");

  util::Rng rng(params.seed);
  const std::size_t p = params.phi.size();
  std::vector<double> history(p, 0.0);
  std::vector<double> out;
  out.reserve(count);

  const auto step = [&]() {
    double x = rng.normal(0.0, params.noise_sd);
    for (std::size_t k = 0; k < p; ++k) x += params.phi[k] * history[k];
    // history[0] is x_{t−1}.
    for (std::size_t k = p; k-- > 1;) history[k] = history[k - 1];
    if (p > 0) history[0] = x;
    return x;
  };

  for (std::size_t i = 0; i < params.burn_in; ++i) (void)step();
  for (std::size_t i = 0; i < count; ++i) out.push_back(params.offset + step());
  return TimeSeries(std::move(out), "ar");
}

TimeSeries generate_regime_switch(std::size_t count, const RegimeSwitchParams& params) {
  if (count == 0) throw std::invalid_argument("generate_regime_switch: count must be > 0");
  if (params.regimes.empty()) {
    throw std::invalid_argument("generate_regime_switch: need at least one regime");
  }
  if (params.mean_dwell <= 1.0) {
    throw std::invalid_argument("generate_regime_switch: mean_dwell must be > 1");
  }
  util::Rng rng(params.seed);
  const double switch_prob = 1.0 / params.mean_dwell;

  std::vector<double> v(count);
  std::size_t regime = 0;
  double phase = 0.0;
  for (std::size_t t = 0; t < count; ++t) {
    const auto& [amplitude, period] = params.regimes[regime];
    phase += 2.0 * std::numbers::pi / period;
    v[t] = amplitude * std::sin(phase);
    if (params.noise_sd > 0.0) v[t] += rng.normal(0.0, params.noise_sd);
    if (rng.bernoulli(switch_prob)) {
      regime = (regime + 1) % params.regimes.size();
      // Phase continues so switches don't jump discontinuously.
    }
  }
  return TimeSeries(std::move(v), "regime_switch");
}

}  // namespace ef::series
