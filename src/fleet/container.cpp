#include "fleet/container.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <utility>

#include "obs/macros.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define EVOFORECAST_HAVE_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define EVOFORECAST_HAVE_MMAP 0
#endif

namespace ef::fleet {
namespace {

constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kIndexEntryBytes = 32;

// FileHeader field offsets (see container.hpp for the layout narrative).
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 8;
constexpr std::size_t kOffFlags = 12;
constexpr std::size_t kOffNModels = 16;
constexpr std::size_t kOffIndexOff = 24;
constexpr std::size_t kOffIdsOff = 32;
constexpr std::size_t kOffIdsBytes = 40;
constexpr std::size_t kOffModelsOff = 48;
constexpr std::size_t kOffFileBytes = 56;

// IndexEntry field offsets.
constexpr std::size_t kEntryIdOff = 0;
constexpr std::size_t kEntryIdLen = 8;
constexpr std::size_t kEntryRuleCount = 12;
constexpr std::size_t kEntryModelOff = 16;
constexpr std::size_t kEntryModelLen = 24;

// Per-rule fixed header inside a model payload: 4 × u64 + 3 × f64.
constexpr std::size_t kRuleHeaderBytes = 56;
constexpr std::uint64_t kFlagDegenerate = 1;

template <typename T>
T read_le(const std::uint8_t* p) {
  T v;
  std::memcpy(&v, p, sizeof(T));
  return v;
}

template <typename T>
void append_le(std::vector<std::uint8_t>& out, T v) {
  const auto* p = reinterpret_cast<const std::uint8_t*>(&v);
  out.insert(out.end(), p, p + sizeof(T));
}

template <typename T>
void write_le(std::uint8_t* p, T v) {
  std::memcpy(p, &v, sizeof(T));
}

[[noreturn]] void corrupt(const std::string& what) {
  throw std::runtime_error("FleetReader: " + what);
}

/// Bounds-checked cursor over one model's payload bytes.
struct Cursor {
  const std::uint8_t* p;
  const std::uint8_t* end;

  std::uint64_t u64() {
    if (static_cast<std::size_t>(end - p) < sizeof(std::uint64_t)) {
      corrupt("truncated model payload");
    }
    const std::uint64_t v = read_le<std::uint64_t>(p);
    p += sizeof(std::uint64_t);
    return v;
  }

  double f64() {
    if (static_cast<std::size_t>(end - p) < sizeof(double)) {
      corrupt("truncated model payload");
    }
    const double v = read_le<double>(p);
    p += sizeof(double);
    return v;
  }
};

}  // namespace

// ---------------------------------------------------------------- FleetWriter

void FleetWriter::add(std::string series_id, const core::RuleSystem& system) {
  if (series_id.empty() || series_id.size() > kMaxIdBytes) {
    throw std::invalid_argument("FleetWriter: series id must be 1.." +
                                std::to_string(kMaxIdBytes) + " bytes");
  }
  for (const PendingModel& m : models_) {
    if (m.id == series_id) {
      throw std::invalid_argument("FleetWriter: duplicate series id '" + series_id + "'");
    }
  }
  if (system.size() > kMaxRulesPerModel) {
    throw std::invalid_argument("FleetWriter: rule count exceeds container limit");
  }

  PendingModel model;
  model.id = std::move(series_id);
  model.rule_count = static_cast<std::uint32_t>(system.size());
  for (const core::Rule& rule : system.rules()) {
    const auto& part = rule.predicting();
    if (!part) throw std::invalid_argument("FleetWriter: unevaluated rule cannot be packed");
    if (rule.window() == 0 || rule.window() > kMaxWindow ||
        part->fit.coeffs.size() > kMaxCoeffs) {
      throw std::invalid_argument("FleetWriter: rule dimensions exceed container limits");
    }
    if (!std::isfinite(part->fitness) || !std::isfinite(part->fit.max_abs_residual) ||
        !std::isfinite(part->fit.mean_prediction)) {
      throw std::invalid_argument("FleetWriter: non-finite rule stats");
    }
    append_le<std::uint64_t>(model.payload, rule.window());
    append_le<std::uint64_t>(model.payload, part->fit.coeffs.size());
    append_le<std::uint64_t>(model.payload, part->matches);
    append_le<std::uint64_t>(model.payload, part->fit.degenerate ? kFlagDegenerate : 0);
    append_le<double>(model.payload, part->fitness);
    append_le<double>(model.payload, part->fit.max_abs_residual);
    append_le<double>(model.payload, part->fit.mean_prediction);
    for (const core::Interval& gene : rule.genes()) {
      if (gene.is_wildcard()) {
        // (NaN, NaN) is the wildcard encoding; bounded genes are finite by
        // Interval's own invariant.
        append_le<double>(model.payload, std::numeric_limits<double>::quiet_NaN());
        append_le<double>(model.payload, std::numeric_limits<double>::quiet_NaN());
      } else {
        append_le<double>(model.payload, gene.lo());
        append_le<double>(model.payload, gene.hi());
      }
    }
    for (const double c : part->fit.coeffs) {
      if (!std::isfinite(c)) throw std::invalid_argument("FleetWriter: non-finite coefficient");
      append_le<double>(model.payload, c);
    }
  }
  models_.push_back(std::move(model));
}

std::vector<std::uint8_t> FleetWriter::encode() const {
  if (models_.size() > kMaxModels) {
    throw std::invalid_argument("FleetWriter: model count exceeds container limit");
  }
  // Sort index slots by id so the reader can binary-search the raw mapping.
  std::vector<const PendingModel*> order;
  order.reserve(models_.size());
  for (const PendingModel& m : models_) order.push_back(&m);
  std::sort(order.begin(), order.end(),
            [](const PendingModel* a, const PendingModel* b) { return a->id < b->id; });

  const std::size_t index_off = kHeaderBytes;
  const std::size_t ids_off = index_off + order.size() * kIndexEntryBytes;
  std::size_t ids_bytes = 0;
  for (const PendingModel* m : order) ids_bytes += m->id.size();
  // Model arena starts 8-byte aligned so every f64/u64 record field is
  // naturally aligned in the mapping.
  const std::size_t models_off = (ids_off + ids_bytes + 7) & ~std::size_t{7};
  std::size_t model_bytes = 0;
  for (const PendingModel* m : order) model_bytes += m->payload.size();
  const std::size_t total = models_off + model_bytes;

  std::vector<std::uint8_t> out(total, 0);
  std::memcpy(out.data() + kOffMagic, kContainerMagic, sizeof(kContainerMagic));
  write_le<std::uint32_t>(out.data() + kOffVersion, kContainerVersion);
  write_le<std::uint32_t>(out.data() + kOffFlags, 0);
  write_le<std::uint64_t>(out.data() + kOffNModels, order.size());
  write_le<std::uint64_t>(out.data() + kOffIndexOff, index_off);
  write_le<std::uint64_t>(out.data() + kOffIdsOff, ids_off);
  write_le<std::uint64_t>(out.data() + kOffIdsBytes, ids_bytes);
  write_le<std::uint64_t>(out.data() + kOffModelsOff, models_off);
  write_le<std::uint64_t>(out.data() + kOffFileBytes, total);

  std::size_t id_cursor = ids_off;
  std::size_t model_cursor = models_off;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const PendingModel* m = order[i];
    std::uint8_t* entry = out.data() + index_off + i * kIndexEntryBytes;
    write_le<std::uint64_t>(entry + kEntryIdOff, id_cursor);
    write_le<std::uint32_t>(entry + kEntryIdLen, static_cast<std::uint32_t>(m->id.size()));
    write_le<std::uint32_t>(entry + kEntryRuleCount, m->rule_count);
    write_le<std::uint64_t>(entry + kEntryModelOff, model_cursor);
    write_le<std::uint64_t>(entry + kEntryModelLen, m->payload.size());
    std::memcpy(out.data() + id_cursor, m->id.data(), m->id.size());
    std::memcpy(out.data() + model_cursor, m->payload.data(), m->payload.size());
    id_cursor += m->id.size();
    model_cursor += m->payload.size();
  }
  return out;
}

void FleetWriter::write_file(const std::string& path) const {
  const std::vector<std::uint8_t> bytes = encode();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("FleetWriter: cannot open '" + tmp + "'");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw std::runtime_error("FleetWriter: short write to '" + tmp + "'");
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    std::filesystem::remove(tmp, ec);
    throw std::runtime_error("FleetWriter: cannot publish '" + path + "'");
  }
  EVOFORECAST_COUNT("fleet.containers_written", 1);
  EVOFORECAST_EVENT("fleet.container.write", {"path", path}, {"models", models_.size()},
                    {"bytes", bytes.size()});
}

// ---------------------------------------------------------------- FleetReader

FleetReader::~FleetReader() { reset(); }

FleetReader::FleetReader(FleetReader&& other) noexcept { *this = std::move(other); }

FleetReader& FleetReader::operator=(FleetReader&& other) noexcept {
  if (this == &other) return *this;
  reset();
  data_ = std::exchange(other.data_, nullptr);
  size_ = std::exchange(other.size_, 0);
  n_models_ = std::exchange(other.n_models_, 0);
  owned_ = std::move(other.owned_);
  other.owned_.clear();
  map_base_ = std::exchange(other.map_base_, nullptr);
  map_size_ = std::exchange(other.map_size_, 0);
  return *this;
}

void FleetReader::reset() noexcept {
#if EVOFORECAST_HAVE_MMAP
  if (map_base_ != nullptr) ::munmap(map_base_, map_size_);
#endif
  map_base_ = nullptr;
  map_size_ = 0;
  data_ = nullptr;
  size_ = 0;
  n_models_ = 0;
  owned_.clear();
}

FleetReader FleetReader::open(const std::string& path) {
  FleetReader reader;
#if EVOFORECAST_HAVE_MMAP
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw std::runtime_error("FleetReader: cannot open '" + path + "'");
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw std::runtime_error("FleetReader: cannot stat '" + path + "'");
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    throw std::runtime_error("FleetReader: '" + path + "' is empty");
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the file alive
  if (base == MAP_FAILED) {
    throw std::runtime_error("FleetReader: mmap failed for '" + path + "'");
  }
  reader.map_base_ = base;
  reader.map_size_ = size;
  reader.data_ = static_cast<const std::uint8_t*>(base);
  reader.size_ = size;
#else
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("FleetReader: cannot open '" + path + "'");
  reader.owned_.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  reader.data_ = reader.owned_.data();
  reader.size_ = reader.owned_.size();
#endif
  reader.validate();
  EVOFORECAST_COUNT("fleet.containers_opened", 1);
  return reader;
}

FleetReader FleetReader::from_bytes(std::vector<std::uint8_t> bytes) {
  FleetReader reader;
  reader.owned_ = std::move(bytes);
  reader.data_ = reader.owned_.data();
  reader.size_ = reader.owned_.size();
  reader.validate();
  return reader;
}

const std::uint8_t* FleetReader::index_entry(std::size_t i) const noexcept {
  return data_ + kHeaderBytes + i * kIndexEntryBytes;
}

void FleetReader::validate() {
  // Header pass. Everything below dereferences only ranges proven in-bounds
  // here; materialize_at() re-validates its own model payload on demand.
  if (size_ < kHeaderBytes) corrupt("file shorter than header");
  if (std::memcmp(data_ + kOffMagic, kContainerMagic, sizeof(kContainerMagic)) != 0) {
    corrupt("bad magic (not an .efr v2 container)");
  }
  const auto version = read_le<std::uint32_t>(data_ + kOffVersion);
  if (version != kContainerVersion) {
    corrupt("unsupported container version " + std::to_string(version));
  }
  if (read_le<std::uint32_t>(data_ + kOffFlags) != 0) corrupt("unknown header flags");
  const auto declared_size = read_le<std::uint64_t>(data_ + kOffFileBytes);
  if (declared_size != size_) corrupt("declared size does not match file size (truncated?)");

  const auto n_models = read_le<std::uint64_t>(data_ + kOffNModels);
  if (n_models > kMaxModels) corrupt("model count exceeds limit");
  const auto index_off = read_le<std::uint64_t>(data_ + kOffIndexOff);
  const auto ids_off = read_le<std::uint64_t>(data_ + kOffIdsOff);
  const auto ids_bytes = read_le<std::uint64_t>(data_ + kOffIdsBytes);
  const auto models_off = read_le<std::uint64_t>(data_ + kOffModelsOff);
  // Canonical section layout: header, index, id arena, model arena. The
  // writer emits exactly this; the reader refuses anything else so offsets
  // cannot alias each other or the header.
  if (index_off != kHeaderBytes) corrupt("index must follow the header");
  const std::uint64_t index_bytes = n_models * kIndexEntryBytes;  // <= 16M * 32, no overflow
  if (ids_off != index_off + index_bytes) corrupt("id arena must follow the index");
  if (ids_off + ids_bytes < ids_off || ids_off + ids_bytes > size_) {
    corrupt("id arena out of bounds");
  }
  if (models_off < ids_off + ids_bytes || models_off > size_ || (models_off & 7) != 0) {
    corrupt("model arena out of bounds or misaligned");
  }

  n_models_ = static_cast<std::size_t>(n_models);

  // Index pass: every entry in bounds, ids strictly ascending (sorted and
  // duplicate-free — the binary-search contract), model ranges inside the
  // arena.
  std::string_view previous;
  for (std::size_t i = 0; i < n_models_; ++i) {
    const std::uint8_t* entry = index_entry(i);
    const auto id_off = read_le<std::uint64_t>(entry + kEntryIdOff);
    const auto id_len = read_le<std::uint32_t>(entry + kEntryIdLen);
    const auto rule_count = read_le<std::uint32_t>(entry + kEntryRuleCount);
    const auto model_off = read_le<std::uint64_t>(entry + kEntryModelOff);
    const auto model_len = read_le<std::uint64_t>(entry + kEntryModelLen);
    if (id_len == 0 || id_len > kMaxIdBytes) corrupt("series id length out of range");
    if (id_off < ids_off || id_off + id_len < id_off || id_off + id_len > ids_off + ids_bytes) {
      corrupt("series id out of arena bounds");
    }
    if (rule_count > kMaxRulesPerModel) corrupt("per-model rule count exceeds limit");
    if (model_off < models_off || model_off + model_len < model_off ||
        model_off + model_len > size_ || (model_off & 7) != 0) {
      corrupt("model payload out of bounds or misaligned");
    }
    const std::string_view id(reinterpret_cast<const char*>(data_ + id_off), id_len);
    if (i > 0 && !(previous < id)) corrupt("index ids not strictly sorted");
    previous = id;
  }
}

std::string_view FleetReader::id_at(std::size_t i) const {
  if (i >= n_models_) throw std::out_of_range("FleetReader::id_at");
  const std::uint8_t* entry = index_entry(i);
  const auto id_off = read_le<std::uint64_t>(entry + kEntryIdOff);
  const auto id_len = read_le<std::uint32_t>(entry + kEntryIdLen);
  return {reinterpret_cast<const char*>(data_ + id_off), id_len};
}

std::size_t FleetReader::rule_count_at(std::size_t i) const {
  if (i >= n_models_) throw std::out_of_range("FleetReader::rule_count_at");
  return read_le<std::uint32_t>(index_entry(i) + kEntryRuleCount);
}

std::optional<std::size_t> FleetReader::find(std::string_view series_id) const {
  std::size_t lo = 0;
  std::size_t hi = n_models_;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    const std::string_view id = id_at(mid);
    if (id == series_id) return mid;
    if (id < series_id) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return std::nullopt;
}

core::RuleSystem FleetReader::materialize_at(std::size_t i) const {
  if (i >= n_models_) throw std::out_of_range("FleetReader::materialize_at");
  const std::uint8_t* entry = index_entry(i);
  const auto rule_count = read_le<std::uint32_t>(entry + kEntryRuleCount);
  const auto model_off = read_le<std::uint64_t>(entry + kEntryModelOff);
  const auto model_len = read_le<std::uint64_t>(entry + kEntryModelLen);
  Cursor cursor{data_ + model_off, data_ + model_off + model_len};

  std::vector<core::Rule> rules;
  rules.reserve(std::min<std::size_t>(rule_count, 4096));
  for (std::uint32_t r = 0; r < rule_count; ++r) {
    const std::uint64_t window = cursor.u64();
    const std::uint64_t n_coeffs = cursor.u64();
    const std::uint64_t matches = cursor.u64();
    const std::uint64_t flags = cursor.u64();
    if (window == 0 || window > kMaxWindow) corrupt("rule window out of range");
    if (n_coeffs > kMaxCoeffs) corrupt("coefficient count exceeds limit");
    if ((flags & ~kFlagDegenerate) != 0) corrupt("unknown rule flags");

    core::PredictingPart part;
    part.matches = static_cast<std::size_t>(matches);
    part.fitness = cursor.f64();
    part.fit.max_abs_residual = cursor.f64();
    part.fit.mean_prediction = cursor.f64();
    part.fit.degenerate = (flags & kFlagDegenerate) != 0;
    if (!std::isfinite(part.fitness) || !std::isfinite(part.fit.max_abs_residual) ||
        !std::isfinite(part.fit.mean_prediction)) {
      corrupt("non-finite rule stats");
    }

    std::vector<core::Interval> genes;
    genes.reserve(window);
    for (std::uint64_t j = 0; j < window; ++j) {
      const double lo = cursor.f64();
      const double hi = cursor.f64();
      if (std::isnan(lo) && std::isnan(hi)) {
        genes.push_back(core::Interval::wildcard());
        continue;
      }
      if (!std::isfinite(lo) || !std::isfinite(hi) || !(lo <= hi)) {
        corrupt("bad gene bounds");
      }
      genes.emplace_back(lo, hi);
    }

    part.fit.coeffs.resize(n_coeffs);
    for (double& c : part.fit.coeffs) {
      c = cursor.f64();
      if (!std::isfinite(c)) corrupt("non-finite coefficient");
    }

    core::Rule rule{std::move(genes)};
    rule.set_predicting(std::move(part));
    rules.push_back(std::move(rule));
  }
  if (cursor.p != cursor.end) corrupt("trailing bytes after last rule");

  core::RuleSystem system;
  // discard_unfit=false: the container stores exactly what was trained;
  // filtering happened at training time.
  system.add_rules(std::move(rules), /*discard_unfit=*/false, 0.0);
  return system;
}

std::optional<core::RuleSystem> FleetReader::materialize(std::string_view series_id) const {
  const auto slot = find(series_id);
  if (!slot) return std::nullopt;
  return materialize_at(*slot);
}

std::vector<std::string> FleetReader::ids() const {
  std::vector<std::string> out;
  out.reserve(n_models_);
  for (std::size_t i = 0; i < n_models_; ++i) out.emplace_back(id_at(i));
  return out;
}

}  // namespace ef::fleet
