// custom_csv_forecast — bring-your-own-data workflow, including persistence.
//
//   custom_csv_forecast [--input data.csv] [--column 0] [--window 12]
//                       [--horizon 1] [--train-fraction 0.8]
//                       [--model rules.efr]
//
// Reads a numeric CSV column as a series, splits chronologically, trains the
// rule system, reports coverage/error on the held-out tail, saves the rule
// set to disk, reloads it, and verifies the round trip. Without --input it
// generates a demo series so the example always runs out of the box.
//
// Build & run:  ./build/examples/custom_csv_forecast
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "core/rule_system.hpp"
#include "obs/run_report.hpp"
#include "series/csv.hpp"
#include "series/metrics.hpp"
#include "series/timeseries.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

/// Demo series when no --input is given: a daily-ish cycle with occasional
/// level shifts (local regimes), so the rule system has something local to
/// learn.
ef::series::TimeSeries demo_series() {
  ef::util::Rng rng(2026);
  std::vector<double> v;
  double level = 50.0;
  for (int t = 0; t < 3000; ++t) {
    if (rng.bernoulli(0.002)) level += rng.uniform(-25.0, 25.0);  // regime shift
    v.push_back(level + 12.0 * std::sin(t * 0.26) + rng.normal(0.0, 1.5));
  }
  return ef::series::TimeSeries(std::move(v), "demo");
}

}  // namespace

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);

  // --- load ------------------------------------------------------------------
  ef::series::TimeSeries series = [&] {
    if (const auto path = cli.get("input")) {
      const auto column = static_cast<std::size_t>(cli.get_int("column", 0));
      std::printf("reading column %zu of %s\n", column, path->c_str());
      return ef::series::read_series_csv(*path, column);
    }
    std::printf("no --input given; using the built-in demo series\n");
    return demo_series();
  }();
  std::printf("series '%s': %zu samples in [%.2f, %.2f]\n", series.name().c_str(),
              series.size(), series.min(), series.max());

  // --- split -----------------------------------------------------------------
  const double train_fraction = cli.get_double("train-fraction", 0.8);
  const auto train_size = static_cast<std::size_t>(
      static_cast<double>(series.size()) * train_fraction);
  const auto split = ef::series::split_at(series, train_size);

  const auto window = static_cast<std::size_t>(cli.get_int("window", 12));
  const auto horizon = static_cast<std::size_t>(cli.get_int("horizon", 1));
  const ef::core::WindowDataset train(split.train, window, horizon);
  const ef::core::WindowDataset validation(split.validation, window, horizon);

  // --- train -----------------------------------------------------------------
  ef::core::RuleSystemConfig config;
  config.evolution.population_size = 100;
  config.evolution.generations = static_cast<std::size_t>(cli.get_int("generations", 8000));
  // Default EMAX: 10 % of the training range — override per dataset.
  config.evolution.emax =
      cli.get_double("emax", 0.10 * (split.train.max() - split.train.min()));
  config.evolution.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  config.coverage_target_percent = 95.0;
  config.max_executions = 5;

  std::printf("training: D=%zu, tau=%zu, EMAX=%.3f, %zu windows\n", window, horizon,
              config.evolution.emax, train.count());
  const auto result = ef::core::train(train, {.config = config});

  const auto forecast = result.system.forecast_dataset(validation);
  std::vector<double> actual;
  for (std::size_t i = 0; i < validation.count(); ++i) actual.push_back(validation.target(i));
  const auto report = ef::series::evaluate_partial(actual, forecast);
  std::printf("held-out tail: coverage %.1f%%, RMSE %.4f, MAE %.4f (NMSE %.4f)\n",
              report.coverage_percent, report.rmse, report.mae, report.nmse);

  // --- persist and reload ------------------------------------------------------
  const std::string model_path = cli.get_string("model", "rules.efr");
  {
    std::ofstream out(model_path);
    result.system.save(out);
  }
  std::printf("saved %zu rules to %s\n", result.system.size(), model_path.c_str());

  std::ifstream in(model_path);
  const auto reloaded = ef::core::RuleSystem::load(in);
  // Spot-check: the reloaded system must forecast identically.
  std::size_t checked = 0;
  for (std::size_t i = 0; i < validation.count() && checked < 50; ++i) {
    const auto a = result.system.forecast(validation.pattern(i)).as_optional();
    const auto b = reloaded.forecast(validation.pattern(i)).as_optional();
    if (a.has_value() != b.has_value() ||
        (a && std::abs(*a - *b) > 1e-9)) {
      std::printf("round-trip MISMATCH at window %zu\n", i);
      return 1;
    }
    ++checked;
  }
  std::printf("reloaded model verified on %zu windows — save/load round trip OK\n", checked);
  ef::obs::emit_cli_report(cli);
  return 0;
}
