// bench_ablation_init — Ablation A (DESIGN.md): does the paper's §3.2
// output-stratified initialisation matter, or would random boxes do? Both
// strategies run the same evolution budget on Mackey-Glass τ = 50 across
// several seeds; we compare initial coverage, final coverage, and test NMSE.
//
// Expected shape: stratified starts with (near-)complete training coverage
// and converges to better coverage/error; random init must first discover
// the space.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/rule_system.hpp"
#include "series/mackey_glass.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const ef::util::Cli cli(argc, argv);
  const bool full = cli.get_bool("full");
  const auto window = static_cast<std::size_t>(cli.get_int("window", 4));
  const auto stride = static_cast<std::size_t>(cli.get_int("stride", 6));
  const auto horizon = static_cast<std::size_t>(cli.get_int("horizon", 50));
  const auto generations =
      static_cast<std::size_t>(cli.get_int("generations", full ? 40000 : 8000));
  const auto seeds = static_cast<std::size_t>(cli.get_int("seeds", full ? 5 : 3));

  std::printf("Ablation A — initialisation strategy (Mackey-Glass, tau=%zu)\n", horizon);
  ef::bench::print_rule('=');

  const auto experiment = ef::series::make_paper_mackey_glass();
  const ef::core::WindowDataset train(experiment.train, window, horizon, stride);
  const ef::core::WindowDataset test(experiment.test, window, horizon, stride);

  std::printf("%-18s %6s | %9s %9s %9s %7s\n", "init", "seed", "init-cov%", "cov%",
              "nmse", "rules");
  ef::bench::print_rule();

  for (const auto strategy : {ef::core::InitStrategy::kOutputStratified,
                              ef::core::InitStrategy::kUniformRandom}) {
    const char* name = strategy == ef::core::InitStrategy::kOutputStratified
                           ? "output-stratified"
                           : "uniform-random";
    double cov_sum = 0.0;
    double nmse_sum = 0.0;
    for (std::size_t s = 0; s < seeds; ++s) {
      ef::core::RuleSystemConfig cfg;
      cfg.evolution.population_size = 100;
      cfg.evolution.generations = generations;
      cfg.evolution.emax = 0.14;
      cfg.evolution.init = strategy;
      cfg.evolution.seed = 100 + s;
      cfg.coverage_target_percent = 78.0;
      cfg.max_executions = 1;  // single execution isolates the init effect

      // Initial coverage: a zero-generation run of the same config.
      ef::core::RuleSystemConfig init_only = cfg;
      init_only.evolution.generations = 0;
      init_only.discard_unfit = false;
      const auto at_init = ef::core::train(train, {.config = init_only});

      const auto rs = ef::bench::run_rule_system(train, test, cfg);
      cov_sum += rs.report.coverage_percent;
      nmse_sum += rs.report.nmse;

      std::printf("%-18s %6zu | %8.1f%% %8.1f%% %9.4f %7zu\n", name, s,
                  at_init.train_coverage_percent, rs.report.coverage_percent,
                  rs.report.nmse, rs.rules);
      std::fflush(stdout);
    }
    std::printf("%-18s %6s | %9s %8.1f%% %9.4f\n\n", name, "mean", "",
                cov_sum / static_cast<double>(seeds),
                nmse_sum / static_cast<double>(seeds));
  }

  std::printf("Expected shape: stratified init covers ~100%% of training from generation 0\n"
              "and yields >= coverage and <= NMSE of random init at equal budget.\n");
  ef::obs::emit_cli_report(cli);
  return 0;
}
